//! Runs the paper's protocols through the full adversary gauntlet and
//! prints which (protocol, adversary, model) combinations hold — a live
//! rendition of the paper's security claims and their boundaries.
//!
//! ```sh
//! cargo run -p ba-repro --example adversary_gauntlet
//! ```

use std::sync::Arc;

use ba_repro::prelude::*;

fn cell(verdict: Verdict) -> &'static str {
    if verdict.all_ok() {
        "holds"
    } else if !verdict.consistent {
        "CONSISTENCY BROKEN"
    } else if !verdict.valid {
        "VALIDITY BROKEN"
    } else {
        "NO TERMINATION"
    }
}

fn main() {
    let n = 240;
    let lambda = 18.0;
    let seed = 7;
    println!("== Adversary gauntlet (n = {n}, lambda = {lambda}) ==\n");
    println!("{:<34} {:<26} verdict", "protocol", "adversary");
    println!("{}", "-".repeat(86));

    // 1. subq_half vs passive.
    {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let (_, v) = ba_repro::iter_run(&cfg, &sim, inputs, Passive);
        println!("{:<34} {:<26} {}", "subq_half (C.2)", "passive", cell(v));
    }

    // 2. subq_half vs crash f = n/3.
    {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = IterConfig::subq_half(n, elig);
        let f = n / 3;
        let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
        let adversary = CrashAt { nodes: (n - f..n).map(NodeId).collect(), at_round: 0 };
        let (_, v) = ba_repro::iter_run(&cfg, &sim, vec![true; n], adversary);
        println!("{:<34} {:<26} {}", "subq_half (C.2)", "crash f=n/3", cell(v));
    }

    // 3. subq_half vs cert forger below and above the threshold.
    for (label, f) in [("forger f=0.3n", 3 * n / 10), ("forger f=0.7n", 7 * n / 10)] {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = IterConfig::subq_half(n, elig);
        let adversary = CertForger::new(n, f, true, cfg.quorum, cfg.auth.clone());
        let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
        let (_, v) = ba_repro::iter_run(&cfg, &sim, vec![false; n], adversary);
        println!("{:<34} {:<26} {}", "subq_half (C.2)", label, cell(v));
    }

    // 4. subq_half vs the strongly adaptive committee eraser (Theorem 1).
    {
        let big_n = 400;
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(big_n, 16.0)));
        let mut cfg = IterConfig::subq_half(big_n, elig);
        cfg.max_iters = 6;
        let sim = SimConfig::new(big_n, 190, CorruptionModel::StronglyAdaptive, seed);
        let inputs: Vec<Bit> = (0..big_n).map(|i| i % 2 == 0).collect();
        let adversary = CommitteeEraser::starve_quorum(cfg.quorum);
        let (_, v) = ba_repro::iter_run(&cfg, &sim, inputs, adversary);
        println!(
            "{:<34} {:<26} {}",
            "subq_half (C.2, n=400)",
            "eraser (strongly adaptive)",
            cell(v)
        );
    }

    // 5. quadratic_half vs the same eraser: survives.
    {
        let qn = 13;
        let kc = Arc::new(Keychain::from_seed(seed, qn, SigMode::Ideal));
        let cfg = IterConfig::quadratic_half(qn, kc, seed);
        let sim = SimConfig::new(qn, 6, CorruptionModel::StronglyAdaptive, seed);
        let (_, v) = ba_repro::iter_run(&cfg, &sim, vec![true; qn], CommitteeEraser::new());
        println!(
            "{:<34} {:<26} {}",
            "quadratic_half (C.1, n=13)",
            "eraser (strongly adaptive)",
            cell(v)
        );
    }

    // 6. The epoch family vs the vote flipper (the §3.3 Remark).
    let inputs: Vec<Bit> = (0..n).map(|i| i < n / 2).collect();
    {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = EpochConfig::subq_third(n, 8, elig);
        let adversary = VoteFlipper::new(cfg.auth.clone(), cfg.quorum);
        let sim = SimConfig::new(n, n / 3, CorruptionModel::Adaptive, seed);
        let (_, v) = ba_repro::epoch_run(&cfg, &sim, inputs.clone(), adversary);
        println!("{:<34} {:<26} {}", "subq_third (bit-specific)", "vote flipper", cell(v));
    }
    {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let cfg = EpochConfig::subq_shared(n, 8, elig, kc);
        let adversary = VoteFlipper::new(cfg.auth.clone(), cfg.quorum);
        let sim = SimConfig::new(n, n / 3, CorruptionModel::Adaptive, seed);
        let (_, v) = ba_repro::epoch_run(&cfg, &sim, inputs.clone(), adversary);
        println!("{:<34} {:<26} {}", "subq_shared (ablation)", "vote flipper", cell(v));
    }
    for erasure in [true, false] {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let fs = Arc::new(FsService::from_seed(seed, n, 9));
        let cfg = EpochConfig::chen_micali(n, 8, elig, fs, erasure);
        let adversary = VoteFlipper::new(cfg.auth.clone(), cfg.quorum);
        let sim = SimConfig::new(n, n / 3, CorruptionModel::Adaptive, seed);
        let (_, v) = ba_repro::epoch_run(&cfg, &sim, inputs.clone(), adversary);
        let name = if erasure { "chen_micali + erasure" } else { "chen_micali, no erasure" };
        println!("{:<34} {:<26} {}", name, "vote flipper", cell(v));
    }

    println!("\nReading: the paper's constructions hold everywhere except under the");
    println!("strongly adaptive eraser (Theorem 1 says that is unavoidable) and past");
    println!("the resilience threshold; the ablations break exactly where predicted.");
}
