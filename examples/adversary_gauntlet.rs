//! Runs the paper's protocols through the full adversary gauntlet and
//! prints which (protocol, adversary, model) combinations hold — a live
//! rendition of the paper's security claims and their boundaries.
//!
//! The whole gauntlet is one declarative `Sweep`; the cells execute in
//! parallel across worker threads.
//!
//! ```sh
//! cargo run -p ba-repro --example adversary_gauntlet
//! ```

use ba_repro::prelude::*;

fn cell(report: &CellReport) -> &'static str {
    let run = &report.runs[0];
    if run.flag("all_ok") {
        "holds"
    } else if !run.flag("consistent") {
        "CONSISTENCY BROKEN"
    } else if !run.flag("valid") {
        "VALIDITY BROKEN"
    } else {
        "NO TERMINATION"
    }
}

fn main() {
    let n = 240;
    let lambda = 18.0;
    let seed = 7;
    println!("== Adversary gauntlet (n = {n}, lambda = {lambda}) ==\n");
    println!("{:<34} {:<26} verdict", "protocol", "adversary");
    println!("{}", "-".repeat(86));

    let subq = || ProtocolSpec::SubqHalf { lambda, max_iters: None };
    let epochs = 8;
    let scenarios = vec![
        // 1. subq_half vs passive.
        Scenario::new("subq_passive", n, subq()),
        // 2. subq_half vs crash f = n/3.
        Scenario::new("subq_crash", n, subq())
            .f(n / 3)
            .inputs(InputPattern::Unanimous(true))
            .adversary(AdversarySpec::CrashTail { at_round: 0 }),
        // 3. subq_half vs cert forger below and above the threshold.
        Scenario::new("subq_forger_low", n, subq())
            .f(3 * n / 10)
            .inputs(InputPattern::Unanimous(false))
            .adversary(AdversarySpec::CertForger { target: true }),
        Scenario::new("subq_forger_high", n, subq())
            .f(7 * n / 10)
            .inputs(InputPattern::Unanimous(false))
            .adversary(AdversarySpec::CertForger { target: true }),
        // 4. subq_half vs the strongly adaptive committee eraser (Thm 1).
        Scenario::new(
            "subq_eraser",
            400,
            ProtocolSpec::SubqHalf { lambda: 16.0, max_iters: Some(6) },
        )
        .f(190)
        .model(CorruptionModel::StronglyAdaptive)
        .adversary(AdversarySpec::StarveQuorum),
        // 5. quadratic_half vs the same eraser: survives.
        Scenario::new("quadratic_eraser", 13, ProtocolSpec::QuadraticHalf)
            .f(6)
            .model(CorruptionModel::StronglyAdaptive)
            .inputs(InputPattern::Unanimous(true))
            .adversary(AdversarySpec::CommitteeEraser),
        // 6. The epoch family vs the vote flipper (the §3.3 Remark).
        Scenario::new("epoch_bit_specific", n, ProtocolSpec::SubqThird { lambda, epochs })
            .f(n / 3)
            .model(CorruptionModel::Adaptive)
            .inputs(InputPattern::FirstFrac(0.5))
            .adversary(AdversarySpec::VoteFlipper),
        Scenario::new("epoch_shared", n, ProtocolSpec::SubqShared { lambda, epochs })
            .f(n / 3)
            .model(CorruptionModel::Adaptive)
            .inputs(InputPattern::FirstFrac(0.5))
            .adversary(AdversarySpec::VoteFlipper),
        Scenario::new(
            "epoch_cm_erasure",
            n,
            ProtocolSpec::ChenMicali { lambda, epochs, erasure: true },
        )
        .f(n / 3)
        .model(CorruptionModel::Adaptive)
        .inputs(InputPattern::FirstFrac(0.5))
        .adversary(AdversarySpec::VoteFlipper),
        Scenario::new(
            "epoch_cm_no_erasure",
            n,
            ProtocolSpec::ChenMicali { lambda, epochs, erasure: false },
        )
        .f(n / 3)
        .model(CorruptionModel::Adaptive)
        .inputs(InputPattern::FirstFrac(0.5))
        .adversary(AdversarySpec::VoteFlipper),
    ];
    let scenarios = scenarios.into_iter().map(|s| s.seed_offset(seed)).collect::<Vec<_>>();
    let report = Sweep::new("adversary_gauntlet", 1, scenarios).run_auto();

    let rows: [(&str, &str, &str); 10] = [
        ("subq_passive", "subq_half (C.2)", "passive"),
        ("subq_crash", "subq_half (C.2)", "crash f=n/3"),
        ("subq_forger_low", "subq_half (C.2)", "forger f=0.3n"),
        ("subq_forger_high", "subq_half (C.2)", "forger f=0.7n"),
        ("subq_eraser", "subq_half (C.2, n=400)", "eraser (strongly adaptive)"),
        ("quadratic_eraser", "quadratic_half (C.1, n=13)", "eraser (strongly adaptive)"),
        ("epoch_bit_specific", "subq_third (bit-specific)", "vote flipper"),
        ("epoch_shared", "subq_shared (ablation)", "vote flipper"),
        ("epoch_cm_erasure", "chen_micali + erasure", "vote flipper"),
        ("epoch_cm_no_erasure", "chen_micali, no erasure", "vote flipper"),
    ];
    for (label, protocol, adversary) in rows {
        println!("{:<34} {:<26} {}", protocol, adversary, cell(report.cell(label)));
    }

    println!("\nReading: the paper's constructions hold everywhere except under the");
    println!("strongly adaptive eraser (Theorem 1 says that is unavoidable) and past");
    println!("the resilience threshold; the ablations break exactly where predicted.");
}
