//! The paper's motivating scenario: a large decentralized network (think a
//! proof-of-stake cryptocurrency) confirming a chain of blocks, one binary
//! agreement per block ("accept this block?").
//!
//! Every confirmation runs the Appendix C.2 subquadratic protocol with a
//! fresh committee — adaptive safety comes from bit-specific eligibility,
//! and only ~λ of the `n` validators multicast per round. We confirm ten
//! blocks — one `Scenario` per block, executed in parallel by the sweep
//! workers — with one third of the validators adaptively corrupted and
//! voting adversarially (crash-style), and compare bandwidth against the
//! quadratic baseline.
//!
//! ```sh
//! cargo run -p ba-repro --example blockchain_committee
//! ```

use ba_repro::prelude::*;

/// One block proposal as seen by the validators: an id plus each validator's
/// local view of whether the block is valid (their input bit).
struct BlockProposal {
    height: u64,
    /// Fraction of honest validators that consider the block valid.
    approval: f64,
}

fn main() {
    let n = 300; // validators
    let lambda = 24.0;
    let f = n / 3; // adaptively corrupted validators (crash after round 2)
    println!("== Committee-based block confirmation ==");
    println!("validators: {n}, corrupt: {f}, committee size (lambda): {lambda}\n");

    let chain: Vec<BlockProposal> = (0..10)
        .map(|height| BlockProposal {
            height,
            // Blocks 0,1,2,... alternate between clearly-valid, clearly
            // invalid, and contentious.
            approval: match height % 3 {
                0 => 1.0,
                1 => 0.0,
                _ => 0.55,
            },
        })
        .collect();

    // One scenario per block: honest validators' inputs reflect their view
    // of the block; the adversary crashes its validators mid-protocol (a
    // benign but adaptive fault; see `adversary_gauntlet` for nastier
    // ones). Each block gets its own seed, hence its own fresh committees.
    let scenarios = chain
        .iter()
        .map(|block| {
            Scenario::new(
                format!("block={}", block.height),
                n,
                ProtocolSpec::SubqHalf { lambda, max_iters: None },
            )
            .f(f)
            .model(CorruptionModel::Adaptive)
            .inputs(InputPattern::FirstFrac(block.approval))
            .adversary(AdversarySpec::CrashTail { at_round: 2 })
            .seed_offset(0xB10C + block.height)
        })
        .collect();
    let report = Sweep::new("block_confirmation", 1, scenarios).run_auto();

    let mut confirmed = 0usize;
    let mut rejected = 0usize;
    let mut total_multicasts = 0u64;
    let mut total_kbits = 0u64;
    let mut total_rounds = 0u64;

    for (block, cell) in chain.iter().zip(&report.cells) {
        let run = &cell.runs[0];
        assert!(
            run.flag("consistent") && run.flag("terminated"),
            "block {}: consistency/termination failed",
            block.height
        );
        let decision = run.get("decision").expect("terminated") != 0.0;
        if decision {
            confirmed += 1;
        } else {
            rejected += 1;
        }
        let multicasts = run.get("multicasts").unwrap_or(0.0) as u64;
        let rounds = run.get("rounds").unwrap_or(0.0) as u64;
        total_multicasts += multicasts;
        total_kbits += run.get("multicast_bits").unwrap_or(0.0) as u64 / 1000;
        total_rounds += rounds;
        println!(
            "block {:>2}: approval {:>4.0}% -> {} ({} rounds, {} multicasts)",
            block.height,
            block.approval * 100.0,
            if decision { "CONFIRMED" } else { "rejected " },
            rounds,
            multicasts,
        );
    }

    println!("\nchain summary: {confirmed} confirmed, {rejected} rejected");
    println!(
        "bandwidth: {total_multicasts} multicasts / {total_kbits} kbits across {} rounds",
        total_rounds
    );
    println!(
        "a quadratic protocol at n = {n} would have multicast ~{} messages",
        n as u64 * total_rounds
    );
}
