//! The paper's motivating scenario: a large decentralized network (think a
//! proof-of-stake cryptocurrency) confirming a chain of blocks, one binary
//! agreement per block ("accept this block?").
//!
//! Every confirmation runs the Appendix C.2 subquadratic protocol with a
//! fresh committee — adaptive safety comes from bit-specific eligibility,
//! and only ~λ of the `n` validators multicast per round. We confirm ten
//! blocks, with one third of the validators adaptively corrupted and
//! voting adversarially (crash-style), and compare bandwidth against the
//! quadratic baseline.
//!
//! ```sh
//! cargo run -p ba-repro --example blockchain_committee
//! ```

use std::sync::Arc;

use ba_repro::prelude::*;

/// One block proposal as seen by the validators: an id plus each validator's
/// local view of whether the block is valid (their input bit).
struct BlockProposal {
    height: u64,
    /// Fraction of honest validators that consider the block valid.
    approval: f64,
}

fn main() {
    let n = 300; // validators
    let lambda = 24.0;
    let f = n / 3; // adaptively corrupted validators (crash after round 2)
    println!("== Committee-based block confirmation ==");
    println!("validators: {n}, corrupt: {f}, committee size (lambda): {lambda}\n");

    let chain: Vec<BlockProposal> = (0..10)
        .map(|height| BlockProposal {
            height,
            // Blocks 0,1,2,... alternate between clearly-valid, clearly
            // invalid, and contentious.
            approval: match height % 3 {
                0 => 1.0,
                1 => 0.0,
                _ => 0.55,
            },
        })
        .collect();

    let mut confirmed = 0usize;
    let mut rejected = 0usize;
    let mut total_multicasts = 0u64;
    let mut total_kbits = 0u64;
    let mut total_rounds = 0u64;

    for block in &chain {
        let seed = 0xB10C + block.height;
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, f, CorruptionModel::Adaptive, seed);

        // Honest validators' inputs reflect their view of the block.
        let inputs: Vec<Bit> = (0..n).map(|i| (i as f64 / n as f64) < block.approval).collect();

        // The adversary crashes its validators mid-protocol (a benign but
        // adaptive fault; see `adversary_gauntlet` for nastier ones).
        let adversary = CrashAt { nodes: (n - f..n).map(NodeId).collect(), at_round: 2 };
        let (report, verdict) = ba_repro::iter_run(&cfg, &sim, inputs, adversary);
        assert!(verdict.consistent && verdict.terminated, "block {}: {verdict:?}", block.height);
        let decision = report
            .forever_honest()
            .next()
            .and_then(|i| report.outputs[i.index()])
            .expect("terminated");
        if decision {
            confirmed += 1;
        } else {
            rejected += 1;
        }
        total_multicasts += report.metrics.honest_multicasts;
        total_kbits += report.metrics.honest_multicast_bits / 1000;
        total_rounds += report.rounds_used;
        println!(
            "block {:>2}: approval {:>4.0}% -> {} ({} rounds, {} multicasts)",
            block.height,
            block.approval * 100.0,
            if decision { "CONFIRMED" } else { "rejected " },
            report.rounds_used,
            report.metrics.honest_multicasts,
        );
    }

    println!("\nchain summary: {confirmed} confirmed, {rejected} rejected");
    println!(
        "bandwidth: {total_multicasts} multicasts / {total_kbits} kbits across {} rounds",
        total_rounds
    );
    println!(
        "a quadratic protocol at n = {n} would have multicast ~{} messages",
        n as u64 * total_rounds
    );
}
