//! Executes both lower-bound constructions and narrates what they show.
//!
//! ```sh
//! cargo run -p ba-repro --example lower_bounds
//! ```

use ba_repro::lowerbound::{theorem3, theorem4};

fn main() {
    println!("== Lower bound 1 (Theorems 1/4): Omega(f^2) under strong adaptivity ==\n");
    println!("Dolev-Reischuk pair vs. a relay-broadcast family (n=80, f=40, 20 seeds).");
    println!("fanout | msgs   | isolated p | violations");
    for fanout in [0usize, 2, 8, 32, 64] {
        let cell = theorem4::run_cell(80, 40, fanout, 20);
        println!(
            "{:>6} | {:>6.0} | {:>10.2} | {:>10.2}",
            fanout, cell.mean_messages, cell.isolation_rate, cell.violation_rate
        );
    }
    println!("\nLow-budget protocols are broken (p isolated, outputs split); only after");
    println!("the message count grows toward Theta(f^2) does the attack stop working.\n");

    println!("== Lower bound 2 (Theorem 3): setup is necessary ==\n");
    let rep = theorem3::run_experiment(50, 6);
    println!("Merged execution (input 0) Q --- 1 --- Q' (input 1), candidate without PKI:");
    println!("  Q   outputs 0 everywhere: {}", rep.q_valid);
    println!("  Q'  outputs 1 everywhere: {}", rep.q_prime_valid);
    println!("  node 1 outputs:           {:?}", rep.node1_output.map(|b| b as u8));
    println!("  inconsistent with Q:      {}", rep.node1_inconsistent_with_q);
    println!("  inconsistent with Q':     {}", rep.node1_inconsistent_with_q_prime);
    println!(
        "  adaptive corruptions the honest-1 interpretation needs: {} (of n = 50)",
        rep.corruptions_needed
    );
    assert!(rep.contradiction_established());
    println!("\nWhatever node 1 answers, one interpretation convicts the protocol:");
    println!("sublinear-multicast BA without setup cannot tolerate as many adaptive");
    println!("corruptions as it has speakers.");
}
