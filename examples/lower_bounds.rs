//! Executes both lower-bound constructions through the `Scenario`/`Sweep`
//! API and narrates what they show.
//!
//! ```sh
//! cargo run -p ba-repro --example lower_bounds
//! ```

use ba_repro::prelude::*;

fn main() {
    println!("== Lower bound 1 (Theorems 1/4): Omega(f^2) under strong adaptivity ==\n");
    println!("Dolev-Reischuk pair vs. a relay-broadcast family (n=80, f=40, 20 seeds).");
    println!("fanout | msgs   | isolated p | violations");
    let fanouts = [0usize, 2, 8, 32, 64];
    let sweep = Sweep::new(
        "theorem4",
        20,
        fanouts
            .iter()
            .map(|&fanout| {
                Scenario::new(format!("fanout={fanout}"), 80, ProtocolSpec::Theorem4 { fanout })
                    .f(40)
                    .model(CorruptionModel::StronglyAdaptive)
            })
            .collect(),
    );
    let report = sweep.run_auto();
    for (cell, fanout) in report.cells.iter().zip(fanouts) {
        println!(
            "{:>6} | {:>6.0} | {:>10.2} | {:>10.2}",
            fanout,
            cell.mean("messages"),
            cell.rate("isolated"),
            cell.rate("violated")
        );
    }
    println!("\nLow-budget protocols are broken (p isolated, outputs split); only after");
    println!("the message count grows toward Theta(f^2) does the attack stop working.\n");

    println!("== Lower bound 2 (Theorem 3): setup is necessary ==\n");
    let outcome = Scenario::new("theorem3", 50, ProtocolSpec::Theorem3 { committee: 6 }).execute(0);
    let rep = &outcome.record;
    println!("Merged execution (input 0) Q --- 1 --- Q' (input 1), candidate without PKI:");
    println!("  Q   outputs 0 everywhere: {}", rep.flag("q_valid"));
    println!("  Q'  outputs 1 everywhere: {}", rep.flag("q_prime_valid"));
    let node1 = match rep.optional_bit("node1_output") {
        Some(bit) => format!("Some({})", bit as u8),
        None => "None".to_string(),
    };
    println!("  node 1 outputs:           {node1}");
    println!("  inconsistent with Q:      {}", rep.flag("node1_inconsistent_with_q"));
    println!("  inconsistent with Q':     {}", rep.flag("node1_inconsistent_with_q_prime"));
    println!(
        "  adaptive corruptions the honest-1 interpretation needs: {} (of n = 50)",
        rep.get("corruptions_needed").unwrap_or(0.0) as u64
    );
    assert!(rep.flag("contradiction"));
    println!("\nWhatever node 1 answers, one interpretation convicts the protocol:");
    println!("sublinear-multicast BA without setup cannot tolerate as many adaptive");
    println!("corruptions as it has speakers.");
}
