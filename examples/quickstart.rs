//! Quickstart: run the paper's headline protocol (Appendix C.2 — Theorem 2)
//! once through the declarative `Scenario` API and inspect what happened.
//!
//! ```sh
//! cargo run -p ba-repro --example quickstart
//! ```

use ba_repro::prelude::*;

fn main() {
    // 100 nodes, expected committee size lambda = 24, no corruption.
    let n = 100;
    let lambda = 24.0;
    let seed = 2026;

    // The scenario describes the run: Theorem 2's protocol over the ideal
    // F_mine eligibility functionality (Figure 1) with a split-vote input.
    // Chain `.real_elig()` to swap in the App. D real-world VRF compiler.
    let scenario =
        Scenario::new("quickstart", n, ProtocolSpec::SubqHalf { lambda, max_iters: None })
            .inputs(InputPattern::EveryThird);

    let outcome = scenario.execute(seed);
    let report = outcome.report.expect("protocol scenarios produce a report");
    let verdict = outcome.verdict.expect("protocol scenarios produce a verdict");
    let quorum = (lambda / 2.0).ceil() as usize;

    println!("== Byzantine Agreement, Revisited: quickstart ==");
    println!("n = {n}, lambda = {lambda}, quorum = {quorum}");
    println!();
    println!("consistent: {}", verdict.consistent);
    println!("valid:      {}", verdict.valid);
    println!("terminated: {}", verdict.terminated);
    let decided: Vec<u8> = report.outputs.iter().map(|o| o.map(|b| b as u8).unwrap_or(9)).collect();
    println!("decision:   {} (all nodes)", decided[0]);
    assert!(decided.iter().all(|&d| d == decided[0]));
    println!();
    println!("rounds used:        {}", report.rounds_used);
    println!(
        "honest multicasts:  {} (a full-participation protocol would need ~{})",
        report.metrics.honest_multicasts,
        n as u64 * report.rounds_used
    );
    println!("multicast kbits:    {}", report.metrics.honest_multicast_bits / 1000);
    println!("classical messages: {}", report.metrics.classical_messages(n));
}
