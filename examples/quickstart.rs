//! Quickstart: run the paper's headline protocol (Appendix C.2 — Theorem 2)
//! once and inspect what happened.
//!
//! ```sh
//! cargo run -p ba-repro --example quickstart
//! ```

use std::sync::Arc;

use ba_repro::prelude::*;

fn main() {
    // 100 nodes, expected committee size lambda = 24, no corruption.
    let n = 100;
    let lambda = 24.0;
    let seed = 2026;

    // Trusted setup: the F_mine eligibility functionality (Figure 1). Swap
    // in `RealMine::from_seed` for the real-world VRF compiler of App. D.
    let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
    let cfg = IterConfig::subq_half(n, elig);

    // The environment hands every node an input bit (here: a split vote).
    let inputs: Vec<Bit> = (0..n).map(|i| i % 3 == 0).collect();
    let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);

    let (report, verdict) = ba_repro::iter_run(&cfg, &sim, inputs, Passive);

    println!("== Byzantine Agreement, Revisited: quickstart ==");
    println!("n = {n}, lambda = {lambda}, quorum = {}", cfg.quorum);
    println!();
    println!("consistent: {}", verdict.consistent);
    println!("valid:      {}", verdict.valid);
    println!("terminated: {}", verdict.terminated);
    let decided: Vec<u8> = report.outputs.iter().map(|o| o.map(|b| b as u8).unwrap_or(9)).collect();
    println!("decision:   {} (all nodes)", decided[0]);
    assert!(decided.iter().all(|&d| d == decided[0]));
    println!();
    println!("rounds used:        {}", report.rounds_used);
    println!(
        "honest multicasts:  {} (a full-participation protocol would need ~{})",
        report.metrics.honest_multicasts,
        n as u64 * report.rounds_used
    );
    println!("multicast kbits:    {}", report.metrics.honest_multicast_bits / 1000);
    println!("classical messages: {}", report.metrics.classical_messages(n));
}
