//! Property-based tests for the cryptographic substrate.

use ba_crypto::bigint::{ModCtx, U256, U512};
use ba_crypto::commit::{HashCommitment, MerkleTree};
use ba_crypto::group::Group;
use ba_crypto::schnorr::SigningKey;
use ba_crypto::vrf::VrfSecretKey;
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_sub_roundtrip(a in arb_u256(), b in arb_u256()) {
        let (sum, _) = a.overflowing_add(&b);
        let (back, _) = sum.overflowing_sub(&b);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    #[test]
    fn mul_wide_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.mul_wide(&b), b.mul_wide(&a));
    }

    #[test]
    fn mul_wide_matches_u128_for_small(a in any::<u64>(), b in any::<u64>()) {
        let product = U256::from_u64(a).mul_wide(&U256::from_u64(b));
        prop_assert_eq!(product.low_u256(), U256::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn be_bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn shl_then_shr_preserves_sub_255_bits(a in arb_u256()) {
        let masked = {
            let mut v = a;
            v.0[3] &= !(1 << 63);
            v
        };
        prop_assert_eq!(masked.shl1().shr1(), masked);
    }

    #[test]
    fn montgomery_matches_u128_reference(
        a in any::<u64>(),
        b in any::<u64>(),
        m in (3u64..u64::MAX / 2).prop_map(|v| v | 1), // odd modulus >= 3
    ) {
        let ctx = ModCtx::new(U256::from_u64(m));
        let expect = ((a as u128 % m as u128) * (b as u128 % m as u128)) % m as u128;
        let got = ctx.mul(
            &U256::from_u64(a).reduce_mod(&U256::from_u64(m)),
            &U256::from_u64(b).reduce_mod(&U256::from_u64(m)),
        );
        prop_assert_eq!(got, U256::from_u128(expect));
    }

    #[test]
    fn reduce_wide_agrees_with_binary_rem(a in arb_u256(), b in arb_u256()) {
        let g = Group::standard();
        let ctx = ModCtx::new(*g.prime());
        let wide = a.mul_wide(&b);
        prop_assert_eq!(ctx.reduce_wide(&wide), wide.rem(g.prime()));
    }

    #[test]
    fn rem_is_below_modulus(a in arb_u256(), b in arb_u256(), m in arb_u256()) {
        prop_assume!(!m.is_zero());
        let wide = a.mul_wide(&b);
        let r = wide.rem(&m);
        prop_assert!(r < m);
    }

    #[test]
    fn rem_of_exact_multiple_is_zero(a in arb_u256()) {
        // a * m mod m == 0 for the group prime m.
        let g = Group::standard();
        let wide = a.mul_wide(g.prime());
        prop_assert_eq!(wide.rem(g.prime()), U256::ZERO);
    }

    #[test]
    fn u512_from_u256_preserves_value(a in arb_u256()) {
        let w = U512::from_u256(&a);
        prop_assert_eq!(w.low_u256(), a);
        prop_assert_eq!(w.bits(), a.bits());
    }

    #[test]
    fn sqr_wide_matches_mul_wide(a in arb_u256()) {
        prop_assert_eq!(a.sqr_wide(), a.mul_wide(&a));
    }

    #[test]
    fn special_modulus_mul_matches_binary_rem(a in arb_u256(), b in arb_u256()) {
        // The pseudo-Mersenne fold path (p = 2^256 - 36113) must agree with
        // the bit-serial long-division reference on full products, and sqr
        // with mul.
        let g = Group::standard();
        let ctx = ModCtx::new(*g.prime());
        let wide = a.mul_wide(&b);
        prop_assert_eq!(ctx.reduce_wide(&wide), wide.rem(g.prime()));
        prop_assert_eq!(ctx.sqr(&a), ctx.mul(&a, &a));
        let ar = a.reduce_mod(g.prime());
        let br = b.reduce_mod(g.prime());
        prop_assert_eq!(ctx.mul(&ar, &br), ar.mul_wide(&br).rem(g.prime()));
    }

    #[test]
    fn cios_matches_generic_montgomery_reference(a in arb_u256(), b in arb_u256()) {
        let g = Group::standard();
        let ctx = ModCtx::new(*g.prime());
        prop_assert_eq!(ctx.mont_mul(&a, &b), ctx.mont_mul_ref(&a, &b));
        prop_assert_eq!(ctx.mont_sqr(&a), ctx.mont_mul_ref(&a, &a));
    }

    #[test]
    fn cios_matches_reference_for_small_odd_moduli(
        a in arb_u256(),
        b in arb_u256(),
        m in (3u64..u64::MAX / 2).prop_map(|v| v | 1),
    ) {
        let ctx = ModCtx::new(U256::from_u64(m));
        let ar = a.reduce_mod(&U256::from_u64(m));
        let br = b.reduce_mod(&U256::from_u64(m));
        prop_assert_eq!(ctx.mont_mul(&ar, &br), ctx.mont_mul_ref(&ar, &br));
        prop_assert_eq!(ctx.mont_sqr(&ar), ctx.mont_mul_ref(&ar, &ar));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn group_exponent_laws(a_seed in any::<[u8; 16]>(), b_seed in any::<[u8; 16]>()) {
        let g = Group::standard();
        let a = g.scalar_from_bytes(&a_seed);
        let b = g.scalar_from_bytes(&b_seed);
        let lhs = g.pow_g(&g.scalar_add(&a, &b));
        let rhs = g.mul(&g.pow_g(&a), &g.pow_g(&b));
        prop_assert_eq!(lhs, rhs);
        prop_assert_eq!(g.pow(&g.pow_g(&a), &b), g.pow(&g.pow_g(&b), &a));
    }

    #[test]
    fn hash_to_group_always_valid(domain in any::<Vec<u8>>(), msg in any::<Vec<u8>>()) {
        let g = Group::standard();
        let e = g.hash_to_group(&domain, &msg);
        prop_assert!(g.is_valid_element(&e));
    }

    #[test]
    fn schnorr_roundtrip_arbitrary_messages(seed in any::<[u8; 16]>(), msg in any::<Vec<u8>>()) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig));
    }

    #[test]
    fn schnorr_rejects_appended_byte(seed in any::<[u8; 16]>(), msg in any::<Vec<u8>>(), extra in any::<u8>()) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        let mut tampered = msg.clone();
        tampered.push(extra);
        prop_assert!(!key.verifying_key().verify(&tampered, &sig));
    }

    #[test]
    fn vrf_unique_and_verifiable(seed in any::<[u8; 16]>(), msg in any::<Vec<u8>>()) {
        let key = VrfSecretKey::from_seed(&seed);
        let out1 = key.evaluate(&msg);
        let out2 = key.evaluate(&msg);
        prop_assert_eq!(out1.rho(), out2.rho());
        prop_assert!(key.public_key().verify(&msg, &out1));
    }

    #[test]
    fn hash_commitment_opens_only_with_exact_inputs(
        value in any::<Vec<u8>>(),
        rho in any::<Vec<u8>>(),
        other in any::<Vec<u8>>(),
    ) {
        let c = HashCommitment::commit(&value, &rho);
        prop_assert!(c.verify(&value, &rho));
        if other != value {
            prop_assert!(!c.verify(&other, &rho));
        }
        if other != rho {
            prop_assert!(!c.verify(&value, &other));
        }
    }

    #[test]
    fn merkle_inclusion_for_every_leaf(leaves in prop::collection::vec(any::<Vec<u8>>(), 1..24)) {
        let tree = MerkleTree::build(&leaves);
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i);
            prop_assert!(MerkleTree::verify(&root, leaf, &proof), "leaf {}", i);
        }
    }

    #[test]
    fn merkle_rejects_foreign_leaves(
        leaves in prop::collection::vec(any::<Vec<u8>>(), 1..12),
        foreign in any::<Vec<u8>>(),
    ) {
        prop_assume!(!leaves.contains(&foreign));
        let tree = MerkleTree::build(&leaves);
        let proof = tree.prove(0);
        prop_assert!(!MerkleTree::verify(&tree.root(), &foreign, &proof));
    }
}
