//! A statistical rendition of the paper's Appendix E security game:
//! *pseudorandomness under selective opening* (Definition 20).
//!
//! The computational game cannot be "tested" (we are not distinguishers),
//! but its structure can be executed and its observable consequences
//! checked:
//!
//! * **Create instance / Evaluate / Corrupt / Challenge** queries all work
//!   as the game demands;
//! * corrupted instances open correctly (the secret key really is the
//!   discrete log of the published key — perfect binding);
//! * outputs of *uncorrupted* instances on fresh messages pass crude
//!   uniformity checks, and corrupting one instance leaves other instances'
//!   outputs untouched (the "selective" part: openings are per-instance).

use ba_crypto::group::Group;
use ba_crypto::vrf::{VrfOutput, VrfPublicKey, VrfSecretKey};

/// The challenger of the selective-opening game.
struct Challenger {
    instances: Vec<VrfSecretKey>,
    corrupted: Vec<bool>,
}

impl Challenger {
    fn new() -> Challenger {
        Challenger { instances: Vec::new(), corrupted: Vec::new() }
    }

    /// "Create instance" query.
    fn create(&mut self) -> usize {
        let idx = self.instances.len();
        let seed = format!("selective-opening-instance-{idx}");
        self.instances.push(VrfSecretKey::from_seed(seed.as_bytes()));
        self.corrupted.push(false);
        idx
    }

    /// "Evaluate" query.
    fn evaluate(&self, i: usize, msg: &[u8]) -> VrfOutput {
        self.instances[i].evaluate(msg)
    }

    /// "Corrupt" query: hands out the secret key.
    fn corrupt(&mut self, i: usize) -> &VrfSecretKey {
        self.corrupted[i] = true;
        &self.instances[i]
    }

    fn public_key(&self, i: usize) -> VrfPublicKey {
        self.instances[i].public_key()
    }
}

#[test]
fn corrupted_instances_open_their_public_keys() {
    // Perfect binding: the revealed secret must be THE secret for the
    // published key (pk = g^sk admits exactly one sk). The adversary checks
    // the opening through the public key and through evaluation consistency
    // on messages it queried before corruption.
    let _ = Group::standard(); // force parameter setup
    let mut challenger = Challenger::new();
    for _ in 0..8 {
        challenger.create();
    }
    for i in [1usize, 3, 6] {
        let pk = challenger.public_key(i);
        let pre = challenger.evaluate(i, b"probe");
        let sk = challenger.corrupt(i).clone();
        assert_eq!(sk.public_key().to_bytes(), pk.to_bytes(), "instance {i}");
        assert_eq!(sk.evaluate(b"probe").rho(), pre.rho(), "instance {i}");
    }
}

#[test]
fn corrupting_one_instance_does_not_perturb_others() {
    let mut challenger = Challenger::new();
    let a = challenger.create();
    let b = challenger.create();
    let before: Vec<[u8; 32]> =
        (0..16u32).map(|m| challenger.evaluate(b, &m.to_be_bytes()).rho()).collect();
    let _leak = challenger.corrupt(a);
    let after: Vec<[u8; 32]> =
        (0..16u32).map(|m| challenger.evaluate(b, &m.to_be_bytes()).rho()).collect();
    assert_eq!(before, after, "instance b's outputs must be unaffected");
}

#[test]
fn challenge_outputs_look_uniform() {
    // Crude frequency tests over uncorrupted instances' outputs: byte mean
    // near 127.5 and top-bit frequency near 1/2. A PRF break would have to
    // be enormous to fail these; the point is executing the challenge phase.
    let mut challenger = Challenger::new();
    let i = challenger.create();
    let mut top_bits = 0u64;
    let mut byte_sum = 0u64;
    let samples = 500u32;
    for m in 0..samples {
        let out = challenger.evaluate(i, &m.to_be_bytes());
        top_bits += out.rho_u64() >> 63;
        byte_sum += out.rho()[0] as u64;
    }
    let top_rate = top_bits as f64 / samples as f64;
    let byte_mean = byte_sum as f64 / samples as f64;
    assert!((0.38..0.62).contains(&top_rate), "top-bit rate {top_rate}");
    assert!((110.0..145.0).contains(&byte_mean), "byte mean {byte_mean}");
}

#[test]
fn evaluations_before_and_after_corruption_are_consistent() {
    // The game's compliance rule aside, the functionality itself must be
    // deterministic: corruption reveals the key but does not change the
    // function.
    let mut challenger = Challenger::new();
    let i = challenger.create();
    let pre = challenger.evaluate(i, b"challenge-message");
    let sk = challenger.corrupt(i).clone();
    let post = sk.evaluate(b"challenge-message");
    assert_eq!(pre.rho(), post.rho());
    assert!(sk.public_key().verify(b"challenge-message", &post));
}

#[test]
fn distinct_instances_have_unrelated_outputs() {
    let mut challenger = Challenger::new();
    let a = challenger.create();
    let b = challenger.create();
    let mut coincidences = 0;
    for m in 0..64u32 {
        if challenger.evaluate(a, &m.to_be_bytes()).rho()
            == challenger.evaluate(b, &m.to_be_bytes()).rho()
        {
            coincidences += 1;
        }
    }
    assert_eq!(coincidences, 0);
}
