//! Property tests pinning the crypto fast paths to their slow reference
//! implementations: fixed-base window tables and Straus/interleaved
//! multi-exponentiation against square-and-multiply, Jacobi-symbol subgroup
//! membership against the defining `x^q == 1` test, and batch verification
//! against per-signature / per-ticket verification — including the
//! must-reject case where exactly one member of a batch is invalid.

use ba_crypto::aggregate;
use ba_crypto::bigint::{jacobi, ModCtx, U256};
use ba_crypto::group::Group;
use ba_crypto::schnorr::{self, SigningKey};
use ba_crypto::vrf::{self, VrfSecretKey};
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fixed_base_table_matches_square_and_multiply(base in arb_u256(), exp in arb_u256()) {
        let g = Group::standard();
        let ctx = ModCtx::new(*g.prime());
        let slow = ctx.pow(&base, &exp);
        for width in [2usize, 4, 6, 8] {
            let table = ctx.precompute_wide(&base, width);
            prop_assert_eq!(ctx.pow_fixed(&table, &exp), slow, "width={}", width);
        }
    }

    #[test]
    fn straus_double_exp_matches_two_pows(
        b1 in arb_u256(),
        e1 in arb_u256(),
        b2 in arb_u256(),
        e2 in arb_u256(),
    ) {
        let g = Group::standard();
        let ctx = ModCtx::new(*g.prime());
        let fast = ctx.pow2(&b1, &e1, &b2, &e2);
        let slow = ctx.mul(&ctx.pow(&b1, &e1), &ctx.pow(&b2, &e2));
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn multi_pow_matches_product_of_pows(
        terms in prop::collection::vec((any::<[u64; 4]>(), any::<[u64; 4]>()), 0..8),
        short in any::<u64>(),
    ) {
        let g = Group::standard();
        let ctx = ModCtx::new(*g.prime());
        // Mix in a short (64-bit) exponent to hit the adaptive window path.
        let mut terms: Vec<(U256, U256)> =
            terms.into_iter().map(|(b, e)| (U256(b), U256(e))).collect();
        terms.push((U256::from_u64(7), U256::from_u64(short)));
        let fast = ctx.multi_pow(&terms);
        let mut slow = U256::ONE.reduce_mod(g.prime());
        for (b, e) in &terms {
            slow = ctx.mul(&slow, &ctx.pow(b, e));
        }
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn jacobi_membership_matches_euler_criterion(x in arb_u256()) {
        let g = Group::standard();
        let e = ba_crypto::group::Element::from_raw_unchecked(x.reduce_mod(g.prime()));
        prop_assert_eq!(g.is_valid_element(&e), g.is_valid_element_slow(&e));
    }

    #[test]
    fn jacobi_of_small_values_matches_legendre(a in 0u64..1000, p in 3u64..1000) {
        // Cross-check against direct Euler criterion for small odd primes.
        let p = p | 1;
        prop_assume!(ba_crypto::prime::is_probable_prime(&U256::from_u64(p), 16));
        let expected = match mod_pow_u64(a % p, (p - 1) / 2, p) {
            0 => 0i32,
            1 => 1,
            _ => -1,
        };
        prop_assert_eq!(jacobi(&U256::from_u64(a), &U256::from_u64(p)), expected);
    }
}

fn mod_pow_u64(base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut acc: u128 = 1;
    let mut b = base as u128 % modulus as u128;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % modulus as u128;
        }
        b = b * b % modulus as u128;
        exp >>= 1;
    }
    acc as u64
}

fn schnorr_batch(
    n: usize,
    seed: u64,
) -> (Vec<SigningKey>, Vec<Vec<u8>>, Vec<ba_crypto::schnorr::Signature>) {
    let keys: Vec<SigningKey> =
        (0..n).map(|i| SigningKey::from_seed(&(seed ^ i as u64).to_be_bytes())).collect();
    let msgs: Vec<Vec<u8>> = (0..n).map(|i| format!("batch-msg-{seed}-{i}").into_bytes()).collect();
    let sigs = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
    (keys, msgs, sigs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn schnorr_batch_accepts_iff_all_singles_accept(seed in any::<u64>(), n in 2usize..12) {
        let (keys, msgs, sigs) = schnorr_batch(n, seed);
        let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
        let items: Vec<schnorr::BatchItem> = (0..n)
            .map(|i| schnorr::BatchItem { key: &vks[i], msg: &msgs[i], sig: &sigs[i] })
            .collect();
        prop_assert!((0..n).all(|i| vks[i].verify(&msgs[i], &sigs[i])));
        prop_assert!(schnorr::verify_batch(&items));
        prop_assert!(schnorr::verify_batch(&[])); // empty batch is vacuous
    }

    #[test]
    fn schnorr_batch_rejects_one_invalid_member(
        seed in any::<u64>(),
        n in 2usize..12,
        bad in 0usize..12,
        corruption in 0usize..3,
    ) {
        let bad = bad % n;
        let g = Group::standard();
        let (keys, msgs, mut sigs) = schnorr_batch(n, seed);
        let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
        // Corrupt exactly one signature three different ways.
        match corruption {
            0 => sigs[bad].s = g.scalar_add(&sigs[bad].s, &g.scalar_from_u64(1)),
            1 => sigs[bad].r = g.mul(&sigs[bad].r, &g.generator()),
            _ => sigs[bad] = keys[bad].sign(b"a different message entirely"),
        }
        let items: Vec<schnorr::BatchItem> = (0..n)
            .map(|i| schnorr::BatchItem { key: &vks[i], msg: &msgs[i], sig: &sigs[i] })
            .collect();
        prop_assert!(!vks[bad].verify(&msgs[bad], &sigs[bad]));
        prop_assert!(
            !schnorr::verify_batch(&items),
            "batch with one invalid member (corruption {}) must reject",
            corruption
        );
    }

    #[test]
    fn vrf_prepared_paths_are_bit_identical(seed in any::<[u8; 16]>(), msg in any::<Vec<u8>>()) {
        // The F_mine fast path: evaluating/verifying against a
        // PreparedInput (shared hash-to-group + window table) must produce
        // the same output bytes and the same verdicts as the plain API.
        let key = VrfSecretKey::from_seed(&seed);
        let pre = vrf::PreparedInput::new(&msg);
        let plain = key.evaluate(&msg);
        let fast = key.evaluate_prepared(&pre);
        prop_assert_eq!(plain.rho(), fast.rho());
        prop_assert_eq!(plain, fast);
        let pk = key.public_key();
        prop_assert!(pk.verify_prepared(&pre, &fast));
        prop_assert!(pk.verify(&msg, &fast));
        // A forged output must be rejected by both paths.
        let g = Group::standard();
        let mut forged = fast;
        forged.gamma = g.mul(&forged.gamma, &g.generator());
        prop_assert!(!pk.verify_prepared(&pre, &forged));
        prop_assert!(!pk.verify(&msg, &forged));
    }

    #[test]
    fn vrf_batch_accepts_valid_and_rejects_one_invalid(
        seed in any::<u64>(),
        n in 2usize..8,
        bad in 0usize..8,
    ) {
        let bad = bad % n;
        let g = Group::standard();
        let keys: Vec<VrfSecretKey> = (0..n)
            .map(|i| VrfSecretKey::from_seed(&(seed ^ i as u64).to_be_bytes()))
            .collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let msgs: Vec<Vec<u8>> =
            (0..n).map(|i| format!("vrf-batch-{seed}-{i}").into_bytes()).collect();
        let mut outs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.evaluate(m)).collect();
        {
            let items: Vec<vrf::BatchItem> = (0..n)
                .map(|i| vrf::BatchItem { key: &pks[i], msg: &msgs[i], out: &outs[i] })
                .collect();
            prop_assert!(vrf::verify_batch(&items), "all-valid batch must accept");
        }
        // Forge exactly one output (shifted gamma, honest proof).
        outs[bad].gamma = g.mul(&outs[bad].gamma, &g.generator());
        let items: Vec<vrf::BatchItem> = (0..n)
            .map(|i| vrf::BatchItem { key: &pks[i], msg: &msgs[i], out: &outs[i] })
            .collect();
        prop_assert!(!pks[bad].verify(&msgs[bad], &outs[bad]));
        prop_assert!(!vrf::verify_batch(&items), "batch with one forged output must reject");
    }

    #[test]
    fn batch_verdict_unchanged_by_cached_pk_tables(seed in any::<u64>()) {
        // Registering public keys in the fixed-base table cache must not
        // change any accept/reject decision, only the speed.
        let g = Group::standard();
        let n = 6;
        let (keys, msgs, mut sigs) = schnorr_batch(n, seed);
        let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
        for vk in &vks {
            g.ensure_cached_table(&vk.0);
        }
        let items: Vec<schnorr::BatchItem> = (0..n)
            .map(|i| schnorr::BatchItem { key: &vks[i], msg: &msgs[i], sig: &sigs[i] })
            .collect();
        prop_assert!(schnorr::verify_batch(&items));
        sigs[3].s = g.scalar_add(&sigs[3].s, &g.scalar_from_u64(1));
        let items: Vec<schnorr::BatchItem> = (0..n)
            .map(|i| schnorr::BatchItem { key: &vks[i], msg: &msgs[i], sig: &sigs[i] })
            .collect();
        prop_assert!(!schnorr::verify_batch(&items));
    }
}

/// Pinned-seed must-reject regression: every multiplication and squaring in
/// this batch verification now flows through the fused CIOS / `mont_sqr`
/// field arithmetic, and a single bad signature must still sink the batch.
/// (The proptest variants above cover random seeds; this case is the fixed
/// one CI history can bisect against.)
#[test]
fn batch_must_reject_regression_through_cios_path() {
    let g = Group::standard();
    let (keys, msgs, mut sigs) = schnorr_batch(16, 0xBA5E_BA11);
    let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
    let valid: Vec<schnorr::BatchItem> = (0..16)
        .map(|i| schnorr::BatchItem { key: &vks[i], msg: &msgs[i], sig: &sigs[i] })
        .collect();
    assert!(schnorr::verify_batch(&valid), "all-valid batch must accept");
    sigs[11].s = g.scalar_add(&sigs[11].s, &g.scalar_from_u64(1));
    let tampered: Vec<schnorr::BatchItem> = (0..16)
        .map(|i| schnorr::BatchItem { key: &vks[i], msg: &msgs[i], sig: &sigs[i] })
        .collect();
    assert!(!schnorr::verify_batch(&tampered), "one bad signature must sink the batch");
}

/// A deterministic pool of signing keys plus a random quorum drawn from it.
fn key_pool(size: usize) -> Vec<SigningKey> {
    (0..size as u32).map(|i| SigningKey::from_seed(&i.to_be_bytes())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The aggregate fast path (two Straus multi-exponentiations over the
    /// cached fixed-base tables) agrees exactly with the pinned slow
    /// reference over random quorums: both accept the honest aggregate and
    /// both reject a tampered response, a swapped statement, and a
    /// substituted co-signer key.
    #[test]
    fn aggregate_fast_path_matches_slow_reference(
        mask in 1u16..u16::MAX,
        msg in any::<[u8; 8]>(),
    ) {
        let g = Group::standard();
        let pool = key_pool(16);
        let quorum: Vec<&SigningKey> =
            (0..16).filter(|i| mask & (1 << i) != 0).map(|i| &pool[i]).collect();
        let keys: Vec<_> = quorum.iter().map(|k| k.verifying_key()).collect();

        let agg = aggregate::sign_aggregate(&quorum, &msg);
        prop_assert!(aggregate::verify_aggregate(&keys, &msg, &agg));
        prop_assert!(aggregate::verify_aggregate_slow(&keys, &msg, &agg));

        // Tampered response: both paths must reject.
        let bad = aggregate::AggregateSignature {
            r: agg.r,
            s: g.scalar_add(&agg.s, &g.scalar_from_u64(1)),
        };
        prop_assert!(!aggregate::verify_aggregate(&keys, &msg, &bad));
        prop_assert!(!aggregate::verify_aggregate_slow(&keys, &msg, &bad));

        // Swapped statement: both paths must reject.
        let mut other = msg;
        other[0] ^= 1;
        prop_assert!(!aggregate::verify_aggregate(&keys, &other, &agg));
        prop_assert!(!aggregate::verify_aggregate_slow(&keys, &other, &agg));

        // Substituted co-signer (a key that never signed): both paths must
        // reject — the per-key coefficients bind the exact signer list.
        let outsider = SigningKey::from_seed(b"outsider").verifying_key();
        let mut swapped = keys.clone();
        swapped[0] = outsider;
        prop_assert!(!aggregate::verify_aggregate(&swapped, &msg, &agg));
        prop_assert!(!aggregate::verify_aggregate_slow(&swapped, &msg, &agg));
    }
}
