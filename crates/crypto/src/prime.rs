//! Miller–Rabin primality testing and deterministic safe-prime search.
//!
//! The production group parameters in [`crate::group`] are a hardcoded
//! 256-bit safe prime found by [`find_safe_prime`]; a unit test re-verifies
//! the constant with 64 Miller–Rabin rounds at every build.

use crate::bigint::{ModCtx, U256};
use crate::hmac::HmacDrbg;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 30] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113,
];

/// Probabilistic primality test: trial division then `rounds` Miller–Rabin
/// iterations with witnesses drawn from a deterministic DRBG seeded by `n`.
///
/// For `rounds = 64` the error probability is at most `4^-64`, far below the
/// simulation's other error sources.
///
/// # Examples
///
/// ```
/// use ba_crypto::bigint::U256;
/// use ba_crypto::prime::is_probable_prime;
///
/// assert!(is_probable_prime(&U256::from_u64(104_729), 32)); // 10_000th prime
/// assert!(!is_probable_prime(&U256::from_u64(104_730), 32));
/// ```
pub fn is_probable_prime(n: &U256, rounds: usize) -> bool {
    if n < &U256::from_u64(2) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pv = U256::from_u64(p);
        if *n == pv {
            return true;
        }
        if n.reduce_mod(&pv).is_zero() {
            return false;
        }
    }
    // Write n - 1 = d * 2^r with d odd.
    let n_minus_1 = n.wrapping_sub(&U256::ONE);
    let mut d = n_minus_1;
    let mut r = 0u32;
    while !d.is_odd() {
        d = d.shr1();
        r += 1;
    }
    let ctx = ModCtx::new(*n);
    let mut drbg = HmacDrbg::new(&n.to_be_bytes(), b"miller-rabin-witnesses");
    'witness: for _ in 0..rounds {
        // Witness a in [2, n-2]; sample until in range (n >= 127 here so the
        // rejection rate is negligible).
        let a = loop {
            let candidate = U256::from_be_bytes(&drbg.next_bytes32()).reduce_mod(n);
            if candidate >= U256::from_u64(2) && candidate < n_minus_1 {
                break candidate;
            }
        };
        let mut x = ctx.pow(&a, &d);
        if x == U256::ONE || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..r.saturating_sub(1) {
            x = ctx.sqr(&x);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Deterministically searches downward from `2^bits - 1` for a safe prime
/// `p = 2q + 1` (with `q` prime), returning `(p, q)`.
///
/// Only `bits` in `[16, 256]` are supported. This is expensive for large
/// sizes and exists so the hardcoded group constant is independently
/// re-derivable; tests exercise it at small sizes.
///
/// # Panics
///
/// Panics if `bits` is outside `[16, 256]`.
pub fn find_safe_prime(bits: usize, rounds: usize) -> (U256, U256) {
    assert!((16..=256).contains(&bits), "bits must be in [16, 256]");
    // Start at 2^bits - 1 and step down by 2 over odd numbers with p % 4 == 3
    // (safe primes > 5 are 3 mod 4 because q must be odd).
    let mut p = if bits == 256 {
        U256::MAX
    } else {
        // 2^bits - 1
        let mut v = U256::ONE;
        for _ in 0..bits {
            v = v.shl1();
        }
        v.wrapping_sub(&U256::ONE)
    };
    // Ensure p % 4 == 3.
    while p.0[0] & 3 != 3 {
        p = p.wrapping_sub(&U256::ONE);
    }
    loop {
        let q = p.shr1();
        // Cheap screen on q first (q odd since p % 4 == 3).
        if is_probable_prime(&q, 2)
            && is_probable_prime(&p, 2)
            && is_probable_prime(&q, rounds)
            && is_probable_prime(&p, rounds)
        {
            return (p, q);
        }
        p = p.wrapping_sub(&U256::from_u64(4));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_and_composites() {
        let primes = [2u64, 3, 5, 7, 127, 7919, 104_729, 1_000_003];
        let composites = [1u64, 4, 9, 100, 7917, 104_731, 1_000_001];
        for p in primes {
            assert!(is_probable_prime(&U256::from_u64(p), 16), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_probable_prime(&U256::from_u64(c), 16), "{c} should be composite");
        }
    }

    #[test]
    fn zero_and_one_are_not_prime() {
        assert!(!is_probable_prime(&U256::ZERO, 8));
        assert!(!is_probable_prime(&U256::ONE, 8));
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 294409] {
            assert!(!is_probable_prime(&U256::from_u64(c), 16), "{c} is Carmichael");
        }
    }

    #[test]
    fn large_known_prime() {
        // 2^89 - 1 is a Mersenne prime.
        let mut p = U256::ONE;
        for _ in 0..89 {
            p = p.shl1();
        }
        p = p.wrapping_sub(&U256::ONE);
        assert!(is_probable_prime(&p, 32));
        // 2^89 + 1 = 3 * 179951 * ... is composite.
        let mut c = U256::ONE;
        for _ in 0..89 {
            c = c.shl1();
        }
        c = c.wrapping_add(&U256::ONE);
        assert!(!is_probable_prime(&c, 32));
    }

    #[test]
    fn find_small_safe_primes() {
        for bits in [16usize, 20, 24] {
            let (p, q) = find_safe_prime(bits, 16);
            assert!(is_probable_prime(&p, 32));
            assert!(is_probable_prime(&q, 32));
            assert_eq!(q.shl1().wrapping_add(&U256::ONE), p);
            assert!(p.bits() <= bits);
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in [16, 256]")]
    fn find_safe_prime_rejects_tiny() {
        let _ = find_safe_prime(8, 4);
    }
}
