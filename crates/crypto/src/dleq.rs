//! Chaum–Pedersen discrete-log-equality (DLEQ) proofs, made non-interactive
//! with the Fiat–Shamir transform.
//!
//! This is the NIZK of the paper's Appendix D compiler: it proves, for the
//! statement `(g, pk, h, v)`, knowledge of `sk` with `pk = g^sk` and
//! `v = h^sk` — i.e. that a VRF evaluation `v` is correct with respect to the
//! committed key `pk` (which is itself a perfectly binding commitment to
//! `sk`). See DESIGN.md §3 for the substitution argument.

use crate::bigint::FixedBaseTable;
use crate::group::{Element, Group, Scalar};
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;

/// A non-interactive DLEQ proof `(a1, a2, s)` for challenge
/// `e = H(g, pk, h, v, a1, a2)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DleqProof {
    /// Commitment `a1 = g^k`.
    pub a1: Element,
    /// Commitment `a2 = h^k`.
    pub a2: Element,
    /// Response `s = k + e * sk (mod q)`.
    pub s: Scalar,
}

impl DleqProof {
    /// Canonical 96-byte encoding (a1 || a2 || s).
    pub fn to_bytes(&self) -> [u8; 96] {
        let mut out = [0u8; 96];
        out[..32].copy_from_slice(&self.a1.to_bytes());
        out[32..64].copy_from_slice(&self.a2.to_bytes());
        out[64..].copy_from_slice(&self.s.to_bytes());
        out
    }
}

/// Produces a DLEQ proof that `log_g(pk) == log_h(v) == sk`.
///
/// The nonce is derived deterministically from `(sk, h, v)`.
///
/// # Examples
///
/// ```
/// use ba_crypto::dleq::{prove, verify};
/// use ba_crypto::group::Group;
///
/// let g = Group::standard();
/// let sk = g.scalar_from_bytes(b"secret");
/// let pk = g.pow_g(&sk);
/// let h = g.hash_to_group(b"vrf", b"round-3/bit-1");
/// let v = g.pow(&h, &sk);
/// let proof = prove(&sk, &h, &v);
/// assert!(verify(&pk, &h, &v, &proof));
/// ```
pub fn prove(sk: &Scalar, h: &Element, v: &Element) -> DleqProof {
    let g = Group::standard();
    let pk = g.pow_g(sk);
    prove_with_pk(sk, &pk, h, v)
}

/// [`prove`] for callers that already hold the public key `pk = g^sk`
/// (e.g. the VRF, whose key pair caches it): identical proof, minus one
/// fixed-base exponentiation per call.
pub fn prove_with_pk(sk: &Scalar, pk: &Element, h: &Element, v: &Element) -> DleqProof {
    prove_inner(sk, pk, h, None, v)
}

/// [`prove_with_pk`] with a precomputed fixed-base window table for `h`:
/// identical proof, with the `a2 = h^k` exponentiation running off the
/// table. The `F_mine` pattern — every node proves against the same tag
/// hash — amortizes one table build over `2n` exponentiations.
pub fn prove_with_base_table(
    sk: &Scalar,
    pk: &Element,
    h: &Element,
    h_table: &FixedBaseTable,
    v: &Element,
) -> DleqProof {
    prove_inner(sk, pk, h, Some(h_table), v)
}

fn prove_inner(
    sk: &Scalar,
    pk: &Element,
    h: &Element,
    h_table: Option<&FixedBaseTable>,
    v: &Element,
) -> DleqProof {
    let g = Group::standard();
    debug_assert_eq!(*pk, g.pow_g(sk), "pk must equal g^sk");
    let nonce_material = Sha256::digest_parts(&[b"dleq-nonce/v1", &h.to_bytes(), &v.to_bytes()]);
    let mut k = g.scalar_from_digest(&hmac_sha256(&sk.to_bytes(), &nonce_material));
    if k.is_zero() {
        k = g.scalar_from_u64(1);
    }
    let a1 = g.pow_g(&k);
    let a2 = match h_table {
        Some(table) => g.pow_with_table(table, &k),
        None => g.pow(h, &k),
    };
    let e = challenge(pk, h, v, &a1, &a2);
    let s = g.scalar_add(&k, &g.scalar_mul(&e, sk));
    DleqProof { a1, a2, s }
}

/// Verifies a DLEQ proof: `g^s == a1 * pk^e` and `h^s == a2 * v^e`.
///
/// The two equations are folded into a single check with a transcript-derived
/// nonzero coefficient `z` (the random-linear-combination trick of
/// [`verify_batch`], applied *inside* one proof):
///
/// ```text
/// g^s * pk^{-e} * h^{z*s} * v^{-z*e} == a1 * a2^z
/// ```
///
/// The left side is one interleaved multi-exponentiation — one shared
/// squaring chain instead of the separate `pk^e` ladder and `h^s * v^{-e}`
/// double exponentiation of the unfused form — and the right side costs one
/// 48-bit exponentiation. If either equation fails, the fold survives with
/// probability ≤ 2⁻⁴⁸ over `z` (the crate-wide batch soundness bound; the
/// group itself offers ~60-bit security). Long-lived keys registered at
/// trusted setup have cached fixed-base tables; `pk^{-e}` then runs off the
/// table and out of the shared chain entirely.
pub fn verify(pk: &Element, h: &Element, v: &Element, proof: &DleqProof) -> bool {
    let g = Group::standard();
    // Cached public keys were membership-checked at registration.
    let pk_table = g.cached_table(pk);
    if pk_table.is_none() && !g.is_valid_element(pk) {
        return false;
    }
    for e in [h, v, &proof.a1, &proof.a2] {
        if !g.is_valid_element(e) {
            return false;
        }
    }
    let e = challenge(pk, h, v, &proof.a1, &proof.a2);
    let mut transcript = Sha256::new();
    transcript.update(b"dleq-verify-fold/v1");
    transcript.update(&pk.to_bytes());
    transcript.update(&h.to_bytes());
    transcript.update(&v.to_bytes());
    transcript.update(&proof.to_bytes());
    let z = crate::schnorr::batch_coefficients(&transcript.finalize(), 1)[0];
    let neg_e = g.scalar_neg(&e);
    let mut plain = vec![(*h, g.scalar_mul(&z, &proof.s)), (*v, g.scalar_mul(&z, &neg_e))];
    let mut tabled = Vec::new();
    match &pk_table {
        Some(t) => tabled.push((&**t, neg_e)),
        None => plain.push((*pk, neg_e)),
    }
    let lhs = g.mul(&g.pow_g(&proof.s), &g.multi_pow_mixed(&tabled, &plain));
    let rhs = g.mul(&proof.a1, &g.pow(&proof.a2, &z));
    lhs == rhs
}

/// One statement in a [`verify_batch`] call: proof that
/// `log_g(pk) == log_h(v)`.
#[derive(Clone, Copy, Debug)]
pub struct BatchItem<'a> {
    /// The public key `g^sk`.
    pub pk: &'a Element,
    /// The evaluation base `h`.
    pub h: &'a Element,
    /// The claimed evaluation `v = h^sk`.
    pub v: &'a Element,
    /// The proof.
    pub proof: &'a DleqProof,
}

/// Verifies a batch of DLEQ proofs with a random linear combination.
///
/// Each proof contributes two verification equations; drawing independent
/// 64-bit coefficients `z_i` (first equation) and `w_i` (second) from a
/// transcript over the whole batch, everything collapses into the single
/// check
///
/// ```text
/// g^{sum z_i s_i} * prod h_i^{w_i s_i} * a1_i^{-z_i} * pk_i^{-z_i e_i}
///                 * a2_i^{-w_i} * v_i^{-w_i e_i} == 1
/// ```
///
/// evaluated as one interleaved multi-exponentiation (negative exponents as
/// `q - x`; cached fixed-base tables for registered public keys). A batch
/// verifies iff — up to `2^-48` per forged proof — every member proof
/// verifies individually. The empty batch verifies trivially.
pub fn verify_batch(items: &[BatchItem<'_>]) -> bool {
    if items.is_empty() {
        return true;
    }
    if items.len() == 1 {
        return verify(items[0].pk, items[0].h, items[0].v, items[0].proof);
    }
    // Independent sub-batches verify in parallel (see `crate::batch`).
    crate::batch::verify_chunked(items, verify_batch_serial)
}

fn verify_batch_serial(items: &[BatchItem<'_>]) -> bool {
    let g = Group::standard();
    let mut challenges = Vec::with_capacity(items.len());
    let mut pk_tables = Vec::with_capacity(items.len());
    for it in items {
        // Cached public keys were membership-checked at registration.
        let table = g.cached_table(it.pk);
        if table.is_none() && !g.is_valid_element(it.pk) {
            return false;
        }
        for e in [it.h, it.v, &it.proof.a1, &it.proof.a2] {
            if !g.is_valid_element(e) {
                return false;
            }
        }
        pk_tables.push(table);
        challenges.push(challenge(it.pk, it.h, it.v, &it.proof.a1, &it.proof.a2));
    }
    let mut transcript = Sha256::new();
    transcript.update(b"dleq-batch/v1");
    for it in items {
        transcript.update(&it.pk.to_bytes());
        transcript.update(&it.h.to_bytes());
        transcript.update(&it.v.to_bytes());
        transcript.update(&it.proof.to_bytes());
    }
    let coefficients = crate::schnorr::batch_coefficients(&transcript.finalize(), 2 * items.len());

    let mut s_sum = g.scalar_from_u64(0);
    let mut tables = Vec::new();
    let mut tabled_exps = Vec::new();
    let mut plain = Vec::with_capacity(items.len() * 4);
    for (i, it) in items.iter().enumerate() {
        let z = coefficients[2 * i];
        let w = coefficients[2 * i + 1];
        let e = &challenges[i];
        s_sum = g.scalar_add(&s_sum, &g.scalar_mul(&z, &it.proof.s));
        plain.push((*it.h, g.scalar_mul(&w, &it.proof.s)));
        plain.push((it.proof.a1, g.scalar_neg(&z)));
        plain.push((it.proof.a2, g.scalar_neg(&w)));
        plain.push((*it.v, g.scalar_neg(&g.scalar_mul(&w, e))));
        let pk_exp = g.scalar_neg(&g.scalar_mul(&z, e));
        match &pk_tables[i] {
            Some(t) => {
                tables.push(t.clone());
                tabled_exps.push(pk_exp);
            }
            None => plain.push((*it.pk, pk_exp)),
        }
    }
    let tabled: Vec<_> = tables.iter().zip(tabled_exps.iter()).map(|(t, e)| (&**t, *e)).collect();
    let combined = g.mul(&g.pow_g(&s_sum), &g.multi_pow_mixed(&tabled, &plain));
    combined.as_u256() == &crate::bigint::U256::ONE
}

fn challenge(pk: &Element, h: &Element, v: &Element, a1: &Element, a2: &Element) -> Scalar {
    let g = Group::standard();
    let d = Sha256::digest_parts(&[
        b"dleq-challenge/v1",
        &g.generator().to_bytes(),
        &pk.to_bytes(),
        &h.to_bytes(),
        &v.to_bytes(),
        &a1.to_bytes(),
        &a2.to_bytes(),
    ]);
    g.scalar_from_digest(&d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Scalar, Element, Element, Element) {
        let g = Group::standard();
        let sk = g.scalar_from_bytes(b"dleq-test-secret");
        let pk = g.pow_g(&sk);
        let h = g.hash_to_group(b"dleq-test", b"input");
        let v = g.pow(&h, &sk);
        (sk, pk, h, v)
    }

    #[test]
    fn honest_proof_verifies() {
        let (sk, pk, h, v) = setup();
        let proof = prove(&sk, &h, &v);
        assert!(verify(&pk, &h, &v, &proof));
    }

    #[test]
    fn wrong_value_rejected() {
        let g = Group::standard();
        let (sk, pk, h, v) = setup();
        let proof = prove(&sk, &h, &v);
        // A different claimed evaluation must not verify.
        let v_bad = g.mul(&v, &g.generator());
        assert!(!verify(&pk, &h, &v_bad, &proof));
    }

    #[test]
    fn wrong_key_rejected() {
        let g = Group::standard();
        let (sk, _pk, h, v) = setup();
        let proof = prove(&sk, &h, &v);
        let other_pk = g.pow_g(&g.scalar_from_bytes(b"other"));
        assert!(!verify(&other_pk, &h, &v, &proof));
    }

    #[test]
    fn wrong_base_rejected() {
        let g = Group::standard();
        let (sk, pk, h, v) = setup();
        let proof = prove(&sk, &h, &v);
        let h_bad = g.hash_to_group(b"dleq-test", b"different-input");
        assert!(!verify(&pk, &h_bad, &v, &proof));
    }

    #[test]
    fn tampered_proof_rejected() {
        let g = Group::standard();
        let (sk, pk, h, v) = setup();
        let proof = prove(&sk, &h, &v);
        let bad = DleqProof { s: g.scalar_add(&proof.s, &g.scalar_from_u64(1)), ..proof };
        assert!(!verify(&pk, &h, &v, &bad));
        let bad = DleqProof { a1: g.mul(&proof.a1, &g.generator()), ..proof };
        assert!(!verify(&pk, &h, &v, &bad));
        let bad = DleqProof { a2: g.mul(&proof.a2, &g.generator()), ..proof };
        assert!(!verify(&pk, &h, &v, &bad));
    }

    #[test]
    fn mismatched_exponent_cannot_be_proven() {
        // Prover uses sk for v but claims pk' = g^sk': the relation does not
        // hold, so an honestly-computed "proof" must fail verification.
        let g = Group::standard();
        let sk = g.scalar_from_bytes(b"real");
        let sk2 = g.scalar_from_bytes(b"claimed");
        let pk2 = g.pow_g(&sk2);
        let h = g.hash_to_group(b"t", b"m");
        let v = g.pow(&h, &sk);
        let proof = prove(&sk, &h, &v);
        assert!(!verify(&pk2, &h, &v, &proof));
    }

    #[test]
    fn invalid_elements_rejected() {
        let (sk, pk, h, v) = setup();
        let proof = prove(&sk, &h, &v);
        let bogus = Element::from_raw_unchecked(crate::bigint::U256::ZERO);
        assert!(!verify(&bogus, &h, &v, &proof));
        assert!(!verify(&pk, &bogus, &v, &proof));
        assert!(!verify(&pk, &h, &bogus, &proof));
    }

    #[test]
    fn proof_bytes_roundtrip_shape() {
        let (sk, _pk, h, v) = setup();
        let proof = prove(&sk, &h, &v);
        let bytes = proof.to_bytes();
        assert_eq!(bytes.len(), 96);
        assert_eq!(&bytes[..32], &proof.a1.to_bytes());
    }
}
