//! Fixed-width big-integer arithmetic: [`U256`], [`U512`], and Montgomery
//! modular arithmetic ([`ModCtx`]).
//!
//! Everything in this module is implemented from scratch on `u64` limbs
//! (little-endian limb order). It is the numeric substrate for the Schnorr
//! group, signatures, DLEQ proofs, and the VRF in the rest of the crate.
//!
//! The implementation favours clarity and testability over constant-time
//! behaviour; see the crate-level documentation for the threat model.

// Limb-arithmetic loops index multiple arrays in lockstep; the indexed form
// is clearer than zipped iterators here.
#![allow(clippy::needless_range_loop)]

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer stored as four little-endian `u64` limbs.
///
/// # Examples
///
/// ```
/// use ba_crypto::bigint::U256;
///
/// let a = U256::from_u64(7);
/// let b = U256::from_u64(5);
/// let (sum, carry) = a.overflowing_add(&b);
/// assert_eq!(sum, U256::from_u64(12));
/// assert!(!carry);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

/// A 512-bit unsigned integer stored as eight little-endian `u64` limbs.
///
/// Used as the intermediate type for 256x256-bit products before modular
/// reduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U512(pub [u64; 8]);

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "U256(0x{:016x}{:016x}{:016x}{:016x})",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016x}{:016x}{:016x}{:016x}", self.0[3], self.0[2], self.0[1], self.0[0])
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}{:016x}{:016x}", self.0[3], self.0[2], self.0[1], self.0[0])
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(0x")?;
        for limb in self.0.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U512 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..8).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U512 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl U256 {
    /// The value zero.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value one.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a `U256` from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Creates a `U256` from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Returns bit `i` (0 = least significant). Bits at or above 256 are zero.
    pub fn bit(&self, i: usize) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the number of significant bits (`0` for zero).
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Addition returning the wrapped sum and a carry flag.
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Subtraction returning the wrapped difference and a borrow flag.
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping addition (mod 2^256).
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction (mod 2^256).
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        let (d, borrow) = self.overflowing_sub(rhs);
        if borrow {
            None
        } else {
            Some(d)
        }
    }

    /// Full 256x256 -> 512-bit product.
    pub fn mul_wide(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u64 = 0;
            for j in 0..4 {
                let prod = (self.0[i] as u128) * (rhs.0[j] as u128)
                    + (out[i + j] as u128)
                    + (carry as u128);
                out[i + j] = prod as u64;
                carry = (prod >> 64) as u64;
            }
            out[i + 4] = carry;
        }
        U512(out)
    }

    /// Full 256-bit squaring -> 512-bit, exploiting the symmetry of the
    /// square: the 6 off-diagonal cross terms `a_i * a_j` (`i < j`) are
    /// computed once and doubled, so only 10 of [`U256::mul_wide`]'s 16 limb
    /// products are evaluated — and the fully unrolled cross-product block
    /// carries no loop dependency, so it pipelines. Always equals
    /// `self.mul_wide(self)`.
    #[inline]
    pub fn sqr_wide(&self) -> U512 {
        let [a0, a1, a2, a3] = self.0;
        // Off-diagonal cross products, each computed once.
        let (w1, c) = mac(0, a0, a1, 0);
        let (w2, c) = mac(0, a0, a2, c);
        let (w3, w4) = mac(0, a0, a3, c);
        let (w3, c) = mac(w3, a1, a2, 0);
        let (w4, w5) = mac(w4, a1, a3, c);
        let (w5, w6) = mac(w5, a2, a3, 0);
        // Double the cross sum (it is < 2^511: nothing shifts out of w7).
        let w7 = w6 >> 63;
        let w6 = (w6 << 1) | (w5 >> 63);
        let w5 = (w5 << 1) | (w4 >> 63);
        let w4 = (w4 << 1) | (w3 >> 63);
        let w3 = (w3 << 1) | (w2 >> 63);
        let w2 = (w2 << 1) | (w1 >> 63);
        let w1 = w1 << 1;
        // Fold in the diagonal a_i^2 terms.
        let d = (a0 as u128) * (a0 as u128);
        let w0 = d as u64;
        let (w1, c) = adc(w1, (d >> 64) as u64, 0);
        let d = (a1 as u128) * (a1 as u128);
        let (w2, c) = adc(w2, d as u64, c);
        let (w3, c) = adc(w3, (d >> 64) as u64, c);
        let d = (a2 as u128) * (a2 as u128);
        let (w4, c) = adc(w4, d as u64, c);
        let (w5, c) = adc(w5, (d >> 64) as u64, c);
        let d = (a3 as u128) * (a3 as u128);
        let (w6, c) = adc(w6, d as u64, c);
        let (w7, carry) = adc(w7, (d >> 64) as u64, c);
        debug_assert_eq!(carry, 0, "square overflowed 512 bits");
        U512([w0, w1, w2, w3, w4, w5, w6, w7])
    }

    /// Logical right shift by one bit.
    pub fn shr1(&self) -> U256 {
        let mut out = [0u64; 4];
        for i in 0..4 {
            out[i] = self.0[i] >> 1;
            if i + 1 < 4 {
                out[i] |= self.0[i + 1] << 63;
            }
        }
        U256(out)
    }

    /// Number of trailing zero bits (256 for zero).
    pub fn trailing_zeros(&self) -> usize {
        for (i, limb) in self.0.iter().enumerate() {
            if *limb != 0 {
                return 64 * i + limb.trailing_zeros() as usize;
            }
        }
        256
    }

    /// Logical right shift by `k` bits (`k < 256`).
    pub fn shr(&self, k: usize) -> U256 {
        debug_assert!(k < 256);
        let limb_shift = k / 64;
        let bit_shift = k % 64;
        let mut out = [0u64; 4];
        for i in 0..4 - limb_shift {
            let lo = self.0[i + limb_shift] >> bit_shift;
            let hi = if bit_shift > 0 && i + limb_shift + 1 < 4 {
                self.0[i + limb_shift + 1] << (64 - bit_shift)
            } else {
                0
            };
            out[i] = lo | hi;
        }
        U256(out)
    }

    /// Logical left shift by one bit (wrapping).
    pub fn shl1(&self) -> U256 {
        let mut out = [0u64; 4];
        for i in (0..4).rev() {
            out[i] = self.0[i] << 1;
            if i > 0 {
                out[i] |= self.0[i - 1] >> 63;
            }
        }
        U256(out)
    }

    /// Interprets 32 big-endian bytes as a `U256`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let start = 32 - 8 * (i + 1);
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[start..start + 8]);
            *limb = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            let start = 32 - 8 * (i + 1);
            out[start..start + 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix required, case
    /// insensitive, at most 64 digits).
    ///
    /// # Errors
    ///
    /// Returns `None` on invalid characters or overly long input.
    pub fn from_hex(s: &str) -> Option<U256> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut out = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16)? as u64;
            // out = out * 16 + d
            let mut shifted = out;
            for _ in 0..4 {
                shifted = shifted.shl1();
            }
            out = shifted.wrapping_add(&U256::from_u64(d));
        }
        Some(out)
    }

    /// Computes `self mod m` for nonzero `m` via widening to `U512`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn reduce_mod(&self, m: &U256) -> U256 {
        U512::from_u256(self).rem(m)
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl U512 {
    /// The value zero.
    pub const ZERO: U512 = U512([0; 8]);

    /// Widens a `U256` into the low half of a `U512`.
    pub fn from_u256(v: &U256) -> U512 {
        let mut out = [0u64; 8];
        out[..4].copy_from_slice(&v.0);
        U512(out)
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 8]
    }

    /// Returns bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        if i >= 512 {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the number of significant bits (`0` for zero).
    pub fn bits(&self) -> usize {
        for i in (0..8).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Subtraction returning the wrapped difference and a borrow flag.
    pub fn overflowing_sub(&self, rhs: &U512) -> (U512, bool) {
        let mut out = [0u64; 8];
        let mut borrow = false;
        for i in 0..8 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U512(out), borrow)
    }

    /// Logical left shift by one bit (wrapping).
    pub fn shl1(&self) -> U512 {
        let mut out = [0u64; 8];
        for i in (0..8).rev() {
            out[i] = self.0[i] << 1;
            if i > 0 {
                out[i] |= self.0[i - 1] >> 63;
            }
        }
        U512(out)
    }

    /// Truncates to the low 256 bits.
    pub fn low_u256(&self) -> U256 {
        U256([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// Computes `self mod m` by binary long division.
    ///
    /// This is the slow, general-purpose reduction used only for one-off
    /// setup computations (e.g. deriving Montgomery constants); the hot path
    /// uses [`ModCtx`].
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &U256) -> U256 {
        assert!(!m.is_zero(), "division by zero");
        let mbits = m.bits();
        let xbits = self.bits();
        if xbits < mbits {
            return self.low_u256();
        }
        let mut rem = U256::ZERO;
        for i in (0..xbits).rev() {
            // rem = (rem * 2 + bit) mod m, guarding against 256-bit overflow
            // when m is close to 2^256.
            rem = mod_double(&rem, m);
            if self.bit(i) {
                let inc = rem.wrapping_add(&U256::ONE);
                rem = if inc == *m { U256::ZERO } else { inc };
            }
        }
        rem
    }
}

/// A Montgomery-form modular-arithmetic context for an odd 256-bit modulus.
///
/// All group and field operations in this crate go through a `ModCtx`.
/// Values passed to [`ModCtx::mul`], [`ModCtx::sqr`], and [`ModCtx::pow`] are
/// ordinary (non-Montgomery) residues; conversion happens internally, so the
/// API stays misuse-resistant at a modest constant-factor cost for `mul`.
/// [`ModCtx::pow`] converts once and is the intended hot path.
///
/// # Examples
///
/// ```
/// use ba_crypto::bigint::{ModCtx, U256};
///
/// // Arithmetic modulo the prime 101.
/// let ctx = ModCtx::new(U256::from_u64(101));
/// let x = ctx.pow(&U256::from_u64(2), &U256::from_u64(100));
/// assert_eq!(x, U256::ONE); // Fermat's little theorem
/// ```
#[derive(Clone, Debug)]
pub struct ModCtx {
    m: U256,
    /// -m^{-1} mod 2^64
    n0inv: u64,
    /// R^2 mod m where R = 2^256
    r2: U256,
    /// R mod m
    r1: U256,
    /// For pseudo-Mersenne moduli `m = 2^256 - c` with `c < 2^32` (the
    /// standard group prime is `2^256 - 36113`): the folding constant `c`.
    /// Such moduli skip Montgomery form entirely — `2^256 ≡ c (mod m)`
    /// makes the wide product reducible by two cheap folds, which beats a
    /// Montgomery reduction *and* deletes every to/from-Montgomery
    /// conversion from the exponentiation paths.
    special_c: Option<u64>,
}

impl ModCtx {
    /// Creates a context for the odd modulus `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is even or zero.
    pub fn new(m: U256) -> ModCtx {
        assert!(m.is_odd(), "Montgomery modulus must be odd");
        // n0inv = -m^{-1} mod 2^64 via Newton iteration.
        let m0 = m.0[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let n0inv = inv.wrapping_neg();

        // r1 = 2^256 mod m: start from 1, double 256 times mod m.
        let mut r1 = U256::ONE.reduce_mod(&m);
        for _ in 0..256 {
            r1 = mod_double(&r1, &m);
        }
        // r2 = 2^512 mod m: double r1 another 256 times.
        let mut r2 = r1;
        for _ in 0..256 {
            r2 = mod_double(&r2, &m);
        }
        // Pseudo-Mersenne detection: limbs 1..3 all ones and a small
        // complement (the `c < 2^32` bound keeps every fold-overflow
        // argument in `fold_words` tight).
        let c = m.0[0].wrapping_neg();
        let special_c = (m.0[1] == u64::MAX
            && m.0[2] == u64::MAX
            && m.0[3] == u64::MAX
            && c != 0
            && c < (1 << 32))
            .then_some(c);
        ModCtx { m, n0inv, r2, r1, special_c }
    }

    /// Returns the modulus.
    pub fn modulus(&self) -> &U256 {
        &self.m
    }

    /// Montgomery reduction of a 512-bit value: returns `t * R^{-1} mod m`.
    ///
    /// Requires `t < m * R` (always true for products of reduced values),
    /// which guarantees the result fits after at most one subtraction.
    ///
    /// This is the *generic* reduction: it only survives where a full
    /// 512-bit value already exists ([`ModCtx::reduce_wide`], decoding).
    /// The multiplication hot path uses the fused [`ModCtx::mont_mul`],
    /// which never materializes the 512-bit intermediate.
    fn redc(&self, t: &U512) -> U256 {
        self.redc_words(t.0)
    }

    /// [`ModCtx::redc`] on raw limbs, fully unrolled over registers — no
    /// widened copy, no array indexing, no data-dependent carry ripple. The
    /// carry out of each pass's top update targets a limb nothing reads
    /// before the next pass's own top update, so it is deferred in a
    /// register and folded in there (the classic lazy-carry formulation;
    /// the leftover after the last pass is the virtual ninth word).
    #[inline(always)]
    fn redc_words(&self, w: [u64; 8]) -> U256 {
        let [w0, w1, w2, w3, w4, w5, w6, w7] = w;
        let [m0, m1, m2, m3] = self.m.0;
        // Pass 0: cancel w0.
        let u = w0.wrapping_mul(self.n0inv);
        let (_, c) = mac(w0, u, m0, 0);
        let (w1, c) = mac(w1, u, m1, c);
        let (w2, c) = mac(w2, u, m2, c);
        let (w3, c) = mac(w3, u, m3, c);
        let (w4, deferred) = adc(w4, c, 0);
        // Pass 1: cancel w1.
        let u = w1.wrapping_mul(self.n0inv);
        let (_, c) = mac(w1, u, m0, 0);
        let (w2, c) = mac(w2, u, m1, c);
        let (w3, c) = mac(w3, u, m2, c);
        let (w4, c) = mac(w4, u, m3, c);
        let (w5, deferred) = adc(w5, c, deferred);
        // Pass 2: cancel w2.
        let u = w2.wrapping_mul(self.n0inv);
        let (_, c) = mac(w2, u, m0, 0);
        let (w3, c) = mac(w3, u, m1, c);
        let (w4, c) = mac(w4, u, m2, c);
        let (w5, c) = mac(w5, u, m3, c);
        let (w6, deferred) = adc(w6, c, deferred);
        // Pass 3: cancel w3.
        let u = w3.wrapping_mul(self.n0inv);
        let (_, c) = mac(w3, u, m0, 0);
        let (w4, c) = mac(w4, u, m1, c);
        let (w5, c) = mac(w5, u, m2, c);
        let (w6, c) = mac(w6, u, m3, c);
        let (w7, deferred) = adc(w7, c, deferred);
        let mut r = U256([w4, w5, w6, w7]);
        if deferred != 0 || r >= self.m {
            r = r.wrapping_sub(&self.m);
        }
        r
    }

    /// Converts an ordinary residue into Montgomery form.
    fn to_mont(&self, x: &U256) -> U256 {
        self.mont_mul(x, &self.r2)
    }

    /// Converts a Montgomery-form value back to an ordinary residue.
    fn mont_decode(&self, x: &U256) -> U256 {
        self.redc(&U512::from_u256(x))
    }

    /// Modular addition of ordinary residues (inputs must be `< m`).
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        let (sum, carry) = a.overflowing_add(b);
        if carry || sum >= self.m {
            sum.wrapping_sub(&self.m)
        } else {
            sum
        }
    }

    /// Modular subtraction of ordinary residues (inputs must be `< m`).
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        let (diff, borrow) = a.overflowing_sub(b);
        if borrow {
            diff.wrapping_add(&self.m)
        } else {
            diff
        }
    }

    /// Modular negation of an ordinary residue (`< m`).
    pub fn neg(&self, a: &U256) -> U256 {
        if a.is_zero() {
            U256::ZERO
        } else {
            self.m.wrapping_sub(a)
        }
    }

    /// Fused CIOS (coarsely integrated operand scanning) Montgomery
    /// multiplication: both inputs and the result are in Montgomery form,
    /// i.e. this returns `a * b * R^{-1} mod m`. This is the primitive every
    /// fast path below builds on.
    ///
    /// Multiplication and reduction are interleaved word by word and fully
    /// unrolled over scalars: the running value lives in a 6-limb register
    /// window, so the 512-bit intermediate of the generic
    /// `mul_wide` + `redc` pipeline (see [`ModCtx::mont_mul_ref`]) is never
    /// materialized and each limb is touched once per pass instead of twice.
    #[inline]
    pub fn mont_mul(&self, a: &U256, b: &U256) -> U256 {
        let [b0, b1, b2, b3] = b.0;
        let [m0, m1, m2, m3] = self.m.0;
        let (mut t0, mut t1, mut t2, mut t3, mut t4);
        let mut t5;
        // Pass 0: t = a0 * b, then fold u*m and slide the window.
        let a0 = a.0[0];
        let (lo, c) = mac(0, a0, b0, 0);
        t0 = lo;
        let (lo, c) = mac(0, a0, b1, c);
        t1 = lo;
        let (lo, c) = mac(0, a0, b2, c);
        t2 = lo;
        let (lo, c) = mac(0, a0, b3, c);
        t3 = lo;
        t4 = c;
        t5 = 0;
        let u = t0.wrapping_mul(self.n0inv);
        let (_, c) = mac(t0, u, m0, 0);
        let (lo, c) = mac(t1, u, m1, c);
        t0 = lo;
        let (lo, c) = mac(t2, u, m2, c);
        t1 = lo;
        let (lo, c) = mac(t3, u, m3, c);
        t2 = lo;
        let (lo, c) = adc(t4, c, 0);
        t3 = lo;
        t4 = t5 + c;
        // Passes 1..3, identical shape.
        for &ai in &a.0[1..] {
            let (lo, c) = mac(t0, ai, b0, 0);
            t0 = lo;
            let (lo, c) = mac(t1, ai, b1, c);
            t1 = lo;
            let (lo, c) = mac(t2, ai, b2, c);
            t2 = lo;
            let (lo, c) = mac(t3, ai, b3, c);
            t3 = lo;
            let (lo, c) = adc(t4, c, 0);
            t4 = lo;
            t5 = c;
            let u = t0.wrapping_mul(self.n0inv);
            let (_, c) = mac(t0, u, m0, 0);
            let (lo, c) = mac(t1, u, m1, c);
            t0 = lo;
            let (lo, c) = mac(t2, u, m2, c);
            t1 = lo;
            let (lo, c) = mac(t3, u, m3, c);
            t2 = lo;
            let (lo, c) = adc(t4, c, 0);
            t3 = lo;
            t4 = t5 + c;
        }
        let mut r = U256([t0, t1, t2, t3]);
        if t4 != 0 || r >= self.m {
            r = r.wrapping_sub(&self.m);
        }
        r
    }

    /// Montgomery-form squaring: returns `a * a * R^{-1} mod m`, always
    /// equal to `mont_mul(a, a)` but cheaper: the dedicated
    /// [`U256::sqr_wide`] computes the 6 off-diagonal cross products once
    /// and doubles them (10 limb products instead of 16, with no
    /// loop-to-loop dependency), and the unrolled reduction runs over the 8
    /// result limbs in registers. Squarings dominate every exponentiation
    /// ladder, which is what makes the dedicated path worth having.
    #[inline]
    pub fn mont_sqr(&self, a: &U256) -> U256 {
        self.redc_words(a.sqr_wide().0)
    }

    /// Reference Montgomery multiplication via the seed's generic
    /// `mul_wide` + `redc` pipeline (widened 9-word buffer, data-dependent
    /// carry ripple), kept verbatim and off the hot path as the slow
    /// reference that property tests and benches pin [`ModCtx::mont_mul`]
    /// and [`ModCtx::mont_sqr`] against.
    pub fn mont_mul_ref(&self, a: &U256, b: &U256) -> U256 {
        let t = a.mul_wide(b);
        let mut a9 = [0u64; 9];
        a9[..8].copy_from_slice(&t.0);
        for i in 0..4 {
            let u = a9[i].wrapping_mul(self.n0inv);
            let mut carry: u128 = 0;
            for j in 0..4 {
                let prod = (u as u128) * (self.m.0[j] as u128) + (a9[i + j] as u128) + carry;
                a9[i + j] = prod as u64;
                carry = prod >> 64;
            }
            let mut k = i + 4;
            while carry != 0 && k < 9 {
                let s = a9[k] as u128 + carry;
                a9[k] = s as u64;
                carry = s >> 64;
                k += 1;
            }
        }
        let mut r = U256([a9[4], a9[5], a9[6], a9[7]]);
        if a9[8] != 0 || r >= self.m {
            r = r.wrapping_sub(&self.m);
        }
        r
    }

    // ---- pseudo-Mersenne folding (m = 2^256 - c) ----

    /// Reduces a full 512-bit value modulo the pseudo-Mersenne modulus
    /// `m = 2^256 - c` by folding: `hi * 2^256 + lo ≡ hi * c + lo`. The
    /// first fold leaves at most `c + 1` in the spill limb (since
    /// `c < 2^32`), the second folds that down to `< 2^256 + 2^64`, and the
    /// final carry (0 or 1) provably cannot ripple past the second limb.
    /// The result is always fully reduced.
    #[inline]
    fn fold_words(&self, w: [u64; 8], c: u64) -> U256 {
        let [l0, l1, l2, l3, h0, h1, h2, h3] = w;
        // t = lo + hi * c in one fused mac chain (each mac is
        // `l_i + h_i * c + carry`, which cannot overflow 128 bits); the
        // spill is at most c + 1 < 2^33 because c < 2^32.
        let (t0, k) = mac(l0, h0, c, 0);
        let (t1, k) = mac(l1, h1, c, k);
        let (t2, k) = mac(l2, h2, c, k);
        let (t3, t4) = mac(l3, h3, c, k);
        // Second fold: t4 * 2^256 ≡ t4 * c (< 2^65).
        let (t0, k) = mac(t0, t4, c, 0);
        let (t1, k) = adc(t1, 0, k);
        let (t2, k) = adc(t2, 0, k);
        let (t3, k) = adc(t3, 0, k);
        // Third fold: k ∈ {0, 1}. When k = 1 the second fold wrapped, so
        // t < t4 * c < 2^65 — adding c cannot carry past the second limb.
        let (t0, k) = mac(t0, k, c, 0);
        let (t1, _) = adc(t1, 0, k);
        let mut r = U256([t0, t1, t2, t3]);
        // One conditional subtraction fully reduces: r < 2^256 = m + c < 2m.
        if r >= self.m {
            r = r.wrapping_sub(&self.m);
        }
        r
    }

    // ---- the internal "work form" ----
    //
    // Every multiplicative fast path below operates on values in the
    // context's *work form*: the plain residue for pseudo-Mersenne moduli
    // (fold reduction, no conversions), Montgomery form otherwise. The two
    // representations share every caller because `to_work`/`from_work`
    // collapse to the identity on the folding path.

    /// Converts an ordinary residue into the work form.
    #[inline]
    fn to_work(&self, x: &U256) -> U256 {
        if self.special_c.is_some() {
            *x
        } else {
            self.to_mont(x)
        }
    }

    /// Converts a work-form value back to an ordinary residue.
    #[inline]
    fn work_decode(&self, x: &U256) -> U256 {
        if self.special_c.is_some() {
            *x
        } else {
            self.mont_decode(x)
        }
    }

    /// The number one in work form.
    #[inline]
    fn work_one(&self) -> U256 {
        if self.special_c.is_some() {
            U256::ONE.reduce_mod(&self.m)
        } else {
            self.r1
        }
    }

    /// Work-form multiplication (fold or fused-CIOS Montgomery).
    #[inline]
    fn work_mul(&self, a: &U256, b: &U256) -> U256 {
        match self.special_c {
            Some(c) => self.fold_words(a.mul_wide(b).0, c),
            None => self.mont_mul(a, b),
        }
    }

    /// Work-form squaring (dedicated square + fold or Montgomery reduce).
    #[inline]
    fn work_sqr(&self, a: &U256) -> U256 {
        match self.special_c {
            Some(c) => self.fold_words(a.sqr_wide().0, c),
            None => self.mont_sqr(a),
        }
    }

    /// Modular multiplication of ordinary residues (inputs must be `< m`).
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        if let Some(c) = self.special_c {
            return self.fold_words(a.mul_wide(b).0, c);
        }
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.mont_decode(&self.mont_mul(&am, &bm))
    }

    /// Modular squaring of an ordinary residue (`< m`).
    pub fn sqr(&self, a: &U256) -> U256 {
        if let Some(c) = self.special_c {
            return self.fold_words(a.sqr_wide().0, c);
        }
        let am = self.to_mont(a);
        self.mont_decode(&self.mont_sqr(&am))
    }

    /// Modular exponentiation `base^exp mod m` by a left-to-right 4-bit
    /// window ladder, entirely in the work form: the same 255 squarings as
    /// square-and-multiply, but one multiplication per nonzero 4-bit digit
    /// (≤ 64) instead of one per set bit (~128), for a 15-entry table built
    /// with 14 multiplications.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        if exp.is_zero() {
            return U256::ONE.reduce_mod(&self.m);
        }
        let base = if *base >= self.m { base.reduce_mod(&self.m) } else { *base };
        let bw = self.to_work(&base);
        // tbl[d - 1] = base^d in work form, d in 1..=15.
        let mut tbl = [bw; 15];
        for d in 1..15 {
            tbl[d] = self.work_mul(&tbl[d - 1], &bw);
        }
        let top_window = (exp.bits() - 1) / 4;
        let mut acc = self.work_one();
        let mut started = false;
        for w in (0..=top_window).rev() {
            if started {
                acc = self.work_sqr(&acc);
                acc = self.work_sqr(&acc);
                acc = self.work_sqr(&acc);
                acc = self.work_sqr(&acc);
            }
            let digit = window_bits(exp, w * 4, 4);
            if digit != 0 {
                acc = if started {
                    self.work_mul(&acc, &tbl[digit as usize - 1])
                } else {
                    tbl[digit as usize - 1]
                };
                started = true;
            }
        }
        self.work_decode(&acc)
    }

    /// Modular inverse for a prime modulus via Fermat's little theorem:
    /// `a^{m-2} mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is zero (zero has no inverse).
    pub fn inv_prime(&self, a: &U256) -> U256 {
        assert!(!a.reduce_mod(&self.m).is_zero(), "zero has no modular inverse");
        let exp = self.m.wrapping_sub(&U256::from_u64(2));
        self.pow(a, &exp)
    }

    /// Reduces an arbitrary 512-bit value modulo `m` (a direct fold for
    /// pseudo-Mersenne moduli, Montgomery `redc` + multiply by `R^2`
    /// otherwise).
    pub fn reduce_wide(&self, x: &U512) -> U256 {
        if let Some(c) = self.special_c {
            return self.fold_words(x.0, c);
        }
        // redc(x) = x * R^{-1}; a Montgomery multiply by R^2 restores x mod m.
        let xr = self.redc(x); // x * R^{-1}
        self.mont_mul(&xr, &self.r2) // x * R^{-1} * R^2 * R^{-1} = x
    }

    // ---- fast exponentiation paths ----
    //
    // Everything below stays in the work form end to end: one conversion
    // in, one conversion out (both free on the pseudo-Mersenne path), one
    // reduction per group operation. Property tests cross-check each path
    // against `pow` and products of `pow`s.

    /// Precomputes a fixed-base window table for `base` (4-bit windows over
    /// the full 256-bit exponent range; see [`ModCtx::precompute_wide`] for
    /// other widths).
    ///
    /// The table holds `base^(d * 16^w)` for every window position `w` in
    /// `0..64` and digit `d` in `1..=15` (~30 KiB). A subsequent
    /// [`ModCtx::pow_fixed`] costs at most 64 Montgomery multiplications and
    /// **no squarings** — roughly a 6x saving over square-and-multiply.
    /// Building the table costs ~1.5 exponentiations, so it pays off after a
    /// handful of uses (a process-lifetime generator table or a per-node
    /// public-key table amortizes to zero).
    pub fn precompute(&self, base: &U256) -> FixedBaseTable {
        self.precompute_wide(base, 4)
    }

    /// Precomputes a fixed-base table with `width`-bit windows
    /// (`2 <= width <= 8`).
    ///
    /// Wider windows trade memory and build time for fewer multiplications
    /// per exponentiation: `ceil(256/width)` window positions with
    /// `2^width - 1` entries each. The public-key table cache uses 6-bit
    /// windows (~87 KiB, ~43 multiplications per exponentiation).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=8`.
    pub fn precompute_wide(&self, base: &U256, width: usize) -> FixedBaseTable {
        assert!((2..=8).contains(&width), "window width must be in 2..=8");
        let base = if *base >= self.m { base.reduce_mod(&self.m) } else { *base };
        let per_window = (1usize << width) - 1;
        let window_count = 256usize.div_ceil(width);
        let mut b = self.to_work(&base);
        let mut entries = Vec::with_capacity(window_count * per_window);
        for _ in 0..window_count {
            entries.push(b);
            for _ in 1..per_window {
                let prev = entries[entries.len() - 1];
                entries.push(self.work_mul(&prev, &b));
            }
            // Next window's base: base^(2^width) = (last entry) * b.
            let last = entries[entries.len() - 1];
            b = self.work_mul(&last, &b);
        }
        FixedBaseTable { m: self.m, width, entries }
    }

    /// Fixed-base exponentiation `base^exp` using a precomputed table.
    ///
    /// # Panics
    ///
    /// Panics if `table` was built for a different modulus.
    pub fn pow_fixed(&self, table: &FixedBaseTable, exp: &U256) -> U256 {
        self.work_decode(&self.pow_fixed_work(table, exp))
    }

    fn pow_fixed_work(&self, table: &FixedBaseTable, exp: &U256) -> U256 {
        assert_eq!(table.m, self.m, "fixed-base table modulus mismatch");
        let per_window = (1usize << table.width) - 1;
        let mut acc = self.work_one();
        for (w, lo) in (0..256).step_by(table.width).enumerate() {
            let digit = window_bits(exp, lo, table.width);
            if digit != 0 {
                acc = self.work_mul(&acc, &table.entries[w * per_window + digit as usize - 1]);
            }
        }
        acc
    }

    /// Straus/Shamir double exponentiation `b1^e1 * b2^e2` with shared
    /// squarings (4-bit windows) — the shape of the Schnorr/DLEQ
    /// verification equation `g^s * y^{-e}`.
    pub fn pow2(&self, b1: &U256, e1: &U256, b2: &U256, e2: &U256) -> U256 {
        self.multi_pow(&[(*b1, *e1), (*b2, *e2)])
    }

    /// Interleaved multi-exponentiation `prod_i base_i^exp_i` with one
    /// shared squaring chain (4-bit windows per base).
    ///
    /// This is the workhorse of batch signature/VRF verification: for `k`
    /// terms it costs `4*maxbits/4` shared squarings plus at most
    /// `k * (15 + maxbits/4)` multiplications, against `k` full
    /// square-and-multiply exponentiations for the naive evaluation.
    pub fn multi_pow(&self, terms: &[(U256, U256)]) -> U256 {
        if terms.is_empty() {
            return U256::ONE.reduce_mod(&self.m);
        }
        // Per-base digit tables (tables[i][d-1] = base_i^d in work form),
        // with the window width adapted to the exponent size: short
        // exponents (batch coefficients) don't amortize a big table.
        let widths: Vec<usize> =
            terms.iter().map(|(_, e)| if e.bits() <= 64 { 3 } else { 4 }).collect();
        let tables: Vec<Vec<U256>> = terms
            .iter()
            .zip(&widths)
            .map(|((base, _), w)| {
                let base = if *base >= self.m { base.reduce_mod(&self.m) } else { *base };
                let b = self.to_work(&base);
                let mut row = Vec::with_capacity((1 << w) - 1);
                row.push(b);
                for _ in 1..(1 << w) - 1 {
                    let prev = row[row.len() - 1];
                    row.push(self.work_mul(&prev, &b));
                }
                row
            })
            .collect();
        let top_bits = terms.iter().map(|(_, e)| e.bits()).max().unwrap_or(0);
        let mut acc = self.work_one();
        let mut started = false;
        // One shared squaring per bit; each term folds in its digit when the
        // chain reaches the bottom of one of its windows, so the digit is
        // scaled by exactly 2^bit.
        for bit in (0..top_bits).rev() {
            if started {
                acc = self.work_sqr(&acc);
            }
            for (i, (_, exp)) in terms.iter().enumerate() {
                let w = widths[i];
                if bit % w == 0 {
                    let digit = window_bits(exp, bit, w);
                    if digit != 0 {
                        acc = self.work_mul(&acc, &tables[i][digit as usize - 1]);
                        started = true;
                    }
                }
            }
        }
        self.work_decode(&acc)
    }

    /// Like [`ModCtx::multi_pow`], but additionally folds in fixed-base
    /// terms evaluated from precomputed tables (used by batch verification,
    /// where long-lived public keys have tables and per-message commitments
    /// do not). Returns `prod tabled_i ^ texp_i * prod plain_i ^ exp_i`.
    pub fn multi_pow_mixed(
        &self,
        tabled: &[(&FixedBaseTable, U256)],
        plain: &[(U256, U256)],
    ) -> U256 {
        let mut acc = self.to_work(&self.multi_pow(plain));
        for (table, exp) in tabled {
            let part = self.pow_fixed_work(table, exp);
            acc = self.work_mul(&acc, &part);
        }
        self.work_decode(&acc)
    }
}

/// Multiply-accumulate: `a + b * c + carry` as `(low, high)` words. The
/// scalar building block of the unrolled Montgomery kernels (never
/// overflows: `(2^64-1) + (2^64-1)^2 + (2^64-1) < 2^128`).
#[inline(always)]
fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) * (c as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Add with carry: `a + b + carry` as `(low, high)` words.
#[inline(always)]
fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Extracts the `width`-bit window of `exp` starting at bit `lo` (bits past
/// 256 read as zero).
#[inline]
fn window_bits(exp: &U256, lo: usize, width: usize) -> u64 {
    debug_assert!(lo < 256);
    let limb = lo / 64;
    let off = lo % 64;
    let mut d = exp.0[limb] >> off;
    if off + width > 64 && limb + 1 < 4 {
        d |= exp.0[limb + 1] << (64 - off);
    }
    d & ((1u64 << width) - 1)
}

/// A precomputed fixed-base window exponentiation table (see
/// [`ModCtx::precompute`] / [`ModCtx::precompute_wide`]). Entries are stored
/// in the owning context's internal work form (plain residues for
/// pseudo-Mersenne moduli, Montgomery form otherwise).
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    m: U256,
    /// Window width in bits.
    width: usize,
    /// `entries[w * (2^width - 1) + d - 1] = base^(d * 2^(width*w))`.
    entries: Vec<U256>,
}

impl FixedBaseTable {
    /// The modulus the table was built for.
    pub fn modulus(&self) -> &U256 {
        &self.m
    }

    /// The window width in bits.
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Jacobi symbol `(a/n)` for odd positive `n` (binary algorithm, no
/// divisions).
///
/// For a safe prime `p` this decides quadratic residuosity — i.e. membership
/// in the order-`q` subgroup — in about a microsecond, versus a full modular
/// exponentiation (`x^q == 1`) for the generic test. Trailing zeros are
/// stripped in one multi-bit shift per iteration, and the loop drops to
/// native `u128` arithmetic once both operands fit.
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn jacobi(a: &U256, n: &U256) -> i32 {
    assert!(n.is_odd(), "Jacobi symbol requires an odd modulus");
    let mut a = if *a >= *n { a.reduce_mod(n) } else { *a };
    let mut n = *n;
    let mut t = 1i32;
    loop {
        if a.0[2] == 0 && a.0[3] == 0 && n.0[2] == 0 && n.0[3] == 0 {
            // Tail fast path: both operands fit in 128 bits.
            let a128 = (a.0[1] as u128) << 64 | a.0[0] as u128;
            let n128 = (n.0[1] as u128) << 64 | n.0[0] as u128;
            return t * jacobi_u128(a128, n128);
        }
        if a.is_zero() {
            break;
        }
        // Strip factors of two: 2 is a non-residue mod n iff n == ±3 mod 8.
        let tz = a.trailing_zeros();
        if tz > 0 {
            a = a.shr(tz);
            let r = n.0[0] & 7;
            if tz & 1 == 1 && (r == 3 || r == 5) {
                t = -t;
            }
        }
        if a < n {
            std::mem::swap(&mut a, &mut n);
            if a.0[0] & 3 == 3 && n.0[0] & 3 == 3 {
                t = -t;
            }
        }
        // Both odd and a >= n: the subtraction is exact and makes a even,
        // so the next iteration strips at least one bit.
        a = a.wrapping_sub(&n);
    }
    if n == U256::ONE {
        t
    } else {
        0
    }
}

/// Jacobi symbol over native 128-bit integers (the tail of [`jacobi`]).
fn jacobi_u128(mut a: u128, mut n: u128) -> i32 {
    debug_assert!(n & 1 == 1 && n > 0);
    let mut t = 1i32;
    while a != 0 {
        let tz = a.trailing_zeros();
        if tz > 0 {
            a >>= tz;
            let r = n & 7;
            if tz & 1 == 1 && (r == 3 || r == 5) {
                t = -t;
            }
        }
        if a < n {
            std::mem::swap(&mut a, &mut n);
            if a & 3 == 3 && n & 3 == 3 {
                t = -t;
            }
        }
        a -= n;
    }
    if n == 1 {
        t
    } else {
        0
    }
}

fn mod_double(x: &U256, m: &U256) -> U256 {
    let hi_bit = x.bit(255);
    let dbl = x.shl1();
    if hi_bit || dbl >= *m {
        dbl.wrapping_sub(m)
    } else {
        dbl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U256([u64::MAX, 0, u64::MAX, 1]);
        let b = U256([1, u64::MAX, 2, 3]);
        let (s, _) = a.overflowing_add(&b);
        let (d, borrow) = s.overflowing_sub(&b);
        assert!(!borrow);
        assert_eq!(d, a);
    }

    #[test]
    fn carry_propagation() {
        let a = U256([u64::MAX, u64::MAX, u64::MAX, u64::MAX]);
        let (s, carry) = a.overflowing_add(&U256::ONE);
        assert!(carry);
        assert_eq!(s, U256::ZERO);
    }

    #[test]
    fn mul_wide_small() {
        let a = u(0xFFFF_FFFF);
        let b = u(0xFFFF_FFFF);
        let p = a.mul_wide(&b);
        assert_eq!(p.low_u256(), U256::from_u128(0xFFFF_FFFE_0000_0001));
    }

    #[test]
    fn mul_wide_max() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1
        let p = U256::MAX.mul_wide(&U256::MAX);
        assert_eq!(p.0[0], 1);
        for i in 1..4 {
            assert_eq!(p.0[i], 0);
        }
        assert_eq!(p.0[4], u64::MAX - 1);
        for i in 5..8 {
            assert_eq!(p.0[i], u64::MAX);
        }
    }

    #[test]
    fn cmp_orders_lexicographically_from_high_limb() {
        assert!(U256([0, 0, 0, 1]) > U256([u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(u(5) < u(6));
        assert_eq!(u(7).cmp(&u(7)), Ordering::Equal);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256([0, 1, 0, 0]).bits(), 65);
        assert!(U256([0, 1, 0, 0]).bit(64));
        assert!(!U256([0, 1, 0, 0]).bit(63));
        assert_eq!(U256::MAX.bits(), 256);
    }

    #[test]
    fn shl_shr_inverse_on_small_values() {
        let a = u(0x1234_5678_9abc_def0);
        assert_eq!(a.shl1().shr1(), a);
    }

    #[test]
    fn multi_bit_shr_and_trailing_zeros() {
        let a = U256([0, 0, 1 << 5, 0]);
        assert_eq!(a.trailing_zeros(), 133);
        assert_eq!(a.shr(133), U256::ONE);
        assert_eq!(a.shr(64), U256([0, 1 << 5, 0, 0]));
        assert_eq!(a.shr(1), U256([0, 0, 1 << 4, 0]));
        assert_eq!(U256::ZERO.trailing_zeros(), 256);
        // Cross-limb shift.
        let b = U256([0, 0b11, 0, 0]);
        assert_eq!(b.shr(65), U256::ONE);
    }

    #[test]
    fn jacobi_known_values() {
        // (a/7): residues {1,2,4} -> +1, {3,5,6} -> -1.
        let seven = u(7);
        assert_eq!(jacobi(&u(1), &seven), 1);
        assert_eq!(jacobi(&u(2), &seven), 1);
        assert_eq!(jacobi(&u(3), &seven), -1);
        assert_eq!(jacobi(&u(4), &seven), 1);
        assert_eq!(jacobi(&u(5), &seven), -1);
        assert_eq!(jacobi(&u(6), &seven), -1);
        assert_eq!(jacobi(&u(0), &seven), 0);
        assert_eq!(jacobi(&u(14), &seven), 0); // shares a factor
                                               // Jacobi over a composite: (2/15) = (2/3)(2/5) = (-1)(-1) = 1.
        assert_eq!(jacobi(&u(2), &u(15)), 1);
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn jacobi_even_modulus_panics() {
        let _ = jacobi(&u(3), &u(8));
    }

    #[test]
    fn be_bytes_roundtrip() {
        let a = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
        let bytes = a.to_be_bytes();
        assert_eq!(bytes[31], 1); // least significant byte of limb 0
        assert_eq!(bytes[0..8], 4u64.to_be_bytes()); // most significant limb
    }

    #[test]
    fn from_hex_parses() {
        assert_eq!(U256::from_hex("ff"), Some(u(255)));
        assert_eq!(U256::from_hex("0x10"), Some(u(16)));
        assert_eq!(
            U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff72ef"),
            Some(U256([0xffffffffffff72ef, u64::MAX, u64::MAX, u64::MAX]))
        );
        assert_eq!(U256::from_hex(""), None);
        assert_eq!(U256::from_hex("xyz"), None);
    }

    #[test]
    fn u512_rem_basic() {
        let x = U512::from_u256(&u(100));
        assert_eq!(x.rem(&u(7)), u(2));
        let big = U256::MAX.mul_wide(&U256::MAX);
        // (2^256-1)^2 mod (2^256-1) == 0
        assert_eq!(big.rem(&U256::MAX), U256::ZERO);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn u512_rem_zero_modulus_panics() {
        let _ = U512::from_u256(&u(1)).rem(&U256::ZERO);
    }

    #[test]
    fn montgomery_matches_naive_small_modulus() {
        let m = u(1_000_003); // prime
        let ctx = ModCtx::new(m);
        for a in [0u64, 1, 2, 999_999, 123_456] {
            for b in [0u64, 1, 7, 999_999, 654_321] {
                let expect = (a as u128 * b as u128 % 1_000_003) as u64;
                assert_eq!(ctx.mul(&u(a), &u(b)), u(expect), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn montgomery_pow_fermat() {
        let m = u(1_000_003);
        let ctx = ModCtx::new(m);
        // a^(p-1) = 1 mod p
        assert_eq!(ctx.pow(&u(2), &u(1_000_002)), U256::ONE);
        assert_eq!(ctx.pow(&u(42), &u(1_000_002)), U256::ONE);
        // a^0 = 1
        assert_eq!(ctx.pow(&u(99), &U256::ZERO), U256::ONE);
        // a^1 = a
        assert_eq!(ctx.pow(&u(99), &U256::ONE), u(99));
    }

    #[test]
    fn montgomery_inverse() {
        let m = u(1_000_003);
        let ctx = ModCtx::new(m);
        for a in [1u64, 2, 3, 999_999, 500_000] {
            let inv = ctx.inv_prime(&u(a));
            assert_eq!(ctx.mul(&u(a), &inv), U256::ONE, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no modular inverse")]
    fn inverse_of_zero_panics() {
        let ctx = ModCtx::new(u(1_000_003));
        let _ = ctx.inv_prime(&U256::ZERO);
    }

    #[test]
    fn montgomery_256bit_modulus() {
        // p = 2^256 - 36113, the group prime used by the crate.
        let p = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff72ef")
            .unwrap();
        let ctx = ModCtx::new(p);
        // Fermat: 2^(p-1) mod p = 1.
        let pm1 = p.wrapping_sub(&U256::ONE);
        assert_eq!(ctx.pow(&u(2), &pm1), U256::ONE);
        // Inverse sanity.
        let x = U256::from_hex("deadbeefcafebabe0123456789abcdef00112233445566778899aabbccddeeff")
            .unwrap();
        let xinv = ctx.inv_prime(&x);
        assert_eq!(ctx.mul(&x, &xinv), U256::ONE);
    }

    #[test]
    fn add_sub_mod() {
        let m = u(97);
        let ctx = ModCtx::new(m);
        assert_eq!(ctx.add(&u(96), &u(5)), u(4));
        assert_eq!(ctx.sub(&u(3), &u(5)), u(95));
        assert_eq!(ctx.neg(&u(1)), u(96));
        assert_eq!(ctx.neg(&U256::ZERO), U256::ZERO);
    }

    #[test]
    fn reduce_wide_matches_binary_rem() {
        let p = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff72ef")
            .unwrap();
        let ctx = ModCtx::new(p);
        let a = U256::from_hex("deadbeefcafebabe0123456789abcdef00112233445566778899aabbccddeeff")
            .unwrap();
        let wide = a.mul_wide(&a);
        assert_eq!(ctx.reduce_wide(&wide), wide.rem(&p));
    }

    #[test]
    #[should_panic(expected = "Montgomery modulus must be odd")]
    fn even_modulus_panics() {
        let _ = ModCtx::new(u(100));
    }

    #[test]
    fn reduce_mod_u256() {
        assert_eq!(u(100).reduce_mod(&u(7)), u(2));
        assert_eq!(U256::MAX.reduce_mod(&U256::MAX), U256::ZERO);
    }

    /// The edge inputs every fast-path identity below is checked against:
    /// 0, 1, the Montgomery constant R mod m, m − 1, 2^256 − 1 (= R − 1),
    /// and a dense arbitrary value.
    fn edge_values(ctx: &ModCtx) -> Vec<U256> {
        let m = *ctx.modulus();
        vec![
            U256::ZERO,
            U256::ONE,
            ctx.r1,
            m.wrapping_sub(&U256::ONE),
            U256::MAX,
            U256::from_hex("deadbeefcafebabe0123456789abcdef00112233445566778899aabbccddeeff")
                .unwrap(),
        ]
    }

    #[test]
    fn sqr_wide_matches_mul_wide_on_edges() {
        let p = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff72ef")
            .unwrap();
        let ctx = ModCtx::new(p);
        for x in edge_values(&ctx) {
            assert_eq!(x.sqr_wide(), x.mul_wide(&x), "x={x}");
        }
        // Carry-chain stress: single bits at every limb boundary.
        for bit in [0usize, 63, 64, 127, 128, 191, 192, 255] {
            let mut limbs = [0u64; 4];
            limbs[bit / 64] = 1 << (bit % 64);
            let x = U256(limbs);
            assert_eq!(x.sqr_wide(), x.mul_wide(&x), "bit={bit}");
        }
    }

    #[test]
    fn cios_matches_generic_reference_on_edges() {
        let p = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff72ef")
            .unwrap();
        for ctx in [ModCtx::new(p), ModCtx::new(u(1_000_003)), ModCtx::new(U256::MAX)] {
            let edges = edge_values(&ctx);
            for a in &edges {
                for b in &edges {
                    assert_eq!(
                        ctx.mont_mul(a, b),
                        ctx.mont_mul_ref(a, b),
                        "a={a} b={b} m={}",
                        ctx.modulus()
                    );
                }
                assert_eq!(ctx.mont_sqr(a), ctx.mont_mul_ref(a, a), "sqr a={a}");
            }
        }
    }

    #[test]
    fn mont_mul_is_montgomery_product() {
        // mont_mul(aR, bR) == abR: check through the public mul on residues.
        let m = u(1_000_003);
        let ctx = ModCtx::new(m);
        for a in [0u64, 1, 2, 999_999, 123_456] {
            for b in [0u64, 1, 7, 999_999, 654_321] {
                let am = ctx.to_mont(&u(a));
                let bm = ctx.to_mont(&u(b));
                let expect = (a as u128 * b as u128 % 1_000_003) as u64;
                assert_eq!(ctx.mont_decode(&ctx.mont_mul(&am, &bm)), u(expect), "a={a} b={b}");
                assert_eq!(ctx.mont_decode(&ctx.mont_sqr(&am)), ctx.sqr(&u(a)), "a={a}");
            }
        }
    }
}
