//! Commitment schemes (Appendix D.2 of the paper).
//!
//! Two flavours:
//!
//! * [`HashCommitment`] — `C = SHA256(tag || v || ρ)`. Computationally
//!   binding and hiding; cheap, used wherever the paper only needs a
//!   commitment in the random-oracle sense.
//! * [`ElGamalCommitment`] — `C = (g^ρ, g^v · pk_c^ρ)` under a CRS key
//!   `pk_c`. **Perfectly binding** (an ElGamal ciphertext determines its
//!   plaintext) and computationally hiding under DDH — exactly the property
//!   profile Appendix D.2 demands for committing to nodes' PRF keys.

use crate::group::{Element, Group, Scalar};
use crate::sha256::Sha256;

/// A 32-byte hash commitment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HashCommitment(pub [u8; 32]);

impl HashCommitment {
    /// Commits to `value` with blinding randomness `rho`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ba_crypto::commit::HashCommitment;
    ///
    /// let c = HashCommitment::commit(b"bid: 42", b"blinding-randomness");
    /// assert!(c.verify(b"bid: 42", b"blinding-randomness"));
    /// assert!(!c.verify(b"bid: 43", b"blinding-randomness"));
    /// ```
    pub fn commit(value: &[u8], rho: &[u8]) -> HashCommitment {
        HashCommitment(Sha256::digest_parts(&[
            b"ba-crypto/hash-commit/v1",
            &(value.len() as u64).to_be_bytes(),
            value,
            rho,
        ]))
    }

    /// Verifies an opening `(value, rho)`.
    pub fn verify(&self, value: &[u8], rho: &[u8]) -> bool {
        HashCommitment::commit(value, rho) == *self
    }
}

/// The CRS for ElGamal commitments: a commitment public key with unknown
/// discrete log (derived by hash-to-group, so nobody knows `log_g(pk_c)`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommitmentCrs {
    /// The commitment key `pk_c`.
    pub key: Element,
}

impl CommitmentCrs {
    /// Derives the CRS deterministically from a setup transcript label.
    ///
    /// Using hash-to-group means the discrete log of `key` is unknown to
    /// everyone — the "trusted setup" is a public coin.
    pub fn from_label(label: &[u8]) -> CommitmentCrs {
        let g = Group::standard();
        CommitmentCrs { key: g.hash_to_group(b"ba-crypto/elgamal-crs/v1", label) }
    }
}

/// A perfectly binding ElGamal commitment `(c1, c2) = (g^ρ, g^v · pk_c^ρ)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ElGamalCommitment {
    /// `c1 = g^ρ`.
    pub c1: Element,
    /// `c2 = g^v * pk_c^ρ`.
    pub c2: Element,
}

impl ElGamalCommitment {
    /// Commits to the scalar `v` with blinding scalar `rho` under `crs`.
    pub fn commit(crs: &CommitmentCrs, v: &Scalar, rho: &Scalar) -> ElGamalCommitment {
        let g = Group::standard();
        let c1 = g.pow_g(rho);
        let c2 = g.mul(&g.pow_g(v), &g.pow(&crs.key, rho));
        ElGamalCommitment { c1, c2 }
    }

    /// Verifies an opening `(v, rho)`.
    pub fn verify(&self, crs: &CommitmentCrs, v: &Scalar, rho: &Scalar) -> bool {
        *self == ElGamalCommitment::commit(crs, v, rho)
    }

    /// Canonical 64-byte encoding.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.c1.to_bytes());
        out[32..].copy_from_slice(&self.c2.to_bytes());
        out
    }
}

/// A compact Merkle tree over 32-byte leaves (SHA-256, second-preimage
/// hardened with distinct leaf/node tags).
///
/// Used by the forward-secure signature scheme to commit to a vector of
/// per-slot public keys with logarithmic openings.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, levels.last() = [root]
    levels: Vec<Vec<[u8; 32]>>,
}

/// A Merkle inclusion proof: sibling hashes from leaf to root.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes, one per level, bottom-up.
    pub siblings: Vec<[u8; 32]>,
}

fn leaf_hash(data: &[u8]) -> [u8; 32] {
    Sha256::digest_parts(&[b"\x00merkle-leaf", data])
}

fn node_hash(l: &[u8; 32], r: &[u8; 32]) -> [u8; 32] {
    Sha256::digest_parts(&[b"\x01merkle-node", l, r])
}

impl MerkleTree {
    /// Builds a tree over the given leaves (duplicating the last leaf of odd
    /// levels, Bitcoin style).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    pub fn build(leaves: &[Vec<u8>]) -> MerkleTree {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut levels = vec![leaves.iter().map(|l| leaf_hash(l)).collect::<Vec<_>>()];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let l = &pair[0];
                let r = pair.get(1).unwrap_or(l);
                next.push(node_hash(l, r));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The Merkle root.
    pub fn root(&self) -> [u8; 32] {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Whether the tree is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.len(), "leaf index out of bounds");
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sib = if idx.is_multiple_of(2) {
                *level.get(idx + 1).unwrap_or(&level[idx])
            } else {
                level[idx - 1]
            };
            siblings.push(sib);
            idx /= 2;
        }
        MerkleProof { index, siblings }
    }

    /// Verifies an inclusion proof against a root.
    pub fn verify(root: &[u8; 32], leaf_data: &[u8], proof: &MerkleProof) -> bool {
        let mut h = leaf_hash(leaf_data);
        let mut idx = proof.index;
        for sib in &proof.siblings {
            h = if idx.is_multiple_of(2) { node_hash(&h, sib) } else { node_hash(sib, &h) };
            idx /= 2;
        }
        h == *root
    }
}

/// Helper: derives a deterministic blinding scalar from a seed (used by the
/// PKI setup when committing to node keys).
pub fn blinding_scalar(seed: &[u8], label: &[u8]) -> Scalar {
    let g = Group::standard();
    g.scalar_from_digest(&Sha256::digest_parts(&[b"ba-crypto/blinding/v1", seed, label]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_commit_binding_and_hiding_shape() {
        let c = HashCommitment::commit(b"v", b"r");
        assert!(c.verify(b"v", b"r"));
        assert!(!c.verify(b"v", b"r2"));
        assert!(!c.verify(b"w", b"r"));
        // Length-prefixing prevents concatenation ambiguity.
        let a = HashCommitment::commit(b"ab", b"c");
        let b = HashCommitment::commit(b"a", b"bc");
        assert_ne!(a, b);
    }

    #[test]
    fn elgamal_commit_roundtrip() {
        let g = Group::standard();
        let crs = CommitmentCrs::from_label(b"test-crs");
        let v = g.scalar_from_bytes(b"value");
        let rho = g.scalar_from_bytes(b"blind");
        let c = ElGamalCommitment::commit(&crs, &v, &rho);
        assert!(c.verify(&crs, &v, &rho));
        assert!(!c.verify(&crs, &g.scalar_from_bytes(b"other"), &rho));
        assert!(!c.verify(&crs, &v, &g.scalar_from_bytes(b"other"))); // wrong opening
    }

    #[test]
    fn elgamal_perfectly_binding_structure() {
        // Perfect binding: c1 = g^rho determines rho (information
        // theoretically), and then c2/pk^rho determines g^v. We check the
        // structural consequence: two different values cannot share a
        // commitment under the SAME rho, and differing rho changes c1.
        let g = Group::standard();
        let crs = CommitmentCrs::from_label(b"binding");
        let rho = g.scalar_from_bytes(b"rho");
        let c_a = ElGamalCommitment::commit(&crs, &g.scalar_from_u64(1), &rho);
        let c_b = ElGamalCommitment::commit(&crs, &g.scalar_from_u64(2), &rho);
        assert_eq!(c_a.c1, c_b.c1);
        assert_ne!(c_a.c2, c_b.c2);
    }

    #[test]
    fn crs_is_deterministic_per_label() {
        assert_eq!(CommitmentCrs::from_label(b"x"), CommitmentCrs::from_label(b"x"));
        assert_ne!(CommitmentCrs::from_label(b"x"), CommitmentCrs::from_label(b"y"));
    }

    #[test]
    fn merkle_single_leaf() {
        let t = MerkleTree::build(&[b"only".to_vec()]);
        let p = t.prove(0);
        assert!(MerkleTree::verify(&t.root(), b"only", &p));
        assert!(!MerkleTree::verify(&t.root(), b"fake", &p));
    }

    #[test]
    fn merkle_power_of_two_and_odd_sizes() {
        for n in [2usize, 3, 4, 5, 7, 8, 13, 16] {
            let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect();
            let t = MerkleTree::build(&leaves);
            assert_eq!(t.len(), n);
            for (i, leaf) in leaves.iter().enumerate() {
                let p = t.prove(i);
                assert!(MerkleTree::verify(&t.root(), leaf, &p), "n={n} i={i}");
                // Wrong index fails.
                let mut bad = p.clone();
                bad.index = (i + 1) % n;
                if n > 1 && leaves[bad.index] != *leaf {
                    assert!(!MerkleTree::verify(&t.root(), leaf, &bad), "n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn merkle_proof_for_wrong_root_fails() {
        let t1 = MerkleTree::build(&[b"a".to_vec(), b"b".to_vec()]);
        let t2 = MerkleTree::build(&[b"a".to_vec(), b"c".to_vec()]);
        let p = t1.prove(0);
        assert!(!MerkleTree::verify(&t2.root(), b"a", &p) || t1.root() == t2.root());
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn merkle_empty_panics() {
        let _ = MerkleTree::build(&[]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn merkle_prove_out_of_bounds_panics() {
        let t = MerkleTree::build(&[b"a".to_vec()]);
        let _ = t.prove(1);
    }
}
