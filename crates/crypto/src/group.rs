//! The prime-order group used by every discrete-log primitive in this crate.
//!
//! We work in the order-`q` subgroup of quadratic residues of `Z_p^*` where
//! `p = 2^256 - 36113` is a safe prime (`q = (p-1)/2` prime) and `g = 4` is a
//! generator. The constant was found by a deterministic downward search
//! ([`crate::prime::find_safe_prime`]) and is re-verified by tests.
//!
//! Exposed operations: exponentiation, multiplication, inversion, membership
//! checks, hash-to-group, and scalar (mod-`q`) arithmetic — everything the
//! Schnorr signature, Chaum–Pedersen DLEQ proof, and DDH VRF need.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::bigint::{jacobi, FixedBaseTable, ModCtx, U256};
use crate::sha256::Sha256;

/// Hex of the group prime `p = 2^256 - 36113` (a safe prime).
pub const P_HEX: &str = "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff72ef";
/// Hex of the subgroup order `q = (p - 1) / 2` (prime).
pub const Q_HEX: &str = "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffb977";

/// A group element: an integer in the order-`q` subgroup of `Z_p^*`.
///
/// Elements are created only through the smart constructors on [`Group`], so
/// a value of this type is always a valid subgroup member.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Element(U256);

impl Element {
    /// Returns the canonical 32-byte big-endian encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Returns the underlying residue (for serialization/tests).
    pub fn as_u256(&self) -> &U256 {
        &self.0
    }

    /// Constructs an element without validating subgroup membership.
    ///
    /// This exists so adversarial tests can hand protocols malformed
    /// elements; honest code must use [`Group::element_from_bytes`].
    #[doc(hidden)]
    pub fn from_raw_unchecked(v: U256) -> Element {
        Element(v)
    }
}

/// A scalar: an integer modulo the subgroup order `q`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Scalar(U256);

impl Scalar {
    /// Returns the canonical 32-byte big-endian encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Returns the underlying integer.
    pub fn as_u256(&self) -> &U256 {
        &self.0
    }

    /// Returns `true` if the scalar is zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
}

/// The shared group context: moduli contexts for `p` and `q` plus the
/// generator.
///
/// Obtain the process-wide instance with [`Group::standard`]; constructing a
/// custom group (e.g. a small one for tests) is possible via [`Group::new`].
///
/// # Examples
///
/// ```
/// use ba_crypto::group::Group;
///
/// let g = Group::standard();
/// let sk = g.scalar_from_bytes(b"any 32+ bytes of key material ..");
/// let pk = g.pow_g(&sk);              // pk = g^sk
/// assert!(g.is_valid_element(&pk));
/// ```
#[derive(Clone, Debug)]
pub struct Group {
    p_ctx: ModCtx,
    q_ctx: ModCtx,
    g: Element,
    q: U256,
    /// Lazily-built fixed-base window table for the generator; every
    /// `pow_g` (key generation, signing nonces, VRF/DLEQ commitments,
    /// verification) goes through it.
    g_table: OnceLock<FixedBaseTable>,
}

static STANDARD: OnceLock<Group> = OnceLock::new();

/// Process-wide cache of fixed-base tables for long-lived elements (public
/// keys), keyed by `(modulus, element)`. Bounded; see
/// [`Group::ensure_cached_table`].
type TableCacheMap = HashMap<([u8; 32], [u8; 32]), Arc<FixedBaseTable>>;

static TABLE_CACHE: OnceLock<Mutex<TableCacheMap>> = OnceLock::new();

/// Cap on cached public-key tables. Cached keys get 6-bit-window tables
/// (~87 KiB each), so the cache tops out around ~170 MiB before being
/// cleared wholesale.
const TABLE_CACHE_CAP: usize = 2048;

impl Group {
    /// Returns the process-wide standard 256-bit group.
    pub fn standard() -> &'static Group {
        STANDARD.get_or_init(|| {
            let p = U256::from_hex(P_HEX).expect("valid constant");
            let q = U256::from_hex(Q_HEX).expect("valid constant");
            Group::new(p, q, U256::from_u64(4))
        })
    }

    /// Creates a group from explicit parameters.
    ///
    /// `p` must be a safe prime, `q = (p-1)/2`, and `g` must generate the
    /// order-`q` subgroup. Basic structural relations are asserted; full
    /// primality is the caller's responsibility (tests verify the standard
    /// constants).
    ///
    /// # Panics
    ///
    /// Panics if `p != 2q + 1`, or `g` is not in the subgroup, or `g == 1`.
    pub fn new(p: U256, q: U256, g: U256) -> Group {
        assert_eq!(q.shl1().wrapping_add(&U256::ONE), p, "p must equal 2q + 1");
        let p_ctx = ModCtx::new(p);
        let q_ctx = ModCtx::new(q);
        assert!(g > U256::ONE && g < p, "generator out of range");
        assert_eq!(p_ctx.pow(&g, &q), U256::ONE, "generator must have order q");
        Group { p_ctx, q_ctx, g: Element(g), q, g_table: OnceLock::new() }
    }

    /// The generator's fixed-base table (built on first use).
    fn g_table(&self) -> &FixedBaseTable {
        self.g_table.get_or_init(|| self.p_ctx.precompute(&self.g.0))
    }

    /// The generator `g`.
    pub fn generator(&self) -> Element {
        self.g
    }

    /// The subgroup order `q`.
    pub fn order(&self) -> &U256 {
        &self.q
    }

    /// The field prime `p`.
    pub fn prime(&self) -> &U256 {
        self.p_ctx.modulus()
    }

    /// Checks subgroup membership: `1 <= x < p` and `x` is a quadratic
    /// residue mod `p`.
    ///
    /// For a safe prime `p = 2q + 1` the order-`q` subgroup is exactly the
    /// set of quadratic residues, so the Jacobi symbol decides membership —
    /// orders of magnitude cheaper than the defining test `x^q == 1` (which
    /// [`Group::is_valid_element_slow`] retains as the cross-checked
    /// reference).
    pub fn is_valid_element(&self, e: &Element) -> bool {
        let x = e.0;
        !x.is_zero() && x < *self.prime() && jacobi(&x, self.prime()) == 1
    }

    /// Reference subgroup membership test via `x^q == 1` (kept for
    /// cross-checking the Jacobi fast path; prefer
    /// [`Group::is_valid_element`]).
    pub fn is_valid_element_slow(&self, e: &Element) -> bool {
        let x = e.0;
        !x.is_zero() && x < *self.prime() && self.p_ctx.pow(&x, &self.q) == U256::ONE
    }

    /// Deserializes and validates a group element.
    ///
    /// Returns `None` if the bytes do not encode a subgroup member.
    pub fn element_from_bytes(&self, bytes: &[u8; 32]) -> Option<Element> {
        let x = U256::from_be_bytes(bytes);
        let e = Element(x);
        if self.is_valid_element(&e) {
            Some(e)
        } else {
            None
        }
    }

    /// Group multiplication.
    pub fn mul(&self, a: &Element, b: &Element) -> Element {
        Element(self.p_ctx.mul(&a.0, &b.0))
    }

    /// Group inversion.
    pub fn inv(&self, a: &Element) -> Element {
        Element(self.p_ctx.inv_prime(&a.0))
    }

    /// Exponentiation `base^e`.
    pub fn pow(&self, base: &Element, e: &Scalar) -> Element {
        Element(self.p_ctx.pow(&base.0, &e.0))
    }

    /// Exponentiation of the generator, `g^e`, via the precomputed
    /// fixed-base window table (~6x faster than generic exponentiation).
    pub fn pow_g(&self, e: &Scalar) -> Element {
        Element(self.p_ctx.pow_fixed(self.g_table(), &e.0))
    }

    /// Builds a fixed-base window table for `base` (see
    /// [`ModCtx::precompute`]); amortizes after a handful of
    /// [`Group::pow_with_table`] calls.
    pub fn precompute_table(&self, base: &Element) -> FixedBaseTable {
        self.p_ctx.precompute(&base.0)
    }

    /// Fixed-base exponentiation `base^e` through a precomputed table.
    pub fn pow_with_table(&self, table: &FixedBaseTable, e: &Scalar) -> Element {
        Element(self.p_ctx.pow_fixed(table, &e.0))
    }

    /// Straus/Shamir double exponentiation `a^ea * b^eb` with shared
    /// squarings — the `g^s * y^{-e}` shape of Schnorr/DLEQ verification.
    pub fn pow2(&self, a: &Element, ea: &Scalar, b: &Element, eb: &Scalar) -> Element {
        Element(self.p_ctx.pow2(&a.0, &ea.0, &b.0, &eb.0))
    }

    /// Interleaved multi-exponentiation `prod_i base_i^exp_i` (one shared
    /// squaring chain; the batch-verification workhorse).
    pub fn multi_pow(&self, terms: &[(Element, Scalar)]) -> Element {
        let raw: Vec<(U256, U256)> = terms.iter().map(|(b, e)| (b.0, e.0)).collect();
        Element(self.p_ctx.multi_pow(&raw))
    }

    /// Multi-exponentiation where some bases have precomputed tables:
    /// `prod_i tabled_i ^ tei * prod_j plain_j ^ epj`.
    pub fn multi_pow_mixed(
        &self,
        tabled: &[(&FixedBaseTable, Scalar)],
        plain: &[(Element, Scalar)],
    ) -> Element {
        let t: Vec<(&FixedBaseTable, U256)> = tabled.iter().map(|(t, e)| (*t, e.0)).collect();
        let p: Vec<(U256, U256)> = plain.iter().map(|(b, e)| (b.0, e.0)).collect();
        Element(self.p_ctx.multi_pow_mixed(&t, &p))
    }

    /// Returns the cached fixed-base table for `base`, if one was built.
    pub fn cached_table(&self, base: &Element) -> Option<Arc<FixedBaseTable>> {
        let cache = TABLE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (self.prime().to_be_bytes(), base.to_bytes());
        cache.lock().expect("poisoned").get(&key).cloned()
    }

    /// Builds (or fetches) the cached fixed-base table for `base`.
    ///
    /// Intended for long-lived bases — the PKI registers every public key
    /// here at setup so that verification hot paths run off tables. The
    /// cache is process-wide, keyed by `(modulus, element)`, and bounded:
    /// when full it is cleared wholesale (the next setup simply rebuilds;
    /// simulations never hold more than a few thousand keys live).
    ///
    /// Registration validates subgroup membership once, which lets batch
    /// verification skip the per-call membership check for cached keys.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a subgroup member (tables are only for
    /// honestly-registered elements).
    pub fn ensure_cached_table(&self, base: &Element) -> Arc<FixedBaseTable> {
        if let Some(t) = self.cached_table(base) {
            return t;
        }
        assert!(
            self.is_valid_element(base),
            "fixed-base tables may only be registered for valid subgroup elements"
        );
        // Cached (long-lived) keys get wider 6-bit windows: ~87 KiB and a
        // bigger one-off build, but ~30% fewer multiplications per
        // exponentiation than the default 4-bit table.
        let table = Arc::new(self.p_ctx.precompute_wide(&base.0, 6));
        let cache = TABLE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (self.prime().to_be_bytes(), base.to_bytes());
        let mut map = cache.lock().expect("poisoned");
        if map.len() >= TABLE_CACHE_CAP {
            // Evict only tables nobody holds anymore (registrants keep an
            // Arc for their lifetime, so live PKIs survive); fall back to a
            // wholesale clear if everything is still referenced.
            map.retain(|_, t| Arc::strong_count(t) > 1);
            if map.len() >= TABLE_CACHE_CAP {
                map.clear();
            }
        }
        map.entry(key).or_insert_with(|| table.clone()).clone()
    }

    /// Hashes arbitrary bytes into the subgroup.
    ///
    /// `u = SHA256(domain || counter || msg)` is mapped to `u^2 mod p`, which
    /// lands in the quadratic-residue subgroup; the counter is bumped in the
    /// (cryptographically negligible) event the result is the identity.
    pub fn hash_to_group(&self, domain: &[u8], msg: &[u8]) -> Element {
        for counter in 0u8..=255 {
            let d = Sha256::digest_parts(&[b"ba-crypto/hash-to-group/v1", domain, &[counter], msg]);
            let u = U256::from_be_bytes(&d).reduce_mod(self.prime());
            let h = self.p_ctx.sqr(&u);
            if h != U256::ONE && !h.is_zero() {
                return Element(h);
            }
        }
        unreachable!("256 consecutive hash-to-group failures is cryptographically impossible")
    }

    // ---- scalar (mod q) arithmetic ----

    /// Reduces 32 bytes (big-endian) into a scalar mod `q`.
    pub fn scalar_from_bytes(&self, bytes: &[u8]) -> Scalar {
        let d = Sha256::digest_parts(&[b"ba-crypto/scalar/v1", bytes]);
        Scalar(U256::from_be_bytes(&d).reduce_mod(&self.q))
    }

    /// Interprets a digest directly as a scalar mod `q` (for Fiat–Shamir
    /// challenges that are already uniform digests).
    pub fn scalar_from_digest(&self, digest: &[u8; 32]) -> Scalar {
        Scalar(U256::from_be_bytes(digest).reduce_mod(&self.q))
    }

    /// Builds a scalar from a `u64`.
    pub fn scalar_from_u64(&self, v: u64) -> Scalar {
        Scalar(U256::from_u64(v).reduce_mod(&self.q))
    }

    /// Scalar addition mod `q`.
    pub fn scalar_add(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(self.q_ctx.add(&a.0, &b.0))
    }

    /// Scalar subtraction mod `q`.
    pub fn scalar_sub(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(self.q_ctx.sub(&a.0, &b.0))
    }

    /// Scalar multiplication mod `q`.
    pub fn scalar_mul(&self, a: &Scalar, b: &Scalar) -> Scalar {
        Scalar(self.q_ctx.mul(&a.0, &b.0))
    }

    /// Scalar negation mod `q` (`q - a`), the exponent form of the
    /// `y^{-e}` term in verification equations.
    pub fn scalar_neg(&self, a: &Scalar) -> Scalar {
        Scalar(self.q_ctx.neg(&a.0))
    }

    /// Scalar inversion mod `q` (prime order).
    ///
    /// # Panics
    ///
    /// Panics if `a` is zero.
    pub fn scalar_inv(&self, a: &Scalar) -> Scalar {
        Scalar(self.q_ctx.inv_prime(&a.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::is_probable_prime;

    #[test]
    fn standard_constants_are_safe_prime() {
        let g = Group::standard();
        assert!(is_probable_prime(g.prime(), 64), "p must be prime");
        assert!(is_probable_prime(g.order(), 64), "q must be prime");
        assert_eq!(g.order().shl1().wrapping_add(&U256::ONE), *g.prime(), "p = 2q + 1");
    }

    #[test]
    fn generator_has_order_q() {
        let g = Group::standard();
        assert!(g.is_valid_element(&g.generator()));
        // g^q == 1 (validity check) but g^1 != 1
        let one = g.scalar_from_u64(1);
        assert_ne!(g.pow_g(&one).as_u256(), &U256::ONE);
    }

    #[test]
    fn exponent_laws() {
        let g = Group::standard();
        let a = g.scalar_from_bytes(b"a");
        let b = g.scalar_from_bytes(b"b");
        // g^(a+b) == g^a * g^b
        let lhs = g.pow_g(&g.scalar_add(&a, &b));
        let rhs = g.mul(&g.pow_g(&a), &g.pow_g(&b));
        assert_eq!(lhs, rhs);
        // (g^a)^b == (g^b)^a
        assert_eq!(g.pow(&g.pow_g(&a), &b), g.pow(&g.pow_g(&b), &a));
    }

    #[test]
    fn inverse_cancels() {
        let g = Group::standard();
        let a = g.scalar_from_bytes(b"x");
        let e = g.pow_g(&a);
        let prod = g.mul(&e, &g.inv(&e));
        assert_eq!(prod.as_u256(), &U256::ONE);
    }

    #[test]
    fn hash_to_group_valid_and_distinct() {
        let g = Group::standard();
        let h1 = g.hash_to_group(b"test", b"message-1");
        let h2 = g.hash_to_group(b"test", b"message-2");
        let h3 = g.hash_to_group(b"other", b"message-1");
        assert!(g.is_valid_element(&h1));
        assert!(g.is_valid_element(&h2));
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
        // Deterministic.
        assert_eq!(h1, g.hash_to_group(b"test", b"message-1"));
    }

    #[test]
    fn element_roundtrip_and_rejection() {
        let g = Group::standard();
        let e = g.hash_to_group(b"t", b"m");
        let rt = g.element_from_bytes(&e.to_bytes()).expect("valid element");
        assert_eq!(rt, e);
        // 0 and p are invalid.
        assert!(g.element_from_bytes(&U256::ZERO.to_be_bytes()).is_none());
        assert!(g.element_from_bytes(&g.prime().to_be_bytes()).is_none());
        // A quadratic non-residue must be rejected: -1 is a non-residue mod a
        // safe prime p == 3 mod 4.
        let minus_one = g.prime().wrapping_sub(&U256::ONE);
        assert!(g.element_from_bytes(&minus_one.to_be_bytes()).is_none());
    }

    #[test]
    fn scalar_field_laws() {
        let g = Group::standard();
        let a = g.scalar_from_bytes(b"p");
        let b = g.scalar_from_bytes(b"q");
        let c = g.scalar_from_bytes(b"r");
        // Distributivity: a(b + c) = ab + ac
        let lhs = g.scalar_mul(&a, &g.scalar_add(&b, &c));
        let rhs = g.scalar_add(&g.scalar_mul(&a, &b), &g.scalar_mul(&a, &c));
        assert_eq!(lhs, rhs);
        // Inverse.
        let ainv = g.scalar_inv(&a);
        assert_eq!(g.scalar_mul(&a, &ainv), g.scalar_from_u64(1));
        // Subtraction.
        assert_eq!(g.scalar_sub(&a, &a), g.scalar_from_u64(0));
    }

    #[test]
    fn small_test_group() {
        // p = 23 = 2*11 + 1, g = 4 (QR). Useful to show Group::new works for
        // custom parameters.
        let g = Group::new(U256::from_u64(23), U256::from_u64(11), U256::from_u64(4));
        assert!(g.is_valid_element(&g.generator()));
        let two = g.scalar_from_u64(2);
        assert_eq!(g.pow_g(&two).as_u256(), &U256::from_u64(16));
    }

    #[test]
    #[should_panic(expected = "p must equal 2q + 1")]
    fn bad_group_relation_panics() {
        let _ = Group::new(U256::from_u64(23), U256::from_u64(7), U256::from_u64(4));
    }

    #[test]
    #[should_panic(expected = "generator must have order q")]
    fn bad_generator_panics() {
        // 5 is a non-residue mod 23 (order 22, not 11).
        let _ = Group::new(U256::from_u64(23), U256::from_u64(11), U256::from_u64(5));
    }
}
