//! HMAC-SHA-256 (RFC 2104) and a deterministic hash-DRBG built on it.
//!
//! The DRBG ([`HmacDrbg`]) is the crate's only source of "randomness": every
//! nonce, key, and simulated coin in the repository is derived from explicit
//! seeds through it, which keeps all executions replayable.

use crate::sha256::Sha256;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// use ba_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     ba_crypto::sha256::to_hex(&tag),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let inner = Sha256::digest_parts(&[&ipad, message]);
    Sha256::digest_parts(&[&opad, &inner])
}

/// A deterministic byte-stream generator: counter-mode HMAC-SHA-256.
///
/// Not an exact NIST SP 800-90A HMAC_DRBG (no reseeding machinery), but the
/// same construction shape: output block `i` is `HMAC(key, domain || i)`.
/// Collision-free domain separation is the caller's responsibility via the
/// `domain` argument to [`HmacDrbg::new`].
///
/// # Examples
///
/// ```
/// use ba_crypto::hmac::HmacDrbg;
///
/// let mut a = HmacDrbg::new(b"seed", b"domain");
/// let mut b = HmacDrbg::new(b"seed", b"domain");
/// assert_eq!(a.next_bytes32(), b.next_bytes32()); // fully deterministic
/// ```
#[derive(Clone, Debug)]
pub struct HmacDrbg {
    key: [u8; 32],
    counter: u64,
    buffer: [u8; 32],
    buffer_pos: usize,
}

impl HmacDrbg {
    /// Creates a generator keyed by `HMAC(seed, domain)`.
    pub fn new(seed: &[u8], domain: &[u8]) -> HmacDrbg {
        HmacDrbg {
            key: hmac_sha256(seed, domain),
            counter: 0,
            buffer: [0; 32],
            buffer_pos: 32, // empty
        }
    }

    fn refill(&mut self) {
        self.buffer = hmac_sha256(&self.key, &self.counter.to_be_bytes());
        self.counter += 1;
        self.buffer_pos = 0;
    }

    /// Returns the next byte of the stream.
    pub fn next_byte(&mut self) -> u8 {
        if self.buffer_pos == 32 {
            self.refill();
        }
        let b = self.buffer[self.buffer_pos];
        self.buffer_pos += 1;
        b
    }

    /// Fills `out` with the next bytes of the stream.
    pub fn fill(&mut self, out: &mut [u8]) {
        for b in out {
            *b = self.next_byte();
        }
    }

    /// Returns the next 32 bytes of the stream.
    pub fn next_bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill(&mut out);
        out
    }

    /// Returns the next 8 bytes of the stream as a big-endian `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut out = [0u8; 8];
        self.fill(&mut out);
        u64::from_be_bytes(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_test_case_long_key() {
        // Test with a key larger than 64 bytes (must be hashed first).
        let key = [0xaau8; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        let tag = hmac_sha256(&key, msg);
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn drbg_determinism_and_divergence() {
        let mut a = HmacDrbg::new(b"seed", b"d1");
        let mut b = HmacDrbg::new(b"seed", b"d1");
        let mut c = HmacDrbg::new(b"seed", b"d2");
        let av: Vec<u8> = (0..100).map(|_| a.next_byte()).collect();
        let bv: Vec<u8> = (0..100).map(|_| b.next_byte()).collect();
        let cv: Vec<u8> = (0..100).map(|_| c.next_byte()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn drbg_fill_matches_bytewise() {
        let mut a = HmacDrbg::new(b"s", b"d");
        let mut b = HmacDrbg::new(b"s", b"d");
        let mut buf = [0u8; 77];
        a.fill(&mut buf);
        let each: Vec<u8> = (0..77).map(|_| b.next_byte()).collect();
        assert_eq!(buf.to_vec(), each);
    }

    #[test]
    fn drbg_u64_is_big_endian_of_stream() {
        let mut a = HmacDrbg::new(b"s", b"d");
        let mut b = HmacDrbg::new(b"s", b"d");
        let x = a.next_u64();
        let mut buf = [0u8; 8];
        b.fill(&mut buf);
        assert_eq!(x, u64::from_be_bytes(buf));
    }
}
