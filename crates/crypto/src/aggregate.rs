//! Deterministic multi-signature aggregation over the crate's Schnorr group.
//!
//! A quorum certificate carries `q` signatures on the **same** statement.
//! Plain Schnorr signatures cannot be compressed after the fact (each one
//! binds its own nonce commitment into its challenge), so this module
//! implements the standard fix: a MuSig-style two-round co-signing ceremony
//! that produces a *single* 64-byte `(R, s)` pair valid for the whole signer
//! set. The ceremony is run by whichever party holds (or collects material
//! from) all the signing keys — in this workspace the `ba-fmine` keychain,
//! which already plays the trusted-PKI role.
//!
//! ## Scheme
//!
//! For an ordered signer list with digest `L` and message `m`:
//!
//! ```text
//! a_j  = H("agg-coeff/v1"     || L || pk_j)            key coefficient
//! k_j  = HMAC(sk_j, "agg-nonce/v1" || L || m)          deterministic nonce
//! R    = prod_j g^{k_j}
//! apk  = prod_j pk_j^{a_j}                             aggregate key
//! e    = H("agg-challenge/v1" || L || R || apk || m)
//! s_j  = k_j + e * a_j * sk_j                          partial signature
//! s    = sum_j s_j
//! ```
//!
//! and verification checks `g^s == R * apk^e`, which expands to the product
//! of the per-signer Schnorr equations. The per-key coefficients `a_j` are
//! what defeats rogue-key attacks: without them an adversary who registers
//! `pk' = g^x * pk_victim^{-1}` could sign for `{pk_victim, pk'}` alone
//! (the keys cancel in the unweighted product); with `a_j` bound to the
//! whole key list the cancellation no longer lines up (see the
//! `rogue_key_substitution_rejected` test).
//!
//! Partial signatures are individually checkable against the shared `R`
//! (`g^{s_j} == R_j * pk_j^{e * a_j}`), so a combiner can attribute a bad
//! contribution before aggregation — the "exactly one invalid input"
//! must-reject path.
//!
//! ## Fast and slow verifiers
//!
//! [`verify_aggregate`] is the production path: two Straus/interleaved
//! multi-exponentiations ([`Group::multi_pow_mixed`]) that consult the
//! process-wide fixed-base table cache for registered public keys.
//! [`verify_aggregate_slow`] is the pinned reference: independent
//! square-and-multiply exponentiations and the defining subgroup-membership
//! test, sharing no code with the fast path beyond the group arithmetic
//! itself. Property tests keep the two in exact agreement.

use crate::group::{Element, Group, Scalar};
use crate::hmac::hmac_sha256;
use crate::schnorr::{SigningKey, VerifyingKey};
use crate::sha256::Sha256;

/// An aggregate Schnorr signature `(R, s)` for an ordered signer list.
///
/// Exactly the size of one individual [`crate::schnorr::Signature`],
/// independent of the number of signers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AggregateSignature {
    /// Combined commitment `R = prod_j g^{k_j}`.
    pub r: Element,
    /// Combined response `s = sum_j s_j (mod q)`.
    pub s: Scalar,
}

impl AggregateSignature {
    /// Canonical 64-byte encoding (R || s).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_bytes());
        out[32..].copy_from_slice(&self.s.to_bytes());
        out
    }
}

/// Digest `L` of the ordered signer list; every per-signer quantity is
/// bound to it.
pub fn key_list_digest(keys: &[VerifyingKey]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"agg-keylist/v1");
    for k in keys {
        h.update(&k.to_bytes());
    }
    h.finalize()
}

/// The rogue-key-defeating coefficient `a_j` for `pk` under list digest `l`.
fn coefficient(l: &[u8; 32], pk: &VerifyingKey) -> Scalar {
    let g = Group::standard();
    let d = Sha256::digest_parts(&[b"agg-coeff/v1", l, &pk.to_bytes()]);
    let a = g.scalar_from_digest(&d);
    if a.is_zero() {
        // Cryptographically unreachable; keep the coefficient invertible.
        g.scalar_from_u64(1)
    } else {
        a
    }
}

/// The deterministic nonce `k_j = HMAC(sk_j, "agg-nonce/v1" || L || m)`.
fn nonce(key: &SigningKey, l: &[u8; 32], msg: &[u8]) -> Scalar {
    let g = Group::standard();
    let mut input = Vec::with_capacity(16 + 32 + msg.len());
    input.extend_from_slice(b"agg-nonce/v1");
    input.extend_from_slice(l);
    input.extend_from_slice(msg);
    let mut k = g.scalar_from_digest(&hmac_sha256(&key.secret_scalar().to_bytes(), &input));
    if k.is_zero() {
        k = g.scalar_from_u64(1);
    }
    k
}

/// The shared challenge `e = H("agg-challenge/v1" || L || R || apk || m)`.
fn challenge(l: &[u8; 32], r: &Element, apk: &Element, msg: &[u8]) -> Scalar {
    let g = Group::standard();
    let d = Sha256::digest_parts(&[b"agg-challenge/v1", l, &r.to_bytes(), &apk.to_bytes(), msg]);
    g.scalar_from_digest(&d)
}

/// The aggregate public key `apk = prod_j pk_j^{a_j}`, evaluated as one
/// interleaved multi-exponentiation with cached tables where available.
pub fn aggregate_key(keys: &[VerifyingKey]) -> Element {
    let g = Group::standard();
    let l = key_list_digest(keys);
    let mut tables = Vec::new();
    let mut tabled_exps = Vec::new();
    let mut plain = Vec::new();
    for k in keys {
        let a = coefficient(&l, k);
        match g.cached_table(&k.0) {
            Some(t) => {
                tables.push(t);
                tabled_exps.push(a);
            }
            None => plain.push((k.0, a)),
        }
    }
    let tabled: Vec<_> = tables.iter().zip(tabled_exps.iter()).map(|(t, e)| (&**t, *e)).collect();
    g.multi_pow_mixed(&tabled, &plain)
}

/// Round 1 of the ceremony: signer `key`'s nonce commitment `R_j = g^{k_j}`.
pub fn partial_commit(key: &SigningKey, keys: &[VerifyingKey], msg: &[u8]) -> Element {
    let g = Group::standard();
    let l = key_list_digest(keys);
    g.pow_g(&nonce(key, &l, msg))
}

/// Round 2: signer `key`'s partial signature `s_j = k_j + e * a_j * sk_j`,
/// given the combined commitment `r` from round 1.
pub fn partial_sign(key: &SigningKey, keys: &[VerifyingKey], msg: &[u8], r: &Element) -> Scalar {
    let g = Group::standard();
    let l = key_list_digest(keys);
    let apk = aggregate_key(keys);
    let e = challenge(&l, r, &apk, msg);
    let a = coefficient(&l, &key.verifying_key());
    let k = nonce(key, &l, msg);
    g.scalar_add(&k, &g.scalar_mul(&e, &g.scalar_mul(&a, key.secret_scalar())))
}

/// Checks one partial signature against the shared commitment:
/// `g^{s_j} == R_j * pk_j^{e * a_j}`. Lets a combiner attribute exactly
/// which contribution is bad before aggregating.
pub fn verify_partial(
    key: &VerifyingKey,
    keys: &[VerifyingKey],
    msg: &[u8],
    r: &Element,
    r_j: &Element,
    s_j: &Scalar,
) -> bool {
    let g = Group::standard();
    if !g.is_valid_element(r_j) || !g.is_valid_element(&key.0) {
        return false;
    }
    let l = key_list_digest(keys);
    let apk = aggregate_key(keys);
    let e = challenge(&l, r, &apk, msg);
    let a = coefficient(&l, key);
    g.pow_g(s_j) == g.mul(r_j, &g.pow(&key.0, &g.scalar_mul(&e, &a)))
}

/// Combines round-1 commitments and round-2 partials into the aggregate.
///
/// Does **not** validate the partials — callers that accept third-party
/// contributions must screen them with [`verify_partial`] first (the final
/// [`verify_aggregate`] still catches any bad combination, it just cannot
/// say whose contribution was at fault).
pub fn combine(commits: &[Element], partials: &[Scalar]) -> AggregateSignature {
    assert_eq!(commits.len(), partials.len(), "commitment/partial count mismatch");
    assert!(!commits.is_empty(), "cannot combine an empty signer set");
    let g = Group::standard();
    let mut r = commits[0];
    for c in &commits[1..] {
        r = g.mul(&r, c);
    }
    let mut s = g.scalar_from_u64(0);
    for p in partials {
        s = g.scalar_add(&s, p);
    }
    AggregateSignature { r, s }
}

/// Runs the whole two-round ceremony for a party holding every signing key.
///
/// # Panics
///
/// Panics on an empty signer set.
///
/// # Examples
///
/// ```
/// use ba_crypto::aggregate::{sign_aggregate, verify_aggregate};
/// use ba_crypto::schnorr::SigningKey;
///
/// let keys: Vec<SigningKey> =
///     (0..3u32).map(|i| SigningKey::from_seed(&i.to_be_bytes())).collect();
/// let refs: Vec<&SigningKey> = keys.iter().collect();
/// let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
/// let agg = sign_aggregate(&refs, b"vote");
/// assert!(verify_aggregate(&vks, b"vote", &agg));
/// ```
pub fn sign_aggregate(keys: &[&SigningKey], msg: &[u8]) -> AggregateSignature {
    assert!(!keys.is_empty(), "cannot aggregate an empty signer set");
    let vks: Vec<VerifyingKey> = keys.iter().map(|k| k.verifying_key()).collect();
    let commits: Vec<Element> = keys.iter().map(|k| partial_commit(k, &vks, msg)).collect();
    let g = Group::standard();
    let mut r = commits[0];
    for c in &commits[1..] {
        r = g.mul(&r, c);
    }
    let partials: Vec<Scalar> = keys.iter().map(|k| partial_sign(k, &vks, msg, &r)).collect();
    combine(&commits, &partials)
}

/// Verifies an aggregate signature against the ordered signer list — the
/// production fast path.
///
/// Two Straus multi-exponentiations: one for `apk` (via [`aggregate_key`],
/// cached tables where registered) and one for the final
/// `g^s == R * prod_j pk_j^{e * a_j}` check, which folds `apk^e` into the
/// same interleaved evaluation instead of exponentiating the combined key.
pub fn verify_aggregate(keys: &[VerifyingKey], msg: &[u8], agg: &AggregateSignature) -> bool {
    if keys.is_empty() {
        return false;
    }
    let g = Group::standard();
    if !g.is_valid_element(&agg.r) {
        return false;
    }
    let mut tables = Vec::with_capacity(keys.len());
    for k in keys {
        let table = g.cached_table(&k.0);
        if table.is_none() && !g.is_valid_element(&k.0) {
            return false;
        }
        tables.push(table);
    }
    let l = key_list_digest(keys);
    let apk = aggregate_key(keys);
    let e = challenge(&l, &agg.r, &apk, msg);
    // g^s * R^{-1} == prod_j pk_j^{e * a_j}   (== apk^e)
    let mut tabled_refs = Vec::new();
    let mut tabled_exps = Vec::new();
    let mut plain = Vec::new();
    for (k, table) in keys.iter().zip(tables.iter()) {
        let ea = g.scalar_mul(&e, &coefficient(&l, k));
        match table {
            Some(t) => {
                tabled_refs.push(t.clone());
                tabled_exps.push(ea);
            }
            None => plain.push((k.0, ea)),
        }
    }
    let tabled: Vec<_> =
        tabled_refs.iter().zip(tabled_exps.iter()).map(|(t, e)| (&**t, *e)).collect();
    let lhs = g.mul(&g.pow_g(&agg.s), &g.inv(&agg.r));
    lhs == g.multi_pow_mixed(&tabled, &plain)
}

/// The pinned slow reference verifier: independent square-and-multiply
/// exponentiations, the defining subgroup-membership test, and the textbook
/// `g^s == R * apk^e` equation. Shares no fast-path code with
/// [`verify_aggregate`]; property tests pin the two to exact agreement.
pub fn verify_aggregate_slow(keys: &[VerifyingKey], msg: &[u8], agg: &AggregateSignature) -> bool {
    if keys.is_empty() {
        return false;
    }
    let g = Group::standard();
    if !g.is_valid_element_slow(&agg.r) {
        return false;
    }
    for k in keys {
        if !g.is_valid_element_slow(&k.0) {
            return false;
        }
    }
    let l = key_list_digest(keys);
    let mut apk: Option<Element> = None;
    for k in keys {
        let term = g.pow(&k.0, &coefficient(&l, k));
        apk = Some(match apk {
            None => term,
            Some(acc) => g.mul(&acc, &term),
        });
    }
    let apk = apk.expect("non-empty signer set");
    let e = challenge(&l, &agg.r, &apk, msg);
    g.pow(&g.generator(), &agg.s) == g.mul(&agg.r, &g.pow(&apk, &e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyring(n: u32) -> Vec<SigningKey> {
        (0..n).map(|i| SigningKey::from_seed(&i.to_be_bytes())).collect()
    }

    fn vks(keys: &[SigningKey]) -> Vec<VerifyingKey> {
        keys.iter().map(|k| k.verifying_key()).collect()
    }

    #[test]
    fn aggregate_roundtrip() {
        for n in [1u32, 2, 3, 7] {
            let keys = keyring(n);
            let refs: Vec<&SigningKey> = keys.iter().collect();
            let agg = sign_aggregate(&refs, b"statement");
            assert!(verify_aggregate(&vks(&keys), b"statement", &agg), "n={n}");
            assert!(verify_aggregate_slow(&vks(&keys), b"statement", &agg), "n={n}");
        }
    }

    #[test]
    fn aggregation_is_deterministic() {
        let keys = keyring(4);
        let refs: Vec<&SigningKey> = keys.iter().collect();
        assert_eq!(sign_aggregate(&refs, b"m").to_bytes(), sign_aggregate(&refs, b"m").to_bytes());
        assert_ne!(sign_aggregate(&refs, b"m").to_bytes(), sign_aggregate(&refs, b"n").to_bytes());
    }

    #[test]
    fn wrong_message_rejected() {
        let keys = keyring(3);
        let refs: Vec<&SigningKey> = keys.iter().collect();
        let agg = sign_aggregate(&refs, b"m");
        assert!(!verify_aggregate(&vks(&keys), b"n", &agg));
        assert!(!verify_aggregate_slow(&vks(&keys), b"n", &agg));
    }

    #[test]
    fn wrong_key_list_rejected() {
        let keys = keyring(4);
        let refs: Vec<&SigningKey> = keys.iter().collect();
        let agg = sign_aggregate(&refs, b"m");
        let all = vks(&keys);
        // Subset, superset, reordering: all bind a different key list.
        assert!(!verify_aggregate(&all[..3], b"m", &agg));
        let extra = SigningKey::from_seed(b"extra").verifying_key();
        let mut superset = all.clone();
        superset.push(extra);
        assert!(!verify_aggregate(&superset, b"m", &agg));
        let mut reordered = all.clone();
        reordered.swap(0, 1);
        assert!(!verify_aggregate(&reordered, b"m", &agg));
    }

    #[test]
    fn tampered_aggregate_rejected() {
        let g = Group::standard();
        let keys = keyring(3);
        let refs: Vec<&SigningKey> = keys.iter().collect();
        let agg = sign_aggregate(&refs, b"m");
        let bad_s = AggregateSignature { r: agg.r, s: g.scalar_add(&agg.s, &g.scalar_from_u64(1)) };
        assert!(!verify_aggregate(&vks(&keys), b"m", &bad_s));
        let bad_r = AggregateSignature { r: g.mul(&agg.r, &g.generator()), s: agg.s };
        assert!(!verify_aggregate(&vks(&keys), b"m", &bad_r));
    }

    #[test]
    fn one_bad_partial_breaks_aggregate_and_is_attributable() {
        let g = Group::standard();
        let keys = keyring(3);
        let list = vks(&keys);
        let commits: Vec<Element> = keys.iter().map(|k| partial_commit(k, &list, b"m")).collect();
        let mut r = commits[0];
        for c in &commits[1..] {
            r = g.mul(&r, c);
        }
        let mut partials: Vec<Scalar> =
            keys.iter().map(|k| partial_sign(k, &list, b"m", &r)).collect();
        // All partials screen clean; corrupt exactly one.
        for (i, (c, p)) in commits.iter().zip(partials.iter()).enumerate() {
            assert!(verify_partial(&list[i], &list, b"m", &r, c, p));
        }
        partials[1] = g.scalar_add(&partials[1], &g.scalar_from_u64(1));
        assert!(!verify_partial(&list[1], &list, b"m", &r, &commits[1], &partials[1]));
        assert!(verify_partial(&list[0], &list, b"m", &r, &commits[0], &partials[0]));
        let agg = combine(&commits, &partials);
        assert!(!verify_aggregate(&list, b"m", &agg));
        assert!(!verify_aggregate_slow(&list, b"m", &agg));
    }

    #[test]
    fn rogue_key_substitution_rejected() {
        // The adversary registers pk' = g^x * pk_victim^{-1}. Under
        // *unweighted* aggregation the victim's key cancels out of the
        // combined key, so the adversary can sign for {victim, rogue}
        // alone. The coefficients a_j must defeat exactly this.
        let g = Group::standard();
        let victim = SigningKey::from_seed(b"victim");
        let x = g.scalar_from_bytes(b"rogue-secret");
        let rogue_pk = VerifyingKey(g.mul(&g.pow_g(&x), &g.inv(&victim.verifying_key().0)));
        let list = [victim.verifying_key(), rogue_pk];
        let l = key_list_digest(&list);

        // Forge the signature that *would* verify without coefficients:
        // naive apk = pk_victim * pk' = g^x, a plain Schnorr key the
        // adversary controls.
        let naive_apk = g.mul(&victim.verifying_key().0, &rogue_pk.0);
        assert_eq!(naive_apk, g.pow_g(&x), "rogue-key cancellation holds");
        let k = g.scalar_from_bytes(b"rogue-nonce");
        let r = g.pow_g(&k);
        let e = challenge(&l, &r, &naive_apk, b"m");
        let forged = AggregateSignature { r, s: g.scalar_add(&k, &g.scalar_mul(&e, &x)) };
        // Sanity: the forgery satisfies the unweighted equation.
        assert_eq!(g.pow_g(&forged.s), g.mul(&forged.r, &g.pow(&naive_apk, &e)));
        // But both real verifiers bind apk through the coefficients.
        assert!(!verify_aggregate(&list, b"m", &forged));
        assert!(!verify_aggregate_slow(&list, b"m", &forged));
    }

    #[test]
    fn empty_signer_set_rejected() {
        let keys = keyring(2);
        let refs: Vec<&SigningKey> = keys.iter().collect();
        let agg = sign_aggregate(&refs, b"m");
        assert!(!verify_aggregate(&[], b"m", &agg));
        assert!(!verify_aggregate_slow(&[], b"m", &agg));
    }
}
