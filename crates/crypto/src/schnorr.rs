//! Schnorr signatures over the crate's safe-prime group.
//!
//! The paper's protocols sign every message ("all messages are signed, and
//! only messages with valid signatures are processed"). This module provides
//! that signature scheme with deterministic (RFC-6979-style) nonces so the
//! whole simulation stays replayable.
//!
//! ## Fast paths
//!
//! Signing and verification both run off the group's fixed-base window
//! table for `g`; [`verify_batch`] additionally verifies many signatures at
//! once with a random-linear-combination check (one shared multi-
//! exponentiation instead of per-signature exponentiations), consulting the
//! process-wide public-key table cache for long-lived keys. A batch
//! verifies iff — up to probability `2^-48` per forged signature — every
//! member signature verifies individually.

use crate::group::{Element, Group, Scalar};
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;

/// A Schnorr secret key (a scalar).
#[derive(Clone, Debug)]
pub struct SigningKey {
    sk: Scalar,
    pk: Element,
}

/// A Schnorr public key (a group element `g^sk`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VerifyingKey(pub Element);

/// A Schnorr signature `(R, s)` with `R = g^k`, `s = k + e * sk`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    /// Commitment `R = g^k`.
    pub r: Element,
    /// Response `s = k + e * sk (mod q)`.
    pub s: Scalar,
}

impl Signature {
    /// Canonical 64-byte encoding (R || s).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_bytes());
        out[32..].copy_from_slice(&self.s.to_bytes());
        out
    }
}

impl SigningKey {
    /// Derives a signing key deterministically from seed bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use ba_crypto::schnorr::SigningKey;
    ///
    /// let key = SigningKey::from_seed(b"node-7-signing-key");
    /// let sig = key.sign(b"vote");
    /// assert!(key.verifying_key().verify(b"vote", &sig));
    /// ```
    pub fn from_seed(seed: &[u8]) -> SigningKey {
        let g = Group::standard();
        let mut sk = g.scalar_from_bytes(seed);
        if sk.is_zero() {
            // Cryptographically unreachable, but keep the key valid.
            sk = g.scalar_from_u64(1);
        }
        let pk = g.pow_g(&sk);
        SigningKey { sk, pk }
    }

    /// Returns the matching public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey(self.pk)
    }

    /// Exposes the secret scalar (needed by the VRF, which shares keys).
    pub fn secret_scalar(&self) -> &Scalar {
        &self.sk
    }

    /// Signs a message with a deterministic nonce
    /// `k = HMAC(sk, "nonce" || msg)`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let g = Group::standard();
        let mut nonce_input = Vec::with_capacity(msg.len() + 16);
        nonce_input.extend_from_slice(b"schnorr-nonce/v1");
        nonce_input.extend_from_slice(msg);
        let mut k = g.scalar_from_digest(&hmac_sha256(&self.sk.to_bytes(), &nonce_input));
        if k.is_zero() {
            k = g.scalar_from_u64(1);
        }
        let r = g.pow_g(&k);
        let e = challenge(&r, &self.pk, msg);
        let s = g.scalar_add(&k, &g.scalar_mul(&e, &self.sk));
        Signature { r, s }
    }
}

impl VerifyingKey {
    /// Verifies a signature: checks `g^s == R * pk^e`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let g = Group::standard();
        if !g.is_valid_element(&sig.r) || !g.is_valid_element(&self.0) {
            return false;
        }
        let e = challenge(&sig.r, &self.0, msg);
        let lhs = g.pow_g(&sig.s);
        let rhs = g.mul(&sig.r, &g.pow(&self.0, &e));
        lhs == rhs
    }

    /// Canonical 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_bytes()
    }
}

fn challenge(r: &Element, pk: &Element, msg: &[u8]) -> Scalar {
    let g = Group::standard();
    let d = Sha256::digest_parts(&[b"schnorr-challenge/v1", &r.to_bytes(), &pk.to_bytes(), msg]);
    g.scalar_from_digest(&d)
}

/// One signature in a [`verify_batch`] call.
#[derive(Clone, Copy, Debug)]
pub struct BatchItem<'a> {
    /// The claimed signer.
    pub key: &'a VerifyingKey,
    /// The signed message.
    pub msg: &'a [u8],
    /// The signature.
    pub sig: &'a Signature,
}

/// Verifies a batch of Schnorr signatures with a random linear combination.
///
/// Instead of checking `g^{s_i} == R_i * pk_i^{e_i}` per signature, draw
/// small (48-bit) coefficients `z_i` from a Fiat–Shamir transcript over the
/// whole batch and check the single combined equation
///
/// ```text
/// g^{sum z_i s_i} == prod R_i^{z_i} * prod pk_i^{z_i e_i}
/// ```
///
/// evaluated as one interleaved multi-exponentiation (shared squarings;
/// cached fixed-base tables for any public key registered via
/// [`Group::ensure_cached_table`]). If every signature is valid the equation
/// always holds; if **any** signature is invalid it fails except with
/// probability `2^-48` per invalid member (over the coefficients, which the
/// prover cannot predict). The empty batch verifies trivially.
///
/// # Examples
///
/// ```
/// use ba_crypto::schnorr::{verify_batch, BatchItem, SigningKey};
///
/// let keys: Vec<SigningKey> =
///     (0..4).map(|i: u32| SigningKey::from_seed(&i.to_be_bytes())).collect();
/// let msgs: Vec<Vec<u8>> = (0..4).map(|i| format!("vote-{i}").into_bytes()).collect();
/// let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
/// let sigs: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
/// let items: Vec<BatchItem> = (0..4)
///     .map(|i| BatchItem { key: &vks[i], msg: &msgs[i], sig: &sigs[i] })
///     .collect();
/// assert!(verify_batch(&items));
/// ```
pub fn verify_batch(items: &[BatchItem<'_>]) -> bool {
    if items.is_empty() {
        return true;
    }
    if items.len() == 1 {
        return items[0].key.verify(items[0].msg, items[0].sig);
    }
    // Large batches: split into independent random-linear-combination
    // sub-batches and verify them on all cores (see `crate::batch` for the
    // soundness argument) — the API boundary is exactly what makes this
    // possible; sequential per-message verification can't parallelize
    // inside the caller's loop.
    crate::batch::verify_chunked(items, verify_batch_serial)
}

fn verify_batch_serial(items: &[BatchItem<'_>]) -> bool {
    let g = Group::standard();
    // Per-item: look up the signer's cached table (registration already
    // validated membership for cached keys), check membership of the
    // per-signature commitments, and compute challenges. The commitment
    // check is what keeps batch- and single-acceptance identical: without
    // it, a pair of sign-flipped `R`s could cancel in the combined product.
    let mut challenges = Vec::with_capacity(items.len());
    let mut pk_tables = Vec::with_capacity(items.len());
    for it in items {
        let table = g.cached_table(&it.key.0);
        if table.is_none() && !g.is_valid_element(&it.key.0) {
            return false;
        }
        if !g.is_valid_element(&it.sig.r) {
            return false;
        }
        pk_tables.push(table);
        challenges.push(challenge(&it.sig.r, &it.key.0, it.msg));
    }
    // Fiat–Shamir coefficients bound to the entire batch transcript; the
    // challenges already bind the messages, so hashing `(R, s, pk, e)` per
    // item fixes the whole statement.
    let mut transcript = Sha256::new();
    transcript.update(b"schnorr-batch/v1");
    for (it, e) in items.iter().zip(challenges.iter()) {
        transcript.update(&it.sig.r.to_bytes());
        transcript.update(&it.sig.s.to_bytes());
        transcript.update(&it.key.to_bytes());
        transcript.update(&e.to_bytes());
    }
    let coefficients = batch_coefficients(&transcript.finalize(), items.len());

    let mut s_sum = g.scalar_from_u64(0);
    let mut tables = Vec::new();
    let mut tabled_exps = Vec::new();
    let mut plain = Vec::with_capacity(items.len());
    for (i, it) in items.iter().enumerate() {
        let z = coefficients[i];
        s_sum = g.scalar_add(&s_sum, &g.scalar_mul(&z, &it.sig.s));
        plain.push((it.sig.r, z));
        let ze = g.scalar_mul(&z, &challenges[i]);
        match &pk_tables[i] {
            Some(t) => {
                tables.push(t.clone());
                tabled_exps.push(ze);
            }
            None => plain.push((it.key.0, ze)),
        }
    }
    let tabled: Vec<_> = tables.iter().zip(tabled_exps.iter()).map(|(t, e)| (&**t, *e)).collect();
    let lhs = g.pow_g(&s_sum);
    let rhs = g.multi_pow_mixed(&tabled, &plain);
    lhs == rhs
}

/// Derives `count` nonzero 48-bit batch coefficients from a transcript
/// digest (four per SHA-256 invocation).
///
/// 48-bit coefficients bound the probability that a batch containing an
/// invalid member still verifies at `2^-48` per member — far below any
/// event this simulation-grade crypto cares about (the group itself offers
/// ~60-bit security; see the crate-level threat model).
pub(crate) fn batch_coefficients(seed: &[u8; 32], count: usize) -> Vec<Scalar> {
    let g = Group::standard();
    let mut out = Vec::with_capacity(count);
    let mut block = 0u64;
    while out.len() < count {
        let d = Sha256::digest_parts(&[b"batch-coefficient/v1", seed, &block.to_be_bytes()]);
        for chunk in d.chunks(8) {
            if out.len() >= count {
                break;
            }
            let z = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
            out.push(g.scalar_from_u64((z & 0xFFFF_FFFF_FFFF).max(1)));
        }
        block += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_seed(b"seed-a");
        let sig = key.sign(b"hello world");
        assert!(key.verifying_key().verify(b"hello world", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let key = SigningKey::from_seed(b"seed-a");
        let sig = key.sign(b"hello world");
        assert!(!key.verifying_key().verify(b"hello worlds", &sig));
        assert!(!key.verifying_key().verify(b"", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let key_a = SigningKey::from_seed(b"seed-a");
        let key_b = SigningKey::from_seed(b"seed-b");
        let sig = key_a.sign(b"msg");
        assert!(!key_b.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let g = Group::standard();
        let key = SigningKey::from_seed(b"seed-a");
        let sig = key.sign(b"msg");
        let bad_s = Signature { r: sig.r, s: g.scalar_add(&sig.s, &g.scalar_from_u64(1)) };
        assert!(!key.verifying_key().verify(b"msg", &bad_s));
        let bad_r = Signature { r: g.mul(&sig.r, &g.generator()), s: sig.s };
        assert!(!key.verifying_key().verify(b"msg", &bad_r));
    }

    #[test]
    fn deterministic_signing() {
        let key = SigningKey::from_seed(b"seed-a");
        assert_eq!(key.sign(b"m").to_bytes(), key.sign(b"m").to_bytes());
        assert_ne!(key.sign(b"m").to_bytes(), key.sign(b"n").to_bytes());
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = SigningKey::from_seed(b"1");
        let b = SigningKey::from_seed(b"2");
        assert_ne!(a.verifying_key().to_bytes(), b.verifying_key().to_bytes());
    }

    #[test]
    fn invalid_r_element_rejected() {
        let g = Group::standard();
        let key = SigningKey::from_seed(b"seed");
        let sig = key.sign(b"m");
        // Forge an R outside the subgroup (a non-residue: -1 mod p).
        let minus_one = g.prime().wrapping_sub(&crate::bigint::U256::ONE);
        let bogus = Signature { r: Element::from_raw_unchecked(minus_one), s: sig.s };
        assert!(!key.verifying_key().verify(b"m", &bogus));
    }
}
