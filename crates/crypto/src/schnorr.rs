//! Schnorr signatures over the crate's safe-prime group.
//!
//! The paper's protocols sign every message ("all messages are signed, and
//! only messages with valid signatures are processed"). This module provides
//! that signature scheme with deterministic (RFC-6979-style) nonces so the
//! whole simulation stays replayable.

use crate::group::{Element, Group, Scalar};
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;

/// A Schnorr secret key (a scalar).
#[derive(Clone, Debug)]
pub struct SigningKey {
    sk: Scalar,
    pk: Element,
}

/// A Schnorr public key (a group element `g^sk`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VerifyingKey(pub Element);

/// A Schnorr signature `(R, s)` with `R = g^k`, `s = k + e * sk`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    /// Commitment `R = g^k`.
    pub r: Element,
    /// Response `s = k + e * sk (mod q)`.
    pub s: Scalar,
}

impl Signature {
    /// Canonical 64-byte encoding (R || s).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_bytes());
        out[32..].copy_from_slice(&self.s.to_bytes());
        out
    }
}

impl SigningKey {
    /// Derives a signing key deterministically from seed bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use ba_crypto::schnorr::SigningKey;
    ///
    /// let key = SigningKey::from_seed(b"node-7-signing-key");
    /// let sig = key.sign(b"vote");
    /// assert!(key.verifying_key().verify(b"vote", &sig));
    /// ```
    pub fn from_seed(seed: &[u8]) -> SigningKey {
        let g = Group::standard();
        let mut sk = g.scalar_from_bytes(seed);
        if sk.is_zero() {
            // Cryptographically unreachable, but keep the key valid.
            sk = g.scalar_from_u64(1);
        }
        let pk = g.pow_g(&sk);
        SigningKey { sk, pk }
    }

    /// Returns the matching public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey(self.pk)
    }

    /// Exposes the secret scalar (needed by the VRF, which shares keys).
    pub fn secret_scalar(&self) -> &Scalar {
        &self.sk
    }

    /// Signs a message with a deterministic nonce
    /// `k = HMAC(sk, "nonce" || msg)`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let g = Group::standard();
        let mut nonce_input = Vec::with_capacity(msg.len() + 16);
        nonce_input.extend_from_slice(b"schnorr-nonce/v1");
        nonce_input.extend_from_slice(msg);
        let mut k = g.scalar_from_digest(&hmac_sha256(&self.sk.to_bytes(), &nonce_input));
        if k.is_zero() {
            k = g.scalar_from_u64(1);
        }
        let r = g.pow_g(&k);
        let e = challenge(&r, &self.pk, msg);
        let s = g.scalar_add(&k, &g.scalar_mul(&e, &self.sk));
        Signature { r, s }
    }
}

impl VerifyingKey {
    /// Verifies a signature: checks `g^s == R * pk^e`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let g = Group::standard();
        if !g.is_valid_element(&sig.r) || !g.is_valid_element(&self.0) {
            return false;
        }
        let e = challenge(&sig.r, &self.0, msg);
        let lhs = g.pow_g(&sig.s);
        let rhs = g.mul(&sig.r, &g.pow(&self.0, &e));
        lhs == rhs
    }

    /// Canonical 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_bytes()
    }
}

fn challenge(r: &Element, pk: &Element, msg: &[u8]) -> Scalar {
    let g = Group::standard();
    let d = Sha256::digest_parts(&[b"schnorr-challenge/v1", &r.to_bytes(), &pk.to_bytes(), msg]);
    g.scalar_from_digest(&d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_seed(b"seed-a");
        let sig = key.sign(b"hello world");
        assert!(key.verifying_key().verify(b"hello world", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let key = SigningKey::from_seed(b"seed-a");
        let sig = key.sign(b"hello world");
        assert!(!key.verifying_key().verify(b"hello worlds", &sig));
        assert!(!key.verifying_key().verify(b"", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let key_a = SigningKey::from_seed(b"seed-a");
        let key_b = SigningKey::from_seed(b"seed-b");
        let sig = key_a.sign(b"msg");
        assert!(!key_b.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let g = Group::standard();
        let key = SigningKey::from_seed(b"seed-a");
        let sig = key.sign(b"msg");
        let bad_s = Signature { r: sig.r, s: g.scalar_add(&sig.s, &g.scalar_from_u64(1)) };
        assert!(!key.verifying_key().verify(b"msg", &bad_s));
        let bad_r = Signature { r: g.mul(&sig.r, &g.generator()), s: sig.s };
        assert!(!key.verifying_key().verify(b"msg", &bad_r));
    }

    #[test]
    fn deterministic_signing() {
        let key = SigningKey::from_seed(b"seed-a");
        assert_eq!(key.sign(b"m").to_bytes(), key.sign(b"m").to_bytes());
        assert_ne!(key.sign(b"m").to_bytes(), key.sign(b"n").to_bytes());
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = SigningKey::from_seed(b"1");
        let b = SigningKey::from_seed(b"2");
        assert_ne!(a.verifying_key().to_bytes(), b.verifying_key().to_bytes());
    }

    #[test]
    fn invalid_r_element_rejected() {
        let g = Group::standard();
        let key = SigningKey::from_seed(b"seed");
        let sig = key.sign(b"m");
        // Forge an R outside the subgroup (a non-residue: -1 mod p).
        let minus_one = g.prime().wrapping_sub(&crate::bigint::U256::ONE);
        let bogus = Signature {
            r: Element::from_raw_unchecked(minus_one),
            s: sig.s,
        };
        assert!(!key.verifying_key().verify(b"m", &bogus));
    }
}
