//! Forward-secure signatures via per-slot keys under a Merkle root
//! ("ephemeral keys" in Chen–Micali's terminology; the "memory-erasure
//! model" in this paper's).
//!
//! A signer generates one Schnorr key pair per slot `t < T`, publishes the
//! Merkle root of the per-slot public keys as its long-term key, and — in the
//! memory-erasure model — destroys `sk_t` immediately after signing for slot
//! `t`. An adversary corrupting the node *after* the erasure learns nothing
//! that lets it sign for slot `t` again.
//!
//! This module exists to reproduce the paper's ablation: the Chen–Micali
//! strawman (shared committees + ephemeral keys) is secure *only if* erasure
//! actually happens; the paper's bit-specific eligibility removes the need
//! for erasure entirely (experiment E8).

use crate::commit::{MerkleProof, MerkleTree};
use crate::schnorr::{Signature, SigningKey, VerifyingKey};

/// A forward-secure signing key covering slots `0..T`.
#[derive(Clone, Debug)]
pub struct ForwardSecureKey {
    /// `None` once erased.
    slot_keys: Vec<Option<SigningKey>>,
    tree: MerkleTree,
}

/// The long-term public key: the Merkle root over per-slot public keys plus
/// the slot count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ForwardSecurePublicKey {
    /// Merkle root of all per-slot verifying keys.
    pub root: [u8; 32],
    /// Number of slots the key supports.
    pub slots: usize,
}

/// A forward-secure signature: the slot's Schnorr signature, the slot
/// verifying key, and its Merkle inclusion proof.
#[derive(Clone, PartialEq, Debug)]
pub struct ForwardSecureSignature {
    /// Slot the signature is valid for.
    pub slot: usize,
    /// The per-slot Schnorr signature.
    pub sig: Signature,
    /// The per-slot verifying key.
    pub slot_vk: VerifyingKey,
    /// Inclusion proof of `slot_vk` under the long-term root.
    pub proof: MerkleProof,
}

/// Errors from forward-secure signing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SignSlotError {
    /// The slot index is at or beyond the key's slot count.
    SlotOutOfRange,
    /// The slot's secret key was already erased.
    KeyErased,
}

impl std::fmt::Display for SignSlotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignSlotError::SlotOutOfRange => write!(f, "slot index out of range"),
            SignSlotError::KeyErased => write!(f, "slot key was erased"),
        }
    }
}

impl std::error::Error for SignSlotError {}

impl ForwardSecureKey {
    /// Generates a key for `slots` slots from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use ba_crypto::forward_secure::ForwardSecureKey;
    ///
    /// let mut key = ForwardSecureKey::generate(b"node-1", 8);
    /// let pk = key.public_key();
    /// let sig = key.sign_slot(3, b"vote for 1")?;
    /// assert!(pk.verify(3, b"vote for 1", &sig));
    ///
    /// // Memory-erasure model: after erasing, slot 3 can never sign again.
    /// key.erase_through(3);
    /// assert!(key.sign_slot(3, b"vote for 0").is_err());
    /// # Ok::<(), ba_crypto::forward_secure::SignSlotError>(())
    /// ```
    pub fn generate(seed: &[u8], slots: usize) -> ForwardSecureKey {
        assert!(slots > 0, "need at least one slot");
        let slot_keys: Vec<Option<SigningKey>> = (0..slots)
            .map(|t| {
                let mut s = Vec::with_capacity(seed.len() + 24);
                s.extend_from_slice(b"fs-slot/v1/");
                s.extend_from_slice(&(t as u64).to_be_bytes());
                s.extend_from_slice(seed);
                Some(SigningKey::from_seed(&s))
            })
            .collect();
        let leaves: Vec<Vec<u8>> = slot_keys
            .iter()
            .map(|k| k.as_ref().expect("fresh").verifying_key().to_bytes().to_vec())
            .collect();
        let tree = MerkleTree::build(&leaves);
        ForwardSecureKey { slot_keys, tree }
    }

    /// Returns the long-term public key.
    pub fn public_key(&self) -> ForwardSecurePublicKey {
        ForwardSecurePublicKey { root: self.tree.root(), slots: self.slot_keys.len() }
    }

    /// Signs `msg` for `slot`.
    ///
    /// # Errors
    ///
    /// Returns [`SignSlotError::SlotOutOfRange`] for bad slots and
    /// [`SignSlotError::KeyErased`] if the slot key was destroyed.
    pub fn sign_slot(
        &self,
        slot: usize,
        msg: &[u8],
    ) -> Result<ForwardSecureSignature, SignSlotError> {
        let key = self
            .slot_keys
            .get(slot)
            .ok_or(SignSlotError::SlotOutOfRange)?
            .as_ref()
            .ok_or(SignSlotError::KeyErased)?;
        let mut slot_msg = Vec::with_capacity(msg.len() + 8);
        slot_msg.extend_from_slice(&(slot as u64).to_be_bytes());
        slot_msg.extend_from_slice(msg);
        Ok(ForwardSecureSignature {
            slot,
            sig: key.sign(&slot_msg),
            slot_vk: key.verifying_key(),
            proof: self.tree.prove(slot),
        })
    }

    /// Destroys all slot keys for slots `<= through` (the memory-erasure
    /// step). Idempotent.
    pub fn erase_through(&mut self, through: usize) {
        for k in self.slot_keys.iter_mut().take(through.saturating_add(1)) {
            *k = None;
        }
    }

    /// Returns `true` if the slot's key is still available.
    pub fn slot_available(&self, slot: usize) -> bool {
        matches!(self.slot_keys.get(slot), Some(Some(_)))
    }
}

impl ForwardSecurePublicKey {
    /// Verifies a slot signature: Merkle membership of the slot key plus the
    /// Schnorr signature itself.
    pub fn verify(&self, slot: usize, msg: &[u8], sig: &ForwardSecureSignature) -> bool {
        if sig.slot != slot || slot >= self.slots || sig.proof.index != slot {
            return false;
        }
        if !MerkleTree::verify(&self.root, &sig.slot_vk.to_bytes(), &sig.proof) {
            return false;
        }
        let mut slot_msg = Vec::with_capacity(msg.len() + 8);
        slot_msg.extend_from_slice(&(slot as u64).to_be_bytes());
        slot_msg.extend_from_slice(msg);
        sig.slot_vk.verify(&slot_msg, &sig.sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_all_slots() {
        let key = ForwardSecureKey::generate(b"seed", 5);
        let pk = key.public_key();
        for slot in 0..5 {
            let sig = key.sign_slot(slot, b"message").expect("key available");
            assert!(pk.verify(slot, b"message", &sig));
        }
    }

    #[test]
    fn slot_binding() {
        // A signature for slot 2 must not verify for slot 3 even though the
        // Merkle proof and the Schnorr signature are individually honest.
        let key = ForwardSecureKey::generate(b"seed", 5);
        let pk = key.public_key();
        let sig = key.sign_slot(2, b"m").unwrap();
        assert!(!pk.verify(3, b"m", &sig));
    }

    #[test]
    fn erased_key_cannot_sign() {
        let mut key = ForwardSecureKey::generate(b"seed", 5);
        assert!(key.slot_available(2));
        key.erase_through(2);
        assert!(!key.slot_available(0));
        assert!(!key.slot_available(2));
        assert!(key.slot_available(3));
        assert_eq!(key.sign_slot(2, b"m"), Err(SignSlotError::KeyErased));
        assert!(key.sign_slot(3, b"m").is_ok());
    }

    #[test]
    fn out_of_range_slot() {
        let key = ForwardSecureKey::generate(b"seed", 3);
        assert_eq!(key.sign_slot(3, b"m"), Err(SignSlotError::SlotOutOfRange));
    }

    #[test]
    fn cross_key_rejection() {
        let k1 = ForwardSecureKey::generate(b"a", 4);
        let k2 = ForwardSecureKey::generate(b"b", 4);
        let sig = k1.sign_slot(1, b"m").unwrap();
        assert!(!k2.public_key().verify(1, b"m", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let key = ForwardSecureKey::generate(b"seed", 4);
        let sig = key.sign_slot(1, b"m").unwrap();
        assert!(!key.public_key().verify(1, b"n", &sig));
    }

    #[test]
    fn forged_slot_key_rejected() {
        // Substitute a different (valid) verifying key: Merkle check fails.
        let key = ForwardSecureKey::generate(b"seed", 4);
        let other = SigningKey::from_seed(b"intruder");
        let mut sig = key.sign_slot(1, b"m").unwrap();
        sig.slot_vk = other.verifying_key();
        assert!(!key.public_key().verify(1, b"m", &sig));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = ForwardSecureKey::generate(b"s", 0);
    }
}
