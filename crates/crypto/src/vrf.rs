//! A DDH-based verifiable random function (VRF).
//!
//! This realizes the adaptively-secure VRF the paper builds in Appendix D
//! from PRF + NIZK + perfectly-binding commitment (see DESIGN.md §3 for the
//! faithfulness argument):
//!
//! * secret key `sk`, public key `pk = g^sk` — a perfectly binding,
//!   computationally hiding commitment to `sk`;
//! * evaluation `v = HashToGroup(m)^sk` — a PRF under DDH;
//! * proof — a Chaum–Pedersen DLEQ NIZK that `v` matches `pk`;
//! * output `ρ = SHA256("vrf-output" || v)`, 32 uniform bytes.
//!
//! The output is **unique**: for a fixed `(pk, m)` there is exactly one `v`
//! that can pass verification, so a corrupt node cannot grind eligibility.
//! This is the property the bit-specific committee election of §3.2 needs.

use crate::bigint::FixedBaseTable;
use crate::dleq::{self, DleqProof};
use crate::group::{Element, Group, Scalar};
use crate::sha256::Sha256;

/// Domain-separation tag for VRF hash-to-group.
const H2G_DOMAIN: &[u8] = b"ba-crypto/vrf/h2g/v1";

/// A VRF key pair.
#[derive(Clone, Debug)]
pub struct VrfSecretKey {
    sk: Scalar,
    pk: VrfPublicKey,
}

/// A VRF public key (`g^sk`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VrfPublicKey(pub Element);

/// A VRF evaluation: the 32-byte pseudorandom output and the correctness
/// proof. Both travel with the message that was evaluated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VrfOutput {
    /// The group element `v = H(m)^sk` (needed by the verifier).
    pub gamma: Element,
    /// DLEQ proof that `gamma` is consistent with the public key.
    pub proof: DleqProof,
}

/// `ρ = SHA256(tag || gamma)` — shared by [`VrfOutput::rho`] and the
/// proof-free [`VrfSecretKey::score_prepared`] probe.
fn rho_of_gamma(gamma: &Element) -> [u8; 32] {
    Sha256::digest_parts(&[b"ba-crypto/vrf/output/v1", &gamma.to_bytes()])
}

impl VrfOutput {
    /// The 32-byte pseudorandom string `ρ = SHA256(tag || gamma)`.
    pub fn rho(&self) -> [u8; 32] {
        rho_of_gamma(&self.gamma)
    }

    /// Interprets the first 8 bytes of `ρ` as a uniform `u64` — the value
    /// compared against a difficulty threshold for committee eligibility.
    pub fn rho_u64(&self) -> u64 {
        let rho = self.rho();
        u64::from_be_bytes(rho[..8].try_into().expect("32-byte digest"))
    }
}

impl VrfSecretKey {
    /// Derives a key pair deterministically from seed bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use ba_crypto::vrf::VrfSecretKey;
    ///
    /// let key = VrfSecretKey::from_seed(b"node-3");
    /// let out = key.evaluate(b"(ACK, round=2, bit=1)");
    /// assert!(key.public_key().verify(b"(ACK, round=2, bit=1)", &out));
    /// // Pseudorandom output, uniform in [0, 2^64):
    /// let _score: u64 = out.rho_u64();
    /// ```
    pub fn from_seed(seed: &[u8]) -> VrfSecretKey {
        let g = Group::standard();
        let mut sk = g.scalar_from_bytes(seed);
        if sk.is_zero() {
            sk = g.scalar_from_u64(1);
        }
        let pk = VrfPublicKey(g.pow_g(&sk));
        VrfSecretKey { sk, pk }
    }

    /// Builds a VRF key from an existing Schnorr secret scalar so a node can
    /// share one identity key across signing and eligibility.
    pub fn from_scalar(sk: Scalar) -> VrfSecretKey {
        let g = Group::standard();
        assert!(!sk.is_zero(), "VRF secret key must be nonzero");
        let pk = VrfPublicKey(g.pow_g(&sk));
        VrfSecretKey { sk, pk }
    }

    /// Returns the public key.
    pub fn public_key(&self) -> VrfPublicKey {
        self.pk
    }

    /// Evaluates the VRF on `m`, returning output and proof.
    pub fn evaluate(&self, m: &[u8]) -> VrfOutput {
        let g = Group::standard();
        let h = g.hash_to_group(H2G_DOMAIN, m);
        let gamma = g.pow(&h, &self.sk);
        // The key pair caches pk = g^sk, sparing the proof one fixed-base
        // exponentiation per evaluation (identical proof bytes).
        let proof = dleq::prove_with_pk(&self.sk, &self.pk.0, &h, &gamma);
        VrfOutput { gamma, proof }
    }

    /// [`VrfSecretKey::evaluate`] against a [`PreparedInput`]: identical
    /// output bytes, with both `h`-base exponentiations (`gamma = h^sk` and
    /// the proof's `a2 = h^k`) running off the input's precomputed window
    /// table. This is the `F_mine` fast path — every node evaluates the
    /// same tag, so one table build amortizes over `2n` exponentiations.
    pub fn evaluate_prepared(&self, input: &PreparedInput) -> VrfOutput {
        let g = Group::standard();
        let gamma = g.pow_with_table(&input.table, &self.sk);
        let proof =
            dleq::prove_with_base_table(&self.sk, &self.pk.0, &input.h, &input.table, &gamma);
        VrfOutput { gamma, proof }
    }

    /// The `rho_u64` score of this key's evaluation on a [`PreparedInput`],
    /// computed **without** the DLEQ proof — one table exponentiation
    /// instead of three. Bit-identical to
    /// `self.evaluate_prepared(input).rho_u64()`; for private eligibility
    /// probes (the prover knows its own key, so no proof is needed).
    pub fn score_prepared(&self, input: &PreparedInput) -> u64 {
        let g = Group::standard();
        let gamma = g.pow_with_table(&input.table, &self.sk);
        let rho = rho_of_gamma(&gamma);
        u64::from_be_bytes(rho[..8].try_into().expect("32-byte digest"))
    }
}

/// A VRF input message with its hash-to-group element and fixed-base window
/// table precomputed.
///
/// Building one costs roughly a third of a single [`VrfSecretKey::evaluate`]
/// call; every subsequent [`VrfSecretKey::evaluate_prepared`] /
/// [`VrfPublicKey::verify_prepared`] against it skips the hash-to-group and
/// runs its variable-base exponentiations off the table. Outputs and
/// verdicts are bit-identical to the unprepared entry points.
#[derive(Clone, Debug)]
pub struct PreparedInput {
    h: Element,
    table: FixedBaseTable,
}

impl PreparedInput {
    /// Hashes `m` to the group and precomputes its window table.
    pub fn new(m: &[u8]) -> PreparedInput {
        let g = Group::standard();
        let h = g.hash_to_group(H2G_DOMAIN, m);
        PreparedInput { h, table: g.precompute_table(&h) }
    }
}

impl VrfPublicKey {
    /// Verifies that `out` is the unique valid VRF evaluation of `m` under
    /// this key.
    pub fn verify(&self, m: &[u8], out: &VrfOutput) -> bool {
        let g = Group::standard();
        if !g.is_valid_element(&self.0) || !g.is_valid_element(&out.gamma) {
            return false;
        }
        let h = g.hash_to_group(H2G_DOMAIN, m);
        dleq::verify(&self.0, &h, &out.gamma, &out.proof)
    }

    /// [`VrfPublicKey::verify`] against a [`PreparedInput`]: identical
    /// verdict, skipping the per-call hash-to-group.
    pub fn verify_prepared(&self, input: &PreparedInput, out: &VrfOutput) -> bool {
        let g = Group::standard();
        if !g.is_valid_element(&self.0) || !g.is_valid_element(&out.gamma) {
            return false;
        }
        dleq::verify(&self.0, &input.h, &out.gamma, &out.proof)
    }

    /// Canonical 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_bytes()
    }
}

/// One evaluation in a [`verify_batch`] call.
#[derive(Clone, Copy, Debug)]
pub struct BatchItem<'a> {
    /// The claimed evaluator's public key.
    pub key: &'a VrfPublicKey,
    /// The evaluated message.
    pub msg: &'a [u8],
    /// The claimed output (with proof).
    pub out: &'a VrfOutput,
}

/// Verifies a batch of VRF evaluations at once.
///
/// Hashes every message to its group element and hands the underlying DLEQ
/// statements to [`dleq::verify_batch`] (one random-linear-combination
/// multi-exponentiation for the whole batch). A batch verifies iff — up to
/// probability `2^-48` per forged member — every evaluation verifies
/// individually; the empty batch verifies trivially.
///
/// # Examples
///
/// ```
/// use ba_crypto::vrf::{verify_batch, BatchItem, VrfSecretKey};
///
/// let keys: Vec<VrfSecretKey> =
///     (0..3).map(|i: u32| VrfSecretKey::from_seed(&i.to_be_bytes())).collect();
/// let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
/// let outs: Vec<_> = keys.iter().map(|k| k.evaluate(b"(ACK, r=1, b=0)")).collect();
/// let items: Vec<BatchItem> = (0..3)
///     .map(|i| BatchItem { key: &pks[i], msg: b"(ACK, r=1, b=0)", out: &outs[i] })
///     .collect();
/// assert!(verify_batch(&items));
/// ```
pub fn verify_batch(items: &[BatchItem<'_>]) -> bool {
    let g = Group::standard();
    let hs: Vec<Element> = items.iter().map(|it| g.hash_to_group(H2G_DOMAIN, it.msg)).collect();
    let statements: Vec<dleq::BatchItem<'_>> = items
        .iter()
        .zip(hs.iter())
        .map(|(it, h)| dleq::BatchItem { pk: &it.key.0, h, v: &it.out.gamma, proof: &it.out.proof })
        .collect();
    dleq::verify_batch(&statements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_verify_roundtrip() {
        let key = VrfSecretKey::from_seed(b"k1");
        let out = key.evaluate(b"message");
        assert!(key.public_key().verify(b"message", &out));
    }

    #[test]
    fn wrong_message_rejected() {
        let key = VrfSecretKey::from_seed(b"k1");
        let out = key.evaluate(b"message");
        assert!(!key.public_key().verify(b"other", &out));
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = VrfSecretKey::from_seed(b"k1");
        let k2 = VrfSecretKey::from_seed(b"k2");
        let out = k1.evaluate(b"m");
        assert!(!k2.public_key().verify(b"m", &out));
    }

    #[test]
    fn output_is_deterministic_and_message_dependent() {
        let key = VrfSecretKey::from_seed(b"k1");
        let a = key.evaluate(b"m1");
        let b = key.evaluate(b"m1");
        let c = key.evaluate(b"m2");
        assert_eq!(a.rho(), b.rho());
        assert_ne!(a.rho(), c.rho());
    }

    #[test]
    fn uniqueness_cannot_forge_second_output() {
        // For fixed (pk, m) any gamma' != gamma must fail verification, even
        // with the honest proof attached.
        let g = Group::standard();
        let key = VrfSecretKey::from_seed(b"k1");
        let out = key.evaluate(b"m");
        let forged = VrfOutput { gamma: g.mul(&out.gamma, &g.generator()), proof: out.proof };
        assert!(!key.public_key().verify(b"m", &forged));
    }

    #[test]
    fn bit_specificity_independent_outputs() {
        // The core property behind §3.2: eligibility for (r, b) says nothing
        // about eligibility for (r, 1-b). We verify the outputs are distinct
        // pseudorandom values.
        let key = VrfSecretKey::from_seed(b"node");
        let m0 = b"(ACK, r=5, b=0)";
        let m1 = b"(ACK, r=5, b=1)";
        let o0 = key.evaluate(m0);
        let o1 = key.evaluate(m1);
        assert_ne!(o0.rho(), o1.rho());
        assert!(key.public_key().verify(m0, &o0));
        assert!(!key.public_key().verify(m1, &o0));
    }

    #[test]
    fn score_prepared_matches_full_evaluation() {
        let input = PreparedInput::new(b"(Vote, r=2, b=1)");
        for i in 0..8u32 {
            let key = VrfSecretKey::from_seed(&i.to_be_bytes());
            assert_eq!(key.score_prepared(&input), key.evaluate_prepared(&input).rho_u64());
        }
    }

    #[test]
    fn rho_u64_matches_prefix() {
        let key = VrfSecretKey::from_seed(b"k");
        let out = key.evaluate(b"m");
        let rho = out.rho();
        assert_eq!(out.rho_u64(), u64::from_be_bytes(rho[..8].try_into().unwrap()));
    }

    #[test]
    fn rho_u64_looks_uniform() {
        // Crude uniformity check: over 400 evaluations, the top bit should be
        // set roughly half the time.
        let key = VrfSecretKey::from_seed(b"uniformity");
        let mut ones = 0;
        for i in 0..400u32 {
            let out = key.evaluate(&i.to_be_bytes());
            if out.rho_u64() >> 63 == 1 {
                ones += 1;
            }
        }
        assert!((120..=280).contains(&ones), "top-bit count {ones} wildly non-uniform");
    }

    #[test]
    fn shared_scalar_with_schnorr() {
        use crate::schnorr::SigningKey;
        let sig_key = SigningKey::from_seed(b"identity");
        let vrf_key = VrfSecretKey::from_scalar(*sig_key.secret_scalar());
        let out = vrf_key.evaluate(b"m");
        assert!(vrf_key.public_key().verify(b"m", &out));
        // Public keys coincide (same scalar, same generator).
        assert_eq!(vrf_key.public_key().to_bytes(), sig_key.verifying_key().to_bytes());
    }
}
