//! Shared scaffolding for batch verification: split a batch into
//! independent sub-batches and verify them on all cores.
//!
//! Each chunk is a sound random-linear-combination check on its own, so the
//! conjunction preserves the exact accept set while multiplying throughput
//! by the available parallelism. Used by [`crate::schnorr::verify_batch`]
//! and [`crate::dleq::verify_batch`].

/// Smallest sub-batch worth a dedicated thread.
const MIN_CHUNK: usize = 8;

/// Runs `verify_serial` over `items`, chunked across the available cores
/// when the batch is large enough to amortize thread spawn.
pub(crate) fn verify_chunked<T, F>(items: &[T], verify_serial: F) -> bool
where
    T: Sync,
    F: Fn(&[T]) -> bool + Sync,
{
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if threads > 1 && items.len() >= 2 * MIN_CHUNK {
        let chunk = (items.len().div_ceil(threads)).max(MIN_CHUNK);
        return std::thread::scope(|s| {
            let handles: Vec<_> =
                items.chunks(chunk).map(|c| s.spawn(|| verify_serial(c))).collect();
            handles.into_iter().all(|h| h.join().expect("batch worker panicked"))
        });
    }
    verify_serial(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_conjunction_matches_serial() {
        let items: Vec<u32> = (0..40).collect();
        assert!(verify_chunked(&items, |c| c.iter().all(|&x| x < 40)));
        assert!(!verify_chunked(&items, |c| c.iter().all(|&x| x != 37)));
        assert!(verify_chunked(&[] as &[u32], |_| true));
    }
}
