//! # ba-crypto
//!
//! From-scratch cryptographic substrate for the reproduction of
//! *"Communication Complexity of Byzantine Agreement, Revisited"* (Abraham,
//! Chan, Dolev, Nayak, Pass, Ren, Shi — PODC 2019).
//!
//! Everything here is implemented on top of `std` only:
//!
//! * [`bigint`] — 256/512-bit integers and Montgomery modular arithmetic;
//! * [`sha256`] / [`hmac`] — FIPS 180-4 SHA-256 and RFC 2104 HMAC, plus a
//!   deterministic DRBG;
//! * [`prime`] — Miller–Rabin and safe-prime search;
//! * [`group`] — the order-`q` subgroup of `Z_p^*` for the safe prime
//!   `p = 2^256 − 36113`;
//! * [`schnorr`] — signatures ("all messages are signed");
//! * [`aggregate`] — deterministic MuSig-style multi-signatures that
//!   compress a quorum certificate to one 64-byte signature + bitmap;
//! * [`dleq`] — Chaum–Pedersen DLEQ NIZK (the Appendix D NIZK);
//! * [`vrf`] — the DDH-based adaptively-secure VRF used for **bit-specific
//!   eligibility election** (the paper's key insight, §3.2);
//! * [`commit`] — hash and perfectly-binding ElGamal commitments, plus a
//!   Merkle tree;
//! * [`forward_secure`] — per-slot "ephemeral" keys for the memory-erasure
//!   ablation (Chen–Micali strawman).
//!
//! ## Threat model / caveat
//!
//! The math is real (these are true Schnorr/DLEQ/VRF constructions over a
//! genuine safe-prime group), but parameters are sized for *simulation
//! throughput*, not production security: 256-bit mod-p discrete log offers
//! roughly 60-bit security, and nothing is constant-time. The reproduction
//! goal is protocol behaviour under the paper's adversary models, which never
//! include cryptanalysis; see DESIGN.md §3.
//!
//! ## Example: the full eligibility pipeline of §3.2
//!
//! ```
//! use ba_crypto::vrf::VrfSecretKey;
//!
//! // PKI setup gives node 7 a VRF key pair.
//! let sk = VrfSecretKey::from_seed(b"node-7");
//!
//! // Is node 7 on the committee allowed to ACK bit b=1 in epoch r=4?
//! let tag = b"(ACK, epoch=4, bit=1)";
//! let out = sk.evaluate(tag);
//! let difficulty = u64::MAX / 8; // committee of expected size n/8
//! let eligible = out.rho_u64() < difficulty;
//!
//! // Anyone can verify an eligibility claim from (pk, tag, out):
//! assert!(sk.public_key().verify(tag, &out));
//! # let _ = eligible;
//! ```

pub mod aggregate;
mod batch;
pub mod bigint;
pub mod commit;
pub mod dleq;
pub mod forward_secure;
pub mod group;
pub mod hmac;
pub mod prime;
pub mod schnorr;
pub mod sha256;
pub mod vrf;
