//! The strongly adaptive **committee eraser** — the attack behind Theorem 1.
//!
//! The adversary watches each round's honest traffic (rushing), adaptively
//! corrupts honest senders, and performs *after-the-fact removal* of the
//! messages they just sent. It is an **omission adversary** in the paper's
//! sense: corrupted nodes keep executing the honest protocol, nothing is
//! ever forged.
//!
//! The `cap` parameter implements the quorum-starvation strategy from the
//! Theorem 1 intuition: per round, at most `cap` honest messages are allowed
//! to survive (set `cap = quorum − 1` and no quorum can ever form). Starving
//! a protocol whose per-round honest traffic is `m` costs about `m − cap`
//! corruptions per round — affordable for the entire execution precisely
//! when the protocol is subquadratic (`m ≈ λ ≪ f`), and unaffordable against
//! quadratic protocols (`m ≈ n > f` burns the budget within one round).
//! This is the communication/resilience trade-off the lower bound encodes.
//!
//! The attack is protocol-agnostic: it never parses message contents.

use ba_sim::{AdvCtx, Adversary, Message, MsgId, NodeId};

/// Strongly adaptive quorum-starvation adversary (see module docs).
#[derive(Clone, Debug, Default)]
pub struct CommitteeEraser {
    /// Honest messages allowed to survive per round (`quorum − 1` starves
    /// every quorum; `0` erases everything).
    pub cap: usize,
    /// Statistics: messages removed.
    pub removed: u64,
    /// Statistics: corruptions spent.
    pub corrupted: u64,
}

impl CommitteeEraser {
    /// Erase-everything configuration.
    pub fn new() -> CommitteeEraser {
        CommitteeEraser::default()
    }

    /// Quorum-starvation configuration: keep `quorum - 1` messages per
    /// round.
    pub fn starve_quorum(quorum: usize) -> CommitteeEraser {
        CommitteeEraser { cap: quorum.saturating_sub(1), ..CommitteeEraser::default() }
    }
}

impl<M: Message> Adversary<M> for CommitteeEraser {
    fn intervene(&mut self, ctx: &mut AdvCtx<'_, M>) {
        let pending: Vec<(MsgId, NodeId, bool, bool)> =
            ctx.pending().iter().map(|e| (e.id, e.from, e.removed, e.honest_send)).collect();
        let mut kept = 0usize;
        for (id, from, removed, honest_send) in pending {
            if removed {
                continue;
            }
            // Messages sent by already-corrupt (muted) nodes are erased for
            // free; honest sends within the cap survive.
            if honest_send && kept < self.cap {
                kept += 1;
                continue;
            }
            if !ctx.is_corrupt(from) {
                if ctx.budget_left() == 0 {
                    continue; // out of corruptions; the message survives
                }
                ctx.corrupt(from).expect("budget checked");
                self.corrupted += 1;
            }
            if ctx.remove(id).is_ok() {
                self.removed += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ba_core::epoch::{self, EpochConfig};
    use ba_core::iter::{self, IterConfig};
    use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
    use ba_sim::{Bit, CorruptionModel, SimConfig};

    #[test]
    fn eraser_starves_the_subquadratic_protocol() {
        // n = 400, f = 190 < n/2, lambda = 16 (quorum 8). Starving every
        // quorum costs ~lambda/2 corruptions per active round, so the budget
        // outlasts the entire schedule: no certificate ever forms.
        let n = 400;
        let elig = Arc::new(IdealMine::new(5, MineParams::new(n, 16.0)));
        let mut cfg = IterConfig::subq_half(n, elig);
        cfg.max_iters = 6;
        let sim = SimConfig::new(n, 190, CorruptionModel::StronglyAdaptive, 5);
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let adversary = CommitteeEraser::starve_quorum(cfg.quorum);
        let (report, verdict) = iter::run(&cfg, &sim, inputs, adversary);
        assert!(
            !verdict.all_ok(),
            "Theorem 1: the strongly adaptive eraser must defeat a subquadratic protocol"
        );
        assert!(report.metrics.removals > 0, "the attack actually removed messages");
    }

    #[test]
    fn eraser_fails_against_the_quadratic_protocol() {
        // n = 13, f = 6 < n/2: every round has ~n honest senders; the budget
        // evaporates in round 0 and the protocol still terminates correctly.
        let n = 13;
        let kc = Arc::new(Keychain::from_seed(3, n, SigMode::Ideal));
        let cfg = IterConfig::quadratic_half(n, kc, 3);
        let sim = SimConfig::new(n, 6, CorruptionModel::StronglyAdaptive, 3);
        let (report, verdict) = iter::run(&cfg, &sim, vec![true; n], CommitteeEraser::new());
        assert!(verdict.all_ok(), "{verdict:?}");
        // The budget is gone after round 0 (6 corruptions); the muted nodes'
        // later sends keep being erased for free, so removals >= 6.
        assert_eq!(report.metrics.corruptions, 6, "budget spent in the first round");
        assert!(report.metrics.removals >= 6);
    }

    #[test]
    fn eraser_blinds_epoch_protocol_with_mixed_inputs() {
        // With committee quorums starved, epoch-protocol nodes keep their
        // inputs forever: mixed inputs end inconsistent.
        let n = 300;
        let elig = Arc::new(IdealMine::new(9, MineParams::new(n, 12.0)));
        let cfg = EpochConfig::subq_third(n, 6, elig);
        let sim = SimConfig::new(n, 95, CorruptionModel::StronglyAdaptive, 9);
        let inputs: Vec<Bit> = (0..n).map(|i| i < n / 2).collect();
        let adversary = CommitteeEraser::starve_quorum(cfg.quorum);
        let (_report, verdict) = epoch::run(&cfg, &sim, inputs, adversary);
        assert!(!verdict.consistent, "erased committees must leave beliefs split");
    }

    #[test]
    fn eraser_respects_the_adaptive_model_boundary() {
        // Under the (plain) adaptive model removal is illegal; the eraser
        // degenerates and the subquadratic protocol survives.
        let n = 120;
        let elig = Arc::new(IdealMine::new(7, MineParams::new(n, 20.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, 10, CorruptionModel::Adaptive, 7);
        let adversary = CommitteeEraser::starve_quorum(cfg.quorum);
        let (report, verdict) = iter::run(&cfg, &sim, vec![true; n], adversary);
        assert_eq!(report.metrics.removals, 0, "no after-the-fact removal when adaptive");
        assert!(verdict.all_ok(), "{verdict:?}");
    }
}
