//! The **equivocation spammer** — a word-count-inflation attack in the
//! spirit of "Make Every Word Count" (Cohen–Keidar–Spiegelman).
//!
//! A static adversary corrupting `f` nodes up front. In every ack round,
//! each corrupt node that can produce eligibility evidence for *both* bits
//! of the epoch's ack tag sends **conflicting signed votes to disjoint
//! receiver halves**: `(Ack, r, 0)` unicast to every even-indexed node and
//! `(Ack, r, 1)` to every odd-indexed node. Honest receivers therefore hold
//! evidence-carrying messages that contradict each other across the halves,
//! and any protocol that wants to expose the equivocation must carry that
//! evidence onward — the bit inflation the attack aims at.
//!
//! What it probes, per authentication regime:
//!
//! * **Signed full participation** (§3.1 warmup): a corrupt node signs
//!   anything, so every corrupt node equivocates every epoch — the ceiling
//!   of the attack.
//! * **Shared-committee eligibility** (§3.3 Remark ablation): one stolen
//!   bit-agnostic ticket authorizes *both* conflicting acks — equivocation
//!   is as cheap as speaking.
//! * **Bit-specific eligibility** (§3.2, the paper's construction): the
//!   spammer needs two *independent* tickets, one per bit, each held with
//!   probability `λ/n` — equivocation-capable corrupt nodes are rare, and
//!   the blocked-attempt counter shows the regime refusing the second
//!   ticket. This is the quantitative sense in which bit-specific election
//!   also limits equivocation, not just adaptive flipping.
//!
//! What it provably cannot move: *honest* multicast complexity
//! (Definitions 6/7 meter honest sends only — the spam lands entirely in
//! `corrupt_sends`/`corrupt_bits`/`injected_sends`), and consistency of the
//! epoch protocol's tally rule, which keeps a node's current belief when
//! both bits reach quorum (the equivocation makes nodes *sticky*, never
//! split-brained, because each half still tallies distinct-sender acks).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ba_core::auth::Auth;
use ba_core::epoch::EpochMsg;
use ba_fmine::{MineTag, MsgKind};
use ba_sim::{AdvCtx, Adversary, NodeId, Recipient};

/// Cross-thread statistics of an [`EquivocationSpammer`] run (readable
/// after the adversary was moved into the execution).
#[derive(Debug, Default)]
pub struct EquivStats {
    /// Epoch × node equivocations performed (one = a full conflicting
    /// unicast fan-out to both halves).
    pub equivocations: AtomicU64,
    /// Attempts where the node held a credential for exactly one bit and
    /// the regime refused to attest the second — the events where bit
    /// specificity (rather than non-election) stopped an equivocation.
    pub blocked: AtomicU64,
}

impl EquivStats {
    /// Equivocations performed so far.
    pub fn equivocations(&self) -> u64 {
        self.equivocations.load(Ordering::Relaxed)
    }

    /// Blocked attempts so far.
    pub fn blocked(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }
}

/// The equivocation spammer for the epoch family (see module docs).
#[derive(Clone)]
pub struct EquivocationSpammer {
    /// Nodes to corrupt at setup.
    pub corrupt: Vec<NodeId>,
    /// The protocol's authentication regime (services shared with nodes).
    pub auth: Auth,
    /// Shared statistics handle.
    pub stats: Arc<EquivStats>,
}

impl EquivocationSpammer {
    /// Creates the adversary corrupting the `f` highest-numbered nodes of
    /// an `n`-node protocol using `auth`.
    pub fn new(n: usize, f: usize, auth: Auth) -> EquivocationSpammer {
        EquivocationSpammer {
            corrupt: (n - f..n).map(NodeId).collect(),
            auth,
            stats: Arc::new(EquivStats::default()),
        }
    }

    /// A clone of the statistics handle (survives moving the adversary into
    /// an execution).
    pub fn stats(&self) -> Arc<EquivStats> {
        self.stats.clone()
    }
}

impl Adversary<EpochMsg> for EquivocationSpammer {
    fn setup(&mut self, ctx: &mut AdvCtx<'_, EpochMsg>) {
        for &node in &self.corrupt {
            ctx.corrupt(node).expect("corrupt set exceeds budget");
        }
    }

    fn intervene(&mut self, ctx: &mut AdvCtx<'_, EpochMsg>) {
        // Ack rounds are the odd rounds (epoch = round / 2); injecting here
        // lands the conflicting acks in the tally with the honest acks.
        if ctx.round().0 % 2 != 1 {
            return;
        }
        let epoch = ctx.round().0 / 2;
        let n = ctx.n();
        for &node in &self.corrupt {
            let evs: Vec<_> = [false, true]
                .into_iter()
                .filter_map(|bit| {
                    self.auth
                        .attest(node, &MineTag::new(MsgKind::Ack, epoch, bit))
                        .map(|ev| (bit, ev))
                })
                .collect();
            // Equivocation needs credentials for BOTH bits. Only a node
            // that holds exactly one counts as *blocked* — it could speak
            // but the regime refused the conflicting second credential; a
            // node with zero credentials was simply never elected.
            if evs.len() < 2 {
                if evs.len() == 1 {
                    self.stats.blocked.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            for (bit, ev) in evs {
                // Disjoint receiver halves: bit 0 to the even-indexed nodes,
                // bit 1 to the odd-indexed ones.
                for i in (0..n).filter(|i| (i % 2 == 1) == bit) {
                    let msg = EpochMsg::Ack { epoch, bit, ev: ev.clone() };
                    ctx.inject(node, Recipient::One(NodeId(i)), msg).expect("node is corrupt");
                }
            }
            self.stats.equivocations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ba_core::epoch::{self, EpochConfig};
    use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
    use ba_sim::{Bit, CorruptionModel, SimConfig};

    const N: usize = 120;
    const F: usize = 30;
    const LAMBDA: f64 = 16.0;
    const EPOCHS: u64 = 6;

    fn mixed_inputs() -> Vec<Bit> {
        (0..N).map(|i| i < N / 2).collect()
    }

    fn run(cfg: EpochConfig, seed: u64) -> (Arc<EquivStats>, ba_sim::Verdict, ba_sim::RunReport) {
        let adv = EquivocationSpammer::new(N, F, cfg.auth.clone());
        let stats = adv.stats();
        let sim = SimConfig::new(N, F, CorruptionModel::Static, seed);
        let (report, verdict) = epoch::run(&cfg, &sim, mixed_inputs(), adv);
        (stats, verdict, report)
    }

    #[test]
    fn signed_regime_equivocates_freely() {
        let kc = Arc::new(Keychain::from_seed(1, N, SigMode::Ideal));
        let (stats, _verdict, report) = run(EpochConfig::warmup_third(N, EPOCHS, kc), 1);
        // Every corrupt node can sign both bits in every epoch.
        assert!(stats.equivocations() >= F as u64 * EPOCHS);
        assert_eq!(stats.blocked(), 0);
        // The spam is attributed to the adversary, never to honest metering.
        assert_eq!(report.metrics.injected_sends, stats.equivocations() * N as u64);
        assert!(report.metrics.corrupt_bits > 0);
    }

    #[test]
    fn bit_specific_eligibility_starves_equivocators() {
        let elig = Arc::new(IdealMine::new(2, MineParams::new(N, LAMBDA)));
        let (stats, verdict, _) = run(EpochConfig::subq_third(N, EPOCHS, elig), 2);
        // Two independent lambda/n tickets are rare: most attempts block.
        assert!(
            stats.blocked() > stats.equivocations(),
            "bit-specific regime should refuse most double-attestations: \
             blocked={} equivocations={}",
            stats.blocked(),
            stats.equivocations()
        );
        // The tally rule keeps equivocation from splitting honest beliefs.
        assert!(verdict.consistent, "equivocation spam must not break consistency");
    }

    #[test]
    fn shared_committee_makes_equivocation_cheap() {
        let elig = Arc::new(IdealMine::new(3, MineParams::new(N, LAMBDA)));
        let kc = Arc::new(Keychain::from_seed(3, N, SigMode::Ideal));
        let (stats, _, _) = run(EpochConfig::subq_shared(N, EPOCHS, elig, kc), 3);
        // A single bit-agnostic ticket authorizes both conflicting acks, so
        // every *elected* corrupt node equivocates — none is blocked for
        // lacking the second credential while holding the first.
        assert!(stats.equivocations() > 0, "elected corrupt nodes should equivocate");
        assert_eq!(stats.blocked(), 0, "a shared ticket never leaves a node half-credentialed");
    }

    #[test]
    fn honest_communication_is_untouched() {
        // Definition 7 meters honest sends only: with and without the
        // spammer, an execution over the same elected committees reports
        // identical honest multicast counts as long as tallies don't move.
        // Run the no-op edge (f = 0 corrupt set) and check the adversary
        // does nothing at all.
        let elig = Arc::new(IdealMine::new(4, MineParams::new(N, LAMBDA)));
        let cfg = EpochConfig::subq_third(N, EPOCHS, elig);
        let adv = EquivocationSpammer::new(N, 0, cfg.auth.clone());
        let stats = adv.stats();
        let sim = SimConfig::new(N, 0, CorruptionModel::Static, 4);
        let (report, verdict) = epoch::run(&cfg, &sim, mixed_inputs(), adv);
        assert_eq!(stats.equivocations() + stats.blocked(), 0);
        assert_eq!(report.metrics.injected_sends, 0);
        assert_eq!(report.metrics.corrupt_sends, 0);
        assert!(verdict.all_ok(), "{verdict:?}");
    }
}
