//! The **certificate forger** — resilience-boundary attack for the
//! iteration family (experiment E4).
//!
//! A static adversary corrupting `f` nodes tries to fabricate, from corrupt
//! credentials alone, a full decision chain for the *wrong* bit: an
//! iteration-1 vote certificate, a commit quorum, and a `Terminate`
//! message, then delivers it to honest nodes.
//!
//! * Quadratic protocol (quorum `f* + 1 = ⌊n/2⌋ + 1`): the forgery needs
//!   `quorum ≤ f` — possible exactly when `f` reaches a majority. This is
//!   the `f < n/2` resilience bound.
//! * Subquadratic protocol (quorum `λ/2`): the forgery needs at least `λ/2`
//!   corrupt nodes eligible to vote *and* `λ/2` eligible to commit for the
//!   target bit. By the Chernoff argument of Lemma 11 this has probability
//!   `exp(−Ω(ε²λ))` when `f ≤ (1/2 − ε)n` and probability `Ω(1)` once
//!   `f/n` crosses 1/2 — the measured success rate traces the resilience
//!   threshold.

use ba_core::auth::Auth;
use ba_core::cert::{Certificate, CommitRef, VoteRef};
use ba_core::iter::IterMsg;
use ba_fmine::{MineTag, MsgKind};
use ba_sim::{AdvCtx, Adversary, Bit, NodeId, Recipient};

/// How the forged `Terminate` is delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Delivery {
    /// Multicast to everyone (aims at a validity violation).
    All,
    /// Unicast to the odd-indexed honest nodes only (aims at a consistency
    /// violation).
    HalfHonest,
}

/// Static certificate-forging adversary (see module docs).
#[derive(Clone, Debug)]
pub struct CertForger {
    /// Nodes to corrupt at setup.
    pub corrupt: Vec<NodeId>,
    /// The bit to force (experiments run honest inputs `= !target`).
    pub target: Bit,
    /// Vote/commit quorum of the attacked protocol.
    pub quorum: usize,
    /// Delivery strategy.
    pub delivery: Delivery,
    /// Authentication services (shared with the protocol).
    pub auth: Auth,
    /// Statistics: whether the full chain was forged.
    pub forged: bool,
}

impl CertForger {
    /// Creates the adversary corrupting the `f` highest-numbered nodes.
    pub fn new(n: usize, f: usize, target: Bit, quorum: usize, auth: Auth) -> CertForger {
        CertForger {
            corrupt: (n - f..n).map(NodeId).collect(),
            target,
            quorum,
            delivery: Delivery::All,
            auth,
            forged: false,
        }
    }

    /// Switches to split delivery (consistency attack).
    pub fn with_split_delivery(mut self) -> CertForger {
        self.delivery = Delivery::HalfHonest;
        self
    }
}

impl Adversary<IterMsg> for CertForger {
    fn setup(&mut self, ctx: &mut AdvCtx<'_, IterMsg>) {
        for &node in &self.corrupt {
            ctx.corrupt(node).expect("corrupt set exceeds budget");
        }
    }

    fn intervene(&mut self, ctx: &mut AdvCtx<'_, IterMsg>) {
        if ctx.round().0 != 0 || self.forged {
            return; // forge against iteration 1, whose votes need no
                    // leader-proposal justification
        }
        let iter = 1u64;
        let bit = self.target;

        // 1. Vote certificate from corrupt credentials.
        let vote_tag = MineTag::new(MsgKind::Vote, iter, bit);
        let mut votes: Vec<VoteRef> = Vec::new();
        for &node in &self.corrupt {
            if votes.len() >= self.quorum {
                break;
            }
            if let Some(ev) = self.auth.attest(node, &vote_tag) {
                votes.push(VoteRef { from: node, ev });
            }
        }
        if votes.len() < self.quorum {
            return; // Lemma 11 held: not enough corrupt eligible voters
        }
        let cert = Certificate { iter, bit, votes };

        // 2. Commit quorum.
        let commit_tag = MineTag::new(MsgKind::Commit, iter, bit);
        let mut commits: Vec<CommitRef> = Vec::new();
        for &node in &self.corrupt {
            if commits.len() >= self.quorum {
                break;
            }
            if let Some(ev) = self.auth.attest(node, &commit_tag) {
                commits.push(CommitRef { from: node, ev });
            }
        }
        if commits.len() < self.quorum {
            return;
        }

        // 3. A terminate-eligible corrupt node to front the message.
        let term_tag = MineTag::terminate(bit);
        let Some((speaker, term_ev)) = self
            .corrupt
            .iter()
            .find_map(|&node| self.auth.attest(node, &term_tag).map(|ev| (node, ev)))
        else {
            return;
        };

        let msg = IterMsg::Terminate { iter, bit, commits, ev: term_ev };
        let _ = cert; // the commit quorum alone decides; cert kept for clarity
        match self.delivery {
            Delivery::All => {
                ctx.inject(speaker, Recipient::All, msg).expect("speaker is corrupt");
            }
            Delivery::HalfHonest => {
                let n = ctx.n();
                for i in (0..n).filter(|i| i % 2 == 1) {
                    if !ctx.is_corrupt(NodeId(i)) {
                        ctx.inject(speaker, Recipient::One(NodeId(i)), msg.clone())
                            .expect("speaker is corrupt");
                    }
                }
            }
        }
        self.forged = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ba_core::iter::{self, IterConfig};
    use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
    use ba_sim::{CorruptionModel, SimConfig};

    fn run_attack_quadratic(n: usize, f: usize, seed: u64) -> bool {
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let cfg = IterConfig::quadratic_half(n, kc, seed);
        let adv = CertForger::new(n, f, true, cfg.quorum, cfg.auth.clone());
        let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
        // Honest nodes all input 0; a validity violation means some honest
        // node output 1.
        let (_report, verdict) = iter::run(&cfg, &sim, vec![false; n], adv);
        !verdict.all_ok()
    }

    fn run_attack_subq(n: usize, f: usize, lambda: f64, seed: u64) -> bool {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = IterConfig::subq_half(n, elig);
        let adv = CertForger::new(n, f, true, cfg.quorum, cfg.auth.clone());
        let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
        let (_report, verdict) = iter::run(&cfg, &sim, vec![false; n], adv);
        !verdict.all_ok()
    }

    #[test]
    fn quadratic_protocol_safe_below_majority() {
        // f = quorum - 1 = n/2: forging is impossible, the run stays clean.
        for seed in 0..3 {
            assert!(!run_attack_quadratic(9, 4, seed), "seed={seed}");
        }
    }

    #[test]
    fn quadratic_protocol_broken_at_majority() {
        // f = n/2 + 1 >= quorum: the forged terminate wins every time.
        for seed in 0..3 {
            assert!(run_attack_quadratic(9, 5, seed), "seed={seed}");
        }
    }

    #[test]
    fn subq_protocol_safe_at_low_corruption() {
        // f = n/4 << n/2: corrupt eligible voters << lambda/2.
        let n = 200;
        let mut wins = 0;
        for seed in 0..5 {
            if run_attack_subq(n, n / 4, 24.0, seed) {
                wins += 1;
            }
        }
        assert!(wins <= 1, "forgery should rarely succeed at f = n/4: wins={wins}");
    }

    #[test]
    fn subq_protocol_broken_beyond_half() {
        // f = 0.7n: expected corrupt eligible = 0.7*lambda >> lambda/2.
        let n = 200;
        let mut wins = 0;
        for seed in 0..5 {
            if run_attack_subq(n, 7 * n / 10, 24.0, seed) {
                wins += 1;
            }
        }
        assert!(wins >= 4, "forgery should usually succeed at f = 0.7n: wins={wins}");
    }

    #[test]
    fn split_delivery_still_defeats_the_protocol() {
        let n = 9;
        let seed = 2;
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let cfg = IterConfig::quadratic_half(n, kc, seed);
        let adv = CertForger::new(n, 5, true, cfg.quorum, cfg.auth.clone()).with_split_delivery();
        let sim = SimConfig::new(n, 5, CorruptionModel::Static, seed);
        let (report, verdict) = iter::run(&cfg, &sim, vec![false; n], adv);
        // The Terminate relay gadget heals the split: the targeted nodes
        // relay the forged terminate, so everyone converges on the forged
        // bit — consistency survives but validity is destroyed.
        assert!(!verdict.all_ok(), "{report:?}");
        assert!(!verdict.valid);
    }
}
