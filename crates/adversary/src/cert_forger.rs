//! The **certificate forger** — resilience-boundary attack for the
//! iteration family (experiment E4).
//!
//! A static adversary corrupting `f` nodes tries to fabricate, from corrupt
//! credentials alone, a full decision chain for the *wrong* bit: an
//! iteration-1 vote certificate, a commit quorum, and a `Terminate`
//! message, then delivers it to honest nodes.
//!
//! * Quadratic protocol (quorum `f* + 1 = ⌊n/2⌋ + 1`): the forgery needs
//!   `quorum ≤ f` — possible exactly when `f` reaches a majority. This is
//!   the `f < n/2` resilience bound.
//! * Subquadratic protocol (quorum `λ/2`): the forgery needs at least `λ/2`
//!   corrupt nodes eligible to vote *and* `λ/2` eligible to commit for the
//!   target bit. By the Chernoff argument of Lemma 11 this has probability
//!   `exp(−Ω(ε²λ))` when `f ≤ (1/2 − ε)n` and probability `Ω(1)` once
//!   `f/n` crosses 1/2 — the measured success rate traces the resilience
//!   threshold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ba_core::auth::{Auth, Evidence};
use ba_core::cert::{
    AggregateQuorum, CertBody, CertEncoding, Certificate, CommitQuorum, CommitRef, VoteRef,
};
use ba_core::iter::IterMsg;
use ba_fmine::{MineTag, MsgKind};
use ba_sim::{AdvCtx, Adversary, Bit, NodeId, Recipient};

/// Shared counters for the adversary's *aggregate-forgery* side channel:
/// certificate shapes that only exist under the aggregate encoding (inflated
/// bitmaps, duplicate signers, cross-statement aggregates). Every attempt is
/// checked against the protocol's own verifier **locally** — a rejected
/// forgery is never sent, so the attack leaves the honest transcript
/// untouched and the counters are pure diagnostics.
#[derive(Default, Debug)]
pub struct ForgeStats {
    attempts: AtomicU64,
    blocked: AtomicU64,
}

impl ForgeStats {
    /// Aggregate-forgery shapes tried so far.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Attempts the verifier rejected. Soundness of the aggregate encoding
    /// means this always equals [`ForgeStats::attempts`].
    pub fn blocked(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }

    fn record(&self, rejected: bool) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        if rejected {
            self.blocked.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// How the forged `Terminate` is delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Delivery {
    /// Multicast to everyone (aims at a validity violation).
    All,
    /// Unicast to the odd-indexed honest nodes only (aims at a consistency
    /// violation).
    HalfHonest,
}

/// Static certificate-forging adversary (see module docs).
#[derive(Clone, Debug)]
pub struct CertForger {
    /// Nodes to corrupt at setup.
    pub corrupt: Vec<NodeId>,
    /// The bit to force (experiments run honest inputs `= !target`).
    pub target: Bit,
    /// Vote/commit quorum of the attacked protocol.
    pub quorum: usize,
    /// Delivery strategy.
    pub delivery: Delivery,
    /// Authentication services (shared with the protocol).
    pub auth: Auth,
    /// Certificate encoding the attacked protocol runs under; the forged
    /// `Terminate` mimics it so the forgery is indistinguishable from an
    /// honest message of the same run.
    pub encoding: CertEncoding,
    /// Statistics: whether the full chain was forged.
    pub forged: bool,
    /// Aggregate-forgery attempt counters (see [`ForgeStats`]).
    pub stats: Arc<ForgeStats>,
}

impl CertForger {
    /// Creates the adversary corrupting the `f` highest-numbered nodes.
    pub fn new(n: usize, f: usize, target: Bit, quorum: usize, auth: Auth) -> CertForger {
        CertForger {
            corrupt: (n - f..n).map(NodeId).collect(),
            target,
            quorum,
            delivery: Delivery::All,
            auth,
            encoding: CertEncoding::Vector,
            forged: false,
            stats: Arc::new(ForgeStats::default()),
        }
    }

    /// Switches to split delivery (consistency attack).
    pub fn with_split_delivery(mut self) -> CertForger {
        self.delivery = Delivery::HalfHonest;
        self
    }

    /// Selects the certificate encoding to mimic.
    pub fn with_encoding(mut self, encoding: CertEncoding) -> CertForger {
        self.encoding = encoding;
        self
    }

    /// A clone of the forgery-statistics handle (survives moving the
    /// adversary into an execution).
    pub fn stats(&self) -> Arc<ForgeStats> {
        self.stats.clone()
    }

    /// Aggregates the corrupt nodes' own (valid) commit evidence — the
    /// starting material for the forgery shapes below, and the quorum body
    /// of the forged `Terminate` when the protocol runs aggregate-encoded.
    fn aggregate_commits(&self, tag: &MineTag, refs: &[CommitRef]) -> Option<AggregateQuorum> {
        let n = self.auth.aggregation_domain()?;
        let mut sorted: Vec<&CommitRef> = refs.iter().collect();
        sorted.sort_by_key(|r| r.from.0);
        let claims: Vec<(NodeId, &Evidence)> = sorted.iter().map(|r| (r.from, &r.ev)).collect();
        let agg = self.auth.aggregate(tag, &claims)?;
        Some(AggregateQuorum { n, signers: sorted.iter().map(|r| r.from).collect(), agg })
    }

    /// Tries the certificate shapes that only the aggregate encoding could
    /// even express, checking each against [`Auth::verify_aggregate`]
    /// locally. Nothing here is ever injected: a sound verifier rejects all
    /// of them, and sending a rejected message would only perturb the
    /// corrupt-traffic observables.
    fn attempt_aggregate_forgeries(&self, iter: u64, bit: Bit, commits: &[CommitRef]) {
        if commits.is_empty() {
            return;
        }
        let tag = MineTag::new(MsgKind::Commit, iter, bit);
        let Some(base) = self.aggregate_commits(&tag, commits) else {
            return; // regime has no aggregation; nothing to forge
        };

        // Bitmap inflation: keep the honest aggregate but claim one extra
        // signer that never signed. Padding the bitmap is free — if this
        // verified, quorum counting under aggregation would be meaningless.
        let extra = (0..base.n).map(NodeId).find(|id| !base.signers.contains(id));
        if let Some(extra) = extra {
            let mut signers = base.signers.clone();
            signers.push(extra);
            signers.sort_by_key(|id| id.0);
            let inflated = AggregateQuorum { n: base.n, signers, agg: base.agg };
            self.stats.record(!self.auth.verify_aggregate(&tag, &inflated));
        }

        // Duplicate signer: list the same signer twice to double-count it
        // toward the quorum.
        let mut signers = base.signers.clone();
        signers.insert(0, signers[0]);
        let duplicated = AggregateQuorum { n: base.n, signers, agg: base.agg };
        self.stats.record(!self.auth.verify_aggregate(&tag, &duplicated));

        // Mixed statement: a perfectly valid aggregate — over *this*
        // iteration's commit statement — replayed as a commit quorum for
        // the next iteration, which none of the signers ever signed. The
        // signatures are real; only the statement is swapped.
        let next_tag = MineTag::new(MsgKind::Commit, iter + 1, bit);
        self.stats.record(!self.auth.verify_aggregate(&next_tag, &base));
    }
}

impl Adversary<IterMsg> for CertForger {
    fn setup(&mut self, ctx: &mut AdvCtx<'_, IterMsg>) {
        for &node in &self.corrupt {
            ctx.corrupt(node).expect("corrupt set exceeds budget");
        }
    }

    fn intervene(&mut self, ctx: &mut AdvCtx<'_, IterMsg>) {
        if ctx.round().0 != 0 || self.forged {
            return; // forge against iteration 1, whose votes need no
                    // leader-proposal justification
        }
        let iter = 1u64;
        let bit = self.target;

        // 1. Vote certificate from corrupt credentials.
        let vote_tag = MineTag::new(MsgKind::Vote, iter, bit);
        let mut votes: Vec<VoteRef> = Vec::new();
        for &node in &self.corrupt {
            if votes.len() >= self.quorum {
                break;
            }
            if let Some(ev) = self.auth.attest(node, &vote_tag) {
                votes.push(VoteRef { from: node, ev });
            }
        }
        // 2. Commit quorum (gathered before the quorum bail-outs so the
        // local aggregate-forgery probes run even when Lemma 11 holds and
        // the chain itself cannot be completed).
        let commit_tag = MineTag::new(MsgKind::Commit, iter, bit);
        let mut commits: Vec<CommitRef> = Vec::new();
        for &node in &self.corrupt {
            if commits.len() >= self.quorum {
                break;
            }
            if let Some(ev) = self.auth.attest(node, &commit_tag) {
                commits.push(CommitRef { from: node, ev });
            }
        }
        self.attempt_aggregate_forgeries(iter, bit, &commits);

        if votes.len() < self.quorum {
            return; // Lemma 11 held: not enough corrupt eligible voters
        }
        let cert = Certificate { iter, bit, body: CertBody::Vector(votes) };
        if commits.len() < self.quorum {
            return;
        }

        // 3. A terminate-eligible corrupt node to front the message.
        let term_tag = MineTag::terminate(bit);
        let Some((speaker, term_ev)) = self
            .corrupt
            .iter()
            .find_map(|&node| self.auth.attest(node, &term_tag).map(|ev| (node, ev)))
        else {
            return;
        };

        let quorum_body = if self.encoding == CertEncoding::Aggregate {
            self.aggregate_commits(&commit_tag, &commits)
                .map(CommitQuorum::Aggregate)
                .unwrap_or(CommitQuorum::Vector(commits))
        } else {
            CommitQuorum::Vector(commits)
        };
        let msg = IterMsg::Terminate { iter, bit, commits: quorum_body, ev: term_ev };
        let _ = cert; // the commit quorum alone decides; cert kept for clarity
        match self.delivery {
            Delivery::All => {
                ctx.inject(speaker, Recipient::All, msg).expect("speaker is corrupt");
            }
            Delivery::HalfHonest => {
                let n = ctx.n();
                for i in (0..n).filter(|i| i % 2 == 1) {
                    if !ctx.is_corrupt(NodeId(i)) {
                        ctx.inject(speaker, Recipient::One(NodeId(i)), msg.clone())
                            .expect("speaker is corrupt");
                    }
                }
            }
        }
        self.forged = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ba_core::iter::{self, IterConfig};
    use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
    use ba_sim::{CorruptionModel, SimConfig};

    fn run_attack_quadratic(n: usize, f: usize, seed: u64) -> bool {
        run_attack_quadratic_enc(n, f, seed, SigMode::Ideal, CertEncoding::Vector).0
    }

    fn run_attack_quadratic_enc(
        n: usize,
        f: usize,
        seed: u64,
        sig_mode: SigMode,
        encoding: CertEncoding,
    ) -> (bool, Arc<ForgeStats>) {
        let kc = Arc::new(Keychain::from_seed(seed, n, sig_mode));
        let cfg = IterConfig::quadratic_half(n, kc, seed).with_cert_encoding(encoding);
        let adv = CertForger::new(n, f, true, cfg.quorum, cfg.auth.clone()).with_encoding(encoding);
        let stats = adv.stats();
        let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
        // Honest nodes all input 0; a validity violation means some honest
        // node output 1.
        let (_report, verdict) = iter::run(&cfg, &sim, vec![false; n], adv);
        (!verdict.all_ok(), stats)
    }

    fn run_attack_subq(n: usize, f: usize, lambda: f64, seed: u64) -> bool {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = IterConfig::subq_half(n, elig);
        let adv = CertForger::new(n, f, true, cfg.quorum, cfg.auth.clone());
        let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
        let (_report, verdict) = iter::run(&cfg, &sim, vec![false; n], adv);
        !verdict.all_ok()
    }

    #[test]
    fn quadratic_protocol_safe_below_majority() {
        // f = quorum - 1 = n/2: forging is impossible, the run stays clean.
        for seed in 0..3 {
            assert!(!run_attack_quadratic(9, 4, seed), "seed={seed}");
        }
    }

    #[test]
    fn quadratic_protocol_broken_at_majority() {
        // f = n/2 + 1 >= quorum: the forged terminate wins every time.
        for seed in 0..3 {
            assert!(run_attack_quadratic(9, 5, seed), "seed={seed}");
        }
    }

    #[test]
    fn subq_protocol_safe_at_low_corruption() {
        // f = n/4 << n/2: corrupt eligible voters << lambda/2.
        let n = 200;
        let mut wins = 0;
        for seed in 0..5 {
            if run_attack_subq(n, n / 4, 24.0, seed) {
                wins += 1;
            }
        }
        assert!(wins <= 1, "forgery should rarely succeed at f = n/4: wins={wins}");
    }

    #[test]
    fn subq_protocol_broken_beyond_half() {
        // f = 0.7n: expected corrupt eligible = 0.7*lambda >> lambda/2.
        let n = 200;
        let mut wins = 0;
        for seed in 0..5 {
            if run_attack_subq(n, 7 * n / 10, 24.0, seed) {
                wins += 1;
            }
        }
        assert!(wins >= 4, "forgery should usually succeed at f = 0.7n: wins={wins}");
    }

    #[test]
    fn aggregate_forgeries_all_blocked_under_ideal_signatures() {
        for seed in 0..3 {
            // Safe regime: the honest run is untouched, but the forger still
            // probes the aggregate verifier with every forged shape.
            let (broken, stats) =
                run_attack_quadratic_enc(9, 4, seed, SigMode::Ideal, CertEncoding::Aggregate);
            assert!(!broken, "seed={seed}");
            assert_eq!(stats.attempts(), 3, "seed={seed}");
            assert_eq!(stats.blocked(), 3, "all forged shapes must be rejected (seed={seed})");
        }
    }

    #[test]
    fn aggregate_forgeries_all_blocked_under_real_signatures() {
        let (broken, stats) =
            run_attack_quadratic_enc(9, 4, 0, SigMode::Real, CertEncoding::Aggregate);
        assert!(!broken);
        assert_eq!(stats.attempts(), 3);
        assert_eq!(stats.blocked(), 3, "real multi-signature verifier must reject all shapes");
    }

    #[test]
    fn aggregate_encoded_attack_matches_vector_outcome() {
        // The resilience boundary is an encoding-independent protocol fact:
        // the forged Terminate carries the corrupt nodes' own valid commit
        // credentials either way, so the attack lands (or fails)
        // identically under both encodings.
        for seed in 0..3 {
            for &(f, expect_broken) in &[(4usize, false), (5usize, true)] {
                let (vec_broken, _) =
                    run_attack_quadratic_enc(9, f, seed, SigMode::Ideal, CertEncoding::Vector);
                let (agg_broken, _) =
                    run_attack_quadratic_enc(9, f, seed, SigMode::Ideal, CertEncoding::Aggregate);
                assert_eq!(vec_broken, expect_broken, "vector f={f} seed={seed}");
                assert_eq!(agg_broken, expect_broken, "aggregate f={f} seed={seed}");
            }
        }
    }

    #[test]
    fn split_delivery_still_defeats_the_protocol() {
        let n = 9;
        let seed = 2;
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let cfg = IterConfig::quadratic_half(n, kc, seed);
        let adv = CertForger::new(n, 5, true, cfg.quorum, cfg.auth.clone()).with_split_delivery();
        let sim = SimConfig::new(n, 5, CorruptionModel::Static, seed);
        let (report, verdict) = iter::run(&cfg, &sim, vec![false; n], adv);
        // The Terminate relay gadget heals the split: the targeted nodes
        // relay the forged terminate, so everyone converges on the forged
        // bit — consistency survives but validity is destroyed.
        assert!(!verdict.all_ok(), "{report:?}");
        assert!(!verdict.valid);
    }
}
