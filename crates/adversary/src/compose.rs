//! Adversary **composition**: adaptive eclipse + silence-then-burst in one
//! budget-sharing attack.
//!
//! The gauntlet's single-strategy rows probe one assumption each; real
//! attackers mix tactics. [`EclipseBurst`] splits the corruption budget `f`
//! between the two strategies the ROADMAP names as the natural composition:
//!
//! * a [`SilenceThenBurst`] wing statically corrupts the **last ⌊f/2⌋
//!   nodes** at setup, withholds their traffic, and floods the backlog at
//!   the burst round (stale-message pressure on the tail rounds);
//! * an [`AdaptiveEclipse`] wing spends the **remaining budget** mid-run on
//!   observed committee members (the attack `F_mine`'s one-shot secret
//!   committees are designed to defeat).
//!
//! Routing rule: corrupt nodes in the burst wing's set follow the
//! silence-then-burst outbox discipline; every *other* corrupt node was
//! corrupted by the eclipse wing and is silenced outright. Both wings
//! intervene each round — the burst wing first (so its release is visible
//! in the same round's traffic), then the eclipse wing.
//!
//! Legality is inherited, not re-implemented: every corruption of either
//! wing goes through [`AdvCtx::corrupt`], so the composition can never
//! exceed the budget `f` — the setup wing takes ⌊f/2⌋ and the eclipse wing
//! is bounded by `budget_left()`. The gauntlet's composed rows assert
//! exactly this (`corruptions ≤ f` at every seed).

use ba_sim::{AdvCtx, Adversary, Message, NodeId, Recipient, Round};

use crate::{AdaptiveEclipse, SilenceThenBurst};

/// Budget-sharing composition of [`SilenceThenBurst`] and
/// [`AdaptiveEclipse`] (see module docs).
#[derive(Clone, Debug)]
pub struct EclipseBurst<M> {
    /// The static silence-then-burst wing (owns the tail ⌊f/2⌋ nodes).
    pub burst: SilenceThenBurst<M>,
    /// The adaptive eclipse wing (spends whatever budget remains).
    pub eclipse: AdaptiveEclipse,
}

impl<M> EclipseBurst<M> {
    /// Composes the attack for an `n`-node run with budget `f`: the last
    /// `⌊f/2⌋` nodes are silenced until `burst_round`, the rest of the
    /// budget eclipses observed speakers.
    pub fn tail(n: usize, f: usize, burst_round: u64) -> EclipseBurst<M> {
        let burst_set: Vec<NodeId> = (n - f / 2..n).map(NodeId).collect();
        EclipseBurst {
            burst: SilenceThenBurst::new(burst_set, burst_round),
            eclipse: AdaptiveEclipse::new(),
        }
    }
}

impl<M: Message> Adversary<M> for EclipseBurst<M> {
    fn setup(&mut self, ctx: &mut AdvCtx<'_, M>) {
        self.burst.setup(ctx);
        self.eclipse.setup(ctx);
    }

    fn corrupt_outbox(
        &mut self,
        node: NodeId,
        planned: Vec<(Recipient, M)>,
        round: Round,
    ) -> Vec<(Recipient, M)> {
        if self.burst.nodes.contains(&node) {
            self.burst.corrupt_outbox(node, planned, round)
        } else {
            // Every other corrupt node was eclipsed mid-run: silenced.
            self.eclipse.corrupt_outbox(node, planned, round)
        }
    }

    fn intervene(&mut self, ctx: &mut AdvCtx<'_, M>) {
        self.burst.intervene(ctx);
        self.eclipse.intervene(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ba_core::iter::{self, IterConfig};
    use ba_fmine::{IdealMine, MineParams};
    use ba_sim::{Bit, CorruptionModel, SimConfig};

    const N: usize = 100;
    const F: usize = 20;

    fn mixed_inputs() -> Vec<Bit> {
        (0..N).map(|i| i % 2 == 0).collect()
    }

    #[test]
    fn composition_respects_the_corruption_budget() {
        let elig = Arc::new(IdealMine::new(5, MineParams::new(N, 16.0)));
        let cfg = IterConfig::subq_half(N, elig);
        let sim = SimConfig::new(N, F, CorruptionModel::Adaptive, 5);
        let adv = EclipseBurst::tail(N, F, 3);
        let (report, _) = iter::run(&cfg, &sim, mixed_inputs(), adv);
        // The legality edge: both wings together can never exceed f.
        assert!(
            report.metrics.corruptions <= F as u64,
            "composition exceeded the budget: {} > {F}",
            report.metrics.corruptions
        );
        // The burst wing took its half at setup.
        assert!(report.metrics.corruptions >= (F / 2) as u64);
        // The composition never removes (neither wing does).
        assert_eq!(report.metrics.removals, 0);
    }

    #[test]
    fn both_wings_act() {
        let elig = Arc::new(IdealMine::new(7, MineParams::new(N, 16.0)));
        let cfg = IterConfig::subq_half(N, elig);
        let sim = SimConfig::new(N, F, CorruptionModel::Adaptive, 7);
        let adv = EclipseBurst::tail(N, F, 2);
        let (report, verdict) = iter::run(&cfg, &sim, mixed_inputs(), adv);
        // The burst wing released a backlog (injections), and the eclipse
        // wing spent budget beyond the setup half.
        assert!(report.metrics.injected_sends > 0, "the burst never fired");
        assert!(
            report.metrics.corruptions > (F / 2) as u64,
            "the eclipse wing never spent adaptive budget"
        );
        // One-shot bit-specific committees shrug the composition off.
        assert!(verdict.all_ok(), "{verdict:?}");
    }

    #[test]
    fn static_model_degenerates_to_pure_burst() {
        let elig = Arc::new(IdealMine::new(9, MineParams::new(N, 16.0)));
        let cfg = IterConfig::subq_half(N, elig);
        let sim = SimConfig::new(N, F, CorruptionModel::Static, 9);
        let adv = EclipseBurst::tail(N, F, 3);
        let (report, _) = iter::run(&cfg, &sim, mixed_inputs(), adv);
        // Mid-run eclipse corruption is illegal under static: only the
        // setup wing's half is ever spent.
        assert_eq!(report.metrics.corruptions, (F / 2) as u64);
    }
}
