//! # ba-adversary
//!
//! Adversary strategies for the BA-revisited reproduction. Each strategy
//! realizes an attack the paper describes or relies on:
//!
//! * [`committee_eraser::CommitteeEraser`] — the strongly adaptive
//!   after-the-fact-removal attack behind **Theorem 1**: starve every quorum
//!   by erasing just-sent committee messages. Defeats any subquadratic
//!   protocol; runs out of budget against quadratic ones.
//! * [`vote_flipper::VoteFlipper`] — the adaptive corrupt-and-flip attack
//!   from the **Remark in §3.3**: breaks shared-committee eligibility,
//!   bounces off bit-specific eligibility and off memory-erased
//!   forward-secure keys.
//! * [`cert_forger::CertForger`] — fabricates a full wrong-bit decision
//!   chain from corrupt credentials; its success rate traces the
//!   `f < (1/2 − ε)n` resilience threshold (Lemma 11).
//! * [`crash::CrashAt`] / [`crash::Omission`] — benign-fault baselines.
//! * [`equivocation_spammer::EquivocationSpammer`] — conflicting signed
//!   votes to disjoint receiver halves; measures how bit-specific election
//!   limits equivocation-driven word-count inflation.
//! * [`silence_burst::SilenceThenBurst`] — withholds the corrupt set's
//!   traffic until a burst round, stressing tail rounds and stale-message
//!   handling.
//! * [`adaptive_eclipse::AdaptiveEclipse`] — corrupts nodes only *after*
//!   observing their committee eligibility: the attack `F_mine`'s secret
//!   one-shot committees are designed to defeat.
//! * [`compose::EclipseBurst`] — a budget-sharing *composition* of the
//!   eclipse and silence-then-burst strategies (half the budget silenced
//!   statically, the rest spent adaptively on observed speakers).
//!
//! The Dolev–Reischuk adversary pair of Theorem 4 and the `Q — 1 — Q'`
//! simulation of Theorem 3 live in `ba-lowerbound`, next to the toy
//! protocols they dismantle. The full catalog — threat model, the paper
//! assumption each strategy probes, and the observables it can and cannot
//! move — is in `docs/ADVERSARIES.md`.
//!
//! One adversarial capability deliberately does *not* live in this crate:
//! the **adversarial delivery scheduler** (`sched=adversarial` in a
//! [`ba_sim::FaultPlan`]) is a property of the network, not of a corrupt
//! node, so it lives on the transport seam
//! ([`ba_sim::FaultyTransport`]). It reorders each round's inboxes within
//! the synchronous model's legal envelope — corrupt traffic delivered
//! first, the latest honest sends last — and composes with every strategy
//! above. See `docs/FAULTS.md` for the legal-envelope argument and
//! `docs/ADVERSARIES.md` for its catalog entry.

pub mod adaptive_eclipse;
pub mod cert_forger;
pub mod committee_eraser;
pub mod compose;
pub mod crash;
pub mod equivocation_spammer;
pub mod silence_burst;
pub mod vote_flipper;

pub use adaptive_eclipse::AdaptiveEclipse;
pub use cert_forger::{CertForger, Delivery, ForgeStats};
pub use committee_eraser::CommitteeEraser;
pub use compose::EclipseBurst;
pub use crash::{CrashAt, Omission};
pub use equivocation_spammer::{EquivStats, EquivocationSpammer};
pub use silence_burst::SilenceThenBurst;
pub use vote_flipper::{forge_flipped, VoteFlipper};
