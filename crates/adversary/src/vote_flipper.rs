//! The adaptive **vote flipper** — the attack from the Remark in §3.3.
//!
//! > "Had \[eligibility\] not been \[bit-specific\], the adversary could observe
//! > whenever an honest node sends `(ACK, r, b)`, and immediately corrupt
//! > the node in the same round and make it send `(ACK, r, 1 − b)` too."
//!
//! Each ack round the flipper watches the honest acks, corrupts just enough
//! ackers of each bit, and injects flipped acks reusing their (shared)
//! eligibility tickets — pushing **both** bits past the ample-ack quorum, so
//! every node sticks to its own belief and mixed-input executions never
//! converge.
//!
//! Against bit-specific eligibility the forged ack needs a fresh ticket for
//! `(Ack, r, 1−b)`, which a just-corrupted acker holds only with probability
//! `λ/n`; against the Chen–Micali regime with memory erasure the slot key is
//! already gone. Experiment E8 sweeps all four regimes.

use ba_core::auth::{Auth, Evidence};
use ba_core::epoch::EpochMsg;
use ba_fmine::{MineTag, MsgKind};
use ba_sim::{AdvCtx, Adversary, NodeId, Recipient};

/// Attempts to forge evidence for `flip_tag` as `node`, given the evidence
/// observed in the node's original message. Returns `None` when the regime
/// resists the forgery.
pub fn forge_flipped(
    auth: &Auth,
    node: NodeId,
    flip_tag: &MineTag,
    observed: &Evidence,
) -> Option<Evidence> {
    match (auth, observed) {
        // The paper's construction: need a *new* ticket for the flipped tag.
        (Auth::Mined { elig, bit_specific: true, .. }, _) => {
            elig.mine(node, flip_tag).map(Evidence::Ticket)
        }
        // Shared committee: the stolen ticket is bit-agnostic; re-sign.
        (
            Auth::Mined { bit_specific: false, keychain: Some(kc), .. },
            Evidence::TicketSig(t, _),
        ) => Some(Evidence::TicketSig(*t, kc.sign(node, &flip_tag.to_bytes()))),
        // Chen–Micali: works iff the slot key was not erased.
        (Auth::FsMined { fs, .. }, Evidence::FsTicketSig(t, _)) => {
            let slot = flip_tag.iter.unwrap_or(0) as usize;
            fs.sign(node, slot, &flip_tag.to_bytes())
                .ok()
                .map(|s| Evidence::FsTicketSig(*t, Box::new(s)))
        }
        // Full-participation signed mode: a corrupt node signs anything.
        (Auth::Signed { keychain }, _) => {
            Some(Evidence::Sig(keychain.sign(node, &flip_tag.to_bytes())))
        }
        _ => None,
    }
}

/// The §3.3-Remark adversary for the epoch family (see module docs).
#[derive(Clone)]
pub struct VoteFlipper {
    /// The protocol's authentication regime (services shared with nodes).
    pub auth: Auth,
    /// The ample-ack quorum to fabricate.
    pub quorum: usize,
    /// Statistics: successfully injected flipped acks.
    pub flips_injected: u64,
    /// Statistics: forgery attempts that the regime blocked.
    pub flips_blocked: u64,
}

impl VoteFlipper {
    /// Creates the adversary for a protocol using `auth` with the given
    /// ample-ack `quorum`.
    pub fn new(auth: Auth, quorum: usize) -> VoteFlipper {
        VoteFlipper { auth, quorum, flips_injected: 0, flips_blocked: 0 }
    }

    /// Mines a brand-new credential for a freshly corrupted node (no
    /// observed evidence to steal). Works only where the regime's own
    /// election lets it.
    fn mine_fresh(&self, node: NodeId, tag: &MineTag) -> Option<Evidence> {
        match &self.auth {
            Auth::Mined { elig, bit_specific: true, .. } => {
                elig.mine(node, tag).map(Evidence::Ticket)
            }
            Auth::Mined { elig, bit_specific: false, keychain: Some(kc) } => {
                let ticket = elig.mine(node, &tag.sharedized())?;
                Some(Evidence::TicketSig(ticket, kc.sign(node, &tag.to_bytes())))
            }
            Auth::FsMined { elig, fs, .. } => {
                let ticket = elig.mine(node, &tag.sharedized())?;
                let slot = tag.iter.unwrap_or(0) as usize;
                // With the erasure discipline the victim already destroyed
                // this slot's key during its own step; without erasure the
                // key is still there for the taking.
                fs.sign(node, slot, &tag.to_bytes())
                    .ok()
                    .map(|s| Evidence::FsTicketSig(ticket, Box::new(s)))
            }
            Auth::Signed { keychain } => Some(Evidence::Sig(keychain.sign(node, &tag.to_bytes()))),
            _ => None,
        }
    }
}

impl Adversary<EpochMsg> for VoteFlipper {
    fn intervene(&mut self, ctx: &mut AdvCtx<'_, EpochMsg>) {
        // Ack rounds are the odd rounds (epoch = round / 2).
        if ctx.round().0 % 2 != 1 {
            return;
        }
        // Collect this round's honest acks by bit.
        let mut ackers: [Vec<(NodeId, Evidence)>; 2] = [Vec::new(), Vec::new()];
        let mut epoch = None;
        for e in ctx.pending() {
            if !e.honest_send {
                continue;
            }
            if let EpochMsg::Ack { epoch: ep, bit, ev } = &*e.msg {
                epoch = Some(*ep);
                ackers[*bit as usize].push((e.from, ev.clone()));
            }
        }
        let Some(epoch) = epoch else { return };

        // To make bit b ample we flip acks of (1-b)-ackers toward b.
        for target in [false, true] {
            let have = ackers[target as usize].len();
            let mut needed = self.quorum.saturating_sub(have);
            if needed == 0 {
                continue;
            }
            let flip_tag = MineTag::new(MsgKind::Ack, epoch, target);
            let donors: Vec<(NodeId, Evidence)> = ackers[(!target) as usize].to_vec();
            for (node, observed) in donors {
                if needed == 0 || (ctx.budget_left() == 0 && !ctx.is_corrupt(node)) {
                    break;
                }
                if !ctx.is_corrupt(node) && ctx.corrupt(node).is_err() {
                    break;
                }
                match forge_flipped(&self.auth, node, &flip_tag, &observed) {
                    Some(ev) => {
                        ctx.inject(node, Recipient::All, EpochMsg::Ack { epoch, bit: target, ev })
                            .expect("node is corrupt");
                        self.flips_injected += 1;
                        needed -= 1;
                    }
                    None => self.flips_blocked += 1,
                }
            }
            // Fallback: not enough donors — corrupt fresh (silent) nodes and
            // try to mine their credentials directly. Bit specificity and
            // memory erasure survive this too: a fresh bit-specific ticket
            // succeeds only with probability lambda/n, and the victim
            // already erased its slot key during its own step.
            if needed > 0 {
                let spoke: Vec<NodeId> =
                    ackers[0].iter().chain(ackers[1].iter()).map(|(id, _)| *id).collect();
                // Pass 1: already-corrupt silent nodes (no budget cost);
                // pass 2: fresh corruptions.
                for fresh in [false, true] {
                    for i in 0..ctx.n() {
                        if needed == 0 {
                            break;
                        }
                        let node = NodeId(i);
                        if spoke.contains(&node) || ctx.is_corrupt(node) == fresh {
                            continue;
                        }
                        if fresh && (ctx.budget_left() == 0 || ctx.corrupt(node).is_err()) {
                            break;
                        }
                        match self.mine_fresh(node, &flip_tag) {
                            Some(ev) => {
                                ctx.inject(
                                    node,
                                    Recipient::All,
                                    EpochMsg::Ack { epoch, bit: target, ev },
                                )
                                .expect("node is corrupt");
                                self.flips_injected += 1;
                                needed -= 1;
                            }
                            None => self.flips_blocked += 1,
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ba_core::auth::FsService;
    use ba_core::epoch::{self, EpochConfig};
    use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
    use ba_sim::{Bit, CorruptionModel, SimConfig};

    const N: usize = 240;
    const LAMBDA: f64 = 18.0;
    const EPOCHS: u64 = 8;

    fn mixed_inputs() -> Vec<Bit> {
        (0..N).map(|i| i < N / 2).collect()
    }

    fn violation_rate(mk: impl Fn(u64) -> (EpochConfig, VoteFlipper), seeds: u64) -> f64 {
        let mut violations = 0;
        for seed in 0..seeds {
            let (cfg, adv) = mk(seed);
            let sim = SimConfig::new(N, N / 3, CorruptionModel::Adaptive, seed);
            let (_report, verdict) = epoch::run(&cfg, &sim, mixed_inputs(), adv);
            if !verdict.consistent {
                violations += 1;
            }
        }
        violations as f64 / seeds as f64
    }

    #[test]
    fn flipper_breaks_shared_committees() {
        let rate = violation_rate(
            |seed| {
                let elig = Arc::new(IdealMine::new(seed, MineParams::new(N, LAMBDA)));
                let kc = Arc::new(Keychain::from_seed(seed, N, SigMode::Ideal));
                let cfg = EpochConfig::subq_shared(N, EPOCHS, elig, kc);
                let adv = VoteFlipper::new(cfg.auth.clone(), cfg.quorum);
                (cfg, adv)
            },
            8,
        );
        assert!(rate > 0.6, "shared committees should usually break: rate={rate}");
    }

    #[test]
    fn flipper_fails_against_bit_specific_committees() {
        let rate = violation_rate(
            |seed| {
                let elig = Arc::new(IdealMine::new(seed, MineParams::new(N, LAMBDA)));
                let cfg = EpochConfig::subq_third(N, EPOCHS, elig);
                let adv = VoteFlipper::new(cfg.auth.clone(), cfg.quorum);
                (cfg, adv)
            },
            8,
        );
        assert!(rate < 0.3, "bit-specific committees should resist: rate={rate}");
    }

    #[test]
    fn flipper_fails_against_chen_micali_with_erasure() {
        let rate = violation_rate(
            |seed| {
                let elig = Arc::new(IdealMine::new(seed, MineParams::new(N, LAMBDA)));
                let fs = Arc::new(FsService::from_seed(seed, N, EPOCHS as usize + 1));
                let cfg = EpochConfig::chen_micali(N, EPOCHS, elig, fs, true);
                let adv = VoteFlipper::new(cfg.auth.clone(), cfg.quorum);
                (cfg, adv)
            },
            6,
        );
        assert!(rate < 0.3, "erasure should block the flipper: rate={rate}");
    }

    #[test]
    fn flipper_breaks_chen_micali_without_erasure() {
        let rate = violation_rate(
            |seed| {
                let elig = Arc::new(IdealMine::new(seed, MineParams::new(N, LAMBDA)));
                let fs = Arc::new(FsService::from_seed(seed, N, EPOCHS as usize + 1));
                let cfg = EpochConfig::chen_micali(N, EPOCHS, elig, fs, false);
                let adv = VoteFlipper::new(cfg.auth.clone(), cfg.quorum);
                (cfg, adv)
            },
            6,
        );
        assert!(rate > 0.5, "without erasure the flipper should win: rate={rate}");
    }
}
