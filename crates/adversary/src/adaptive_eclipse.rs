//! The **adaptive eclipse** adversary — corrupt nodes only *after*
//! observing their committee eligibility.
//!
//! The central adaptive-security question of the paper: committee members
//! are secret until they speak, so the best an (ordinarily) adaptive
//! adversary can do is watch the wire, learn who turned out to be eligible,
//! and corrupt exactly those nodes — "eclipsing" the revealed committee so
//! it never speaks again. This is the attack the `F_mine` abstraction is
//! designed to defeat:
//!
//! * Under the **adaptive** model (no after-the-fact removal — the model of
//!   the paper's upper bounds) the eclipse is *always one round too late*:
//!   by the time eligibility is observable, the evidence-carrying multicast
//!   is already sent and cannot be erased. Against bit-specific one-shot
//!   committees (each `(type, iteration, bit)` tag elects a fresh
//!   committee; a member speaks once) the attack burns the entire
//!   corruption budget for nothing.
//! * Against protocols whose speakers are *predictable or recurring* —
//!   round-robin leaders (§3.1 warmup), full-participation quorums, relay
//!   roles in Dolev–Strong — eclipsing a revealed speaker removes all its
//!   *future* traffic, and the attack has real bite.
//! * Under the **strongly adaptive** model the same observation additionally
//!   allows removal — that configuration is the committee eraser
//!   (Theorem 1), kept as a separate strategy; the eclipse deliberately
//!   never removes, isolating the value of *observation* alone.
//!
//! What it provably cannot move: against one-shot committees, nothing — the
//! observables of an eclipsed execution match the passive execution except
//! for `corruptions` (the wasted budget) and the silenced nodes' own later
//! eligibility draws. Honest multicast complexity of *already-sent*
//! messages is untouched by construction (Definition 7 meters at send
//! time).

use ba_sim::{AdvCtx, Adversary, Message, NodeId, Recipient, Round};

/// Corrupts observed committee members and silences them from the next
/// round on (see module docs).
#[derive(Clone, Debug)]
pub struct AdaptiveEclipse {
    /// Corruption spend allowed per round (`usize::MAX` = as fast as the
    /// budget lets; small values pace the budget over the execution).
    pub per_round: usize,
    /// Statistics: nodes eclipsed after revealing eligibility.
    pub eclipsed: u64,
}

impl AdaptiveEclipse {
    /// Eclipse every observed speaker as fast as the budget allows.
    pub fn new() -> AdaptiveEclipse {
        AdaptiveEclipse { per_round: usize::MAX, eclipsed: 0 }
    }

    /// Eclipse at most `per_round` speakers per round (budget pacing).
    pub fn paced(per_round: usize) -> AdaptiveEclipse {
        AdaptiveEclipse { per_round, eclipsed: 0 }
    }
}

impl Default for AdaptiveEclipse {
    fn default() -> AdaptiveEclipse {
        AdaptiveEclipse::new()
    }
}

impl<M: Message> Adversary<M> for AdaptiveEclipse {
    fn intervene(&mut self, ctx: &mut AdvCtx<'_, M>) {
        // Observe this round's honest traffic: every honest sender just
        // revealed an eligibility credential (or a full-participation role).
        let mut revealed: Vec<NodeId> = Vec::new();
        for e in ctx.pending() {
            if e.honest_send && !revealed.contains(&e.from) {
                revealed.push(e.from);
            }
        }
        let mut spent = 0usize;
        for node in revealed {
            if spent >= self.per_round || ctx.budget_left() == 0 {
                break;
            }
            if ctx.is_corrupt(node) {
                continue;
            }
            // Too late by design: the observed message is already sent and
            // (in the adaptive model) cannot be removed. Only the node's
            // future is eclipsed. Under a static model this fails and the
            // adversary degenerates to passive.
            if ctx.corrupt(node).is_ok() {
                self.eclipsed += 1;
                spent += 1;
            }
        }
    }

    fn corrupt_outbox(
        &mut self,
        _node: NodeId,
        _planned: Vec<(Recipient, M)>,
        _round: Round,
    ) -> Vec<(Recipient, M)> {
        Vec::new() // eclipsed nodes never speak again
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ba_core::epoch::{self, EpochConfig};
    use ba_core::iter::{self, IterConfig};
    use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
    use ba_sim::{Bit, CorruptionModel, SimConfig};

    fn mixed_inputs(n: usize) -> Vec<Bit> {
        (0..n).map(|i| i % 2 == 0).collect()
    }

    #[test]
    fn one_shot_committees_shrug_off_the_eclipse() {
        // Bit-specific one-shot committees: members speak exactly once, so
        // eclipsing them afterwards wastes the whole budget.
        let n = 200;
        let f = 60;
        let elig = Arc::new(IdealMine::new(3, MineParams::new(n, 20.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, f, CorruptionModel::Adaptive, 3);
        let (report, verdict) = iter::run(&cfg, &sim, mixed_inputs(n), AdaptiveEclipse::new());
        assert!(verdict.all_ok(), "F_mine should defeat the eclipse: {verdict:?}");
        assert!(report.metrics.corruptions > 0, "the eclipse did spend budget");
        assert_eq!(report.metrics.removals, 0, "the eclipse never removes");
    }

    #[test]
    fn recurring_speakers_are_eclipsable() {
        // Full-participation warmup: everyone speaks every epoch, so an
        // eclipsed node loses all its future acks. With the budget above
        // n/3 the quorum 2n/3 can no longer form once enough nodes are
        // eclipsed — mixed inputs stay split.
        let n = 30;
        let f = 12; // deliberately above the n/3 resilience bound
        let kc = Arc::new(Keychain::from_seed(5, n, SigMode::Ideal));
        let cfg = EpochConfig::warmup_third(n, 6, kc);
        let sim = SimConfig::new(n, f, CorruptionModel::Adaptive, 5);
        let (report, verdict) = epoch::run(&cfg, &sim, mixed_inputs(n), AdaptiveEclipse::new());
        assert_eq!(report.metrics.corruptions, f as u64, "budget fully spent on speakers");
        assert!(!verdict.all_ok(), "an over-budget eclipse should break full participation");
    }

    #[test]
    fn static_model_neutralizes_the_eclipse() {
        // Mid-run corruption is illegal under the static model: the eclipse
        // degenerates to the passive adversary.
        let n = 100;
        let elig = Arc::new(IdealMine::new(8, MineParams::new(n, 16.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, 30, CorruptionModel::Static, 8);
        let (report, verdict) = iter::run(&cfg, &sim, mixed_inputs(n), AdaptiveEclipse::new());
        assert!(verdict.all_ok(), "{verdict:?}");
        assert_eq!(report.metrics.corruptions, 0, "static model refuses mid-run corruption");
    }

    #[test]
    fn pacing_caps_per_round_spend() {
        let n = 60;
        let f = 20;
        let kc = Arc::new(Keychain::from_seed(2, n, SigMode::Ideal));
        let cfg = EpochConfig::warmup_third(n, 4, kc);
        let sim = SimConfig::new(n, f, CorruptionModel::Adaptive, 2);
        let (report, _) = epoch::run(&cfg, &sim, mixed_inputs(n), AdaptiveEclipse::paced(1));
        // At one corruption per round the spend is bounded by rounds_used.
        assert!(report.metrics.corruptions <= report.rounds_used);
    }
}
