//! The **silence-then-burst** adversary — a tail-round stressor.
//!
//! A static adversary corrupting a fixed set of nodes whose members run the
//! honest protocol but *withhold every message* until a designated burst
//! round, then release the entire backlog at once (as injections delivered
//! with that round's traffic). Until the burst the attack is
//! indistinguishable from a crash; at the burst honest nodes suddenly face
//! a pile of stale-but-validly-attested messages from long-past
//! iterations/epochs.
//!
//! What it probes:
//!
//! * **Tail behaviour** — the paper's round-complexity claims are about
//!   *expected* rounds (Corollary 16); a protocol whose common case is fast
//!   but whose stale-message handling is slow shows up in the p95/max
//!   columns of E3-style sweeps, which is exactly where this adversary
//!   applies pressure.
//! * **Stale-message hygiene** — honest implementations must ignore or
//!   cheaply dismiss out-of-date certified messages; a protocol that
//!   re-enters old iterations on late evidence would lose termination here.
//!
//! What it provably cannot move: honest multicast complexity *before* the
//! burst is simply the honest protocol minus the silenced nodes (the
//! backlog is metered as `corrupt_sends`/`injected_sends`, never as honest
//! traffic), and under the paper's quorum margins a silenced minority
//! `f' ≤ f` behaves like a crash fault — safety is untouched, only
//! liveness margins shrink.

use ba_sim::{AdvCtx, Adversary, Message, NodeId, Recipient, Round};

/// Runs its corrupt set honestly-but-silently until `burst_round`, then
/// floods the backlog (see module docs).
#[derive(Clone, Debug)]
pub struct SilenceThenBurst<M> {
    /// Nodes to corrupt at setup.
    pub nodes: Vec<NodeId>,
    /// First round in which the corrupt set speaks; everything withheld
    /// earlier is released here in one burst.
    pub burst_round: u64,
    /// The withheld backlog: `(sender, recipient, message)` in send order.
    held: Vec<(NodeId, Recipient, M)>,
    /// Statistics: messages withheld into the backlog.
    pub withheld: u64,
    /// Statistics: backlog messages released at the burst.
    pub released: u64,
}

impl<M> SilenceThenBurst<M> {
    /// Creates the adversary silencing `nodes` until `burst_round`.
    pub fn new(nodes: Vec<NodeId>, burst_round: u64) -> SilenceThenBurst<M> {
        SilenceThenBurst { nodes, burst_round, held: Vec::new(), withheld: 0, released: 0 }
    }

    /// Convenience: silence the `f` highest-numbered of `n` nodes.
    pub fn tail(n: usize, f: usize, burst_round: u64) -> SilenceThenBurst<M> {
        SilenceThenBurst::new((n - f..n).map(NodeId).collect(), burst_round)
    }
}

impl<M: Message> Adversary<M> for SilenceThenBurst<M> {
    fn setup(&mut self, ctx: &mut AdvCtx<'_, M>) {
        for &node in &self.nodes {
            ctx.corrupt(node).expect("silence set exceeds corruption budget");
        }
    }

    fn corrupt_outbox(
        &mut self,
        node: NodeId,
        planned: Vec<(Recipient, M)>,
        round: Round,
    ) -> Vec<(Recipient, M)> {
        if round.0 >= self.burst_round {
            return planned; // from the burst round on, speak normally
        }
        self.withheld += planned.len() as u64;
        self.held.extend(planned.into_iter().map(|(to, msg)| (node, to, msg)));
        Vec::new()
    }

    fn intervene(&mut self, ctx: &mut AdvCtx<'_, M>) {
        if ctx.round().0 != self.burst_round {
            return;
        }
        // Release the backlog; it is delivered together with this round's
        // regular traffic at the start of the next round.
        for (from, to, msg) in self.held.drain(..) {
            ctx.inject(from, to, msg).expect("sender was corrupted at setup");
            self.released += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ba_core::iter::{self, IterConfig};
    use ba_fmine::{IdealMine, MineParams};
    use ba_sim::{Bit, CorruptionModel, SimConfig};

    const N: usize = 100;
    const F: usize = 20;
    const LAMBDA: f64 = 16.0;

    fn mixed_inputs() -> Vec<Bit> {
        (0..N).map(|i| i % 2 == 0).collect()
    }

    #[test]
    fn burst_releases_the_backlog_as_injections() {
        let elig = Arc::new(IdealMine::new(7, MineParams::new(N, LAMBDA)));
        let cfg = IterConfig::subq_half(N, elig);
        let sim = SimConfig::new(N, F, CorruptionModel::Static, 7);
        let adv = SilenceThenBurst::tail(N, F, 4);
        let (report, verdict) = iter::run(&cfg, &sim, mixed_inputs(), adv);
        // A silenced minority is a crash fault: the protocol stays correct.
        assert!(verdict.all_ok(), "{verdict:?}");
        // The backlog came out as adversary-attributed injections.
        assert!(report.metrics.injected_sends > 0, "the burst should release messages");
        assert!(report.metrics.corrupt_sends >= report.metrics.injected_sends);
        assert!(report.rounds_used > 4, "the run should outlive the burst round");
    }

    #[test]
    fn never_reached_burst_degenerates_to_crash() {
        let elig = Arc::new(IdealMine::new(9, MineParams::new(N, LAMBDA)));
        let cfg = IterConfig::subq_half(N, elig);
        let sim = SimConfig::new(N, F, CorruptionModel::Static, 9);
        let adv: SilenceThenBurst<ba_core::iter::IterMsg> = SilenceThenBurst::tail(N, F, 10_000);
        let (report, verdict) = iter::run(&cfg, &sim, mixed_inputs(), adv);
        assert!(verdict.all_ok(), "{verdict:?}");
        assert_eq!(report.metrics.injected_sends, 0, "the burst round was never reached");
        assert_eq!(report.metrics.corrupt_sends, 0, "withheld messages never hit the wire");
    }

    #[test]
    fn honest_metering_excludes_the_backlog() {
        // Definition 7: the backlog is corrupt traffic. Honest multicasts
        // must match a plain crash-at-0 execution over the same seed, since
        // honest nodes see the same pre-burst world.
        let mk = || {
            let elig = Arc::new(IdealMine::new(11, MineParams::new(N, LAMBDA)));
            IterConfig::subq_half(N, elig)
        };
        let sim = SimConfig::new(N, F, CorruptionModel::Static, 11);
        let burst = SilenceThenBurst::tail(N, F, 1_000);
        let (r_burst, _) = iter::run(&mk(), &sim, mixed_inputs(), burst);
        let crash = crate::CrashAt { nodes: (N - F..N).map(NodeId).collect(), at_round: 0 };
        let (r_crash, _) = iter::run(&mk(), &sim, mixed_inputs(), crash);
        assert_eq!(r_burst.metrics.honest_multicasts, r_crash.metrics.honest_multicasts);
        assert_eq!(r_burst.metrics.honest_multicast_bits, r_crash.metrics.honest_multicast_bits);
    }
}
