//! Simple baseline adversaries: crash-stop and send-omission.
//!
//! These are the weakest fault models and serve as sanity baselines in the
//! resilience sweeps (a protocol that can't survive crashes is broken long
//! before Byzantine behaviour matters).

use ba_sim::{AdvCtx, Adversary, Message, NodeId, Recipient, Round};

/// Corrupts a fixed set of nodes at setup and silences them from a given
/// round on (crash-stop). Before the crash round they behave honestly.
#[derive(Clone, Debug)]
pub struct CrashAt {
    /// Nodes to crash.
    pub nodes: Vec<NodeId>,
    /// First round in which the nodes are silent.
    pub at_round: u64,
}

impl<M: Message> Adversary<M> for CrashAt {
    fn setup(&mut self, ctx: &mut AdvCtx<'_, M>) {
        for &node in &self.nodes {
            ctx.corrupt(node).expect("crash set exceeds corruption budget");
        }
    }

    fn corrupt_outbox(
        &mut self,
        _node: NodeId,
        planned: Vec<(Recipient, M)>,
        round: Round,
    ) -> Vec<(Recipient, M)> {
        if round.0 >= self.at_round {
            Vec::new()
        } else {
            planned
        }
    }
}

/// Send-omission adversary: corrupt nodes run the honest protocol but every
/// send is dropped with probability `drop_permille / 1000` (deterministic
/// per (node, round) for replayability).
#[derive(Clone, Debug)]
pub struct Omission {
    /// Nodes to corrupt.
    pub nodes: Vec<NodeId>,
    /// Drop probability in permille (0..=1000).
    pub drop_permille: u32,
}

impl Omission {
    fn drops(&self, node: NodeId, round: Round, idx: usize) -> bool {
        // Cheap deterministic hash of (node, round, idx).
        let mut h = 0xcbf29ce484222325u64;
        for v in [node.index() as u64, round.0, idx as u64, 0x9e3779b9] {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % 1000) < self.drop_permille as u64
    }
}

impl<M: Message> Adversary<M> for Omission {
    fn setup(&mut self, ctx: &mut AdvCtx<'_, M>) {
        for &node in &self.nodes {
            ctx.corrupt(node).expect("omission set exceeds corruption budget");
        }
    }

    fn corrupt_outbox(
        &mut self,
        node: NodeId,
        planned: Vec<(Recipient, M)>,
        round: Round,
    ) -> Vec<(Recipient, M)> {
        planned
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !self.drops(node, round, *i))
            .map(|(_, send)| send)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::{Bit, Incoming, Outbox, Protocol};
    use ba_sim::{CorruptionModel, Sim, SimConfig};

    #[derive(Clone, Debug, PartialEq)]
    struct Beep;
    impl Message for Beep {
        fn size_bits(&self) -> usize {
            8
        }
    }

    struct Chatter {
        heard: usize,
        done: bool,
    }
    impl Protocol<Beep> for Chatter {
        fn step(&mut self, round: Round, inbox: &[Incoming<Beep>], out: &mut Outbox<Beep>) {
            match round.0 {
                0..=2 => out.multicast(Beep),
                3 => {
                    self.heard = inbox.len();
                    self.done = true;
                }
                _ => {}
            }
        }
        fn output(&self) -> Option<Bit> {
            self.done.then_some(self.heard > 0)
        }
        fn halted(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn crash_silences_from_round() {
        let cfg = SimConfig::new(4, 1, CorruptionModel::Static, 0);
        let adv = CrashAt { nodes: vec![NodeId(0)], at_round: 1 };
        let report = Sim::run_protocol(&cfg, vec![true; 4], adv, |_, _| {
            Box::new(Chatter { heard: 0, done: false })
        });
        // Node 0 spoke in round 0 only: corrupt sends = 1.
        assert_eq!(report.metrics.corrupt_sends, 1);
        assert_eq!(report.metrics.honest_multicasts, 3 * 3);
    }

    #[test]
    fn omission_drops_a_fraction() {
        let cfg = SimConfig::new(4, 2, CorruptionModel::Static, 0);
        let adv = Omission { nodes: vec![NodeId(0), NodeId(1)], drop_permille: 1000 };
        let report = Sim::run_protocol(&cfg, vec![true; 4], adv, |_, _| {
            Box::new(Chatter { heard: 0, done: false })
        });
        assert_eq!(report.metrics.corrupt_sends, 0, "full omission drops everything");

        let adv = Omission { nodes: vec![NodeId(0), NodeId(1)], drop_permille: 0 };
        let report = Sim::run_protocol(&cfg, vec![true; 4], adv, |_, _| {
            Box::new(Chatter { heard: 0, done: false })
        });
        assert_eq!(report.metrics.corrupt_sends, 6, "zero omission keeps all sends");
    }

    #[test]
    fn omission_is_deterministic() {
        let o = Omission { nodes: vec![], drop_permille: 500 };
        for idx in 0..20 {
            assert_eq!(o.drops(NodeId(3), Round(7), idx), o.drops(NodeId(3), Round(7), idx));
        }
    }
}
