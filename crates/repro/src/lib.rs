//! # ba-repro
//!
//! Facade crate for the reproduction of *"Communication Complexity of
//! Byzantine Agreement, Revisited"* (PODC 2019): re-exports the full stack
//! and hosts the repository-level examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! ```
//! use ba_repro::prelude::*;
//! use std::sync::Arc;
//!
//! let n = 64;
//! let elig = Arc::new(IdealMine::new(1, MineParams::new(n, 16.0)));
//! let cfg = IterConfig::subq_half(n, elig);
//! let sim = SimConfig::new(n, 0, CorruptionModel::Static, 1);
//! let (_report, verdict) = ba_repro::iter_run(&cfg, &sim, vec![true; n], Passive);
//! assert!(verdict.all_ok());
//! ```

pub use ba_adversary as adversary;
pub use ba_bench as bench;
pub use ba_core as core;
pub use ba_crypto as crypto;
pub use ba_fmine as fmine;
pub use ba_lowerbound as lowerbound;
pub use ba_sim as sim;

pub use ba_core::epoch::run as epoch_run;
pub use ba_core::iter::run as iter_run;

/// The most common imports in one place.
pub mod prelude {
    pub use ba_adversary::{CertForger, CommitteeEraser, CrashAt, Omission, VoteFlipper};
    pub use ba_bench::{
        AdversarySpec, CellReport, InputPattern, ProtocolSpec, Scenario, Sweep, SweepReport,
    };
    pub use ba_core::auth::{Auth, Evidence, FsService};
    pub use ba_core::broadcast::{self, BbMsg};
    pub use ba_core::dolev_strong::{self, DsConfig};
    pub use ba_core::epoch::{EpochConfig, EpochMsg};
    pub use ba_core::iter::{IterConfig, IterMsg};
    pub use ba_core::runnable::Runnable;
    pub use ba_fmine::{
        Eligibility, IdealMine, Keychain, MineParams, MineTag, MsgKind, RealMine, SigMode, Ticket,
    };
    pub use ba_sim::{
        evaluate, Adversary, Bit, CorruptionModel, NodeId, Passive, Problem, Round, RunReport, Sim,
        SimConfig, Verdict,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = CorruptionModel::StronglyAdaptive;
        let _ = NodeId(0);
    }
}
