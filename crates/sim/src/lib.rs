//! # ba-sim
//!
//! A deterministic, synchronous, round-based protocol-execution simulator
//! realizing the ITM execution model of *"Communication Complexity of
//! Byzantine Agreement, Revisited"* (Appendix A.1):
//!
//! * an environment `Z` supplies inputs and collects outputs;
//! * honest nodes run [`protocol::Protocol`] state machines;
//! * an [`adversary::Adversary`] observes each round's traffic *before*
//!   delivery (rushing) and adaptively corrupts nodes, subject to the
//!   [`adversary::CorruptionModel`]:
//!   static / adaptive (no after-the-fact removal) / strongly adaptive
//!   (with after-the-fact removal);
//! * messages multicast in round `r` arrive at every honest node at the
//!   beginning of round `r + 1` (synchrony);
//! * [`metrics::Metrics`] implements the paper's Definition 6 (classical
//!   communication complexity) and Definition 7 (multicast complexity).
//!
//! Every execution is a pure function of a `u64` seed.
//!
//! See the [`engine::Sim`] docs for a complete runnable example.

pub mod adversary;
pub mod engine;
pub mod ids;
pub mod message;
pub mod metrics;
pub mod population;
pub mod protocol;
pub mod transport;
pub mod verdict;

pub use adversary::{AdvActionError, AdvCtx, Adversary, CorruptionModel, Passive};
pub use engine::{BoxedProtocol, RunReport, Sim, SimConfig};
pub use ids::{Bit, NodeId, Round};
pub use message::{Envelope, Incoming, Message, MsgId, Outbox, Recipient};
pub use metrics::{LatencyStats, Metrics};
pub use population::{run_sparse, ActivationOracle, PopulationMode, SparseSpec};
pub use protocol::Protocol;
pub use transport::fault::{
    DropFault, DupFault, FaultPlan, FaultStats, FaultyTransport, PartitionFault, ReorderFault,
    Scheduler,
};
pub use transport::{
    BaseTransport, DelayDist, Transport, TransportError, TransportSpec, TransportStats,
    DEFAULT_ROUND_MS,
};
pub use verdict::{evaluate, Problem, Verdict};
