//! Message envelopes, recipients, and the per-round outbox.
//!
//! Payloads are reference-counted ([`std::sync::Arc`]): a multicast to `n`
//! recipients shares **one** allocation instead of deep-cloning the message
//! (certificates and commit quorums make payloads large) `n` times. The
//! engine's inbox buffers are likewise reused across rounds.

use std::sync::Arc;

use crate::ids::{NodeId, Round};

/// Payload trait implemented by every protocol's message type.
///
/// `size_bits` is the estimated wire size used for the paper's communication
/// metrics (Definitions 6 and 7); implementations should account for
/// signatures and eligibility proofs they would carry on a real network.
pub trait Message: Clone + std::fmt::Debug {
    /// Estimated serialized size in bits.
    fn size_bits(&self) -> usize;

    /// The portion of [`Message::size_bits`] spent on quorum certificates
    /// (vote certificates and commit quorums). Zero for protocols that
    /// don't carry certificates; the default suits them. Metered separately
    /// so experiments can attribute how much of the wire a certificate
    /// encoding costs (the paper's dominant constant).
    fn cert_bits(&self) -> usize {
        0
    }
}

/// Addressing mode of an outgoing message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Recipient {
    /// Multicast to every node (the paper's multicast model).
    All,
    /// Point-to-point send (used by lower-bound constructions and corrupt
    /// nodes, which may address individual nodes).
    One(NodeId),
}

/// A message delivered to a node at the start of a round.
///
/// The payload is shared (`Arc`): every recipient of a multicast sees the
/// same allocation. Field access auto-derefs (`m.msg.field`); to pattern
/// match, go through the reference: `match &*m.msg { ... }`.
#[derive(Clone, Debug)]
pub struct Incoming<M> {
    /// Claimed-and-authenticated sender (channels are authenticated).
    pub from: NodeId,
    /// The payload (shared across recipients).
    pub msg: Arc<M>,
}

impl<M> Incoming<M> {
    /// Wraps a fresh payload (single-recipient convenience; the engine
    /// shares one `Arc` per multicast).
    pub fn new(from: NodeId, msg: M) -> Incoming<M> {
        Incoming { from, msg: Arc::new(msg) }
    }
}

/// A message queued for delivery, visible to the adversary before delivery.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Unique id within the execution (used for after-the-fact removal).
    pub id: MsgId,
    /// Sender.
    pub from: NodeId,
    /// Addressing.
    pub to: Recipient,
    /// Round in which the message was sent.
    pub round: Round,
    /// Whether the sender was so-far-honest when it sent the message.
    pub honest_send: bool,
    /// Set when a strongly adaptive adversary erases the message.
    pub removed: bool,
    /// The payload (shared with every delivered copy).
    pub msg: Arc<M>,
}

/// Identifier of an envelope within an execution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MsgId(pub u64);

/// Collects a node's sends during one round.
///
/// Handed to [`crate::protocol::Protocol::step`]; the engine converts the
/// contents into [`Envelope`]s.
#[derive(Clone, Debug, Default)]
pub struct Outbox<M> {
    pub(crate) sends: Vec<(Recipient, M)>,
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Outbox<M> {
        Outbox { sends: Vec::new() }
    }

    /// Queues a multicast to all nodes.
    pub fn multicast(&mut self, msg: M) {
        self.sends.push((Recipient::All, msg));
    }

    /// Queues a unicast to one node.
    pub fn unicast(&mut self, to: NodeId, msg: M) {
        self.sends.push((Recipient::One(to), msg));
    }

    /// Number of queued sends.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// True if nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }

    /// Drains the queued sends (engine use).
    pub fn take(&mut self) -> Vec<(Recipient, M)> {
        std::mem::take(&mut self.sends)
    }

    /// Read-only view of queued sends.
    pub fn sends(&self) -> &[(Recipient, M)] {
        &self.sends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Message for u32 {
        fn size_bits(&self) -> usize {
            32
        }
    }

    #[test]
    fn outbox_collects_sends() {
        let mut out: Outbox<u32> = Outbox::new();
        assert!(out.is_empty());
        out.multicast(7);
        out.unicast(NodeId(3), 9);
        assert_eq!(out.len(), 2);
        let sends = out.take();
        assert_eq!(sends[0], (Recipient::All, 7));
        assert_eq!(sends[1], (Recipient::One(NodeId(3)), 9));
        assert!(out.is_empty());
    }

    #[test]
    fn message_size_default_shape() {
        assert_eq!(7u32.size_bits(), 32);
    }
}
