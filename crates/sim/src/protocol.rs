//! The node-side protocol interface.

use crate::ids::{Bit, Round};
use crate::message::{Incoming, Outbox};

/// A per-node protocol state machine.
///
/// The engine drives every node once per synchronous round:
/// `step(r, inbox_r, outbox)` where `inbox_r` contains exactly the messages
/// sent to this node in round `r - 1` (the synchrony assumption). Sends
/// queued in `outbox` are delivered at the start of round `r + 1`.
///
/// Implementations must be deterministic given their construction-time seed;
/// all protocol randomness must come from state owned by the implementation
/// (e.g. an HMAC-DRBG), never from ambient entropy — this is what makes every
/// execution replayable from a single `u64`.
pub trait Protocol<M> {
    /// Advances the node by one round.
    fn step(&mut self, round: Round, inbox: &[Incoming<M>], out: &mut Outbox<M>);

    /// The node's decided output, if any.
    fn output(&self) -> Option<Bit>;

    /// True once the node has halted (it will no longer send).
    fn halted(&self) -> bool;
}

/// Blanket impl so `Box<dyn Protocol<M>>` can be driven through the trait.
impl<M, P: Protocol<M> + ?Sized> Protocol<M> for Box<P> {
    fn step(&mut self, round: Round, inbox: &[Incoming<M>], out: &mut Outbox<M>) {
        (**self).step(round, inbox, out)
    }

    fn output(&self) -> Option<Bit> {
        (**self).output()
    }

    fn halted(&self) -> bool {
        (**self).halted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::message::Message;

    #[derive(Clone, Debug)]
    struct Echo(u8);

    impl Message for Echo {
        fn size_bits(&self) -> usize {
            8
        }
    }

    /// A trivial protocol: multicast input in round 0, output the majority of
    /// round-1 inbox. Used to smoke-test the trait surface.
    struct Majority {
        input: u8,
        decided: Option<Bit>,
    }

    impl Protocol<Echo> for Majority {
        fn step(&mut self, round: Round, inbox: &[Incoming<Echo>], out: &mut Outbox<Echo>) {
            match round.0 {
                0 => out.multicast(Echo(self.input)),
                1 => {
                    let ones = inbox.iter().filter(|m| m.msg.0 == 1).count();
                    self.decided = Some(ones * 2 > inbox.len());
                }
                _ => {}
            }
        }

        fn output(&self) -> Option<Bit> {
            self.decided
        }

        fn halted(&self) -> bool {
            self.decided.is_some()
        }
    }

    #[test]
    fn boxed_protocol_dispatch() {
        let mut p: Box<dyn Protocol<Echo>> = Box::new(Majority { input: 1, decided: None });
        let mut out = Outbox::new();
        p.step(Round(0), &[], &mut out);
        assert_eq!(out.len(), 1);
        assert!(!p.halted());
        let inbox = vec![
            Incoming::new(NodeId(0), Echo(1)),
            Incoming::new(NodeId(1), Echo(1)),
            Incoming::new(NodeId(2), Echo(0)),
        ];
        let mut out2 = Outbox::new();
        p.step(Round(1), &inbox, &mut out2);
        assert_eq!(p.output(), Some(true));
        assert!(p.halted());
    }
}
