//! Deterministic network chaos: a composable fault-injection layer that
//! wraps **any** [`Transport`] backend and applies a declarative
//! [`FaultPlan`] — per-copy drops, duplication, bounded reordering,
//! node-set partitions with a heal round, and an adversarial scheduler —
//! all as a pure function of `(fault seed, message id, receiver)`.
//!
//! # Determinism
//!
//! Every fault decision hashes `(seed, fault kind, message id, receiver)`
//! through the same `splitmix64` construction the latency transport uses
//! for link delays, so decisions are independent of thread count,
//! inspection order, and — crucially — of the *inner backend*: the same
//! seed and plan drop/duplicate/defer exactly the same copies whether the
//! inner transport is lockstep, simulated latency, or real TCP. Reports
//! replay byte-for-byte.
//!
//! # The legal envelope
//!
//! The wrapper only exercises freedoms the model already grants the
//! network adversary:
//!
//! * **Per-inbox order** is never specified by the synchronous model —
//!   only *which round* a message arrives in. The adversarial scheduler
//!   re-orders each submitted batch (adversary traffic first, honest
//!   traffic latest-send-first) without moving anything across a round
//!   boundary, so it stays inside the model.
//! * **Reordering** defers a copy by at most `budget` rounds — the
//!   partial-synchrony freedom the latency backend prices in clock time,
//!   here exercised adversarially in round units on any backend.
//! * **Drops, duplication, partitions** step *outside* the honest-network
//!   envelope on purpose: they are the chaos under which the safety
//!   observables (`consistent`, `valid`) must not move even when
//!   liveness legitimately degrades. A partition holds cross-cut traffic
//!   until its heal round (GST-style recovery), never forging or
//!   corrupting payloads — channels stay authenticated.
//!
//! # Copy semantics
//!
//! With a non-empty plan, each submitted envelope is split into one copy
//! per recipient (sharing the payload `Arc` and message id), and faults
//! apply per copy in a fixed order: partition-hold → drop → duplicate →
//! reorder-defer. Copies released from a hold re-join the next submitted
//! batch ahead of fresh traffic and are not re-faulted. An **empty plan
//! is a structural pass-through**: envelopes are forwarded to the inner
//! backend untouched and no fault stats are reported, which is what makes
//! `Faulty`-wrapped honest cells byte-identical to the bare backend.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::ids::{NodeId, Round};
use crate::message::{Envelope, Incoming, Message, Recipient};

use super::{splitmix64, Transport, TransportStats};

/// Domain-separation tags for the per-kind fault hash.
const TAG_DROP: u64 = 1;
const TAG_DUP: u64 = 2;
const TAG_REORDER: u64 = 3;

/// Whitener mixed into the run seed so fault rolls never collide with the
/// latency transport's delay hashes of the same `(message, receiver)`.
const FAULT_SEED_WHITENER: u64 = 0xFA17_5EED_0BAD_C0DE;

/// Rates are stored in parts-per-million so plans stay `Eq + Hash` and
/// round-trip exactly through their textual form.
const PPM: u64 = 1_000_000;

/// Per-copy drop fault: each `(message, receiver)` copy is discarded with
/// probability `ppm / 1e6`, inside the `[from, until)` round window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DropFault {
    /// Drop probability in parts per million (`0..=1_000_000`).
    pub ppm: u32,
    /// First send round (inclusive) the fault is active in.
    pub from: u64,
    /// First send round the fault is no longer active in (`u64::MAX` =
    /// the whole run).
    pub until: u64,
}

/// Per-copy duplication fault: each surviving copy is delivered twice with
/// probability `ppm / 1e6` (the duplicate lands adjacent to the original).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DupFault {
    /// Duplication probability in parts per million.
    pub ppm: u32,
}

/// Bounded out-of-order delivery: each copy is deferred past its nominal
/// round by `1..=budget` extra rounds with probability `ppm / 1e6`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReorderFault {
    /// Deferral probability in parts per million.
    pub ppm: u32,
    /// Maximum deferral in rounds (`>= 1`). The honest scheduler samples
    /// the deferral uniformly from `1..=budget`; the adversarial scheduler
    /// always takes the full budget.
    pub budget: u64,
}

/// A node-set partition: during send rounds `[from, until)` the population
/// is cut into `{0..split}` and `{split..n}`, and every cross-cut copy is
/// held until the heal round `until` (delivered at the start of round
/// `until + 1`), modelling a GST-style network heal on any backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PartitionFault {
    /// First send round (inclusive) the cut is active in.
    pub from: u64,
    /// Heal round: the cut lifts for sends in round `until`, and held
    /// copies re-join that round's batch.
    pub until: u64,
    /// Nodes `< split` form one side, nodes `>= split` the other.
    pub split: usize,
}

/// Who picks the delivery order within the model's legal envelope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Scheduler {
    /// Send order (ascending message id) — the classic model.
    #[default]
    Honest,
    /// Greedy adversarial order: adversary traffic first (it front-runs
    /// the inbox), honest traffic latest-send-first (the copies a
    /// committee has waited longest for arrive last), and reorder
    /// deferrals always take their full budget.
    Adversarial,
}

/// A declarative, seed-deterministic fault plan (see the module docs for
/// semantics and the textual grammar accepted by [`std::str::FromStr`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Per-copy drops.
    pub drop: Option<DropFault>,
    /// Per-copy duplication.
    pub duplicate: Option<DupFault>,
    /// Bounded out-of-order deferral.
    pub reorder: Option<ReorderFault>,
    /// Node-set partition with a heal round.
    pub partition: Option<PartitionFault>,
    /// Delivery-order policy.
    pub scheduler: Scheduler,
}

impl FaultPlan {
    /// True when the plan faults nothing — the wrapper becomes a
    /// structural pass-through (byte-identical to the bare backend).
    pub fn is_empty(&self) -> bool {
        self.drop.is_none()
            && self.duplicate.is_none()
            && self.reorder.is_none()
            && self.partition.is_none()
            && self.scheduler == Scheduler::Honest
    }
}

fn fmt_rate(ppm: u32) -> String {
    format!("{}", f64::from(ppm) / PPM as f64)
}

fn parse_rate(val: &str) -> Result<u32, String> {
    let p: f64 = val.parse().map_err(|_| format!("bad fault rate '{val}' (want 0..=1)"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("fault rate {p} outside [0, 1]"));
    }
    Ok((p * PPM as f64).round() as u32)
}

/// Canonical textual form: `none` for the empty plan, else comma-joined
/// components `drop:p=R[:from=A][:until=B]`, `dup:p=R`,
/// `reorder:p=R[:budget=K]`, `partition:A..B=S`, `sched=adversarial`.
impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut parts: Vec<String> = Vec::new();
        if let Some(d) = &self.drop {
            let mut s = format!("drop:p={}", fmt_rate(d.ppm));
            if d.from != 0 {
                s.push_str(&format!(":from={}", d.from));
            }
            if d.until != u64::MAX {
                s.push_str(&format!(":until={}", d.until));
            }
            parts.push(s);
        }
        if let Some(d) = &self.duplicate {
            parts.push(format!("dup:p={}", fmt_rate(d.ppm)));
        }
        if let Some(r) = &self.reorder {
            let mut s = format!("reorder:p={}", fmt_rate(r.ppm));
            if r.budget != 1 {
                s.push_str(&format!(":budget={}", r.budget));
            }
            parts.push(s);
        }
        if let Some(p) = &self.partition {
            parts.push(format!("partition:{}..{}={}", p.from, p.until, p.split));
        }
        if self.scheduler == Scheduler::Adversarial {
            parts.push("sched=adversarial".into());
        }
        f.write_str(&parts.join(","))
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        if s == "none" || s.is_empty() {
            return Ok(plan);
        }
        for part in s.split(',') {
            if let Some(params) = part.strip_prefix("drop:") {
                let mut fault = DropFault { ppm: 0, from: 0, until: u64::MAX };
                let mut saw_p = false;
                for kv in params.split(':') {
                    let (key, val) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("drop parameter '{kv}' is not key=value"))?;
                    match key {
                        "p" => {
                            fault.ppm = parse_rate(val)?;
                            saw_p = true;
                        }
                        "from" => {
                            fault.from =
                                val.parse().map_err(|_| format!("bad drop from round '{val}'"))?
                        }
                        "until" => {
                            fault.until =
                                val.parse().map_err(|_| format!("bad drop until round '{val}'"))?
                        }
                        other => return Err(format!("unknown drop parameter '{other}'")),
                    }
                }
                if !saw_p {
                    return Err("drop needs p=RATE".into());
                }
                plan.drop = Some(fault);
            } else if let Some(params) = part.strip_prefix("dup:") {
                let val = params
                    .strip_prefix("p=")
                    .ok_or_else(|| format!("dup parameter '{params}' (want p=RATE)"))?;
                plan.duplicate = Some(DupFault { ppm: parse_rate(val)? });
            } else if let Some(params) = part.strip_prefix("reorder:") {
                let mut fault = ReorderFault { ppm: 0, budget: 1 };
                let mut saw_p = false;
                for kv in params.split(':') {
                    let (key, val) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("reorder parameter '{kv}' is not key=value"))?;
                    match key {
                        "p" => {
                            fault.ppm = parse_rate(val)?;
                            saw_p = true;
                        }
                        "budget" => {
                            fault.budget =
                                val.parse().map_err(|_| format!("bad reorder budget '{val}'"))?
                        }
                        other => return Err(format!("unknown reorder parameter '{other}'")),
                    }
                }
                if !saw_p {
                    return Err("reorder needs p=RATE".into());
                }
                if fault.budget == 0 {
                    return Err("reorder budget must be >= 1".into());
                }
                plan.reorder = Some(fault);
            } else if let Some(params) = part.strip_prefix("partition:") {
                let (range, split) = params
                    .split_once('=')
                    .ok_or_else(|| format!("partition '{params}' (want FROM..UNTIL=SPLIT)"))?;
                let (from, until) = range
                    .split_once("..")
                    .ok_or_else(|| format!("bad partition window '{range}' (want FROM..UNTIL)"))?;
                let from: u64 =
                    from.parse().map_err(|_| format!("bad partition from round '{from}'"))?;
                let until: u64 =
                    until.parse().map_err(|_| format!("bad partition heal round '{until}'"))?;
                if until <= from {
                    return Err(format!("partition window {from}..{until} is empty"));
                }
                let split: usize =
                    split.parse().map_err(|_| format!("bad partition split '{split}'"))?;
                plan.partition = Some(PartitionFault { from, until, split });
            } else if let Some(val) = part.strip_prefix("sched=") {
                plan.scheduler = match val {
                    "honest" => Scheduler::Honest,
                    "adversarial" => Scheduler::Adversarial,
                    other => {
                        return Err(format!(
                            "unknown scheduler '{other}' (want honest|adversarial)"
                        ))
                    }
                };
            } else {
                return Err(format!(
                    "unknown fault component '{part}' (want drop:|dup:|reorder:|partition:|sched=)"
                ));
            }
        }
        Ok(plan)
    }
}

/// Per-run fault accounting, surfaced through
/// [`crate::metrics::Metrics::faults`] as `faults_*` sweep observables.
/// Like the latency block, these measure the injected substrate, not the
/// protocol, and are excluded from `Metrics` equality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Copies discarded by the drop fault.
    pub dropped: u64,
    /// Extra copies minted by the duplication fault.
    pub duplicated: u64,
    /// Copies deferred out of order by the reorder fault.
    pub reordered: u64,
    /// Copies held at the partition cut.
    pub partitioned: u64,
    /// Send rounds that fell inside an active partition window.
    pub partition_rounds: u64,
    /// Held copies the run ended before releasing.
    pub undelivered: u64,
}

/// The fault-injection wrapper; see the [module docs](self).
pub struct FaultyTransport<M> {
    inner: Box<dyn Transport<M>>,
    plan: FaultPlan,
    n: usize,
    seed: u64,
    /// Deferred copies keyed by the submit round they re-join.
    held: BTreeMap<u64, Vec<Envelope<M>>>,
    stats: FaultStats,
}

impl<M: Message> FaultyTransport<M> {
    /// Wraps `inner`, deriving the fault seed from the run seed (whitened
    /// so fault rolls are independent of the latency transport's delay
    /// hashes over the same message/receiver pairs).
    pub fn new(inner: Box<dyn Transport<M>>, plan: FaultPlan, n: usize, seed: u64) -> Self {
        FaultyTransport {
            inner,
            plan,
            n,
            seed: splitmix64(seed ^ FAULT_SEED_WHITENER),
            held: BTreeMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// The per-copy fault roll: a pure function of the fault seed, the
    /// fault kind, the message id, and the receiver — never of the inner
    /// backend or iteration order.
    fn roll(&self, tag: u64, id: u64, receiver: usize) -> u64 {
        splitmix64(
            self.seed
                ^ splitmix64(tag)
                ^ splitmix64(id)
                ^ splitmix64(receiver as u64 ^ 0x6A09_E667),
        )
    }

    fn hits(&self, tag: u64, ppm: u32, id: u64, receiver: usize) -> bool {
        ppm > 0 && self.roll(tag, id, receiver) % PPM < u64::from(ppm)
    }

    fn held_count(&self) -> usize {
        self.held.values().map(Vec::len).sum()
    }

    /// Applies the plan to one per-receiver copy, pushing survivors onto
    /// `out` and deferrals into `held`.
    fn fault_copy(&mut self, round: u64, copy: Envelope<M>, out: &mut Vec<Envelope<M>>) {
        let plan = self.plan;
        let id = copy.id.0;
        let receiver = match copy.to {
            Recipient::One(node) => node.index(),
            // Copies are split before faulting; unreachable in practice.
            Recipient::All => 0,
        };
        if let Some(p) = plan.partition {
            if (p.from..p.until).contains(&round) {
                let sender_side = copy.from.index() < p.split;
                let receiver_side = receiver < p.split;
                if sender_side != receiver_side {
                    self.stats.partitioned += 1;
                    self.held.entry(p.until).or_default().push(copy);
                    return;
                }
            }
        }
        if let Some(d) = plan.drop {
            if (d.from..d.until).contains(&round) && self.hits(TAG_DROP, d.ppm, id, receiver) {
                self.stats.dropped += 1;
                return;
            }
        }
        let duplicate = match plan.duplicate {
            Some(d) if self.hits(TAG_DUP, d.ppm, id, receiver) => {
                self.stats.duplicated += 1;
                Some(copy.clone())
            }
            _ => None,
        };
        if let Some(r) = plan.reorder {
            if self.hits(TAG_REORDER, r.ppm, id, receiver) {
                self.stats.reordered += 1;
                let defer = match plan.scheduler {
                    // An extra hash (not the decision roll) picks the
                    // deferral uniformly from 1..=budget.
                    Scheduler::Honest => {
                        1 + self.roll(TAG_REORDER ^ 0xD1FF, id, receiver) % r.budget
                    }
                    // The adversary always takes the full legal budget.
                    Scheduler::Adversarial => r.budget,
                };
                self.held.entry(round + defer).or_default().push(copy);
                if let Some(dup) = duplicate {
                    out.push(dup);
                }
                return;
            }
        }
        out.push(copy);
        if let Some(dup) = duplicate {
            out.push(dup);
        }
    }
}

impl<M: Message + Send + Sync + 'static> Transport<M> for FaultyTransport<M> {
    fn submit(&mut self, round: Round, envelopes: Vec<Envelope<M>>) {
        if self.plan.is_empty() {
            // Structural pass-through: the bare backend sees exactly the
            // bytes it would have seen without the wrapper.
            return self.inner.submit(round, envelopes);
        }
        let r = round.0;
        if let Some(p) = self.plan.partition {
            if (p.from..p.until).contains(&r) {
                self.stats.partition_rounds += 1;
            }
        }
        // Copies released from holds re-join ahead of fresh traffic (their
        // ids are older) and are not re-faulted.
        let mut out: Vec<Envelope<M>> = Vec::new();
        let release: Vec<u64> =
            self.held.range(..=r).map(|(release_round, _)| *release_round).collect();
        for key in release {
            out.extend(self.held.remove(&key).expect("key came from the map"));
        }
        for env in envelopes {
            match env.to {
                Recipient::All => {
                    for receiver in 0..self.n {
                        let copy = Envelope {
                            id: env.id,
                            from: env.from,
                            to: Recipient::One(NodeId(receiver)),
                            round: env.round,
                            honest_send: env.honest_send,
                            removed: env.removed,
                            msg: Arc::clone(&env.msg),
                        };
                        self.fault_copy(r, copy, &mut out);
                    }
                }
                Recipient::One(_) => self.fault_copy(r, env, &mut out),
            }
        }
        if self.plan.scheduler == Scheduler::Adversarial {
            // Corrupt traffic front-runs every inbox; honest traffic lands
            // latest-send-first. Round placement is untouched, so this
            // stays inside the synchronous model's legal envelope.
            out.sort_by_key(|e| {
                (e.honest_send, if e.honest_send { u64::MAX - e.id.0 } else { e.id.0 })
            });
        }
        self.inner.submit(round, out);
    }

    fn deliver(&mut self, round: Round, inboxes: &mut [Vec<Incoming<M>>]) {
        self.inner.deliver(round, inboxes);
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight() + self.held_count()
    }

    fn finish(&mut self, rounds_used: u64) -> Option<TransportStats> {
        let leftover = self.held_count() as u64;
        self.stats.undelivered += leftover;
        self.held.clear();
        let inner_stats = self.inner.finish(rounds_used);
        match inner_stats {
            Some(mut stats) => {
                stats.undelivered += leftover;
                Some(stats)
            }
            None => None,
        }
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        if self.plan.is_empty() {
            None
        } else {
            Some(self.stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgId;
    use crate::transport::lockstep::LockstepTransport;

    #[derive(Clone, Debug, PartialEq)]
    struct Word(u64);

    impl Message for Word {
        fn size_bits(&self) -> usize {
            64
        }
    }

    fn env(id: u64, from: usize, to: Recipient, payload: u64) -> Envelope<Word> {
        Envelope {
            id: MsgId(id),
            from: NodeId(from),
            to,
            round: Round(0),
            honest_send: true,
            removed: false,
            msg: Arc::new(Word(payload)),
        }
    }

    fn faulty(plan: &str, n: usize, seed: u64) -> FaultyTransport<Word> {
        FaultyTransport::new(
            Box::new(LockstepTransport::new()),
            plan.parse().expect("plan parses"),
            n,
            seed,
        )
    }

    fn inbox_payloads(inboxes: &[Vec<Incoming<Word>>], i: usize) -> Vec<u64> {
        inboxes[i].iter().map(|m| m.msg.0).collect()
    }

    #[test]
    fn plan_round_trips_through_str() {
        let plans = [
            "none",
            "drop:p=0.25",
            "drop:p=0.1:from=2:until=6",
            "dup:p=0.5",
            "reorder:p=0.5:budget=3",
            "partition:2..5=8",
            "sched=adversarial",
            "drop:p=0.25,dup:p=0.1,reorder:p=0.5:budget=2,partition:0..4=4,sched=adversarial",
        ];
        for text in plans {
            let plan: FaultPlan = text.parse().expect(text);
            assert_eq!(plan.to_string(), text, "canonical form");
            let reparsed: FaultPlan = plan.to_string().parse().expect("round trip");
            assert_eq!(reparsed, plan);
        }
        assert!("none".parse::<FaultPlan>().unwrap().is_empty());
        assert!(!"drop:p=0.25".parse::<FaultPlan>().unwrap().is_empty());
    }

    #[test]
    fn plan_parse_rejects_malformed() {
        for bad in [
            "garbage",
            "drop:p=1.5",
            "drop:p=-0.1",
            "drop:from=2",
            "dup:rate=0.5",
            "reorder:p=0.5:budget=0",
            "partition:5..2=4",
            "partition:2..5",
            "sched=chaotic",
            "drop:p=abc",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "'{bad}' should be rejected");
        }
    }

    #[test]
    fn empty_plan_is_structural_pass_through() {
        let mut t = faulty("none", 3, 7);
        t.submit(
            Round(0),
            vec![env(0, 0, Recipient::All, 10), env(1, 1, Recipient::One(NodeId(2)), 11)],
        );
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        assert_eq!(inbox_payloads(&inboxes, 0), vec![10]);
        assert_eq!(inbox_payloads(&inboxes, 2), vec![10, 11]);
        assert!(t.fault_stats().is_none(), "empty plan reports no fault stats");
        assert!(t.finish(1).is_none());
    }

    #[test]
    fn certain_drop_discards_everything_in_window() {
        let mut t = faulty("drop:p=1:from=1:until=2", 3, 7);
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new()];
        t.submit(Round(0), vec![env(0, 0, Recipient::All, 10)]);
        t.deliver(Round(1), &mut inboxes);
        assert_eq!(inbox_payloads(&inboxes, 1), vec![10], "round 0 is outside the window");
        inboxes.iter_mut().for_each(Vec::clear);
        t.submit(Round(1), vec![env(1, 0, Recipient::All, 11)]);
        t.deliver(Round(2), &mut inboxes);
        assert!(inboxes.iter().all(Vec::is_empty), "round 1 is inside the window");
        let stats = t.fault_stats().expect("non-empty plan");
        assert_eq!(stats.dropped, 3);
    }

    #[test]
    fn certain_duplication_doubles_every_copy() {
        let mut t = faulty("dup:p=1", 2, 7);
        t.submit(Round(0), vec![env(0, 0, Recipient::All, 10)]);
        let mut inboxes = vec![Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        assert_eq!(inbox_payloads(&inboxes, 0), vec![10, 10]);
        assert_eq!(inbox_payloads(&inboxes, 1), vec![10, 10]);
        assert_eq!(t.fault_stats().unwrap().duplicated, 2);
    }

    #[test]
    fn certain_reorder_defers_by_the_budget() {
        let mut t = faulty("reorder:p=1:budget=2,sched=adversarial", 2, 7);
        let mut inboxes = vec![Vec::new(), Vec::new()];
        t.submit(Round(0), vec![env(0, 0, Recipient::All, 10)]);
        assert_eq!(t.in_flight(), 2, "both copies held");
        t.deliver(Round(1), &mut inboxes);
        assert!(inboxes.iter().all(Vec::is_empty), "deferred past round 1");
        t.submit(Round(1), Vec::new());
        t.deliver(Round(2), &mut inboxes);
        assert!(inboxes.iter().all(Vec::is_empty), "budget 2 defers to the round-2 batch");
        t.submit(Round(2), Vec::new());
        t.deliver(Round(3), &mut inboxes);
        assert_eq!(inbox_payloads(&inboxes, 0), vec![10]);
        assert_eq!(inbox_payloads(&inboxes, 1), vec![10]);
        assert_eq!(t.fault_stats().unwrap().reordered, 2);
    }

    #[test]
    fn partition_holds_cross_cut_copies_until_heal() {
        // Nodes {0,1} | {2,3}, window 0..2: node 0's multicast reaches its
        // own side next round, the far side only after the heal.
        let mut t = faulty("partition:0..2=2", 4, 7);
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        t.submit(Round(0), vec![env(0, 0, Recipient::All, 10)]);
        t.deliver(Round(1), &mut inboxes);
        assert_eq!(inbox_payloads(&inboxes, 0), vec![10]);
        assert_eq!(inbox_payloads(&inboxes, 1), vec![10]);
        assert!(inboxes[2].is_empty() && inboxes[3].is_empty(), "cross-cut copies held");
        inboxes.iter_mut().for_each(Vec::clear);
        t.submit(Round(1), Vec::new());
        t.deliver(Round(2), &mut inboxes);
        assert!(inboxes.iter().all(Vec::is_empty), "still partitioned in round 1");
        t.submit(Round(2), vec![env(1, 2, Recipient::All, 11)]);
        t.deliver(Round(3), &mut inboxes);
        assert_eq!(inbox_payloads(&inboxes, 2), vec![10, 11], "held copy re-joins at heal");
        assert_eq!(inbox_payloads(&inboxes, 0), vec![11], "round 2 is past the window");
        let stats = t.fault_stats().unwrap();
        assert_eq!(stats.partitioned, 2);
        assert_eq!(stats.partition_rounds, 2);
    }

    #[test]
    fn adversarial_scheduler_front_runs_corrupt_traffic() {
        let mut t = faulty("sched=adversarial", 2, 7);
        let mut corrupt = env(2, 1, Recipient::All, 99);
        corrupt.honest_send = false;
        t.submit(
            Round(0),
            vec![env(0, 0, Recipient::All, 10), env(1, 0, Recipient::All, 11), corrupt],
        );
        let mut inboxes = vec![Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        // Corrupt first, honest latest-send-first.
        assert_eq!(inbox_payloads(&inboxes, 0), vec![99, 11, 10]);
        assert_eq!(inbox_payloads(&inboxes, 1), vec![99, 11, 10]);
    }

    #[test]
    fn fault_rolls_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<Vec<u64>> {
            let mut t = faulty("drop:p=0.5,dup:p=0.3", 4, seed);
            let envs: Vec<_> = (0..32).map(|i| env(i, 0, Recipient::All, i)).collect();
            t.submit(Round(0), envs);
            let mut inboxes = vec![Vec::new(); 4];
            t.deliver(Round(1), &mut inboxes);
            (0..4).map(|i| inbox_payloads(&inboxes, i)).collect()
        };
        assert_eq!(run(42), run(42), "same seed replays the same faults");
        assert_ne!(run(42), run(43), "different seed moves the faults");
    }

    #[test]
    fn unreleased_holds_count_as_undelivered() {
        let mut t = faulty("partition:0..100=1", 2, 7);
        t.submit(Round(0), vec![env(0, 0, Recipient::All, 10)]);
        let mut inboxes = vec![Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        assert_eq!(t.in_flight(), 1, "the cross-cut copy is held");
        assert!(t.finish(1).is_none(), "lockstep inner keeps no clock");
        assert_eq!(t.fault_stats().unwrap().undelivered, 1);
    }
}
