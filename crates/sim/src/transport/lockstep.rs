//! The classic synchronous transport, extracted from the engine's delivery
//! loop: everything sent in round `r` arrives at the start of round `r + 1`,
//! in send (message-id) order, a multicast sharing one `Arc` across all `n`
//! recipients.
//!
//! This file **is** the byte-identity contract for the transport seam: the
//! fan-out below is line-for-line the pre-seam engine's phase 5, so every
//! committed baseline reproduces `cmp`-identically through the seam. It
//! keeps no clock and reports no stats, leaving lockstep reports free of
//! latency observables.

use std::sync::Arc;

use crate::ids::Round;
use crate::message::{Envelope, Incoming, Message, Recipient};

use super::{Transport, TransportStats};

/// See the [module docs](self).
#[derive(Default)]
pub struct LockstepTransport<M> {
    /// The one round currently in flight (submit and deliver alternate, so
    /// at most one round's envelopes are ever held).
    queued: Vec<Envelope<M>>,
}

impl<M> LockstepTransport<M> {
    /// Builds the transport (stateless beyond the one-round queue).
    pub fn new() -> LockstepTransport<M> {
        LockstepTransport { queued: Vec::new() }
    }
}

impl<M: Message + Send + Sync> Transport<M> for LockstepTransport<M> {
    fn submit(&mut self, _round: Round, envelopes: Vec<Envelope<M>>) {
        debug_assert!(self.queued.is_empty(), "lockstep holds at most one round");
        self.queued = envelopes;
    }

    fn deliver(&mut self, _round: Round, inboxes: &mut [Vec<Incoming<M>>]) {
        for env in self.queued.drain(..) {
            match env.to {
                Recipient::All => {
                    for inbox in inboxes.iter_mut() {
                        inbox.push(Incoming { from: env.from, msg: Arc::clone(&env.msg) });
                    }
                }
                Recipient::One(target) => {
                    // The engine validated the range before submitting.
                    inboxes[target.index()].push(Incoming { from: env.from, msg: env.msg });
                }
            }
        }
    }

    fn in_flight(&self) -> usize {
        // Empty whenever the engine gauges residency (deliver drained it).
        self.queued.len()
    }

    fn finish(&mut self, _rounds_used: u64) -> Option<TransportStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::message::MsgId;

    #[derive(Clone, Debug, PartialEq)]
    struct Word(u64);

    impl Message for Word {
        fn size_bits(&self) -> usize {
            64
        }
    }

    fn env(id: u64, from: usize, to: Recipient, payload: u64) -> Envelope<Word> {
        Envelope {
            id: MsgId(id),
            from: NodeId(from),
            to,
            round: Round(0),
            honest_send: true,
            removed: false,
            msg: Arc::new(Word(payload)),
        }
    }

    #[test]
    fn delivers_everything_next_round_in_send_order() {
        let mut t = LockstepTransport::new();
        t.submit(
            Round(0),
            vec![
                env(0, 0, Recipient::All, 10),
                env(1, 1, Recipient::One(NodeId(2)), 11),
                env(2, 2, Recipient::All, 12),
            ],
        );
        assert_eq!(t.in_flight(), 3);
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        assert_eq!(t.in_flight(), 0);
        let payloads =
            |i: usize| inboxes[i].iter().map(|m: &Incoming<Word>| m.msg.0).collect::<Vec<_>>();
        assert_eq!(payloads(0), vec![10, 12]);
        assert_eq!(payloads(1), vec![10, 12]);
        assert_eq!(payloads(2), vec![10, 11, 12]);
        assert!(t.finish(1).is_none(), "lockstep has no clock");
    }

    #[test]
    fn multicast_shares_one_arc() {
        let mut t = LockstepTransport::new();
        let e = env(0, 0, Recipient::All, 5);
        let payload = Arc::clone(&e.msg);
        t.submit(Round(0), vec![e]);
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        // 1 (ours) + 4 inbox clones, no deep copies.
        assert_eq!(Arc::strong_count(&payload), 5);
    }
}
