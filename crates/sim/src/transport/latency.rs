//! Simulated-clock latency transport with partial synchrony.
//!
//! # Timing model
//!
//! A round occupies `round_ms` of virtual time: node steps for round `r`
//! happen at `t = r · round_ms`, and the round's sends become visible on the
//! wire at the round's end, `t_send = (r + 1) · round_ms` — nodes pace
//! themselves by timeout, stepping into the next round whether or not
//! traffic has arrived (there is no global delivery barrier). Each
//! `(message, receiver)` copy then travels independently:
//!
//! ```text
//! depart  = max(t_send, gst_ms)          // pre-GST the network may stall
//! arrival = depart + delay(seed, msg, receiver)
//! deliver_round = ceil(arrival / round_ms)
//! ```
//!
//! A copy is placed in its receiver's inbox at the start of
//! `deliver_round`. With a zero-delay distribution and `gst_ms = 0` this
//! collapses exactly to lockstep (`deliver_round = r + 1` always), which is
//! what the transport-equivalence property tests pin down. Any copy with
//! `deliver_round > r + 1` is **late** by the classic synchronous bound —
//! the receiver has already timed out past the round that lockstep would
//! have delivered it into, so the protocol sees it stale (or, if the run
//! ends first, never sees it at all).
//!
//! # Determinism
//!
//! Delays come from [`super::link_delay_ms`] — a pure function of
//! `(seed, message id, receiver)` — and all round mapping is exact integer
//! arithmetic, so a report is a pure function of the run seed: replaying the
//! same seed, at any thread count, reproduces it byte-identically.

use std::sync::Arc;

use crate::ids::{NodeId, Round};
use crate::message::{Envelope, Incoming, Message, Recipient};

use super::{link_delay_ms, percentile_ms, DelayDist, Transport, TransportStats};

/// One in-flight message copy (a multicast fans into `n` flights, each with
/// its own link delay).
struct Flight<M> {
    deliver_round: u64,
    /// Observed delay (ms): arrival − nominal send time, GST hold included.
    observed_ms: u64,
    late: bool,
    from: NodeId,
    receiver: usize,
    msg: Arc<M>,
}

/// See the [module docs](self).
pub struct LatencyTransport<M> {
    n: usize,
    round_ms: u64,
    gst_ms: u64,
    dist: DelayDist,
    seed: u64,
    /// Send order (= message-id order within a round, rounds in sequence);
    /// delivery preserves this order among copies maturing the same round.
    in_flight: Vec<Flight<M>>,
    /// Observed delay of every delivered copy (ms) for the percentile
    /// stats.
    delivered_ms: Vec<f64>,
    late_deliveries: u64,
}

impl<M> LatencyTransport<M> {
    /// Builds the transport for an `n`-node population (multicasts fan out
    /// at submission, one independently-delayed copy per receiver). `seed`
    /// should be the run seed — the transport whitens it, so the
    /// adversary's and nodes' RNG streams stay untouched.
    pub fn new(
        n: usize,
        round_ms: u64,
        gst_ms: u64,
        dist: DelayDist,
        seed: u64,
    ) -> LatencyTransport<M> {
        assert!(round_ms > 0, "round_ms must be positive");
        LatencyTransport {
            n,
            round_ms,
            gst_ms,
            dist,
            seed: super::splitmix64(seed ^ 0x7EA5_9057_11E7_C0DE),
            in_flight: Vec::new(),
            delivered_ms: Vec::new(),
            late_deliveries: 0,
        }
    }

    /// Computes one copy's flight plan; exact integer arithmetic throughout.
    fn flight(&self, round: Round, env: &Envelope<M>, receiver: usize) -> Flight<M> {
        let t_send = (round.0 + 1) * self.round_ms;
        let depart = t_send.max(self.gst_ms);
        let delay_ms = link_delay_ms(self.seed, env.id.0, receiver, &self.dist) as u64;
        let arrival = depart + delay_ms;
        let deliver_round = arrival.div_ceil(self.round_ms).max(round.0 + 1);
        Flight {
            deliver_round,
            observed_ms: arrival - t_send,
            late: deliver_round > round.0 + 1,
            from: env.from,
            receiver,
            msg: Arc::clone(&env.msg),
        }
    }
}

impl<M: Message + Send + Sync> Transport<M> for LatencyTransport<M> {
    fn submit(&mut self, round: Round, envelopes: Vec<Envelope<M>>) {
        for env in envelopes {
            match env.to {
                Recipient::All => {
                    for receiver in 0..self.n {
                        self.in_flight.push(self.flight(round, &env, receiver));
                    }
                }
                Recipient::One(target) => {
                    // The engine validated the range before submitting.
                    self.in_flight.push(self.flight(round, &env, target.index()));
                }
            }
        }
    }

    fn deliver(&mut self, round: Round, inboxes: &mut [Vec<Incoming<M>>]) {
        let mut kept = Vec::with_capacity(self.in_flight.len());
        for fl in self.in_flight.drain(..) {
            if fl.deliver_round <= round.0 {
                self.delivered_ms.push(fl.observed_ms as f64);
                if fl.late {
                    self.late_deliveries += 1;
                }
                inboxes[fl.receiver].push(Incoming { from: fl.from, msg: fl.msg });
            } else {
                kept.push(fl);
            }
        }
        self.in_flight = kept;
    }

    fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    fn finish(&mut self, rounds_used: u64) -> Option<TransportStats> {
        let delivered = self.delivered_ms.len() as u64;
        let mut delays = std::mem::take(&mut self.delivered_ms);
        Some(TransportStats {
            round_end_ms: (0..rounds_used).map(|r| ((r + 1) * self.round_ms) as f64).collect(),
            delay_p50_ms: percentile_ms(&mut delays, 50.0),
            delay_p95_ms: percentile_ms(&mut delays, 95.0),
            delay_p99_ms: percentile_ms(&mut delays, 99.0),
            delivered,
            late_deliveries: self.late_deliveries,
            undelivered: self.in_flight.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgId;

    #[derive(Clone, Debug, PartialEq)]
    struct Word(u64);

    impl Message for Word {
        fn size_bits(&self) -> usize {
            64
        }
    }

    fn env(id: u64, from: usize, to: Recipient, payload: u64) -> Envelope<Word> {
        Envelope {
            id: MsgId(id),
            from: NodeId(from),
            to,
            round: Round(0),
            honest_send: true,
            removed: false,
            msg: Arc::new(Word(payload)),
        }
    }

    fn payloads(inbox: &[Incoming<Word>]) -> Vec<u64> {
        inbox.iter().map(|m| m.msg.0).collect()
    }

    #[test]
    fn zero_delay_no_gst_behaves_like_lockstep() {
        let mut t = LatencyTransport::new(3, 10, 0, DelayDist::Zero, 42);
        t.submit(
            Round(0),
            vec![
                env(0, 0, Recipient::All, 10),
                env(1, 1, Recipient::One(NodeId(2)), 11),
                env(2, 2, Recipient::All, 12),
            ],
        );
        let mut inboxes = vec![Vec::new(), Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        assert_eq!(payloads(&inboxes[0]), vec![10, 12]);
        assert_eq!(payloads(&inboxes[1]), vec![10, 12]);
        assert_eq!(payloads(&inboxes[2]), vec![10, 11, 12]);
        assert_eq!(t.in_flight(), 0);
        let stats = t.finish(2).expect("latency transport keeps a clock");
        assert_eq!(stats.delivered, 7);
        assert_eq!(stats.late_deliveries, 0);
        assert_eq!(stats.undelivered, 0);
        assert_eq!(stats.delay_p99_ms, 0.0);
        assert_eq!(stats.round_end_ms, vec![10.0, 20.0]);
    }

    #[test]
    fn long_delays_arrive_late_and_are_counted() {
        // round_ms = 10, every link delayed 25ms: sent at t=10, arrives
        // t=35 → start of round 4 (ceil(35/10) = 4), two rounds late.
        let dist = DelayDist::Uniform { lo_ms: 25, hi_ms: 25 };
        let mut t = LatencyTransport::new(2, 10, 0, dist, 7);
        t.submit(Round(0), vec![env(0, 0, Recipient::All, 1)]);
        let mut inboxes = vec![Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        assert!(inboxes.iter().all(|b| b.is_empty()), "too early");
        assert_eq!(t.in_flight(), 2);
        t.deliver(Round(4), &mut inboxes);
        assert_eq!(payloads(&inboxes[0]), vec![1]);
        assert_eq!(payloads(&inboxes[1]), vec![1]);
        let stats = t.finish(5).unwrap();
        assert_eq!(stats.late_deliveries, 2);
        assert_eq!(stats.delay_p50_ms, 25.0);
    }

    #[test]
    fn pre_gst_sends_are_held_until_stabilization() {
        // GST at t=100: a round-0 send (t_send = 10) departs at 100 and
        // (zero link delay) arrives at start of round 10; observed delay is
        // the 90ms hold.
        let mut t = LatencyTransport::new(1, 10, 100, DelayDist::Zero, 3);
        t.submit(Round(0), vec![env(0, 0, Recipient::All, 9)]);
        let mut inboxes = vec![Vec::new()];
        t.deliver(Round(9), &mut inboxes);
        assert!(inboxes[0].is_empty());
        t.deliver(Round(10), &mut inboxes);
        assert_eq!(payloads(&inboxes[0]), vec![9]);
        let stats = t.finish(11).unwrap();
        assert_eq!(stats.late_deliveries, 1);
        assert_eq!(stats.delay_p50_ms, 90.0);
        // Post-GST sends are back to the synchronous bound.
        let mut t = LatencyTransport::new(1, 10, 100, DelayDist::Zero, 3);
        t.submit(Round(20), vec![env(0, 0, Recipient::All, 9)]);
        let mut inboxes = vec![Vec::new()];
        t.deliver(Round(21), &mut inboxes);
        assert_eq!(payloads(&inboxes[0]), vec![9]);
        assert_eq!(t.finish(22).unwrap().late_deliveries, 0);
    }

    #[test]
    fn undelivered_copies_are_reported_not_lost() {
        let dist = DelayDist::Uniform { lo_ms: 1000, hi_ms: 1000 };
        let mut t = LatencyTransport::new(2, 10, 0, dist, 1);
        t.submit(Round(0), vec![env(0, 0, Recipient::All, 1)]);
        let mut inboxes = vec![Vec::new(), Vec::new()];
        t.deliver(Round(1), &mut inboxes);
        let stats = t.finish(1).unwrap();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.undelivered, 2);
    }

    #[test]
    fn same_seed_same_schedule() {
        let dist = DelayDist::Uniform { lo_ms: 0, hi_ms: 40 };
        let schedule = |seed: u64| -> Vec<u64> {
            let t = LatencyTransport::<Word>::new(4, 10, 0, dist, seed);
            (0..20u64)
                .map(|id| t.flight(Round(3), &env(id, 0, Recipient::All, 0), 2).deliver_round)
                .collect()
        };
        assert_eq!(schedule(9), schedule(9));
        assert_ne!(schedule(9), schedule(10), "different seed should reshuffle delays");
    }
}
