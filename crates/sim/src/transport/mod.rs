//! The sans-I/O transport seam: *who computes* is the engine's business,
//! *when messages arrive* is the transport's.
//!
//! The round engine ([`crate::engine::Sim`]) steps pure protocol state
//! machines and hands every round's surviving envelopes to a [`Transport`];
//! the transport alone decides at which round each copy lands in which
//! inbox, and (optionally) what that delivery cost in clock time. Three
//! backends ship behind the one trait:
//!
//! * [`lockstep::LockstepTransport`] — the classic synchronous model:
//!   everything sent in round `r` arrives at the start of round `r + 1`, in
//!   send order. Byte-identical to the pre-seam engine, and the only backend
//!   the sparse population engine composes with.
//! * [`latency::LatencyTransport`] — a simulated-clock partial-synchrony
//!   model: each round occupies `round_ms` of virtual time (nodes pace
//!   themselves by timeout, not by a global barrier), every `(message,
//!   receiver)` link samples a delay from [`DelayDist`], and deliveries
//!   before the global stabilization time ([`TransportSpec::Latency`]'s
//!   `gst_ms`) are held until GST. Fully deterministic: delays are a pure
//!   function of `(seed, message id, receiver)`, so reports replay
//!   byte-identically and do not depend on iteration order or thread count.
//! * `ba-net`'s TCP loopback transport — real sockets, real wall-clock
//!   delays, one reader task per node. Lives outside `ba-sim` so the
//!   simulation core itself stays free of I/O.
//!
//! A fourth, composable layer wraps any of the three:
//! [`fault::FaultyTransport`] applies a declarative, seed-deterministic
//! [`fault::FaultPlan`] — drops, duplication, bounded reordering,
//! partitions with a heal round, and an adversarial scheduler — selected
//! via [`TransportSpec::Faulty`]; see `docs/FAULTS.md`.
//!
//! Delivery-delay and commit-latency percentiles surface through
//! [`TransportStats`] into [`crate::metrics::Metrics::latency`]; like the
//! engine-memory gauges they are *measurements of the execution substrate*,
//! not protocol observables, and are excluded from `Metrics` equality.

pub mod fault;
pub mod latency;
pub mod lockstep;

use crate::ids::Round;
use crate::message::{Envelope, Incoming, Message};

use fault::{FaultPlan, FaultStats};

/// Declarative transport selection carried by `SimConfig` (and, upstream, by
/// benchmark scenarios and the shared experiment CLI).
///
/// `Lockstep` and `Latency` are realized inside `ba-sim`; `Tcp` names a
/// backend that needs real sockets and is constructed by `ba-net` (the
/// engine refuses to instantiate it itself — see `Sim::new`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TransportSpec {
    /// Deterministic in-memory lockstep (the default; the paper's model).
    #[default]
    Lockstep,
    /// Simulated-clock latency model with partial synchrony.
    Latency {
        /// Virtual duration of one protocol round in milliseconds: nodes
        /// step at `t = r · round_ms` and time out into round `r + 1` at
        /// `t = (r + 1) · round_ms` whether or not traffic arrived.
        round_ms: u64,
        /// Global stabilization time. Messages whose nominal arrival falls
        /// before `gst_ms` are held until GST *then* incur their link delay
        /// — before GST the network is allowed to be arbitrarily slow.
        gst_ms: u64,
        /// Per-link delay distribution, sampled deterministically per
        /// `(message, receiver)`.
        dist: DelayDist,
    },
    /// Real TCP loopback delivery (constructed by `ba-net`): every timing
    /// number is measured wall clock, so this variant carries no knobs.
    Tcp,
    /// Any base backend wrapped in the deterministic fault-injection
    /// layer ([`fault::FaultyTransport`]). A `Faulty` spec whose plan is
    /// empty routes through the wrapper but is byte-identical to the bare
    /// inner backend (the anchoring identity, asserted in CI).
    Faulty {
        /// The wrapped delivery backend.
        inner: BaseTransport,
        /// The declarative fault plan.
        plan: FaultPlan,
    },
}

/// The backends a [`TransportSpec::Faulty`] wrapper can enclose — the
/// three base variants of [`TransportSpec`], minus `Faulty` itself (fault
/// layers do not nest).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaseTransport {
    /// See [`TransportSpec::Lockstep`].
    Lockstep,
    /// See [`TransportSpec::Latency`].
    Latency {
        /// Virtual duration of one protocol round in milliseconds.
        round_ms: u64,
        /// Global stabilization time in milliseconds.
        gst_ms: u64,
        /// Per-link delay distribution.
        dist: DelayDist,
    },
    /// See [`TransportSpec::Tcp`].
    Tcp,
}

impl From<BaseTransport> for TransportSpec {
    fn from(base: BaseTransport) -> TransportSpec {
        match base {
            BaseTransport::Lockstep => TransportSpec::Lockstep,
            BaseTransport::Latency { round_ms, gst_ms, dist } => {
                TransportSpec::Latency { round_ms, gst_ms, dist }
            }
            BaseTransport::Tcp => TransportSpec::Tcp,
        }
    }
}

impl TryFrom<TransportSpec> for BaseTransport {
    type Error = String;

    fn try_from(spec: TransportSpec) -> Result<BaseTransport, String> {
        match spec {
            TransportSpec::Lockstep => Ok(BaseTransport::Lockstep),
            TransportSpec::Latency { round_ms, gst_ms, dist } => {
                Ok(BaseTransport::Latency { round_ms, gst_ms, dist })
            }
            TransportSpec::Tcp => Ok(BaseTransport::Tcp),
            TransportSpec::Faulty { .. } => Err("fault layers do not nest".into()),
        }
    }
}

/// Default virtual round duration (ms) when a latency/tcp spec is built
/// without an explicit value.
pub const DEFAULT_ROUND_MS: u64 = 10;

impl TransportSpec {
    /// A latency spec with the default round duration, no GST, zero delay —
    /// the configuration provably equivalent to lockstep.
    pub fn latency_zero() -> TransportSpec {
        TransportSpec::Latency { round_ms: DEFAULT_ROUND_MS, gst_ms: 0, dist: DelayDist::Zero }
    }

    /// Canonical backend name (`lockstep` / `latency` / `tcp` / `faulty`).
    pub fn kind(&self) -> &'static str {
        match self {
            TransportSpec::Lockstep => "lockstep",
            TransportSpec::Latency { .. } => "latency",
            TransportSpec::Tcp => "tcp",
            TransportSpec::Faulty { .. } => "faulty",
        }
    }

    /// Wraps this spec (or re-plans an already-`Faulty` spec) with `plan`.
    pub fn with_fault_plan(self, plan: FaultPlan) -> TransportSpec {
        match self {
            TransportSpec::Faulty { inner, .. } => TransportSpec::Faulty { inner, plan },
            base => TransportSpec::Faulty {
                inner: BaseTransport::try_from(base).expect("non-faulty specs always convert"),
                plan,
            },
        }
    }
}

/// Canonical textual form, accepted back by [`std::str::FromStr`]:
/// `lockstep`, `tcp`, `latency:round_ms=10,gst_ms=0,dist=uniform:1..5`,
/// `faulty:<plan>;<inner>` (a `;` separates the plan from the wrapped
/// spec since both use `:` and `,` internally), e.g.
/// `faulty:drop:p=0.25;lockstep` or `faulty:none;tcp`.
impl std::fmt::Display for TransportSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportSpec::Lockstep => f.write_str("lockstep"),
            TransportSpec::Latency { round_ms, gst_ms, dist } => {
                write!(f, "latency:round_ms={round_ms},gst_ms={gst_ms},dist={dist}")
            }
            TransportSpec::Tcp => f.write_str("tcp"),
            TransportSpec::Faulty { inner, plan } => {
                write!(f, "faulty:{plan};{}", TransportSpec::from(*inner))
            }
        }
    }
}

impl std::str::FromStr for TransportSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<TransportSpec, String> {
        let (kind, rest) = match s.split_once(':') {
            Some((k, r)) => (k, Some(r)),
            None => (s, None),
        };
        match kind {
            "lockstep" => match rest {
                None | Some("") => Ok(TransportSpec::Lockstep),
                Some(r) => Err(format!("lockstep takes no parameters (got '{r}')")),
            },
            "latency" => {
                let mut round_ms = DEFAULT_ROUND_MS;
                let mut gst_ms = 0u64;
                let mut dist = DelayDist::Zero;
                for part in rest.unwrap_or("").split(',').filter(|p| !p.is_empty()) {
                    let (key, val) = part
                        .split_once('=')
                        .ok_or_else(|| format!("latency parameter '{part}' is not key=value"))?;
                    match key {
                        "round_ms" => {
                            round_ms = val
                                .parse()
                                .map_err(|_| format!("bad round_ms '{val}' (want integer ms)"))?
                        }
                        "gst_ms" => {
                            gst_ms = val
                                .parse()
                                .map_err(|_| format!("bad gst_ms '{val}' (want integer ms)"))?
                        }
                        "dist" => dist = val.parse()?,
                        other => return Err(format!("unknown latency parameter '{other}'")),
                    }
                }
                if round_ms == 0 {
                    return Err("round_ms must be positive".into());
                }
                Ok(TransportSpec::Latency { round_ms, gst_ms, dist })
            }
            "tcp" => match rest {
                None | Some("") => Ok(TransportSpec::Tcp),
                Some(r) => Err(format!("tcp takes no parameters (got '{r}')")),
            },
            "faulty" => {
                let body = rest.unwrap_or("");
                let (plan, inner) = body
                    .split_once(';')
                    .ok_or_else(|| format!("faulty spec '{body}' (want faulty:<plan>;<inner>)"))?;
                let plan: FaultPlan = plan.parse()?;
                let inner: TransportSpec = inner.parse()?;
                let inner = BaseTransport::try_from(inner)?;
                Ok(TransportSpec::Faulty { inner, plan })
            }
            other => Err(format!("unknown transport '{other}' (want lockstep|latency|tcp|faulty)")),
        }
    }
}

/// Per-link delay distribution for the simulated-latency transport.
///
/// Samples are a pure function of `(transport seed, message id, receiver)`
/// — see [`link_delay_ms`] — so the same seed replays the same network no
/// matter how many threads step the protocol or in which order envelopes are
/// examined. All three variants sample in exact integer arithmetic — `Exp`'s
/// inverse-CDF runs on a Q32 fixed-point base-2 logarithm instead of
/// `f64::ln`, so pinned-seed goldens are bit-identical across platforms and
/// libm implementations for every distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DelayDist {
    /// Every link delivers instantly (within the send round).
    Zero,
    /// Uniform integer delay in `[lo_ms, hi_ms]`, inclusive.
    Uniform {
        /// Minimum link delay (ms).
        lo_ms: u64,
        /// Maximum link delay (ms), `>= lo_ms`.
        hi_ms: u64,
    },
    /// Exponential delay with the given mean, truncated to whole ms.
    Exp {
        /// Mean link delay (ms).
        mean_ms: u64,
    },
}

/// Canonical textual form: `zero`, `uniform:LO..HI`, `exp:MEAN`.
impl std::fmt::Display for DelayDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DelayDist::Zero => f.write_str("zero"),
            DelayDist::Uniform { lo_ms, hi_ms } => write!(f, "uniform:{lo_ms}..{hi_ms}"),
            DelayDist::Exp { mean_ms } => write!(f, "exp:{mean_ms}"),
        }
    }
}

impl std::str::FromStr for DelayDist {
    type Err = String;

    fn from_str(s: &str) -> Result<DelayDist, String> {
        if s == "zero" {
            return Ok(DelayDist::Zero);
        }
        if let Some(range) = s.strip_prefix("uniform:") {
            let (lo, hi) = range
                .split_once("..")
                .ok_or_else(|| format!("bad uniform range '{range}' (want LO..HI)"))?;
            let lo_ms: u64 = lo.parse().map_err(|_| format!("bad uniform lower bound '{lo}'"))?;
            let hi_ms: u64 = hi.parse().map_err(|_| format!("bad uniform upper bound '{hi}'"))?;
            if hi_ms < lo_ms {
                return Err(format!("uniform range {lo_ms}..{hi_ms} is empty"));
            }
            return Ok(DelayDist::Uniform { lo_ms, hi_ms });
        }
        if let Some(mean) = s.strip_prefix("exp:") {
            let mean_ms: u64 = mean.parse().map_err(|_| format!("bad exp mean '{mean}'"))?;
            return Ok(DelayDist::Exp { mean_ms });
        }
        Err(format!("unknown delay distribution '{s}' (want zero|uniform:LO..HI|exp:MEAN)"))
    }
}

impl DelayDist {
    /// Draws a delay in milliseconds from 64 uniform bits.
    fn sample_ms(&self, bits: u64) -> f64 {
        match *self {
            DelayDist::Zero => 0.0,
            DelayDist::Uniform { lo_ms, hi_ms } => {
                // Width fits u64 (hi >= lo checked at parse/construction);
                // modulo bias is irrelevant at simulation widths.
                (lo_ms + bits % (hi_ms - lo_ms + 1)) as f64
            }
            DelayDist::Exp { mean_ms } => {
                // Inverse CDF on u = k/2^53 for k = (bits >> 11) + 1 in
                // [1, 2^53], evaluated entirely in fixed point:
                // −ln u = (53 − log2 k)·ln 2, so the delay is
                // ⌊mean · (53·2^32 − log2_q32(k)) · ln2_q32 / 2^64⌋ ms.
                // Integer-only — bit-identical on every platform, where
                // `f64::ln` may differ in the last ulp across libms.
                let k = (bits >> 11) + 1;
                let neg_log2_u_q32 = (53u64 << 32) - log2_fixed_q32(k);
                // floor(ln 2 · 2^32)
                const LN2_Q32: u128 = 2_977_044_471;
                ((mean_ms as u128 * neg_log2_u_q32 as u128 * LN2_Q32) >> 64) as f64
            }
        }
    }
}

/// `log2(x)` for `x ≥ 1` in unsigned Q32 fixed point, by the classic
/// integer square-and-shift digit recurrence: exact normalization, then 32
/// binary fraction digits from repeated squaring of the mantissa. Pure
/// integer arithmetic — no libm, no platform variance.
fn log2_fixed_q32(x: u64) -> u64 {
    debug_assert!(x >= 1);
    let int_part = 63 - u64::from(x.leading_zeros());
    // Mantissa x / 2^int_part in [1, 2), held as Q63.
    let mut m = (x as u128) << (63 - int_part);
    let mut frac = 0u64;
    for _ in 0..32 {
        m = (m * m) >> 63;
        frac <<= 1;
        if m >= 1u128 << 64 {
            frac |= 1;
            m >>= 1;
        }
    }
    (int_part << 32) | frac
}

/// `splitmix64` — the standard 64-bit finalizer used to hash
/// `(seed, message, receiver)` into link-delay bits.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic per-link delay: a pure function of the transport seed,
/// the message id, and the receiver index. Independent of inspection order,
/// thread count, and every other message — the property that makes latency
/// runs replayable.
pub fn link_delay_ms(seed: u64, msg_id: u64, receiver: usize, dist: &DelayDist) -> f64 {
    let bits = splitmix64(seed ^ splitmix64(msg_id) ^ splitmix64(receiver as u64 ^ 0x6A09_E667));
    dist.sample_ms(bits)
}

/// End-of-run measurements a transport hands back to the engine.
///
/// The engine combines `round_end_ms` with each node's output round to get
/// per-node commit latencies; delay percentiles are computed by the
/// transport itself (it alone knows every per-copy delay without the engine
/// having to retain one float per delivered message).
#[derive(Clone, Debug, Default)]
pub struct TransportStats {
    /// `round_end_ms[r]` = clock time (virtual or wall, ms since run start)
    /// at which round `r` completed — i.e. when its outputs were observable.
    pub round_end_ms: Vec<f64>,
    /// Per-copy delivery-delay percentiles (ms).
    pub delay_p50_ms: f64,
    /// 95th percentile delivery delay (ms).
    pub delay_p95_ms: f64,
    /// 99th percentile delivery delay (ms).
    pub delay_p99_ms: f64,
    /// Message copies delivered (a multicast counts once per recipient).
    pub delivered: u64,
    /// Copies that arrived later than the classic synchronous bound
    /// (start of `send_round + 1`) — the deliveries lockstep cannot express.
    pub late_deliveries: u64,
    /// Copies still undelivered when the run ended (delayed past the final
    /// round; includes pre-GST holds that never matured).
    pub undelivered: u64,
}

/// Folds a transport's end-of-run measurements together with the engine's
/// output bookkeeping into the [`LatencyStats`] that land on
/// [`crate::metrics::Metrics::latency`]: commit latency is percentiled over
/// the forever-honest nodes that produced an output, each committing at the
/// end of its output round.
pub(crate) fn finalize_latency(
    stats: TransportStats,
    output_rounds: &[Option<Round>],
    corrupt_at: &[Option<Round>],
) -> crate::metrics::LatencyStats {
    let last_end = stats.round_end_ms.last().copied().unwrap_or(0.0);
    let mut commits: Vec<f64> = output_rounds
        .iter()
        .zip(corrupt_at)
        .filter(|(_, corrupt)| corrupt.is_none())
        .filter_map(|(out, _)| *out)
        .map(|r| stats.round_end_ms.get(r.0 as usize).copied().unwrap_or(last_end))
        .collect();
    crate::metrics::LatencyStats {
        commit_p50_ms: percentile_ms(&mut commits, 50.0),
        commit_p95_ms: percentile_ms(&mut commits, 95.0),
        commit_p99_ms: percentile_ms(&mut commits, 99.0),
        delay_p50_ms: stats.delay_p50_ms,
        delay_p95_ms: stats.delay_p95_ms,
        delay_p99_ms: stats.delay_p99_ms,
        delivered: stats.delivered,
        late_deliveries: stats.late_deliveries,
        undelivered: stats.undelivered,
    }
}

/// Nearest-rank percentile of an unsorted sample (q in [0, 100]).
pub(crate) fn percentile_ms(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("delay samples are finite"));
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// A delivery backend: takes ownership of each round's surviving envelopes
/// and fills inboxes for subsequent rounds.
///
/// The engine upholds its half of the contract — `submit(r, ..)` is called
/// exactly once per executed round with pre-validated envelopes (no
/// `removed` flags, no out-of-range unicasts), immediately followed by
/// `deliver(r + 1, ..)` — and the transport upholds delivery: every copy
/// lands in its recipient's inbox in a deterministic order, or is counted in
/// [`TransportStats::undelivered`] if the run ends first.
pub trait Transport<M: Message>: Send {
    /// Accepts round `round`'s deliverable envelopes, in send order
    /// (ascending message id).
    fn submit(&mut self, round: Round, envelopes: Vec<Envelope<M>>);

    /// Pushes everything that arrives by the *start* of `round` into
    /// `inboxes` (indexed by node id).
    fn deliver(&mut self, round: Round, inboxes: &mut [Vec<Incoming<M>>]);

    /// Copies accepted but not yet delivered (feeds the engine's
    /// resident-message gauge).
    fn in_flight(&self) -> usize;

    /// End-of-run measurements; `None` for backends with no clock
    /// (lockstep), keeping their reports free of latency observables.
    fn finish(&mut self, rounds_used: u64) -> Option<TransportStats>;

    /// Fault-injection accounting; `Some` only for the fault wrapper with
    /// a non-empty plan (read after [`Transport::finish`], which folds
    /// still-held copies into the undelivered count), keeping unfaulted
    /// reports free of `faults_*` observables.
    fn fault_stats(&self) -> Option<FaultStats> {
        None
    }
}

/// A structured, non-panicking description of a transport that cannot make
/// progress — a peer connection that died and could not be re-established,
/// or an arrival that never came. Real-I/O backends raise it via
/// `std::panic::panic_any` (the [`Transport`] methods return `()`), so a
/// supervising layer can `catch_unwind` + `downcast` it into a quarantined
/// cell error instead of hanging or losing the detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransportError {
    /// The peer the failure is attributed to, when known.
    pub node: Option<usize>,
    /// Human-readable failure description.
    pub detail: String,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.node {
            Some(node) => write!(f, "transport failure at node {node}: {}", self.detail),
            None => write!(f, "transport failure: {}", self.detail),
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_str() {
        let specs = [
            TransportSpec::Lockstep,
            TransportSpec::Latency { round_ms: 10, gst_ms: 0, dist: DelayDist::Zero },
            TransportSpec::Latency {
                round_ms: 25,
                gst_ms: 120,
                dist: DelayDist::Uniform { lo_ms: 1, hi_ms: 9 },
            },
            TransportSpec::Latency { round_ms: 5, gst_ms: 0, dist: DelayDist::Exp { mean_ms: 7 } },
            TransportSpec::Tcp,
            TransportSpec::Faulty { inner: BaseTransport::Lockstep, plan: FaultPlan::default() },
            TransportSpec::Faulty {
                inner: BaseTransport::Tcp,
                plan: "drop:p=0.25,sched=adversarial".parse().unwrap(),
            },
            TransportSpec::Faulty {
                inner: BaseTransport::Latency {
                    round_ms: 10,
                    gst_ms: 50,
                    dist: DelayDist::Uniform { lo_ms: 1, hi_ms: 5 },
                },
                plan: "partition:2..5=8".parse().unwrap(),
            },
        ];
        for spec in specs {
            let parsed: TransportSpec = spec.to_string().parse().expect("round trip");
            assert_eq!(parsed, spec, "{spec}");
        }
        // Bare names parse with defaults.
        assert_eq!("lockstep".parse::<TransportSpec>().unwrap(), TransportSpec::Lockstep);
        assert_eq!("tcp".parse::<TransportSpec>().unwrap(), TransportSpec::Tcp);
        assert_eq!(
            "latency".parse::<TransportSpec>().unwrap(),
            TransportSpec::Latency { round_ms: DEFAULT_ROUND_MS, gst_ms: 0, dist: DelayDist::Zero }
        );
        assert_eq!(
            "latency:dist=uniform:2..4,gst_ms=50".parse::<TransportSpec>().unwrap(),
            TransportSpec::Latency {
                round_ms: DEFAULT_ROUND_MS,
                gst_ms: 50,
                dist: DelayDist::Uniform { lo_ms: 2, hi_ms: 4 }
            }
        );
    }

    #[test]
    fn spec_parse_rejects_malformed() {
        assert!("carrier-pigeon".parse::<TransportSpec>().is_err());
        assert!("lockstep:round_ms=3".parse::<TransportSpec>().is_err());
        assert!("latency:round_ms=0".parse::<TransportSpec>().is_err());
        assert!("latency:warp=9".parse::<TransportSpec>().is_err());
        assert!("latency:dist=uniform:9..2".parse::<TransportSpec>().is_err());
        assert!("latency:dist=normal:3".parse::<TransportSpec>().is_err());
        assert!("tcp:round_ms=10".parse::<TransportSpec>().is_err());
        // Faulty needs the ';' separator, a valid plan, and a base inner.
        assert!("faulty".parse::<TransportSpec>().is_err());
        assert!("faulty:drop:p=0.5".parse::<TransportSpec>().is_err());
        assert!("faulty:warp:p=0.5;lockstep".parse::<TransportSpec>().is_err());
        assert!("faulty:none;faulty:none;lockstep".parse::<TransportSpec>().is_err());
    }

    #[test]
    fn faulty_spec_parses_and_reports_kind() {
        let spec: TransportSpec = "faulty:drop:p=0.5;lockstep".parse().unwrap();
        assert_eq!(spec.kind(), "faulty");
        let TransportSpec::Faulty { inner, plan } = spec else { panic!("faulty") };
        assert_eq!(inner, BaseTransport::Lockstep);
        assert!(!plan.is_empty());
        // with_fault_plan wraps base specs and re-plans faulty ones.
        let wrapped = TransportSpec::Tcp.with_fault_plan(plan);
        assert_eq!(wrapped, TransportSpec::Faulty { inner: BaseTransport::Tcp, plan });
        let replanned = wrapped.with_fault_plan(FaultPlan::default());
        assert_eq!(
            replanned,
            TransportSpec::Faulty { inner: BaseTransport::Tcp, plan: FaultPlan::default() }
        );
    }

    #[test]
    fn transport_error_displays_with_and_without_node() {
        let e = TransportError { node: Some(3), detail: "connection reset".into() };
        assert_eq!(e.to_string(), "transport failure at node 3: connection reset");
        let e = TransportError { node: None, detail: "arrival timeout".into() };
        assert_eq!(e.to_string(), "transport failure: arrival timeout");
    }

    #[test]
    fn link_delay_is_order_independent_and_seeded() {
        let dist = DelayDist::Uniform { lo_ms: 0, hi_ms: 1000 };
        let a = link_delay_ms(42, 7, 3, &dist);
        assert_eq!(a, link_delay_ms(42, 7, 3, &dist), "same inputs, same delay");
        assert!((0.0..=1000.0).contains(&a));
        // Different seed / message / receiver each move the sample (with
        // overwhelming probability at this range; these triples do).
        assert_ne!(a, link_delay_ms(43, 7, 3, &dist));
        assert_ne!(a, link_delay_ms(42, 8, 3, &dist));
        assert_ne!(a, link_delay_ms(42, 7, 4, &dist));
    }

    #[test]
    fn zero_dist_always_zero() {
        for msg in 0..50u64 {
            assert_eq!(link_delay_ms(9, msg, 2, &DelayDist::Zero), 0.0);
        }
    }

    #[test]
    fn uniform_dist_stays_in_range() {
        let dist = DelayDist::Uniform { lo_ms: 5, hi_ms: 9 };
        let mut seen = std::collections::BTreeSet::new();
        for msg in 0..200u64 {
            let d = link_delay_ms(1, msg, 0, &dist);
            assert!((5.0..=9.0).contains(&d));
            seen.insert(d as u64);
        }
        assert!(seen.len() > 1, "200 draws should hit more than one value");
    }

    #[test]
    fn exp_dist_nonnegative_with_sane_mean() {
        let dist = DelayDist::Exp { mean_ms: 20 };
        let mut total = 0.0;
        for msg in 0..2000u64 {
            let d = link_delay_ms(3, msg, 1, &dist);
            assert!(d >= 0.0);
            total += d;
        }
        let mean = total / 2000.0;
        assert!((10.0..40.0).contains(&mean), "empirical mean {mean} far from 20");
    }

    #[test]
    fn fixed_point_log2_tracks_f64() {
        for x in [1u64, 2, 3, 7, 100, 1 << 20, (1 << 53) - 1, 1 << 53, u64::MAX] {
            let fixed = log2_fixed_q32(x) as f64 / (1u64 << 32) as f64;
            let float = (x as f64).log2();
            assert!((fixed - float).abs() < 1e-6, "log2({x}): fixed {fixed} vs f64 {float}");
        }
    }

    #[test]
    fn exp_dist_samples_are_pinned() {
        // Cross-platform determinism golden: exact draws for a pinned
        // (seed, msg, receiver) lattice. These values must never change —
        // CI's transport-matrix job replays an exp-delay run on this
        // guarantee, and any drift here invalidates every exp golden.
        let dist = DelayDist::Exp { mean_ms: 20 };
        let draws: Vec<u64> = (0..8u64).map(|msg| link_delay_ms(3, msg, 1, &dist) as u64).collect();
        assert_eq!(draws, vec![16, 11, 70, 51, 20, 4, 54, 15]);
        let dist = DelayDist::Exp { mean_ms: 7 };
        let draws: Vec<u64> = (0..8u64).map(|msg| link_delay_ms(9, msg, 2, &dist) as u64).collect();
        assert_eq!(draws, vec![5, 9, 7, 4, 1, 7, 0, 1]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile_ms(&mut s, 50.0), 2.0);
        assert_eq!(percentile_ms(&mut s, 99.0), 4.0);
        assert_eq!(percentile_ms(&mut s, 100.0), 4.0);
        assert_eq!(percentile_ms(&mut [], 50.0), 0.0);
        assert_eq!(percentile_ms(&mut [7.5], 95.0), 7.5);
    }
}
