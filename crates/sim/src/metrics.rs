//! Communication metrics implementing the paper's Definitions 6 and 7.

/// Counters gathered over one execution.
///
/// * *Multicast complexity* (Definition 7): total bits **multicast by honest
///   nodes** — messages a strongly adaptive adversary later erases still
///   count (they were sent).
/// * *Classical communication complexity* (Definition 6): a multicast to `n`
///   nodes counts as `n` pairwise messages of the same length.
///
/// Equality compares the paper-defined protocol observables only — the
/// engine-diagnostic gauges ([`Metrics::peak_live_nodes`],
/// [`Metrics::peak_resident_msgs`]) are excluded by the manual
/// [`PartialEq`] below, so a sparse execution compares equal to its dense
/// twin even though the two (correctly) resided differently in memory.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Number of multicast operations performed by so-far-honest nodes.
    pub honest_multicasts: u64,
    /// Total bits multicast by so-far-honest nodes (Definition 7).
    pub honest_multicast_bits: u64,
    /// Number of unicast messages sent by so-far-honest nodes.
    pub honest_unicasts: u64,
    /// Total bits unicast by so-far-honest nodes.
    pub honest_unicast_bits: u64,
    /// The certificate share of honest send bits ([`Message::cert_bits`]
    /// summed over honest multicasts and unicasts): what quorum
    /// certificates — the dominant constant in the paper's bit bounds —
    /// cost on the wire under the encoding in force.
    ///
    /// [`Message::cert_bits`]: crate::message::Message::cert_bits
    pub honest_cert_bits: u64,
    /// Messages sent by corrupt nodes (multicasts and unicasts), including
    /// adversary injections.
    pub corrupt_sends: u64,
    /// Total bits of corrupt sends (multicasts, unicasts, and injections).
    /// Together with [`Metrics::injected_sends`] this attributes message
    /// overhead to the adversary: honest complexity (Definitions 6/7) never
    /// includes these, but word-count-inflating attacks show up here.
    pub corrupt_bits: u64,
    /// Messages the adversary injected through `AdvCtx::inject` — the subset
    /// of [`Metrics::corrupt_sends`] that did not come from a corrupt node's
    /// own (honest-logic) outbox.
    pub injected_sends: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Adaptive corruptions performed.
    pub corruptions: u64,
    /// After-the-fact removals performed (strongly adaptive only).
    pub removals: u64,
    /// Unicasts addressed to an out-of-range node and therefore never
    /// delivered. Honest protocol code must not produce these (the engine
    /// `debug_assert!`s that); adversarial injections may, and used to be
    /// lost without a trace.
    pub dropped_sends: u64,
    /// Peak number of materialized protocol instances over the execution —
    /// `n` for the dense engine, the high-water mark of the active set for
    /// the sparse engine. An engine-memory gauge, **not** a protocol
    /// observable: excluded from equality (see the manual [`PartialEq`]).
    pub peak_live_nodes: u64,
    /// Peak resident message count: undelivered inbox entries across
    /// materialized nodes, plus (sparse engine) the retained multicast
    /// history that stands in for silent nodes' inboxes. A multicast
    /// fans out into every dense inbox but is retained once per round by
    /// the sparse engine, so the two modes gauge differently by design.
    /// Excluded from equality like [`Metrics::peak_live_nodes`].
    pub peak_resident_msgs: u64,
    /// Clock-time measurements from transports that keep a clock (the
    /// simulated-latency and TCP backends); `None` under lockstep. Like the
    /// peak gauges these describe the *delivery substrate*, not the
    /// protocol, and are excluded from equality — a zero-delay latency run
    /// compares equal to its lockstep twin.
    pub latency: Option<LatencyStats>,
    /// Fault-injection accounting from the [`fault`] transport wrapper;
    /// `None` for bare backends and for `Faulty` wraps with an empty plan.
    /// Measures the injected chaos, not the protocol, and is excluded from
    /// equality like [`Metrics::latency`] — the safety-under-chaos suite
    /// compares protocol observables across fault plans and across inner
    /// backends, which these counters describe rather than perturb.
    ///
    /// [`fault`]: crate::transport::fault
    pub faults: Option<crate::transport::fault::FaultStats>,
}

/// Per-run latency percentiles derived from a transport's clock (virtual
/// milliseconds for the simulated backend, wall-clock for TCP).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Commit latency (ms from run start to a node's first output),
    /// percentiled over the forever-honest nodes that produced an output.
    pub commit_p50_ms: f64,
    /// 95th percentile commit latency (ms).
    pub commit_p95_ms: f64,
    /// 99th percentile commit latency (ms).
    pub commit_p99_ms: f64,
    /// Per-copy delivery delay (ms past the nominal send time).
    pub delay_p50_ms: f64,
    /// 95th percentile delivery delay (ms).
    pub delay_p95_ms: f64,
    /// 99th percentile delivery delay (ms).
    pub delay_p99_ms: f64,
    /// Message copies delivered (a multicast counts once per recipient).
    pub delivered: u64,
    /// Copies that missed the classic synchronous bound (arrived after the
    /// start of `send_round + 1`) — deliveries lockstep cannot express.
    pub late_deliveries: u64,
    /// Copies still in flight when the run ended.
    pub undelivered: u64,
}

/// Manual equality: protocol observables only. The two `peak_*` gauges
/// describe how the engine resided in memory, not what the protocol did, and
/// differ between byte-identical sparse and dense executions; `latency`
/// describes how the transport's clock ran, and differs between a lockstep
/// run and its zero-delay latency twin even though the protocol behaved
/// identically.
impl PartialEq for Metrics {
    fn eq(&self, other: &Metrics) -> bool {
        self.honest_multicasts == other.honest_multicasts
            && self.honest_multicast_bits == other.honest_multicast_bits
            && self.honest_unicasts == other.honest_unicasts
            && self.honest_unicast_bits == other.honest_unicast_bits
            && self.honest_cert_bits == other.honest_cert_bits
            && self.corrupt_sends == other.corrupt_sends
            && self.corrupt_bits == other.corrupt_bits
            && self.injected_sends == other.injected_sends
            && self.rounds == other.rounds
            && self.corruptions == other.corruptions
            && self.removals == other.removals
            && self.dropped_sends == other.dropped_sends
    }
}

impl Eq for Metrics {}

impl Metrics {
    /// Classical pairwise message count (Definition 6) for an `n`-node run:
    /// each honest multicast fans out to `n` recipients.
    pub fn classical_messages(&self, n: usize) -> u64 {
        self.honest_multicasts * n as u64 + self.honest_unicasts
    }

    /// Classical pairwise bit count for an `n`-node run.
    pub fn classical_bits(&self, n: usize) -> u64 {
        self.honest_multicast_bits * n as u64 + self.honest_unicast_bits
    }

    /// Total honest sends (multicast ops + unicasts).
    pub fn honest_sends(&self) -> u64 {
        self.honest_multicasts + self.honest_unicasts
    }

    /// Merges another run's counters into this one (for aggregating sweeps).
    pub fn merge(&mut self, other: &Metrics) {
        self.honest_multicasts += other.honest_multicasts;
        self.honest_multicast_bits += other.honest_multicast_bits;
        self.honest_unicasts += other.honest_unicasts;
        self.honest_unicast_bits += other.honest_unicast_bits;
        self.honest_cert_bits += other.honest_cert_bits;
        self.corrupt_sends += other.corrupt_sends;
        self.corrupt_bits += other.corrupt_bits;
        self.injected_sends += other.injected_sends;
        self.rounds += other.rounds;
        self.corruptions += other.corruptions;
        self.removals += other.removals;
        self.dropped_sends += other.dropped_sends;
        // Gauges aggregate as high-water marks, not sums.
        self.peak_live_nodes = self.peak_live_nodes.max(other.peak_live_nodes);
        self.peak_resident_msgs = self.peak_resident_msgs.max(other.peak_resident_msgs);
        // Percentiles don't compose; an aggregate keeps the first run's
        // stats (sweep-level aggregation percentiles per-run observables
        // instead of merging Metrics).
        if self.latency.is_none() {
            self.latency = other.latency.clone();
        }
        if self.faults.is_none() {
            self.faults = other.faults;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_complexity_fans_out_multicasts() {
        let m = Metrics {
            honest_multicasts: 3,
            honest_multicast_bits: 300,
            honest_unicasts: 5,
            honest_unicast_bits: 50,
            ..Metrics::default()
        };
        assert_eq!(m.classical_messages(10), 35);
        assert_eq!(m.classical_bits(10), 3050);
        assert_eq!(m.honest_sends(), 8);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Metrics { honest_multicasts: 1, rounds: 2, ..Metrics::default() };
        let b = Metrics { honest_multicasts: 4, removals: 7, ..Metrics::default() };
        a.merge(&b);
        assert_eq!(a.honest_multicasts, 5);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.removals, 7);
    }

    #[test]
    fn merge_takes_max_of_gauges() {
        let mut a = Metrics { peak_live_nodes: 10, peak_resident_msgs: 3, ..Metrics::default() };
        let b = Metrics { peak_live_nodes: 4, peak_resident_msgs: 9, ..Metrics::default() };
        a.merge(&b);
        assert_eq!(a.peak_live_nodes, 10);
        assert_eq!(a.peak_resident_msgs, 9);
    }

    #[test]
    fn equality_ignores_engine_gauges() {
        let a = Metrics { honest_multicasts: 3, peak_live_nodes: 1000, ..Metrics::default() };
        let b = Metrics { honest_multicasts: 3, peak_live_nodes: 12, ..Metrics::default() };
        assert_eq!(a, b, "gauges are memory diagnostics, not protocol observables");
        let c = Metrics { honest_multicasts: 4, ..Metrics::default() };
        assert_ne!(a, c);
    }
}
