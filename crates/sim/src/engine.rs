//! The synchronous round-driving engine.
//!
//! One [`Sim`] = one execution of a protocol `Π` with an environment-supplied
//! input vector, an adversary `A`, and a corruption model — a sample of the
//! paper's `EXEC_Π(A, Z, κ)`.
//!
//! # In-execution parallelism
//!
//! Each round runs in three phases: honest nodes step on up to
//! [`SimConfig::threads`] scoped worker threads (their steps are
//! independent — each touches only its own state and inbox), corrupt nodes
//! step serially through the one mutable adversary in node-id order, and the
//! per-node results merge back in node-id order (message ids, metrics,
//! output bookkeeping). Per-node protocol randomness is derived from the run
//! seed at construction, never from ambient entropy, so reports are
//! **byte-identical at every thread count** — the knob only buys wall-clock
//! on large-`n` executions with real cryptography.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adversary::{AdvCtx, AdvWorld, Adversary, CorruptionModel};
use crate::ids::{Bit, NodeId, Round};
use crate::message::{Envelope, Incoming, Message, MsgId, Outbox, Recipient};
use crate::metrics::Metrics;
use crate::population::PopulationMode;
use crate::protocol::Protocol;
use crate::transport::fault::FaultyTransport;
use crate::transport::latency::LatencyTransport;
use crate::transport::lockstep::LockstepTransport;
use crate::transport::{finalize_latency, BaseTransport, Transport, TransportSpec};

/// The per-node deterministic seed handed to protocol factories — shared by
/// the dense and sparse engines so a lazily materialized node draws exactly
/// the randomness its dense twin drew.
pub(crate) fn node_seed(run_seed: u64, node: usize) -> u64 {
    run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(node as u64)
}

/// Builds one of the base delivery backends `ba-sim` can construct itself
/// (shared by the bare dispatch in [`Sim::new`] and the fault wrapper's
/// inner-backend construction).
fn build_base_transport<M: Message + Send + Sync + 'static>(
    config: &SimConfig,
    base: BaseTransport,
) -> Box<dyn Transport<M>> {
    match base {
        BaseTransport::Lockstep => Box::new(LockstepTransport::new()),
        BaseTransport::Latency { round_ms, gst_ms, dist } => {
            Box::new(LatencyTransport::new(config.n, round_ms, gst_ms, dist, config.seed))
        }
        BaseTransport::Tcp => panic!(
            "the TCP transport needs real sockets, which live outside ba-sim; \
             construct the execution through ba-net (or Sim::new_with_transport)"
        ),
    }
}

/// Static configuration of an execution.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of nodes `n`.
    pub n: usize,
    /// Corruption budget `f`.
    pub f: usize,
    /// Corruption model in force.
    pub model: CorruptionModel,
    /// Hard round cap (executions that run this long are termination
    /// failures).
    pub max_rounds: u64,
    /// Seed for the adversary's randomness.
    pub seed: u64,
    /// Worker threads stepping honest nodes *within* each round of this one
    /// execution (`1` = fully serial). A pure wall-clock knob: outboxes are
    /// merged in node-id order and per-node randomness is derived from
    /// `seed` at construction, so every value produces byte-identical
    /// reports. Worth raising for large `n` with real cryptography; the
    /// per-round fork/join overhead dominates on small executions.
    pub threads: usize,
    /// Population engine requested for this execution. Like
    /// [`SimConfig::threads`] this is a resource knob, not a protocol
    /// parameter: wherever a protocol family supports the sparse engine the
    /// report is byte-identical to dense mode, and families that cannot run
    /// sparsely (full-participation regimes, id-dependent leader oracles)
    /// silently fall back to the dense engine.
    pub population: PopulationMode,
    /// Delivery backend for this execution (see [`crate::transport`]). The
    /// default lockstep backend reproduces the pre-seam engine
    /// byte-for-byte; the latency backend changes *when* messages arrive
    /// and is therefore a protocol-visible parameter, not a resource knob.
    pub transport: TransportSpec,
}

impl SimConfig {
    /// Convenience constructor with the given model and an adversary seed.
    pub fn new(n: usize, f: usize, model: CorruptionModel, seed: u64) -> SimConfig {
        SimConfig {
            n,
            f,
            model,
            max_rounds: 10_000,
            seed,
            threads: 1,
            population: PopulationMode::Dense,
            transport: TransportSpec::Lockstep,
        }
    }

    /// Sets the in-execution worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> SimConfig {
        self.threads = threads.max(1);
        self
    }

    /// Sets the population engine (builder style).
    pub fn with_population(mut self, population: PopulationMode) -> SimConfig {
        self.population = population;
        self
    }

    /// Sets the delivery backend (builder style).
    pub fn with_transport(mut self, transport: TransportSpec) -> SimConfig {
        self.transport = transport;
        self
    }
}

/// Everything recorded about one finished execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Per-node decided outputs (index = node id).
    pub outputs: Vec<Option<Bit>>,
    /// Round at which each node first reported an output.
    pub output_rounds: Vec<Option<Round>>,
    /// Round at which each node was corrupted (`None` = forever honest).
    pub corrupt_at: Vec<Option<Round>>,
    /// Whether each node halted before the round cap.
    pub halted: Vec<bool>,
    /// Communication and adversary-action counters.
    pub metrics: Metrics,
    /// Rounds actually executed.
    pub rounds_used: u64,
    /// The inputs the environment supplied (echoed for verdict evaluation).
    pub inputs: Vec<Bit>,
}

impl RunReport {
    /// Iterator over forever-honest node indices.
    pub fn forever_honest(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.corrupt_at.iter().enumerate().filter(|(_, c)| c.is_none()).map(|(i, _)| NodeId(i))
    }
}

/// A type-erased protocol instance that can cross thread boundaries (the
/// [`Sim::run_boxed`] path used by parallel sweep harnesses).
pub type BoxedProtocol<M> = Box<dyn Protocol<M> + Send>;

/// A single synchronous execution.
///
/// # Examples
///
/// ```
/// use ba_sim::adversary::{CorruptionModel, Passive};
/// use ba_sim::engine::{Sim, SimConfig};
/// use ba_sim::ids::{Bit, NodeId, Round};
/// use ba_sim::message::{Incoming, Message, Outbox};
/// use ba_sim::protocol::Protocol;
///
/// // A one-round "echo my input" protocol.
/// #[derive(Clone, Debug)]
/// struct Vote(Bit);
/// impl Message for Vote {
///     fn size_bits(&self) -> usize { 1 }
/// }
/// struct Echo { input: Bit, done: Option<Bit> }
/// impl Protocol<Vote> for Echo {
///     fn step(&mut self, round: Round, inbox: &[Incoming<Vote>], out: &mut Outbox<Vote>) {
///         match round.0 {
///             0 => out.multicast(Vote(self.input)),
///             _ => {
///                 let ones = inbox.iter().filter(|m| m.msg.0).count();
///                 self.done = Some(ones * 2 > inbox.len());
///             }
///         }
///     }
///     fn output(&self) -> Option<Bit> { self.done }
///     fn halted(&self) -> bool { self.done.is_some() }
/// }
///
/// let config = SimConfig::new(4, 0, CorruptionModel::Static, 7);
/// let inputs = vec![true, true, true, false];
/// let report = Sim::run_protocol(&config, inputs.clone(), Passive, |id, _seed| {
///     Box::new(Echo { input: inputs[id.index()], done: None })
/// });
/// assert!(report.outputs.iter().all(|o| *o == Some(true)));
/// ```
pub struct Sim<M, A> {
    nodes: Vec<BoxedProtocol<M>>,
    world: AdvWorld<M>,
    adversary: A,
    /// Inboxes being filled for the next round.
    inboxes: Vec<Vec<Incoming<M>>>,
    /// Recycled buffers holding the round currently being consumed; swapped
    /// with `inboxes` each round so no per-round allocation happens at
    /// steady state.
    current: Vec<Vec<Incoming<M>>>,
    metrics: Metrics,
    output_rounds: Vec<Option<Round>>,
    max_rounds: u64,
    /// In-execution worker count (see [`SimConfig::threads`]).
    threads: usize,
    rng: StdRng,
    /// Delivery backend (see [`crate::transport`]). The engine validates
    /// envelopes (removal flags, unicast ranges) and meters them; the
    /// transport alone decides arrival rounds.
    transport: Box<dyn Transport<M>>,
}

/// What one node's step produced, captured per node so honest steps can run
/// on worker threads and still merge into the world in node-id order.
/// Shared with the sparse engine (`population.rs`), whose merge phase must
/// stay byte-for-byte equivalent to the dense one.
pub(crate) struct NodeStep<M> {
    /// The node's (possibly adversary-rewritten) sends, in outbox order.
    pub(crate) sends: Vec<(Recipient, M)>,
    /// Whether the node was so-far-honest when it stepped.
    pub(crate) honest: bool,
    /// `output()` after the step (honest nodes only).
    pub(crate) output: Option<Bit>,
    /// `halted()` after the step (honest nodes only).
    pub(crate) halted: bool,
}

impl<M: Message + Send + Sync + 'static, A: Adversary<M>> Sim<M, A> {
    /// Builds an execution. `factory(id, seed)` constructs node `id`'s
    /// protocol instance; `seed` is a per-node deterministic seed derived
    /// from `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != config.n` or `config.f >= config.n`.
    pub fn new(
        config: &SimConfig,
        inputs: Vec<Bit>,
        adversary: A,
        factory: impl FnMut(NodeId, u64) -> BoxedProtocol<M>,
    ) -> Sim<M, A> {
        let transport: Box<dyn Transport<M>> = match config.transport {
            TransportSpec::Lockstep => build_base_transport(config, BaseTransport::Lockstep),
            TransportSpec::Latency { round_ms, gst_ms, dist } => {
                build_base_transport(config, BaseTransport::Latency { round_ms, gst_ms, dist })
            }
            TransportSpec::Tcp => build_base_transport(config, BaseTransport::Tcp),
            TransportSpec::Faulty { inner, plan } => Box::new(FaultyTransport::new(
                build_base_transport(config, inner),
                plan,
                config.n,
                config.seed,
            )),
        };
        Sim::new_with_transport(config, inputs, adversary, factory, transport)
    }

    /// Like [`Sim::new`], with a caller-provided delivery backend — the
    /// injection point for transports `ba-sim` cannot build itself (real
    /// I/O, e.g. `ba-net`'s TCP loopback backend).
    pub fn new_with_transport(
        config: &SimConfig,
        inputs: Vec<Bit>,
        adversary: A,
        mut factory: impl FnMut(NodeId, u64) -> BoxedProtocol<M>,
        transport: Box<dyn Transport<M>>,
    ) -> Sim<M, A> {
        assert_eq!(inputs.len(), config.n, "one input per node");
        assert!(config.f < config.n, "corruption budget must leave one honest node");
        let nodes: Vec<BoxedProtocol<M>> =
            (0..config.n).map(|i| factory(NodeId(i), node_seed(config.seed, i))).collect();
        let world = AdvWorld {
            model: config.model,
            f: config.f,
            round: Round::ZERO,
            in_setup: false,
            corrupt_at: vec![None; config.n],
            pending: Vec::new(),
            injected: Vec::new(),
            next_msg_id: 0,
            inputs,
            outputs: vec![None; config.n],
            halted: vec![false; config.n],
            removals: 0,
        };
        Sim {
            nodes,
            world,
            adversary,
            inboxes: vec![Vec::new(); config.n],
            current: vec![Vec::new(); config.n],
            metrics: Metrics::default(),
            output_rounds: vec![None; config.n],
            max_rounds: config.max_rounds,
            threads: config.threads.max(1),
            rng: StdRng::seed_from_u64(config.seed ^ 0xAD5E_55A1_D0BE_EF00),
            transport,
        }
    }

    /// Convenience: build and run to completion in one call.
    pub fn run_protocol(
        config: &SimConfig,
        inputs: Vec<Bit>,
        adversary: A,
        factory: impl FnMut(NodeId, u64) -> BoxedProtocol<M>,
    ) -> RunReport {
        Sim::new(config, inputs, adversary, factory).run()
    }

    /// Like [`Sim::run_protocol`], with an additional `Send` bound on the
    /// factory so the whole call — configuration, adversary, and every node
    /// it will construct — can be captured in a `FnOnce + Send` closure and
    /// dispatched onto a worker thread. This is the entry point sweep
    /// harnesses use to fan executions out across `std::thread::scope`
    /// workers (*across*-run parallelism; [`SimConfig::threads`] controls
    /// the *within*-run worker count).
    pub fn run_boxed(
        config: &SimConfig,
        inputs: Vec<Bit>,
        adversary: A,
        factory: impl FnMut(NodeId, u64) -> BoxedProtocol<M> + Send,
    ) -> RunReport
    where
        A: Send,
    {
        Sim::run_protocol(config, inputs, adversary, factory)
    }

    /// Builds with an injected delivery backend and runs to completion (see
    /// [`Sim::new_with_transport`]).
    pub fn run_with_transport(
        config: &SimConfig,
        inputs: Vec<Bit>,
        adversary: A,
        factory: impl FnMut(NodeId, u64) -> BoxedProtocol<M>,
        transport: Box<dyn Transport<M>>,
    ) -> RunReport {
        Sim::new_with_transport(config, inputs, adversary, factory, transport).run()
    }

    /// Runs the execution to completion (all honest nodes halted, or the
    /// round cap reached) and returns the report.
    pub fn run(mut self) -> RunReport {
        // The dense engine materializes every node up front.
        self.metrics.peak_live_nodes = self.n() as u64;
        // Setup phase: static adversaries corrupt here.
        self.world.in_setup = true;
        {
            let mut ctx = AdvCtx { world: &mut self.world, rng: &mut self.rng };
            self.adversary.setup(&mut ctx);
        }
        self.world.in_setup = false;

        let mut rounds_used = 0;
        for r in 0..self.max_rounds {
            let round = Round(r);
            self.world.round = round;
            rounds_used = r + 1;
            self.step_round(round);
            // Execution ends when every so-far-honest node has halted.
            let all_honest_halted = (0..self.n())
                .filter(|&i| self.world.corrupt_at[i].is_none())
                .all(|i| self.world.halted[i]);
            if all_honest_halted {
                break;
            }
        }

        self.metrics.rounds = rounds_used;
        self.metrics.corruptions =
            self.world.corrupt_at.iter().filter(|c| c.is_some()).count() as u64;
        self.metrics.removals = self.world.removals as u64;
        self.metrics.latency = self
            .transport
            .finish(rounds_used)
            .map(|stats| finalize_latency(stats, &self.output_rounds, &self.world.corrupt_at));
        // Read after finish(): still-held copies have been folded into the
        // fault wrapper's undelivered count by then.
        self.metrics.faults = self.transport.fault_stats();
        RunReport {
            outputs: self.world.outputs.clone(),
            output_rounds: self.output_rounds.clone(),
            corrupt_at: self.world.corrupt_at.clone(),
            halted: self.world.halted.clone(),
            metrics: self.metrics.clone(),
            rounds_used,
            inputs: self.world.inputs.clone(),
        }
    }

    fn n(&self) -> usize {
        self.world.corrupt_at.len()
    }

    fn step_round(&mut self, round: Round) {
        let n = self.n();
        // 1. Swap this round's filled inboxes into the recycled buffers
        // (the buffers were cleared — capacity retained — last round).
        std::mem::swap(&mut self.inboxes, &mut self.current);

        // 2a. Step every so-far-honest node, on worker threads when
        // configured. Corruption only happens in `setup`/`intervene`, so the
        // corrupt set is frozen for the whole phase, honest steps touch
        // nothing but their own node state and inbox, and each result lands
        // in its node's slot — the later merge is order-independent.
        let mut results: Vec<Option<NodeStep<M>>> = (0..n).map(|_| None).collect();
        {
            let corrupt_at = &self.world.corrupt_at;
            let halted = &self.world.halted;
            let step_honest = |node: &mut BoxedProtocol<M>,
                               inbox: &mut Vec<Incoming<M>>,
                               i: usize|
             -> Option<NodeStep<M>> {
                if corrupt_at[i].is_some() {
                    return None; // stepped serially in phase 2b
                }
                if halted[i] {
                    inbox.clear();
                    return None; // halted honest nodes stay silent
                }
                let mut outbox = Outbox::new();
                node.step(round, inbox, &mut outbox);
                inbox.clear();
                Some(NodeStep {
                    sends: outbox.take(),
                    honest: true,
                    output: node.output(),
                    halted: node.halted(),
                })
            };
            let workers = self.threads.min(n).max(1);
            if workers <= 1 {
                for (i, (node, inbox)) in
                    self.nodes.iter_mut().zip(self.current.iter_mut()).enumerate()
                {
                    results[i] = step_honest(node, inbox, i);
                }
            } else {
                let chunk = n.div_ceil(workers);
                std::thread::scope(|scope| {
                    for (ci, ((nodes, inboxes), slots)) in self
                        .nodes
                        .chunks_mut(chunk)
                        .zip(self.current.chunks_mut(chunk))
                        .zip(results.chunks_mut(chunk))
                        .enumerate()
                    {
                        let step_honest = &step_honest;
                        scope.spawn(move || {
                            for (k, ((node, inbox), slot)) in
                                nodes.iter_mut().zip(inboxes.iter_mut()).zip(slots).enumerate()
                            {
                                *slot = step_honest(node, inbox, ci * chunk + k);
                            }
                        });
                    }
                });
            }
        }

        // 2b. Step corrupt nodes serially, in node-id order: the adversary
        // is one mutable strategy object, and keeping its inbox-filter /
        // outbox-rewrite call sequence identical to the serial engine is
        // part of the byte-identity contract.
        for (i, slot) in results.iter_mut().enumerate() {
            if self.world.corrupt_at[i].is_none() {
                continue;
            }
            let inbox = std::mem::take(&mut self.current[i]);
            let mut filtered = self.adversary.filter_corrupt_inbox(NodeId(i), inbox, round);
            let mut outbox = Outbox::new();
            self.nodes[i].step(round, &filtered, &mut outbox);
            // Recycle whichever buffer the adversary handed back so corrupt
            // nodes keep their inbox capacity too.
            filtered.clear();
            self.current[i] = filtered;
            let sends = self.adversary.corrupt_outbox(NodeId(i), outbox.take(), round);
            *slot = Some(NodeStep { sends, honest: false, output: None, halted: false });
        }

        // 2c. Merge in node-id order: message ids, envelopes, and
        // output/halt bookkeeping come out exactly as the serial
        // interleaving produced them.
        let mut pending: Vec<Envelope<M>> = Vec::new();
        for (i, slot) in results.into_iter().enumerate() {
            let Some(step) = slot else { continue };
            for (to, msg) in step.sends {
                let id = MsgId(self.world.next_msg_id);
                self.world.next_msg_id += 1;
                pending.push(Envelope {
                    id,
                    from: NodeId(i),
                    to,
                    round,
                    honest_send: step.honest,
                    removed: false,
                    msg: std::sync::Arc::new(msg),
                });
            }
            // Record outputs/halts as reported to the environment.
            if step.honest {
                if let Some(bit) = step.output {
                    if self.world.outputs[i].is_none() {
                        self.world.outputs[i] = Some(bit);
                        self.output_rounds[i] = Some(round);
                    }
                }
                self.world.halted[i] = step.halted;
            }
        }

        // 3. Meter sends (Definition 7 counts messages *sent* by honest
        // nodes, regardless of later removal).
        for env in &pending {
            match (env.honest_send, env.to) {
                (true, Recipient::All) => {
                    self.metrics.honest_multicasts += 1;
                    self.metrics.honest_multicast_bits += env.msg.size_bits() as u64;
                    self.metrics.honest_cert_bits += env.msg.cert_bits() as u64;
                }
                (true, Recipient::One(_)) => {
                    self.metrics.honest_unicasts += 1;
                    self.metrics.honest_unicast_bits += env.msg.size_bits() as u64;
                    self.metrics.honest_cert_bits += env.msg.cert_bits() as u64;
                }
                (false, _) => {
                    self.metrics.corrupt_sends += 1;
                    self.metrics.corrupt_bits += env.msg.size_bits() as u64;
                }
            }
        }

        // 4. Adversary intervention: observe, corrupt, remove, inject.
        self.world.pending = pending;
        {
            let mut ctx = AdvCtx { world: &mut self.world, rng: &mut self.rng };
            self.adversary.intervene(&mut ctx);
        }
        let injected = std::mem::take(&mut self.world.injected);
        for env in &injected {
            self.metrics.corrupt_sends += 1;
            self.metrics.corrupt_bits += env.msg.size_bits() as u64;
            self.metrics.injected_sends += 1;
            debug_assert!(!env.honest_send);
        }
        let mut deliverable = std::mem::take(&mut self.world.pending);
        deliverable.extend(injected);

        // 5. Validate what survived and hand it to the transport, which
        // alone decides each copy's arrival round; then drain everything
        // arriving by the start of the next round into the inboxes. (Under
        // lockstep that is the entire submission, reproducing the pre-seam
        // engine byte-for-byte; a multicast still shares one `Arc` across
        // all n recipients — no payload deep-clone in the fan-out.)
        let mut dropped = 0u64;
        deliverable.retain(|env| {
            if env.removed {
                return false;
            }
            if let Recipient::One(target) = env.to {
                if target.index() >= n {
                    // Out-of-range unicasts cannot be delivered. Honest
                    // protocol code addressing a nonexistent node is a bug,
                    // not a modelling choice; adversarial injections may aim
                    // anywhere, and are merely counted instead of being lost
                    // without a trace.
                    debug_assert!(
                        !env.honest_send,
                        "honest node {:?} unicast to out-of-range node {:?}",
                        env.from, target
                    );
                    dropped += 1;
                    return false;
                }
            }
            true
        });
        self.metrics.dropped_sends += dropped;
        self.transport.submit(round, deliverable);
        self.transport.deliver(round.next(), &mut self.inboxes);

        // Resident-message gauge: everything queued for next round plus
        // whatever the transport still holds in flight.
        let resident: u64 = self.inboxes.iter().map(|b| b.len() as u64).sum::<u64>()
            + self.transport.in_flight() as u64;
        self.metrics.peak_resident_msgs = self.metrics.peak_resident_msgs.max(resident);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Passive;

    #[derive(Clone, Debug, PartialEq)]
    struct Ping(u64);

    impl Message for Ping {
        fn size_bits(&self) -> usize {
            64
        }
    }

    /// Multicasts in round 0; decides on round 1 message count.
    struct CountVotes {
        input: Bit,
        seen: usize,
        done: bool,
    }

    impl Protocol<Ping> for CountVotes {
        fn step(&mut self, round: Round, inbox: &[Incoming<Ping>], out: &mut Outbox<Ping>) {
            match round.0 {
                0 => out.multicast(Ping(self.input as u64)),
                1 => {
                    self.seen = inbox.len();
                    self.done = true;
                }
                _ => {}
            }
        }

        fn output(&self) -> Option<Bit> {
            if self.done {
                Some(self.seen > 0)
            } else {
                None
            }
        }

        fn halted(&self) -> bool {
            self.done
        }
    }

    fn config(n: usize, f: usize, model: CorruptionModel) -> SimConfig {
        SimConfig::new(n, f, model, 42)
    }

    #[test]
    fn honest_execution_delivers_all_multicasts() {
        let cfg = config(5, 0, CorruptionModel::Static);
        let report = Sim::run_protocol(&cfg, vec![true; 5], Passive, |_, _| {
            Box::new(CountVotes { input: true, seen: 0, done: false })
        });
        assert!(report.outputs.iter().all(|o| *o == Some(true)));
        assert_eq!(report.metrics.honest_multicasts, 5);
        assert_eq!(report.metrics.honest_multicast_bits, 5 * 64);
        assert_eq!(report.metrics.classical_messages(5), 25);
        assert_eq!(report.rounds_used, 2);
        assert_eq!(report.forever_honest().count(), 5);
    }

    /// Adversary that corrupts node 0 at setup; its outbox is silenced.
    struct SilenceNodeZero;

    impl Adversary<Ping> for SilenceNodeZero {
        fn setup(&mut self, ctx: &mut AdvCtx<'_, Ping>) {
            ctx.corrupt(NodeId(0)).expect("budget");
        }

        fn corrupt_outbox(
            &mut self,
            _node: NodeId,
            _planned: Vec<(Recipient, Ping)>,
            _round: Round,
        ) -> Vec<(Recipient, Ping)> {
            Vec::new()
        }
    }

    #[test]
    fn corrupt_node_sends_do_not_count_as_honest() {
        let cfg = config(5, 1, CorruptionModel::Static);
        let report = Sim::run_protocol(&cfg, vec![true; 5], SilenceNodeZero, |_, _| {
            Box::new(CountVotes { input: true, seen: 0, done: false })
        });
        assert_eq!(report.metrics.honest_multicasts, 4);
        // Honest nodes saw only 4 messages.
        assert!(report.forever_honest().all(|i| report.outputs[i.index()] == Some(true)));
        assert_eq!(report.corrupt_at[0], Some(Round::ZERO));
    }

    /// Strongly adaptive adversary: observes round-0 traffic, corrupts every
    /// sender and erases everything (the "committee eraser" in miniature).
    struct EraseEverything;

    impl Adversary<Ping> for EraseEverything {
        fn intervene(&mut self, ctx: &mut AdvCtx<'_, Ping>) {
            if ctx.round().0 != 0 {
                return;
            }
            let pend: Vec<(MsgId, NodeId)> = ctx.pending().iter().map(|e| (e.id, e.from)).collect();
            for (id, from) in pend {
                if !ctx.is_corrupt(from) {
                    if ctx.budget_left() == 0 {
                        break; // out of corruptions; remaining messages survive
                    }
                    ctx.corrupt(from).expect("budget checked");
                }
                ctx.remove(id).expect("strongly adaptive removal");
            }
        }
    }

    #[test]
    fn strongly_adaptive_removal_starves_receivers() {
        let cfg = config(5, 4, CorruptionModel::StronglyAdaptive);
        let report = Sim::run_protocol(&cfg, vec![true; 5], EraseEverything, |_, _| {
            Box::new(CountVotes { input: true, seen: 0, done: false })
        });
        // Only node 4 stays honest (f = 4 < 5 senders; the adversary erases
        // the first four senders' messages but runs out of budget for the
        // fifth... node ordering means nodes 0..3 get corrupted).
        let honest: Vec<_> = report.forever_honest().collect();
        assert_eq!(honest.len(), 1);
        // The one honest node received only the one surviving multicast (its
        // own plus the non-erased one, if any). With budget 4 all four other
        // senders were erased, so it sees exactly 1 message (its own).
        assert_eq!(report.outputs[honest[0].index()], Some(true));
        assert_eq!(report.metrics.removals, 4);
        // Definition 7: removed messages still count as honest multicasts.
        assert_eq!(report.metrics.honest_multicasts, 5);
    }

    #[test]
    fn removal_rejected_in_adaptive_model() {
        struct TryRemove;
        impl Adversary<Ping> for TryRemove {
            fn intervene(&mut self, ctx: &mut AdvCtx<'_, Ping>) {
                if ctx.round().0 == 0 {
                    let first = ctx.pending()[0].id;
                    let from = ctx.pending()[0].from;
                    ctx.corrupt(from).unwrap();
                    assert!(ctx.remove(first).is_err());
                }
            }
        }
        let cfg = config(3, 2, CorruptionModel::Adaptive);
        let report = Sim::run_protocol(&cfg, vec![false; 3], TryRemove, |_, _| {
            Box::new(CountVotes { input: false, seen: 0, done: false })
        });
        assert_eq!(report.metrics.removals, 0);
        // The corrupted node's round-0 message still went out (it was sent
        // while honest and cannot be erased).
        assert!(report.forever_honest().all(|i| report.outputs[i.index()] == Some(true)));
    }

    #[test]
    fn injection_delivered_next_round() {
        struct InjectExtra;
        impl Adversary<Ping> for InjectExtra {
            fn setup(&mut self, ctx: &mut AdvCtx<'_, Ping>) {
                ctx.corrupt(NodeId(0)).unwrap();
            }
            fn intervene(&mut self, ctx: &mut AdvCtx<'_, Ping>) {
                if ctx.round().0 == 0 {
                    // Equivocation: extra unicast only to node 1.
                    ctx.inject(NodeId(0), Recipient::One(NodeId(1)), Ping(99)).unwrap();
                }
            }
        }
        struct Recorder {
            seen: Vec<u64>,
            done: bool,
        }
        impl Protocol<Ping> for Recorder {
            fn step(&mut self, round: Round, inbox: &[Incoming<Ping>], _out: &mut Outbox<Ping>) {
                if round.0 == 1 {
                    self.seen = inbox.iter().map(|m| m.msg.0).collect();
                    self.done = true;
                }
            }
            fn output(&self) -> Option<Bit> {
                self.done.then_some(true)
            }
            fn halted(&self) -> bool {
                self.done
            }
        }
        let cfg = config(3, 1, CorruptionModel::Static);
        let report = Sim::run_protocol(&cfg, vec![true; 3], InjectExtra, |_, _| {
            Box::new(Recorder { seen: Vec::new(), done: false })
        });
        // Recorders never send, so the only traffic is the injected unicast.
        assert_eq!(report.metrics.corrupt_sends, 1);
        assert_eq!(report.metrics.injected_sends, 1);
        assert_eq!(report.metrics.corrupt_bits, 64);
        assert_eq!(report.metrics.honest_multicasts, 0);
    }

    #[test]
    fn out_of_range_injection_counted_not_lost() {
        struct InjectBeyondN;
        impl Adversary<Ping> for InjectBeyondN {
            fn setup(&mut self, ctx: &mut AdvCtx<'_, Ping>) {
                ctx.corrupt(NodeId(0)).unwrap();
            }
            fn intervene(&mut self, ctx: &mut AdvCtx<'_, Ping>) {
                if ctx.round().0 == 0 {
                    // Unicast aimed past the last node: undeliverable.
                    ctx.inject(NodeId(0), Recipient::One(NodeId(64)), Ping(1)).unwrap();
                    ctx.inject(NodeId(0), Recipient::One(NodeId(1)), Ping(2)).unwrap();
                }
            }
        }
        let cfg = config(3, 1, CorruptionModel::Static);
        let report = Sim::run_protocol(&cfg, vec![true; 3], InjectBeyondN, |_, _| {
            Box::new(CountVotes { input: true, seen: 0, done: false })
        });
        // Node 0's own round-0 multicast plus the two injections are
        // corrupt sends, but only the in-range injection was deliverable;
        // the out-of-range one is accounted as dropped.
        assert_eq!(report.metrics.corrupt_sends, 3);
        assert_eq!(report.metrics.injected_sends, 2);
        assert_eq!(report.metrics.dropped_sends, 1);
    }

    #[test]
    fn run_boxed_executes_on_worker_thread() {
        let cfg = config(5, 0, CorruptionModel::Static);
        let handle = std::thread::spawn(move || {
            Sim::run_boxed(&cfg, vec![true; 5], Passive, |_, _| {
                Box::new(CountVotes { input: true, seen: 0, done: false })
            })
        });
        let report = handle.join().expect("worker thread");
        assert!(report.outputs.iter().all(|o| *o == Some(true)));
        assert_eq!(report.metrics.honest_multicasts, 5);
    }

    #[test]
    fn round_cap_reported_as_non_termination() {
        struct Forever;
        impl Protocol<Ping> for Forever {
            fn step(&mut self, _round: Round, _inbox: &[Incoming<Ping>], out: &mut Outbox<Ping>) {
                out.multicast(Ping(0));
            }
            fn output(&self) -> Option<Bit> {
                None
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let mut cfg = config(3, 0, CorruptionModel::Static);
        cfg.max_rounds = 5;
        let report = Sim::run_protocol(&cfg, vec![true; 3], Passive, |_, _| Box::new(Forever));
        assert_eq!(report.rounds_used, 5);
        assert!(report.halted.iter().all(|h| !h));
        assert!(report.outputs.iter().all(|o| o.is_none()));
    }

    #[test]
    #[should_panic(expected = "one input per node")]
    fn mismatched_inputs_panic() {
        let cfg = config(3, 0, CorruptionModel::Static);
        let _ = Sim::run_protocol(&cfg, vec![true; 2], Passive, |_, _| {
            Box::new(CountVotes { input: true, seen: 0, done: false })
        });
    }

    /// In-execution parallelism must be observationally free: the whole
    /// report (outputs, rounds, per-message metrics, corruption schedule)
    /// is byte-identical at every worker count, including counts above `n`.
    #[test]
    fn within_run_thread_count_never_changes_report() {
        for f in [0usize, 4] {
            let mut cfg = config(9, f, CorruptionModel::StronglyAdaptive);
            cfg.max_rounds = 6;
            let run = |threads: usize| {
                let cfg = cfg.clone().with_threads(threads);
                Sim::run_protocol(&cfg, vec![true; 9], EraseEverything, |_, _| {
                    Box::new(CountVotes { input: true, seen: 0, done: false })
                })
            };
            let serial = run(1);
            for threads in [2usize, 3, 8, 64] {
                assert_eq!(run(threads), serial, "threads={threads} f={f} changed the execution");
            }
        }
    }

    /// Same identity through the injection path (adversary-added envelopes
    /// must interleave with node sends exactly as in the serial engine).
    #[test]
    fn within_run_threads_identical_with_injection() {
        struct InjectEveryRound;
        impl Adversary<Ping> for InjectEveryRound {
            fn setup(&mut self, ctx: &mut AdvCtx<'_, Ping>) {
                ctx.corrupt(NodeId(0)).unwrap();
            }
            fn intervene(&mut self, ctx: &mut AdvCtx<'_, Ping>) {
                let r = ctx.round().0;
                ctx.inject(NodeId(0), Recipient::One(NodeId((r as usize + 1) % 5)), Ping(r))
                    .unwrap();
            }
        }
        let run = |threads: usize| {
            let cfg = config(5, 1, CorruptionModel::Static).with_threads(threads);
            Sim::run_protocol(&cfg, vec![true; 5], InjectEveryRound, |_, _| {
                Box::new(CountVotes { input: true, seen: 0, done: false })
            })
        };
        let serial = run(1);
        assert_eq!(run(4), serial);
        assert_eq!(serial.metrics.injected_sends, serial.rounds_used);
    }

    #[test]
    fn per_node_seeds_differ() {
        let cfg = config(3, 0, CorruptionModel::Static);
        let mut seeds = Vec::new();
        let _ = Sim::run_protocol(&cfg, vec![true; 3], Passive, |_, seed| {
            seeds.push(seed);
            Box::new(CountVotes { input: true, seen: 0, done: false })
        });
        assert_eq!(seeds.len(), 3);
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds[1], seeds[2]);
    }
}
