//! Adversary interface and the corruption-model rules of the paper.
//!
//! The engine is the authority on what an adversary may do: every corruption
//! or message removal goes through [`AdvCtx`], which enforces the budget and
//! the model-specific legality rules:
//!
//! * [`CorruptionModel::Static`] — corruptions only before the execution
//!   starts.
//! * [`CorruptionModel::Adaptive`] — corrupt any time (after observing a
//!   node's round-`r` messages, rushing-style), and make the new corrupt node
//!   send *additional* messages in the same round — but **messages already
//!   sent cannot be erased** ("no after-the-fact removal"). This is the model
//!   under which the paper's upper bounds hold.
//! * [`CorruptionModel::StronglyAdaptive`] — additionally erase messages a
//!   node sent in the round it became corrupt ("after-the-fact removal").
//!   This is the model of the Ω(f²) lower bound (Theorems 1 and 4).

use rand::rngs::StdRng;

use crate::ids::{Bit, NodeId, Round};
use crate::message::{Envelope, Incoming, Message, MsgId, Recipient};

/// When and how the adversary may corrupt nodes. See module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CorruptionModel {
    /// Corruption set fixed before round 0.
    Static,
    /// Adaptive corruption without after-the-fact removal.
    Adaptive,
    /// Adaptive corruption with after-the-fact removal.
    StronglyAdaptive,
}

/// Why an adversary action was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdvActionError {
    /// The corruption budget `f` is exhausted.
    BudgetExhausted,
    /// The target node is already corrupt.
    AlreadyCorrupt,
    /// Static adversaries cannot corrupt after the execution started.
    StaticAfterStart,
    /// Message removal requires the strongly adaptive model.
    RemovalNeedsStrongAdaptivity,
    /// Only messages sent in the current round can be removed.
    RemovalTooLate,
    /// The message's sender is not corrupt (corrupt the sender first).
    SenderNotCorrupt,
    /// No such message, or it was already removed.
    UnknownMessage,
    /// Injection requires a corrupt sender.
    InjectorNotCorrupt,
}

impl std::fmt::Display for AdvActionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AdvActionError::BudgetExhausted => "corruption budget exhausted",
            AdvActionError::AlreadyCorrupt => "node is already corrupt",
            AdvActionError::StaticAfterStart => "static adversary cannot corrupt after start",
            AdvActionError::RemovalNeedsStrongAdaptivity => {
                "after-the-fact removal requires the strongly adaptive model"
            }
            AdvActionError::RemovalTooLate => "only current-round messages can be removed",
            AdvActionError::SenderNotCorrupt => "sender must be corrupted before removal",
            AdvActionError::UnknownMessage => "unknown or already-removed message",
            AdvActionError::InjectorNotCorrupt => "injection requires a corrupt sender",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for AdvActionError {}

/// Internal mutable world state the context mediates access to.
///
/// Owned by the engine; `pub(crate)` fields keep the enforcement logic in
/// this module while the engine orchestrates rounds.
#[derive(Debug)]
pub(crate) struct AdvWorld<M> {
    pub(crate) model: CorruptionModel,
    pub(crate) f: usize,
    pub(crate) round: Round,
    pub(crate) in_setup: bool,
    pub(crate) corrupt_at: Vec<Option<Round>>,
    pub(crate) pending: Vec<Envelope<M>>,
    pub(crate) injected: Vec<Envelope<M>>,
    pub(crate) next_msg_id: u64,
    pub(crate) inputs: Vec<Bit>,
    pub(crate) outputs: Vec<Option<Bit>>,
    pub(crate) halted: Vec<bool>,
    pub(crate) removals: usize,
}

/// The adversary's handle on the world during [`Adversary::intervene`].
///
/// All mutating actions are validated against the corruption model; illegal
/// actions return an [`AdvActionError`] and leave the world unchanged.
pub struct AdvCtx<'a, M> {
    pub(crate) world: &'a mut AdvWorld<M>,
    pub(crate) rng: &'a mut StdRng,
}

impl<'a, M: Message> AdvCtx<'a, M> {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.world.corrupt_at.len()
    }

    /// Total corruption budget `f`.
    pub fn f(&self) -> usize {
        self.world.f
    }

    /// Corruptions performed so far.
    pub fn corrupted_count(&self) -> usize {
        self.world.corrupt_at.iter().filter(|c| c.is_some()).count()
    }

    /// Remaining corruption budget.
    pub fn budget_left(&self) -> usize {
        self.world.f.saturating_sub(self.corrupted_count())
    }

    /// The corruption model in force.
    pub fn model(&self) -> CorruptionModel {
        self.world.model
    }

    /// Current round (meaningless during setup).
    pub fn round(&self) -> Round {
        self.world.round
    }

    /// True while the pre-execution setup phase is running.
    pub fn in_setup(&self) -> bool {
        self.world.in_setup
    }

    /// Whether `node` is corrupt.
    pub fn is_corrupt(&self, node: NodeId) -> bool {
        self.world.corrupt_at[node.index()].is_some()
    }

    /// The environment's input to `node` (A and Z may communicate freely, so
    /// the adversary knows all inputs).
    pub fn input_of(&self, node: NodeId) -> Bit {
        self.world.inputs[node.index()]
    }

    /// The output `node` has reported to the environment, if any.
    pub fn output_of(&self, node: NodeId) -> Option<Bit> {
        self.world.outputs[node.index()]
    }

    /// Whether `node` has halted.
    pub fn has_halted(&self, node: NodeId) -> bool {
        self.world.halted[node.index()]
    }

    /// The messages sent this round (including ones already marked removed),
    /// visible before delivery — the adversary is rushing.
    pub fn pending(&self) -> &[Envelope<M>] {
        &self.world.pending
    }

    /// Seeded adversary randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Adaptively corrupts `node`.
    ///
    /// # Errors
    ///
    /// Fails if the budget is exhausted, the node is already corrupt, or the
    /// model is static and the execution has begun.
    pub fn corrupt(&mut self, node: NodeId) -> Result<(), AdvActionError> {
        if self.world.corrupt_at[node.index()].is_some() {
            return Err(AdvActionError::AlreadyCorrupt);
        }
        if self.budget_left() == 0 {
            return Err(AdvActionError::BudgetExhausted);
        }
        if self.world.model == CorruptionModel::Static && !self.world.in_setup {
            return Err(AdvActionError::StaticAfterStart);
        }
        self.world.corrupt_at[node.index()] = Some(self.world.round);
        Ok(())
    }

    /// Performs after-the-fact removal of a message sent this round.
    ///
    /// # Errors
    ///
    /// Fails unless the model is [`CorruptionModel::StronglyAdaptive`], the
    /// message was sent in the current round, and its sender is corrupt at
    /// the time of removal.
    pub fn remove(&mut self, id: MsgId) -> Result<(), AdvActionError> {
        if self.world.model != CorruptionModel::StronglyAdaptive {
            return Err(AdvActionError::RemovalNeedsStrongAdaptivity);
        }
        let round = self.world.round;
        let corrupt_at = &self.world.corrupt_at;
        let env = self
            .world
            .pending
            .iter_mut()
            .find(|e| e.id == id && !e.removed)
            .ok_or(AdvActionError::UnknownMessage)?;
        if env.round != round {
            return Err(AdvActionError::RemovalTooLate);
        }
        if corrupt_at[env.from.index()].is_none() {
            return Err(AdvActionError::SenderNotCorrupt);
        }
        env.removed = true;
        self.world.removals += 1;
        Ok(())
    }

    /// Makes the corrupt node `from` send an additional message this round
    /// (delivered with the round's traffic at the start of the next round).
    ///
    /// # Errors
    ///
    /// Fails if `from` is not corrupt.
    pub fn inject(&mut self, from: NodeId, to: Recipient, msg: M) -> Result<MsgId, AdvActionError> {
        if self.world.corrupt_at[from.index()].is_none() {
            return Err(AdvActionError::InjectorNotCorrupt);
        }
        let id = MsgId(self.world.next_msg_id);
        self.world.next_msg_id += 1;
        self.world.injected.push(Envelope {
            id,
            from,
            to,
            round: self.world.round,
            honest_send: false,
            removed: false,
            msg: std::sync::Arc::new(msg),
        });
        Ok(id)
    }
}

/// An adversary strategy.
///
/// All hooks default to "do nothing" / "corrupt nodes keep running the
/// honest protocol", so the unit adversary `()` below is the passive
/// (honest-execution) adversary.
pub trait Adversary<M: Message> {
    /// Called once before round 0; static adversaries pick their corruption
    /// set here.
    fn setup(&mut self, ctx: &mut AdvCtx<'_, M>) {
        let _ = ctx;
    }

    /// Filters a corrupt node's inbox before its (still-running) honest
    /// logic sees it. Default: deliver everything.
    fn filter_corrupt_inbox(
        &mut self,
        node: NodeId,
        inbox: Vec<Incoming<M>>,
        round: Round,
    ) -> Vec<Incoming<M>> {
        let _ = (node, round);
        inbox
    }

    /// Rewrites the messages a corrupt node is about to send (the planned
    /// sends are what its honest logic produced). Default: send them
    /// unchanged ("honest-behaving corrupt node").
    fn corrupt_outbox(
        &mut self,
        node: NodeId,
        planned: Vec<(Recipient, M)>,
        round: Round,
    ) -> Vec<(Recipient, M)> {
        let _ = (node, round);
        planned
    }

    /// Main intervention point, called after all nodes produced their
    /// round-`r` messages and before delivery: observe traffic, corrupt,
    /// remove (strongly adaptive only), inject.
    fn intervene(&mut self, ctx: &mut AdvCtx<'_, M>) {
        let _ = ctx;
    }
}

/// The passive adversary: corrupts nobody, changes nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct Passive;

impl<M: Message> Adversary<M> for Passive {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    impl Message for u8 {
        fn size_bits(&self) -> usize {
            8
        }
    }

    fn world(model: CorruptionModel, n: usize, f: usize) -> AdvWorld<u8> {
        AdvWorld {
            model,
            f,
            round: Round(3),
            in_setup: false,
            corrupt_at: vec![None; n],
            pending: Vec::new(),
            injected: Vec::new(),
            next_msg_id: 100,
            inputs: vec![false; n],
            outputs: vec![None; n],
            halted: vec![false; n],
            removals: 0,
        }
    }

    fn env(id: u64, from: usize, round: Round, honest: bool) -> Envelope<u8> {
        Envelope {
            id: MsgId(id),
            from: NodeId(from),
            to: Recipient::All,
            round,
            honest_send: honest,
            removed: false,
            msg: std::sync::Arc::new(0),
        }
    }

    #[test]
    fn corruption_budget_enforced() {
        let mut w = world(CorruptionModel::Adaptive, 4, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = AdvCtx { world: &mut w, rng: &mut rng };
        assert!(ctx.corrupt(NodeId(0)).is_ok());
        assert_eq!(ctx.corrupt(NodeId(0)), Err(AdvActionError::AlreadyCorrupt));
        assert!(ctx.corrupt(NodeId(1)).is_ok());
        assert_eq!(ctx.corrupt(NodeId(2)), Err(AdvActionError::BudgetExhausted));
        assert_eq!(ctx.budget_left(), 0);
        assert_eq!(ctx.corrupted_count(), 2);
    }

    #[test]
    fn static_model_blocks_mid_run_corruption() {
        let mut w = world(CorruptionModel::Static, 4, 2);
        let mut rng = StdRng::seed_from_u64(0);
        {
            let mut ctx = AdvCtx { world: &mut w, rng: &mut rng };
            assert_eq!(ctx.corrupt(NodeId(0)), Err(AdvActionError::StaticAfterStart));
        }
        w.in_setup = true;
        let mut ctx = AdvCtx { world: &mut w, rng: &mut rng };
        assert!(ctx.corrupt(NodeId(0)).is_ok());
    }

    #[test]
    fn removal_rules() {
        // Adaptive model: no removal at all.
        let mut w = world(CorruptionModel::Adaptive, 4, 2);
        w.pending.push(env(1, 0, Round(3), true));
        let mut rng = StdRng::seed_from_u64(0);
        {
            let mut ctx = AdvCtx { world: &mut w, rng: &mut rng };
            ctx.corrupt(NodeId(0)).unwrap();
            assert_eq!(ctx.remove(MsgId(1)), Err(AdvActionError::RemovalNeedsStrongAdaptivity));
        }

        // Strongly adaptive: must corrupt sender first, same round only.
        let mut w = world(CorruptionModel::StronglyAdaptive, 4, 2);
        w.pending.push(env(1, 0, Round(3), true));
        w.pending.push(env(2, 1, Round(2), true)); // stale round
        let mut ctx = AdvCtx { world: &mut w, rng: &mut rng };
        assert_eq!(ctx.remove(MsgId(1)), Err(AdvActionError::SenderNotCorrupt));
        ctx.corrupt(NodeId(0)).unwrap();
        assert!(ctx.remove(MsgId(1)).is_ok());
        assert_eq!(ctx.remove(MsgId(1)), Err(AdvActionError::UnknownMessage)); // already removed
        ctx.corrupt(NodeId(1)).unwrap();
        assert_eq!(ctx.remove(MsgId(2)), Err(AdvActionError::RemovalTooLate));
        assert_eq!(ctx.remove(MsgId(99)), Err(AdvActionError::UnknownMessage));
        assert_eq!(ctx.world.removals, 1);
    }

    #[test]
    fn injection_requires_corrupt_sender() {
        let mut w = world(CorruptionModel::Adaptive, 4, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = AdvCtx { world: &mut w, rng: &mut rng };
        assert_eq!(
            ctx.inject(NodeId(2), Recipient::All, 9),
            Err(AdvActionError::InjectorNotCorrupt)
        );
        ctx.corrupt(NodeId(2)).unwrap();
        let id = ctx.inject(NodeId(2), Recipient::One(NodeId(0)), 9).unwrap();
        assert_eq!(id, MsgId(100));
        assert_eq!(ctx.world.injected.len(), 1);
        assert!(!ctx.world.injected[0].honest_send);
    }

    #[test]
    fn error_display_is_informative() {
        let e = AdvActionError::RemovalNeedsStrongAdaptivity;
        assert!(e.to_string().contains("strongly adaptive"));
    }
}
