//! Security-property evaluation: consistency, validity, termination
//! (Appendix A.2 of the paper).

use crate::engine::RunReport;
use crate::ids::{Bit, NodeId};

/// Which problem variant a run solved, determining the validity rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Problem {
    /// Agreement version: every node has an input; validity binds only when
    /// all honest inputs agree.
    Agreement,
    /// Broadcast version: a designated sender propagates its input; validity
    /// binds only when the sender is forever-honest.
    Broadcast {
        /// The designated sender.
        sender: NodeId,
    },
}

/// The verdict on one execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// All forever-honest outputs equal (vacuously true with < 2 of them).
    pub consistent: bool,
    /// The variant-specific validity property held (vacuously true when its
    /// precondition does not).
    pub valid: bool,
    /// Every forever-honest node halted with an output.
    pub terminated: bool,
}

impl Verdict {
    /// True when all three properties hold.
    pub fn all_ok(&self) -> bool {
        self.consistent && self.valid && self.terminated
    }
}

/// Evaluates the paper's three security properties over a finished run.
///
/// Only *forever-honest* nodes are inspected — the definitions quantify over
/// nodes that remain honest to the end of the execution.
pub fn evaluate(problem: Problem, report: &RunReport) -> Verdict {
    let honest: Vec<NodeId> = report.forever_honest().collect();
    let outputs: Vec<Option<Bit>> = honest.iter().map(|i| report.outputs[i.index()]).collect();

    let terminated =
        honest.iter().all(|i| report.halted[i.index()] && report.outputs[i.index()].is_some());

    let decided: Vec<Bit> = outputs.iter().flatten().copied().collect();
    let consistent = decided.windows(2).all(|w| w[0] == w[1]);

    let valid = match problem {
        Problem::Agreement => {
            let honest_inputs: Vec<Bit> = honest.iter().map(|i| report.inputs[i.index()]).collect();
            let unanimous = honest_inputs.windows(2).all(|w| w[0] == w[1]);
            if unanimous && !honest_inputs.is_empty() {
                let b = honest_inputs[0];
                outputs.iter().all(|o| *o == Some(b))
            } else {
                true // validity binds only under unanimous honest inputs
            }
        }
        Problem::Broadcast { sender } => {
            if report.corrupt_at[sender.index()].is_none() {
                let b = report.inputs[sender.index()];
                outputs.iter().all(|o| *o == Some(b))
            } else {
                true // validity binds only for a forever-honest sender
            }
        }
    };

    Verdict { consistent, valid, terminated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Round;
    use crate::metrics::Metrics;

    fn report(
        inputs: Vec<Bit>,
        outputs: Vec<Option<Bit>>,
        corrupt: Vec<Option<Round>>,
    ) -> RunReport {
        let n = inputs.len();
        RunReport {
            halted: outputs.iter().map(|o| o.is_some()).collect(),
            output_rounds: vec![None; n],
            outputs,
            corrupt_at: corrupt,
            metrics: Metrics::default(),
            rounds_used: 1,
            inputs,
        }
    }

    #[test]
    fn unanimous_agreement_all_ok() {
        let r = report(
            vec![true, true, true],
            vec![Some(true), Some(true), Some(true)],
            vec![None, None, None],
        );
        let v = evaluate(Problem::Agreement, &r);
        assert!(v.all_ok());
    }

    #[test]
    fn split_outputs_violate_consistency() {
        let r = report(
            vec![true, true, true],
            vec![Some(true), Some(false), Some(true)],
            vec![None, None, None],
        );
        let v = evaluate(Problem::Agreement, &r);
        assert!(!v.consistent);
        assert!(!v.valid); // unanimous inputs were true
    }

    #[test]
    fn validity_vacuous_on_mixed_inputs() {
        let r = report(
            vec![true, false, true],
            vec![Some(false), Some(false), Some(false)],
            vec![None, None, None],
        );
        let v = evaluate(Problem::Agreement, &r);
        assert!(v.consistent);
        assert!(v.valid, "mixed inputs make validity vacuous");
    }

    #[test]
    fn corrupt_nodes_ignored() {
        // Node 1 corrupt and "output" garbage — only honest outputs matter.
        let r = report(
            vec![true, true, true],
            vec![Some(true), Some(false), Some(true)],
            vec![None, Some(Round(0)), None],
        );
        let v = evaluate(Problem::Agreement, &r);
        assert!(v.consistent);
        assert!(v.valid);
    }

    #[test]
    fn broadcast_validity_tracks_sender() {
        // Honest sender with input true; everyone must output true.
        let r = report(
            vec![true, false, false],
            vec![Some(true), Some(true), Some(true)],
            vec![None, None, None],
        );
        let v = evaluate(Problem::Broadcast { sender: NodeId(0) }, &r);
        assert!(v.all_ok());

        // Wrong output violates broadcast validity even though consistent.
        let r = report(
            vec![true, false, false],
            vec![Some(false), Some(false), Some(false)],
            vec![None, None, None],
        );
        let v = evaluate(Problem::Broadcast { sender: NodeId(0) }, &r);
        assert!(v.consistent);
        assert!(!v.valid);

        // Corrupt sender: validity vacuous, consistency still required.
        let r = report(
            vec![true, false, false],
            vec![Some(false), Some(false), Some(false)],
            vec![Some(Round(0)), None, None],
        );
        let v = evaluate(Problem::Broadcast { sender: NodeId(0) }, &r);
        assert!(v.valid);
        assert!(v.consistent);
    }

    #[test]
    fn missing_output_is_termination_failure() {
        let r = report(vec![true, true], vec![Some(true), None], vec![None, None]);
        let v = evaluate(Problem::Agreement, &r);
        assert!(!v.terminated);
        // Consistency judged over decided outputs only.
        assert!(v.consistent);
    }
}
