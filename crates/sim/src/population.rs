//! The sparse population engine: materialize only active nodes, stream the
//! rest.
//!
//! The paper's subquadratic protocols have a structural property the dense
//! engine ignores: in any round, only `O(λ · polylog n)` nodes *speak* —
//! committee members elected through `F_mine` — while the silent majority
//! merely listens to multicasts and updates identical local state. At
//! `n = 10^5..10^6` the dense engine pays `O(n)` memory for protocol
//! instances and `O(n · multicasts)` for inbox fan-out, which caps feasible
//! grid sizes long before the paper's asymptotics become visible.
//!
//! [`run_sparse`] keeps three things instead of `n` live nodes:
//!
//! * a **live set** (`BTreeMap` keyed by node id, so every merge iterates in
//!   node-id order exactly like the dense engine): committee members named by
//!   the [`ActivationOracle`], every corrupt node, and any node that has
//!   received a targeted message;
//! * a **multicast history** `delivered[r]` — the messages every silent node
//!   would hold at the start of round `r`. One retained copy stands in for
//!   `n - live` identical inboxes;
//! * two **ghost instances**, one per input bit, that replay the silent
//!   majority's state machine. A silent node's observable bookkeeping
//!   (output, output round, halted flag) is mirrored from the ghost carrying
//!   its input.
//!
//! When a silent node is touched — the oracle names it, the adversary
//! corrupts it, or a unicast/injection reaches it — it is **lazily
//! materialized**: a fresh instance is built with the same per-node seed the
//! dense engine would have used ([`crate::engine`]'s `node_seed`), replayed
//! through the multicast history, and inserted into the live set. The replay
//! asserts the node stayed silent in every replayed round; a protocol whose
//! oracle under-approximates its speakers fails loudly instead of silently
//! diverging.
//!
//! # Byte-identity
//!
//! Wherever a protocol family supports sparse execution, a sparse run's
//! [`RunReport`] is **equal** to the dense run's at every thread count: same
//! outputs, rounds, corruption schedule, and every protocol observable in
//! [`Metrics`]. The only fields that differ are the engine-memory gauges
//! (`peak_live_nodes`, `peak_resident_msgs`), which are excluded from
//! `Metrics` equality by design. Families that cannot run sparsely (regimes
//! where every node speaks, or id-dependent oracles with per-node side
//! effects) simply do not offer a sparse spec and fall back to the dense
//! engine.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adversary::{AdvCtx, AdvWorld, Adversary};
use crate::engine::{node_seed, BoxedProtocol, NodeStep, RunReport, SimConfig};
use crate::ids::{Bit, NodeId, Round};
use crate::message::{Envelope, Incoming, Message, MsgId, Outbox, Recipient};
use crate::metrics::Metrics;

/// Which engine drives an execution. A resource knob, not a protocol
/// parameter: reports are byte-identical wherever both engines run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PopulationMode {
    /// Materialize all `n` protocol instances up front (the classic engine).
    #[default]
    Dense,
    /// Materialize only active nodes; mirror the silent majority through
    /// ghosts and a retained multicast history. Falls back to dense for
    /// protocol configurations that cannot run sparsely.
    Sparse,
}

impl PopulationMode {
    /// Canonical lowercase name (CLI/wire encoding).
    pub fn as_str(&self) -> &'static str {
        match self {
            PopulationMode::Dense => "dense",
            PopulationMode::Sparse => "sparse",
        }
    }
}

impl std::fmt::Display for PopulationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for PopulationMode {
    type Err = String;

    fn from_str(s: &str) -> Result<PopulationMode, String> {
        match s {
            "dense" => Ok(PopulationMode::Dense),
            "sparse" => Ok(PopulationMode::Sparse),
            other => Err(format!("unknown population mode '{other}' (want dense|sparse)")),
        }
    }
}

/// Names the nodes that may speak (or otherwise need real state) in a round.
///
/// Implementations answer *before* the round runs, typically by probing the
/// eligibility backend's side-effect-free `would_mine`. Over-approximation is
/// safe — activating a node that stays silent costs memory, never
/// observables — but **under-approximation is not**: a node that would have
/// spoken while unmaterialized trips the replay assertion.
pub trait ActivationOracle: Send {
    /// Node ids that must be live when `round` steps. Already-live and
    /// out-of-range ids are ignored; order and duplicates don't matter.
    fn candidates(&mut self, round: Round) -> Vec<NodeId>;
}

/// Everything a protocol family provides to run under the sparse engine.
pub struct SparseSpec<M> {
    /// Builds node `id`'s protocol instance from its per-node seed — the
    /// *same* factory the dense engine uses, so lazily materialized nodes
    /// draw exactly the randomness their dense twins drew.
    pub factory: Box<dyn FnMut(NodeId, u64) -> BoxedProtocol<M> + Send>,
    /// One representative silent node per input bit (`ghosts[0]` holds input
    /// `false`, `ghosts[1]` input `true`), built so that it can never mine a
    /// committee seat (e.g. with a `NeverMine`-wrapped eligibility) and with
    /// an out-of-range id so any accidental send is detectable. Silent
    /// honest nodes mirror the ghost carrying their input.
    pub ghosts: [BoxedProtocol<M>; 2],
    /// Names each round's speakers ahead of the round.
    pub oracle: Box<dyn ActivationOracle>,
}

/// A materialized node: its protocol instance plus its private inbox (the
/// sparse engine has no `n`-wide inbox vectors to index into).
struct LiveNode<M> {
    proto: BoxedProtocol<M>,
    inbox: Vec<Incoming<M>>,
}

/// A ghost: the shared state machine of every silent node with one input bit.
struct Ghost<M> {
    proto: BoxedProtocol<M>,
    /// Set once the ghost halts *and* its halt has been mirrored — from then
    /// on the silent nodes it represents are frozen, exactly as the dense
    /// engine freezes halted honest nodes.
    done: bool,
}

/// The sparse execution driver. Phases 2b–5 of each round are line-for-line
/// the dense engine's ([`crate::engine::Sim`]); phase 2a runs over the live
/// set instead of `0..n`, and activation hooks run at round start (oracle),
/// after intervention (fresh corruptions), and during delivery (targeted
/// messages).
struct SparseSim<M, A> {
    live: BTreeMap<usize, LiveNode<M>>,
    world: AdvWorld<M>,
    adversary: A,
    metrics: Metrics,
    output_rounds: Vec<Option<Round>>,
    max_rounds: u64,
    threads: usize,
    rng: StdRng,
    seed: u64,
    factory: Box<dyn FnMut(NodeId, u64) -> BoxedProtocol<M> + Send>,
    ghosts: [Ghost<M>; 2],
    oracle: Box<dyn ActivationOracle>,
    /// `delivered[r]` = the multicasts every silent honest node holds at the
    /// start of round `r` (so `delivered[0]` is empty). Retained for the
    /// whole run: it is the replay tape for late activations.
    delivered: Vec<Arc<Vec<Incoming<M>>>>,
    /// Total messages in `delivered` (for the resident-message gauge).
    history_msgs: u64,
}

/// Runs one execution under the sparse population engine and returns a report
/// byte-identical to what [`crate::engine::Sim::run_protocol`] produces for
/// the same `(config, inputs, adversary, factory)` — modulo the two
/// engine-memory gauges, which `Metrics` equality ignores.
///
/// # Panics
///
/// Panics if `inputs.len() != config.n` or `config.f >= config.n` (like the
/// dense engine), and if the spec's oracle under-approximates the active set
/// (a replayed node or a ghost attempts to send).
pub fn run_sparse<M: Message + Send + Sync, A: Adversary<M>>(
    config: &SimConfig,
    inputs: Vec<Bit>,
    adversary: A,
    spec: SparseSpec<M>,
) -> RunReport {
    assert_eq!(inputs.len(), config.n, "one input per node");
    assert!(config.f < config.n, "corruption budget must leave one honest node");
    let world = AdvWorld {
        model: config.model,
        f: config.f,
        round: Round::ZERO,
        in_setup: false,
        corrupt_at: vec![None; config.n],
        pending: Vec::new(),
        injected: Vec::new(),
        next_msg_id: 0,
        inputs,
        outputs: vec![None; config.n],
        halted: vec![false; config.n],
        removals: 0,
    };
    let [g0, g1] = spec.ghosts;
    SparseSim {
        live: BTreeMap::new(),
        world,
        adversary,
        metrics: Metrics::default(),
        output_rounds: vec![None; config.n],
        max_rounds: config.max_rounds,
        threads: config.threads.max(1),
        rng: StdRng::seed_from_u64(config.seed ^ 0xAD5E_55A1_D0BE_EF00),
        seed: config.seed,
        factory: spec.factory,
        ghosts: [Ghost { proto: g0, done: false }, Ghost { proto: g1, done: false }],
        oracle: spec.oracle,
        delivered: Vec::new(),
        history_msgs: 0,
    }
    .run()
}

impl<M: Message + Send + Sync, A: Adversary<M>> SparseSim<M, A> {
    fn n(&self) -> usize {
        self.world.corrupt_at.len()
    }

    fn run(mut self) -> RunReport {
        // Setup phase: static adversaries corrupt here.
        self.world.in_setup = true;
        {
            let mut ctx = AdvCtx { world: &mut self.world, rng: &mut self.rng };
            self.adversary.setup(&mut ctx);
        }
        self.world.in_setup = false;
        // Round 0 starts with empty inboxes everywhere.
        self.delivered.push(Arc::new(Vec::new()));
        // Setup-corrupted nodes are live from the start (no rounds to
        // replay yet).
        let setup_corrupt: Vec<usize> =
            (0..self.n()).filter(|&i| self.world.corrupt_at[i].is_some()).collect();
        for i in setup_corrupt {
            self.materialize(i, 0);
        }
        self.gauge_live();

        let mut rounds_used = 0;
        for r in 0..self.max_rounds {
            let round = Round(r);
            self.world.round = round;
            rounds_used = r + 1;
            self.step_round(round);
            // Execution ends when every so-far-honest node has halted.
            let all_honest_halted = (0..self.n())
                .filter(|&i| self.world.corrupt_at[i].is_none())
                .all(|i| self.world.halted[i]);
            if all_honest_halted {
                break;
            }
        }

        self.metrics.rounds = rounds_used;
        self.metrics.corruptions =
            self.world.corrupt_at.iter().filter(|c| c.is_some()).count() as u64;
        self.metrics.removals = self.world.removals as u64;
        RunReport {
            outputs: self.world.outputs.clone(),
            output_rounds: self.output_rounds.clone(),
            corrupt_at: self.world.corrupt_at.clone(),
            halted: self.world.halted.clone(),
            metrics: self.metrics.clone(),
            rounds_used,
            inputs: self.world.inputs.clone(),
        }
    }

    /// Builds node `i` from its dense-identical per-node seed and replays it
    /// through rounds `0..steps` of the multicast history, asserting it stays
    /// silent throughout (a send during replay means the activation oracle
    /// missed a speaker — observables would already have diverged).
    fn materialize(&mut self, i: usize, steps: u64) {
        debug_assert!(!self.live.contains_key(&i), "node {i} is already live");
        let mut proto = (self.factory)(NodeId(i), node_seed(self.seed, i));
        let mut out = Outbox::new();
        for t in 0..steps {
            if proto.halted() {
                break; // the dense engine stops stepping halted honest nodes
            }
            proto.step(Round(t), &self.delivered[t as usize], &mut out);
            assert!(
                out.take().is_empty(),
                "sparse activation: node {i} sent while replaying round {t}; \
                 the activation oracle under-approximated the active set"
            );
        }
        self.live.insert(i, LiveNode { proto, inbox: Vec::new() });
    }

    /// High-water mark of the live set (ghosts excluded: they are engine
    /// bookkeeping, not materialized protocol participants).
    fn gauge_live(&mut self) {
        self.metrics.peak_live_nodes = self.metrics.peak_live_nodes.max(self.live.len() as u64);
    }

    fn step_round(&mut self, round: Round) {
        let n = self.n();
        let r = round.0;

        // 0. Round-start activation: every node the oracle names as a
        // potential speaker this round is replayed to the present and primed
        // with the silent-majority inbox `delivered[r]`.
        let cands = self.oracle.candidates(round);
        for id in cands {
            let i = id.index();
            if i >= n || self.live.contains_key(&i) {
                continue;
            }
            self.materialize(i, r);
            let inbox = self.delivered[r as usize].as_ref().clone();
            self.live.get_mut(&i).expect("just inserted").inbox = inbox;
        }

        // 2a/2b. Step the live set (phase numbering matches the dense
        // engine; sparse has no phase-1 buffer swap — each live node owns
        // its inbox).
        let ids: Vec<usize> = self.live.keys().copied().collect();
        let mut results: Vec<Option<NodeStep<M>>> = ids.iter().map(|_| None).collect();
        {
            let mut entries: Vec<(usize, &mut LiveNode<M>)> =
                self.live.iter_mut().map(|(k, v)| (*k, v)).collect();

            // 2a. So-far-honest live nodes, on worker threads when
            // configured — same merge-in-id-order contract as dense.
            {
                let corrupt_at = &self.world.corrupt_at;
                let halted = &self.world.halted;
                let step_honest = |node: &mut LiveNode<M>, i: usize| -> Option<NodeStep<M>> {
                    if corrupt_at[i].is_some() {
                        return None; // stepped serially in phase 2b
                    }
                    if halted[i] {
                        node.inbox.clear();
                        return None; // halted honest nodes stay silent
                    }
                    let mut outbox = Outbox::new();
                    node.proto.step(round, &node.inbox, &mut outbox);
                    node.inbox.clear();
                    Some(NodeStep {
                        sends: outbox.take(),
                        honest: true,
                        output: node.proto.output(),
                        halted: node.proto.halted(),
                    })
                };
                let k = entries.len();
                let workers = self.threads.min(k).max(1);
                if workers <= 1 {
                    for (slot, (i, node)) in results.iter_mut().zip(entries.iter_mut()) {
                        *slot = step_honest(node, *i);
                    }
                } else {
                    let chunk = k.div_ceil(workers);
                    std::thread::scope(|scope| {
                        for (ents, slots) in
                            entries.chunks_mut(chunk).zip(results.chunks_mut(chunk))
                        {
                            let step_honest = &step_honest;
                            scope.spawn(move || {
                                for ((i, node), slot) in ents.iter_mut().zip(slots) {
                                    *slot = step_honest(node, *i);
                                }
                            });
                        }
                    });
                }
            }

            // Ghosts step with the silent-majority inbox. They were built
            // never to win a committee seat, so a send here means the
            // protocol configuration is not sparse-safe.
            let start_inbox = Arc::clone(&self.delivered[r as usize]);
            for (b, g) in self.ghosts.iter_mut().enumerate() {
                if g.done {
                    continue;
                }
                let mut gout = Outbox::new();
                g.proto.step(round, &start_inbox, &mut gout);
                assert!(
                    gout.take().is_empty(),
                    "sparse ghost (input bit {b}) attempted to send in round {r}; \
                     this protocol configuration is not sparse-safe"
                );
            }

            // 2b. Corrupt nodes serially, in node-id order (BTreeMap order),
            // preserving the adversary's call sequence.
            for ((i, node), slot) in entries.iter_mut().zip(results.iter_mut()) {
                if self.world.corrupt_at[*i].is_none() {
                    continue;
                }
                let inbox = std::mem::take(&mut node.inbox);
                let mut filtered = self.adversary.filter_corrupt_inbox(NodeId(*i), inbox, round);
                let mut outbox = Outbox::new();
                node.proto.step(round, &filtered, &mut outbox);
                filtered.clear();
                node.inbox = filtered;
                let sends = self.adversary.corrupt_outbox(NodeId(*i), outbox.take(), round);
                *slot = Some(NodeStep { sends, honest: false, output: None, halted: false });
            }
        }

        // 2c. Merge in node-id order. Silent nodes have no sends by
        // definition, so skipping them leaves the message-id sequence
        // exactly as the dense engine assigns it.
        let mut pending: Vec<Envelope<M>> = Vec::new();
        for (i, slot) in ids.iter().copied().zip(results) {
            let Some(step) = slot else { continue };
            for (to, msg) in step.sends {
                let id = MsgId(self.world.next_msg_id);
                self.world.next_msg_id += 1;
                pending.push(Envelope {
                    id,
                    from: NodeId(i),
                    to,
                    round,
                    honest_send: step.honest,
                    removed: false,
                    msg: Arc::new(msg),
                });
            }
            if step.honest {
                if let Some(bit) = step.output {
                    if self.world.outputs[i].is_none() {
                        self.world.outputs[i] = Some(bit);
                        self.output_rounds[i] = Some(round);
                    }
                }
                self.world.halted[i] = step.halted;
            }
        }
        // Mirror ghost bookkeeping onto silent honest nodes, with the same
        // set-once output rule and halt freezing the dense merge applies.
        for i in 0..n {
            if self.world.corrupt_at[i].is_some() || self.live.contains_key(&i) {
                continue;
            }
            let g = &self.ghosts[usize::from(self.world.inputs[i])];
            if g.done {
                continue; // frozen, like a dense halted honest node
            }
            if let Some(bit) = g.proto.output() {
                if self.world.outputs[i].is_none() {
                    self.world.outputs[i] = Some(bit);
                    self.output_rounds[i] = Some(round);
                }
            }
            self.world.halted[i] = g.proto.halted();
        }
        for g in self.ghosts.iter_mut() {
            if !g.done && g.proto.halted() {
                g.done = true;
            }
        }

        // 3. Meter sends (identical to dense).
        for env in &pending {
            match (env.honest_send, env.to) {
                (true, Recipient::All) => {
                    self.metrics.honest_multicasts += 1;
                    self.metrics.honest_multicast_bits += env.msg.size_bits() as u64;
                    self.metrics.honest_cert_bits += env.msg.cert_bits() as u64;
                }
                (true, Recipient::One(_)) => {
                    self.metrics.honest_unicasts += 1;
                    self.metrics.honest_unicast_bits += env.msg.size_bits() as u64;
                    self.metrics.honest_cert_bits += env.msg.cert_bits() as u64;
                }
                (false, _) => {
                    self.metrics.corrupt_sends += 1;
                    self.metrics.corrupt_bits += env.msg.size_bits() as u64;
                }
            }
        }

        // 4. Adversary intervention (identical to dense), then materialize
        // any node corrupted this round while silent: its dense twin stepped
        // honestly through round `r`, so the replay includes round `r`.
        self.world.pending = pending;
        {
            let mut ctx = AdvCtx { world: &mut self.world, rng: &mut self.rng };
            self.adversary.intervene(&mut ctx);
        }
        let injected = std::mem::take(&mut self.world.injected);
        for env in &injected {
            self.metrics.corrupt_sends += 1;
            self.metrics.corrupt_bits += env.msg.size_bits() as u64;
            self.metrics.injected_sends += 1;
            debug_assert!(!env.honest_send);
        }
        let mut deliverable = std::mem::take(&mut self.world.pending);
        deliverable.extend(injected);

        let newly_corrupt: Vec<usize> = (0..n)
            .filter(|&i| self.world.corrupt_at[i] == Some(round) && !self.live.contains_key(&i))
            .collect();
        for i in newly_corrupt {
            self.materialize(i, r + 1);
        }

        // 5. Delivery. Multicasts fan out to live inboxes and are retained
        // once in the history; a targeted message reaching a silent node
        // activates it mid-loop with exactly the inbox its dense twin holds
        // at that point (all multicasts delivered so far, in envelope
        // order — earlier unicasts to it would have activated it already).
        let mut mcasts: Vec<Incoming<M>> = Vec::new();
        for env in deliverable {
            if env.removed {
                continue;
            }
            match env.to {
                Recipient::All => {
                    let inc = Incoming { from: env.from, msg: Arc::clone(&env.msg) };
                    for node in self.live.values_mut() {
                        node.inbox.push(inc.clone());
                    }
                    mcasts.push(inc);
                }
                Recipient::One(target) => {
                    let t = target.index();
                    if t < n {
                        if !self.live.contains_key(&t) {
                            self.materialize(t, r + 1);
                            self.live.get_mut(&t).expect("just inserted").inbox = mcasts.clone();
                        }
                        self.live
                            .get_mut(&t)
                            .expect("live")
                            .inbox
                            .push(Incoming { from: env.from, msg: env.msg });
                    } else {
                        debug_assert!(
                            !env.honest_send,
                            "honest node {:?} unicast to out-of-range node {:?}",
                            env.from, target
                        );
                        self.metrics.dropped_sends += 1;
                    }
                }
            }
        }
        self.history_msgs += mcasts.len() as u64;
        self.delivered.push(Arc::new(mcasts));

        // Gauges: live-set high-water mark and resident messages (live
        // inboxes plus the retained history standing in for silent inboxes).
        self.gauge_live();
        let live_resident: u64 = self.live.values().map(|nd| nd.inbox.len() as u64).sum();
        self.metrics.peak_resident_msgs =
            self.metrics.peak_resident_msgs.max(live_resident + self.history_msgs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CorruptionModel, Passive};
    use crate::engine::Sim;
    use crate::protocol::Protocol;

    #[derive(Clone, Debug)]
    struct Vote(u64);

    impl Message for Vote {
        fn size_bits(&self) -> usize {
            64
        }
    }

    /// A sparse-safe toy: a fixed committee multicasts its input in round 0,
    /// everyone tallies in round 1 and halts. Nodes outside the committee
    /// never send, and their state depends only on the multicast stream —
    /// exactly the structure the real subquadratic protocols have.
    struct CommitteeVote {
        input: Bit,
        speaks: bool,
        decided: Option<Bit>,
        /// When poked by a targeted `Vote(99)`, echo a multicast next round
        /// (exercises delivery-time activation followed by live sends).
        poked: bool,
    }

    impl CommitteeVote {
        fn new(input: Bit, speaks: bool) -> CommitteeVote {
            CommitteeVote { input, speaks, decided: None, poked: false }
        }
    }

    impl Protocol<Vote> for CommitteeVote {
        fn step(&mut self, round: Round, inbox: &[Incoming<Vote>], out: &mut Outbox<Vote>) {
            if inbox.iter().any(|m| m.msg.0 == 99) {
                self.poked = true;
            }
            match round.0 {
                0 if self.speaks => {
                    out.multicast(Vote(self.input as u64));
                }
                1 => {
                    if self.poked {
                        out.multicast(Vote(7));
                    }
                    let ones = inbox.iter().filter(|m| m.msg.0 == 1).count();
                    let zeros = inbox.iter().filter(|m| m.msg.0 == 0).count();
                    self.decided = Some(ones >= zeros);
                }
                _ => {}
            }
        }

        fn output(&self) -> Option<Bit> {
            self.decided
        }

        fn halted(&self) -> bool {
            self.decided.is_some()
        }
    }

    const COMMITTEE: usize = 4;

    fn committee_factory(
        inputs: Vec<Bit>,
    ) -> impl FnMut(NodeId, u64) -> BoxedProtocol<Vote> + Send {
        move |id: NodeId, _seed: u64| -> BoxedProtocol<Vote> {
            let input = inputs.get(id.index()).copied().unwrap_or(false);
            Box::new(CommitteeVote::new(input, id.index() < COMMITTEE))
        }
    }

    struct CommitteeOracle;

    impl ActivationOracle for CommitteeOracle {
        fn candidates(&mut self, _round: Round) -> Vec<NodeId> {
            (0..COMMITTEE).map(NodeId).collect()
        }
    }

    fn spec_for(inputs: &[Bit], _n: usize) -> SparseSpec<Vote> {
        SparseSpec {
            factory: Box::new(committee_factory(inputs.to_vec())),
            ghosts: [
                Box::new(CommitteeVote::new(false, false)),
                Box::new(CommitteeVote::new(true, false)),
            ],
            oracle: Box::new(CommitteeOracle),
        }
    }

    fn mixed_inputs(n: usize) -> Vec<Bit> {
        (0..n).map(|i| i % 3 == 0).collect()
    }

    #[test]
    fn sparse_report_byte_identical_to_dense_passive() {
        let n = 64;
        let inputs = mixed_inputs(n);
        let cfg = SimConfig::new(n, 0, CorruptionModel::Static, 11);
        let dense =
            Sim::run_protocol(&cfg, inputs.clone(), Passive, committee_factory(inputs.clone()));
        let sparse = run_sparse(&cfg, inputs.clone(), Passive, spec_for(&inputs, n));
        assert_eq!(sparse, dense);
        // The point of the exercise: far fewer live nodes.
        assert!(sparse.metrics.peak_live_nodes <= COMMITTEE as u64);
        assert_eq!(dense.metrics.peak_live_nodes, n as u64);
        assert!(sparse.metrics.peak_resident_msgs < dense.metrics.peak_resident_msgs);
    }

    #[test]
    fn sparse_identical_across_thread_counts() {
        let n = 40;
        let inputs = mixed_inputs(n);
        let base = SimConfig::new(n, 0, CorruptionModel::Static, 3);
        let serial = run_sparse(&base, inputs.clone(), Passive, spec_for(&inputs, n));
        for threads in [2usize, 4, 64] {
            let cfg = base.clone().with_threads(threads);
            let multi = run_sparse(&cfg, inputs.clone(), Passive, spec_for(&inputs, n));
            assert_eq!(multi, serial, "threads={threads} changed the sparse execution");
        }
    }

    /// Adversary that corrupts committee node 0 at setup and silences it.
    struct SilenceZero;

    impl Adversary<Vote> for SilenceZero {
        fn setup(&mut self, ctx: &mut AdvCtx<'_, Vote>) {
            ctx.corrupt(NodeId(0)).expect("budget");
        }

        fn corrupt_outbox(
            &mut self,
            _node: NodeId,
            _planned: Vec<(Recipient, Vote)>,
            _round: Round,
        ) -> Vec<(Recipient, Vote)> {
            Vec::new()
        }
    }

    #[test]
    fn sparse_matches_dense_with_setup_corruption() {
        let n = 48;
        let inputs = mixed_inputs(n);
        let cfg = SimConfig::new(n, 1, CorruptionModel::Static, 7);
        let dense =
            Sim::run_protocol(&cfg, inputs.clone(), SilenceZero, committee_factory(inputs.clone()));
        let sparse = run_sparse(&cfg, inputs.clone(), SilenceZero, spec_for(&inputs, n));
        assert_eq!(sparse, dense);
        assert_eq!(sparse.corrupt_at[0], Some(Round::ZERO));
    }

    /// Corrupts a *silent* node mid-run and injects unicasts at silent
    /// targets — both in-range (delivery-time activation) and out-of-range
    /// (dropped-send accounting).
    struct PokeSilent;

    impl Adversary<Vote> for PokeSilent {
        fn intervene(&mut self, ctx: &mut AdvCtx<'_, Vote>) {
            if ctx.round().0 == 0 {
                // Node 30 is far outside the committee: silent until now.
                ctx.corrupt(NodeId(30)).expect("budget");
                ctx.inject(NodeId(30), Recipient::One(NodeId(25)), Vote(99)).expect("inject");
                ctx.inject(NodeId(30), Recipient::One(NodeId(9999)), Vote(99)).expect("inject");
            }
        }
    }

    #[test]
    fn sparse_matches_dense_under_silent_corruption_and_injection() {
        let n = 40;
        let inputs = mixed_inputs(n);
        let cfg = SimConfig::new(n, 1, CorruptionModel::Adaptive, 5);
        let dense =
            Sim::run_protocol(&cfg, inputs.clone(), PokeSilent, committee_factory(inputs.clone()));
        let sparse = run_sparse(&cfg, inputs.clone(), PokeSilent, spec_for(&inputs, n));
        assert_eq!(sparse, dense);
        // The poked node (25) echoed a multicast after delivery-time
        // activation; the out-of-range injection was dropped in both modes.
        assert_eq!(sparse.metrics.dropped_sends, 1);
        assert_eq!(sparse.metrics.injected_sends, 2);
        assert!(sparse.metrics.honest_multicasts > COMMITTEE as u64);
    }

    /// An oracle that misses a speaker must fail the replay assertion, not
    /// silently drop that node's messages.
    #[test]
    #[should_panic(expected = "under-approximated")]
    fn under_approximating_oracle_panics() {
        struct MissesNodeZero;
        impl ActivationOracle for MissesNodeZero {
            fn candidates(&mut self, _round: Round) -> Vec<NodeId> {
                (1..COMMITTEE).map(NodeId).collect()
            }
        }
        let n = 16;
        let inputs = mixed_inputs(n);
        let cfg = SimConfig::new(n, 1, CorruptionModel::Adaptive, 2);
        // Corrupting node 0 at round 1 forces its late materialization; the
        // replay of round 0 catches the send the oracle hid.
        struct CorruptZeroLate;
        impl Adversary<Vote> for CorruptZeroLate {
            fn intervene(&mut self, ctx: &mut AdvCtx<'_, Vote>) {
                if ctx.round().0 == 1 {
                    ctx.corrupt(NodeId(0)).expect("budget");
                }
            }
        }
        let spec = SparseSpec {
            factory: Box::new(committee_factory(inputs.clone())),
            ghosts: [
                Box::new(CommitteeVote::new(false, false)),
                Box::new(CommitteeVote::new(true, false)),
            ],
            oracle: Box::new(MissesNodeZero),
        };
        let _ = run_sparse(&cfg, inputs, CorruptZeroLate, spec);
    }

    /// A ghost that would speak (mis-built spec) must also fail loudly.
    #[test]
    #[should_panic(expected = "not sparse-safe")]
    fn speaking_ghost_panics() {
        let n = 8;
        let inputs = mixed_inputs(n);
        let cfg = SimConfig::new(n, 0, CorruptionModel::Static, 1);
        let spec = SparseSpec {
            factory: Box::new(committee_factory(inputs.clone())),
            // Wrong: ghosts built as committee members.
            ghosts: [
                Box::new(CommitteeVote::new(false, true)),
                Box::new(CommitteeVote::new(true, true)),
            ],
            oracle: Box::new(CommitteeOracle),
        };
        let _ = run_sparse(&cfg, inputs, Passive, spec);
    }

    #[test]
    fn population_mode_round_trips_through_str() {
        for mode in [PopulationMode::Dense, PopulationMode::Sparse] {
            let parsed: PopulationMode = mode.as_str().parse().expect("round trip");
            assert_eq!(parsed, mode);
        }
        assert!("ultra".parse::<PopulationMode>().is_err());
        assert_eq!(PopulationMode::default(), PopulationMode::Dense);
    }
}
