//! Core identifier newtypes shared by the whole simulation stack.

use std::fmt;

/// Identifies one of the `n` protocol nodes (`0..n`).
///
/// The paper numbers nodes `0, 1, ..., n-1` and uses the convention that
/// node `0` is the designated sender in Byzantine Broadcast; we keep both.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The Byzantine Broadcast designated sender (node 0, paper convention).
    pub const SENDER: NodeId = NodeId(0);

    /// Returns the raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// A synchronous round number.
///
/// Messages multicast by so-far-honest nodes in round `r` are delivered to
/// every honest node at the beginning of round `r + 1` (the paper's
/// synchrony assumption, Appendix A.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Round(pub u64);

impl Round {
    /// The first round of the execution.
    pub const ZERO: Round = Round(0);

    /// The next round.
    pub fn next(&self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round-{}", self.0)
    }
}

/// A protocol bit (BA is studied in its binary form throughout the paper).
pub type Bit = bool;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_ordering_and_display() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::SENDER, NodeId(0));
        assert_eq!(NodeId(3).to_string(), "node-3");
        assert_eq!(NodeId::from(7).index(), 7);
    }

    #[test]
    fn round_progression() {
        assert_eq!(Round::ZERO.next(), Round(1));
        assert_eq!(Round(41).next(), Round(42));
        assert_eq!(Round(5).to_string(), "round-5");
    }
}
