//! Property-based tests for the simulator's metrics and verdict logic.

use ba_sim::engine::RunReport;
use ba_sim::{evaluate, Metrics, NodeId, Problem, Round};
use proptest::prelude::*;

fn arb_metrics() -> impl Strategy<Value = Metrics> {
    (
        0u64..1000,
        0u64..100_000,
        0u64..1000,
        0u64..100_000,
        0u64..1000,
        0u64..100,
        0u64..100,
        0u64..100,
    )
        .prop_map(|(hm, hmb, hu, hub, cs, r, c, rem)| Metrics {
            honest_multicasts: hm,
            honest_multicast_bits: hmb,
            honest_unicasts: hu,
            honest_unicast_bits: hub,
            honest_cert_bits: hub / 2,
            corrupt_sends: cs,
            corrupt_bits: cs * 100,
            injected_sends: cs / 3,
            rounds: r,
            corruptions: c,
            removals: rem,
            dropped_sends: cs / 2,
            peak_live_nodes: hm % 17,
            peak_resident_msgs: hmb % 31,
            latency: None,
            faults: None,
        })
}

fn report_from(inputs: Vec<bool>, outputs: Vec<Option<bool>>, corrupt: Vec<bool>) -> RunReport {
    let n = inputs.len();
    RunReport {
        halted: outputs.iter().map(|o| o.is_some()).collect(),
        output_rounds: vec![None; n],
        outputs,
        corrupt_at: corrupt.into_iter().map(|c| if c { Some(Round(0)) } else { None }).collect(),
        metrics: Metrics::default(),
        rounds_used: 1,
        inputs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(a in arb_metrics(), b in arb_metrics()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in arb_metrics(), b in arb_metrics(), c in arb_metrics()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn classical_messages_scale_linearly_in_n(m in arb_metrics(), n in 1usize..100) {
        let expected = m.honest_multicasts * n as u64 + m.honest_unicasts;
        prop_assert_eq!(m.classical_messages(n), expected);
    }

    #[test]
    fn uniform_honest_outputs_are_consistent(
        outputs_bit in any::<bool>(),
        n in 2usize..20,
        corrupt_mask in prop::collection::vec(any::<bool>(), 2..20),
    ) {
        let n = n.min(corrupt_mask.len());
        let inputs = vec![false; n];
        let outputs = vec![Some(outputs_bit); n];
        let corrupt: Vec<bool> = corrupt_mask[..n].to_vec();
        prop_assume!(corrupt.iter().any(|c| !c)); // at least one honest
        let report = report_from(inputs, outputs, corrupt);
        let v = evaluate(Problem::Agreement, &report);
        prop_assert!(v.consistent);
        prop_assert!(v.terminated);
    }

    #[test]
    fn corrupt_outputs_never_affect_consistency(
        honest_bit in any::<bool>(),
        corrupt_bits in prop::collection::vec(any::<Option<bool>>(), 1..8),
        honest_count in 1usize..8,
    ) {
        let n = honest_count + corrupt_bits.len();
        let inputs = vec![honest_bit; n];
        let mut outputs = vec![Some(honest_bit); honest_count];
        outputs.extend(corrupt_bits.iter().cloned());
        let mut corrupt = vec![false; honest_count];
        corrupt.extend(std::iter::repeat_n(true, corrupt_bits.len()));
        let report = report_from(inputs, outputs, corrupt);
        let v = evaluate(Problem::Agreement, &report);
        prop_assert!(v.consistent && v.valid && v.terminated);
    }

    #[test]
    fn agreement_validity_requires_unanimity_to_bind(
        inputs in prop::collection::vec(any::<bool>(), 2..16),
        output_bit in any::<bool>(),
    ) {
        let n = inputs.len();
        let unanimous = inputs.windows(2).all(|w| w[0] == w[1]);
        let outputs = vec![Some(output_bit); n];
        let report = report_from(inputs.clone(), outputs, vec![false; n]);
        let v = evaluate(Problem::Agreement, &report);
        if unanimous && inputs[0] != output_bit {
            prop_assert!(!v.valid, "unanimous {} but output {}", inputs[0], output_bit);
        } else {
            prop_assert!(v.valid);
        }
    }

    #[test]
    fn broadcast_validity_binds_to_honest_sender(
        sender_input in any::<bool>(),
        output_bit in any::<bool>(),
        sender_corrupt in any::<bool>(),
        n in 2usize..12,
    ) {
        let mut inputs = vec![false; n];
        inputs[0] = sender_input;
        let outputs = vec![Some(output_bit); n];
        let mut corrupt = vec![false; n];
        corrupt[0] = sender_corrupt;
        let report = report_from(inputs, outputs, corrupt);
        let v = evaluate(Problem::Broadcast { sender: NodeId(0) }, &report);
        if !sender_corrupt && output_bit != sender_input {
            prop_assert!(!v.valid);
        } else {
            prop_assert!(v.valid);
        }
        prop_assert!(v.consistent);
    }

    #[test]
    fn missing_output_fails_termination(
        n in 2usize..12,
        missing in 0usize..12,
    ) {
        prop_assume!(missing < n);
        let inputs = vec![true; n];
        let mut outputs = vec![Some(true); n];
        outputs[missing] = None;
        let report = report_from(inputs, outputs, vec![false; n]);
        let v = evaluate(Problem::Agreement, &report);
        prop_assert!(!v.terminated);
    }
}
