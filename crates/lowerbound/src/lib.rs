//! # ba-lowerbound
//!
//! Executable renditions of the paper's two lower bounds. Both proofs are
//! constructive, so instead of formalizing them we *run* them:
//!
//! * [`theorem4`] — **Theorem 1/4** (Ω(f²) messages under a strongly
//!   adaptive adversary): the randomized Dolev–Reischuk pair `A` (message
//!   counting) and `A′` (after-the-fact isolation of a random `p ∈ V`),
//!   executed against a message-budget-parameterized broadcast family. The
//!   measured violation rate collapses exactly when the protocol's message
//!   budget crosses the adversary's corruption budget.
//! * [`theorem3`] — **Theorem 3** (no sublinear-multicast BA without
//!   setup): the `Q — 1 — Q′` merged execution with its two
//!   interpretations, demonstrating that the shared node 1 cannot be
//!   consistent with both worlds while each world's validity pins its
//!   output, and that the adaptive simulation needs only as many
//!   corruptions as the protocol has speakers.

pub mod theorem3;
pub mod theorem4;

pub use theorem3::{run_experiment, NoSetupBb, Theorem3Report};
pub use theorem4::{run_cell, DolevReischukA, DolevReischukAPrime, RelayBb, Theorem4Row};
