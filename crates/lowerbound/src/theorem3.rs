//! Theorem 3: without setup assumptions, sublinear-multicast BA is
//! impossible — the `Q — 1 — Q′` hypothetical experiment (§4, Appendix B).
//!
//! We execute the proof's construction literally:
//!
//! * `2n − 1` instances of a candidate **setup-free** multicast broadcast
//!   protocol run simultaneously: the set `Q` (nodes `2..=n`, sender input
//!   `0`), the set `Q′` (another copy of nodes `2..=n`, sender input `1`),
//!   and the shared node `1` that hears both sides and cannot tell them
//!   apart (channels authenticate only the *claimed identity*, and `i ∈ Q`
//!   and `i ∈ Q′` claim the same identity).
//! * **Corrupt-1 interpretation**: node 1 is corrupt and simulates all of
//!   `Q′` in its head ⇒ by validity, `Q` outputs 0 (and symmetrically `Q′`
//!   outputs 1).
//! * **Honest-1 interpretation**: `Q ∪ {1}` are real; the adversary
//!   simulates `Q′` and adaptively corrupts the *corresponding* node in `Q`
//!   whenever its simulated twin wants to speak — needing only as many
//!   corruptions as there are distinct speakers, which is bounded by the
//!   protocol's multicast complexity `C`. By consistency, node 1 must agree
//!   with `Q` (output 0) — and by the symmetric interpretation with `Q′`
//!   (output 1). Contradiction.
//!
//! The harness runs the merged execution on a candidate committee-relay
//! protocol ([`NoSetupBb`]), verifies both sides' validity, counts the
//! corruptions the honest-1 interpretation would need, and reports which
//! property node 1 ends up violating.

use ba_sim::{Bit, Incoming, Message, NodeId, Outbox, Protocol, Round};

/// Message of the setup-free candidate protocol: a bare (unauthenticated
/// beyond channel identity) bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlainMsg(pub Bit);

impl Message for PlainMsg {
    fn size_bits(&self) -> usize {
        8
    }
}

/// A candidate sublinear-multicast broadcast **without any setup**: the
/// sender (node 2, per the proof's numbering) multicasts its bit; a public
/// committee (nodes `2..2+k`, identity-based, no PKI needed) echoes it; all
/// nodes output the majority of the echoes, defaulting to their last
/// received sender bit. Multicast complexity: `k + 1` multicasts.
pub struct NoSetupBb {
    id: usize,
    committee_size: usize,
    input: Bit,
    sender_bit: Option<Bit>,
    echo_votes: [usize; 2],
    output: Option<Bit>,
    done: bool,
}

/// The proof's designated sender is node 2.
pub const SENDER: usize = 2;

impl NoSetupBb {
    /// Creates node `id` (ids `1..=n` per the proof's numbering).
    pub fn new(id: usize, committee_size: usize, input: Bit) -> NoSetupBb {
        NoSetupBb {
            id,
            committee_size,
            input,
            sender_bit: None,
            echo_votes: [0, 0],
            output: None,
            done: false,
        }
    }
}

impl Protocol<PlainMsg> for NoSetupBb {
    fn step(&mut self, round: Round, inbox: &[Incoming<PlainMsg>], out: &mut Outbox<PlainMsg>) {
        for m in inbox {
            match round.0 {
                1 if m.from == NodeId(SENDER) => {
                    self.sender_bit = Some(m.msg.0);
                }
                2 => {
                    let committee = (SENDER..SENDER + self.committee_size).contains(&m.from.0);
                    if committee {
                        self.echo_votes[m.msg.0 as usize] += 1;
                    }
                }
                _ => {}
            }
        }
        match round.0 {
            0 if self.id == SENDER => {
                out.multicast(PlainMsg(self.input));
            }
            1 => {
                let in_committee = (SENDER..SENDER + self.committee_size).contains(&self.id);
                if in_committee {
                    // Echo the sender bit (committee members that heard
                    // nothing echo the default 0).
                    out.multicast(PlainMsg(self.sender_bit.unwrap_or(false)));
                }
            }
            2 => {
                self.output = Some(if self.echo_votes[1] > self.echo_votes[0] {
                    true
                } else if self.echo_votes[0] > self.echo_votes[1] {
                    false
                } else {
                    self.sender_bit.unwrap_or(false)
                });
                self.done = true;
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<Bit> {
        self.output
    }

    fn halted(&self) -> bool {
        self.done
    }
}

/// Where a hypothetical-experiment instance lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Side {
    /// Node `1`, shared between the two executions.
    Shared,
    /// A node of `Q` (the input-0 world).
    Q,
    /// A node of `Q′` (the input-1 world).
    QPrime,
}

/// The outcome of one merged execution.
#[derive(Clone, Debug)]
pub struct Theorem3Report {
    /// Outputs of `Q` (nodes 2..=n).
    pub q_outputs: Vec<Option<Bit>>,
    /// Outputs of `Q′` (nodes 2..=n).
    pub q_prime_outputs: Vec<Option<Bit>>,
    /// Node 1's output.
    pub node1_output: Option<Bit>,
    /// Distinct `Q′` speakers = adaptive corruptions the honest-1
    /// interpretation needs.
    pub corruptions_needed: usize,
    /// Multicasts performed per side (the multicast complexity `C`).
    pub q_multicasts: usize,
    /// `Q` validity: all of `Q` output the sender's 0.
    pub q_valid: bool,
    /// `Q′` validity: all of `Q′` output the sender's 1.
    pub q_prime_valid: bool,
    /// Whether node 1 disagrees with `Q` (consistency breach in the
    /// honest-1/`Q` interpretation).
    pub node1_inconsistent_with_q: bool,
    /// Whether node 1 disagrees with `Q′` (the symmetric interpretation).
    pub node1_inconsistent_with_q_prime: bool,
}

impl Theorem3Report {
    /// The contradiction Theorem 3 derives: both validities hold, yet node 1
    /// must be inconsistent with one side.
    pub fn contradiction_established(&self) -> bool {
        self.q_valid
            && self.q_prime_valid
            && (self.node1_inconsistent_with_q || self.node1_inconsistent_with_q_prime)
    }
}

/// Runs the merged `Q — 1 — Q′` execution for a candidate protocol with
/// `n` nodes per side and the given committee size.
///
/// Routing, per Appendix B: messages from `Q` reach `Q` and node 1;
/// messages from `Q′` reach `Q′` and node 1; node 1's messages reach both
/// sides. Node 1 cannot distinguish which side a message came from (both
/// sides use the same claimed identities `2..=n`).
pub fn run_experiment(n: usize, committee_size: usize) -> Theorem3Report {
    assert!(n >= 3, "need at least a sender and one more node per side");
    assert!(committee_size >= 1 && SENDER + committee_size <= n + 1);

    // Instances: index 0 = shared node 1; 1..n = Q's nodes 2..=n;
    // n..2n-1 = Q's prime nodes 2..=n.
    let mut instances: Vec<(Side, usize, NoSetupBb)> = Vec::new();
    instances.push((Side::Shared, 1, NoSetupBb::new(1, committee_size, false)));
    for id in 2..=n {
        instances.push((Side::Q, id, NoSetupBb::new(id, committee_size, false)));
    }
    for id in 2..=n {
        instances.push((Side::QPrime, id, NoSetupBb::new(id, committee_size, true)));
    }

    // inboxes[i] = messages delivered to instance i this round.
    let mut inboxes: Vec<Vec<Incoming<PlainMsg>>> = vec![Vec::new(); instances.len()];
    let mut q_speakers: std::collections::BTreeSet<usize> = Default::default();
    let mut q_prime_speakers: std::collections::BTreeSet<usize> = Default::default();
    let mut q_multicasts = 0usize;

    for round in 0..8u64 {
        let mut outgoing: Vec<(Side, usize, PlainMsg)> = Vec::new();
        for (idx, (side, id, node)) in instances.iter_mut().enumerate() {
            let inbox = std::mem::take(&mut inboxes[idx]);
            let mut out = Outbox::new();
            node.step(Round(round), &inbox, &mut out);
            for (to, msg) in out.take() {
                // The candidate protocol is multicast-based.
                assert!(matches!(to, ba_sim::Recipient::All));
                outgoing.push((*side, *id, msg));
                match side {
                    Side::Q => {
                        q_speakers.insert(*id);
                        q_multicasts += 1;
                    }
                    Side::QPrime => {
                        q_prime_speakers.insert(*id);
                    }
                    Side::Shared => {}
                }
            }
        }
        // Deliver with the experiment's routing.
        for (side, id, msg) in outgoing {
            for (idx, (dest_side, _dest_id, _)) in instances.iter().enumerate() {
                let deliver = match (side, dest_side) {
                    // Node 1's multicasts reach both sides.
                    (Side::Shared, _) => true,
                    // Q's multicasts reach Q and node 1.
                    (Side::Q, Side::Q) | (Side::Q, Side::Shared) => true,
                    // Q's prime multicasts reach Q' and node 1.
                    (Side::QPrime, Side::QPrime) | (Side::QPrime, Side::Shared) => true,
                    _ => false,
                };
                if deliver {
                    inboxes[idx].push(Incoming::new(NodeId(id), msg));
                }
            }
        }
    }

    let q_outputs: Vec<Option<Bit>> = instances
        .iter()
        .filter(|(s, _, _)| *s == Side::Q)
        .map(|(_, _, node)| node.output())
        .collect();
    let q_prime_outputs: Vec<Option<Bit>> = instances
        .iter()
        .filter(|(s, _, _)| *s == Side::QPrime)
        .map(|(_, _, node)| node.output())
        .collect();
    let node1_output = instances[0].2.output();

    let q_valid = q_outputs.iter().all(|o| *o == Some(false));
    let q_prime_valid = q_prime_outputs.iter().all(|o| *o == Some(true));
    Theorem3Report {
        node1_inconsistent_with_q: node1_output != Some(false),
        node1_inconsistent_with_q_prime: node1_output != Some(true),
        corruptions_needed: q_prime_speakers.len(),
        q_multicasts,
        q_outputs,
        q_prime_outputs,
        node1_output,
        q_valid,
        q_prime_valid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_protocol_works_standalone() {
        // Outside the hypothetical experiment, the candidate is a perfectly
        // fine broadcast under honest execution.
        use ba_sim::{evaluate, Passive, Problem, Sim, SimConfig};
        let n = 30;
        let committee = 5;
        for bit in [false, true] {
            let cfg = SimConfig::new(n + 2, 0, ba_sim::CorruptionModel::Static, 1);
            let mut inputs = vec![false; n + 2];
            inputs[SENDER] = bit;
            let report = Sim::run_protocol(&cfg, inputs, Passive, move |id, _| {
                Box::new(NoSetupBb::new(id.index(), committee, bit))
            });
            let verdict = evaluate(Problem::Broadcast { sender: NodeId(SENDER) }, &report);
            // Nodes 0 and 1 exist but node 0 is unused in the proof's
            // numbering; everyone still outputs the sender bit.
            assert!(verdict.consistent && verdict.terminated, "bit={bit}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(bit)));
        }
    }

    #[test]
    fn merged_execution_derives_the_contradiction() {
        let report = run_experiment(20, 4);
        assert!(report.q_valid, "Q must output the 0 input: {:?}", report.q_outputs);
        assert!(report.q_prime_valid, "Q' must output the 1 input");
        assert!(
            report.contradiction_established(),
            "node 1 output {:?} cannot agree with both sides",
            report.node1_output
        );
    }

    #[test]
    fn corruptions_needed_tracks_multicast_complexity() {
        for committee in [2usize, 4, 8] {
            let report = run_experiment(24, committee);
            // Speakers per side = sender + committee <= C + 1.
            assert_eq!(report.corruptions_needed, committee + 1 - 1);
            // (committee contains the sender, which is already a speaker)
            assert!(report.corruptions_needed <= report.q_multicasts);
        }
    }

    #[test]
    fn sublinearity_of_the_attack() {
        // The adversary corrupts far fewer nodes than n: the attack needs
        // only the speakers, which is what makes sublinear multicast BA
        // impossible without setup.
        let n = 100;
        let report = run_experiment(n, 6);
        assert!(report.corruptions_needed < n / 4);
        assert!(report.contradiction_established());
    }
}
