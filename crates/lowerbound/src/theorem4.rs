//! Theorem 4 (= Theorem 1): the Dolev–Reischuk pair, extended to randomized
//! protocols under a strongly adaptive adversary.
//!
//! The proof is fully constructive, so we execute it:
//!
//! * A **toy broadcast family** [`RelayBb`] parameterized by a relay fanout
//!   `k`: the sender unicasts its bit to everyone; every recipient relays it
//!   to `k` pseudo-random peers; nodes output the first bit received, or the
//!   default bit `1` if they receive nothing. It satisfies the proof's
//!   structural premise (a node receiving no messages outputs `1` with
//!   probability ≥ 1/2 — here deterministically) and sends `≈ n(k + 1)`
//!   messages.
//! * **Adversary `A`** (the message-counting adversary): statically corrupts
//!   a set `V` of `f/2` non-sender nodes which behave honestly except that
//!   they ignore the first `f/2` messages sent to them and never talk to
//!   each other. Used to *measure* `z`, the messages honest nodes send into
//!   `V`.
//! * **Adversary `A′`** (the isolation adversary): picks `p ∈ V` uniformly;
//!   corrupts the rest of `V`; then, strongly adaptively, corrupts every
//!   node that attempts to send to `p` and **removes the message after the
//!   fact** (the corrupted senders otherwise behave correctly — an omission
//!   adversary). If fewer than the remaining budget of nodes ever try to
//!   reach `p`, `p` is fully isolated, outputs the default `1`, and
//!   consistency breaks against the honest nodes' `0`.
//!
//! The crossover: once the protocol spends enough messages that `|S(p)|`
//! (senders reaching `p`) exceeds the adversary's remaining budget, the
//! attack fails — quantitatively, protocols surviving this adversary must
//! send `Ω(f²)` messages in expectation.

use ba_crypto::hmac::HmacDrbg;
use ba_sim::{
    evaluate, AdvCtx, Adversary, Bit, Incoming, Message, MsgId, NodeId, Outbox, Problem, Protocol,
    Recipient, Round, RunReport, Sim, SimConfig, Verdict,
};

/// Toy broadcast message: just the relayed bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RelayMsg(pub Bit);

impl Message for RelayMsg {
    fn size_bits(&self) -> usize {
        1 + 256 // bit + nominal authentication overhead
    }
}

/// The budget-parameterized unicast broadcast family (see module docs).
pub struct RelayBb {
    id: NodeId,
    n: usize,
    sender: NodeId,
    input: Bit,
    /// Relay fanout `k` — the message-budget knob.
    fanout: usize,
    received: Option<Bit>,
    relayed: bool,
    output: Option<Bit>,
    done: bool,
    rng: HmacDrbg,
    /// Rounds before deciding (propagation depth).
    horizon: u64,
}

impl RelayBb {
    /// Creates a node of the family.
    pub fn new(
        id: NodeId,
        n: usize,
        sender: NodeId,
        input: Bit,
        fanout: usize,
        seed: u64,
    ) -> RelayBb {
        RelayBb {
            id,
            n,
            sender,
            input,
            fanout,
            received: None,
            relayed: false,
            output: None,
            done: false,
            rng: HmacDrbg::new(&seed.to_be_bytes(), b"relay-bb"),
            horizon: 3,
        }
    }
}

impl Protocol<RelayMsg> for RelayBb {
    fn step(&mut self, round: Round, inbox: &[Incoming<RelayMsg>], out: &mut Outbox<RelayMsg>) {
        // Ingest: first received bit wins (sender messages preferred).
        for m in inbox {
            if self.received.is_none() || m.from == self.sender {
                self.received = Some(m.msg.0);
            }
        }
        if round.0 == 0 && self.id == self.sender {
            self.received = Some(self.input);
            for i in 0..self.n {
                if NodeId(i) != self.id {
                    out.unicast(NodeId(i), RelayMsg(self.input));
                }
            }
            self.relayed = true;
        } else if let (Some(bit), false) = (self.received, self.relayed) {
            // Relay to `fanout` pseudo-random peers.
            for _ in 0..self.fanout {
                let target = NodeId((self.rng.next_u64() % self.n as u64) as usize);
                if target != self.id {
                    out.unicast(target, RelayMsg(bit));
                }
            }
            self.relayed = true;
        }
        if round.0 >= self.horizon {
            // Default bit 1 on silence — the proof's structural premise.
            self.output = Some(self.received.unwrap_or(true));
            self.done = true;
        }
    }

    fn output(&self) -> Option<Bit> {
        self.output
    }

    fn halted(&self) -> bool {
        self.done
    }
}

/// Adversary `A` of the proof: corrupt set `V`, members behave honestly but
/// ignore the first `f/2` messages addressed to them and never message each
/// other. Records `z`, the number of messages honest nodes send into `V`.
pub struct DolevReischukA {
    /// The corrupt set `V` (`f/2` nodes, sender excluded).
    pub set_v: Vec<NodeId>,
    /// Per-member count of ignored messages so far.
    ignored: std::collections::HashMap<NodeId, usize>,
    /// Ignore threshold (`f/2`).
    pub ignore_first: usize,
    /// Measured `z`: honest messages addressed into `V`.
    pub z: u64,
    /// Per-member received counts (to locate a lightly-messaged `p`).
    pub received_counts: std::collections::HashMap<NodeId, u64>,
}

impl DolevReischukA {
    /// Builds `A` for budget `f`: `V` = the `f/2` highest-numbered nodes.
    pub fn new(n: usize, f: usize) -> DolevReischukA {
        let set_v: Vec<NodeId> = (n - f / 2..n).map(NodeId).collect();
        DolevReischukA {
            set_v,
            ignored: std::collections::HashMap::new(),
            ignore_first: f / 2,
            z: 0,
            received_counts: std::collections::HashMap::new(),
        }
    }
}

impl Adversary<RelayMsg> for DolevReischukA {
    fn setup(&mut self, ctx: &mut AdvCtx<'_, RelayMsg>) {
        for &v in &self.set_v {
            ctx.corrupt(v).expect("|V| = f/2 <= budget");
        }
    }

    fn filter_corrupt_inbox(
        &mut self,
        node: NodeId,
        inbox: Vec<Incoming<RelayMsg>>,
        _round: Round,
    ) -> Vec<Incoming<RelayMsg>> {
        // Ignore the first `f/2` messages sent to each member of V.
        let mut kept = Vec::new();
        for m in inbox {
            let cnt = self.ignored.entry(node).or_insert(0);
            if *cnt < self.ignore_first {
                *cnt += 1;
            } else {
                kept.push(m);
            }
        }
        kept
    }

    fn corrupt_outbox(
        &mut self,
        _node: NodeId,
        planned: Vec<(Recipient, RelayMsg)>,
        _round: Round,
    ) -> Vec<(Recipient, RelayMsg)> {
        // Behave honestly, except: no messages to other members of V.
        planned
            .into_iter()
            .filter(|(to, _)| match to {
                Recipient::One(t) => !self.set_v.contains(t),
                Recipient::All => true,
            })
            .collect()
    }

    fn intervene(&mut self, ctx: &mut AdvCtx<'_, RelayMsg>) {
        // Measure z: honest-sent messages addressed into V this round.
        for e in ctx.pending() {
            if !e.honest_send || e.removed {
                continue;
            }
            match e.to {
                Recipient::One(t) if self.set_v.contains(&t) => {
                    self.z += 1;
                    *self.received_counts.entry(t).or_insert(0) += 1;
                }
                Recipient::All => {
                    self.z += self.set_v.len() as u64;
                    for &v in &self.set_v {
                        *self.received_counts.entry(v).or_insert(0) += 1;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Adversary `A′` of the proof: isolates a uniformly chosen `p ∈ V` by
/// strongly adaptively corrupting anyone who tries to message `p` and
/// removing the message after the fact.
pub struct DolevReischukAPrime {
    /// The isolation target `p`.
    pub p: NodeId,
    /// The rest of `V` (corrupted at setup, silent toward each other as in
    /// `A`).
    pub v_minus_p: Vec<NodeId>,
    /// Statistics: messages to `p` removed.
    pub blocked: u64,
    /// Statistics: messages to `p` that survived (budget exhausted).
    pub leaked: u64,
}

impl DolevReischukAPrime {
    /// Builds `A′` for budget `f`, choosing `p` uniformly from the same `V`
    /// as [`DolevReischukA::new`] using `seed`.
    pub fn new(n: usize, f: usize, seed: u64) -> DolevReischukAPrime {
        let set_v: Vec<NodeId> = (n - f / 2..n).map(NodeId).collect();
        let mut drbg = HmacDrbg::new(&seed.to_be_bytes(), b"dr-a-prime-pick");
        let p = set_v[(drbg.next_u64() % set_v.len() as u64) as usize];
        let v_minus_p = set_v.into_iter().filter(|&v| v != p).collect();
        DolevReischukAPrime { p, v_minus_p, blocked: 0, leaked: 0 }
    }
}

impl Adversary<RelayMsg> for DolevReischukAPrime {
    fn setup(&mut self, ctx: &mut AdvCtx<'_, RelayMsg>) {
        for &v in &self.v_minus_p {
            ctx.corrupt(v).expect("|V| - 1 < budget");
        }
    }

    fn corrupt_outbox(
        &mut self,
        _node: NodeId,
        planned: Vec<(Recipient, RelayMsg)>,
        _round: Round,
    ) -> Vec<(Recipient, RelayMsg)> {
        // Corrupted nodes behave correctly except that they never message p
        // (matching "once corrupted, s does not send p any messages but
        // otherwise behaves correctly").
        planned
            .into_iter()
            .filter(|(to, _)| !matches!(to, Recipient::One(t) if *t == self.p))
            .collect()
    }

    fn intervene(&mut self, ctx: &mut AdvCtx<'_, RelayMsg>) {
        let to_p: Vec<(MsgId, NodeId)> = ctx
            .pending()
            .iter()
            .filter(|e| !e.removed && matches!(e.to, Recipient::One(t) if t == self.p))
            .map(|e| (e.id, e.from))
            .collect();
        for (id, from) in to_p {
            if !ctx.is_corrupt(from) {
                if ctx.budget_left() == 0 {
                    self.leaked += 1;
                    continue;
                }
                ctx.corrupt(from).expect("budget checked");
            }
            ctx.remove(id).expect("strongly adaptive");
            self.blocked += 1;
        }
    }
}

/// One row of the Theorem 4 experiment.
#[derive(Clone, Debug)]
pub struct Theorem4Row {
    /// Nodes.
    pub n: usize,
    /// Corruption budget.
    pub f: usize,
    /// Relay fanout (message-budget knob).
    pub fanout: usize,
    /// Mean honest messages per run (under `A`).
    pub mean_messages: f64,
    /// The `(εf/2)²` reference with `ε = 1/2`.
    pub budget_threshold: f64,
    /// Fraction of `A′` runs where `p` was fully isolated.
    pub isolation_rate: f64,
    /// Fraction of `A′` runs violating consistency or validity.
    pub violation_rate: f64,
}

/// Per-seed outcome of the Theorem 4 adversary pair: one `A` measuring
/// pass plus one `A′` attacking pass under the same seed.
#[derive(Clone, Copy, Debug)]
pub struct Theorem4Sample {
    /// Honest messages sent under the measuring adversary `A`.
    pub messages: u64,
    /// Whether `A′` fully isolated its victim `p` (no message leaked).
    pub isolated: bool,
    /// Whether the `A′` run violated consistency or validity.
    pub violated: bool,
}

/// Runs the Theorem 4 adversary pair for one `(n, f, fanout)` cell under a
/// single seed — the parallelizable unit sweep harnesses fan out over.
pub fn run_seed(n: usize, f: usize, fanout: usize, seed: u64) -> Theorem4Sample {
    // Pass 1: adversary A measures message counts.
    let adv_a = DolevReischukA::new(n, f);
    let (report_a, _verdict_a, _a) = run_with(n, f, fanout, seed, adv_a);

    // Pass 2: adversary A' attacks. p is honest under A'; a violation
    // shows up directly in the verdict.
    let adv_p = DolevReischukAPrime::new(n, f, seed);
    let (_report_p, verdict_p, leaked) = run_with_prime(n, f, fanout, seed, adv_p);
    Theorem4Sample {
        messages: report_a.metrics.honest_sends(),
        isolated: leaked == 0,
        violated: !verdict_p.all_ok(),
    }
}

/// Runs the Theorem 4 experiment for one `(n, f, fanout)` cell over `seeds`
/// seeds.
pub fn run_cell(n: usize, f: usize, fanout: usize, seeds: u64) -> Theorem4Row {
    let mut total_messages = 0u64;
    let mut isolations = 0u64;
    let mut violations = 0u64;
    for seed in 0..seeds {
        let sample = run_seed(n, f, fanout, seed);
        total_messages += sample.messages;
        isolations += sample.isolated as u64;
        violations += sample.violated as u64;
    }
    Theorem4Row {
        n,
        f,
        fanout,
        mean_messages: total_messages as f64 / seeds as f64,
        budget_threshold: (0.5 * f as f64 / 2.0).powi(2),
        isolation_rate: isolations as f64 / seeds as f64,
        violation_rate: violations as f64 / seeds as f64,
    }
}

fn base_config(n: usize, f: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::new(n, f, ba_sim::CorruptionModel::StronglyAdaptive, seed);
    cfg.max_rounds = 8;
    cfg
}

fn run_with(
    n: usize,
    f: usize,
    fanout: usize,
    seed: u64,
    adversary: DolevReischukA,
) -> (RunReport, Verdict, u64) {
    let cfg = base_config(n, f, seed);
    let report = Sim::run_protocol(&cfg, vec![false; n], adversary, move |id, node_seed| {
        Box::new(RelayBb::new(id, n, NodeId::SENDER, false, fanout, node_seed))
    });
    let verdict = evaluate(Problem::Broadcast { sender: NodeId::SENDER }, &report);
    (report, verdict, 0)
}

fn run_with_prime(
    n: usize,
    f: usize,
    fanout: usize,
    seed: u64,
    adversary: DolevReischukAPrime,
) -> (RunReport, Verdict, u64) {
    let cfg = base_config(n, f, seed);
    // Count leaks via metrics: leaked = messages to p that survived. We
    // recompute from the adversary after the run via a wrapper.
    struct Wrap {
        inner: DolevReischukAPrime,
        leaked_out: std::rc::Rc<std::cell::Cell<u64>>,
    }
    impl Adversary<RelayMsg> for Wrap {
        fn setup(&mut self, ctx: &mut AdvCtx<'_, RelayMsg>) {
            self.inner.setup(ctx);
        }
        fn filter_corrupt_inbox(
            &mut self,
            node: NodeId,
            inbox: Vec<Incoming<RelayMsg>>,
            round: Round,
        ) -> Vec<Incoming<RelayMsg>> {
            self.inner.filter_corrupt_inbox(node, inbox, round)
        }
        fn corrupt_outbox(
            &mut self,
            node: NodeId,
            planned: Vec<(Recipient, RelayMsg)>,
            round: Round,
        ) -> Vec<(Recipient, RelayMsg)> {
            self.inner.corrupt_outbox(node, planned, round)
        }
        fn intervene(&mut self, ctx: &mut AdvCtx<'_, RelayMsg>) {
            self.inner.intervene(ctx);
            self.leaked_out.set(self.inner.leaked);
        }
    }
    let leaked_out = std::rc::Rc::new(std::cell::Cell::new(0));
    let wrap = Wrap { inner: adversary, leaked_out: leaked_out.clone() };
    let report = Sim::run_protocol(&cfg, vec![false; n], wrap, move |id, node_seed| {
        Box::new(RelayBb::new(id, n, NodeId::SENDER, false, fanout, node_seed))
    });
    let verdict = evaluate(Problem::Broadcast { sender: NodeId::SENDER }, &report);
    let leaked = leaked_out.get();
    (report, verdict, leaked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::Passive;

    #[test]
    fn relay_bb_honest_run_is_correct() {
        let n = 20;
        for bit in [false, true] {
            let cfg = base_config(n, 0, 1);
            let report = Sim::run_protocol(&cfg, vec![bit; n], Passive, move |id, seed| {
                Box::new(RelayBb::new(id, n, NodeId::SENDER, bit, 2, seed))
            });
            let verdict = evaluate(Problem::Broadcast { sender: NodeId::SENDER }, &report);
            assert!(verdict.all_ok(), "bit={bit}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(bit)));
        }
    }

    #[test]
    fn low_fanout_protocol_is_broken_by_a_prime() {
        // fanout 0: only the sender speaks (n-1 messages << (f/2)^2).
        let row = run_cell(40, 20, 0, 10);
        assert!(row.mean_messages < row.budget_threshold * 4.0);
        assert!(row.isolation_rate > 0.9, "isolation rate {}", row.isolation_rate);
        assert!(row.violation_rate > 0.9, "violation rate {}", row.violation_rate);
    }

    #[test]
    fn high_fanout_protocol_survives_a_prime() {
        // fanout ~ n: |S(p)| exceeds the budget; p cannot be isolated.
        let row = run_cell(40, 10, 40, 10);
        assert!(row.violation_rate < 0.3, "violation rate {}", row.violation_rate);
    }

    #[test]
    fn adversary_a_counts_messages() {
        let n = 30;
        let f = 10;
        let mut adv = DolevReischukA::new(n, f);
        assert_eq!(adv.set_v.len(), 5);
        let cfg = base_config(n, f, 3);
        // Run and confirm z is positive (the sender unicasts into V).
        let set_v = adv.set_v.clone();
        let z_out = std::rc::Rc::new(std::cell::Cell::new(0u64));
        struct Wrap(DolevReischukA, std::rc::Rc<std::cell::Cell<u64>>);
        impl Adversary<RelayMsg> for Wrap {
            fn setup(&mut self, ctx: &mut AdvCtx<'_, RelayMsg>) {
                self.0.setup(ctx)
            }
            fn filter_corrupt_inbox(
                &mut self,
                node: NodeId,
                inbox: Vec<Incoming<RelayMsg>>,
                round: Round,
            ) -> Vec<Incoming<RelayMsg>> {
                self.0.filter_corrupt_inbox(node, inbox, round)
            }
            fn corrupt_outbox(
                &mut self,
                node: NodeId,
                planned: Vec<(Recipient, RelayMsg)>,
                round: Round,
            ) -> Vec<(Recipient, RelayMsg)> {
                self.0.corrupt_outbox(node, planned, round)
            }
            fn intervene(&mut self, ctx: &mut AdvCtx<'_, RelayMsg>) {
                self.0.intervene(ctx);
                self.1.set(self.0.z);
            }
        }
        adv.ignore_first = f / 2;
        let wrap = Wrap(adv, z_out.clone());
        let _ = Sim::run_protocol(&cfg, vec![false; n], wrap, move |id, seed| {
            Box::new(RelayBb::new(id, n, NodeId::SENDER, false, 2, seed))
        });
        assert!(z_out.get() >= set_v.len() as u64, "sender alone reaches all of V");
    }
}
