//! Byzantine Broadcast from Byzantine Agreement (§1.1 of the paper).
//!
//! The communication-preserving direction of the equivalence: the designated
//! sender multicasts its (signed) input bit, then every node runs the BA
//! instance with the received bit as input (default bit on silence). If the
//! BA protocol is communication-efficient, so is the resulting broadcast —
//! one extra multicast total.

use std::sync::Arc;

use ba_fmine::{Keychain, Sig};
use ba_sim::{
    evaluate, Adversary, Bit, BoxedProtocol, Incoming, Message, NodeId, Outbox, Problem, Protocol,
    Round, RunReport, SimConfig, Verdict,
};

use crate::iter::{IterConfig, IterMsg, IterNode};
use crate::runnable::Runnable;

/// Wrapper message: the sender's input multicast, or an inner BA message.
#[derive(Clone, Debug, PartialEq)]
pub enum BbMsg<M> {
    /// Round-0 signed input from the designated sender.
    SenderInput {
        /// The sender's bit.
        bit: Bit,
        /// Signature over the input statement.
        sig: Sig,
    },
    /// A message of the underlying BA protocol.
    Inner(M),
}

impl<M: Message> Message for BbMsg<M> {
    fn size_bits(&self) -> usize {
        match self {
            BbMsg::SenderInput { sig, .. } => 1 + sig.size_bits(),
            BbMsg::Inner(m) => 8 + m.size_bits(),
        }
    }
}

fn input_statement(bit: Bit) -> [u8; 16] {
    let mut s = [0u8; 16];
    s[..15].copy_from_slice(b"bb-sender-input");
    s[15] = bit as u8;
    s
}

/// A node of the broadcast wrapper around an inner BA protocol.
pub struct BbNode<M> {
    id: NodeId,
    sender: NodeId,
    input: Bit,
    keychain: Arc<Keychain>,
    inner: Option<BoxedProtocol<M>>,
    #[allow(clippy::type_complexity)]
    make_inner: Option<Box<dyn FnOnce(Bit) -> BoxedProtocol<M> + Send>>,
}

impl<M: Message> BbNode<M> {
    /// Creates a wrapper node. `make_inner` constructs the BA instance once
    /// the sender's bit (or the default) is known.
    pub fn new(
        id: NodeId,
        sender: NodeId,
        input: Bit,
        keychain: Arc<Keychain>,
        make_inner: impl FnOnce(Bit) -> BoxedProtocol<M> + Send + 'static,
    ) -> BbNode<M> {
        BbNode { id, sender, input, keychain, inner: None, make_inner: Some(Box::new(make_inner)) }
    }

    /// The bit the sender multicast, if exactly one validly signed bit was
    /// received (equivocation or silence resolve to the default bit 0).
    fn extract_sender_bit(&self, inbox: &[Incoming<BbMsg<M>>]) -> Bit {
        let mut seen = [false, false];
        for m in inbox {
            if let BbMsg::SenderInput { bit, sig } = &*m.msg {
                if m.from == self.sender
                    && self.keychain.verify(m.from, &input_statement(*bit), sig)
                {
                    seen[*bit as usize] = true;
                }
            }
        }
        matches!(seen, [false, true])
    }
}

impl<M: Message> Protocol<BbMsg<M>> for BbNode<M> {
    fn step(&mut self, round: Round, inbox: &[Incoming<BbMsg<M>>], out: &mut Outbox<BbMsg<M>>) {
        if round.0 == 0 {
            if self.id == self.sender {
                let sig = self.keychain.sign(self.id, &input_statement(self.input));
                out.multicast(BbMsg::SenderInput { bit: self.input, sig });
            }
            return;
        }
        if round.0 == 1 {
            let bit = self.extract_sender_bit(inbox);
            let make = self.make_inner.take().expect("round 1 runs once");
            self.inner = Some(make(bit));
        }
        let inner = self.inner.as_mut().expect("inner exists from round 1 on");
        let inner_inbox: Vec<Incoming<M>> = inbox
            .iter()
            .filter_map(|m| match &*m.msg {
                BbMsg::Inner(im) => Some(Incoming::new(m.from, im.clone())),
                BbMsg::SenderInput { .. } => None,
            })
            .collect();
        let mut inner_out = Outbox::new();
        inner.step(Round(round.0 - 1), &inner_inbox, &mut inner_out);
        for (to, msg) in inner_out.take() {
            match to {
                ba_sim::Recipient::All => out.multicast(BbMsg::Inner(msg)),
                ba_sim::Recipient::One(t) => out.unicast(t, BbMsg::Inner(msg)),
            }
        }
    }

    fn output(&self) -> Option<Bit> {
        self.inner.as_ref().and_then(|i| i.output())
    }

    fn halted(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.halted())
    }
}

/// Runs Byzantine Broadcast built from an iteration-family BA instance
/// (quadratic or subquadratic) and evaluates the broadcast verdict.
pub fn run_iter_bb<A: Adversary<BbMsg<IterMsg>> + Send>(
    cfg: &IterConfig,
    keychain: Arc<Keychain>,
    sim: &SimConfig,
    sender: NodeId,
    sender_input: Bit,
    adversary: A,
) -> (RunReport, Verdict) {
    let mut sim_cfg = sim.clone();
    sim_cfg.max_rounds = sim_cfg.max_rounds.min(cfg.total_rounds() + 4);
    let mut inputs = vec![false; cfg.n];
    inputs[sender.index()] = sender_input;
    let cfg_for_factory = cfg.clone();
    let report = ba_net::execute(&sim_cfg, inputs, adversary, move |id, seed| {
        let inner_cfg = cfg_for_factory.clone();
        Box::new(BbNode::new(id, sender, sender_input, keychain.clone(), move |bit| {
            Box::new(IterNode::new(inner_cfg, id, bit, seed))
        }))
    });
    let verdict = evaluate(Problem::Broadcast { sender }, &report);
    (report, verdict)
}

/// Packages one BB-from-iteration-BA execution as a thread-dispatchable
/// [`Runnable`] (the uniform constructor sweep harnesses dispatch over).
pub fn runnable_iter_bb<A: Adversary<BbMsg<IterMsg>> + Send + 'static>(
    cfg: &IterConfig,
    keychain: Arc<Keychain>,
    sender: NodeId,
    sender_input: Bit,
    adversary: A,
) -> Runnable {
    let cfg = cfg.clone();
    Runnable::new(move |sim| run_iter_bb(&cfg, keychain, sim, sender, sender_input, adversary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_fmine::{IdealMine, MineParams, SigMode};
    use ba_sim::{CorruptionModel, Passive, Recipient};

    fn subq_cfg(n: usize, lambda: f64, seed: u64) -> IterConfig {
        IterConfig::subq_half(n, Arc::new(IdealMine::new(seed, MineParams::new(n, lambda))))
    }

    #[test]
    fn honest_sender_propagates_both_bits() {
        for bit in [false, true] {
            let n = 60;
            let cfg = subq_cfg(n, 20.0, 4);
            let kc = Arc::new(Keychain::from_seed(4, n, SigMode::Ideal));
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, 4);
            let (report, verdict) = run_iter_bb(&cfg, kc, &sim, NodeId(0), bit, Passive);
            assert!(verdict.all_ok(), "bit={bit}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(bit)), "bit={bit}");
        }
    }

    #[test]
    fn broadcast_adds_one_multicast() {
        let n = 60;
        let cfg = subq_cfg(n, 20.0, 9);
        let kc = Arc::new(Keychain::from_seed(9, n, SigMode::Ideal));
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, 9);
        let (report, _) = run_iter_bb(&cfg, kc, &sim, NodeId(0), true, Passive);
        // Multicast complexity stays sublinear: committee traffic + 1.
        assert!(
            report.metrics.honest_multicasts < (n as u64) * 2,
            "got {}",
            report.metrics.honest_multicasts
        );
    }

    #[test]
    fn equivocating_sender_remains_consistent() {
        // A corrupt sender unicasts 0 to half the nodes and 1 to the rest;
        // consistency must still hold (validity is vacuous).
        struct SplitSender {
            keychain: Arc<Keychain>,
            n: usize,
        }
        impl Adversary<BbMsg<IterMsg>> for SplitSender {
            fn setup(&mut self, ctx: &mut ba_sim::AdvCtx<'_, BbMsg<IterMsg>>) {
                ctx.corrupt(NodeId(0)).unwrap();
            }
            fn corrupt_outbox(
                &mut self,
                node: NodeId,
                _planned: Vec<(Recipient, BbMsg<IterMsg>)>,
                round: Round,
            ) -> Vec<(Recipient, BbMsg<IterMsg>)> {
                if round.0 != 0 {
                    return Vec::new();
                }
                let mk = |bit: Bit| BbMsg::SenderInput {
                    bit,
                    sig: self.keychain.sign(node, &input_statement(bit)),
                };
                (1..self.n).map(|i| (Recipient::One(NodeId(i)), mk(i % 2 == 0))).collect()
            }
        }
        let n = 60;
        let cfg = subq_cfg(n, 20.0, 11);
        let kc = Arc::new(Keychain::from_seed(11, n, SigMode::Ideal));
        let adversary = SplitSender { keychain: kc.clone(), n };
        let sim = SimConfig::new(n, 1, CorruptionModel::Static, 11);
        let (_report, verdict) = run_iter_bb(&cfg, kc, &sim, NodeId(0), true, adversary);
        assert!(verdict.consistent, "{verdict:?}");
        assert!(verdict.valid, "corrupt sender: validity vacuous");
    }

    #[test]
    fn silent_sender_defaults() {
        struct Mute;
        impl Adversary<BbMsg<IterMsg>> for Mute {
            fn setup(&mut self, ctx: &mut ba_sim::AdvCtx<'_, BbMsg<IterMsg>>) {
                ctx.corrupt(NodeId(0)).unwrap();
            }
            fn corrupt_outbox(
                &mut self,
                _node: NodeId,
                _planned: Vec<(Recipient, BbMsg<IterMsg>)>,
                _round: Round,
            ) -> Vec<(Recipient, BbMsg<IterMsg>)> {
                Vec::new()
            }
        }
        let n = 60;
        let cfg = subq_cfg(n, 20.0, 13);
        let kc = Arc::new(Keychain::from_seed(13, n, SigMode::Ideal));
        let sim = SimConfig::new(n, 1, CorruptionModel::Static, 13);
        let (report, verdict) = run_iter_bb(&cfg, kc, &sim, NodeId(0), true, Mute);
        assert!(verdict.consistent && verdict.terminated, "{verdict:?}");
        for i in 1..n {
            assert_eq!(report.outputs[i], Some(false), "node {i} must use the default bit");
        }
    }
}
