//! Cohen–Keidar–Spiegelman's adaptive "fewer words" BA (arXiv 2202.09123) —
//! the competitor whose communication *adapts to the actual number of
//! faults*: O((f + 1)·n) words, where `f` is the number of corruptions that
//! really occur, not the tolerance `t`. With no faults the protocol costs
//! O(n) words total.
//!
//! ## Reproduced structure
//!
//! The paper's mechanism is a rotating-leader phase sequence in which *every
//! phase is cheap* — all traffic is unicast to or multicast from the phase
//! leader, so a phase costs O(n) words whether it succeeds or fails. A
//! failed phase needs no blame traffic: under lockstep synchrony the absent
//! leader multicast *is* the proof of failure, and nodes simply move to the
//! next leader. Round-robin rotation reaches an honest leader after at most
//! `f` corrupt ones, and an honest leader's phase terminates everyone — so
//! the total is O((f + 1)·n) words. This module reproduces exactly that
//! skeleton; the paper additionally reaches `t < n/2` resilience with
//! threshold primitives and achieves adaptivity against an adaptive
//! adversary via VRF leader self-election, which are out of scope — we
//! instantiate the adaptive-phase mechanism at `t < n/3` quorums, where
//! pigeonhole over `n − t ≥ 2t + 1` reports always yields a justifiable
//! value (documented in `docs/PAPER_MAP.md`).
//!
//! ## Phase schedule (5 rounds per phase, leader `L_p = (p − 1) mod n`)
//!
//! 1. *Report* — every undecided node unicasts its current value and
//!    highest certificate to `L_p`. No input round is needed: report
//!    evidence doubles as the support base, keeping the good case O(n).
//! 2. *Propose* — `L_p` multicasts a bit with a justification: the highest
//!    report certificate, or (if none exist) a [`SupportQuorum`] of `t + 1`
//!    matching report evidences — more reports than that for one bit imply
//!    at least one honest reporter held it.
//! 3. *Vote* — nodes check the justification against their own lock and
//!    unicast a signed vote to `L_p`; they also *adopt* the justified bit,
//!    which converges values across failed phases.
//! 4. *Lock* — on `n − t` votes `L_p` multicasts the phase certificate.
//! 5. *CommitVote* — lock adopters unicast a signed commit; on `n − t`
//!    commits the leader multicasts `Decide` with the commit quorum, and
//!    receivers decide, relay once, and halt (the gadget shared with
//!    [`crate::iter`] and [`crate::momose_ren`]).
//!
//! Safety at `t < n/3`: a certificate takes `n − t` votes, a conflicting
//! one would need `n − t` more, and `2(n − t) − n ≥ t + 1` nodes would have
//! voted twice — more than the corrupt budget. Locked honest nodes refuse
//! support-based justifications for a conflicting bit, so a committed bit
//! survives leader rotation.

use std::collections::HashMap;
use std::sync::Arc;

use ba_fmine::{Keychain, MineTag, MsgKind, AGG_SIG_BITS};
use ba_sim::{
    evaluate, Adversary, Bit, Incoming, Message, NodeId, Outbox, Problem, Protocol, Round,
    RunReport, SimConfig, Verdict,
};

use crate::auth::{Auth, Evidence};
use crate::cert::{
    AggregateQuorum, CertBody, CertEncoding, Certificate, CommitQuorum, CommitRef, VoteRef,
};
use crate::runnable::Runnable;

/// One verified report evidence inside a vector [`SupportQuorum`].
#[derive(Clone, Debug, PartialEq)]
pub struct ReportRef {
    /// Reporting node.
    pub from: NodeId,
    /// Its evidence over the `(Status, phase, bit)` tag.
    pub ev: Evidence,
}

/// `t + 1` report evidences for one bit — the rank-0 justification that at
/// least one honest node held the proposed value.
#[derive(Clone, Debug, PartialEq)]
pub enum SupportQuorum {
    /// Explicit evidence list.
    Vector(Vec<ReportRef>),
    /// One aggregate signature over the report tag.
    Aggregate(AggregateQuorum),
}

impl SupportQuorum {
    /// Number of distinct supporters claimed.
    pub fn len(&self) -> usize {
        match self {
            SupportQuorum::Vector(refs) => refs.len(),
            SupportQuorum::Aggregate(q) => q.signers.len(),
        }
    }

    /// Whether the quorum claims no supporters.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Verifies at least `min` distinct, authentic report evidences for
    /// `(phase, bit)`.
    pub fn verify(&self, phase: u64, bit: Bit, auth: &Auth, min: usize) -> bool {
        if phase == 0 {
            return false;
        }
        let tag = MineTag::new(MsgKind::Status, phase, bit);
        match self {
            SupportQuorum::Vector(refs) => {
                let mut seen: Vec<NodeId> = Vec::with_capacity(refs.len());
                for r in refs {
                    if seen.contains(&r.from) || !auth.verify(r.from, &tag, &r.ev) {
                        return false;
                    }
                    seen.push(r.from);
                }
                seen.len() >= min
            }
            SupportQuorum::Aggregate(q) => q.signers.len() >= min && auth.verify_aggregate(&tag, q),
        }
    }

    /// Wire size in bits.
    pub fn size_bits(&self) -> usize {
        match self {
            SupportQuorum::Vector(refs) => {
                refs.iter().map(|r| 64 + r.ev.size_bits()).sum::<usize>()
            }
            SupportQuorum::Aggregate(q) => q.n + AGG_SIG_BITS,
        }
    }
}

/// Why the leader's proposed bit is safe to vote for.
#[derive(Clone, Debug, PartialEq)]
pub enum Justification {
    /// A certificate from an earlier phase (lock carry-over).
    Lock(Certificate),
    /// `t + 1` phase reports for the bit (no certificate exists anywhere).
    Support(SupportQuorum),
}

impl Justification {
    fn size_bits(&self) -> usize {
        match self {
            Justification::Lock(c) => c.size_bits(),
            Justification::Support(q) => q.size_bits(),
        }
    }
}

/// Messages of the CKS adaptive phase family.
#[derive(Clone, Debug, PartialEq)]
pub enum CksMsg {
    /// `(Report, p)` — current value plus highest certificate, unicast to
    /// `L_p`.
    Report {
        /// Phase.
        phase: u64,
        /// The sender's current value.
        bit: Bit,
        /// Highest certificate known to the sender.
        lock: Option<Certificate>,
        /// Evidence for `(Status, p, bit)`.
        ev: Evidence,
    },
    /// `(Propose, p, b)` — the leader's justified proposal.
    Propose {
        /// Phase.
        phase: u64,
        /// Proposed bit.
        bit: Bit,
        /// Why `bit` is safe.
        just: Justification,
        /// Evidence for `(Propose, p, b)`.
        ev: Evidence,
    },
    /// `(Vote, p, b)` — unicast to `L_p`.
    Vote {
        /// Phase.
        phase: u64,
        /// Voted bit.
        bit: Bit,
        /// Evidence for `(Vote, p, b)`.
        ev: Evidence,
    },
    /// `(Lock, p, b)` — the freshly formed phase certificate.
    Lock {
        /// Phase.
        phase: u64,
        /// Certified bit.
        bit: Bit,
        /// The phase-`p` certificate.
        cert: Certificate,
        /// Evidence for `(Ack, p, b)`.
        ev: Evidence,
    },
    /// `(Commit, p, b)` — unicast to `L_p` after adopting the lock.
    CommitVote {
        /// Phase.
        phase: u64,
        /// Committed bit.
        bit: Bit,
        /// Evidence for `(Commit, p, b)`.
        ev: Evidence,
    },
    /// `(Decide, p, b)` — a commit quorum; multicast by the leader, relayed
    /// once by every decider.
    Decide {
        /// Phase whose commits are attached.
        phase: u64,
        /// Decided bit.
        bit: Bit,
        /// Quorum of commits for `(p, b)`.
        commits: CommitQuorum,
        /// Evidence for `(Terminate, b)`.
        ev: Evidence,
    },
}

impl Message for CksMsg {
    fn size_bits(&self) -> usize {
        let header = 8 + 64 + 2;
        match self {
            CksMsg::Vote { ev, .. } | CksMsg::CommitVote { ev, .. } => header + ev.size_bits(),
            CksMsg::Report { ev, .. }
            | CksMsg::Propose { ev, .. }
            | CksMsg::Lock { ev, .. }
            | CksMsg::Decide { ev, .. } => header + self.cert_bits() + ev.size_bits(),
        }
    }

    fn cert_bits(&self) -> usize {
        match self {
            CksMsg::Vote { .. } | CksMsg::CommitVote { .. } => 0,
            CksMsg::Report { lock, .. } => lock.as_ref().map_or(0, |c| c.size_bits()),
            CksMsg::Propose { just, .. } => just.size_bits(),
            CksMsg::Lock { cert, .. } => cert.size_bits(),
            CksMsg::Decide { commits, .. } => commits.size_bits(),
        }
    }
}

/// Configuration of one CKS instance.
#[derive(Clone, Debug)]
pub struct CksConfig {
    /// Number of nodes.
    pub n: usize,
    /// Tolerated faults `t < n/3` (see the module docs for why the repro
    /// instantiates below the paper's `t < n/2`).
    pub t: usize,
    /// Certificate/commit quorum `n − t`.
    pub quorum: usize,
    /// Rank-0 support threshold `t + 1`.
    pub support: usize,
    /// Authentication regime (always signed for this family).
    pub auth: Auth,
    /// Phase cap (liveness safety net; round-robin reaches an honest
    /// leader within `f + 1` phases).
    pub phases: u64,
    /// Requested certificate encoding.
    pub cert_encoding: CertEncoding,
}

impl CksConfig {
    /// The adaptive instance: `t = ⌊(n − 1)/3⌋`, quorum `n − t`, support
    /// `t + 1`.
    pub fn adaptive(n: usize, phases: u64, keychain: Arc<Keychain>) -> CksConfig {
        let t = (n - 1) / 3;
        CksConfig {
            n,
            t,
            quorum: n - t,
            support: t + 1,
            auth: Auth::Signed { keychain },
            phases,
            cert_encoding: CertEncoding::Vector,
        }
    }

    /// Requests a certificate encoding (builder style).
    pub fn with_cert_encoding(mut self, encoding: CertEncoding) -> CksConfig {
        self.cert_encoding = encoding;
        self
    }

    /// The encoding certificates are actually built with.
    pub fn effective_cert_encoding(&self) -> CertEncoding {
        if self.auth.supports_aggregation() {
            self.cert_encoding
        } else {
            CertEncoding::Vector
        }
    }

    /// The round-robin leader of `phase` (1-based).
    pub fn leader(&self, phase: u64) -> NodeId {
        NodeId(((phase - 1) % self.n as u64) as usize)
    }

    /// Synchronous rounds consumed by `phases` phases, with slack for the
    /// decide-relay cascade.
    pub fn total_rounds(&self) -> u64 {
        5 * self.phases + 3
    }
}

/// Per-phase slot within the 5-round cadence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Slot {
    Report,
    Propose,
    Vote,
    Lock,
    CommitVote,
}

/// Maps a round to its `(phase, slot)`.
fn schedule(round: u64) -> (u64, Slot) {
    let phase = 1 + round / 5;
    let slot = match round % 5 {
        0 => Slot::Report,
        1 => Slot::Propose,
        2 => Slot::Vote,
        3 => Slot::Lock,
        _ => Slot::CommitVote,
    };
    (phase, slot)
}

/// One node of the CKS protocol.
pub struct CksNode {
    cfg: CksConfig,
    id: NodeId,
    /// Current value — starts at the input, adopts justified proposals.
    value: Bit,
    /// Highest verified certificate per bit.
    best: [Option<Certificate>; 2],
    /// Deduplicated verified reports per `(phase, bit)` (leader role).
    reports: HashMap<(u64, bool), Vec<ReportRef>>,
    /// Deduplicated valid votes per `(phase, bit)` (leader role).
    votes: HashMap<(u64, bool), Vec<VoteRef>>,
    /// Deduplicated valid commits per `(phase, bit)` (leader role).
    commits: HashMap<(u64, bool), Vec<CommitRef>>,
    /// The phase's accepted, justified proposal.
    proposal: HashMap<u64, Bit>,
    /// Phases this node already voted in.
    voted: Vec<u64>,
    /// Phases whose lock this node already commit-voted for.
    committed: Vec<u64>,
    /// Phases whose lock certificate this leader already multicast.
    locked_out: Vec<u64>,
    /// Lock adopted from this round's inbox; drives the commit vote in the
    /// same `step` call.
    pending_commit: Option<(u64, Bit)>,
    /// Set once a commit quorum was formed or received.
    decided: Option<(u64, Bit, CommitQuorum)>,
    output: Option<Bit>,
    done: bool,
}

impl CksNode {
    /// Creates a node with its input bit (deterministic protocol; the
    /// per-node seed is unused).
    pub fn new(cfg: CksConfig, id: NodeId, input: Bit, _seed: u64) -> CksNode {
        CksNode {
            cfg,
            id,
            value: input,
            best: [None, None],
            reports: HashMap::new(),
            votes: HashMap::new(),
            commits: HashMap::new(),
            proposal: HashMap::new(),
            voted: Vec::new(),
            committed: Vec::new(),
            locked_out: Vec::new(),
            pending_commit: None,
            decided: None,
            output: None,
            done: false,
        }
    }

    fn adopt_cert(&mut self, cert: &Certificate) {
        if !cert.verify(&self.cfg.auth, self.cfg.quorum) {
            return;
        }
        let slot = &mut self.best[cert.bit as usize];
        if Certificate::rank(slot) < cert.iter {
            *slot = Some(cert.clone());
        }
    }

    fn best_rank(&self) -> u64 {
        Certificate::rank(&self.best[0]).max(Certificate::rank(&self.best[1]))
    }

    /// `(bit, cert)` of the overall highest certificate; ties prefer 1.
    fn best_bit(&self) -> Option<(Bit, Certificate)> {
        let r0 = Certificate::rank(&self.best[0]);
        let r1 = Certificate::rank(&self.best[1]);
        if r0 == 0 && r1 == 0 {
            None
        } else if r1 >= r0 {
            Some((true, self.best[1].clone().expect("rank > 0")))
        } else {
            Some((false, self.best[0].clone().expect("rank > 0")))
        }
    }

    fn aggregate_quorum(
        &self,
        tag: &MineTag,
        refs: &[(NodeId, &Evidence)],
    ) -> Option<AggregateQuorum> {
        let n = self.cfg.auth.aggregation_domain()?;
        let agg = self.cfg.auth.aggregate(tag, refs)?;
        Some(AggregateQuorum { n, signers: refs.iter().map(|(id, _)| *id).collect(), agg })
    }

    fn build_certificate(&self, phase: u64, bit: Bit, votes: &[VoteRef]) -> Certificate {
        if self.cfg.effective_cert_encoding() == CertEncoding::Aggregate {
            let tag = MineTag::new(MsgKind::Vote, phase, bit);
            let refs: Vec<(NodeId, &Evidence)> = votes.iter().map(|v| (v.from, &v.ev)).collect();
            if let Some(q) = self.aggregate_quorum(&tag, &refs) {
                return Certificate { iter: phase, bit, body: CertBody::Aggregate(q) };
            }
        }
        Certificate::from_votes(phase, bit, votes.to_vec())
    }

    fn build_commit_quorum(&self, phase: u64, bit: Bit, commits: &[CommitRef]) -> CommitQuorum {
        if self.cfg.effective_cert_encoding() == CertEncoding::Aggregate {
            let tag = MineTag::new(MsgKind::Commit, phase, bit);
            let refs: Vec<(NodeId, &Evidence)> = commits.iter().map(|c| (c.from, &c.ev)).collect();
            if let Some(q) = self.aggregate_quorum(&tag, &refs) {
                return CommitQuorum::Aggregate(q);
            }
        }
        CommitQuorum::Vector(commits.to_vec())
    }

    fn build_support_quorum(&self, phase: u64, bit: Bit, refs: &[ReportRef]) -> SupportQuorum {
        if self.cfg.effective_cert_encoding() == CertEncoding::Aggregate {
            let tag = MineTag::new(MsgKind::Status, phase, bit);
            let claims: Vec<(NodeId, &Evidence)> = refs.iter().map(|r| (r.from, &r.ev)).collect();
            if let Some(q) = self.aggregate_quorum(&tag, &claims) {
                return SupportQuorum::Aggregate(q);
            }
        }
        SupportQuorum::Vector(refs.to_vec())
    }

    fn ingest(&mut self, inbox: &[Incoming<CksMsg>]) {
        for m in inbox {
            match &*m.msg {
                CksMsg::Report { phase, bit, lock, ev } => {
                    let tag = MineTag::new(MsgKind::Status, *phase, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    if let Some(c) = lock {
                        self.adopt_cert(c);
                    }
                    let pool = self.reports.entry((*phase, *bit)).or_default();
                    if pool.iter().all(|r| r.from != m.from) {
                        pool.push(ReportRef { from: m.from, ev: ev.clone() });
                    }
                }
                CksMsg::Propose { phase, bit, just, ev } => {
                    let tag = MineTag::new(MsgKind::Propose, *phase, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) || m.from != self.cfg.leader(*phase)
                    {
                        continue;
                    }
                    let justified = match just {
                        Justification::Lock(c) => {
                            if c.bit != *bit || !c.verify(&self.cfg.auth, self.cfg.quorum) {
                                false
                            } else {
                                self.adopt_cert(c);
                                // Lock rule: the carried certificate must
                                // match or beat everything this node saw.
                                c.iter >= self.best_rank()
                            }
                        }
                        Justification::Support(q) => {
                            // Support only justifies when this node has no
                            // conflicting lock: `t + 1` reports prove an
                            // honest holder, but a lock proves a possible
                            // earlier commit and takes precedence.
                            q.verify(*phase, *bit, &self.cfg.auth, self.cfg.support)
                                && match self.best_bit() {
                                    None => true,
                                    Some((b, _)) => b == *bit,
                                }
                        }
                    };
                    if justified {
                        self.proposal.entry(*phase).or_insert(*bit);
                    }
                }
                CksMsg::Vote { phase, bit, ev } => {
                    let tag = MineTag::new(MsgKind::Vote, *phase, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    let pool = self.votes.entry((*phase, *bit)).or_default();
                    if pool.iter().all(|v| v.from != m.from) {
                        pool.push(VoteRef { from: m.from, ev: ev.clone() });
                    }
                }
                CksMsg::Lock { phase, bit, cert, ev } => {
                    let tag = MineTag::new(MsgKind::Ack, *phase, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev)
                        || m.from != self.cfg.leader(*phase)
                        || cert.iter != *phase
                        || cert.bit != *bit
                        || !cert.verify(&self.cfg.auth, self.cfg.quorum)
                    {
                        continue;
                    }
                    self.adopt_cert(cert);
                    self.value = *bit;
                    if !self.committed.contains(phase) {
                        self.committed.push(*phase);
                        self.pending_commit = Some((*phase, *bit));
                    }
                }
                CksMsg::CommitVote { phase, bit, ev } => {
                    let tag = MineTag::new(MsgKind::Commit, *phase, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    let pool = self.commits.entry((*phase, *bit)).or_default();
                    if pool.iter().all(|c| c.from != m.from) {
                        pool.push(CommitRef { from: m.from, ev: ev.clone() });
                    }
                }
                CksMsg::Decide { phase, bit, commits, ev } => {
                    let tag = MineTag::terminate(*bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev)
                        || !commits.verify(*phase, *bit, &self.cfg.auth, self.cfg.quorum)
                    {
                        continue;
                    }
                    if self.decided.is_none() {
                        self.decided = Some((*phase, *bit, commits.clone()));
                    }
                }
            }
        }
    }

    /// Relays the commit quorum once, outputs, and halts.
    fn finish(&mut self, out: &mut Outbox<CksMsg>) {
        let (phase, bit, commits) = self.decided.clone().expect("finish requires a decision");
        let tag = MineTag::terminate(bit);
        if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
            out.multicast(CksMsg::Decide { phase, bit, commits, ev });
        }
        self.output = Some(bit);
        self.done = true;
    }

    /// Leader duty independent of round position: decide as soon as a
    /// commit quorum exists (commits from phase `p` arrive in phase
    /// `p + 1`'s first round).
    fn try_decide_as_leader(&mut self, out: &mut Outbox<CksMsg>) {
        if self.decided.is_some() {
            return;
        }
        let quorum = self.cfg.quorum;
        let mine: Vec<(u64, bool)> = self
            .commits
            .iter()
            .filter(|((phase, _), pool)| self.cfg.leader(*phase) == self.id && pool.len() >= quorum)
            .map(|((phase, bit), _)| (*phase, *bit))
            .collect();
        if let Some((phase, bit)) = mine.into_iter().min() {
            let pool = self.commits.get_mut(&(phase, bit)).expect("quorum pool");
            pool.sort_by_key(|c| c.from);
            let refs = pool[..quorum].to_vec();
            let commits = self.build_commit_quorum(phase, bit, &refs);
            let tag = MineTag::terminate(bit);
            if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                out.multicast(CksMsg::Decide { phase, bit, commits: commits.clone(), ev });
            }
            self.decided = Some((phase, bit, commits));
            self.output = Some(bit);
            self.done = true;
        }
    }
}

impl Protocol<CksMsg> for CksNode {
    fn step(&mut self, round: Round, inbox: &[Incoming<CksMsg>], out: &mut Outbox<CksMsg>) {
        if self.done {
            return;
        }
        self.pending_commit = None;
        self.ingest(inbox);
        if self.decided.is_some() {
            self.finish(out);
            return;
        }
        self.try_decide_as_leader(out);
        if self.done {
            return;
        }
        if let Some((phase, bit)) = self.pending_commit.take() {
            let tag = MineTag::new(MsgKind::Commit, phase, bit);
            if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                out.unicast(self.cfg.leader(phase), CksMsg::CommitVote { phase, bit, ev });
            }
        }
        let (phase, slot) = schedule(round.0);
        if phase > self.cfg.phases {
            return;
        }
        match slot {
            Slot::Report => {
                let bit = self.value;
                let lock = self.best_bit().map(|(_, c)| c);
                let tag = MineTag::new(MsgKind::Status, phase, bit);
                if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                    out.unicast(self.cfg.leader(phase), CksMsg::Report { phase, bit, lock, ev });
                }
            }
            Slot::Propose => {
                if self.cfg.leader(phase) != self.id {
                    return;
                }
                let (bit, just) = match self.best_bit() {
                    Some((b, c)) => (b, Justification::Lock(c)),
                    None => {
                        // Pigeonhole over the quorum of reports: with
                        // `n − t ≥ 2t + 1` reports, some bit has `t + 1`.
                        // Prefer the better-supported bit; ties prefer 1.
                        let count = |b: bool| self.reports.get(&(phase, b)).map_or(0, |p| p.len());
                        let (c0, c1) = (count(false), count(true));
                        let bit = c1 >= c0;
                        let Some(pool) = self.reports.get_mut(&(phase, bit)) else {
                            return;
                        };
                        if pool.len() < self.cfg.support {
                            return; // not enough reports: silent phase
                        }
                        pool.sort_by_key(|r| r.from);
                        let support = self.cfg.support;
                        let refs = pool[..support].to_vec();
                        (bit, Justification::Support(self.build_support_quorum(phase, bit, &refs)))
                    }
                };
                let tag = MineTag::new(MsgKind::Propose, phase, bit);
                if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                    out.multicast(CksMsg::Propose { phase, bit, just, ev });
                }
            }
            Slot::Vote => {
                if self.voted.contains(&phase) {
                    return;
                }
                let Some(bit) = self.proposal.get(&phase).copied() else {
                    return;
                };
                // Adopt the justified value: converges honest values even
                // when the phase fails to certify, and is safe because a
                // justification implies at least one honest holder.
                self.value = bit;
                self.voted.push(phase);
                let tag = MineTag::new(MsgKind::Vote, phase, bit);
                if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                    out.unicast(self.cfg.leader(phase), CksMsg::Vote { phase, bit, ev });
                }
            }
            Slot::Lock => {
                if self.cfg.leader(phase) != self.id || self.locked_out.contains(&phase) {
                    return;
                }
                let quorum = self.cfg.quorum;
                for bit in [true, false] {
                    let Some(pool) = self.votes.get_mut(&(phase, bit)) else { continue };
                    if pool.len() < quorum {
                        continue;
                    }
                    pool.sort_by_key(|v| v.from);
                    let votes = pool[..quorum].to_vec();
                    let cert = self.build_certificate(phase, bit, &votes);
                    let tag = MineTag::new(MsgKind::Ack, phase, bit);
                    if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                        self.adopt_cert(&cert);
                        self.value = bit;
                        self.locked_out.push(phase);
                        out.multicast(CksMsg::Lock { phase, bit, cert, ev });
                    }
                    break;
                }
            }
            Slot::CommitVote => {
                // Handled by `pending_commit` above.
            }
        }
    }

    fn output(&self) -> Option<Bit> {
        self.output
    }

    fn halted(&self) -> bool {
        self.done
    }
}

/// Runs one execution and evaluates the agreement verdict.
pub fn run<A: Adversary<CksMsg> + Send>(
    cfg: &CksConfig,
    sim: &SimConfig,
    inputs: Vec<Bit>,
    adversary: A,
) -> (RunReport, Verdict) {
    let mut sim_cfg = sim.clone();
    sim_cfg.max_rounds = sim_cfg.max_rounds.min(cfg.total_rounds() + 2);
    let cfg_for_factory = cfg.clone();
    let inputs_for_factory = inputs.clone();
    let report = ba_net::execute(&sim_cfg, inputs, adversary, move |id, seed| {
        Box::new(CksNode::new(cfg_for_factory.clone(), id, inputs_for_factory[id.index()], seed))
    });
    let verdict = evaluate(Problem::Agreement, &report);
    (report, verdict)
}

/// Packages one execution as a thread-dispatchable [`Runnable`].
pub fn runnable<A: Adversary<CksMsg> + Send + 'static>(
    cfg: &CksConfig,
    inputs: Vec<Bit>,
    adversary: A,
) -> Runnable {
    let cfg = cfg.clone();
    Runnable::new(move |sim| run(&cfg, sim, inputs, adversary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_fmine::SigMode;
    use ba_sim::{CorruptionModel, Passive};

    fn cfg(n: usize, phases: u64, seed: u64) -> CksConfig {
        CksConfig::adaptive(n, phases, Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal)))
    }

    #[test]
    fn schedule_mapping() {
        assert_eq!(schedule(0), (1, Slot::Report));
        assert_eq!(schedule(4), (1, Slot::CommitVote));
        assert_eq!(schedule(5), (2, Slot::Report));
    }

    #[test]
    fn validity_unanimous() {
        for bit in [false, true] {
            let c = cfg(10, 4, 1);
            let sim = SimConfig::new(10, 0, CorruptionModel::Static, 1);
            let (report, verdict) = run(&c, &sim, vec![bit; 10], Passive);
            assert!(verdict.all_ok(), "bit={bit}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(bit)));
            // Good case: decided inside the first phase plus the cascade.
            assert!(report.rounds_used <= 8, "rounds={}", report.rounds_used);
        }
    }

    #[test]
    fn consistency_mixed_inputs() {
        for seed in 0..8 {
            let c = cfg(13, 4, seed);
            let sim = SimConfig::new(13, 0, CorruptionModel::Static, seed);
            let inputs: Vec<Bit> = (0..13).map(|i| i % 3 == 0).collect();
            let (report, verdict) = run(&c, &sim, inputs, Passive);
            assert!(verdict.all_ok(), "seed={seed}: {verdict:?}");
            assert!(report.rounds_used <= 8, "seed={seed} rounds={}", report.rounds_used);
        }
    }

    #[test]
    fn good_case_words_scale_linearly() {
        // With zero faults one phase decides, so total words (n per
        // multicast + 1 per unicast) should scale ~linearly in n — the
        // adaptive O((f+1)·n) claim at f = 0. Multicast count itself must
        // stay O(1) per run: leader proposal + lock + decide + n relays.
        let words = |n: usize| -> u64 {
            let c = cfg(n, 4, 2);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, 2);
            let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
            let (report, verdict) = run(&c, &sim, inputs, Passive);
            assert!(verdict.all_ok(), "n={n}");
            // The decide relay is n multicasts (one per decider) — the
            // pre-decision phase traffic is what the adaptive bound
            // governs, so count unicasts plus leader multicasts.
            report.metrics.honest_unicasts + report.metrics.honest_multicasts
        };
        let (small, large) = (words(16), words(32));
        let ratio = large as f64 / small as f64;
        assert!(
            (1.5..3.0).contains(&ratio),
            "phase words should scale ~linearly: n=16 -> {small}, n=32 -> {large}"
        );
    }

    #[test]
    fn aggregate_encoding_preserves_decisions() {
        let n = 16;
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, 3);
        let (vec_rep, vec_v) = run(&cfg(n, 4, 3), &sim, inputs.clone(), Passive);
        let c = cfg(n, 4, 3).with_cert_encoding(CertEncoding::Aggregate);
        let (agg_rep, agg_v) = run(&c, &sim, inputs, Passive);
        assert!(vec_v.all_ok() && agg_v.all_ok());
        assert_eq!(vec_rep.outputs, agg_rep.outputs);
        assert_eq!(vec_rep.rounds_used, agg_rep.rounds_used);
    }

    #[test]
    fn support_quorum_rejects_duplicates_and_forgeries() {
        let c = cfg(7, 2, 9);
        let tag = MineTag::new(MsgKind::Status, 1, true);
        let evs: Vec<ReportRef> = (0..3)
            .map(|i| {
                let id = NodeId(i);
                ReportRef { from: id, ev: c.auth.attest(id, &tag).expect("signed") }
            })
            .collect();
        let q = SupportQuorum::Vector(evs.clone());
        assert!(q.verify(1, true, &c.auth, 3));
        assert!(!q.verify(1, false, &c.auth, 3), "wrong bit must fail");
        assert!(!q.verify(2, true, &c.auth, 3), "wrong phase must fail");
        assert!(!q.verify(1, true, &c.auth, 4), "short quorum must fail");
        let mut dup = evs.clone();
        dup[2] = dup[0].clone();
        assert!(
            !SupportQuorum::Vector(dup).verify(1, true, &c.auth, 3),
            "duplicate supporter must fail"
        );
        assert!(!SupportQuorum::Vector(evs).verify(0, true, &c.auth, 3), "phase 0 must fail");
    }

    #[test]
    fn locked_node_refuses_conflicting_support_justification() {
        // A node holding a certificate for bit 1 must not accept a
        // support-only proposal for bit 0 (lock precedence), but must
        // accept a support proposal for bit 1.
        let c = cfg(7, 3, 11);
        let quorum = c.quorum; // 5
        let vote_tag = MineTag::new(MsgKind::Vote, 1, true);
        let votes: Vec<VoteRef> = (0..quorum)
            .map(|i| {
                let id = NodeId(i);
                VoteRef { from: id, ev: c.auth.attest(id, &vote_tag).expect("signed") }
            })
            .collect();
        let cert = Certificate::from_votes(1, true, votes);
        let mut node = CksNode::new(c.clone(), NodeId(3), false, 0);
        node.adopt_cert(&cert);
        assert_eq!(node.best_rank(), 1);
        let support_tag = MineTag::new(MsgKind::Status, 2, false);
        let refs: Vec<ReportRef> = (0..c.support)
            .map(|i| {
                let id = NodeId(i);
                ReportRef { from: id, ev: c.auth.attest(id, &support_tag).expect("signed") }
            })
            .collect();
        let leader = c.leader(2);
        let prop_tag = MineTag::new(MsgKind::Propose, 2, false);
        let ev = c.auth.attest(leader, &prop_tag).expect("signed");
        let msg = CksMsg::Propose {
            phase: 2,
            bit: false,
            just: Justification::Support(SupportQuorum::Vector(refs)),
            ev,
        };
        node.ingest(&[Incoming::new(leader, msg)]);
        assert!(
            !node.proposal.contains_key(&2),
            "locked node must refuse a conflicting support justification"
        );
    }
}
