//! Multi-shot agreement: a replicated binary ledger built by running one
//! Theorem 2 instance per slot.
//!
//! This is the paper's motivating workload ("decentralized cryptocurrencies")
//! packaged as a library type: a sequence of slots, each decided by an
//! independent subquadratic BA instance with a **fresh committee per slot**
//! (eligibility tags include the slot through the per-instance execution id,
//! so committees never repeat — the adaptive adversary learns nothing useful
//! from corrupting yesterday's committee).
//!
//! The type also demonstrates how a downstream user composes the crates:
//! pick an eligibility backend per slot, run, collect verdicts and decisions,
//! and account communication across the whole chain.

use std::sync::Arc;

use ba_fmine::{Eligibility, IdealMine, MineParams, RealMine};
use ba_sim::{Adversary, Bit, CorruptionModel, Metrics, SimConfig};

use crate::iter::{self, IterConfig, IterMsg};

/// Which eligibility backend each slot instantiates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// The `F_mine` hybrid world (fast; Figure 1 semantics).
    Ideal,
    /// The Appendix D VRF compiler (real cryptography).
    RealVrf,
}

/// Configuration for a multi-slot ledger run.
#[derive(Clone, Debug)]
pub struct LedgerConfig {
    /// Number of nodes.
    pub n: usize,
    /// Expected committee size per slot.
    pub lambda: f64,
    /// Eligibility backend.
    pub backend: Backend,
    /// Base seed; slot `s` runs with seed `base_seed + s`.
    pub base_seed: u64,
    /// Corruption model for every slot.
    pub model: CorruptionModel,
    /// Corruption budget per slot.
    pub f: usize,
}

/// One decided slot.
#[derive(Clone, Debug)]
pub struct SlotRecord {
    /// Slot index.
    pub slot: u64,
    /// The decided bit (`None` if the slot failed to terminate).
    pub decision: Option<Bit>,
    /// Whether consistency+validity+termination all held.
    pub ok: bool,
    /// Rounds the slot took.
    pub rounds: u64,
    /// Communication for the slot.
    pub metrics: Metrics,
}

/// A replicated binary ledger: the history of decided slots.
#[derive(Debug, Default)]
pub struct Ledger {
    records: Vec<SlotRecord>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Decided history as bits (only slots that terminated).
    pub fn decisions(&self) -> Vec<Bit> {
        self.records.iter().filter_map(|r| r.decision).collect()
    }

    /// All slot records.
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// Number of slots appended.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no slot was appended yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total communication across all slots.
    pub fn total_metrics(&self) -> Metrics {
        let mut total = Metrics::default();
        for r in &self.records {
            total.merge(&r.metrics);
        }
        total
    }

    /// Runs one more slot: every node inputs its local view `inputs[i]` and
    /// the slot decides via the Appendix C.2 protocol. The adversary is
    /// constructed per slot by `adversary_factory` (slots are independent
    /// executions).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != cfg.n`.
    pub fn append_slot<A: Adversary<IterMsg> + Send>(
        &mut self,
        cfg: &LedgerConfig,
        inputs: Vec<Bit>,
        adversary: A,
    ) -> &SlotRecord {
        assert_eq!(inputs.len(), cfg.n, "one input per node");
        let slot = self.records.len() as u64;
        let seed = cfg.base_seed.wrapping_add(slot);
        let elig: Arc<dyn Eligibility> = match cfg.backend {
            Backend::Ideal => Arc::new(IdealMine::new(seed, MineParams::new(cfg.n, cfg.lambda))),
            Backend::RealVrf => {
                Arc::new(RealMine::from_seed(seed, MineParams::new(cfg.n, cfg.lambda)))
            }
        };
        let iter_cfg = IterConfig::subq_half(cfg.n, elig);
        let sim = SimConfig::new(cfg.n, cfg.f, cfg.model, seed);
        let (report, verdict) = iter::run(&iter_cfg, &sim, inputs, adversary);
        let decision = report.forever_honest().next().and_then(|i| report.outputs[i.index()]);
        self.records.push(SlotRecord {
            slot,
            decision: if verdict.terminated { decision } else { None },
            ok: verdict.all_ok(),
            rounds: report.rounds_used,
            metrics: report.metrics,
        });
        self.records.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_adversary_shim::Passive;

    // ba-core cannot depend on ba-adversary (cycle); use the passive
    // adversary from ba-sim through a tiny alias module.
    mod ba_adversary_shim {
        pub use ba_sim::Passive;
    }

    fn cfg(backend: Backend) -> LedgerConfig {
        LedgerConfig {
            n: 80,
            lambda: 20.0,
            backend,
            base_seed: 0xCAFE,
            model: CorruptionModel::Static,
            f: 0,
        }
    }

    #[test]
    fn ledger_grows_and_records_decisions() {
        let cfg = cfg(Backend::Ideal);
        let mut ledger = Ledger::new();
        assert!(ledger.is_empty());
        for s in 0..5u64 {
            let bit = s % 2 == 0;
            let rec = ledger.append_slot(&cfg, vec![bit; cfg.n], Passive);
            assert!(rec.ok, "slot {s}");
            assert_eq!(rec.decision, Some(bit), "unanimous slot decides its input");
        }
        assert_eq!(ledger.len(), 5);
        assert_eq!(ledger.decisions(), vec![true, false, true, false, true]);
    }

    #[test]
    fn ledger_totals_accumulate() {
        let cfg = cfg(Backend::Ideal);
        let mut ledger = Ledger::new();
        for _ in 0..3 {
            ledger.append_slot(&cfg, vec![true; cfg.n], Passive);
        }
        let total = ledger.total_metrics();
        let sum: u64 = ledger.records().iter().map(|r| r.metrics.honest_multicasts).sum();
        assert_eq!(total.honest_multicasts, sum);
        assert!(total.honest_multicasts > 0);
    }

    #[test]
    fn fresh_committee_per_slot() {
        // The same seed base but different slots must elect different
        // committees (the adaptive-security point of per-slot eligibility).
        let cfg = cfg(Backend::Ideal);
        let mut ledger = Ledger::new();
        let r1 = ledger.append_slot(&cfg, vec![true; cfg.n], Passive).metrics.clone();
        let r2 = ledger.append_slot(&cfg, vec![true; cfg.n], Passive).metrics.clone();
        // Different committees make (almost surely) different traffic.
        assert!(
            r1.honest_multicasts != r2.honest_multicasts
                || r1.honest_multicast_bits != r2.honest_multicast_bits,
            "two slots produced identical traffic — committees probably repeated"
        );
    }

    #[test]
    fn real_vrf_backend_decides_too() {
        let mut cfg = cfg(Backend::RealVrf);
        cfg.n = 40;
        cfg.lambda = 14.0;
        let mut ledger = Ledger::new();
        let rec = ledger.append_slot(&cfg, vec![true; cfg.n], Passive);
        assert!(rec.ok);
        assert_eq!(rec.decision, Some(true));
    }

    #[test]
    #[should_panic(expected = "one input per node")]
    fn wrong_input_len_panics() {
        let cfg = cfg(Backend::Ideal);
        let mut ledger = Ledger::new();
        let _ = ledger.append_slot(&cfg, vec![true; 3], Passive);
    }
}
