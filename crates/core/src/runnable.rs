//! Type-erased, thread-dispatchable protocol executions.
//!
//! Every protocol family in this crate exposes a `runnable(...)`
//! constructor (`iter::runnable`, `epoch::runnable`, `dolev_strong::runnable`,
//! `ba_from_bb::runnable`, `broadcast::runnable_iter_bb`,
//! `momose_ren::runnable`, `cks::runnable`) returning a
//! [`Runnable`]: one fully configured execution — protocol configuration,
//! environment inputs, and adversary — erased down to a `Send` closure over
//! the [`SimConfig`] it will eventually run under.
//!
//! This is the uniform surface the `ba-bench` scenario layer dispatches
//! over: a sweep harness builds one `Runnable` per (scenario, seed) cell and
//! ships it to a `std::thread::scope` worker, where it drives
//! [`ba_sim::Sim::run_boxed`] through the family's typed `run(...)` entry
//! point.

use ba_sim::{RunReport, SimConfig, Verdict};

/// One fully configured protocol execution, erased to a `Send` closure.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ba_core::iter::{self, IterConfig};
/// use ba_fmine::{IdealMine, MineParams};
/// use ba_sim::{CorruptionModel, Passive, SimConfig};
///
/// let n = 64;
/// let elig = Arc::new(IdealMine::new(3, MineParams::new(n, 16.0)));
/// let runnable = iter::runnable(&IterConfig::subq_half(n, elig), vec![true; n], Passive);
/// // `Runnable: Send` — hand it to a worker thread and execute there.
/// let sim = SimConfig::new(n, 0, CorruptionModel::Static, 3);
/// let (report, verdict) =
///     std::thread::spawn(move || runnable.execute(&sim)).join().unwrap();
/// assert!(verdict.all_ok());
/// assert!(report.outputs.iter().all(|o| *o == Some(true)));
/// ```
type RunFn = Box<dyn FnOnce(&SimConfig) -> (RunReport, Verdict) + Send>;

pub struct Runnable {
    run: RunFn,
}

impl Runnable {
    /// Wraps an execution closure.
    pub fn new(run: impl FnOnce(&SimConfig) -> (RunReport, Verdict) + Send + 'static) -> Runnable {
        Runnable { run: Box::new(run) }
    }

    /// Runs the execution to completion under `sim` and returns the report
    /// and the security verdict.
    pub fn execute(self, sim: &SimConfig) -> (RunReport, Verdict) {
        (self.run)(sim)
    }
}

impl std::fmt::Debug for Runnable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runnable").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
    use ba_sim::{CorruptionModel, NodeId, Passive, SimConfig};

    use crate::cks::{self, CksConfig};
    use crate::epoch::{self, EpochConfig};
    use crate::iter::{self, IterConfig};
    use crate::momose_ren::{self, MrConfig};
    use crate::{ba_from_bb, broadcast, dolev_strong};

    fn assert_send<T: Send>(_: &T) {}

    #[test]
    fn all_seven_families_construct_and_execute() {
        let n = 24;
        let seed = 5;
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 12.0)));
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);

        let runnables = vec![
            iter::runnable(&IterConfig::subq_half(n, elig.clone()), vec![true; n], Passive),
            epoch::runnable(&EpochConfig::warmup_third(n, 6, kc.clone()), vec![true; n], Passive),
            dolev_strong::runnable(
                &dolev_strong::DsConfig { n, f: 3, sender: NodeId(0), keychain: kc.clone() },
                true,
                Passive,
            ),
            ba_from_bb::runnable(n, 3, kc.clone(), vec![true; n], Passive),
            broadcast::runnable_iter_bb(
                &IterConfig::subq_half(n, elig),
                kc.clone(),
                NodeId(0),
                true,
                Passive,
            ),
            momose_ren::runnable(&MrConfig::half(n, 6, kc.clone()), vec![true; n], Passive),
            cks::runnable(&CksConfig::adaptive(n, 6, kc), vec![true; n], Passive),
        ];
        for runnable in runnables {
            assert_send(&runnable);
            let (report, verdict) = runnable.execute(&sim);
            assert!(verdict.all_ok(), "{verdict:?}");
            assert!(report.forever_honest().all(|i| report.outputs[i.index()] == Some(true)));
        }
    }
}
