//! Certificates: quorums of votes, ranked by iteration (Appendix C).
//!
//! A collection of `quorum` (signed or mined) iteration-`r` `Vote` messages
//! for the same bit `b` from distinct nodes is an *iteration-`r` certificate
//! for `b`*. A bit without any certificate is treated as having an
//! "iteration-0 certificate", the lowest rank.

use ba_fmine::{MineTag, MsgKind};
use ba_sim::{Bit, NodeId};

use crate::auth::{Auth, Evidence};

/// One vote inside a certificate: the voter and its evidence for the vote
/// statement `(Vote, iter, bit)`.
#[derive(Clone, Debug, PartialEq)]
pub struct VoteRef {
    /// The voter.
    pub from: NodeId,
    /// Evidence for `(Vote, iter, bit)`.
    pub ev: Evidence,
}

/// An iteration-`r` certificate for a bit.
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// The iteration whose votes form the certificate (1-based; rank 0 is
    /// reserved for "no certificate").
    pub iter: u64,
    /// The certified bit.
    pub bit: Bit,
    /// The quorum of votes.
    pub votes: Vec<VoteRef>,
}

impl Certificate {
    /// The rank of an optional certificate: `0` for `None` (the paper's
    /// "iteration-0 certificate"), else the certificate's iteration.
    pub fn rank(cert: &Option<Certificate>) -> u64 {
        cert.as_ref().map_or(0, |c| c.iter)
    }

    /// Verifies the certificate: at least `quorum` votes from distinct nodes,
    /// each carrying valid evidence for `(Vote, iter, bit)`.
    ///
    /// All vote evidence is checked in one [`Auth::verify_batch`] call —
    /// one combined multi-exponentiation in the real-crypto regimes, and
    /// O(1) statement-cache hits for votes this node has verified before
    /// (certificates repeat votes across rounds).
    pub fn verify(&self, auth: &Auth, quorum: usize) -> bool {
        if self.iter == 0 || self.votes.len() < quorum {
            return false;
        }
        let mut seen: Vec<NodeId> = Vec::with_capacity(self.votes.len());
        for vote in &self.votes {
            if seen.contains(&vote.from) {
                return false; // duplicate voter
            }
            seen.push(vote.from);
        }
        let tag = MineTag::new(MsgKind::Vote, self.iter, self.bit);
        let claims: Vec<(NodeId, MineTag, &Evidence)> =
            self.votes.iter().map(|v| (v.from, tag, &v.ev)).collect();
        auth.verify_batch(&claims).iter().all(|&ok| ok)
    }

    /// Estimated wire size in bits (votes dominate).
    pub fn size_bits(&self) -> usize {
        64 + 8 + self.votes.iter().map(|v| 32 + v.ev.size_bits()).sum::<usize>()
    }
}

/// One commit reference inside a `Terminate` message: evidence that `from`
/// sent `(Commit, iter, bit)`.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitRef {
    /// The committing node.
    pub from: NodeId,
    /// Evidence for `(Commit, iter, bit)`.
    pub ev: Evidence,
}

/// Verifies a quorum of commit references for `(iter, bit)`: distinct nodes,
/// valid evidence, at least `quorum` of them.
pub fn verify_commit_quorum(
    commits: &[CommitRef],
    iter: u64,
    bit: Bit,
    auth: &Auth,
    quorum: usize,
) -> bool {
    if commits.len() < quorum {
        return false;
    }
    let mut seen: Vec<NodeId> = Vec::with_capacity(commits.len());
    for c in commits {
        if seen.contains(&c.from) {
            return false;
        }
        seen.push(c.from);
    }
    let tag = MineTag::new(MsgKind::Commit, iter, bit);
    let claims: Vec<(NodeId, MineTag, &Evidence)> =
        commits.iter().map(|c| (c.from, tag, &c.ev)).collect();
    auth.verify_batch(&claims).iter().all(|&ok| ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_fmine::{Keychain, SigMode};
    use std::sync::Arc;

    fn signed_auth(n: usize) -> Auth {
        Auth::Signed { keychain: Arc::new(Keychain::from_seed(1, n, SigMode::Ideal)) }
    }

    fn make_cert(auth: &Auth, iter: u64, bit: Bit, voters: &[usize]) -> Certificate {
        let tag = MineTag::new(MsgKind::Vote, iter, bit);
        Certificate {
            iter,
            bit,
            votes: voters
                .iter()
                .map(|&i| VoteRef {
                    from: NodeId(i),
                    ev: auth.attest(NodeId(i), &tag).expect("signed mode always attests"),
                })
                .collect(),
        }
    }

    #[test]
    fn valid_certificate_verifies() {
        let auth = signed_auth(5);
        let cert = make_cert(&auth, 2, true, &[0, 1, 2]);
        assert!(cert.verify(&auth, 3));
        assert!(cert.verify(&auth, 2)); // higher quorum than needed
        assert!(!cert.verify(&auth, 4)); // not enough votes
    }

    #[test]
    fn duplicate_voters_rejected() {
        let auth = signed_auth(5);
        let mut cert = make_cert(&auth, 2, true, &[0, 1]);
        cert.votes.push(cert.votes[0].clone());
        assert!(!cert.verify(&auth, 3), "padding with a duplicate must not reach quorum");
    }

    #[test]
    fn vote_for_other_bit_rejected() {
        let auth = signed_auth(5);
        // Evidence actually covers bit=false, certificate claims bit=true.
        let mut cert = make_cert(&auth, 2, true, &[0, 1]);
        let wrong_tag = MineTag::new(MsgKind::Vote, 2, false);
        cert.votes
            .push(VoteRef { from: NodeId(2), ev: auth.attest(NodeId(2), &wrong_tag).unwrap() });
        assert!(!cert.verify(&auth, 3));
    }

    #[test]
    fn iteration_zero_certificates_invalid() {
        let auth = signed_auth(5);
        let cert = make_cert(&auth, 0, true, &[0, 1, 2]);
        assert!(!cert.verify(&auth, 3), "iteration 0 is the reserved no-certificate rank");
    }

    #[test]
    fn rank_ordering() {
        let auth = signed_auth(5);
        let none: Option<Certificate> = None;
        let low = Some(make_cert(&auth, 1, true, &[0, 1, 2]));
        let high = Some(make_cert(&auth, 7, false, &[0, 1, 2]));
        assert_eq!(Certificate::rank(&none), 0);
        assert!(Certificate::rank(&low) < Certificate::rank(&high));
    }

    #[test]
    fn commit_quorum_verification() {
        let auth = signed_auth(5);
        let tag = MineTag::new(MsgKind::Commit, 3, true);
        let commits: Vec<CommitRef> = (0..3)
            .map(|i| CommitRef { from: NodeId(i), ev: auth.attest(NodeId(i), &tag).unwrap() })
            .collect();
        assert!(verify_commit_quorum(&commits, 3, true, &auth, 3));
        assert!(!verify_commit_quorum(&commits, 3, true, &auth, 4));
        assert!(!verify_commit_quorum(&commits, 3, false, &auth, 3)); // wrong bit
        assert!(!verify_commit_quorum(&commits, 4, true, &auth, 3)); // wrong iter
                                                                     // Two distinct commits padded with a duplicate must not reach quorum.
        let dup = vec![commits[0].clone(), commits[1].clone(), commits[0].clone()];
        assert!(!verify_commit_quorum(&dup, 3, true, &auth, 3));
    }

    #[test]
    fn size_grows_with_votes() {
        let auth = signed_auth(5);
        let small = make_cert(&auth, 1, true, &[0, 1]);
        let large = make_cert(&auth, 1, true, &[0, 1, 2, 3]);
        assert!(small.size_bits() < large.size_bits());
    }
}
