//! Certificates: quorums of votes, ranked by iteration (Appendix C).
//!
//! A collection of `quorum` (signed or mined) iteration-`r` `Vote` messages
//! for the same bit `b` from distinct nodes is an *iteration-`r` certificate
//! for `b`*. A bit without any certificate is treated as having an
//! "iteration-0 certificate", the lowest rank.
//!
//! ## Encodings
//!
//! How a quorum is carried on the wire is a pluggable backend
//! ([`CertEncoding`]):
//!
//! * [`CertEncoding::Vector`] — the literal transcript: one
//!   `(voter, evidence)` pair per quorum member, O(quorum · |evidence|)
//!   bits. Works under every authentication regime.
//! * [`CertEncoding::Aggregate`] — one aggregate signature over the shared
//!   vote statement plus an `n`-bit signer bitmap
//!   ([`AggregateQuorum`]), O(n + |sig|) bits. Only the signed regime can
//!   aggregate (tickets prove *eligibility*, which has no joint-signing
//!   analogue here), so mined configurations silently stay on `Vector` —
//!   see [`crate::iter::IterConfig::effective_cert_encoding`].
//!
//! Both encodings answer the same question — "did `quorum` distinct nodes
//! attest `(Vote, r, b)`?" — and the differential suite in `ba-bench` pins
//! the protocol's decisions to be identical under either.

use ba_fmine::{AggSig, MineTag, MsgKind, AGG_SIG_BITS};
use ba_sim::{Bit, NodeId};

use crate::auth::{Auth, Evidence};

/// Which wire encoding certificates and commit quorums use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CertEncoding {
    /// One `(voter, evidence)` pair per quorum member (the transcript).
    #[default]
    Vector,
    /// One aggregate signature plus an `n`-bit signer bitmap.
    Aggregate,
}

impl std::fmt::Display for CertEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertEncoding::Vector => f.write_str("vector"),
            CertEncoding::Aggregate => f.write_str("aggregate"),
        }
    }
}

impl std::str::FromStr for CertEncoding {
    type Err = String;

    fn from_str(s: &str) -> Result<CertEncoding, String> {
        match s {
            "vector" => Ok(CertEncoding::Vector),
            "aggregate" => Ok(CertEncoding::Aggregate),
            other => Err(format!("unknown cert encoding '{other}' (expected vector|aggregate)")),
        }
    }
}

/// One vote inside a certificate: the voter and its evidence for the vote
/// statement `(Vote, iter, bit)`.
#[derive(Clone, Debug, PartialEq)]
pub struct VoteRef {
    /// The voter.
    pub from: NodeId,
    /// Evidence for `(Vote, iter, bit)`.
    pub ev: Evidence,
}

/// A quorum compressed to one aggregate signature plus a signer bitmap —
/// the [`CertEncoding::Aggregate`] payload for certificates and commit
/// quorums alike.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateQuorum {
    /// Enrolled node count: the width of the signer bitmap.
    pub n: usize,
    /// The quorum members, in strictly increasing id order (the set bits
    /// of the bitmap, which is how the wire format carries them).
    pub signers: Vec<NodeId>,
    /// One aggregate signature by exactly `signers` on the shared
    /// statement.
    pub agg: AggSig,
}

impl AggregateQuorum {
    /// Number of quorum members.
    pub fn len(&self) -> usize {
        self.signers.len()
    }

    /// Whether the quorum is empty (never valid, but keeps clippy's
    /// `len_without_is_empty` honest).
    pub fn is_empty(&self) -> bool {
        self.signers.is_empty()
    }

    /// Wire size in bits: the `n`-wide signer bitmap plus one aggregate
    /// signature — independent of the quorum size. This is the whole
    /// communication win over [`CertEncoding::Vector`].
    pub fn size_bits(&self) -> usize {
        self.n + AGG_SIG_BITS
    }
}

/// The quorum payload of a [`Certificate`], in either encoding.
#[derive(Clone, Debug, PartialEq)]
pub enum CertBody {
    /// The vote transcript.
    Vector(Vec<VoteRef>),
    /// One aggregate signature + bitmap.
    Aggregate(AggregateQuorum),
}

/// An iteration-`r` certificate for a bit.
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// The iteration whose votes form the certificate (1-based; rank 0 is
    /// reserved for "no certificate").
    pub iter: u64,
    /// The certified bit.
    pub bit: Bit,
    /// The quorum of votes, in the encoding the sender used.
    pub body: CertBody,
}

impl Certificate {
    /// A vector-encoded certificate (the historical constructor).
    pub fn from_votes(iter: u64, bit: Bit, votes: Vec<VoteRef>) -> Certificate {
        Certificate { iter, bit, body: CertBody::Vector(votes) }
    }

    /// The rank of an optional certificate: `0` for `None` (the paper's
    /// "iteration-0 certificate"), else the certificate's iteration.
    pub fn rank(cert: &Option<Certificate>) -> u64 {
        cert.as_ref().map_or(0, |c| c.iter)
    }

    /// Number of votes the certificate claims.
    pub fn quorum_len(&self) -> usize {
        match &self.body {
            CertBody::Vector(votes) => votes.len(),
            CertBody::Aggregate(q) => q.len(),
        }
    }

    /// Verifies the certificate: at least `quorum` votes from distinct nodes,
    /// each attested for `(Vote, iter, bit)`.
    ///
    /// Vector bodies check all vote evidence in one [`Auth::verify_batch`]
    /// call — one combined multi-exponentiation in the real-crypto regimes,
    /// and O(1) statement-cache hits for votes this node has verified before
    /// (certificates repeat votes across rounds). Aggregate bodies check the
    /// single aggregate signature against the claimed signer bitmap via
    /// [`Auth::verify_aggregate`] (Straus fast path + claim cache).
    pub fn verify(&self, auth: &Auth, quorum: usize) -> bool {
        if self.iter == 0 || self.quorum_len() < quorum {
            return false;
        }
        let tag = MineTag::new(MsgKind::Vote, self.iter, self.bit);
        match &self.body {
            CertBody::Vector(votes) => {
                let mut seen: Vec<NodeId> = Vec::with_capacity(votes.len());
                for vote in votes {
                    if seen.contains(&vote.from) {
                        return false; // duplicate voter
                    }
                    seen.push(vote.from);
                }
                let claims: Vec<(NodeId, MineTag, &Evidence)> =
                    votes.iter().map(|v| (v.from, tag, &v.ev)).collect();
                auth.verify_batch(&claims).iter().all(|&ok| ok)
            }
            CertBody::Aggregate(q) => auth.verify_aggregate(&tag, q),
        }
    }

    /// Estimated wire size in bits (the quorum dominates).
    pub fn size_bits(&self) -> usize {
        let body = match &self.body {
            CertBody::Vector(votes) => votes.iter().map(|v| 32 + v.ev.size_bits()).sum::<usize>(),
            CertBody::Aggregate(q) => q.size_bits(),
        };
        64 + 8 + body
    }
}

/// One commit reference inside a `Terminate` message: evidence that `from`
/// sent `(Commit, iter, bit)`.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitRef {
    /// The committing node.
    pub from: NodeId,
    /// Evidence for `(Commit, iter, bit)`.
    pub ev: Evidence,
}

/// The quorum of commits a `Terminate` message carries, in either encoding.
#[derive(Clone, Debug, PartialEq)]
pub enum CommitQuorum {
    /// The commit transcript.
    Vector(Vec<CommitRef>),
    /// One aggregate signature + bitmap over the commit statement.
    Aggregate(AggregateQuorum),
}

impl CommitQuorum {
    /// Number of commits the quorum claims.
    pub fn len(&self) -> usize {
        match self {
            CommitQuorum::Vector(commits) => commits.len(),
            CommitQuorum::Aggregate(q) => q.len(),
        }
    }

    /// Whether the quorum is empty (never valid at any positive quorum).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Verifies the quorum for `(Commit, iter, bit)`: distinct nodes, valid
    /// evidence, at least `quorum` of them.
    pub fn verify(&self, iter: u64, bit: Bit, auth: &Auth, quorum: usize) -> bool {
        if self.len() < quorum {
            return false;
        }
        let tag = MineTag::new(MsgKind::Commit, iter, bit);
        match self {
            CommitQuorum::Vector(commits) => {
                let mut seen: Vec<NodeId> = Vec::with_capacity(commits.len());
                for c in commits {
                    if seen.contains(&c.from) {
                        return false;
                    }
                    seen.push(c.from);
                }
                let claims: Vec<(NodeId, MineTag, &Evidence)> =
                    commits.iter().map(|c| (c.from, tag, &c.ev)).collect();
                auth.verify_batch(&claims).iter().all(|&ok| ok)
            }
            CommitQuorum::Aggregate(q) => auth.verify_aggregate(&tag, q),
        }
    }

    /// Estimated wire size in bits.
    pub fn size_bits(&self) -> usize {
        match self {
            CommitQuorum::Vector(commits) => {
                commits.iter().map(|c| 32 + c.ev.size_bits()).sum::<usize>()
            }
            CommitQuorum::Aggregate(q) => q.size_bits(),
        }
    }
}

/// Verifies a quorum of commit references for `(iter, bit)` — the
/// vector-encoded special case of [`CommitQuorum::verify`], kept for
/// callers that hold a bare transcript.
pub fn verify_commit_quorum(
    commits: &[CommitRef],
    iter: u64,
    bit: Bit,
    auth: &Auth,
    quorum: usize,
) -> bool {
    CommitQuorum::Vector(commits.to_vec()).verify(iter, bit, auth, quorum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::IterConfig;
    use ba_fmine::{Keychain, SigMode};
    use std::sync::Arc;

    fn signed_auth(n: usize) -> Auth {
        Auth::Signed { keychain: Arc::new(Keychain::from_seed(1, n, SigMode::Ideal)) }
    }

    fn make_cert(auth: &Auth, iter: u64, bit: Bit, voters: &[usize]) -> Certificate {
        let tag = MineTag::new(MsgKind::Vote, iter, bit);
        Certificate::from_votes(
            iter,
            bit,
            voters
                .iter()
                .map(|&i| VoteRef {
                    from: NodeId(i),
                    ev: auth.attest(NodeId(i), &tag).expect("signed mode always attests"),
                })
                .collect(),
        )
    }

    /// Builds the aggregate-encoded certificate for the same quorum.
    fn make_agg_cert(auth: &Auth, n: usize, iter: u64, bit: Bit, voters: &[usize]) -> Certificate {
        let vector = make_cert(auth, iter, bit, voters);
        let CertBody::Vector(votes) = &vector.body else { unreachable!() };
        let tag = MineTag::new(MsgKind::Vote, iter, bit);
        let mut sorted: Vec<&VoteRef> = votes.iter().collect();
        sorted.sort_by_key(|v| v.from);
        let claims: Vec<(NodeId, &Evidence)> = sorted.iter().map(|v| (v.from, &v.ev)).collect();
        let agg = auth.aggregate(&tag, &claims).expect("signed regime aggregates");
        let signers: Vec<NodeId> = sorted.iter().map(|v| v.from).collect();
        Certificate { iter, bit, body: CertBody::Aggregate(AggregateQuorum { n, signers, agg }) }
    }

    #[test]
    fn cert_encoding_string_roundtrip() {
        for enc in [CertEncoding::Vector, CertEncoding::Aggregate] {
            let s = enc.to_string();
            assert_eq!(s.parse::<CertEncoding>().unwrap(), enc);
        }
        assert!("threshold".parse::<CertEncoding>().is_err());
        assert_eq!(CertEncoding::default(), CertEncoding::Vector);
    }

    #[test]
    fn valid_certificate_verifies() {
        let auth = signed_auth(5);
        let cert = make_cert(&auth, 2, true, &[0, 1, 2]);
        assert!(cert.verify(&auth, 3));
        assert!(cert.verify(&auth, 2)); // higher quorum than needed
        assert!(!cert.verify(&auth, 4)); // not enough votes
    }

    #[test]
    fn valid_aggregate_certificate_verifies() {
        let auth = signed_auth(5);
        let cert = make_agg_cert(&auth, 5, 2, true, &[0, 1, 2]);
        assert!(cert.verify(&auth, 3));
        assert!(cert.verify(&auth, 2));
        assert!(!cert.verify(&auth, 4)); // not enough signers
    }

    #[test]
    fn aggregate_is_smaller_than_vector_at_scale() {
        let n = 64;
        let auth = signed_auth(n);
        let voters: Vec<usize> = (0..33).collect();
        let vector = make_cert(&auth, 1, true, &voters);
        let agg = make_agg_cert(&auth, n, 1, true, &voters);
        assert!(
            agg.size_bits() * 4 <= vector.size_bits(),
            "aggregate {} bits vs vector {} bits",
            agg.size_bits(),
            vector.size_bits()
        );
    }

    #[test]
    fn duplicate_voters_rejected() {
        let auth = signed_auth(5);
        let mut cert = make_cert(&auth, 2, true, &[0, 1]);
        let CertBody::Vector(votes) = &mut cert.body else { unreachable!() };
        votes.push(votes[0].clone());
        assert!(!cert.verify(&auth, 3), "padding with a duplicate must not reach quorum");
    }

    #[test]
    fn aggregate_duplicate_signers_rejected() {
        let auth = signed_auth(5);
        let mut cert = make_agg_cert(&auth, 5, 2, true, &[0, 1]);
        let CertBody::Aggregate(q) = &mut cert.body else { unreachable!() };
        q.signers.push(q.signers[1]);
        assert!(!cert.verify(&auth, 3), "a bitmap cannot name a node twice");
    }

    #[test]
    fn aggregate_bitmap_inflation_rejected() {
        let auth = signed_auth(5);
        let mut cert = make_agg_cert(&auth, 5, 2, true, &[0, 1]);
        let CertBody::Aggregate(q) = &mut cert.body else { unreachable!() };
        q.signers.push(NodeId(3)); // node 3 never voted
        assert!(!cert.verify(&auth, 3), "claiming a non-signer must not reach quorum");
    }

    #[test]
    fn aggregate_under_mined_regime_rejected() {
        // An aggregate body is only meaningful under the signed regime;
        // a mined-regime verifier must reject it outright.
        let signed = signed_auth(5);
        let cert = make_agg_cert(&signed, 5, 2, true, &[0, 1, 2]);
        let mined = Auth::Mined {
            elig: Arc::new(ba_fmine::IdealMine::new(2, ba_fmine::MineParams::new(5, 5.0))),
            bit_specific: true,
            keychain: None,
        };
        assert!(!cert.verify(&mined, 3));
        assert!(
            IterConfig::subq_half(
                5,
                Arc::new(ba_fmine::IdealMine::new(2, ba_fmine::MineParams::new(5, 5.0)))
            )
            .effective_cert_encoding()
                == CertEncoding::Vector
        );
    }

    #[test]
    fn vote_for_other_bit_rejected() {
        let auth = signed_auth(5);
        // Evidence actually covers bit=false, certificate claims bit=true.
        let mut cert = make_cert(&auth, 2, true, &[0, 1]);
        let wrong_tag = MineTag::new(MsgKind::Vote, 2, false);
        let CertBody::Vector(votes) = &mut cert.body else { unreachable!() };
        votes.push(VoteRef { from: NodeId(2), ev: auth.attest(NodeId(2), &wrong_tag).unwrap() });
        assert!(!cert.verify(&auth, 3));
    }

    #[test]
    fn aggregate_for_other_statement_rejected() {
        // Mixed-statement aggregation: an aggregate over the *commit*
        // statement presented as a vote certificate must fail.
        let auth = signed_auth(5);
        let commit_tag = MineTag::new(MsgKind::Commit, 2, true);
        let claims: Vec<(NodeId, Evidence)> =
            (0..3).map(|i| (NodeId(i), auth.attest(NodeId(i), &commit_tag).unwrap())).collect();
        let refs: Vec<(NodeId, &Evidence)> = claims.iter().map(|(n, e)| (*n, e)).collect();
        let agg = auth.aggregate(&commit_tag, &refs).expect("valid commit aggregate");
        let cert = Certificate {
            iter: 2,
            bit: true,
            body: CertBody::Aggregate(AggregateQuorum {
                n: 5,
                signers: (0..3).map(NodeId).collect(),
                agg,
            }),
        };
        assert!(!cert.verify(&auth, 3));
    }

    #[test]
    fn iteration_zero_certificates_invalid() {
        let auth = signed_auth(5);
        let cert = make_cert(&auth, 0, true, &[0, 1, 2]);
        assert!(!cert.verify(&auth, 3), "iteration 0 is the reserved no-certificate rank");
        let agg = make_agg_cert(&auth, 5, 0, true, &[0, 1, 2]);
        assert!(!agg.verify(&auth, 3));
    }

    #[test]
    fn rank_ordering() {
        let auth = signed_auth(5);
        let none: Option<Certificate> = None;
        let low = Some(make_cert(&auth, 1, true, &[0, 1, 2]));
        let high = Some(make_cert(&auth, 7, false, &[0, 1, 2]));
        assert_eq!(Certificate::rank(&none), 0);
        assert!(Certificate::rank(&low) < Certificate::rank(&high));
    }

    #[test]
    fn commit_quorum_verification() {
        let auth = signed_auth(5);
        let tag = MineTag::new(MsgKind::Commit, 3, true);
        let commits: Vec<CommitRef> = (0..3)
            .map(|i| CommitRef { from: NodeId(i), ev: auth.attest(NodeId(i), &tag).unwrap() })
            .collect();
        assert!(verify_commit_quorum(&commits, 3, true, &auth, 3));
        assert!(!verify_commit_quorum(&commits, 3, true, &auth, 4));
        assert!(!verify_commit_quorum(&commits, 3, false, &auth, 3)); // wrong bit
        assert!(!verify_commit_quorum(&commits, 4, true, &auth, 3)); // wrong iter
                                                                     // Two distinct commits padded with a duplicate must not reach quorum.
        let dup = vec![commits[0].clone(), commits[1].clone(), commits[0].clone()];
        assert!(!verify_commit_quorum(&dup, 3, true, &auth, 3));
    }

    #[test]
    fn aggregate_commit_quorum_verification() {
        let auth = signed_auth(5);
        let tag = MineTag::new(MsgKind::Commit, 3, true);
        let claims: Vec<(NodeId, Evidence)> =
            (0..3).map(|i| (NodeId(i), auth.attest(NodeId(i), &tag).unwrap())).collect();
        let refs: Vec<(NodeId, &Evidence)> = claims.iter().map(|(n, e)| (*n, e)).collect();
        let agg = auth.aggregate(&tag, &refs).expect("signed regime aggregates");
        let quorum = CommitQuorum::Aggregate(AggregateQuorum {
            n: 5,
            signers: (0..3).map(NodeId).collect(),
            agg,
        });
        assert!(quorum.verify(3, true, &auth, 3));
        assert!(!quorum.verify(3, true, &auth, 4)); // not enough signers
        assert!(!quorum.verify(3, false, &auth, 3)); // wrong bit
        assert!(!quorum.verify(4, true, &auth, 3)); // wrong iter
    }

    #[test]
    fn size_grows_with_votes() {
        let auth = signed_auth(5);
        let small = make_cert(&auth, 1, true, &[0, 1]);
        let large = make_cert(&auth, 1, true, &[0, 1, 2, 3]);
        assert!(small.size_bits() < large.size_bits());
        // Aggregate certificates cost the same regardless of quorum size.
        let agg_small = make_agg_cert(&auth, 5, 1, true, &[0, 1]);
        let agg_large = make_agg_cert(&auth, 5, 1, true, &[0, 1, 2, 3]);
        assert_eq!(agg_small.size_bits(), agg_large.size_bits());
    }
}
