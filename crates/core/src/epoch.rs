//! The epoch-based BA family (§3.1 and §3.2 of the paper).
//!
//! One state machine covers four instantiations that differ only in their
//! authentication regime and leader election:
//!
//! * **Warmup** (§3.1): every node speaks, signed messages, round-robin
//!   leader oracle, quorum `2n/3`, tolerates `< n/3` corruptions,
//!   `Θ(n)` multicasts per epoch.
//! * **Subquadratic, bit-specific** (§3.2): conditional multicast through
//!   `F_mine`/VRF with **bit-specific** tags, quorum `2λ/3`, leader
//!   self-election at difficulty `1/(2n)` — the paper's construction.
//! * **Subquadratic, shared committee**: the same protocol with
//!   non-bit-specific election — the configuration the Remark in §3.3
//!   proves insecure (experiment E8 demonstrates the attack).
//! * **Chen–Micali strawman**: shared committee + forward-secure
//!   signatures; secure only in the memory-erasure model.
//!
//! ## Protocol (each epoch `r`, two synchronous rounds)
//!
//! 1. *Propose*: the epoch's leader (oracle or self-elected) flips a random
//!    coin `b` and multicasts `(Propose, r, b)`.
//! 2. *Ack*: every node sets `b* := b_i` if its sticky flag is set or no
//!    valid proposal arrived, else `b* :=` the proposal; it then
//!    (conditionally) multicasts `(Ack, r, b*)`.
//! 3. On tallying the epoch's acks at the start of the next epoch: if at
//!    least `quorum` distinct-sender acks vouch for the same `b*`, set
//!    `b_i := b*` and the sticky flag; else clear the sticky flag. (If —
//!    which happens only under attack — *both* bits reach quorum, the node
//!    keeps its current belief with the sticky flag set.)
//!
//! After `R` epochs every node outputs the bit it last acked (its final
//! `b*`).

use std::collections::HashMap;
use std::sync::Arc;

use ba_crypto::hmac::HmacDrbg;
use ba_fmine::{Eligibility, Keychain, MineTag, MsgKind, NeverMine};
use ba_sim::{
    evaluate, run_sparse, ActivationOracle, Adversary, Bit, BoxedProtocol, Incoming, Message,
    NodeId, Outbox, PopulationMode, Problem, Protocol, Round, RunReport, SimConfig, SparseSpec,
    TransportSpec, Verdict,
};

use crate::auth::{Auth, Evidence, FsService};
use crate::runnable::Runnable;

/// Messages of the epoch family.
#[derive(Clone, Debug, PartialEq)]
pub enum EpochMsg {
    /// Leader proposal `(Propose, r, b)`.
    Propose {
        /// Epoch number.
        epoch: u64,
        /// Proposed bit.
        bit: Bit,
        /// Authorization evidence.
        ev: Evidence,
    },
    /// Acknowledgement `(Ack, r, b)`.
    Ack {
        /// Epoch number.
        epoch: u64,
        /// Acked bit.
        bit: Bit,
        /// Authorization evidence.
        ev: Evidence,
    },
}

impl Message for EpochMsg {
    fn size_bits(&self) -> usize {
        let (EpochMsg::Propose { ev, .. } | EpochMsg::Ack { ev, .. }) = self;
        8 + 64 + 1 + ev.size_bits()
    }
}

/// How the epoch leader is chosen.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeaderMode {
    /// §3.1's idealized oracle: epoch `r`'s leader is node `r mod n`.
    RoundRobin,
    /// §3.2: self-election by mining `(Propose, r, b)` at difficulty
    /// `1/(2n)`.
    Mined,
}

/// Configuration of one epoch-family instance.
#[derive(Clone, Debug)]
pub struct EpochConfig {
    /// Number of nodes.
    pub n: usize,
    /// Number of epochs `R` (the paper sets `R = ω(log κ)`).
    pub epochs: u64,
    /// Ample-ack threshold (`2n/3` full participation, `2λ/3` subsampled).
    pub quorum: usize,
    /// Authentication regime.
    pub auth: Auth,
    /// Leader election mechanism.
    pub leader: LeaderMode,
}

impl EpochConfig {
    /// §3.1 warmup: signed, full participation, round-robin leaders.
    pub fn warmup_third(n: usize, epochs: u64, keychain: Arc<Keychain>) -> EpochConfig {
        EpochConfig {
            n,
            epochs,
            quorum: (2 * n).div_ceil(3),
            auth: Auth::Signed { keychain },
            leader: LeaderMode::RoundRobin,
        }
    }

    /// §3.2: subquadratic BA with bit-specific eligibility.
    pub fn subq_third(n: usize, epochs: u64, elig: Arc<dyn Eligibility>) -> EpochConfig {
        let lambda = elig.lambda();
        EpochConfig {
            n,
            epochs,
            quorum: (2.0 * lambda / 3.0).ceil() as usize,
            auth: Auth::Mined { elig, bit_specific: true, keychain: None },
            leader: LeaderMode::Mined,
        }
    }

    /// The shared-committee ablation (insecure; §3.3 Remark).
    pub fn subq_shared(
        n: usize,
        epochs: u64,
        elig: Arc<dyn Eligibility>,
        keychain: Arc<Keychain>,
    ) -> EpochConfig {
        let lambda = elig.lambda();
        EpochConfig {
            n,
            epochs,
            quorum: (2.0 * lambda / 3.0).ceil() as usize,
            auth: Auth::Mined { elig, bit_specific: false, keychain: Some(keychain) },
            leader: LeaderMode::Mined,
        }
    }

    /// The Chen–Micali strawman: shared committee + forward-secure keys.
    /// Secure iff `erasure` is on.
    pub fn chen_micali(
        n: usize,
        epochs: u64,
        elig: Arc<dyn Eligibility>,
        fs: Arc<FsService>,
        erasure: bool,
    ) -> EpochConfig {
        let lambda = elig.lambda();
        EpochConfig {
            n,
            epochs,
            quorum: (2.0 * lambda / 3.0).ceil() as usize,
            auth: Auth::FsMined { elig, fs, erasure },
            leader: LeaderMode::Mined,
        }
    }

    /// Total synchronous rounds an instance runs: two per epoch plus the
    /// final tally/output round.
    pub fn total_rounds(&self) -> u64 {
        2 * self.epochs + 1
    }

    /// Whether this configuration can run under the sparse population
    /// engine. Requires mined leaders and plain mined authentication:
    /// round-robin leaders are id-dependent full-participation oracles, and
    /// the Chen–Micali forward-secure regime erases per-node slot keys on
    /// the shared [`FsService`] every round — a per-silent-node side effect
    /// a ghost cannot mirror. Both fall back to the dense engine.
    pub fn supports_sparse(&self) -> bool {
        self.leader == LeaderMode::Mined && matches!(self.auth, Auth::Mined { .. })
    }
}

/// One node of the epoch protocol.
pub struct EpochNode {
    cfg: EpochConfig,
    id: NodeId,
    belief: Bit,
    sticky: bool,
    last_bstar: Bit,
    coins: HmacDrbg,
    output: Option<Bit>,
    done: bool,
}

impl EpochNode {
    /// Creates a node with the given input bit and per-node seed.
    pub fn new(cfg: EpochConfig, id: NodeId, input: Bit, seed: u64) -> EpochNode {
        EpochNode {
            cfg,
            id,
            belief: input,
            sticky: true, // footnote 4: the sticky bit starts at 1 so the
            // first epoch acks the input — this is what makes validity work.
            last_bstar: input,
            coins: HmacDrbg::new(&seed.to_be_bytes(), b"epoch-leader-coins"),
            output: None,
            done: false,
        }
    }

    /// Batch-verifies the claims the upcoming per-message pass will
    /// actually check — `kind` messages for `expect_epoch`, honoring the
    /// round-robin leader rule for proposals — in one combined
    /// multi-exponentiation (real-crypto regimes). The per-message checks
    /// then hit the statement caches. Filtering mirrors the per-message
    /// guards exactly: claims those guards skip for free (wrong epoch,
    /// non-leader proposals) must not be able to sink the batch.
    fn batch_verify_inbox(&self, inbox: &[Incoming<EpochMsg>], kind: MsgKind, expect_epoch: u64) {
        if !self.cfg.auth.supports_batch() {
            return;
        }
        let claims: Vec<(NodeId, MineTag, &Evidence)> = inbox
            .iter()
            .filter_map(|m| match &*m.msg {
                EpochMsg::Propose { epoch, bit, ev }
                    if kind == MsgKind::Propose && *epoch == expect_epoch =>
                {
                    if self.cfg.leader == LeaderMode::RoundRobin
                        && m.from != NodeId((epoch % self.cfg.n as u64) as usize)
                    {
                        return None;
                    }
                    Some((m.from, MineTag::new(MsgKind::Propose, *epoch, *bit), ev))
                }
                EpochMsg::Ack { epoch, bit, ev }
                    if kind == MsgKind::Ack && *epoch == expect_epoch =>
                {
                    Some((m.from, MineTag::new(MsgKind::Ack, *epoch, *bit), ev))
                }
                _ => None,
            })
            .collect();
        let _ = self.cfg.auth.verify_batch(&claims);
    }

    /// Tally the previous epoch's acks and update `(belief, sticky)`.
    fn tally_acks(&mut self, epoch: u64, inbox: &[Incoming<EpochMsg>]) {
        self.batch_verify_inbox(inbox, MsgKind::Ack, epoch);
        let mut voters: [Vec<NodeId>; 2] = [Vec::new(), Vec::new()];
        for m in inbox {
            if let EpochMsg::Ack { epoch: e, bit, ev } = &*m.msg {
                if *e != epoch {
                    continue;
                }
                let tag = MineTag::new(MsgKind::Ack, *e, *bit);
                if !self.cfg.auth.verify(m.from, &tag, ev) {
                    continue;
                }
                let bucket = &mut voters[*bit as usize];
                if !bucket.contains(&m.from) {
                    bucket.push(m.from);
                }
            }
        }
        let ample = [voters[0].len() >= self.cfg.quorum, voters[1].len() >= self.cfg.quorum];
        match ample {
            [true, false] => {
                self.belief = false;
                self.sticky = true;
            }
            [false, true] => {
                self.belief = true;
                self.sticky = true;
            }
            [true, true] => {
                // Only reachable under attack (consistency-within-an-epoch
                // fails): keep the current belief, stickily.
                self.sticky = true;
            }
            [false, false] => self.sticky = false,
        }
    }

    /// The unique valid proposal bit for `epoch`, if any (both-bits-proposed
    /// resolves to an arbitrary-but-deterministic bit per the paper).
    fn proposal_bit(&self, epoch: u64, inbox: &[Incoming<EpochMsg>]) -> Option<Bit> {
        let mut seen = [false, false];
        for m in inbox {
            if let EpochMsg::Propose { epoch: e, bit, ev } = &*m.msg {
                if *e != epoch {
                    continue;
                }
                if self.cfg.leader == LeaderMode::RoundRobin
                    && m.from != NodeId((epoch % self.cfg.n as u64) as usize)
                {
                    continue; // only the oracle-designated leader may propose
                }
                let tag = MineTag::new(MsgKind::Propose, *e, *bit);
                if self.cfg.auth.verify(m.from, &tag, ev) {
                    seen[*bit as usize] = true;
                }
            }
        }
        match seen {
            [false, false] => None,
            [true, false] => Some(false),
            [false, true] => Some(true),
            // "if proposals for both b = 0 and b = 1 have been observed,
            // choose an arbitrary bit" — we fix bit 0.
            [true, true] => Some(false),
        }
    }

    fn try_propose(&mut self, epoch: u64, out: &mut Outbox<EpochMsg>) {
        let is_candidate = match self.cfg.leader {
            LeaderMode::RoundRobin => self.id == NodeId((epoch % self.cfg.n as u64) as usize),
            LeaderMode::Mined => true, // everyone attempts; F_mine decides
        };
        if !is_candidate {
            return;
        }
        let coin = self.coins.next_byte() & 1 == 1;
        let tag = MineTag::new(MsgKind::Propose, epoch, coin);
        if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
            out.multicast(EpochMsg::Propose { epoch, bit: coin, ev });
        }
    }
}

impl Protocol<EpochMsg> for EpochNode {
    fn step(&mut self, round: Round, inbox: &[Incoming<EpochMsg>], out: &mut Outbox<EpochMsg>) {
        let r = round.0;
        if r >= self.cfg.total_rounds() {
            return;
        }
        if r == 2 * self.cfg.epochs {
            // Final round: tally the last epoch's acks (keeps the state
            // machine uniform), then output the last-acked bit.
            self.tally_acks(self.cfg.epochs - 1, inbox);
            self.output = Some(self.last_bstar);
            self.done = true;
            return;
        }
        let epoch = r / 2;
        if r.is_multiple_of(2) {
            // Propose round: first tally the previous epoch's acks.
            if epoch > 0 {
                self.tally_acks(epoch - 1, inbox);
            }
            self.try_propose(epoch, out);
        } else {
            // Ack round: adopt the leader's proposal unless sticky. The
            // inbox carries this epoch's proposals; batch-verify them first.
            self.batch_verify_inbox(inbox, MsgKind::Propose, epoch);
            let proposal = self.proposal_bit(epoch, inbox);
            let bstar = match (self.sticky, proposal) {
                (true, _) | (false, None) => self.belief,
                (false, Some(b)) => b,
            };
            self.last_bstar = bstar;
            let tag = MineTag::new(MsgKind::Ack, epoch, bstar);
            if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                out.multicast(EpochMsg::Ack { epoch, bit: bstar, ev });
            }
            // Memory-erasure model: destroy this epoch's slot key even if we
            // did not speak, before the (rushing) adversary can corrupt us.
            self.cfg.auth.end_of_round(self.id, epoch);
        }
    }

    fn output(&self) -> Option<Bit> {
        self.output
    }

    fn halted(&self) -> bool {
        self.done
    }
}

/// Predicts each round's possible speakers for the sparse population
/// engine. The epoch schedule is rigid — proposals on even rounds, acks on
/// odd rounds, nothing in the final tally round — so each round probes
/// exactly the two bit-committees of that round's tag kind via the
/// eligibility backend's side-effect-free `would_mine` (sharedized when the
/// regime uses a shared committee, mirroring `attest`). Committees are
/// memoized per probed tag.
struct EpochOracle {
    n: usize,
    epochs: u64,
    bit_specific: bool,
    elig: Arc<dyn Eligibility>,
    memo: HashMap<MineTag, Vec<NodeId>>,
}

impl EpochOracle {
    fn committee(&mut self, tag: MineTag) -> &[NodeId] {
        let probe = if self.bit_specific { tag } else { tag.sharedized() };
        let (n, elig) = (self.n, &self.elig);
        self.memo
            .entry(probe)
            .or_insert_with(|| (0..n).map(NodeId).filter(|&i| elig.would_mine(i, &probe)).collect())
    }
}

impl ActivationOracle for EpochOracle {
    fn candidates(&mut self, round: Round) -> Vec<NodeId> {
        let r = round.0;
        if r >= 2 * self.epochs {
            return Vec::new(); // final tally round: nobody speaks
        }
        let epoch = r / 2;
        let kind = if r.is_multiple_of(2) { MsgKind::Propose } else { MsgKind::Ack };
        let mut out = Vec::new();
        for bit in [false, true] {
            out.extend_from_slice(self.committee(MineTag::new(kind, epoch, bit)));
        }
        out
    }
}

/// Builds the sparse-engine spec for this configuration, or `None` when it
/// cannot run sparsely (see [`EpochConfig::supports_sparse`]) so callers
/// fall back to the dense engine.
fn sparse_spec(cfg: &EpochConfig, inputs: &[Bit], sim: &SimConfig) -> Option<SparseSpec<EpochMsg>> {
    if !cfg.supports_sparse() {
        return None;
    }
    let Auth::Mined { elig, bit_specific, keychain } = &cfg.auth else {
        return None;
    };
    // Ghosts can never win a committee seat (NeverMine) but verify exactly
    // like real nodes, and carry the out-of-range id `n` so any accidental
    // send is detectable. Their seed only feeds the leader-coin DRBG, whose
    // draws a never-eligible candidate never exposes.
    let mut ghost_cfg = cfg.clone();
    ghost_cfg.auth = Auth::Mined {
        elig: Arc::new(NeverMine(Arc::clone(elig))),
        bit_specific: *bit_specific,
        keychain: keychain.clone(),
    };
    let n = cfg.n;
    let ghost_seed = sim.seed ^ 0x6057_1A5E_1D0C_0DE1;
    let ghost = |bit: Bit| -> BoxedProtocol<EpochMsg> {
        Box::new(EpochNode::new(ghost_cfg.clone(), NodeId(n), bit, ghost_seed ^ bit as u64))
    };
    let oracle = EpochOracle {
        n,
        epochs: cfg.epochs,
        bit_specific: *bit_specific,
        elig: Arc::clone(elig),
        memo: HashMap::new(),
    };
    let cfg_for_factory = cfg.clone();
    let inputs_for_factory = inputs.to_vec();
    Some(SparseSpec {
        factory: Box::new(move |id, seed| {
            Box::new(EpochNode::new(
                cfg_for_factory.clone(),
                id,
                inputs_for_factory[id.index()],
                seed,
            ))
        }),
        ghosts: [ghost(false), ghost(true)],
        oracle: Box::new(oracle),
    })
}

/// Runs one execution of an epoch-family protocol and evaluates the verdict
/// for the agreement problem. Honors [`SimConfig::population`]:
/// sparse-capable configurations run under the sparse engine
/// (byte-identical report); others silently use the dense engine.
pub fn run<A: Adversary<EpochMsg> + Send>(
    cfg: &EpochConfig,
    sim: &SimConfig,
    inputs: Vec<Bit>,
    adversary: A,
) -> (RunReport, Verdict) {
    let mut sim_cfg = sim.clone();
    sim_cfg.max_rounds = sim_cfg.max_rounds.max(cfg.total_rounds() + 1);
    let spec = match sim_cfg.population {
        // The sparse engine composes only with the lockstep transport (the
        // retained multicast history assumes synchronous delivery); other
        // transports fall back to dense.
        PopulationMode::Sparse if sim_cfg.transport == TransportSpec::Lockstep => {
            sparse_spec(cfg, &inputs, &sim_cfg)
        }
        _ => None,
    };
    let report = match spec {
        Some(spec) => run_sparse(&sim_cfg, inputs, adversary, spec),
        None => {
            let cfg_for_factory = cfg.clone();
            let inputs_for_factory = inputs.clone();
            ba_net::execute(&sim_cfg, inputs, adversary, move |id, seed| {
                Box::new(EpochNode::new(
                    cfg_for_factory.clone(),
                    id,
                    inputs_for_factory[id.index()],
                    seed,
                ))
            })
        }
    };
    let verdict = evaluate(Problem::Agreement, &report);
    (report, verdict)
}

/// Packages one epoch-family execution as a thread-dispatchable
/// [`Runnable`] (the uniform constructor sweep harnesses dispatch over).
pub fn runnable<A: Adversary<EpochMsg> + Send + 'static>(
    cfg: &EpochConfig,
    inputs: Vec<Bit>,
    adversary: A,
) -> Runnable {
    let cfg = cfg.clone();
    Runnable::new(move |sim| run(&cfg, sim, inputs, adversary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_fmine::{IdealMine, MineParams, SigMode};
    use ba_sim::{CorruptionModel, Passive};

    fn warmup_cfg(n: usize, epochs: u64) -> EpochConfig {
        EpochConfig::warmup_third(n, epochs, Arc::new(Keychain::from_seed(1, n, SigMode::Ideal)))
    }

    fn subq_cfg(n: usize, lambda: f64, epochs: u64, seed: u64) -> EpochConfig {
        EpochConfig::subq_third(
            n,
            epochs,
            Arc::new(IdealMine::new(seed, MineParams::new(n, lambda))),
        )
    }

    #[test]
    fn tally_rejects_stale_and_cross_epoch_acks() {
        // PR 9's chaos suite showed `subq_third` forking under 20% message
        // reordering while never slowing down. This pins the stale-vote
        // audit's conclusion: ack accumulation is *not* the culprit —
        // cross-epoch acks, evidence replayed from another epoch's tag,
        // and duplicate voters are all rejected, so the fork is a
        // synchrony-boundary artifact of the fixed 2R pacing (pinned as a
        // golden in `crates/bench/tests/faults.rs`), not a hygiene bug.
        let cfg = warmup_cfg(4, 4);
        let quorum = cfg.quorum;
        let mk_ack = |from: usize, claimed_epoch: u64, attested_epoch: u64, bit: Bit| {
            let tag = MineTag::new(MsgKind::Ack, attested_epoch, bit);
            let ev = cfg.auth.attest(NodeId(from), &tag).expect("signed regime always attests");
            Incoming::new(NodeId(from), EpochMsg::Ack { epoch: claimed_epoch, bit, ev })
        };
        let mut node = EpochNode::new(cfg.clone(), NodeId(0), false, 0);
        // A full quorum of acks for bit 1, all claiming epoch 2 while the
        // node tallies epoch 1: cross-epoch, must not count.
        let cross: Vec<_> = (0..4).map(|i| mk_ack(i, 2, 2, true)).collect();
        node.tally_acks(1, &cross);
        assert!(!node.sticky && !node.belief, "cross-epoch acks must not reach quorum");
        // Evidence attested under epoch 0's tag replayed with an epoch-1
        // claim: the signature check must fail.
        let stale: Vec<_> = (0..4).map(|i| mk_ack(i, 1, 0, true)).collect();
        node.tally_acks(1, &stale);
        assert!(!node.sticky && !node.belief, "replayed evidence must not reach quorum");
        // One sender repeated four times: dedup keeps it a single vote.
        let dup: Vec<_> = (0..4).map(|_| mk_ack(3, 1, 1, true)).collect();
        node.tally_acks(1, &dup);
        assert!(!node.sticky, "duplicate voters must not reach quorum");
        // The genuine quorum for the same epoch does flip the belief.
        let good: Vec<_> = (0..quorum).map(|i| mk_ack(i, 1, 1, true)).collect();
        node.tally_acks(1, &good);
        assert!(node.sticky && node.belief, "a genuine quorum must be counted");
    }

    #[test]
    fn warmup_validity_unanimous_inputs() {
        for bit in [false, true] {
            let cfg = warmup_cfg(7, 6);
            let sim = SimConfig::new(7, 0, CorruptionModel::Static, 3);
            let (report, verdict) = run(&cfg, &sim, vec![bit; 7], Passive);
            assert!(verdict.all_ok(), "bit={bit}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(bit)));
        }
    }

    #[test]
    fn warmup_consistency_mixed_inputs() {
        for seed in 0..10 {
            let cfg = warmup_cfg(7, 10);
            let sim = SimConfig::new(7, 0, CorruptionModel::Static, seed);
            let inputs = vec![true, false, true, false, true, false, true];
            let (_report, verdict) = run(&cfg, &sim, inputs, Passive);
            assert!(verdict.consistent && verdict.terminated, "seed={seed}: {verdict:?}");
        }
    }

    #[test]
    fn warmup_round_count_is_fixed() {
        let cfg = warmup_cfg(4, 5);
        let sim = SimConfig::new(4, 0, CorruptionModel::Static, 1);
        let (report, _) = run(&cfg, &sim, vec![true; 4], Passive);
        assert_eq!(report.rounds_used, cfg.total_rounds());
    }

    #[test]
    fn subq_validity_unanimous_inputs() {
        for seed in 0..5 {
            let cfg = subq_cfg(60, 20.0, 8, seed);
            let sim = SimConfig::new(60, 0, CorruptionModel::Static, seed);
            let (report, verdict) = run(&cfg, &sim, vec![true; 60], Passive);
            assert!(verdict.all_ok(), "seed={seed}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(true)), "seed={seed}");
        }
    }

    #[test]
    fn subq_consistency_mixed_inputs() {
        let mut ok = 0;
        for seed in 0..10 {
            let cfg = subq_cfg(60, 20.0, 16, seed);
            let sim = SimConfig::new(60, 0, CorruptionModel::Static, seed);
            let inputs: Vec<Bit> = (0..60).map(|i| i % 2 == 0).collect();
            let (_report, verdict) = run(&cfg, &sim, inputs, Passive);
            if verdict.consistent && verdict.terminated {
                ok += 1;
            }
        }
        // With R=16 epochs the failure probability is tiny; allow 1 unlucky
        // seed out of 10.
        assert!(ok >= 9, "only {ok}/10 mixed-input runs were consistent");
    }

    #[test]
    fn subq_multicast_complexity_sublinear() {
        // The headline property: honest multicasts per run do not scale with
        // n (only with lambda and R).
        let (small_n, large_n) = (64usize, 512usize);
        let lambda = 16.0;
        let epochs = 6;
        let count = |n: usize| -> u64 {
            let cfg = subq_cfg(n, lambda, epochs, 7);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, 7);
            let (report, _) = run(&cfg, &sim, vec![true; n], Passive);
            report.metrics.honest_multicasts
        };
        let small = count(small_n);
        let large = count(large_n);
        // Expected multicasts ~ R * (lambda + 1/2) in both cases.
        let ratio = large as f64 / small as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "multicasts should be n-independent: {small} vs {large}"
        );
        // Contrast: the warmup protocol multicasts ~n per epoch.
        let warm = {
            let cfg = warmup_cfg(small_n, epochs);
            let sim = SimConfig::new(small_n, 0, CorruptionModel::Static, 7);
            let (report, _) = run(&cfg, &sim, vec![true; small_n], Passive);
            report.metrics.honest_multicasts
        };
        assert!(warm as f64 > 3.0 * large as f64, "warmup {warm} vs subq {large}");
    }

    #[test]
    fn shared_mode_honest_runs_still_work() {
        // Without an adversary the shared-committee variant behaves fine —
        // the flaw only shows under adaptive corruption (experiment E8).
        let n = 60;
        let elig = Arc::new(IdealMine::new(5, MineParams::new(n, 20.0)));
        let kc = Arc::new(Keychain::from_seed(5, n, SigMode::Ideal));
        let cfg = EpochConfig::subq_shared(n, 8, elig, kc);
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, 5);
        let (report, verdict) = run(&cfg, &sim, vec![false; n], Passive);
        assert!(verdict.all_ok(), "{verdict:?}");
        assert!(report.outputs.iter().all(|o| *o == Some(false)));
    }

    #[test]
    fn chen_micali_honest_runs_work_with_and_without_erasure() {
        for erasure in [true, false] {
            let n = 40;
            let epochs = 6;
            let elig = Arc::new(IdealMine::new(9, MineParams::new(n, 16.0)));
            let fs = Arc::new(FsService::from_seed(9, n, epochs as usize + 1));
            let cfg = EpochConfig::chen_micali(n, epochs, elig, fs, erasure);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, 9);
            let (report, verdict) = run(&cfg, &sim, vec![true; n], Passive);
            assert!(verdict.all_ok(), "erasure={erasure}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(true)));
        }
    }

    #[test]
    fn sparse_subq_byte_identical_to_dense() {
        for seed in 0..4 {
            let cfg = subq_cfg(72, 18.0, 8, seed);
            let inputs: Vec<Bit> = (0..72).map(|i| i % 2 == 0).collect();
            let dense_sim = SimConfig::new(72, 0, CorruptionModel::Static, seed);
            let sparse_sim = dense_sim.clone().with_population(PopulationMode::Sparse);
            let (dense, _) = run(&cfg, &dense_sim, inputs.clone(), Passive);
            let (sparse, _) = run(&cfg, &sparse_sim, inputs.clone(), Passive);
            assert_eq!(sparse, dense, "seed={seed}");
        }
    }

    #[test]
    fn sparse_materializes_committees_not_population() {
        // lambda << n: ack committees (p = 12/400) over 5 epochs union to a
        // small fraction of the population.
        let n = 400;
        let cfg = subq_cfg(n, 12.0, 5, 3);
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, 3)
            .with_population(PopulationMode::Sparse);
        let (report, verdict) = run(&cfg, &sim, vec![true; n], Passive);
        assert!(verdict.all_ok(), "{verdict:?}");
        assert!(
            report.metrics.peak_live_nodes < (n / 2) as u64,
            "peak_live={} should be far below n={n}",
            report.metrics.peak_live_nodes
        );
    }

    #[test]
    fn sparse_shared_committee_byte_identical_to_dense() {
        let n = 60;
        let elig = Arc::new(IdealMine::new(8, MineParams::new(n, 20.0)));
        let kc = Arc::new(Keychain::from_seed(8, n, SigMode::Ideal));
        let cfg = EpochConfig::subq_shared(n, 8, elig, kc);
        assert!(cfg.supports_sparse());
        let inputs: Vec<Bit> = (0..n).map(|i| i % 5 == 0).collect();
        let dense_sim = SimConfig::new(n, 0, CorruptionModel::Static, 8);
        let sparse_sim = dense_sim.clone().with_population(PopulationMode::Sparse);
        let (dense, _) = run(&cfg, &dense_sim, inputs.clone(), Passive);
        let (sparse, _) = run(&cfg, &sparse_sim, inputs, Passive);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn sparse_falls_back_for_round_robin_and_fs_regimes() {
        // Round-robin leaders: id-dependent, full participation.
        let cfg = warmup_cfg(7, 4);
        assert!(!cfg.supports_sparse());
        let dense_sim = SimConfig::new(7, 0, CorruptionModel::Static, 2);
        let sparse_sim = dense_sim.clone().with_population(PopulationMode::Sparse);
        let (dense, _) = run(&cfg, &dense_sim, vec![true; 7], Passive);
        let (fallback, _) = run(&cfg, &sparse_sim, vec![true; 7], Passive);
        assert_eq!(fallback, dense);
        assert_eq!(fallback.metrics.peak_live_nodes, 7);
        // Chen–Micali: per-node key erasure on the shared FsService.
        let n = 24;
        let elig = Arc::new(IdealMine::new(9, MineParams::new(n, 12.0)));
        let fs = Arc::new(FsService::from_seed(9, n, 7));
        let cm = EpochConfig::chen_micali(n, 6, elig, fs, true);
        assert!(!cm.supports_sparse());
    }

    #[test]
    fn message_sizes_reflect_evidence() {
        let kc = Arc::new(Keychain::from_seed(1, 4, SigMode::Ideal));
        let signed =
            EpochMsg::Ack { epoch: 0, bit: true, ev: Evidence::Sig(kc.sign(NodeId(0), b"x")) };
        let elig = IdealMine::new(1, MineParams::new(4, 4.0));
        let ticket = elig.mine(NodeId(0), &MineTag::new(MsgKind::Ack, 0, true)).unwrap();
        let mined = EpochMsg::Ack { epoch: 0, bit: true, ev: Evidence::Ticket(ticket) };
        assert!(signed.size_bits() < mined.size_bits());
    }
}
