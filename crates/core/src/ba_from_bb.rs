//! The other direction of the §1.1 equivalence: Byzantine Agreement from
//! `n` parallel Byzantine Broadcasts.
//!
//! Every node Dolev–Strong-broadcasts its input; after all broadcasts
//! complete, everyone holds the same vector of `n` values (consistency of
//! each BB instance) and outputs its majority bit. This direction costs a
//! polynomial blow-up — `n` quadratic broadcasts — which is exactly why the
//! paper states upper bounds for BA and lower bounds for BB: the *cheap*
//! direction (BB from BA, [`crate::broadcast`]) preserves communication
//! efficiency, this one does not. Including it makes the equivalence
//! executable and its cost measurable (experiment E10 context).

use std::sync::Arc;

use ba_fmine::Keychain;
use ba_sim::{
    evaluate, Adversary, Bit, Incoming, Message, NodeId, Outbox, Problem, Protocol, Round,
    RunReport, SimConfig, Verdict,
};

use crate::dolev_strong::{DsConfig, DsMsg, DsNode};
use crate::runnable::Runnable;

/// A message of one of the `n` parallel broadcast instances, tagged by the
/// instance's designated sender.
#[derive(Clone, Debug, PartialEq)]
pub struct TaggedDsMsg {
    /// The instance (its designated sender).
    pub instance: NodeId,
    /// The inner Dolev–Strong message.
    pub inner: DsMsg,
}

impl Message for TaggedDsMsg {
    fn size_bits(&self) -> usize {
        32 + self.inner.size_bits()
    }
}

/// BA-from-n-parallel-BB node: runs one [`DsNode`] per instance.
pub struct ParallelBbNode {
    instances: Vec<DsNode>,
    n: usize,
    output: Option<Bit>,
    done: bool,
}

impl ParallelBbNode {
    /// Creates the node: instance `j` broadcasts node `j`'s input.
    pub fn new(
        n: usize,
        f: usize,
        id: NodeId,
        input: Bit,
        keychain: Arc<Keychain>,
    ) -> ParallelBbNode {
        let instances = (0..n)
            .map(|j| {
                let cfg = DsConfig { n, f, sender: NodeId(j), keychain: keychain.clone() };
                // Only the instance where we are the sender uses our input.
                DsNode::new(cfg, id, input)
            })
            .collect();
        ParallelBbNode { instances, n, output: None, done: false }
    }
}

impl Protocol<TaggedDsMsg> for ParallelBbNode {
    fn step(
        &mut self,
        round: Round,
        inbox: &[Incoming<TaggedDsMsg>],
        out: &mut Outbox<TaggedDsMsg>,
    ) {
        if self.done {
            return;
        }
        // Demultiplex the inbox per instance.
        let mut per_instance: Vec<Vec<Incoming<DsMsg>>> = vec![Vec::new(); self.n];
        for m in inbox {
            let j = m.msg.instance.index();
            if j < self.n {
                per_instance[j].push(Incoming::new(m.from, m.msg.inner.clone()));
            }
        }
        // Step every instance, re-tagging its sends.
        for (j, node) in self.instances.iter_mut().enumerate() {
            let mut inner_out = Outbox::new();
            node.step(round, &per_instance[j], &mut inner_out);
            for (to, msg) in inner_out.take() {
                let tagged = TaggedDsMsg { instance: NodeId(j), inner: msg };
                match to {
                    ba_sim::Recipient::All => out.multicast(tagged),
                    ba_sim::Recipient::One(t) => out.unicast(t, tagged),
                }
            }
        }
        // Decide once every instance decided.
        if self.output.is_none() && self.instances.iter().all(|i| i.output().is_some()) {
            let ones = self.instances.iter().filter(|i| i.output() == Some(true)).count();
            self.output = Some(ones * 2 > self.n);
            self.done = true;
        }
    }

    fn output(&self) -> Option<Bit> {
        self.output
    }

    fn halted(&self) -> bool {
        self.done
    }
}

/// Runs the BA-from-parallel-BB reduction and evaluates the agreement
/// verdict.
pub fn run<A: Adversary<TaggedDsMsg> + Send>(
    n: usize,
    f: usize,
    keychain: Arc<Keychain>,
    sim: &SimConfig,
    inputs: Vec<Bit>,
    adversary: A,
) -> (RunReport, Verdict) {
    let mut sim_cfg = sim.clone();
    sim_cfg.max_rounds = sim_cfg.max_rounds.max(f as u64 + 4);
    let inputs_for_factory = inputs.clone();
    let report = ba_net::execute(&sim_cfg, inputs, adversary, move |id, _seed| {
        Box::new(ParallelBbNode::new(n, f, id, inputs_for_factory[id.index()], keychain.clone()))
    });
    let verdict = evaluate(Problem::Agreement, &report);
    (report, verdict)
}

/// Packages one BA-from-parallel-BB execution as a thread-dispatchable
/// [`Runnable`] (the uniform constructor sweep harnesses dispatch over).
pub fn runnable<A: Adversary<TaggedDsMsg> + Send + 'static>(
    n: usize,
    f: usize,
    keychain: Arc<Keychain>,
    inputs: Vec<Bit>,
    adversary: A,
) -> Runnable {
    Runnable::new(move |sim| run(n, f, keychain, sim, inputs, adversary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_fmine::SigMode;
    use ba_sim::{CorruptionModel, Passive};

    #[test]
    fn unanimous_inputs_decide_that_bit() {
        for bit in [false, true] {
            let n = 7;
            let kc = Arc::new(Keychain::from_seed(1, n, SigMode::Ideal));
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, 1);
            let (report, verdict) = run(n, 2, kc, &sim, vec![bit; n], Passive);
            assert!(verdict.all_ok(), "bit={bit}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(bit)));
        }
    }

    #[test]
    fn majority_of_mixed_inputs_wins() {
        let n = 7;
        let kc = Arc::new(Keychain::from_seed(2, n, SigMode::Ideal));
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, 2);
        // 5 ones, 2 zeros -> majority true.
        let inputs = vec![true, true, true, true, true, false, false];
        let (report, verdict) = run(n, 2, kc, &sim, inputs, Passive);
        assert!(verdict.all_ok(), "{verdict:?}");
        assert!(report.outputs.iter().all(|o| *o == Some(true)));
    }

    #[test]
    fn communication_blowup_is_quadratic_plus() {
        // The reduction's cost: n broadcasts of ~n multicasts each.
        let n = 9;
        let kc = Arc::new(Keychain::from_seed(3, n, SigMode::Ideal));
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, 3);
        let (report, _) = run(n, 3, kc, &sim, vec![true; n], Passive);
        assert!(
            report.metrics.honest_multicasts >= (n * n) as u64 / 2,
            "expected ~n^2 multicasts, got {}",
            report.metrics.honest_multicasts
        );
    }

    #[test]
    fn consistent_under_crash_faults() {
        use ba_sim::{AdvCtx, Recipient};
        struct CrashTwo;
        impl Adversary<TaggedDsMsg> for CrashTwo {
            fn setup(&mut self, ctx: &mut AdvCtx<'_, TaggedDsMsg>) {
                ctx.corrupt(NodeId(5)).unwrap();
                ctx.corrupt(NodeId(6)).unwrap();
            }
            fn corrupt_outbox(
                &mut self,
                _node: NodeId,
                _planned: Vec<(Recipient, TaggedDsMsg)>,
                _round: Round,
            ) -> Vec<(Recipient, TaggedDsMsg)> {
                Vec::new()
            }
        }
        let n = 7;
        let kc = Arc::new(Keychain::from_seed(4, n, SigMode::Ideal));
        let sim = SimConfig::new(n, 2, CorruptionModel::Static, 4);
        let inputs = vec![true, true, true, false, false, true, true];
        let (report, verdict) = run(n, 2, kc, &sim, inputs, CrashTwo);
        assert!(verdict.consistent && verdict.terminated, "{verdict:?}");
        // Crashed senders' instances deliver the default 0 to everyone
        // consistently; honest instances deliver their inputs.
        let honest: Vec<_> = report.forever_honest().collect();
        let first = report.outputs[honest[0].index()];
        assert!(honest.iter().all(|i| report.outputs[i.index()] == first));
    }
}
