//! Momose–Ren's optimal-communication authenticated BA (arXiv 2007.13175) —
//! the competitor baseline at the *other* end of the resilience/communication
//! trade-off: `t < n/2` with **O(n²) words** total, matching the
//! Dolev–Reischuk lower bound for authenticated agreement.
//!
//! ## Reproduced structure
//!
//! The paper's protocol is a rotating-leader view sequence in which every
//! view costs O(n) words — all heavy traffic is relayed through the view's
//! leader, and quorums travel as *one* (threshold/aggregate) certificate
//! instead of a vote transcript. Over the worst-case O(t) views this totals
//! O(n²) words. This module reproduces exactly that skeleton on the repo's
//! seams: [`Auth::Signed`] evidence, [`crate::cert`] quorum certificates in
//! either [`CertEncoding`] (the aggregate encoding plays the paper's
//! threshold-signature role), and the decide-relay termination gadget shared
//! with the iteration family.
//!
//! ## Round schedule
//!
//! * **Round 0 — Input**: every node multicasts its signed input bit. The
//!   resulting support counts gate certificate-less proposals (a bit is
//!   *admissible* once `t + 1` distinct nodes input it), which is what makes
//!   unanimity-validity hold against corrupt early leaders. One O(n²)-word
//!   round, inside the claimed budget.
//! * **View `v` (5 rounds, leader `L_v = (v − 1) mod n`)**:
//!   1. *Status* — every node unicasts its highest certificate to `L_v`.
//!   2. *Propose* — `L_v` multicasts the highest-certificate bit (or, with
//!      no certificate anywhere, the better-supported admissible bit).
//!   3. *Vote* — a node unicasts a signed vote to `L_v` iff the proposal's
//!      certificate rank is at least its own highest rank (and, for rank-0
//!      proposals, the bit is admissible).
//!   4. *Lock* — on `n − t` votes `L_v` multicasts the new view-`v`
//!      certificate; receivers adopt it as their lock.
//!   5. *CommitVote* — lock adopters unicast a signed commit to `L_v`; on
//!      `n − t` commits the leader multicasts a `Decide` carrying the commit
//!      quorum. Receivers decide, relay the quorum once, and halt.
//!
//! Quorum intersection (`2(n − t) − n ≥ 1` honest node at `t < n/2`) plus
//! the lock rule carries a committed bit into every later view's proposals.
//! Leader *equivocation* inside a view is not attacked by the gauntlet's
//! family-agnostic roster (honest lockstep multicasts are atomic); the
//! paper's equivocation-evidence sub-protocol is out of scope here and
//! documented as such in `docs/PAPER_MAP.md`.

use std::collections::HashMap;
use std::sync::Arc;

use ba_fmine::{Keychain, MineTag, MsgKind};
use ba_sim::{
    evaluate, Adversary, Bit, Incoming, Message, NodeId, Outbox, Problem, Protocol, Round,
    RunReport, SimConfig, Verdict,
};

use crate::auth::{Auth, Evidence};
use crate::cert::{
    AggregateQuorum, CertBody, CertEncoding, Certificate, CommitQuorum, CommitRef, VoteRef,
};
use crate::runnable::Runnable;

/// Messages of the Momose–Ren view family.
#[derive(Clone, Debug, PartialEq)]
pub enum MrMsg {
    /// Round-0 signed input bit (admissibility support).
    Input {
        /// The sender's input.
        bit: Bit,
        /// Evidence for `(Status, 0, bit)`.
        ev: Evidence,
    },
    /// `(Status, v)` — the sender's highest certificate, unicast to `L_v`.
    Status {
        /// View.
        view: u64,
        /// Highest certificate known to the sender (`None` = rank 0).
        cert: Option<Certificate>,
        /// Evidence for `(Status, v, bit)` (⊥ tag when no certificate).
        ev: Evidence,
    },
    /// `(Propose, v, b)` — the leader's proposal with its justifying
    /// certificate attached.
    Propose {
        /// View.
        view: u64,
        /// Proposed bit.
        bit: Bit,
        /// The certificate justifying `bit` (`None` = rank-0 proposal,
        /// justified by input support instead).
        cert: Option<Certificate>,
        /// Evidence for `(Propose, v, b)`.
        ev: Evidence,
    },
    /// `(Vote, v, b)` — unicast to `L_v`.
    Vote {
        /// View.
        view: u64,
        /// Voted bit.
        bit: Bit,
        /// Evidence for `(Vote, v, b)`.
        ev: Evidence,
    },
    /// `(Lock, v, b)` — the leader's freshly formed view-`v` certificate.
    Lock {
        /// View.
        view: u64,
        /// Certified bit.
        bit: Bit,
        /// The view-`v` certificate (quorum of view-`v` votes).
        cert: Certificate,
        /// Evidence for `(Ack, v, b)`.
        ev: Evidence,
    },
    /// `(Commit, v, b)` — unicast to `L_v` after adopting the lock.
    CommitVote {
        /// View.
        view: u64,
        /// Committed bit.
        bit: Bit,
        /// Evidence for `(Commit, v, b)`.
        ev: Evidence,
    },
    /// `(Decide, v, b)` — a commit quorum; multicast by the leader, relayed
    /// once by every decider.
    Decide {
        /// View whose commits are attached.
        view: u64,
        /// Decided bit.
        bit: Bit,
        /// Quorum of commits for `(v, b)`, in the sender's encoding.
        commits: CommitQuorum,
        /// Evidence for `(Terminate, b)`.
        ev: Evidence,
    },
}

impl Message for MrMsg {
    fn size_bits(&self) -> usize {
        let header = 8 + 64 + 2;
        match self {
            MrMsg::Input { ev, .. } | MrMsg::Vote { ev, .. } | MrMsg::CommitVote { ev, .. } => {
                header + ev.size_bits()
            }
            MrMsg::Status { ev, .. }
            | MrMsg::Propose { ev, .. }
            | MrMsg::Lock { ev, .. }
            | MrMsg::Decide { ev, .. } => header + self.cert_bits() + ev.size_bits(),
        }
    }

    fn cert_bits(&self) -> usize {
        match self {
            MrMsg::Input { .. } | MrMsg::Vote { .. } | MrMsg::CommitVote { .. } => 0,
            MrMsg::Status { cert, .. } | MrMsg::Propose { cert, .. } => {
                cert.as_ref().map_or(0, |c| c.size_bits())
            }
            MrMsg::Lock { cert, .. } => cert.size_bits(),
            MrMsg::Decide { commits, .. } => commits.size_bits(),
        }
    }
}

/// Configuration of one Momose–Ren instance.
#[derive(Clone, Debug)]
pub struct MrConfig {
    /// Number of nodes.
    pub n: usize,
    /// Tolerated faults `t < n/2`.
    pub t: usize,
    /// Certificate/commit quorum `n − t`.
    pub quorum: usize,
    /// Authentication regime (always signed for this family).
    pub auth: Auth,
    /// View cap (liveness safety net; round-robin reaches an honest leader
    /// within `t + 1` views).
    pub views: u64,
    /// Requested certificate encoding; the aggregate encoding realizes the
    /// paper's threshold-signature compression.
    pub cert_encoding: CertEncoding,
}

impl MrConfig {
    /// The optimal-resilience instance: `t = ⌊(n − 1)/2⌋`, quorum `n − t`.
    pub fn half(n: usize, views: u64, keychain: Arc<Keychain>) -> MrConfig {
        let t = (n - 1) / 2;
        MrConfig {
            n,
            t,
            quorum: n - t,
            auth: Auth::Signed { keychain },
            views,
            cert_encoding: CertEncoding::Vector,
        }
    }

    /// Requests a certificate encoding (builder style).
    pub fn with_cert_encoding(mut self, encoding: CertEncoding) -> MrConfig {
        self.cert_encoding = encoding;
        self
    }

    /// The encoding certificates are actually built with (the signed regime
    /// always aggregates, so this mirrors the request; kept for parity with
    /// [`crate::iter::IterConfig::effective_cert_encoding`]).
    pub fn effective_cert_encoding(&self) -> CertEncoding {
        if self.auth.supports_aggregation() {
            self.cert_encoding
        } else {
            CertEncoding::Vector
        }
    }

    /// The round-robin leader of `view` (1-based).
    pub fn leader(&self, view: u64) -> NodeId {
        NodeId(((view - 1) % self.n as u64) as usize)
    }

    /// Synchronous rounds consumed by the input round plus `views` views,
    /// with slack for the decide-relay cascade.
    pub fn total_rounds(&self) -> u64 {
        1 + 5 * self.views + 2
    }
}

/// Per-view phase within the 5-round cadence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Status,
    Propose,
    Vote,
    Lock,
    CommitVote,
}

/// Maps a round to its `(view, phase)` slot (round 0 is the input round).
fn schedule(round: u64) -> Option<(u64, Phase)> {
    if round == 0 {
        return None;
    }
    let view = 1 + (round - 1) / 5;
    let phase = match (round - 1) % 5 {
        0 => Phase::Status,
        1 => Phase::Propose,
        2 => Phase::Vote,
        3 => Phase::Lock,
        _ => Phase::CommitVote,
    };
    Some((view, phase))
}

/// One node of the Momose–Ren protocol.
pub struct MrNode {
    cfg: MrConfig,
    id: NodeId,
    input: Bit,
    /// Distinct round-0 input supporters per bit (admissibility counts).
    support: [Vec<NodeId>; 2],
    /// Highest verified certificate per bit (the node's lock state).
    best: [Option<Certificate>; 2],
    /// Deduplicated valid votes per `(view, bit)` (leader role).
    votes: HashMap<(u64, bool), Vec<VoteRef>>,
    /// Deduplicated valid commit votes per `(view, bit)` (leader role).
    commits: HashMap<(u64, bool), Vec<CommitRef>>,
    /// The view's accepted proposal, if any.
    proposal: HashMap<u64, (Bit, u64)>,
    /// Views this node already voted in.
    voted: Vec<u64>,
    /// Views whose lock this node already commit-voted for.
    committed: Vec<u64>,
    /// Views whose lock certificate this leader already multicast.
    locked_out: Vec<u64>,
    /// Lock adopted from this round's inbox; drives the commit vote in the
    /// same `step` call.
    pending_commit: Option<(u64, Bit)>,
    /// Set once a commit quorum was formed or received; carries the quorum
    /// for the one-shot relay.
    decided: Option<(u64, Bit, CommitQuorum)>,
    output: Option<Bit>,
    done: bool,
}

impl MrNode {
    /// Creates a node with its input bit (the per-node seed is unused: the
    /// protocol is deterministic).
    pub fn new(cfg: MrConfig, id: NodeId, input: Bit, _seed: u64) -> MrNode {
        MrNode {
            cfg,
            id,
            input,
            support: [Vec::new(), Vec::new()],
            best: [None, None],
            votes: HashMap::new(),
            commits: HashMap::new(),
            proposal: HashMap::new(),
            voted: Vec::new(),
            committed: Vec::new(),
            locked_out: Vec::new(),
            pending_commit: None,
            decided: None,
            output: None,
            done: false,
        }
    }

    fn adopt_cert(&mut self, cert: &Certificate) {
        if !cert.verify(&self.cfg.auth, self.cfg.quorum) {
            return;
        }
        let slot = &mut self.best[cert.bit as usize];
        if Certificate::rank(slot) < cert.iter {
            *slot = Some(cert.clone());
        }
    }

    /// The node's overall highest certificate rank (its lock rank).
    fn best_rank(&self) -> u64 {
        Certificate::rank(&self.best[0]).max(Certificate::rank(&self.best[1]))
    }

    /// `(bit, cert)` of the overall highest certificate; ties prefer 1.
    fn best_bit(&self) -> Option<(Bit, Certificate)> {
        let r0 = Certificate::rank(&self.best[0]);
        let r1 = Certificate::rank(&self.best[1]);
        if r0 == 0 && r1 == 0 {
            None
        } else if r1 >= r0 {
            Some((true, self.best[1].clone().expect("rank > 0")))
        } else {
            Some((false, self.best[0].clone().expect("rank > 0")))
        }
    }

    /// Whether `t + 1` distinct nodes input `bit` (rank-0 admissibility).
    fn admissible(&self, bit: Bit) -> bool {
        self.support[bit as usize].len() > self.cfg.t
    }

    fn aggregate_quorum(
        &self,
        tag: &MineTag,
        refs: &[(NodeId, &Evidence)],
    ) -> Option<AggregateQuorum> {
        let n = self.cfg.auth.aggregation_domain()?;
        let agg = self.cfg.auth.aggregate(tag, refs)?;
        Some(AggregateQuorum { n, signers: refs.iter().map(|(id, _)| *id).collect(), agg })
    }

    fn build_certificate(&self, view: u64, bit: Bit, votes: &[VoteRef]) -> Certificate {
        if self.cfg.effective_cert_encoding() == CertEncoding::Aggregate {
            let tag = MineTag::new(MsgKind::Vote, view, bit);
            let refs: Vec<(NodeId, &Evidence)> = votes.iter().map(|v| (v.from, &v.ev)).collect();
            if let Some(q) = self.aggregate_quorum(&tag, &refs) {
                return Certificate { iter: view, bit, body: CertBody::Aggregate(q) };
            }
        }
        Certificate::from_votes(view, bit, votes.to_vec())
    }

    fn build_commit_quorum(&self, view: u64, bit: Bit, commits: &[CommitRef]) -> CommitQuorum {
        if self.cfg.effective_cert_encoding() == CertEncoding::Aggregate {
            let tag = MineTag::new(MsgKind::Commit, view, bit);
            let refs: Vec<(NodeId, &Evidence)> = commits.iter().map(|c| (c.from, &c.ev)).collect();
            if let Some(q) = self.aggregate_quorum(&tag, &refs) {
                return CommitQuorum::Aggregate(q);
            }
        }
        CommitQuorum::Vector(commits.to_vec())
    }

    fn ingest(&mut self, inbox: &[Incoming<MrMsg>]) {
        for m in inbox {
            match &*m.msg {
                MrMsg::Input { bit, ev } => {
                    let tag = MineTag::new(MsgKind::Status, 0, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    let pool = &mut self.support[*bit as usize];
                    if !pool.contains(&m.from) {
                        pool.push(m.from);
                    }
                }
                MrMsg::Status { view, cert, ev } => {
                    let tag = match cert {
                        Some(c) => MineTag::new(MsgKind::Status, *view, c.bit),
                        None => MineTag::bot(MsgKind::Status, *view),
                    };
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    if let Some(c) = cert {
                        self.adopt_cert(c);
                    }
                }
                MrMsg::Propose { view, bit, cert, ev } => {
                    let tag = MineTag::new(MsgKind::Propose, *view, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) || m.from != self.cfg.leader(*view) {
                        continue;
                    }
                    let rank = match cert {
                        Some(c) if c.bit == *bit && c.verify(&self.cfg.auth, self.cfg.quorum) => {
                            self.adopt_cert(c);
                            c.iter
                        }
                        Some(_) => continue, // malformed attachment: drop
                        None => 0,
                    };
                    self.proposal.entry(*view).or_insert((*bit, rank));
                }
                MrMsg::Vote { view, bit, ev } => {
                    let tag = MineTag::new(MsgKind::Vote, *view, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    let pool = self.votes.entry((*view, *bit)).or_default();
                    if pool.iter().all(|v| v.from != m.from) {
                        pool.push(VoteRef { from: m.from, ev: ev.clone() });
                    }
                }
                MrMsg::Lock { view, bit, cert, ev } => {
                    let tag = MineTag::new(MsgKind::Ack, *view, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev)
                        || m.from != self.cfg.leader(*view)
                        || cert.iter != *view
                        || cert.bit != *bit
                        || !cert.verify(&self.cfg.auth, self.cfg.quorum)
                    {
                        continue;
                    }
                    self.adopt_cert(cert);
                    // Commit-vote at most once per view, in the next send
                    // slot (handled in `step` via the `committed` marker).
                    if !self.committed.contains(view) {
                        self.committed.push(*view);
                        self.pending_commit = Some((*view, *bit));
                    }
                }
                MrMsg::CommitVote { view, bit, ev } => {
                    let tag = MineTag::new(MsgKind::Commit, *view, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    let pool = self.commits.entry((*view, *bit)).or_default();
                    if pool.iter().all(|c| c.from != m.from) {
                        pool.push(CommitRef { from: m.from, ev: ev.clone() });
                    }
                }
                MrMsg::Decide { view, bit, commits, ev } => {
                    let tag = MineTag::terminate(*bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev)
                        || !commits.verify(*view, *bit, &self.cfg.auth, self.cfg.quorum)
                    {
                        continue;
                    }
                    if self.decided.is_none() {
                        self.decided = Some((*view, *bit, commits.clone()));
                    }
                }
            }
        }
    }

    /// Relays the commit quorum once, outputs, and halts.
    fn finish(&mut self, out: &mut Outbox<MrMsg>) {
        let (view, bit, commits) = self.decided.clone().expect("finish requires a decision");
        let tag = MineTag::terminate(bit);
        if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
            out.multicast(MrMsg::Decide { view, bit, commits, ev });
        }
        self.output = Some(bit);
        self.done = true;
    }

    /// Leader duty that is round-position independent: form and multicast
    /// the commit quorum as soon as it exists (commit votes from view `v`
    /// arrive in view `v + 1`'s first round).
    fn try_decide_as_leader(&mut self, out: &mut Outbox<MrMsg>) {
        if self.decided.is_some() {
            return;
        }
        let quorum = self.cfg.quorum;
        let mine: Vec<(u64, bool)> = self
            .commits
            .iter()
            .filter(|((view, _), pool)| self.cfg.leader(*view) == self.id && pool.len() >= quorum)
            .map(|((view, bit), _)| (*view, *bit))
            .collect();
        if let Some((view, bit)) = mine.into_iter().min() {
            let pool = self.commits.get_mut(&(view, bit)).expect("quorum pool");
            pool.sort_by_key(|c| c.from);
            let refs = pool[..quorum].to_vec();
            let commits = self.build_commit_quorum(view, bit, &refs);
            let tag = MineTag::terminate(bit);
            if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                out.multicast(MrMsg::Decide { view, bit, commits: commits.clone(), ev });
            }
            self.decided = Some((view, bit, commits));
            self.output = Some(bit);
            self.done = true;
        }
    }
}

impl Protocol<MrMsg> for MrNode {
    fn step(&mut self, round: Round, inbox: &[Incoming<MrMsg>], out: &mut Outbox<MrMsg>) {
        if self.done {
            return;
        }
        self.pending_commit = None;
        self.ingest(inbox);
        if self.decided.is_some() {
            self.finish(out);
            return;
        }
        self.try_decide_as_leader(out);
        if self.done {
            return;
        }
        // A lock adopted from this round's inbox triggers the commit vote
        // regardless of where the round falls in the cadence (the lock
        // lands in the CommitVote slot on the undisturbed schedule).
        if let Some((view, bit)) = self.pending_commit.take() {
            let tag = MineTag::new(MsgKind::Commit, view, bit);
            if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                out.unicast(self.cfg.leader(view), MrMsg::CommitVote { view, bit, ev });
            }
        }
        let Some((view, phase)) = schedule(round.0) else {
            // Round 0: the input round.
            let tag = MineTag::new(MsgKind::Status, 0, self.input);
            if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                out.multicast(MrMsg::Input { bit: self.input, ev });
            }
            return;
        };
        if view > self.cfg.views {
            return; // out of schedule; non-termination will be reported
        }
        match phase {
            Phase::Status => {
                let (cert, tag) = match self.best_bit() {
                    Some((b, c)) => (Some(c), MineTag::new(MsgKind::Status, view, b)),
                    None => (None, MineTag::bot(MsgKind::Status, view)),
                };
                if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                    out.unicast(self.cfg.leader(view), MrMsg::Status { view, cert, ev });
                }
            }
            Phase::Propose => {
                if self.cfg.leader(view) != self.id {
                    return;
                }
                let (bit, cert) = match self.best_bit() {
                    Some((b, c)) => (b, Some(c)),
                    None => {
                        // Rank-0 proposal: the better-supported admissible
                        // bit (ties prefer 1); with no admissible bit the
                        // leader's own input (the view will not certify).
                        let s0 = self.support[0].len();
                        let s1 = self.support[1].len();
                        let bit = if self.admissible(true) && (s1 >= s0 || !self.admissible(false))
                        {
                            true
                        } else if self.admissible(false) {
                            false
                        } else {
                            self.input
                        };
                        (bit, None)
                    }
                };
                let tag = MineTag::new(MsgKind::Propose, view, bit);
                if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                    out.multicast(MrMsg::Propose { view, bit, cert, ev });
                }
            }
            Phase::Vote => {
                if self.voted.contains(&view) {
                    return;
                }
                let Some((bit, rank)) = self.proposal.get(&view).copied() else {
                    return;
                };
                // The lock rule: the proposal must carry a certificate at
                // least as high as anything this node has seen; rank-0
                // proposals additionally need input admissibility.
                if rank < self.best_rank() || (rank == 0 && !self.admissible(bit)) {
                    return;
                }
                self.voted.push(view);
                let tag = MineTag::new(MsgKind::Vote, view, bit);
                if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                    out.unicast(self.cfg.leader(view), MrMsg::Vote { view, bit, ev });
                }
            }
            Phase::Lock => {
                if self.cfg.leader(view) != self.id || self.locked_out.contains(&view) {
                    return;
                }
                let quorum = self.cfg.quorum;
                for bit in [true, false] {
                    let Some(pool) = self.votes.get_mut(&(view, bit)) else { continue };
                    if pool.len() < quorum {
                        continue;
                    }
                    pool.sort_by_key(|v| v.from);
                    let votes = pool[..quorum].to_vec();
                    let cert = self.build_certificate(view, bit, &votes);
                    let tag = MineTag::new(MsgKind::Ack, view, bit);
                    if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                        self.adopt_cert(&cert);
                        self.locked_out.push(view);
                        out.multicast(MrMsg::Lock { view, bit, cert, ev });
                    }
                    break;
                }
            }
            Phase::CommitVote => {
                // Handled by `pending_commit` above (the lock arrives in
                // this round's inbox on the undisturbed schedule).
            }
        }
    }

    fn output(&self) -> Option<Bit> {
        self.output
    }

    fn halted(&self) -> bool {
        self.done
    }
}

/// Runs one execution and evaluates the agreement verdict. The family is
/// signed full-participation, so there is no sparse-population fast path;
/// delivery goes through [`ba_net::execute`], which realizes whatever
/// [`SimConfig::transport`] names.
pub fn run<A: Adversary<MrMsg> + Send>(
    cfg: &MrConfig,
    sim: &SimConfig,
    inputs: Vec<Bit>,
    adversary: A,
) -> (RunReport, Verdict) {
    let mut sim_cfg = sim.clone();
    sim_cfg.max_rounds = sim_cfg.max_rounds.min(cfg.total_rounds() + 2);
    let cfg_for_factory = cfg.clone();
    let inputs_for_factory = inputs.clone();
    let report = ba_net::execute(&sim_cfg, inputs, adversary, move |id, seed| {
        Box::new(MrNode::new(cfg_for_factory.clone(), id, inputs_for_factory[id.index()], seed))
    });
    let verdict = evaluate(Problem::Agreement, &report);
    (report, verdict)
}

/// Packages one execution as a thread-dispatchable [`Runnable`].
pub fn runnable<A: Adversary<MrMsg> + Send + 'static>(
    cfg: &MrConfig,
    inputs: Vec<Bit>,
    adversary: A,
) -> Runnable {
    let cfg = cfg.clone();
    Runnable::new(move |sim| run(&cfg, sim, inputs, adversary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_fmine::SigMode;
    use ba_sim::{CorruptionModel, Passive};

    fn cfg(n: usize, views: u64, seed: u64) -> MrConfig {
        MrConfig::half(n, views, Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal)))
    }

    #[test]
    fn schedule_mapping() {
        assert_eq!(schedule(0), None);
        assert_eq!(schedule(1), Some((1, Phase::Status)));
        assert_eq!(schedule(2), Some((1, Phase::Propose)));
        assert_eq!(schedule(5), Some((1, Phase::CommitVote)));
        assert_eq!(schedule(6), Some((2, Phase::Status)));
    }

    #[test]
    fn leader_rotates_round_robin() {
        let c = cfg(5, 8, 1);
        assert_eq!(c.leader(1), NodeId(0));
        assert_eq!(c.leader(5), NodeId(4));
        assert_eq!(c.leader(6), NodeId(0));
        assert_eq!(c.quorum, 5 - 2);
    }

    #[test]
    fn validity_unanimous() {
        for bit in [false, true] {
            let c = cfg(9, 4, 1);
            let sim = SimConfig::new(9, 0, CorruptionModel::Static, 1);
            let (report, verdict) = run(&c, &sim, vec![bit; 9], Passive);
            assert!(verdict.all_ok(), "bit={bit}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(bit)));
            // Honest view-1 leader: decided within the first view plus the
            // decide cascade.
            assert!(report.rounds_used <= 9, "rounds={}", report.rounds_used);
        }
    }

    #[test]
    fn consistency_mixed_inputs() {
        for seed in 0..8 {
            let c = cfg(11, 4, seed);
            let sim = SimConfig::new(11, 0, CorruptionModel::Static, seed);
            let inputs: Vec<Bit> = (0..11).map(|i| i % 2 == 0).collect();
            let (report, verdict) = run(&c, &sim, inputs, Passive);
            assert!(verdict.all_ok(), "seed={seed}: {verdict:?}");
            assert!(report.rounds_used <= 9, "seed={seed} rounds={}", report.rounds_used);
        }
    }

    #[test]
    fn words_scale_quadratically() {
        // Total words (n per multicast + 1 per unicast) should grow ~n²
        // between honest runs at doubled n: the O(n²) claim's shape.
        let words = |n: usize| -> u64 {
            let c = cfg(n, 4, 2);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, 2);
            let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
            let (report, verdict) = run(&c, &sim, inputs, Passive);
            assert!(verdict.all_ok(), "n={n}");
            report.metrics.honest_multicasts * n as u64 + report.metrics.honest_unicasts
        };
        let (small, large) = (words(16), words(32));
        let ratio = large as f64 / small as f64;
        assert!(
            (2.5..8.0).contains(&ratio),
            "words should scale ~quadratically: n=16 -> {small}, n=32 -> {large}"
        );
    }

    #[test]
    fn aggregate_encoding_preserves_decisions_and_shrinks_certs() {
        let n = 24;
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, 3);
        let (vec_rep, vec_v) = run(&cfg(n, 4, 3), &sim, inputs.clone(), Passive);
        let c = cfg(n, 4, 3).with_cert_encoding(CertEncoding::Aggregate);
        let (agg_rep, agg_v) = run(&c, &sim, inputs, Passive);
        assert!(vec_v.all_ok() && agg_v.all_ok());
        assert_eq!(vec_rep.outputs, agg_rep.outputs);
        assert_eq!(vec_rep.rounds_used, agg_rep.rounds_used);
        assert!(
            agg_rep.metrics.honest_cert_bits * 2 < vec_rep.metrics.honest_cert_bits,
            "aggregate {} bits vs vector {} bits",
            agg_rep.metrics.honest_cert_bits,
            vec_rep.metrics.honest_cert_bits
        );
    }

    #[test]
    fn inadmissible_bit_cannot_be_certified() {
        // A rank-0 proposal for a bit with at most t supporters must not
        // collect votes: seed a node directly and feed it a proposal for
        // the unsupported bit.
        let c = cfg(5, 2, 7);
        let mut node = MrNode::new(c.clone(), NodeId(1), true, 0);
        // Only 2 supporters for `false` (t = 2: not admissible).
        for i in 0..2 {
            node.support[0].push(NodeId(i));
        }
        for i in 0..3 {
            node.support[1].push(NodeId(i));
        }
        node.proposal.insert(1, (false, 0));
        let mut out = Outbox::new();
        node.step(Round(3), &[], &mut out); // view 1 vote phase
        assert!(out.is_empty(), "must not vote for an inadmissible rank-0 proposal");
        // The admissible bit does get a vote.
        let mut voter = MrNode::new(c, NodeId(2), true, 0);
        for i in 0..3 {
            voter.support[1].push(NodeId(i));
        }
        voter.proposal.insert(1, (true, 0));
        let mut out = Outbox::new();
        voter.step(Round(3), &[], &mut out);
        assert_eq!(out.len(), 1);
    }
}
