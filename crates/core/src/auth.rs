//! Message authentication services: the four credential regimes the paper's
//! protocols and ablations need.
//!
//! | Regime | Eligibility | Statement binding | Used by |
//! |--------|-------------|-------------------|---------|
//! | [`Auth::Signed`] | everyone speaks | Schnorr/ideal signature | §3.1 warmup, Appendix C.1, Dolev–Strong |
//! | [`Auth::Mined`] (bit-specific) | VRF/F_mine on `(T, r, b)` | the ticket itself (the tag *is* the statement) | §3.2, Appendix C.2 — the paper's construction |
//! | [`Auth::Mined`] (shared) | VRF/F_mine on `(T, r, *)` | separate signature | the §3.3-Remark ablation (insecure) |
//! | [`Auth::FsMined`] | shared committee | forward-secure signature ± memory erasure | the Chen–Micali strawman |
//!
//! The crucial difference: with bit-specific eligibility, corrupting a node
//! that just voted for `b` yields no credential for `1 − b`. With a shared
//! committee the stolen ticket re-signs any statement — unless the
//! forward-secure key was already erased.

use std::sync::{Arc, Mutex};

use ba_crypto::forward_secure::{
    ForwardSecureKey, ForwardSecurePublicKey, ForwardSecureSignature, SignSlotError,
};
use ba_fmine::{AggSig, Eligibility, Keychain, MineTag, Sig, Ticket, SIG_BITS, TICKET_BITS};
use ba_sim::NodeId;

use crate::cert::AggregateQuorum;

/// Authentication evidence attached to a protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Evidence {
    /// Plain signature (full-participation protocols).
    Sig(Sig),
    /// Bit-specific eligibility ticket (the paper's compiled format
    /// `(m, i, ρ, π)` — the ticket binds the whole statement).
    Ticket(Ticket),
    /// Shared-committee ticket plus a signature binding the statement.
    TicketSig(Ticket, Sig),
    /// Shared-committee ticket plus a forward-secure signature.
    FsTicketSig(Ticket, Box<ForwardSecureSignature>),
}

impl Evidence {
    /// Estimated wire size in bits.
    pub fn size_bits(&self) -> usize {
        match self {
            Evidence::Sig(s) => s.size_bits(),
            Evidence::Ticket(t) => t.size_bits(),
            Evidence::TicketSig(t, s) => t.size_bits() + s.size_bits(),
            Evidence::FsTicketSig(t, f) => {
                // slot (64) + Schnorr sig + slot vk (256) + Merkle path.
                t.size_bits() + 64 + SIG_BITS + 256 + 256 * f.proof.siblings.len()
            }
        }
    }
}

/// Shared forward-secure key service for the Chen–Micali ablation.
///
/// All nodes' per-slot keys live here (think of it as each node's memory);
/// the adversary signs through the same service for corrupt nodes, so
/// **erasure is faithfully modeled**: once a slot key is erased, nobody —
/// including an adversary that corrupts the node a microsecond later — can
/// sign for that slot again.
#[derive(Debug)]
pub struct FsService {
    keys: Vec<Mutex<ForwardSecureKey>>,
    pks: Vec<ForwardSecurePublicKey>,
}

impl FsService {
    /// Trusted setup of `n` forward-secure keys covering `slots` epochs.
    pub fn from_seed(seed: u64, n: usize, slots: usize) -> FsService {
        let keys: Vec<ForwardSecureKey> = (0..n)
            .map(|i| {
                let mut s = Vec::with_capacity(32);
                s.extend_from_slice(b"fs-service/v1/");
                s.extend_from_slice(&seed.to_be_bytes());
                s.extend_from_slice(&(i as u64).to_be_bytes());
                ForwardSecureKey::generate(&s, slots)
            })
            .collect();
        let pks = keys.iter().map(|k| k.public_key()).collect();
        FsService { keys: keys.into_iter().map(Mutex::new).collect(), pks }
    }

    /// Signs `msg` for `node` at `slot`.
    ///
    /// # Errors
    ///
    /// Propagates [`SignSlotError`] (out of range / erased).
    pub fn sign(
        &self,
        node: NodeId,
        slot: usize,
        msg: &[u8],
    ) -> Result<ForwardSecureSignature, SignSlotError> {
        self.keys[node.index()].lock().expect("poisoned").sign_slot(slot, msg)
    }

    /// Erases `node`'s keys for all slots `<= slot` (the memory-erasure
    /// step).
    pub fn erase_through(&self, node: NodeId, slot: usize) {
        self.keys[node.index()].lock().expect("poisoned").erase_through(slot);
    }

    /// Whether `node` can still sign for `slot`.
    pub fn slot_available(&self, node: NodeId, slot: usize) -> bool {
        self.keys[node.index()].lock().expect("poisoned").slot_available(slot)
    }

    /// Verifies a slot signature.
    pub fn verify(
        &self,
        node: NodeId,
        slot: usize,
        msg: &[u8],
        sig: &ForwardSecureSignature,
    ) -> bool {
        node.index() < self.pks.len() && self.pks[node.index()].verify(slot, msg, sig)
    }
}

/// The authentication regime for one protocol instance.
///
/// Cheap to clone (all services behind `Arc`).
#[derive(Clone)]
pub enum Auth {
    /// Everyone may speak; statements carry signatures.
    Signed {
        /// The signing service.
        keychain: Arc<Keychain>,
    },
    /// Conditional multicast through eligibility election.
    Mined {
        /// The eligibility backend (ideal `F_mine` or VRF).
        elig: Arc<dyn Eligibility>,
        /// `true` = the paper's bit-specific election; `false` = the
        /// shared-committee ablation (requires `keychain`).
        bit_specific: bool,
        /// Statement-binding signatures for the shared ablation.
        keychain: Option<Arc<Keychain>>,
    },
    /// Shared committee with forward-secure signatures (Chen–Micali).
    FsMined {
        /// The eligibility backend.
        elig: Arc<dyn Eligibility>,
        /// Forward-secure key service.
        fs: Arc<FsService>,
        /// Whether honest nodes erase slot keys immediately after signing.
        erasure: bool,
    },
}

impl std::fmt::Debug for Auth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Auth::Signed { .. } => write!(f, "Auth::Signed"),
            Auth::Mined { bit_specific, .. } => {
                write!(f, "Auth::Mined {{ bit_specific: {bit_specific} }}")
            }
            Auth::FsMined { erasure, .. } => write!(f, "Auth::FsMined {{ erasure: {erasure} }}"),
        }
    }
}

impl Auth {
    /// Attempts to produce evidence allowing `node` to send the statement
    /// `tag`. Returns `None` when the node is not eligible (mined regimes).
    ///
    /// For [`Auth::FsMined`] with erasure on, the slot key is destroyed as a
    /// side effect of signing (sign-then-erase, within the same round).
    pub fn attest(&self, node: NodeId, tag: &MineTag) -> Option<Evidence> {
        match self {
            Auth::Signed { keychain } => Some(Evidence::Sig(keychain.sign(node, &tag.to_bytes()))),
            Auth::Mined { elig, bit_specific: true, .. } => {
                elig.mine(node, tag).map(Evidence::Ticket)
            }
            Auth::Mined { elig, bit_specific: false, keychain } => {
                let ticket = elig.mine(node, &tag.sharedized())?;
                let kc = keychain.as_ref().expect("shared-committee mode requires a keychain");
                Some(Evidence::TicketSig(ticket, kc.sign(node, &tag.to_bytes())))
            }
            Auth::FsMined { elig, fs, erasure } => {
                let ticket = elig.mine(node, &tag.sharedized())?;
                let slot = tag.iter.unwrap_or(0) as usize;
                let sig = fs.sign(node, slot, &tag.to_bytes()).ok()?;
                if *erasure {
                    fs.erase_through(node, slot);
                }
                Some(Evidence::FsTicketSig(ticket, Box::new(sig)))
            }
        }
    }

    /// Verifies that `node` was entitled to send the statement `tag`.
    pub fn verify(&self, node: NodeId, tag: &MineTag, ev: &Evidence) -> bool {
        match (self, ev) {
            (Auth::Signed { keychain }, Evidence::Sig(sig)) => {
                keychain.verify(node, &tag.to_bytes(), sig)
            }
            (Auth::Mined { elig, bit_specific: true, .. }, Evidence::Ticket(t)) => {
                elig.verify(node, tag, t)
            }
            (Auth::Mined { elig, bit_specific: false, keychain }, Evidence::TicketSig(t, sig)) => {
                let kc = keychain.as_ref().expect("shared-committee mode requires a keychain");
                elig.verify(node, &tag.sharedized(), t) && kc.verify(node, &tag.to_bytes(), sig)
            }
            (Auth::FsMined { elig, fs, .. }, Evidence::FsTicketSig(t, sig)) => {
                let slot = tag.iter.unwrap_or(0) as usize;
                elig.verify(node, &tag.sharedized(), t)
                    && fs.verify(node, slot, &tag.to_bytes(), sig)
            }
            _ => false, // evidence kind does not match the regime
        }
    }

    /// Verifies a batch of `(node, tag, evidence)` claims, returning one
    /// result per claim.
    ///
    /// The expensive regimes collapse into the underlying batch
    /// verification APIs — one random-linear-combination
    /// multi-exponentiation for a whole inbox of Schnorr signatures or VRF
    /// tickets — and populate the services' statement caches, so later
    /// [`Auth::verify`] calls on the same evidence (certificates repeat
    /// votes across rounds) are O(1) lookups. When the combined check
    /// fails, claims are re-verified individually to identify the invalid
    /// ones, preserving exactly the per-claim accept set.
    pub fn verify_batch(&self, claims: &[(NodeId, MineTag, &Evidence)]) -> Vec<bool> {
        let per_item = |claims: &[(NodeId, MineTag, &Evidence)]| -> Vec<bool> {
            claims.iter().map(|(n, t, e)| self.verify(*n, t, e)).collect()
        };
        match self {
            Auth::Signed { keychain } => {
                let msgs: Vec<[u8; 11]> = claims.iter().map(|(_, t, _)| t.to_bytes()).collect();
                let mut batch = Vec::with_capacity(claims.len());
                for ((node, _, ev), msg) in claims.iter().zip(msgs.iter()) {
                    let Evidence::Sig(sig) = ev else { return per_item(claims) };
                    batch.push((*node, msg.as_slice(), sig));
                }
                if keychain.verify_batch(&batch) {
                    vec![true; claims.len()]
                } else {
                    per_item(claims)
                }
            }
            Auth::Mined { elig, bit_specific: true, .. } => {
                let mut refs: Vec<(NodeId, &MineTag, &Ticket)> = Vec::with_capacity(claims.len());
                for (node, tag, ev) in claims {
                    let Evidence::Ticket(t) = ev else { return per_item(claims) };
                    refs.push((*node, tag, t));
                }
                if elig.verify_batch(&refs) {
                    vec![true; claims.len()]
                } else {
                    per_item(claims)
                }
            }
            Auth::Mined { elig, bit_specific: false, keychain } => {
                let kc = keychain.as_ref().expect("shared-committee mode requires a keychain");
                let shared_tags: Vec<MineTag> =
                    claims.iter().map(|(_, t, _)| t.sharedized()).collect();
                let msgs: Vec<[u8; 11]> = claims.iter().map(|(_, t, _)| t.to_bytes()).collect();
                let mut tickets = Vec::with_capacity(claims.len());
                let mut sigs = Vec::with_capacity(claims.len());
                for (i, (node, _, ev)) in claims.iter().enumerate() {
                    let Evidence::TicketSig(t, sig) = ev else { return per_item(claims) };
                    tickets.push((*node, &shared_tags[i], t));
                    sigs.push((*node, msgs[i].as_slice(), sig));
                }
                if elig.verify_batch(&tickets) && kc.verify_batch(&sigs) {
                    vec![true; claims.len()]
                } else {
                    per_item(claims)
                }
            }
            // Forward-secure signatures have no batch form; fall through.
            Auth::FsMined { .. } => per_item(claims),
        }
    }

    /// Whether this regime can compress a quorum of evidence into one
    /// aggregate signature. Only [`Auth::Signed`] can: mined tickets prove
    /// *eligibility* (a VRF evaluation), which has no joint-signing
    /// analogue — configurations requesting aggregate certificates under a
    /// mined regime fall back to the vector encoding.
    pub fn supports_aggregation(&self) -> bool {
        matches!(self, Auth::Signed { .. })
    }

    /// The signer-bitmap width for aggregate quorums (the enrolled node
    /// count), when this regime supports aggregation.
    pub fn aggregation_domain(&self) -> Option<usize> {
        match self {
            Auth::Signed { keychain } => Some(keychain.n()),
            _ => None,
        }
    }

    /// Aggregates a quorum's evidence on the shared statement `tag` into
    /// one [`AggSig`]. `claims` must be in strictly increasing node order
    /// and every evidence must be a valid [`Evidence::Sig`] on `tag` — the
    /// keychain screens the inputs and refuses otherwise (see
    /// [`Keychain::aggregate`]). `None` under non-signed regimes.
    pub fn aggregate(&self, tag: &MineTag, claims: &[(NodeId, &Evidence)]) -> Option<AggSig> {
        let Auth::Signed { keychain } = self else { return None };
        let mut sigs: Vec<(NodeId, &Sig)> = Vec::with_capacity(claims.len());
        for (node, ev) in claims {
            let Evidence::Sig(sig) = ev else { return None };
            sigs.push((*node, sig));
        }
        keychain.aggregate(&sigs, &tag.to_bytes())
    }

    /// Verifies an aggregate quorum claim for the statement `tag`: the
    /// bitmap width must match the enrolled population and the aggregate
    /// must verify against exactly the listed signers
    /// ([`Keychain::verify_aggregate`] — Straus fast path + claim cache).
    /// Always `false` under regimes that cannot aggregate.
    pub fn verify_aggregate(&self, tag: &MineTag, quorum: &AggregateQuorum) -> bool {
        let Auth::Signed { keychain } = self else { return false };
        quorum.n == keychain.n()
            && keychain.verify_aggregate(&quorum.signers, &tag.to_bytes(), &quorum.agg)
    }

    /// Round-boundary hygiene: in the memory-erasure regime every honest
    /// node destroys its slot-`epoch` key during the round — **whether or
    /// not it spoke** — so an adversary corrupting it right after observing
    /// the round's traffic finds nothing to sign with (Chen–Micali's
    /// "ephemeral keys"). No-op for the other regimes.
    pub fn end_of_round(&self, node: NodeId, epoch: u64) {
        if let Auth::FsMined { fs, erasure: true, .. } = self {
            fs.erase_through(node, epoch as usize);
        }
    }

    /// Whether [`Auth::verify_batch`] has a genuine fast path in this
    /// regime (real signatures / real VRF tickets). When `false`, an
    /// up-front batch pass over an inbox would just duplicate the
    /// per-message work.
    pub fn supports_batch(&self) -> bool {
        match self {
            Auth::Signed { keychain } => keychain.mode() == ba_fmine::SigMode::Real,
            Auth::Mined { elig, keychain, .. } => {
                elig.supports_batch()
                    || keychain.as_ref().is_some_and(|kc| kc.mode() == ba_fmine::SigMode::Real)
            }
            Auth::FsMined { .. } => false,
        }
    }

    /// The eligibility backend, if this regime uses one.
    pub fn eligibility(&self) -> Option<&Arc<dyn Eligibility>> {
        match self {
            Auth::Signed { .. } => None,
            Auth::Mined { elig, .. } | Auth::FsMined { elig, .. } => Some(elig),
        }
    }

    /// Whether this regime subsamples speakers (mined modes).
    pub fn is_subsampled(&self) -> bool {
        !matches!(self, Auth::Signed { .. })
    }

    /// Nominal evidence size for complexity estimates.
    pub fn nominal_evidence_bits(&self) -> usize {
        match self {
            Auth::Signed { .. } => SIG_BITS,
            Auth::Mined { bit_specific: true, .. } => TICKET_BITS,
            Auth::Mined { bit_specific: false, .. } => TICKET_BITS + SIG_BITS,
            Auth::FsMined { .. } => TICKET_BITS + 64 + SIG_BITS + 256 + 256 * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_fmine::{IdealMine, MineParams, MsgKind, SigMode};

    fn vote_tag(r: u64, b: bool) -> MineTag {
        MineTag::new(MsgKind::Vote, r, b)
    }

    fn signed_auth() -> Auth {
        Auth::Signed { keychain: Arc::new(Keychain::from_seed(1, 8, SigMode::Ideal)) }
    }

    fn mined_auth(bit_specific: bool) -> Auth {
        Auth::Mined {
            elig: Arc::new(IdealMine::new(2, MineParams::new(8, 8.0))), // prob 1
            bit_specific,
            keychain: (!bit_specific).then(|| Arc::new(Keychain::from_seed(1, 8, SigMode::Ideal))),
        }
    }

    fn fs_auth(erasure: bool) -> Auth {
        Auth::FsMined {
            elig: Arc::new(IdealMine::new(2, MineParams::new(8, 8.0))),
            fs: Arc::new(FsService::from_seed(3, 8, 16)),
            erasure,
        }
    }

    #[test]
    fn signed_attest_verify() {
        let auth = signed_auth();
        let tag = vote_tag(1, true);
        let ev = auth.attest(NodeId(0), &tag).expect("signing always succeeds");
        assert!(auth.verify(NodeId(0), &tag, &ev));
        assert!(!auth.verify(NodeId(1), &tag, &ev));
        assert!(!auth.verify(NodeId(0), &vote_tag(1, false), &ev));
    }

    #[test]
    fn bit_specific_ticket_binds_the_bit() {
        let auth = mined_auth(true);
        let tag = vote_tag(1, true);
        let ev = auth.attest(NodeId(0), &tag).expect("prob 1 eligibility");
        assert!(auth.verify(NodeId(0), &tag, &ev));
        // The same ticket is useless for the other bit — the §3.2 property.
        assert!(!auth.verify(NodeId(0), &vote_tag(1, false), &ev));
    }

    #[test]
    fn shared_ticket_is_bit_agnostic_but_sig_binds() {
        let auth = mined_auth(false);
        let tag = vote_tag(1, true);
        let Some(Evidence::TicketSig(ticket, _sig)) = auth.attest(NodeId(0), &tag) else {
            panic!("expected TicketSig");
        };
        // An adversary controlling node 0 re-signs the flipped statement
        // with the SAME ticket — and it verifies. This is the flaw.
        let flipped = vote_tag(1, false);
        let kc = match &auth {
            Auth::Mined { keychain: Some(kc), .. } => kc.clone(),
            _ => unreachable!(),
        };
        let forged = Evidence::TicketSig(ticket, kc.sign(NodeId(0), &flipped.to_bytes()));
        assert!(auth.verify(NodeId(0), &flipped, &forged));
    }

    #[test]
    fn fs_mode_with_erasure_blocks_reforging() {
        let auth = fs_auth(true);
        let tag = vote_tag(1, true);
        let ev = auth.attest(NodeId(0), &tag).expect("eligible + key available");
        assert!(auth.verify(NodeId(0), &tag, &ev));
        // After sign-then-erase, the slot key is gone: the adversary cannot
        // produce a conflicting vote for the same epoch.
        let Auth::FsMined { fs, .. } = &auth else { unreachable!() };
        assert!(!fs.slot_available(NodeId(0), 1));
        assert!(fs.sign(NodeId(0), 1, b"conflicting").is_err());
        // ...but later slots still work.
        assert!(auth.attest(NodeId(0), &vote_tag(2, false)).is_some());
    }

    #[test]
    fn fs_mode_without_erasure_allows_reforging() {
        let auth = fs_auth(false);
        let tag = vote_tag(1, true);
        let _ev = auth.attest(NodeId(0), &tag).expect("eligible");
        let Auth::FsMined { fs, .. } = &auth else { unreachable!() };
        // The slot key survives: corrupting the node lets the adversary sign
        // the flipped statement.
        assert!(fs.slot_available(NodeId(0), 1));
        let flipped = vote_tag(1, false);
        let forged = fs.sign(NodeId(0), 1, &flipped.to_bytes()).expect("key not erased");
        assert!(fs.verify(NodeId(0), 1, &flipped.to_bytes(), &forged));
    }

    #[test]
    fn cross_regime_evidence_rejected() {
        let signed = signed_auth();
        let mined = mined_auth(true);
        let tag = vote_tag(0, true);
        let sig_ev = signed.attest(NodeId(0), &tag).unwrap();
        let ticket_ev = mined.attest(NodeId(0), &tag).unwrap();
        assert!(!signed.verify(NodeId(0), &tag, &ticket_ev));
        assert!(!mined.verify(NodeId(0), &tag, &sig_ev));
    }

    #[test]
    fn evidence_sizes_ordered() {
        let sig = signed_auth().attest(NodeId(0), &vote_tag(0, true)).unwrap();
        let ticket = mined_auth(true).attest(NodeId(0), &vote_tag(0, true)).unwrap();
        let both = mined_auth(false).attest(NodeId(0), &vote_tag(0, true)).unwrap();
        assert!(sig.size_bits() < ticket.size_bits());
        assert!(ticket.size_bits() < both.size_bits());
    }

    #[test]
    fn subsampled_flag() {
        assert!(!signed_auth().is_subsampled());
        assert!(mined_auth(true).is_subsampled());
        assert!(fs_auth(true).is_subsampled());
    }
}
