//! The iteration-based BA family (Appendix C of the paper) — the headline
//! construction.
//!
//! * **Quadratic** (C.1, after Abraham et al. \[1\]): `n = 2f + 1`, signed
//!   messages, a public random-leader oracle, quorum `f + 1`, expected O(1)
//!   iterations, `Θ(n)` multicasts per round.
//! * **Subquadratic** (C.2): the same machine compiled with `F_mine`/VRF
//!   **bit-specific** eligibility — quorum `λ/2`, leader self-election at
//!   difficulty `1/(2n)`, polylog multicasts, resilience `f < (1/2 − ε)n`,
//!   still expected O(1) iterations. This is Theorem 2's protocol.
//!
//! ## Iteration structure (4 synchronous rounds; iteration 1 skips the
//! first two)
//!
//! 1. **Status** — every (eligible) node reports its highest certified bit
//!    with the certificate attached.
//! 2. **Propose** — the leader picks the bit with the highest certificate it
//!    has seen (ties arbitrary; no certificate ranks lowest) and proposes it
//!    with the certificate attached.
//! 3. **Vote** — a node votes for the proposal `b` unless it knows a
//!    strictly higher certificate for `1 − b`. Votes attach the leader
//!    proposal that justifies them (footnote 11: the justification is *not*
//!    part of certificates). Iteration-1 votes are for the node's input and
//!    need no justification.
//! 4. **Commit** — on `quorum` iteration-`r` votes for `b` and **no**
//!    (justified) iteration-`r` vote for `1 − b`, commit `b` with the newly
//!    formed certificate attached.
//!
//! **Terminate** (any round): on `quorum` commits for the same `(r, b)`,
//! multicast `(Terminate, b)` carrying the commit quorum, output `b`, halt.
//! Receivers of a valid `Terminate` adopt, (conditionally) relay, output,
//! and halt in the next round.

use std::collections::HashMap;
use std::sync::Arc;

use ba_crypto::hmac::HmacDrbg;
use ba_fmine::{Eligibility, Keychain, MineTag, MsgKind, NeverMine};
use ba_sim::{
    evaluate, run_sparse, ActivationOracle, Adversary, Bit, BoxedProtocol, Incoming, Message,
    NodeId, Outbox, PopulationMode, Problem, Protocol, Round, RunReport, SimConfig, SparseSpec,
    TransportSpec, Verdict,
};

use crate::auth::{Auth, Evidence};
use crate::cert::{
    AggregateQuorum, CertBody, CertEncoding, Certificate, CommitQuorum, CommitRef, VoteRef,
};
use crate::runnable::Runnable;

/// Reference to a leader proposal, attached to votes as justification.
#[derive(Clone, Debug, PartialEq)]
pub struct ProposalRef {
    /// The proposer.
    pub from: NodeId,
    /// Evidence for `(Propose, iter, bit)` (bit taken from the vote).
    pub ev: Evidence,
}

/// Messages of the iteration family.
#[derive(Clone, Debug, PartialEq)]
pub enum IterMsg {
    /// `(Status, r, b, C)` — highest certified bit so far (`None` = ⊥).
    Status {
        /// Iteration.
        iter: u64,
        /// Reported bit, `None` when the node has no certificate.
        bit: Option<Bit>,
        /// The certificate justifying `bit` (present iff `bit` is).
        cert: Option<Certificate>,
        /// Authorization evidence.
        ev: Evidence,
    },
    /// `(Propose, r, b)` with the highest certificate attached.
    Propose {
        /// Iteration.
        iter: u64,
        /// Proposed bit.
        bit: Bit,
        /// Highest certificate for `bit` (absent = iteration-0 rank).
        cert: Option<Certificate>,
        /// Authorization evidence.
        ev: Evidence,
    },
    /// `(Vote, r, b)` justified by a leader proposal (except iteration 1).
    Vote {
        /// Iteration.
        iter: u64,
        /// Voted bit.
        bit: Bit,
        /// The proposal justifying this vote (`None` only in iteration 1).
        just: Option<ProposalRef>,
        /// Authorization evidence.
        ev: Evidence,
    },
    /// `(Commit, r, b)` with the iteration-`r` certificate attached.
    Commit {
        /// Iteration.
        iter: u64,
        /// Committed bit.
        bit: Bit,
        /// The certificate formed from this iteration's votes.
        cert: Certificate,
        /// Authorization evidence.
        ev: Evidence,
    },
    /// `(Terminate, b)` with a quorum of commits attached.
    Terminate {
        /// Iteration whose commits are attached.
        iter: u64,
        /// Decided bit.
        bit: Bit,
        /// Quorum of commits for `(iter, bit)`, in the sender's encoding.
        commits: CommitQuorum,
        /// Authorization evidence for `(Terminate, b)`.
        ev: Evidence,
    },
}

impl Message for IterMsg {
    fn size_bits(&self) -> usize {
        let header = 8 + 64 + 2;
        match self {
            IterMsg::Status { ev, .. } | IterMsg::Propose { ev, .. } => {
                header + self.cert_bits() + ev.size_bits()
            }
            IterMsg::Vote { just, ev, .. } => {
                header + just.as_ref().map_or(0, |j| 32 + j.ev.size_bits()) + ev.size_bits()
            }
            IterMsg::Commit { ev, .. } | IterMsg::Terminate { ev, .. } => {
                header + self.cert_bits() + ev.size_bits()
            }
        }
    }

    /// The certificate share of the wire size: attached vote certificates
    /// and commit quorums. Vote justifications are *not* certificates
    /// (footnote 11) and don't count.
    fn cert_bits(&self) -> usize {
        match self {
            IterMsg::Status { cert, .. } | IterMsg::Propose { cert, .. } => {
                cert.as_ref().map_or(0, |c| c.size_bits())
            }
            IterMsg::Vote { .. } => 0,
            IterMsg::Commit { cert, .. } => cert.size_bits(),
            IterMsg::Terminate { commits, .. } => commits.size_bits(),
        }
    }
}

/// Leader election for the iteration family.
#[derive(Clone, Debug)]
pub enum IterLeaderMode {
    /// C.1's idealized oracle: a public random leader per iteration, derived
    /// from a shared seed (known to everyone, including the adversary).
    Oracle {
        /// The shared oracle seed.
        seed: u64,
    },
    /// C.2: private self-election by mining `(Propose, r, b)`.
    Mined,
}

/// Configuration of one iteration-family instance.
#[derive(Clone, Debug)]
pub struct IterConfig {
    /// Number of nodes.
    pub n: usize,
    /// Certificate/commit quorum (`f + 1` or `λ/2`).
    pub quorum: usize,
    /// Authentication regime.
    pub auth: Auth,
    /// Leader election mechanism.
    pub leader: IterLeaderMode,
    /// Iteration cap (liveness safety net; expected O(1) needed).
    pub max_iters: u64,
    /// Requested wire encoding for certificates and commit quorums. The
    /// encoding actually used is [`IterConfig::effective_cert_encoding`]:
    /// regimes that cannot aggregate fall back to the vector transcript.
    pub cert_encoding: CertEncoding,
}

impl IterConfig {
    /// Appendix C.1: quadratic, signed, `f < n/2`.
    pub fn quadratic_half(n: usize, keychain: Arc<Keychain>, leader_seed: u64) -> IterConfig {
        IterConfig {
            n,
            quorum: n / 2 + 1,
            auth: Auth::Signed { keychain },
            leader: IterLeaderMode::Oracle { seed: leader_seed },
            max_iters: 64,
            cert_encoding: CertEncoding::Vector,
        }
    }

    /// Appendix C.2: subquadratic with bit-specific eligibility (Theorem 2).
    pub fn subq_half(n: usize, elig: Arc<dyn Eligibility>) -> IterConfig {
        let lambda = elig.lambda();
        IterConfig {
            n,
            quorum: (lambda / 2.0).ceil() as usize,
            auth: Auth::Mined { elig, bit_specific: true, keychain: None },
            leader: IterLeaderMode::Mined,
            max_iters: 64,
            cert_encoding: CertEncoding::Vector,
        }
    }

    /// Requests a certificate encoding (builder style).
    pub fn with_cert_encoding(mut self, encoding: CertEncoding) -> IterConfig {
        self.cert_encoding = encoding;
        self
    }

    /// The encoding certificates are actually built with: the requested
    /// [`IterConfig::cert_encoding`] when the regime supports aggregation
    /// ([`Auth::supports_aggregation`]), else [`CertEncoding::Vector`].
    /// Mined tickets prove eligibility and cannot be jointly signed, so
    /// requesting `aggregate` under a mined regime is a silent no-op — the
    /// differential suite relies on the fallback being byte-identical.
    pub fn effective_cert_encoding(&self) -> CertEncoding {
        if self.auth.supports_aggregation() {
            self.cert_encoding
        } else {
            CertEncoding::Vector
        }
    }

    /// The oracle's leader for `iter` (oracle mode only).
    pub fn oracle_leader(&self, iter: u64) -> Option<NodeId> {
        match &self.leader {
            IterLeaderMode::Oracle { seed } => {
                let mut material = [0u8; 16];
                material[..8].copy_from_slice(&seed.to_be_bytes());
                material[8..].copy_from_slice(&iter.to_be_bytes());
                let mut drbg = HmacDrbg::new(&material, b"iter-leader-oracle");
                Some(NodeId((drbg.next_u64() % self.n as u64) as usize))
            }
            IterLeaderMode::Mined => None,
        }
    }

    /// Synchronous rounds consumed by `max_iters` iterations.
    pub fn total_rounds(&self) -> u64 {
        2 + (self.max_iters.saturating_sub(1)) * 4 + 2
    }

    /// Whether this configuration can run under the sparse population
    /// engine: speakers must be predictable by probing the eligibility
    /// backend, which requires mined (committee-subsampled) authentication
    /// and mined leader self-election. Signed regimes (everyone speaks every
    /// round) and the public-leader oracle (id-dependent schedule with full
    /// Status/Vote participation) fall back to the dense engine.
    pub fn supports_sparse(&self) -> bool {
        matches!(self.leader, IterLeaderMode::Mined) && matches!(self.auth, Auth::Mined { .. })
    }
}

/// The round-to-phase schedule: iteration 1 runs Vote/Commit in rounds 0–1;
/// iterations `r >= 2` run Status/Propose/Vote/Commit in rounds
/// `2 + 4(r-2) .. 5 + 4(r-2)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Status,
    Propose,
    Vote,
    Commit,
}

fn schedule(round: u64) -> (u64, Phase) {
    if round < 2 {
        (1, if round == 0 { Phase::Vote } else { Phase::Commit })
    } else {
        let iter = 2 + (round - 2) / 4;
        let phase = match (round - 2) % 4 {
            0 => Phase::Status,
            1 => Phase::Propose,
            2 => Phase::Vote,
            _ => Phase::Commit,
        };
        (iter, phase)
    }
}

/// One node of the iteration protocol.
pub struct IterNode {
    cfg: IterConfig,
    id: NodeId,
    input: Bit,
    /// Highest verified certificate per bit.
    best: [Option<Certificate>; 2],
    /// Deduplicated valid votes per `(iter, bit)`.
    votes: HashMap<(u64, bool), Vec<VoteRef>>,
    /// Deduplicated valid commits per `(iter, bit)`.
    commits: HashMap<(u64, bool), Vec<CommitRef>>,
    /// Verified aggregate-encoded commit quorums received in `Terminate`
    /// messages. An aggregate carries no individual commit evidence to
    /// record into `commits`, so the quorum itself is kept for relaying.
    term_quorums: HashMap<(u64, bool), CommitQuorum>,
    /// Per-iteration highest proposal rank per bit, `None` = no proposal.
    proposals: HashMap<u64, [Option<u64>; 2]>,
    /// The proposal evidence to attach as vote justification.
    proposal_refs: HashMap<(u64, bool), ProposalRef>,
    coins: HmacDrbg,
    output: Option<Bit>,
    done: bool,
    /// Set when a commit quorum or Terminate message was observed.
    decided: Option<(u64, Bit)>,
}

impl IterNode {
    /// Creates a node with its input bit and per-node seed.
    pub fn new(cfg: IterConfig, id: NodeId, input: Bit, seed: u64) -> IterNode {
        IterNode {
            cfg,
            id,
            input,
            best: [None, None],
            votes: HashMap::new(),
            commits: HashMap::new(),
            term_quorums: HashMap::new(),
            proposals: HashMap::new(),
            proposal_refs: HashMap::new(),
            coins: HmacDrbg::new(&seed.to_be_bytes(), b"iter-coins"),
            output: None,
            done: false,
            decided: None,
        }
    }

    fn adopt_cert(&mut self, cert: &Certificate) {
        if !cert.verify(&self.cfg.auth, self.cfg.quorum) {
            return;
        }
        let slot = &mut self.best[cert.bit as usize];
        if Certificate::rank(slot) < cert.iter {
            *slot = Some(cert.clone());
        }
    }

    /// `(bit, rank)` of the overall highest certificate, `None` if no
    /// certificate is known. Ties prefer bit 1 (arbitrary, deterministic).
    fn best_bit(&self) -> Option<(Bit, u64)> {
        let r0 = Certificate::rank(&self.best[0]);
        let r1 = Certificate::rank(&self.best[1]);
        if r0 == 0 && r1 == 0 {
            None
        } else if r1 >= r0 {
            Some((true, r1))
        } else {
            Some((false, r0))
        }
    }

    /// Compresses a sorted, deduplicated quorum of evidence into an
    /// [`AggregateQuorum`] under the effective aggregate encoding.
    fn aggregate_quorum(
        &self,
        tag: &MineTag,
        refs: &[(NodeId, &Evidence)],
    ) -> Option<AggregateQuorum> {
        let n = self.cfg.auth.aggregation_domain()?;
        let agg = self.cfg.auth.aggregate(tag, refs)?;
        Some(AggregateQuorum { n, signers: refs.iter().map(|(id, _)| *id).collect(), agg })
    }

    /// Builds the certificate for a sorted quorum prefix of votes, in the
    /// effective encoding. Falls back to the vector transcript if
    /// aggregation unexpectedly fails (it cannot for honest evidence under
    /// a signed regime, which is the only regime that reaches the
    /// aggregate arm).
    fn build_certificate(&self, iter: u64, bit: Bit, votes: &[VoteRef]) -> Certificate {
        if self.cfg.effective_cert_encoding() == CertEncoding::Aggregate {
            let tag = MineTag::new(MsgKind::Vote, iter, bit);
            let refs: Vec<(NodeId, &Evidence)> = votes.iter().map(|v| (v.from, &v.ev)).collect();
            if let Some(q) = self.aggregate_quorum(&tag, &refs) {
                return Certificate { iter, bit, body: CertBody::Aggregate(q) };
            }
        }
        Certificate::from_votes(iter, bit, votes.to_vec())
    }

    /// Builds the commit quorum for a `Terminate` message from a sorted
    /// quorum of commit references, in the effective encoding.
    fn build_commit_quorum(&self, iter: u64, bit: Bit, commits: &[CommitRef]) -> CommitQuorum {
        if self.cfg.effective_cert_encoding() == CertEncoding::Aggregate {
            let tag = MineTag::new(MsgKind::Commit, iter, bit);
            let refs: Vec<(NodeId, &Evidence)> = commits.iter().map(|c| (c.from, &c.ev)).collect();
            if let Some(q) = self.aggregate_quorum(&tag, &refs) {
                return CommitQuorum::Aggregate(q);
            }
        }
        CommitQuorum::Vector(commits.to_vec())
    }

    fn record_vote(&mut self, iter: u64, bit: Bit, from: NodeId, ev: Evidence) {
        let quorum = self.cfg.quorum;
        let pool = self.votes.entry((iter, bit)).or_default();
        if pool.iter().all(|v| v.from != from) {
            pool.push(VoteRef { from, ev });
        }
        // A quorum of votes IS a certificate — adopt it immediately. Sort
        // the pool in place (order is irrelevant to dedup) and copy only
        // the quorum prefix instead of cloning the whole pool.
        if pool.len() >= quorum && Certificate::rank(&self.best[bit as usize]) < iter {
            pool.sort_by_key(|v| v.from);
            let votes = pool[..quorum].to_vec();
            self.best[bit as usize] = Some(self.build_certificate(iter, bit, &votes));
        }
    }

    fn record_commit(&mut self, iter: u64, bit: Bit, from: NodeId, ev: Evidence) {
        let pool = self.commits.entry((iter, bit)).or_default();
        if pool.iter().all(|c| c.from != from) {
            pool.push(CommitRef { from, ev });
        }
        if self.commits[&(iter, bit)].len() >= self.cfg.quorum && self.decided.is_none() {
            self.decided = Some((iter, bit));
        }
    }

    /// Whether a vote's justification is acceptable.
    fn vote_justified(&self, iter: u64, bit: Bit, just: &Option<ProposalRef>) -> bool {
        if iter == 1 {
            return true; // iteration-1 votes are input votes
        }
        let Some(j) = just else { return false };
        if let Some(leader) = self.cfg.oracle_leader(iter) {
            if j.from != leader {
                return false;
            }
        }
        let tag = MineTag::new(MsgKind::Propose, iter, bit);
        self.cfg.auth.verify(j.from, &tag, &j.ev)
    }

    /// Collects every authentication claim an inbox carries — top-level
    /// message evidence, certificate votes, commit quorums, and vote
    /// justifications — and verifies them in one [`Auth::verify_batch`]
    /// call. The per-message logic afterwards re-asks the same questions
    /// and hits the services' statement caches.
    fn batch_verify_inbox(&self, inbox: &[Incoming<IterMsg>]) {
        if !self.cfg.auth.supports_batch() {
            return;
        }
        fn push_cert<'a>(claims: &mut Vec<(NodeId, MineTag, &'a Evidence)>, cert: &'a Certificate) {
            // Aggregate bodies carry no individual evidence; they verify
            // through their own fast path (one Straus check + claim cache).
            let CertBody::Vector(votes) = &cert.body else { return };
            let tag = MineTag::new(MsgKind::Vote, cert.iter, cert.bit);
            for v in votes {
                claims.push((v.from, tag, &v.ev));
            }
        }
        let mut claims: Vec<(NodeId, MineTag, &Evidence)> = Vec::new();
        for m in inbox {
            match &*m.msg {
                IterMsg::Status { iter, bit, cert, ev } => {
                    let tag = match bit {
                        Some(b) => MineTag::new(MsgKind::Status, *iter, *b),
                        None => MineTag::bot(MsgKind::Status, *iter),
                    };
                    claims.push((m.from, tag, ev));
                    if let Some(c) = cert {
                        push_cert(&mut claims, c);
                    }
                }
                IterMsg::Propose { iter, bit, cert, ev } => {
                    claims.push((m.from, MineTag::new(MsgKind::Propose, *iter, *bit), ev));
                    if let Some(c) = cert {
                        push_cert(&mut claims, c);
                    }
                }
                IterMsg::Vote { iter, bit, just, ev } => {
                    claims.push((m.from, MineTag::new(MsgKind::Vote, *iter, *bit), ev));
                    if let Some(j) = just {
                        claims.push((j.from, MineTag::new(MsgKind::Propose, *iter, *bit), &j.ev));
                    }
                }
                IterMsg::Commit { iter, bit, cert, ev } => {
                    claims.push((m.from, MineTag::new(MsgKind::Commit, *iter, *bit), ev));
                    push_cert(&mut claims, cert);
                }
                IterMsg::Terminate { iter, bit, commits, ev } => {
                    claims.push((m.from, MineTag::terminate(*bit), ev));
                    if let CommitQuorum::Vector(refs) = commits {
                        let tag = MineTag::new(MsgKind::Commit, *iter, *bit);
                        for c in refs {
                            claims.push((c.from, tag, &c.ev));
                        }
                    }
                }
            }
        }
        let _ = self.cfg.auth.verify_batch(&claims);
    }

    fn ingest(&mut self, inbox: &[Incoming<IterMsg>]) {
        self.batch_verify_inbox(inbox);
        for m in inbox {
            match &*m.msg {
                IterMsg::Status { iter, bit, cert, ev } => {
                    let tag = match bit {
                        Some(b) => MineTag::new(MsgKind::Status, *iter, *b),
                        None => MineTag::bot(MsgKind::Status, *iter),
                    };
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    if let (Some(b), Some(c)) = (bit, cert) {
                        if c.bit == *b {
                            self.adopt_cert(c);
                        }
                    }
                }
                IterMsg::Propose { iter, bit, cert, ev } => {
                    let tag = MineTag::new(MsgKind::Propose, *iter, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    if let Some(leader) = self.cfg.oracle_leader(*iter) {
                        if m.from != leader {
                            continue;
                        }
                    }
                    // Rank of the attached certificate; it must certify the
                    // proposed bit and verify, else the proposal counts as
                    // rank 0 (which is still a valid certificate-less
                    // proposal).
                    let rank = match cert {
                        Some(c) if c.bit == *bit && c.verify(&self.cfg.auth, self.cfg.quorum) => {
                            self.adopt_cert(c);
                            c.iter
                        }
                        Some(_) => continue, // malformed attachment: drop
                        None => 0,
                    };
                    let entry = self.proposals.entry(*iter).or_insert([None, None]);
                    let slot = &mut entry[*bit as usize];
                    if slot.is_none_or(|old| old < rank) {
                        *slot = Some(rank);
                    }
                    self.proposal_refs
                        .entry((*iter, *bit))
                        .or_insert_with(|| ProposalRef { from: m.from, ev: ev.clone() });
                }
                IterMsg::Vote { iter, bit, just, ev } => {
                    let tag = MineTag::new(MsgKind::Vote, *iter, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    if !self.vote_justified(*iter, *bit, just) {
                        continue;
                    }
                    self.record_vote(*iter, *bit, m.from, ev.clone());
                }
                IterMsg::Commit { iter, bit, cert, ev } => {
                    let tag = MineTag::new(MsgKind::Commit, *iter, *bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    if cert.iter != *iter
                        || cert.bit != *bit
                        || !cert.verify(&self.cfg.auth, self.cfg.quorum)
                    {
                        continue;
                    }
                    self.adopt_cert(cert);
                    self.record_commit(*iter, *bit, m.from, ev.clone());
                }
                IterMsg::Terminate { iter, bit, commits, ev } => {
                    let tag = MineTag::terminate(*bit);
                    if !self.cfg.auth.verify(m.from, &tag, ev) {
                        continue;
                    }
                    if !commits.verify(*iter, *bit, &self.cfg.auth, self.cfg.quorum) {
                        continue;
                    }
                    match commits {
                        CommitQuorum::Vector(refs) => {
                            for c in refs {
                                self.record_commit(*iter, *bit, c.from, c.ev.clone());
                            }
                        }
                        CommitQuorum::Aggregate(_) => {
                            // No individual evidence to record; keep the
                            // verified quorum for relaying in `finish`.
                            self.term_quorums
                                .entry((*iter, *bit))
                                .or_insert_with(|| commits.clone());
                        }
                    }
                    if self.decided.is_none() {
                        self.decided = Some((*iter, *bit));
                    }
                }
            }
        }
    }

    /// Emits `(Terminate, b)`, outputs, and halts.
    fn finish(&mut self, iter: u64, bit: Bit, out: &mut Outbox<IterMsg>) {
        let tag = MineTag::terminate(bit);
        if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
            let mut commits = self.commits.get(&(iter, bit)).cloned().unwrap_or_default();
            commits.sort_by_key(|c| c.from);
            commits.truncate(self.cfg.quorum);
            if commits.len() >= self.cfg.quorum {
                let quorum = self.build_commit_quorum(iter, bit, &commits);
                out.multicast(IterMsg::Terminate { iter, bit, commits: quorum, ev });
            } else if let Some(stashed) = self.term_quorums.get(&(iter, bit)) {
                // An aggregate-encoded Terminate carried no individual
                // commit evidence to rebuild a quorum from; relay the
                // verified quorum as received. (Under vector encoding this
                // branch is unreachable: ingesting a Terminate records its
                // commits, so the pool above already holds a quorum.)
                out.multicast(IterMsg::Terminate { iter, bit, commits: stashed.clone(), ev });
            }
        }
        self.output = Some(bit);
        self.done = true;
    }
}

impl Protocol<IterMsg> for IterNode {
    fn step(&mut self, round: Round, inbox: &[Incoming<IterMsg>], out: &mut Outbox<IterMsg>) {
        if self.done {
            return;
        }
        self.ingest(inbox);
        if let Some((iter, bit)) = self.decided {
            self.finish(iter, bit, out);
            return;
        }
        let (iter, phase) = schedule(round.0);
        if iter > self.cfg.max_iters {
            return; // out of schedule; non-termination will be reported
        }
        match phase {
            Phase::Status => {
                let (bit, cert) = match self.best_bit() {
                    Some((b, _)) => (Some(b), self.best[b as usize].clone()),
                    None => (None, None),
                };
                let tag = match bit {
                    Some(b) => MineTag::new(MsgKind::Status, iter, b),
                    None => MineTag::bot(MsgKind::Status, iter),
                };
                if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                    out.multicast(IterMsg::Status { iter, bit, cert, ev });
                }
            }
            Phase::Propose => {
                let is_candidate = match &self.cfg.leader {
                    IterLeaderMode::Oracle { .. } => self.cfg.oracle_leader(iter) == Some(self.id),
                    IterLeaderMode::Mined => true,
                };
                if !is_candidate {
                    return;
                }
                let (bit, cert) = match self.best_bit() {
                    Some((b, _)) => (b, self.best[b as usize].clone()),
                    None => (self.coins.next_byte() & 1 == 1, None),
                };
                let tag = MineTag::new(MsgKind::Propose, iter, bit);
                if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                    out.multicast(IterMsg::Propose { iter, bit, cert, ev });
                }
            }
            Phase::Vote => {
                let (bit, just) = if iter == 1 {
                    (Some(self.input), None)
                } else {
                    let ranks = self.proposals.get(&iter).copied().unwrap_or([None, None]);
                    match ranks {
                        [Some(rank), None] if rank >= Certificate::rank(&self.best[1]) => {
                            (Some(false), self.proposal_refs.get(&(iter, false)).cloned())
                        }
                        [None, Some(rank)] if rank >= Certificate::rank(&self.best[0]) => {
                            (Some(true), self.proposal_refs.get(&(iter, true)).cloned())
                        }
                        // No valid proposal, conflicting proposals, or a
                        // proposal losing to a higher opposite certificate:
                        // abstain.
                        _ => (None, None),
                    }
                };
                if let Some(b) = bit {
                    if iter > 1 && just.is_none() {
                        return; // cannot justify the vote; abstain
                    }
                    let tag = MineTag::new(MsgKind::Vote, iter, b);
                    if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                        // Record our own vote so our commit tally sees it.
                        self.record_vote(iter, b, self.id, ev.clone());
                        out.multicast(IterMsg::Vote { iter, bit: b, just, ev });
                    }
                }
            }
            Phase::Commit => {
                for bit in [false, true] {
                    let for_count = self.votes.get(&(iter, bit)).map_or(0, |v| v.len());
                    let against = self.votes.get(&(iter, !bit)).map_or(0, |v| v.len());
                    if for_count >= self.cfg.quorum && against == 0 {
                        // Build the iteration-r certificate from the vote
                        // pool (best[bit] may hold a higher-ranked one);
                        // sort in place and copy only the quorum prefix.
                        let pool = self.votes.get_mut(&(iter, bit)).expect("nonempty pool");
                        pool.sort_by_key(|v| v.from);
                        let votes = pool[..self.cfg.quorum].to_vec();
                        let cert = self.build_certificate(iter, bit, &votes);
                        let tag = MineTag::new(MsgKind::Commit, iter, bit);
                        if let Some(ev) = self.cfg.auth.attest(self.id, &tag) {
                            self.record_commit(iter, bit, self.id, ev.clone());
                            out.multicast(IterMsg::Commit { iter, bit, cert, ev });
                        }
                        break;
                    }
                }
            }
        }
    }

    fn output(&self) -> Option<Bit> {
        self.output
    }

    fn halted(&self) -> bool {
        self.done
    }
}

/// Predicts each round's possible speakers for the sparse population engine
/// by probing the eligibility backend's side-effect-free `would_mine` for
/// every tag the round's schedule lets a node attest — plus the Terminate
/// tags, which `finish` can fire in **any** round once a node decides.
/// Committees are memoized per probed tag, so each tag costs one `O(n)`
/// probe sweep over the whole run.
struct IterOracle {
    n: usize,
    max_iters: u64,
    /// Mirrors [`Auth::Mined`]'s flag: shared committees probe the
    /// bit-erased tag, exactly as `attest` mines it.
    bit_specific: bool,
    elig: Arc<dyn Eligibility>,
    memo: HashMap<MineTag, Vec<NodeId>>,
}

impl IterOracle {
    fn committee(&mut self, tag: MineTag) -> &[NodeId] {
        let probe = if self.bit_specific { tag } else { tag.sharedized() };
        let (n, elig) = (self.n, &self.elig);
        self.memo
            .entry(probe)
            .or_insert_with(|| (0..n).map(NodeId).filter(|&i| elig.would_mine(i, &probe)).collect())
    }
}

impl ActivationOracle for IterOracle {
    fn candidates(&mut self, round: Round) -> Vec<NodeId> {
        let mut tags = vec![MineTag::terminate(false), MineTag::terminate(true)];
        let (iter, phase) = schedule(round.0);
        if iter <= self.max_iters {
            match phase {
                Phase::Status => tags.extend([
                    MineTag::new(MsgKind::Status, iter, false),
                    MineTag::new(MsgKind::Status, iter, true),
                    MineTag::bot(MsgKind::Status, iter),
                ]),
                Phase::Propose => tags.extend([
                    MineTag::new(MsgKind::Propose, iter, false),
                    MineTag::new(MsgKind::Propose, iter, true),
                ]),
                Phase::Vote => tags.extend([
                    MineTag::new(MsgKind::Vote, iter, false),
                    MineTag::new(MsgKind::Vote, iter, true),
                ]),
                Phase::Commit => tags.extend([
                    MineTag::new(MsgKind::Commit, iter, false),
                    MineTag::new(MsgKind::Commit, iter, true),
                ]),
            }
        }
        let mut out = Vec::new();
        for tag in tags {
            out.extend_from_slice(self.committee(tag));
        }
        out
    }
}

/// Builds the sparse-engine spec for this configuration, or `None` when it
/// cannot run sparsely (see [`IterConfig::supports_sparse`]) so callers fall
/// back to the dense engine.
fn sparse_spec(cfg: &IterConfig, inputs: &[Bit], sim: &SimConfig) -> Option<SparseSpec<IterMsg>> {
    if !cfg.supports_sparse() {
        return None;
    }
    let Auth::Mined { elig, bit_specific, keychain } = &cfg.auth else {
        return None;
    };
    // Ghosts can never win a committee seat (NeverMine) but verify exactly
    // like real nodes, and carry the out-of-range id `n` so any accidental
    // send is detectable. Their seed only feeds the leader-coin DRBG, which
    // a non-candidate never exposes.
    let mut ghost_cfg = cfg.clone();
    ghost_cfg.auth = Auth::Mined {
        elig: Arc::new(NeverMine(Arc::clone(elig))),
        bit_specific: *bit_specific,
        keychain: keychain.clone(),
    };
    let n = cfg.n;
    let ghost_seed = sim.seed ^ 0x6057_1A5E_1D0C_0DE0;
    let ghost = |bit: Bit| -> BoxedProtocol<IterMsg> {
        Box::new(IterNode::new(ghost_cfg.clone(), NodeId(n), bit, ghost_seed ^ bit as u64))
    };
    let oracle = IterOracle {
        n,
        max_iters: cfg.max_iters,
        bit_specific: *bit_specific,
        elig: Arc::clone(elig),
        memo: HashMap::new(),
    };
    let cfg_for_factory = cfg.clone();
    let inputs_for_factory = inputs.to_vec();
    Some(SparseSpec {
        factory: Box::new(move |id, seed| {
            Box::new(IterNode::new(
                cfg_for_factory.clone(),
                id,
                inputs_for_factory[id.index()],
                seed,
            ))
        }),
        ghosts: [ghost(false), ghost(true)],
        oracle: Box::new(oracle),
    })
}

/// Runs one execution of an iteration-family protocol and evaluates the
/// agreement verdict. Honors [`SimConfig::population`]: sparse-capable
/// configurations run under the sparse engine (byte-identical report);
/// others silently use the dense engine. The sparse engine composes only
/// with the lockstep transport — under a latency/TCP transport the
/// multicast history no longer describes every silent node's inbox, so
/// those configurations fall back to dense. Delivery itself goes through
/// [`ba_net::execute`], which realizes whatever [`SimConfig::transport`]
/// names.
pub fn run<A: Adversary<IterMsg> + Send>(
    cfg: &IterConfig,
    sim: &SimConfig,
    inputs: Vec<Bit>,
    adversary: A,
) -> (RunReport, Verdict) {
    let mut sim_cfg = sim.clone();
    sim_cfg.max_rounds = sim_cfg.max_rounds.min(cfg.total_rounds() + 2);
    let spec = match sim_cfg.population {
        PopulationMode::Sparse if sim_cfg.transport == TransportSpec::Lockstep => {
            sparse_spec(cfg, &inputs, &sim_cfg)
        }
        _ => None,
    };
    let report = match spec {
        Some(spec) => run_sparse(&sim_cfg, inputs, adversary, spec),
        None => {
            let cfg_for_factory = cfg.clone();
            let inputs_for_factory = inputs.clone();
            ba_net::execute(&sim_cfg, inputs, adversary, move |id, seed| {
                Box::new(IterNode::new(
                    cfg_for_factory.clone(),
                    id,
                    inputs_for_factory[id.index()],
                    seed,
                ))
            })
        }
    };
    let verdict = evaluate(Problem::Agreement, &report);
    (report, verdict)
}

/// Packages one iteration-family execution as a thread-dispatchable
/// [`Runnable`] (the uniform constructor sweep harnesses dispatch over).
pub fn runnable<A: Adversary<IterMsg> + Send + 'static>(
    cfg: &IterConfig,
    inputs: Vec<Bit>,
    adversary: A,
) -> Runnable {
    let cfg = cfg.clone();
    Runnable::new(move |sim| run(&cfg, sim, inputs, adversary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_fmine::{IdealMine, MineParams, SigMode};
    use ba_sim::{CorruptionModel, Passive};

    fn quad_cfg(n: usize, seed: u64) -> IterConfig {
        IterConfig::quadratic_half(n, Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal)), seed)
    }

    fn subq_cfg(n: usize, lambda: f64, seed: u64) -> IterConfig {
        IterConfig::subq_half(n, Arc::new(IdealMine::new(seed, MineParams::new(n, lambda))))
    }

    #[test]
    fn schedule_mapping() {
        assert_eq!(schedule(0), (1, Phase::Vote));
        assert_eq!(schedule(1), (1, Phase::Commit));
        assert_eq!(schedule(2), (2, Phase::Status));
        assert_eq!(schedule(3), (2, Phase::Propose));
        assert_eq!(schedule(4), (2, Phase::Vote));
        assert_eq!(schedule(5), (2, Phase::Commit));
        assert_eq!(schedule(6), (3, Phase::Status));
    }

    #[test]
    fn quadratic_validity_unanimous() {
        for bit in [false, true] {
            let cfg = quad_cfg(7, 1);
            let sim = SimConfig::new(7, 0, CorruptionModel::Static, 1);
            let (report, verdict) = run(&cfg, &sim, vec![bit; 7], Passive);
            assert!(verdict.all_ok(), "bit={bit}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(bit)));
            // Unanimous inputs decide in iteration 1: vote round 0, commit
            // round 1, terminate by round ~3.
            assert!(report.rounds_used <= 5, "rounds={}", report.rounds_used);
        }
    }

    #[test]
    fn quadratic_consistency_mixed_inputs() {
        for seed in 0..10 {
            let cfg = quad_cfg(9, seed);
            let sim = SimConfig::new(9, 0, CorruptionModel::Static, seed);
            let inputs: Vec<Bit> = (0..9).map(|i| i % 2 == 0).collect();
            let (report, verdict) = run(&cfg, &sim, inputs, Passive);
            assert!(verdict.all_ok(), "seed={seed}: {verdict:?}");
            // All honest leaders: termination within a few iterations.
            assert!(report.rounds_used < 20, "seed={seed} rounds={}", report.rounds_used);
        }
    }

    #[test]
    fn subq_validity_unanimous() {
        for seed in 0..5 {
            let cfg = subq_cfg(80, 24.0, seed);
            let sim = SimConfig::new(80, 0, CorruptionModel::Static, seed);
            let (report, verdict) = run(&cfg, &sim, vec![true; 80], Passive);
            assert!(verdict.all_ok(), "seed={seed}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(true)), "seed={seed}");
        }
    }

    #[test]
    fn subq_consistency_mixed_inputs() {
        let mut ok = 0;
        for seed in 0..10 {
            let cfg = subq_cfg(80, 24.0, seed);
            let sim = SimConfig::new(80, 0, CorruptionModel::Static, seed);
            let inputs: Vec<Bit> = (0..80).map(|i| i < 40).collect();
            let (_report, verdict) = run(&cfg, &sim, inputs, Passive);
            if verdict.all_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 8, "only {ok}/10 mixed-input subq runs fully succeeded");
    }

    #[test]
    fn subq_multicasts_do_not_scale_with_n() {
        let lambda = 20.0;
        let count = |n: usize| -> u64 {
            let cfg = subq_cfg(n, lambda, 3);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, 3);
            let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
            let (report, verdict) = run(&cfg, &sim, inputs, Passive);
            assert!(verdict.consistent, "n={n}");
            report.metrics.honest_multicasts
        };
        let small = count(64);
        let large = count(512);
        let ratio = large as f64 / small as f64;
        assert!(
            ratio < 3.0,
            "multicasts should be ~n-independent: n=64 -> {small}, n=512 -> {large}"
        );
    }

    #[test]
    fn quadratic_has_linear_multicasts_per_round() {
        let cfg = quad_cfg(21, 2);
        let sim = SimConfig::new(21, 0, CorruptionModel::Static, 2);
        let (report, _) = run(&cfg, &sim, vec![true; 21], Passive);
        // Everyone votes in round 0: at least n multicasts in the run.
        assert!(report.metrics.honest_multicasts >= 21);
    }

    #[test]
    fn oracle_leader_is_deterministic_and_varies() {
        let cfg = quad_cfg(11, 5);
        let l1 = cfg.oracle_leader(1).unwrap();
        let l1b = cfg.oracle_leader(1).unwrap();
        assert_eq!(l1, l1b);
        let distinct: std::collections::HashSet<_> =
            (1..20).map(|r| cfg.oracle_leader(r).unwrap()).collect();
        assert!(distinct.len() > 3, "20 draws should hit several leaders");
        assert!(subq_cfg(8, 4.0, 0).oracle_leader(1).is_none());
    }

    #[test]
    fn sparse_subq_byte_identical_to_dense() {
        for seed in 0..4 {
            let cfg = subq_cfg(96, 24.0, seed);
            let inputs: Vec<Bit> = (0..96).map(|i| i % 3 != 0).collect();
            let dense_sim = SimConfig::new(96, 0, CorruptionModel::Static, seed);
            let sparse_sim = dense_sim.clone().with_population(PopulationMode::Sparse);
            let (dense, dv) = run(&cfg, &dense_sim, inputs.clone(), Passive);
            let (sparse, sv) = run(&cfg, &sparse_sim, inputs.clone(), Passive);
            assert_eq!(sparse, dense, "seed={seed}");
            assert_eq!(format!("{sv:?}"), format!("{dv:?}"), "seed={seed}");
        }
    }

    #[test]
    fn sparse_materializes_committees_not_population() {
        // The memory win needs lambda << n: with per-tag eligibility
        // probability 16/512, the union of all phase committees over a short
        // run stays well below n.
        let n = 512;
        let cfg = subq_cfg(n, 16.0, 5);
        let inputs = vec![true; n]; // unanimous: decides in iteration 1
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, 5)
            .with_population(PopulationMode::Sparse);
        let (report, verdict) = run(&cfg, &sim, inputs, Passive);
        assert!(verdict.all_ok(), "{verdict:?}");
        assert!(
            report.metrics.peak_live_nodes < (n / 2) as u64,
            "peak_live={} should be far below n={n}",
            report.metrics.peak_live_nodes
        );
    }

    #[test]
    fn sparse_falls_back_to_dense_for_signed_regime() {
        let cfg = quad_cfg(9, 4);
        assert!(!cfg.supports_sparse());
        let dense_sim = SimConfig::new(9, 0, CorruptionModel::Static, 4);
        let sparse_sim = dense_sim.clone().with_population(PopulationMode::Sparse);
        let inputs: Vec<Bit> = (0..9).map(|i| i % 2 == 0).collect();
        let (dense, _) = run(&cfg, &dense_sim, inputs.clone(), Passive);
        let (fallback, _) = run(&cfg, &sparse_sim, inputs, Passive);
        assert_eq!(fallback, dense);
        // Dense fallback materializes everyone.
        assert_eq!(fallback.metrics.peak_live_nodes, 9);
    }

    #[test]
    fn expected_constant_iterations_quadratic() {
        // Mean termination round over seeds should be far below the cap —
        // the expected-O(1)-rounds claim (Corollary 16).
        let mut total_rounds = 0u64;
        let runs = 20;
        for seed in 0..runs {
            let cfg = quad_cfg(9, seed);
            let sim = SimConfig::new(9, 0, CorruptionModel::Static, seed);
            let inputs: Vec<Bit> = (0..9).map(|i| i % 3 == 0).collect();
            let (report, verdict) = run(&cfg, &sim, inputs, Passive);
            assert!(verdict.terminated, "seed={seed}");
            total_rounds += report.rounds_used;
        }
        let mean = total_rounds as f64 / runs as f64;
        assert!(mean < 16.0, "mean rounds {mean} should be small (expected O(1) iterations)");
    }
}
