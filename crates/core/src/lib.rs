//! # ba-core
//!
//! The Byzantine agreement protocols of *"Communication Complexity of
//! Byzantine Agreement, Revisited"* (Abraham, Chan, Dolev, Nayak, Pass, Ren,
//! Shi — PODC 2019), plus the baselines and ablations the paper discusses.
//!
//! ## Protocol inventory
//!
//! | Constructor | Paper section | Resilience | Rounds | Honest multicasts |
//! |-------------|---------------|-----------:|-------:|-------------------|
//! | [`epoch::EpochConfig::warmup_third`] | §3.1 | `< n/3` | fixed `2R` | `Θ(nR)` |
//! | [`epoch::EpochConfig::subq_third`] | §3.2 | `< (1/3−ε)n` | fixed `2R` | `Θ(λR)` |
//! | [`epoch::EpochConfig::subq_shared`] | §3.3 Remark (insecure ablation) | — | fixed `2R` | `Θ(λR)` |
//! | [`epoch::EpochConfig::chen_micali`] | §3.2 strawman | needs memory erasure | fixed `2R` | `Θ(λR)` |
//! | [`iter::IterConfig::quadratic_half`] | App. C.1 | `< n/2` | expected O(1) | `Θ(n)`/round |
//! | [`iter::IterConfig::subq_half`] | App. C.2 (**Theorem 2**) | `< (1/2−ε)n` | expected O(1) | `Θ(λ)`/round |
//! | [`dolev_strong::DsConfig`] | baseline \[13\] | `< n − 1` | `f + 2` | `Θ(n)` |
//! | [`broadcast::run_iter_bb`] | §1.1 reduction | inherits BA | BA + 1 | BA + 1 |
//! | [`momose_ren::MrConfig::half`] | competitor: Momose–Ren (arXiv 2007.13175) | `< n/2` | `O(t)` views | `O(1)`/view + O(n) unicasts |
//! | [`cks::CksConfig::adaptive`] | competitor: Cohen–Keidar–Spiegelman (arXiv 2202.09123) | `< n/3`(repro) | `O(f)` phases | `O(1)`/phase + O(n) unicasts |
//!
//! All protocols run over [`ba_sim`]'s synchronous engine under any of the
//! paper's three corruption models, and over either eligibility backend
//! (ideal `F_mine` of Figure 1 or the Appendix D VRF compiler) via
//! [`auth::Auth`].
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use ba_core::iter::{self, IterConfig};
//! use ba_fmine::{IdealMine, MineParams};
//! use ba_sim::{CorruptionModel, Passive, SimConfig};
//!
//! // Theorem 2's protocol: n = 100 nodes, expected committee size 24.
//! let n = 100;
//! let elig = Arc::new(IdealMine::new(42, MineParams::new(n, 24.0)));
//! let cfg = IterConfig::subq_half(n, elig);
//! let sim = SimConfig::new(n, 0, CorruptionModel::Static, 42);
//! let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
//!
//! let (report, verdict) = iter::run(&cfg, &sim, inputs, Passive);
//! assert!(verdict.all_ok());
//! // Subquadratic: per-round honest multicasts track the committee size
//! // (~λ), not n — with full participation this would be ~n per round.
//! let per_round = report.metrics.honest_multicasts / report.rounds_used.max(1);
//! assert!(per_round < n as u64 / 2, "per-round multicasts: {per_round}");
//! ```

pub mod auth;
pub mod ba_from_bb;
pub mod broadcast;
pub mod cert;
pub mod cks;
pub mod dolev_strong;
pub mod epoch;
pub mod iter;
pub mod ledger;
pub mod momose_ren;
pub mod runnable;

pub use auth::{Auth, Evidence, FsService};
pub use cert::{
    AggregateQuorum, CertBody, CertEncoding, Certificate, CommitQuorum, CommitRef, VoteRef,
};
pub use runnable::Runnable;
