//! The Dolev–Strong authenticated Byzantine Broadcast baseline \[13\].
//!
//! Classic `f + 1`-round protocol: the designated sender signs its bit; a
//! node that *extracts* a value `b` in round `k` (i.e. receives `b` carrying
//! a chain of `k` distinct signatures beginning with the sender's) adds its
//! own signature and relays. After `f + 1` rounds, a node outputs the unique
//! extracted value, or the default bit `0` if it extracted zero or two
//! values.
//!
//! This is the paper's reference point for classical quadratic
//! (`O(n²f)`-message) BB secure against a **strongly adaptive** adversary —
//! the regime where Theorem 1 says subquadratic is impossible. It appears in
//! experiments E1 and E10.

use std::sync::Arc;

use ba_fmine::{Keychain, Sig};

use crate::runnable::Runnable;
use ba_sim::{
    evaluate, Adversary, Bit, Incoming, Message, NodeId, Outbox, Problem, Protocol, Round,
    RunReport, SimConfig, Verdict,
};

/// A signature chain entry: the signer and its signature over the value.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainSig {
    /// The signer.
    pub signer: NodeId,
    /// Signature over the canonical statement for the chained bit.
    pub sig: Sig,
}

/// A Dolev–Strong relay message: a bit plus its signature chain.
#[derive(Clone, Debug, PartialEq)]
pub struct DsMsg {
    /// The relayed bit.
    pub bit: Bit,
    /// Signature chain; `chain[0]` must be the designated sender.
    pub chain: Vec<ChainSig>,
}

impl Message for DsMsg {
    fn size_bits(&self) -> usize {
        1 + self.chain.iter().map(|c| 32 + c.sig.size_bits()).sum::<usize>()
    }
}

/// Canonical signed statement for bit `b`: all chain signatures cover the
/// same statement (the classic formulation).
fn statement(bit: Bit) -> [u8; 16] {
    let mut s = [0u8; 16];
    s[..15].copy_from_slice(b"dolev-strong/v1");
    s[15] = bit as u8;
    s
}

/// Configuration for a Dolev–Strong instance.
#[derive(Clone)]
pub struct DsConfig {
    /// Number of nodes.
    pub n: usize,
    /// Corruption bound `f`; the protocol runs `f + 1` rounds.
    pub f: usize,
    /// Designated sender (paper convention: node 0).
    pub sender: NodeId,
    /// Signing service.
    pub keychain: Arc<Keychain>,
}

/// One Dolev–Strong node.
pub struct DsNode {
    cfg: DsConfig,
    id: NodeId,
    input: Bit,
    /// Extracted values.
    extracted: [bool; 2],
    output: Option<Bit>,
    done: bool,
}

impl DsNode {
    /// Creates a node (`input` is meaningful only for the sender).
    pub fn new(cfg: DsConfig, id: NodeId, input: Bit) -> DsNode {
        DsNode { cfg, id, input, extracted: [false, false], output: None, done: false }
    }

    /// Validates a chain for round `k`: length `>= k`, first signer is the
    /// sender, signers distinct, all signatures valid, and none signed by us
    /// (we only relay fresh chains).
    fn chain_valid(&self, msg: &DsMsg, k: usize) -> bool {
        if msg.chain.len() < k || msg.chain.is_empty() {
            return false;
        }
        if msg.chain[0].signer != self.cfg.sender {
            return false;
        }
        let stmt = statement(msg.bit);
        let mut seen: Vec<NodeId> = Vec::with_capacity(msg.chain.len());
        for entry in &msg.chain {
            if seen.contains(&entry.signer) {
                return false;
            }
            seen.push(entry.signer);
            if !self.cfg.keychain.verify(entry.signer, &stmt, &entry.sig) {
                return false;
            }
        }
        true
    }
}

impl Protocol<DsMsg> for DsNode {
    fn step(&mut self, round: Round, inbox: &[Incoming<DsMsg>], out: &mut Outbox<DsMsg>) {
        let r = round.0 as usize;
        let rounds = self.cfg.f + 1;
        if r == 0 {
            if self.id == self.cfg.sender {
                let chain = vec![ChainSig {
                    signer: self.id,
                    sig: self.cfg.keychain.sign(self.id, &statement(self.input)),
                }];
                self.extracted[self.input as usize] = true;
                out.multicast(DsMsg { bit: self.input, chain });
            }
            return;
        }
        if r <= rounds {
            // Messages delivered at round r carry chains built in round r-1,
            // so they must have length >= r.
            for m in inbox {
                let bit = m.msg.bit;
                if self.extracted[bit as usize] {
                    continue;
                }
                if !self.chain_valid(&m.msg, r) {
                    continue;
                }
                if m.msg.chain.iter().any(|c| c.signer == self.id) {
                    continue;
                }
                self.extracted[bit as usize] = true;
                // Relay with our signature appended — except in the last
                // round, where relaying is pointless.
                if r < rounds {
                    let mut chain = m.msg.chain.clone();
                    chain.push(ChainSig {
                        signer: self.id,
                        sig: self.cfg.keychain.sign(self.id, &statement(bit)),
                    });
                    out.multicast(DsMsg { bit, chain });
                }
            }
        }
        if r == rounds {
            self.output = Some(match self.extracted {
                [false, true] => true,
                [true, false] => false,
                // Zero or two extracted values: the default bit.
                _ => false,
            });
            self.done = true;
        }
    }

    fn output(&self) -> Option<Bit> {
        self.output
    }

    fn halted(&self) -> bool {
        self.done
    }
}

/// Runs a Dolev–Strong broadcast and evaluates the broadcast verdict.
pub fn run<A: Adversary<DsMsg> + Send>(
    cfg: &DsConfig,
    sim: &SimConfig,
    sender_input: Bit,
    adversary: A,
) -> (RunReport, Verdict) {
    let mut sim_cfg = sim.clone();
    sim_cfg.max_rounds = sim_cfg.max_rounds.max(cfg.f as u64 + 3);
    let mut inputs = vec![false; cfg.n];
    inputs[cfg.sender.index()] = sender_input;
    let cfg_for_factory = cfg.clone();
    let inputs_for_factory = inputs.clone();
    let report = ba_net::execute(&sim_cfg, inputs, adversary, move |id, _seed| {
        Box::new(DsNode::new(cfg_for_factory.clone(), id, inputs_for_factory[id.index()]))
    });
    let verdict = evaluate(Problem::Broadcast { sender: cfg.sender }, &report);
    (report, verdict)
}

/// Packages one Dolev–Strong broadcast as a thread-dispatchable
/// [`Runnable`] (the uniform constructor sweep harnesses dispatch over).
pub fn runnable<A: Adversary<DsMsg> + Send + 'static>(
    cfg: &DsConfig,
    sender_input: Bit,
    adversary: A,
) -> Runnable {
    let cfg = cfg.clone();
    Runnable::new(move |sim| run(&cfg, sim, sender_input, adversary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_fmine::SigMode;
    use ba_sim::{CorruptionModel, Passive};

    fn cfg(n: usize, f: usize) -> DsConfig {
        DsConfig {
            n,
            f,
            sender: NodeId(0),
            keychain: Arc::new(Keychain::from_seed(1, n, SigMode::Ideal)),
        }
    }

    #[test]
    fn honest_sender_broadcasts_both_bits() {
        for bit in [false, true] {
            let c = cfg(5, 2);
            let sim = SimConfig::new(5, 0, CorruptionModel::Static, 1);
            let (report, verdict) = run(&c, &sim, bit, Passive);
            assert!(verdict.all_ok(), "bit={bit}: {verdict:?}");
            assert!(report.outputs.iter().all(|o| *o == Some(bit)));
            assert_eq!(report.rounds_used, 3 + 1); // f+1 rounds + round 0... sender round + f+1
        }
    }

    #[test]
    fn silent_sender_defaults_to_zero() {
        struct MuteSender;
        impl Adversary<DsMsg> for MuteSender {
            fn setup(&mut self, ctx: &mut ba_sim::AdvCtx<'_, DsMsg>) {
                ctx.corrupt(NodeId(0)).unwrap();
            }
            fn corrupt_outbox(
                &mut self,
                _node: NodeId,
                _planned: Vec<(ba_sim::Recipient, DsMsg)>,
                _round: Round,
            ) -> Vec<(ba_sim::Recipient, DsMsg)> {
                Vec::new()
            }
        }
        let c = cfg(5, 2);
        let sim = SimConfig::new(5, 2, CorruptionModel::Static, 1);
        let (report, verdict) = run(&c, &sim, true, MuteSender);
        assert!(verdict.consistent && verdict.terminated);
        for i in 1..5 {
            assert_eq!(report.outputs[i], Some(false), "non-sender {i} must default");
        }
    }

    #[test]
    fn equivocating_sender_yields_consistent_default() {
        // The sender signs both bits and sends 0 to half, 1 to the other
        // half; Dolev-Strong forces agreement anyway.
        struct Equivocator {
            keychain: Arc<Keychain>,
        }
        impl Adversary<DsMsg> for Equivocator {
            fn setup(&mut self, ctx: &mut ba_sim::AdvCtx<'_, DsMsg>) {
                ctx.corrupt(NodeId(0)).unwrap();
            }
            fn corrupt_outbox(
                &mut self,
                node: NodeId,
                _planned: Vec<(ba_sim::Recipient, DsMsg)>,
                round: Round,
            ) -> Vec<(ba_sim::Recipient, DsMsg)> {
                if round.0 != 0 {
                    return Vec::new();
                }
                let mk = |bit: Bit| DsMsg {
                    bit,
                    chain: vec![ChainSig {
                        signer: node,
                        sig: self.keychain.sign(node, &statement(bit)),
                    }],
                };
                vec![
                    (ba_sim::Recipient::One(NodeId(1)), mk(false)),
                    (ba_sim::Recipient::One(NodeId(2)), mk(false)),
                    (ba_sim::Recipient::One(NodeId(3)), mk(true)),
                    (ba_sim::Recipient::One(NodeId(4)), mk(true)),
                ]
            }
        }
        let c = cfg(5, 2);
        let adversary = Equivocator { keychain: c.keychain.clone() };
        let sim = SimConfig::new(5, 2, CorruptionModel::Static, 1);
        let (report, verdict) = run(&c, &sim, true, adversary);
        assert!(verdict.consistent, "{report:?}");
        assert!(verdict.terminated);
        // Everyone extracted both values by relaying, so all default to 0.
        for i in 1..5 {
            assert_eq!(report.outputs[i], Some(false));
        }
    }

    #[test]
    fn forged_chain_rejected() {
        // A corrupt non-sender fabricates a chain not rooted at the sender.
        struct Forger {
            keychain: Arc<Keychain>,
        }
        impl Adversary<DsMsg> for Forger {
            fn setup(&mut self, ctx: &mut ba_sim::AdvCtx<'_, DsMsg>) {
                ctx.corrupt(NodeId(1)).unwrap();
            }
            fn corrupt_outbox(
                &mut self,
                node: NodeId,
                _planned: Vec<(ba_sim::Recipient, DsMsg)>,
                round: Round,
            ) -> Vec<(ba_sim::Recipient, DsMsg)> {
                if round.0 != 0 {
                    return Vec::new();
                }
                // Chain rooted at the corrupt node itself, not the sender.
                vec![(
                    ba_sim::Recipient::All,
                    DsMsg {
                        bit: true,
                        chain: vec![ChainSig {
                            signer: node,
                            sig: self.keychain.sign(node, &statement(true)),
                        }],
                    },
                )]
            }
        }
        let c = cfg(5, 2);
        let adversary = Forger { keychain: c.keychain.clone() };
        let sim = SimConfig::new(5, 2, CorruptionModel::Static, 1);
        // Honest sender sends 0; the forged "1" chain must be ignored.
        let (report, verdict) = run(&c, &sim, false, adversary);
        assert!(verdict.all_ok());
        for i in [0usize, 2, 3, 4] {
            assert_eq!(report.outputs[i], Some(false));
        }
    }

    #[test]
    fn message_count_is_superquadratic_in_chains() {
        let c = cfg(9, 4);
        let sim = SimConfig::new(9, 0, CorruptionModel::Static, 1);
        let (report, _) = run(&c, &sim, true, Passive);
        // Every node relays once: ~n multicasts = n^2 classical messages.
        assert!(report.metrics.honest_multicasts >= 9);
        assert!(report.metrics.classical_messages(9) >= 81);
    }
}
