//! Property-based tests for certificates, evidence, and tag handling.

use std::sync::Arc;

use ba_core::auth::Auth;
use ba_core::cert::{verify_commit_quorum, CertBody, Certificate, CommitRef, VoteRef};
use ba_fmine::{Keychain, MineTag, MsgKind, SigMode};
use ba_sim::NodeId;
use proptest::prelude::*;

fn signed_auth(n: usize) -> Auth {
    Auth::Signed { keychain: Arc::new(Keychain::from_seed(1, n, SigMode::Ideal)) }
}

fn arb_kind() -> impl Strategy<Value = MsgKind> {
    prop_oneof![
        Just(MsgKind::Propose),
        Just(MsgKind::Ack),
        Just(MsgKind::Status),
        Just(MsgKind::Vote),
        Just(MsgKind::Commit),
        Just(MsgKind::Terminate),
    ]
}

fn arb_tag() -> impl Strategy<Value = MineTag> {
    (arb_kind(), any::<u64>(), any::<Option<bool>>(), any::<bool>()).prop_map(
        |(kind, iter, bit, shared)| match (bit, shared) {
            (_, true) => MineTag::shared(kind, iter),
            (Some(b), false) => MineTag::new(kind, iter, b),
            (None, false) => MineTag::bot(kind, iter),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tag_encoding_is_injective(a in arb_tag(), b in arb_tag()) {
        if a != b {
            prop_assert_ne!(a.to_bytes(), b.to_bytes(), "{} vs {}", a, b);
        } else {
            prop_assert_eq!(a.to_bytes(), b.to_bytes());
        }
    }

    #[test]
    fn sharedized_tags_are_bit_independent(kind in arb_kind(), iter in any::<u64>()) {
        let t0 = MineTag::new(kind, iter, false).sharedized();
        let t1 = MineTag::new(kind, iter, true).sharedized();
        prop_assert_eq!(t0, t1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn certificates_verify_iff_quorum_distinct_valid(
        voters in prop::collection::btree_set(0usize..20, 1..20),
        quorum in 1usize..20,
        iter in 1u64..50,
        bit in any::<bool>(),
    ) {
        let auth = signed_auth(20);
        let tag = MineTag::new(MsgKind::Vote, iter, bit);
        let votes: Vec<VoteRef> = voters
            .iter()
            .map(|&i| VoteRef { from: NodeId(i), ev: auth.attest(NodeId(i), &tag).unwrap() })
            .collect();
        let cert = Certificate { iter, bit, body: CertBody::Vector(votes) };
        prop_assert_eq!(cert.verify(&auth, quorum), voters.len() >= quorum);
    }

    #[test]
    fn duplicated_votes_never_help(
        voters in prop::collection::btree_set(0usize..10, 1..6),
        dup_count in 1usize..5,
        iter in 1u64..10,
    ) {
        let auth = signed_auth(10);
        let tag = MineTag::new(MsgKind::Vote, iter, true);
        let mut votes: Vec<VoteRef> = voters
            .iter()
            .map(|&i| VoteRef { from: NodeId(i), ev: auth.attest(NodeId(i), &tag).unwrap() })
            .collect();
        let first = votes[0].clone();
        for _ in 0..dup_count {
            votes.push(first.clone());
        }
        let cert = Certificate { iter, bit: true, body: CertBody::Vector(votes) };
        // Quorum above the distinct count must fail despite padding.
        prop_assert!(!cert.verify(&auth, voters.len() + 1));
    }

    #[test]
    fn commit_quorum_rejects_wrong_context(
        voters in prop::collection::btree_set(0usize..12, 3..12),
        iter in 1u64..20,
        bit in any::<bool>(),
    ) {
        let auth = signed_auth(12);
        let tag = MineTag::new(MsgKind::Commit, iter, bit);
        let commits: Vec<CommitRef> = voters
            .iter()
            .map(|&i| CommitRef { from: NodeId(i), ev: auth.attest(NodeId(i), &tag).unwrap() })
            .collect();
        let q = voters.len();
        prop_assert!(verify_commit_quorum(&commits, iter, bit, &auth, q));
        prop_assert!(!verify_commit_quorum(&commits, iter + 1, bit, &auth, q));
        prop_assert!(!verify_commit_quorum(&commits, iter, !bit, &auth, q));
        prop_assert!(!verify_commit_quorum(&commits, iter, bit, &auth, q + 1));
    }

    #[test]
    fn evidence_does_not_transfer_between_nodes(
        signer in 0usize..8,
        claimer in 0usize..8,
        iter in 1u64..20,
    ) {
        let auth = signed_auth(8);
        let tag = MineTag::new(MsgKind::Vote, iter, true);
        let ev = auth.attest(NodeId(signer), &tag).unwrap();
        let transferable = auth.verify(NodeId(claimer), &tag, &ev);
        prop_assert_eq!(transferable, signer == claimer);
    }

    #[test]
    fn rank_respects_iteration_order(i1 in 1u64..100, i2 in 1u64..100) {
        let auth = signed_auth(4);
        let tag = |it| MineTag::new(MsgKind::Vote, it, true);
        let mk = |it| {
            Some(Certificate {
                iter: it,
                bit: true,
                body: CertBody::Vector(vec![VoteRef {
                    from: NodeId(0),
                    ev: auth.attest(NodeId(0), &tag(it)).unwrap(),
                }]),
            })
        };
        let c1 = mk(i1);
        let c2 = mk(i2);
        prop_assert_eq!(
            Certificate::rank(&c1) < Certificate::rank(&c2),
            i1 < i2
        );
        prop_assert!(Certificate::rank(&None) < Certificate::rank(&c1));
    }
}
