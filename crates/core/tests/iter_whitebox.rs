//! White-box tests driving `IterNode` step by step through hand-crafted
//! inboxes — the corner cases of the Appendix C state machine.

use std::sync::Arc;

use ba_core::auth::Auth;
use ba_core::cert::{CertBody, Certificate, CommitRef, VoteRef};
use ba_core::iter::{IterConfig, IterMsg, IterNode, ProposalRef};
use ba_fmine::{Keychain, MineTag, MsgKind, SigMode};
use ba_sim::{Incoming, NodeId, Outbox, Protocol, Round};

const N: usize = 7;
const QUORUM: usize = 4; // n/2 + 1

fn setup(seed: u64) -> (IterConfig, Arc<Keychain>) {
    let kc = Arc::new(Keychain::from_seed(seed, N, SigMode::Ideal));
    let cfg = IterConfig::quadratic_half(N, kc.clone(), seed);
    (cfg, kc)
}

fn attest(auth: &Auth, node: usize, tag: MineTag) -> ba_core::auth::Evidence {
    auth.attest(NodeId(node), &tag).expect("signed mode always attests")
}

fn vote_msg(
    auth: &Auth,
    node: usize,
    iter: u64,
    bit: bool,
    just: Option<ProposalRef>,
) -> Incoming<IterMsg> {
    Incoming::new(
        NodeId(node),
        IterMsg::Vote {
            iter,
            bit,
            just,
            ev: attest(auth, node, MineTag::new(MsgKind::Vote, iter, bit)),
        },
    )
}

fn cert_for(auth: &Auth, iter: u64, bit: bool, voters: &[usize]) -> Certificate {
    Certificate {
        iter,
        bit,
        body: CertBody::Vector(
            voters
                .iter()
                .map(|&i| VoteRef {
                    from: NodeId(i),
                    ev: attest(auth, i, MineTag::new(MsgKind::Vote, iter, bit)),
                })
                .collect(),
        ),
    }
}

#[test]
fn iteration1_votes_own_input_and_commits_on_quorum() {
    let (cfg, _kc) = setup(1);
    let auth = cfg.auth.clone();
    let mut node = IterNode::new(cfg, NodeId(0), true, 99);

    // Round 0: vote own input.
    let mut out = Outbox::new();
    node.step(Round(0), &[], &mut out);
    let sends = out.take();
    assert_eq!(sends.len(), 1);
    assert!(matches!(&sends[0].1, IterMsg::Vote { iter: 1, bit: true, just: None, .. }));

    // Round 1 (commit phase): deliver quorum of matching votes.
    let inbox: Vec<Incoming<IterMsg>> =
        (1..QUORUM).map(|i| vote_msg(&auth, i, 1, true, None)).collect();
    let mut out = Outbox::new();
    node.step(Round(1), &inbox, &mut out);
    let sends = out.take();
    assert_eq!(sends.len(), 1, "quorum + no opposition => commit");
    match &sends[0].1 {
        IterMsg::Commit { iter: 1, bit: true, cert, .. } => {
            assert!(cert.verify(&auth, QUORUM));
        }
        other => panic!("expected commit, got {other:?}"),
    }
}

#[test]
fn single_opposing_vote_blocks_commit() {
    let (cfg, _kc) = setup(2);
    let auth = cfg.auth.clone();
    let mut node = IterNode::new(cfg, NodeId(0), true, 99);
    let mut out = Outbox::new();
    node.step(Round(0), &[], &mut out);

    let mut inbox: Vec<Incoming<IterMsg>> =
        (1..=QUORUM).map(|i| vote_msg(&auth, i, 1, true, None)).collect();
    // One justified opposing vote (iteration-1 votes need no proposal).
    inbox.push(vote_msg(&auth, 6, 1, false, None));
    let mut out = Outbox::new();
    node.step(Round(1), &inbox, &mut out);
    assert!(out.take().is_empty(), "a conflicting vote must block the commit");
}

#[test]
fn unjustified_vote_is_ignored_after_iteration1() {
    let (cfg, _kc) = setup(3);
    let auth = cfg.auth.clone();
    let mut node = IterNode::new(cfg.clone(), NodeId(0), true, 99);
    // Fast-forward to iteration 2's commit round (round 5) by stepping
    // through empty rounds.
    for r in 0..5u64 {
        let mut out = Outbox::new();
        node.step(Round(r), &[], &mut out);
    }
    // Deliver a quorum of iteration-2 votes WITHOUT justification: all
    // dropped, so no commit.
    let inbox: Vec<Incoming<IterMsg>> =
        (1..=QUORUM).map(|i| vote_msg(&auth, i, 2, true, None)).collect();
    let mut out = Outbox::new();
    node.step(Round(5), &inbox, &mut out);
    assert!(out.take().is_empty(), "unjustified iteration-2 votes must not count");
    let _ = cfg;
}

#[test]
fn status_reports_bot_without_certificate() {
    let (cfg, _kc) = setup(4);
    let mut node = IterNode::new(cfg, NodeId(0), false, 99);
    for r in 0..2u64 {
        let mut out = Outbox::new();
        node.step(Round(r), &[], &mut out);
    }
    // Round 2 = iteration 2 status phase; no certificate known -> ⊥ status.
    let mut out = Outbox::new();
    node.step(Round(2), &[], &mut out);
    let sends = out.take();
    assert_eq!(sends.len(), 1);
    assert!(matches!(&sends[0].1, IterMsg::Status { iter: 2, bit: None, cert: None, .. }));
}

#[test]
fn status_reports_highest_certificate() {
    let (cfg, _kc) = setup(5);
    let auth = cfg.auth.clone();
    let mut node = IterNode::new(cfg, NodeId(0), false, 99);
    let mut out = Outbox::new();
    node.step(Round(0), &[], &mut out);
    // Deliver an iteration-1 certificate for bit true inside a commit.
    let cert = cert_for(&auth, 1, true, &[1, 2, 3, 4]);
    let commit = Incoming::new(
        NodeId(1),
        IterMsg::Commit {
            iter: 1,
            bit: true,
            cert: cert.clone(),
            ev: attest(&auth, 1, MineTag::new(MsgKind::Commit, 1, true)),
        },
    );
    let mut out = Outbox::new();
    node.step(Round(1), &[commit], &mut out);
    // Iteration 2 status round: report (true, cert@1).
    let mut out = Outbox::new();
    node.step(Round(2), &[], &mut out);
    let sends = out.take();
    match &sends[0].1 {
        IterMsg::Status { iter: 2, bit: Some(true), cert: Some(c), .. } => {
            assert_eq!(c.iter, 1);
        }
        other => panic!("expected certified status, got {other:?}"),
    }
}

#[test]
fn malformed_proposal_certificate_is_dropped() {
    let (cfg, _kc) = setup(6);
    let auth = cfg.auth.clone();
    let leader = cfg.oracle_leader(2).unwrap();
    let mut node = IterNode::new(cfg.clone(), NodeId(0), false, 99);
    for r in 0..3u64 {
        let mut out = Outbox::new();
        node.step(Round(r), &[], &mut out);
    }
    // Proposal whose attached certificate certifies the OTHER bit: dropped,
    // so the node abstains at the vote phase.
    let wrong_cert = cert_for(&auth, 1, false, &[1, 2, 3, 4]);
    let prop = Incoming::new(
        leader,
        IterMsg::Propose {
            iter: 2,
            bit: true,
            cert: Some(wrong_cert),
            ev: attest(&auth, leader.index(), MineTag::new(MsgKind::Propose, 2, true)),
        },
    );
    let mut out = Outbox::new();
    node.step(Round(4), &[prop], &mut out); // vote phase of iteration 2
    assert!(out.take().is_empty(), "malformed proposal must not induce a vote");
}

#[test]
fn conflicting_proposals_cause_abstention() {
    let (cfg, _kc) = setup(7);
    let auth = cfg.auth.clone();
    let leader = cfg.oracle_leader(2).unwrap();
    let mut node = IterNode::new(cfg.clone(), NodeId(0), false, 99);
    for r in 0..4u64 {
        let mut out = Outbox::new();
        node.step(Round(r), &[], &mut out);
    }
    // Vote phase receives two conflicting (valid) proposals from the leader.
    let mk = |bit: bool| {
        Incoming::new(
            leader,
            IterMsg::Propose {
                iter: 2,
                bit,
                cert: None,
                ev: attest(&auth, leader.index(), MineTag::new(MsgKind::Propose, 2, bit)),
            },
        )
    };
    let mut out = Outbox::new();
    node.step(Round(4), &[mk(false), mk(true)], &mut out);
    assert!(out.take().is_empty(), "equivocating leader => abstain");
}

#[test]
fn proposal_from_non_leader_is_ignored_in_oracle_mode() {
    let (cfg, _kc) = setup(8);
    let auth = cfg.auth.clone();
    let leader = cfg.oracle_leader(2).unwrap();
    let impostor = NodeId((leader.index() + 1) % N);
    let mut node = IterNode::new(cfg.clone(), NodeId(0), false, 99);
    for r in 0..4u64 {
        let mut out = Outbox::new();
        node.step(Round(r), &[], &mut out);
    }
    let prop = Incoming::new(
        impostor,
        IterMsg::Propose {
            iter: 2,
            bit: true,
            cert: None,
            ev: attest(&auth, impostor.index(), MineTag::new(MsgKind::Propose, 2, true)),
        },
    );
    let mut out = Outbox::new();
    node.step(Round(4), &[prop], &mut out);
    assert!(out.take().is_empty(), "non-leader proposals must be ignored");
}

#[test]
fn valid_terminate_adopts_and_relays() {
    let (cfg, _kc) = setup(9);
    let auth = cfg.auth.clone();
    let mut node = IterNode::new(cfg, NodeId(0), false, 99);
    let mut out = Outbox::new();
    node.step(Round(0), &[], &mut out);

    let commits: Vec<CommitRef> = (1..=QUORUM)
        .map(|i| CommitRef {
            from: NodeId(i),
            ev: attest(&auth, i, MineTag::new(MsgKind::Commit, 1, true)),
        })
        .collect();
    let term = Incoming::new(
        NodeId(1),
        IterMsg::Terminate {
            iter: 1,
            bit: true,
            commits: ba_core::CommitQuorum::Vector(commits),
            ev: attest(&auth, 1, MineTag::terminate(true)),
        },
    );
    let mut out = Outbox::new();
    node.step(Round(1), &[term], &mut out);
    let sends = out.take();
    assert_eq!(node.output(), Some(true));
    assert!(node.halted());
    assert_eq!(sends.len(), 1, "the node must relay Terminate");
    assert!(matches!(&sends[0].1, IterMsg::Terminate { bit: true, .. }));
}

#[test]
fn terminate_with_underfilled_commits_is_rejected() {
    let (cfg, _kc) = setup(10);
    let auth = cfg.auth.clone();
    let mut node = IterNode::new(cfg, NodeId(0), false, 99);
    let mut out = Outbox::new();
    node.step(Round(0), &[], &mut out);

    let commits: Vec<CommitRef> = (1..QUORUM) // one short of quorum
        .map(|i| CommitRef {
            from: NodeId(i),
            ev: attest(&auth, i, MineTag::new(MsgKind::Commit, 1, true)),
        })
        .collect();
    let term = Incoming::new(
        NodeId(1),
        IterMsg::Terminate {
            iter: 1,
            bit: true,
            commits: ba_core::CommitQuorum::Vector(commits),
            ev: attest(&auth, 1, MineTag::terminate(true)),
        },
    );
    let mut out = Outbox::new();
    node.step(Round(1), &[term], &mut out);
    assert_eq!(node.output(), None, "underfilled Terminate must be ignored");
    assert!(!node.halted());
}

#[test]
fn higher_opposite_certificate_blocks_vote() {
    let (cfg, _kc) = setup(11);
    let auth = cfg.auth.clone();
    let leader3 = cfg.oracle_leader(3).unwrap();
    let mut node = IterNode::new(cfg.clone(), NodeId(0), false, 99);
    for r in 0..6u64 {
        let mut out = Outbox::new();
        node.step(Round(r), &[], &mut out);
    }
    // Round 6 = iteration 3 status. Teach the node an iteration-2 cert for
    // bit false via a status message.
    let cert2 = cert_for(&auth, 2, false, &[1, 2, 3, 4]);
    let status = Incoming::new(
        NodeId(2),
        IterMsg::Status {
            iter: 3,
            bit: Some(false),
            cert: Some(cert2),
            ev: attest(&auth, 2, MineTag::new(MsgKind::Status, 3, false)),
        },
    );
    let mut out = Outbox::new();
    node.step(Round(6), &[status], &mut out);
    let mut out = Outbox::new();
    node.step(Round(7), &[], &mut out); // propose phase (we are not leader... may be)
                                        // Vote phase: leader proposes TRUE with only an iteration-1 cert — the
                                        // node knows a strictly higher cert for FALSE, so it must abstain.
    let cert1 = cert_for(&auth, 1, true, &[1, 2, 3, 4]);
    let prop = Incoming::new(
        leader3,
        IterMsg::Propose {
            iter: 3,
            bit: true,
            cert: Some(cert1),
            ev: attest(&auth, leader3.index(), MineTag::new(MsgKind::Propose, 3, true)),
        },
    );
    let mut out = Outbox::new();
    node.step(Round(8), &[prop], &mut out);
    let votes: Vec<_> =
        out.take().into_iter().filter(|(_, m)| matches!(m, IterMsg::Vote { .. })).collect();
    assert!(votes.is_empty(), "stale proposal must lose to the higher certificate");
}
