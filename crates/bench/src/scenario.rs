//! Declarative experiment scenarios.
//!
//! A [`Scenario`] describes one runnable configuration — protocol family,
//! eligibility mode (ideal `F_mine` vs the real VRF compiler), adversary,
//! corruption model, input pattern, and sizes — without constructing
//! anything. [`Scenario::run_seed`] materializes the configuration for one
//! seed, dispatches it through `ba-core`'s uniform [`Runnable`]
//! constructors, and distills the execution into a [`RunRecord`] of named
//! observables.
//!
//! Alongside the five protocol families, measurement workloads (the
//! Theorem 3/4 lower-bound constructions and the direct `F_mine` sampling
//! experiments) run through the same surface so one [`crate::Sweep`] grid
//! can mix them freely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use ba_adversary::{
    AdaptiveEclipse, CertForger, CommitteeEraser, CrashAt, EclipseBurst, EquivocationSpammer,
    SilenceThenBurst, VoteFlipper,
};
use ba_core::auth::FsService;
use ba_core::ba_from_bb;
use ba_core::broadcast;
use ba_core::cert::CertEncoding;
use ba_core::cks::{self, CksConfig};
use ba_core::dolev_strong::{self, DsConfig};
use ba_core::epoch::{self, EpochConfig, EpochMsg};
use ba_core::iter::{self, IterConfig};
use ba_core::momose_ren::{self, MrConfig};
use ba_core::runnable::Runnable;
use ba_fmine::{Eligibility, IdealMine, Keychain, MineParams, MineTag, MsgKind, RealMine, SigMode};
use ba_lowerbound::{theorem3, theorem4};
use ba_sim::{
    AdvCtx, Adversary, Bit, CorruptionModel, FaultPlan, NodeId, Passive, PopulationMode, RunReport,
    SimConfig, TransportSpec, Verdict,
};

use crate::sweep::RunRecord;

/// Above this population size, [`EligMode::Real`] builds its [`RealMine`]
/// backend without per-node fixed-base precomputation tables (~30 KiB per
/// node). Verdicts are bit-identical either way; only setup memory and
/// verify latency trade off.
const REAL_ELIG_UNTABLED_N: usize = 4096;

/// How the environment assigns input bits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InputPattern {
    /// Every node inputs `b`.
    Unanimous(Bit),
    /// Node `i` inputs `i % 2 == 0`.
    Alternating,
    /// Node `i` inputs `i % 3 == 0`.
    EveryThird,
    /// Node `i` inputs `(i / n) < frac` (the first `frac` of the nodes).
    FirstFrac(f64),
    /// Broadcast only: the sender's bit is `seed % 2 == 0`.
    SenderParity,
}

impl InputPattern {
    /// The input vector for an agreement-style run.
    pub fn generate(&self, n: usize, _seed: u64) -> Vec<Bit> {
        match self {
            InputPattern::Unanimous(b) => vec![*b; n],
            InputPattern::Alternating => (0..n).map(|i| i % 2 == 0).collect(),
            InputPattern::EveryThird => (0..n).map(|i| i % 3 == 0).collect(),
            InputPattern::FirstFrac(frac) => {
                (0..n).map(|i| (i as f64 / n as f64) < *frac).collect()
            }
            InputPattern::SenderParity => {
                panic!("SenderParity is a broadcast-only input pattern")
            }
        }
    }

    /// The designated sender's bit for a broadcast-style run.
    pub fn sender_bit(&self, seed: u64) -> Bit {
        match self {
            InputPattern::Unanimous(b) => *b,
            InputPattern::SenderParity => seed.is_multiple_of(2),
            other => panic!("{other:?} does not define a single sender bit"),
        }
    }

    fn name(&self) -> String {
        match self {
            InputPattern::Unanimous(b) => format!("unanimous({})", *b as u8),
            InputPattern::Alternating => "alternating".into(),
            InputPattern::EveryThird => "every_third".into(),
            InputPattern::FirstFrac(frac) => format!("first_frac({frac})"),
            InputPattern::SenderParity => "sender_parity".into(),
        }
    }
}

/// Which eligibility backend mined families use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EligMode {
    /// The `F_mine` ideal functionality (Figure 1).
    Ideal,
    /// The Appendix D real-world VRF compiler.
    Real,
}

/// How the eligibility backend is seeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EligSeed {
    /// A fresh backend per run, seeded by the run seed (the default; every
    /// seed is an independent world).
    PerRun,
    /// One backend seeded by the given value, built once per cell and
    /// `Arc`-shared across all worker threads executing the cell's seeds.
    Fixed(u64),
}

/// The attacker, by strategy (materialized per run against the concrete
/// protocol configuration).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdversarySpec {
    /// No corruption.
    Passive,
    /// The Theorem 1 after-the-fact eraser (erase every honest send).
    CommitteeEraser,
    /// The eraser tuned to starve the protocol's quorum.
    StarveQuorum,
    /// Crash the last `f` nodes at the given round.
    CrashTail {
        /// Round at which the tail crashes.
        at_round: u64,
    },
    /// The certificate forger steering agreement toward `target`.
    CertForger {
        /// The bit the forger tries to force.
        target: Bit,
    },
    /// The §3.3-Remark vote flipper (epoch family only). Records
    /// `flips_injected` / `flips_blocked` observables.
    VoteFlipper,
    /// Conflicting signed votes to disjoint receiver halves (epoch family
    /// only). Records `equivocations` / `equiv_blocked` observables.
    EquivocationSpammer,
    /// Withholds the last `f` nodes' traffic until `at_round`, then
    /// releases the backlog in one burst (any family).
    SilenceThenBurst {
        /// Round at which the backlog is released.
        at_round: u64,
    },
    /// Corrupts nodes only after observing their committee eligibility and
    /// silences them from then on (any family).
    AdaptiveEclipse {
        /// Corruptions allowed per round (`0` = as fast as the budget
        /// allows).
        per_round: usize,
    },
    /// Budget-sharing composition: the last `⌊f/2⌋` nodes run
    /// silence-then-burst (released at `at_round`), the remaining budget is
    /// spent eclipsing observed speakers (any family).
    EclipseBurst {
        /// Round at which the silenced wing's backlog is released.
        at_round: u64,
    },
}

impl AdversarySpec {
    fn name(&self) -> String {
        match self {
            AdversarySpec::Passive => "passive".into(),
            AdversarySpec::CommitteeEraser => "committee_eraser".into(),
            AdversarySpec::StarveQuorum => "starve_quorum".into(),
            AdversarySpec::CrashTail { at_round } => format!("crash_tail(at={at_round})"),
            AdversarySpec::CertForger { target } => format!("cert_forger({})", *target as u8),
            AdversarySpec::VoteFlipper => "vote_flipper".into(),
            AdversarySpec::EquivocationSpammer => "equivocation_spammer".into(),
            AdversarySpec::SilenceThenBurst { at_round } => {
                format!("silence_burst(at={at_round})")
            }
            AdversarySpec::AdaptiveEclipse { per_round: 0 } => "adaptive_eclipse".into(),
            AdversarySpec::AdaptiveEclipse { per_round } => {
                format!("adaptive_eclipse(per={per_round})")
            }
            AdversarySpec::EclipseBurst { at_round } => {
                format!("eclipse_burst(at={at_round})")
            }
        }
    }
}

/// The runnable configuration family, with its family-specific knobs.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolSpec {
    /// Appendix C.2 — Theorem 2's subquadratic iteration protocol.
    SubqHalf {
        /// Expected committee size λ.
        lambda: f64,
        /// Iteration-cap override (`None` = family default).
        max_iters: Option<u64>,
    },
    /// Appendix C.1 — the quadratic iteration baseline.
    QuadraticHalf,
    /// §3.1 — the full-participation epoch warmup.
    WarmupThird {
        /// Number of epochs `R`.
        epochs: u64,
    },
    /// §3.2 — the subquadratic epoch protocol with bit-specific eligibility.
    SubqThird {
        /// Expected committee size λ.
        lambda: f64,
        /// Number of epochs `R`.
        epochs: u64,
    },
    /// §3.3 Remark — the insecure shared-committee ablation.
    SubqShared {
        /// Expected committee size λ.
        lambda: f64,
        /// Number of epochs `R`.
        epochs: u64,
    },
    /// The Chen–Micali strawman (forward-secure keys, with or without
    /// memory erasure).
    ChenMicali {
        /// Expected committee size λ.
        lambda: f64,
        /// Number of epochs `R`.
        epochs: u64,
        /// Whether the memory-erasure discipline is enforced.
        erasure: bool,
    },
    /// Competitor: Momose–Ren's O(n²)-words authenticated BA at optimal
    /// resilience `t < n/2` (arXiv 2007.13175).
    MomoseRenHalf {
        /// View cap (liveness safety net; honest leaders are reached within
        /// `t + 1` round-robin views).
        views: u64,
    },
    /// Competitor: Cohen–Keidar–Spiegelman's adaptive O((f+1)·n)-words BA
    /// (arXiv 2202.09123), instantiated at `t < n/3` quorums.
    CksAdaptive {
        /// Phase cap (liveness safety net; an honest leader is reached
        /// within `f + 1` round-robin phases).
        phases: u64,
    },
    /// The Dolev–Strong broadcast baseline.
    DolevStrong {
        /// The protocol's resilience parameter (round count `f + 1`);
        /// independent of the simulation's corruption budget.
        ds_f: usize,
    },
    /// §1.1 — BA from `n` parallel Dolev–Strong broadcasts.
    BaFromBb {
        /// The broadcast instances' resilience parameter.
        ds_f: usize,
    },
    /// §1.1 — BB from the subquadratic iteration BA (sender `NodeId(0)`).
    IterBroadcast {
        /// Expected committee size λ of the inner BA.
        lambda: f64,
    },
    /// Theorem 4's Dolev–Reischuk adversary pair against the relay family.
    Theorem4 {
        /// Relay fanout (the message-budget knob).
        fanout: usize,
    },
    /// Theorem 3's merged `Q — 1 — Q′` execution (deterministic; run with
    /// one seed).
    Theorem3 {
        /// Committee size of the setup-free candidate.
        committee: usize,
    },
    /// Lemma 12 sampling: one leader-election iteration per seed.
    GoodIteration {
        /// Mining difficulty parameter λ for the propose tags.
        lambda: f64,
        /// The (fixed) `F_mine` instance seed.
        mine_seed: u64,
    },
    /// Lemmas 10/11 sampling: one committee draw per seed.
    CommitteeTails {
        /// Expected committee size λ.
        lambda: f64,
    },
    /// Appendix E sampling: four vote-committee sizes per seed.
    CommitteeSample {
        /// Expected committee size λ.
        lambda: f64,
    },
}

impl ProtocolSpec {
    fn name(&self) -> String {
        match self {
            ProtocolSpec::SubqHalf { lambda, .. } => format!("iter/subq_half(lambda={lambda})"),
            ProtocolSpec::QuadraticHalf => "iter/quadratic_half".into(),
            ProtocolSpec::WarmupThird { epochs } => format!("epoch/warmup_third(R={epochs})"),
            ProtocolSpec::SubqThird { lambda, epochs } => {
                format!("epoch/subq_third(lambda={lambda},R={epochs})")
            }
            ProtocolSpec::SubqShared { lambda, epochs } => {
                format!("epoch/subq_shared(lambda={lambda},R={epochs})")
            }
            ProtocolSpec::ChenMicali { lambda, epochs, erasure } => {
                format!("epoch/chen_micali(lambda={lambda},R={epochs},erasure={erasure})")
            }
            ProtocolSpec::MomoseRenHalf { views } => format!("mr/half(views={views})"),
            ProtocolSpec::CksAdaptive { phases } => format!("cks/adaptive(P={phases})"),
            ProtocolSpec::DolevStrong { ds_f } => format!("dolev_strong(f={ds_f})"),
            ProtocolSpec::BaFromBb { ds_f } => format!("ba_from_bb(f={ds_f})"),
            ProtocolSpec::IterBroadcast { lambda } => {
                format!("broadcast/iter_bb(lambda={lambda})")
            }
            ProtocolSpec::Theorem4 { fanout } => format!("lowerbound/theorem4(fanout={fanout})"),
            ProtocolSpec::Theorem3 { committee } => {
                format!("lowerbound/theorem3(committee={committee})")
            }
            ProtocolSpec::GoodIteration { lambda, mine_seed } => {
                format!("fmine/good_iteration(lambda={lambda},mine_seed={mine_seed})")
            }
            ProtocolSpec::CommitteeTails { lambda } => {
                format!("fmine/committee_tails(lambda={lambda})")
            }
            ProtocolSpec::CommitteeSample { lambda } => {
                format!("fmine/committee_sample(lambda={lambda})")
            }
        }
    }

    /// The source paper's claimed total word complexity for this family,
    /// evaluated at population `n` with corruption budget `f` (`None` for
    /// measurement workloads, which have no such claim). A comparison
    /// curve, not a ceiling: the papers hide constants, so measured words
    /// are read *against the shape* of this bound across a sweep, not
    /// against its absolute value at one point.
    ///
    /// Polylog factors are instantiated as `⌈log₂(n+1)⌉²` — bit-length
    /// arithmetic, so the curve is integer-exact and platform-stable
    /// (committed baselines depend on it).
    pub fn claimed_bound_words(&self, n: usize, f: usize) -> Option<f64> {
        let nf = n as f64;
        // Bit length of n = ⌈log₂(n+1)⌉; 0 for n = 0.
        let lg = (usize::BITS - n.leading_zeros()) as f64;
        match self {
            // Abraham et al.: O(n·polylog n) words (Theorems 1/2 and the
            // broadcast reduction inherit the same bound).
            ProtocolSpec::SubqHalf { .. }
            | ProtocolSpec::SubqThird { .. }
            | ProtocolSpec::SubqShared { .. }
            | ProtocolSpec::ChenMicali { .. }
            | ProtocolSpec::IterBroadcast { .. } => Some(nf * lg * lg),
            // Appendix C baselines and Momose–Ren: O(n²) words. Dolev–
            // Strong is O(n²) messages of up to f+1 signatures; the n²
            // curve tracks its message complexity.
            ProtocolSpec::QuadraticHalf
            | ProtocolSpec::WarmupThird { .. }
            | ProtocolSpec::MomoseRenHalf { .. }
            | ProtocolSpec::DolevStrong { .. } => Some(nf * nf),
            // n parallel Dolev–Strong instances.
            ProtocolSpec::BaFromBb { .. } => Some(nf * nf * nf),
            // Cohen–Keidar–Spiegelman: adaptive O((f+1)·n) expected words.
            ProtocolSpec::CksAdaptive { .. } => Some((f as f64 + 1.0) * nf),
            ProtocolSpec::Theorem4 { .. }
            | ProtocolSpec::Theorem3 { .. }
            | ProtocolSpec::GoodIteration { .. }
            | ProtocolSpec::CommitteeTails { .. }
            | ProtocolSpec::CommitteeSample { .. } => None,
        }
    }
}

/// A cell-scoped, lazily initialized eligibility backend, `Arc`-shared
/// across the worker threads executing the cell's seeds (used by
/// [`EligSeed::Fixed`] scenarios).
#[derive(Default)]
pub struct SharedElig(OnceLock<Arc<dyn Eligibility>>);

impl std::fmt::Debug for SharedElig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedElig").field("initialized", &self.0.get().is_some()).finish()
    }
}

impl SharedElig {
    /// An uninitialized slot.
    pub fn new() -> SharedElig {
        SharedElig(OnceLock::new())
    }

    fn get_or_build(&self, build: impl FnOnce() -> Arc<dyn Eligibility>) -> Arc<dyn Eligibility> {
        self.0.get_or_init(build).clone()
    }
}

/// One finished scenario execution: the distilled record plus (for protocol
/// runs) the full report and verdict.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// Named observables for sweep aggregation.
    pub record: RunRecord,
    /// The raw execution report (`None` for measurement workloads).
    pub report: Option<RunReport>,
    /// The security verdict (`None` for measurement workloads).
    pub verdict: Option<Verdict>,
}

/// One declaratively described runnable configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Display label (also the lookup key in reports).
    pub label: String,
    /// Number of nodes `n`.
    pub n: usize,
    /// Corruption budget `f` handed to the simulator.
    pub f: usize,
    /// Corruption model in force.
    pub model: CorruptionModel,
    /// Environment input assignment.
    pub inputs: InputPattern,
    /// The attacker.
    pub adversary: AdversarySpec,
    /// The runnable configuration family.
    pub protocol: ProtocolSpec,
    /// Eligibility backend for mined families.
    pub elig: EligMode,
    /// Eligibility seeding policy.
    pub elig_seed: EligSeed,
    /// Added to the sweep's seed index to form the run seed.
    pub seed_offset: u64,
    /// Per-scenario seed-count override (`None` = sweep default).
    pub seeds: Option<u64>,
    /// Worker threads *inside* each execution (`SimConfig::threads`). A
    /// pure wall-clock knob — reports are byte-identical at every value —
    /// so it is deliberately absent from [`Scenario::describe`] and the
    /// report JSON. Large-`n` cells want this > 1; many-cell grids keep it
    /// at 1 and let the sweep's across-run workers fill the cores.
    pub sim_threads: usize,
    /// Population engine (`SimConfig::population`). Like
    /// [`Scenario::sim_threads`] this is a resource knob — sparse-capable
    /// families produce byte-identical reports, others silently fall back
    /// to dense — so it is deliberately absent from [`Scenario::describe`]
    /// and the report JSON. Large-`n` grids want [`PopulationMode::Sparse`];
    /// `--population` on experiment binaries overrides it grid-wide.
    pub population: PopulationMode,
    /// Delivery transport (`SimConfig::transport`). Unlike
    /// [`Scenario::sim_threads`] and [`Scenario::population`] this is a
    /// *protocol-affecting* axis — the latency transport can deliver
    /// messages rounds after they were sent — so it appears in
    /// [`Scenario::describe`] and the report JSON. `--transport` on
    /// experiment binaries overrides it grid-wide.
    pub transport: TransportSpec,
    /// Quorum-certificate encoding for the iteration family: a vector of
    /// individually signed votes, or one aggregate multi-signature plus a
    /// signer bitmap. Like [`Scenario::transport`] this is a
    /// *protocol-affecting* axis — it changes the certificate share of
    /// every message (`cert_bits` and the `*_bits` observables) while
    /// provably leaving all decision observables untouched — so it
    /// appears in [`Scenario::describe`] and the report JSON;
    /// `--cert-encoding` on experiment binaries overrides it grid-wide.
    /// Families whose regime cannot aggregate (mined eligibility) fall
    /// back to the vector encoding.
    pub cert_encoding: CertEncoding,
    /// Declarative network-fault plan layered over [`Scenario::transport`]
    /// at execution time (`None` = no fault layer). A *network-affecting*
    /// axis: faults may delay or destroy copies, so liveness observables
    /// can move — safety observables must not. Appears in
    /// [`Scenario::describe`] and the report JSON only when the plan is
    /// non-empty (an empty plan is a structural pass-through and keeps
    /// reports byte-identical to the bare transport); `--faults` on
    /// experiment binaries overrides it grid-wide.
    pub fault_plan: Option<FaultPlan>,
    /// When set, the finished record carries a `claimed_bound_words`
    /// observable: the source paper's claimed word-complexity curve for
    /// this protocol family, evaluated at this `(n, f)` (see
    /// [`ProtocolSpec::claimed_bound_words`]). Opt-in and omitted from
    /// [`Scenario::describe`] / the wire descriptor when off, so
    /// pre-existing reports and their committed baselines stay
    /// byte-identical.
    pub claimed_bound: bool,
}

impl Scenario {
    /// A passive, static, ideal-eligibility scenario with alternating
    /// inputs (broadcast families default to [`InputPattern::SenderParity`],
    /// the only kind of pattern that defines their sender bit) — override
    /// the rest through the builder methods.
    pub fn new(label: impl Into<String>, n: usize, protocol: ProtocolSpec) -> Scenario {
        let inputs = match protocol {
            ProtocolSpec::DolevStrong { .. } | ProtocolSpec::IterBroadcast { .. } => {
                InputPattern::SenderParity
            }
            _ => InputPattern::Alternating,
        };
        Scenario {
            label: label.into(),
            n,
            f: 0,
            model: CorruptionModel::Static,
            inputs,
            adversary: AdversarySpec::Passive,
            protocol,
            elig: EligMode::Ideal,
            elig_seed: EligSeed::PerRun,
            seed_offset: 0,
            seeds: None,
            sim_threads: 1,
            population: PopulationMode::Dense,
            transport: TransportSpec::Lockstep,
            cert_encoding: CertEncoding::Vector,
            fault_plan: None,
            claimed_bound: false,
        }
    }

    /// Sets the corruption budget.
    pub fn f(mut self, f: usize) -> Scenario {
        self.f = f;
        self
    }

    /// Sets the corruption model.
    pub fn model(mut self, model: CorruptionModel) -> Scenario {
        self.model = model;
        self
    }

    /// Sets the input pattern.
    pub fn inputs(mut self, inputs: InputPattern) -> Scenario {
        self.inputs = inputs;
        self
    }

    /// Sets the adversary.
    pub fn adversary(mut self, adversary: AdversarySpec) -> Scenario {
        self.adversary = adversary;
        self
    }

    /// Switches mined families to the real-world VRF backend.
    pub fn real_elig(mut self) -> Scenario {
        self.elig = EligMode::Real;
        self
    }

    /// Pins the eligibility backend to one fixed-seed instance, shared
    /// across workers.
    pub fn elig_fixed(mut self, seed: u64) -> Scenario {
        self.elig_seed = EligSeed::Fixed(seed);
        self
    }

    /// Offsets the run seeds (`seed = offset + index`).
    pub fn seed_offset(mut self, offset: u64) -> Scenario {
        self.seed_offset = offset;
        self
    }

    /// Overrides the sweep-level seed count for this scenario.
    pub fn seeds(mut self, seeds: u64) -> Scenario {
        self.seeds = Some(seeds);
        self
    }

    /// Sets the in-execution worker-thread count (see
    /// [`Scenario::sim_threads`]; `--sim-threads` on experiment binaries
    /// overrides it grid-wide).
    pub fn sim_threads(mut self, threads: usize) -> Scenario {
        self.sim_threads = threads.max(1);
        self
    }

    /// Sets the population engine (see [`Scenario::population`];
    /// `--population` on experiment binaries overrides it grid-wide).
    pub fn population(mut self, population: PopulationMode) -> Scenario {
        self.population = population;
        self
    }

    /// Sets the delivery transport (see [`Scenario::transport`];
    /// `--transport` on experiment binaries overrides it grid-wide).
    pub fn transport(mut self, transport: TransportSpec) -> Scenario {
        self.transport = transport;
        self
    }

    /// Sets the certificate encoding (see [`Scenario::cert_encoding`];
    /// `--cert-encoding` on experiment binaries overrides it grid-wide).
    pub fn cert_encoding(mut self, encoding: CertEncoding) -> Scenario {
        self.cert_encoding = encoding;
        self
    }

    /// Layers a network-fault plan over the transport (see
    /// [`Scenario::fault_plan`]; `--faults` on experiment binaries
    /// overrides it grid-wide).
    pub fn faults(mut self, plan: FaultPlan) -> Scenario {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables the `claimed_bound_words` observable (see
    /// [`Scenario::claimed_bound`]).
    pub fn with_claimed_bound(mut self) -> Scenario {
        self.claimed_bound = true;
        self
    }

    /// Key/value description of the configuration (report metadata).
    pub fn describe(&self) -> Vec<(&'static str, String)> {
        let mut desc = vec![
            ("protocol", self.protocol.name()),
            ("adversary", self.adversary.name()),
            ("inputs", self.inputs.name()),
            (
                "model",
                match self.model {
                    CorruptionModel::Static => "static".into(),
                    CorruptionModel::Adaptive => "adaptive".into(),
                    CorruptionModel::StronglyAdaptive => "strongly_adaptive".into(),
                },
            ),
            ("elig", if self.elig == EligMode::Ideal { "ideal".into() } else { "real".into() }),
            (
                "elig_seed",
                match self.elig_seed {
                    EligSeed::PerRun => "per_run".into(),
                    EligSeed::Fixed(s) => format!("fixed({s})"),
                },
            ),
            ("transport", self.transport.to_string()),
            ("cert_encoding", self.cert_encoding.to_string()),
        ];
        // Only a non-empty plan is an experimental axis; an empty plan is a
        // structural pass-through, and omitting it keeps pre-fault reports
        // (and their committed baselines) byte-identical.
        if let Some(plan) = &self.fault_plan {
            if !plan.is_empty() {
                desc.push(("faults", plan.to_string()));
            }
        }
        // Like `faults`: only present when switched on, so reports (and
        // their committed baselines) from before the observable existed
        // stay byte-identical.
        if self.claimed_bound {
            desc.push(("claimed_bound", "on".into()));
        }
        desc
    }

    fn build_elig(&self, seed: u64, shared: &SharedElig, lambda: f64) -> Arc<dyn Eligibility> {
        let (n, mode) = (self.n, self.elig);
        let build = move |s: u64| -> Arc<dyn Eligibility> {
            match mode {
                EligMode::Ideal => Arc::new(IdealMine::new(s, MineParams::new(n, lambda))),
                // Eager per-node fixed-base tables cost ~30 KiB each — fine
                // for protocol-scale n, ruinous for population-scale grids
                // (3 GiB at n = 10^5). The untabled setup verifies
                // bit-identically through the plain-pow fallback and the
                // proven-statement cache.
                EligMode::Real if n >= REAL_ELIG_UNTABLED_N => {
                    Arc::new(RealMine::from_seed_untabled(s, MineParams::new(n, lambda)))
                }
                EligMode::Real => Arc::new(RealMine::from_seed(s, MineParams::new(n, lambda))),
            }
        };
        match self.elig_seed {
            EligSeed::PerRun => build(seed),
            EligSeed::Fixed(s) => shared.get_or_build(move || build(s)),
        }
    }

    /// Executes the scenario under `seed` and distills a [`RunRecord`]
    /// (the sweep-engine entry point).
    pub fn run_seed(&self, seed: u64, shared: &SharedElig) -> RunRecord {
        self.execute_shared(seed, shared).record
    }

    /// Executes the scenario under `seed`, returning the full outcome
    /// (stand-alone entry point for examples and tests).
    pub fn execute(&self, seed: u64) -> ScenarioRun {
        self.execute_shared(seed, &SharedElig::new())
    }

    fn execute_shared(&self, seed: u64, shared: &SharedElig) -> ScenarioRun {
        // The fault layer wraps whatever base transport the scenario names;
        // empty plans still wrap (structural pass-through), so `--faults
        // none` exercises the wrapper itself.
        let transport = match self.fault_plan {
            Some(plan) => self.transport.with_fault_plan(plan),
            None => self.transport,
        };
        let sim = SimConfig::new(self.n.max(1), self.f, self.model, seed)
            .with_threads(self.sim_threads)
            .with_population(self.population)
            .with_transport(transport);
        match &self.protocol {
            ProtocolSpec::SubqHalf { lambda, max_iters } => {
                let mut cfg = IterConfig::subq_half(self.n, self.build_elig(seed, shared, *lambda))
                    .with_cert_encoding(self.cert_encoding);
                if let Some(mi) = max_iters {
                    cfg.max_iters = *mi;
                }
                self.run_iter(cfg, &sim, seed)
            }
            ProtocolSpec::QuadraticHalf => {
                let kc = Arc::new(Keychain::from_seed(seed, self.n, SigMode::Ideal));
                let cfg = IterConfig::quadratic_half(self.n, kc, seed)
                    .with_cert_encoding(self.cert_encoding);
                self.run_iter(cfg, &sim, seed)
            }
            ProtocolSpec::WarmupThird { epochs } => {
                let kc = Arc::new(Keychain::from_seed(seed, self.n, SigMode::Ideal));
                self.run_epoch(EpochConfig::warmup_third(self.n, *epochs, kc), &sim, seed)
            }
            ProtocolSpec::SubqThird { lambda, epochs } => {
                let elig = self.build_elig(seed, shared, *lambda);
                self.run_epoch(EpochConfig::subq_third(self.n, *epochs, elig), &sim, seed)
            }
            ProtocolSpec::SubqShared { lambda, epochs } => {
                let elig = self.build_elig(seed, shared, *lambda);
                let kc = Arc::new(Keychain::from_seed(seed, self.n, SigMode::Ideal));
                self.run_epoch(EpochConfig::subq_shared(self.n, *epochs, elig, kc), &sim, seed)
            }
            ProtocolSpec::ChenMicali { lambda, epochs, erasure } => {
                let elig = self.build_elig(seed, shared, *lambda);
                let fs = Arc::new(FsService::from_seed(seed, self.n, *epochs as usize + 1));
                let cfg = EpochConfig::chen_micali(self.n, *epochs, elig, fs, *erasure);
                self.run_epoch(cfg, &sim, seed)
            }
            ProtocolSpec::MomoseRenHalf { views } => {
                let kc = Arc::new(Keychain::from_seed(seed, self.n, SigMode::Ideal));
                let cfg = MrConfig::half(self.n, *views, kc).with_cert_encoding(self.cert_encoding);
                let inputs = self.inputs.generate(self.n, seed);
                let quorum = cfg.quorum;
                let runnable = self.typed_runnable(seed, Some(quorum), |adv| {
                    momose_ren::runnable(&cfg, inputs, adv)
                });
                self.finish(seed, runnable.execute(&sim), Vec::new())
            }
            ProtocolSpec::CksAdaptive { phases } => {
                let kc = Arc::new(Keychain::from_seed(seed, self.n, SigMode::Ideal));
                let cfg =
                    CksConfig::adaptive(self.n, *phases, kc).with_cert_encoding(self.cert_encoding);
                let inputs = self.inputs.generate(self.n, seed);
                let quorum = cfg.quorum;
                let runnable =
                    self.typed_runnable(seed, Some(quorum), |adv| cks::runnable(&cfg, inputs, adv));
                self.finish(seed, runnable.execute(&sim), Vec::new())
            }
            ProtocolSpec::DolevStrong { ds_f } => {
                let kc = Arc::new(Keychain::from_seed(seed, self.n, SigMode::Ideal));
                let cfg = DsConfig { n: self.n, f: *ds_f, sender: NodeId(0), keychain: kc };
                let runnable = self.typed_runnable(seed, None, |adv| {
                    dolev_strong::runnable(&cfg, self.inputs.sender_bit(seed), adv)
                });
                self.finish(seed, runnable.execute(&sim), Vec::new())
            }
            ProtocolSpec::BaFromBb { ds_f } => {
                let kc = Arc::new(Keychain::from_seed(seed, self.n, SigMode::Ideal));
                let inputs = self.inputs.generate(self.n, seed);
                let runnable = self.typed_runnable(seed, None, |adv| {
                    ba_from_bb::runnable(self.n, *ds_f, kc, inputs, adv)
                });
                self.finish(seed, runnable.execute(&sim), Vec::new())
            }
            ProtocolSpec::IterBroadcast { lambda } => {
                let cfg = IterConfig::subq_half(self.n, self.build_elig(seed, shared, *lambda))
                    .with_cert_encoding(self.cert_encoding);
                let kc = Arc::new(Keychain::from_seed(seed, self.n, SigMode::Ideal));
                let runnable = self.typed_runnable(seed, Some(cfg.quorum), |adv| {
                    broadcast::runnable_iter_bb(
                        &cfg,
                        kc,
                        NodeId(0),
                        self.inputs.sender_bit(seed),
                        adv,
                    )
                });
                self.finish(seed, runnable.execute(&sim), Vec::new())
            }
            ProtocolSpec::Theorem4 { fanout } => {
                let sample = theorem4::run_seed(self.n, self.f, *fanout, seed);
                let mut record = RunRecord::new(seed);
                record.push("messages", sample.messages as f64);
                record.push_flag("isolated", sample.isolated);
                record.push_flag("violated", sample.violated);
                ScenarioRun { record, report: None, verdict: None }
            }
            ProtocolSpec::Theorem3 { committee } => {
                let rep = theorem3::run_experiment(self.n, *committee);
                let mut record = RunRecord::new(seed);
                record.push_flag("q_valid", rep.q_valid);
                record.push_flag("q_prime_valid", rep.q_prime_valid);
                record.push("node1_output", rep.node1_output.map_or(-1.0, |b| b as u64 as f64));
                record.push("corruptions_needed", rep.corruptions_needed as f64);
                record.push("q_multicasts", rep.q_multicasts as f64);
                record.push_flag("node1_inconsistent_with_q", rep.node1_inconsistent_with_q);
                record.push_flag(
                    "node1_inconsistent_with_q_prime",
                    rep.node1_inconsistent_with_q_prime,
                );
                record.push_flag("contradiction", rep.contradiction_established());
                ScenarioRun { record, report: None, verdict: None }
            }
            ProtocolSpec::GoodIteration { lambda, mine_seed } => {
                self.sample_good_iteration(seed, *lambda, *mine_seed)
            }
            ProtocolSpec::CommitteeTails { lambda } => self.sample_committee_tails(seed, *lambda),
            ProtocolSpec::CommitteeSample { lambda } => {
                let elig = self.build_elig(seed, shared, *lambda);
                let mut record = RunRecord::new(seed);
                for iter_no in 0..4u64 {
                    let tag = MineTag::new(MsgKind::Vote, iter_no, true);
                    let size =
                        (0..self.n).filter(|&i| elig.mine(NodeId(i), &tag).is_some()).count();
                    record.push("committee_size", size as f64);
                }
                ScenarioRun { record, report: None, verdict: None }
            }
        }
    }

    /// Builds the family-agnostic adversaries; families with typed
    /// adversaries (forger, flipper) construct them in their own `run_*`.
    fn typed_runnable<M: ba_sim::Message + Send + 'static>(
        &self,
        _seed: u64,
        quorum: Option<usize>,
        make: impl FnOnce(Box<dyn DynAdversary<M>>) -> Runnable,
    ) -> Runnable {
        let adv: Box<dyn DynAdversary<M>> = match self.adversary {
            AdversarySpec::Passive => Box::new(Passive),
            AdversarySpec::CommitteeEraser => Box::new(CommitteeEraser::new()),
            AdversarySpec::StarveQuorum => Box::new(CommitteeEraser::starve_quorum(
                quorum.expect("starve_quorum needs a quorum-bearing protocol"),
            )),
            AdversarySpec::CrashTail { at_round } => Box::new(CrashAt {
                nodes: (self.n - self.f..self.n).map(NodeId).collect(),
                at_round,
            }),
            AdversarySpec::SilenceThenBurst { at_round } => {
                Box::new(SilenceThenBurst::tail(self.n, self.f, at_round))
            }
            AdversarySpec::AdaptiveEclipse { per_round: 0 } => Box::new(AdaptiveEclipse::new()),
            AdversarySpec::AdaptiveEclipse { per_round } => {
                Box::new(AdaptiveEclipse::paced(per_round))
            }
            AdversarySpec::EclipseBurst { at_round } => {
                Box::new(EclipseBurst::tail(self.n, self.f, at_round))
            }
            AdversarySpec::CertForger { .. }
            | AdversarySpec::VoteFlipper
            | AdversarySpec::EquivocationSpammer => panic!(
                "{} does not attack this protocol family ({})",
                self.adversary.name(),
                self.protocol.name()
            ),
        };
        make(adv)
    }

    fn run_iter(&self, cfg: IterConfig, sim: &SimConfig, seed: u64) -> ScenarioRun {
        let inputs = self.inputs.generate(self.n, seed);
        match self.adversary {
            AdversarySpec::CertForger { target } => {
                let adv = CertForger::new(self.n, self.f, target, cfg.quorum, cfg.auth.clone())
                    .with_encoding(cfg.effective_cert_encoding());
                let stats = adv.stats();
                let outcome = iter::runnable(&cfg, inputs, adv).execute(sim);
                // Local probe counters only — a blocked forgery is never
                // sent, so these ride under the `cert_*` observable prefix
                // that encoding diffs already ignore.
                let extras = vec![
                    ("cert_forge_attempts", stats.attempts() as f64),
                    ("cert_forge_blocked", stats.blocked() as f64),
                ];
                self.finish(seed, outcome, extras)
            }
            _ => {
                let quorum = cfg.quorum;
                let runnable = self
                    .typed_runnable(seed, Some(quorum), |adv| iter::runnable(&cfg, inputs, adv));
                self.finish(seed, runnable.execute(sim), Vec::new())
            }
        }
    }

    fn run_epoch(&self, cfg: EpochConfig, sim: &SimConfig, seed: u64) -> ScenarioRun {
        let inputs = self.inputs.generate(self.n, seed);
        match self.adversary {
            AdversarySpec::VoteFlipper => {
                let counters = Arc::new(FlipCounters::default());
                let adv = FlipCounting {
                    inner: VoteFlipper::new(cfg.auth.clone(), cfg.quorum),
                    out: counters.clone(),
                };
                let outcome = epoch::runnable(&cfg, inputs, adv).execute(sim);
                let extras = vec![
                    ("flips_injected", counters.injected.load(Ordering::Relaxed) as f64),
                    ("flips_blocked", counters.blocked.load(Ordering::Relaxed) as f64),
                ];
                self.finish(seed, outcome, extras)
            }
            AdversarySpec::EquivocationSpammer => {
                let adv = EquivocationSpammer::new(self.n, self.f, cfg.auth.clone());
                let stats = adv.stats();
                let outcome = epoch::runnable(&cfg, inputs, adv).execute(sim);
                let extras = vec![
                    ("equivocations", stats.equivocations() as f64),
                    ("equiv_blocked", stats.blocked() as f64),
                ];
                self.finish(seed, outcome, extras)
            }
            _ => {
                let quorum = cfg.quorum;
                let runnable = self
                    .typed_runnable(seed, Some(quorum), |adv| epoch::runnable(&cfg, inputs, adv));
                self.finish(seed, runnable.execute(sim), Vec::new())
            }
        }
    }

    /// Distills a finished protocol run into the standard observables.
    fn finish(
        &self,
        seed: u64,
        (report, verdict): (RunReport, Verdict),
        extras: Vec<(&'static str, f64)>,
    ) -> ScenarioRun {
        let m = &report.metrics;
        let mut record = RunRecord::new(seed);
        record.push("rounds", report.rounds_used as f64);
        record.push("multicasts", m.honest_multicasts as f64);
        record.push("multicast_bits", m.honest_multicast_bits as f64);
        record.push("kbits", m.honest_multicast_bits as f64 / 1000.0);
        record.push("cert_bits", m.honest_cert_bits as f64);
        record.push("unicasts", m.honest_unicasts as f64);
        record.push("classical_msgs", m.classical_messages(self.n) as f64);
        record.push("corrupt_sends", m.corrupt_sends as f64);
        record.push("corrupt_bits", m.corrupt_bits as f64);
        record.push("injected_sends", m.injected_sends as f64);
        record.push("corruptions", m.corruptions as f64);
        record.push("removals", m.removals as f64);
        record.push("dropped_sends", m.dropped_sends as f64);
        // Substrate gauges: excluded from `Metrics` equality (they vary
        // between the dense and sparse engines), so baseline diffs across
        // engines ignore them (`--ignore-observable 'peak_*'`).
        record.push("peak_live_nodes", m.peak_live_nodes as f64);
        record.push("peak_resident_msgs", m.peak_resident_msgs as f64);
        if let Some(lat) = &m.latency {
            record.push("latency_commit_p50_ms", lat.commit_p50_ms);
            record.push("latency_commit_p95_ms", lat.commit_p95_ms);
            record.push("latency_commit_p99_ms", lat.commit_p99_ms);
            record.push("latency_delay_p50_ms", lat.delay_p50_ms);
            record.push("latency_delay_p95_ms", lat.delay_p95_ms);
            record.push("latency_delay_p99_ms", lat.delay_p99_ms);
            record.push("latency_delivered", lat.delivered as f64);
            record.push("latency_late_deliveries", lat.late_deliveries as f64);
            record.push("latency_undelivered", lat.undelivered as f64);
        }
        // Fault observables are seed-deterministic (injection decisions
        // hash only seed, plan, message id, and receiver), so unlike the
        // latency gauges they are stable across backends and belong in
        // committed baselines.
        if let Some(faults) = &m.faults {
            record.push("faults_dropped", faults.dropped as f64);
            record.push("faults_duplicated", faults.duplicated as f64);
            record.push("faults_reordered", faults.reordered as f64);
            record.push("faults_partitioned", faults.partitioned as f64);
            record.push("faults_undelivered", faults.undelivered as f64);
            record.push("partition_rounds", faults.partition_rounds as f64);
        }
        record.push_flag("consistent", verdict.consistent);
        record.push_flag("valid", verdict.valid);
        record.push_flag("terminated", verdict.terminated);
        record.push_flag("all_ok", verdict.all_ok());
        record.push_flag("defeated", !verdict.all_ok());
        if verdict.terminated {
            record.push("rounds_terminated", report.rounds_used as f64);
        }
        if self.claimed_bound {
            if let Some(words) = self.protocol.claimed_bound_words(self.n, self.f) {
                record.push("claimed_bound_words", words);
            }
        }
        if let Some(bit) = report.forever_honest().next().and_then(|i| report.outputs[i.index()]) {
            record.push("decision", bit as u64 as f64);
        }
        for (name, value) in extras {
            record.push(name, value);
        }
        ScenarioRun { record, report: Some(report), verdict: Some(verdict) }
    }

    /// One Lemma 12 leader-election iteration (iteration index = seed):
    /// `n − f` honest single-bit propose attempts plus `f` corrupt
    /// both-bit grinds against a fixed `F_mine` instance.
    fn sample_good_iteration(&self, seed: u64, lambda: f64, mine_seed: u64) -> ScenarioRun {
        let fmine = IdealMine::new(mine_seed, MineParams::new(self.n, lambda));
        let (n, f, r) = (self.n, self.f, seed);
        let mut honest_successes = 0u64;
        for i in 0..n - f {
            let bit = (i + r as usize).is_multiple_of(2);
            if fmine.mine(NodeId(i), &MineTag::new(MsgKind::Propose, r, bit)).is_some() {
                honest_successes += 1;
            }
        }
        let mut corrupt_successes = 0u64;
        for i in n - f..n {
            for bit in [false, true] {
                if fmine.mine(NodeId(i), &MineTag::new(MsgKind::Propose, r, bit)).is_some() {
                    corrupt_successes += 1;
                }
            }
        }
        let mut record = RunRecord::new(seed);
        record.push_flag("good", honest_successes == 1 && corrupt_successes == 0);
        record.push_flag("unique", honest_successes + corrupt_successes == 1);
        ScenarioRun { record, report: None, verdict: None }
    }

    /// One Lemmas 10/11 committee draw (trial index = seed): corrupt vs
    /// honest eligibility for a vote tag, plus the Lemma 10 terminator
    /// ticket check.
    fn sample_committee_tails(&self, seed: u64, lambda: f64) -> ScenarioRun {
        let (n, f, t) = (self.n, self.f, seed);
        let fmine =
            IdealMine::new(t.wrapping_mul(0x9E37).wrapping_add(11), MineParams::new(n, lambda));
        let quorum = (lambda / 2.0).ceil() as usize;
        let eps = 0.5 - f as f64 / n as f64;
        let terminators = ((eps * n as f64) / 2.0).ceil() as usize;
        let tag = MineTag::new(MsgKind::Vote, t, true);
        let corrupt_eligible =
            (n - f..n).filter(|&i| fmine.mine(NodeId(i), &tag).is_some()).count();
        let honest_eligible = (0..n - f).filter(|&i| fmine.mine(NodeId(i), &tag).is_some()).count();
        let term_tag = MineTag::terminate(true);
        let any_terminator =
            (0..terminators.min(n - f)).any(|i| fmine.mine(NodeId(i), &term_tag).is_some());
        let mut record = RunRecord::new(seed);
        record.push_flag("corrupt_quorum", corrupt_eligible >= quorum);
        record.push_flag("honest_starved", honest_eligible < quorum);
        record.push_flag("terminate_mute", !any_terminator);
        ScenarioRun { record, report: None, verdict: None }
    }
}

/// Object-safe adversary bridge: the family-agnostic strategies are built
/// as boxed trait objects so one constructor covers every message type.
trait DynAdversary<M: ba_sim::Message>: Send {
    fn setup_dyn(&mut self, ctx: &mut AdvCtx<'_, M>);
    fn filter_dyn(
        &mut self,
        node: NodeId,
        inbox: Vec<ba_sim::Incoming<M>>,
        round: ba_sim::Round,
    ) -> Vec<ba_sim::Incoming<M>>;
    fn outbox_dyn(
        &mut self,
        node: NodeId,
        planned: Vec<(ba_sim::Recipient, M)>,
        round: ba_sim::Round,
    ) -> Vec<(ba_sim::Recipient, M)>;
    fn intervene_dyn(&mut self, ctx: &mut AdvCtx<'_, M>);
}

impl<M: ba_sim::Message, A: Adversary<M> + Send> DynAdversary<M> for A {
    fn setup_dyn(&mut self, ctx: &mut AdvCtx<'_, M>) {
        self.setup(ctx)
    }
    fn filter_dyn(
        &mut self,
        node: NodeId,
        inbox: Vec<ba_sim::Incoming<M>>,
        round: ba_sim::Round,
    ) -> Vec<ba_sim::Incoming<M>> {
        self.filter_corrupt_inbox(node, inbox, round)
    }
    fn outbox_dyn(
        &mut self,
        node: NodeId,
        planned: Vec<(ba_sim::Recipient, M)>,
        round: ba_sim::Round,
    ) -> Vec<(ba_sim::Recipient, M)> {
        self.corrupt_outbox(node, planned, round)
    }
    fn intervene_dyn(&mut self, ctx: &mut AdvCtx<'_, M>) {
        self.intervene(ctx)
    }
}

impl<M: ba_sim::Message> Adversary<M> for Box<dyn DynAdversary<M>> {
    fn setup(&mut self, ctx: &mut AdvCtx<'_, M>) {
        (**self).setup_dyn(ctx)
    }
    fn filter_corrupt_inbox(
        &mut self,
        node: NodeId,
        inbox: Vec<ba_sim::Incoming<M>>,
        round: ba_sim::Round,
    ) -> Vec<ba_sim::Incoming<M>> {
        (**self).filter_dyn(node, inbox, round)
    }
    fn corrupt_outbox(
        &mut self,
        node: NodeId,
        planned: Vec<(ba_sim::Recipient, M)>,
        round: ba_sim::Round,
    ) -> Vec<(ba_sim::Recipient, M)> {
        (**self).outbox_dyn(node, planned, round)
    }
    fn intervene(&mut self, ctx: &mut AdvCtx<'_, M>) {
        (**self).intervene_dyn(ctx)
    }
}

/// Cross-thread flip counters recovered from a [`VoteFlipper`] run.
#[derive(Default)]
struct FlipCounters {
    injected: AtomicU64,
    blocked: AtomicU64,
}

/// Forwards to the wrapped [`VoteFlipper`] and mirrors its statistics into
/// shared atomics after every intervention.
struct FlipCounting {
    inner: VoteFlipper,
    out: Arc<FlipCounters>,
}

impl Adversary<EpochMsg> for FlipCounting {
    fn intervene(&mut self, ctx: &mut AdvCtx<'_, EpochMsg>) {
        self.inner.intervene(ctx);
        self.out.injected.store(self.inner.flips_injected, Ordering::Relaxed);
        self.out.blocked.store(self.inner.flips_blocked, Ordering::Relaxed);
    }
}
