//! E8 — the §3.3 Remark: bit-specific eligibility is what makes the
//! construction adaptively secure.
//!
//! Runs the adaptive vote flipper against four authentication regimes of
//! the same epoch protocol and reports consistency-violation rates:
//!
//! * bit-specific committees (the paper): attack blocked;
//! * shared committees: attack succeeds;
//! * Chen–Micali (shared + forward-secure keys) with memory erasure: blocked;
//! * Chen–Micali without erasure: succeeds.

use std::sync::Arc;

use ba_adversary::VoteFlipper;
use ba_bench::{header, row};
use ba_core::auth::FsService;
use ba_core::epoch::{self, EpochConfig};
use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
use ba_sim::{Bit, CorruptionModel, SimConfig};

const N: usize = 240;
const LAMBDA: f64 = 18.0;
const EPOCHS: u64 = 8;
const SEEDS: u64 = 20;

fn violation_rate(mk: impl Fn(u64) -> EpochConfig) -> (f64, f64, f64) {
    let mut violations = 0u64;
    let mut flips = 0u64;
    let mut blocked = 0u64;
    for seed in 0..SEEDS {
        let cfg = mk(seed);
        let adv = VoteFlipper::new(cfg.auth.clone(), cfg.quorum);
        let sim = SimConfig::new(N, N / 3, CorruptionModel::Adaptive, seed);
        let inputs: Vec<Bit> = (0..N).map(|i| i < N / 2).collect();
        // Recover flip statistics through a wrapper that shares counters.
        let counters = std::rc::Rc::new(std::cell::Cell::new((0u64, 0u64)));
        struct Wrap {
            inner: VoteFlipper,
            out: std::rc::Rc<std::cell::Cell<(u64, u64)>>,
        }
        impl ba_sim::Adversary<epoch::EpochMsg> for Wrap {
            fn intervene(&mut self, ctx: &mut ba_sim::AdvCtx<'_, epoch::EpochMsg>) {
                self.inner.intervene(ctx);
                self.out.set((self.inner.flips_injected, self.inner.flips_blocked));
            }
        }
        let wrap = Wrap { inner: adv, out: counters.clone() };
        let (_report, verdict) = epoch::run(&cfg, &sim, inputs, wrap);
        if !verdict.consistent {
            violations += 1;
        }
        let (fi, fb) = counters.get();
        flips += fi;
        blocked += fb;
    }
    (violations as f64 / SEEDS as f64, flips as f64 / SEEDS as f64, blocked as f64 / SEEDS as f64)
}

fn main() {
    println!("# E8 — bit-specific eligibility ablation ({SEEDS} seeds)");
    println!("n = {N}, lambda = {LAMBDA}, R = {EPOCHS} epochs, mixed inputs,");
    println!("adaptive vote-flipping adversary with budget f = n/3\n");

    header(&["regime", "consistency violations", "mean flips injected", "mean flips blocked"]);

    let (v, fi, fb) = violation_rate(|seed| {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(N, LAMBDA)));
        EpochConfig::subq_third(N, EPOCHS, elig)
    });
    row(&[
        "bit-specific (paper, §3.2)".to_string(),
        format!("{v:.2}"),
        format!("{fi:.1}"),
        format!("{fb:.1}"),
    ]);

    let (v, fi, fb) = violation_rate(|seed| {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(N, LAMBDA)));
        let kc = Arc::new(Keychain::from_seed(seed, N, SigMode::Ideal));
        EpochConfig::subq_shared(N, EPOCHS, elig, kc)
    });
    row(&[
        "shared committee (insecure)".to_string(),
        format!("{v:.2}"),
        format!("{fi:.1}"),
        format!("{fb:.1}"),
    ]);

    let (v, fi, fb) = violation_rate(|seed| {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(N, LAMBDA)));
        let fs = Arc::new(FsService::from_seed(seed, N, EPOCHS as usize + 1));
        EpochConfig::chen_micali(N, EPOCHS, elig, fs, true)
    });
    row(&[
        "Chen-Micali + erasure".to_string(),
        format!("{v:.2}"),
        format!("{fi:.1}"),
        format!("{fb:.1}"),
    ]);

    let (v, fi, fb) = violation_rate(|seed| {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(N, LAMBDA)));
        let fs = Arc::new(FsService::from_seed(seed, N, EPOCHS as usize + 1));
        EpochConfig::chen_micali(N, EPOCHS, elig, fs, false)
    });
    row(&[
        "Chen-Micali, no erasure".to_string(),
        format!("{v:.2}"),
        format!("{fi:.1}"),
        format!("{fb:.1}"),
    ]);

    println!("\nExpected shape: shared-committee and no-erasure rows break (violations");
    println!("~1, many flips injected); the paper's bit-specific row and the erasure");
    println!("row hold (flips blocked instead of injected). Bit-specific eligibility");
    println!("achieves without erasure what Chen-Micali needs the erasure model for.");
}
