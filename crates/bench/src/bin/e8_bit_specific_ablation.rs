//! E8 — the §3.3 Remark: bit-specific eligibility is what makes the
//! construction adaptively secure.
//!
//! Runs the adaptive vote flipper against four authentication regimes of
//! the same epoch protocol and reports consistency-violation rates:
//!
//! * bit-specific committees (the paper): attack blocked;
//! * shared committees: attack succeeds;
//! * Chen–Micali (shared + forward-secure keys) with memory erasure: blocked;
//! * Chen–Micali without erasure: succeeds.

use ba_bench::{header, row, AdversarySpec, Cli, InputPattern, ProtocolSpec, Scenario, Sweep};
use ba_sim::CorruptionModel;

const N: usize = 240;
const LAMBDA: f64 = 18.0;
const EPOCHS: u64 = 8;

fn regime(label: &str, protocol: ProtocolSpec) -> Scenario {
    Scenario::new(label, N, protocol)
        .f(N / 3)
        .model(CorruptionModel::Adaptive)
        .inputs(InputPattern::FirstFrac(0.5))
        .adversary(AdversarySpec::VoteFlipper)
}

fn main() {
    let cli = Cli::parse("e8_bit_specific_ablation");
    let seeds = cli.seeds_or(if cli.smoke() { 2 } else { 20 });

    let sweep = Sweep::new(
        "vote_flipper_regimes",
        seeds,
        vec![
            regime("bit_specific", ProtocolSpec::SubqThird { lambda: LAMBDA, epochs: EPOCHS }),
            regime("shared_committee", ProtocolSpec::SubqShared { lambda: LAMBDA, epochs: EPOCHS }),
            regime(
                "chen_micali_erasure",
                ProtocolSpec::ChenMicali { lambda: LAMBDA, epochs: EPOCHS, erasure: true },
            ),
            regime(
                "chen_micali_no_erasure",
                ProtocolSpec::ChenMicali { lambda: LAMBDA, epochs: EPOCHS, erasure: false },
            ),
        ],
    );
    let reports = cli.run(vec![sweep]);

    if cli.markdown() {
        println!("# E8 — bit-specific eligibility ablation ({seeds} seeds)");
        println!("n = {N}, lambda = {LAMBDA}, R = {EPOCHS} epochs, mixed inputs,");
        println!("adaptive vote-flipping adversary with budget f = n/3\n");

        header(&["regime", "consistency violations", "mean flips injected", "mean flips blocked"]);
        let names = [
            "bit-specific (paper, §3.2)",
            "shared committee (insecure)",
            "Chen-Micali + erasure",
            "Chen-Micali, no erasure",
        ];
        for (cell, name) in reports[0].cells.iter().zip(names) {
            let violations = 1.0 - cell.rate("consistent");
            row(&[
                name.to_string(),
                format!("{violations:.2}"),
                format!("{:.1}", cell.mean("flips_injected")),
                format!("{:.1}", cell.mean("flips_blocked")),
            ]);
        }

        println!("\nExpected shape: shared-committee and no-erasure rows break (violations");
        println!("~1, many flips injected); the paper's bit-specific row and the erasure");
        println!("row hold (flips blocked instead of injected). Bit-specific eligibility");
        println!("achieves without erasure what Chen-Micali needs the erasure model for.");
    }
    cli.write_outputs(&reports);
}
