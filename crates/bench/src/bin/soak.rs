//! `soak` — a long-running gauntlet sweep that streams results to disk.
//!
//! Cycles over the gauntlet matrix (the `e11_gauntlet` grid) in passes,
//! giving every cell fresh seeds each pass (`seed_offset += pass × seeds`),
//! and appends one JSON line per finished cell to `SOAK_gauntlet.jsonl` in
//! the output directory. The stream is flushed after every cell, so a
//! killed or expired soak loses at most the cell in flight — the intended
//! mode of operation for an overnight run bounded by `--duration` (or a CI
//! run bounded by `--max-cells`).
//!
//! Each line is the schema-versioned **cell-stream** record
//! (`ba-bench/cell-stream/v1`) — the same wire unit the distributed sweep
//! engine's workers emit over their stdout pipes (docs/DISTRIBUTED.md), so
//! soak output and distributed-worker output are interchangeable inputs
//! for downstream tooling.
//!
//! ```text
//! soak [--duration SECS] [--max-cells N] [--seeds N] [--threads N]
//!      [--grid smoke|full] [--out DIR]
//! ```
//!
//! Any cell whose passive expectations are violated (a passive cell that
//! is not `all_ok`, or any honest execution with nonzero `dropped_sends`)
//! is counted and reported in the exit summary; the process exits nonzero
//! if any were seen, so a soak doubles as a long-horizon correctness test.
//!
//! With `--faults`, each pass additionally layers a fault plan over every
//! cell, cycling through the *legal-envelope* plans (adversarial
//! scheduling, duplication, and their composition — see docs/FAULTS.md).
//! Those are the faults a model-legal adversary could have produced, so
//! the passive expectations stay theorems for every protocol in the
//! matrix and the same violation checks apply unchanged. Beyond-envelope
//! chaos (loss, partitions) deliberately stays out of the soak: there
//! safety erosion is a *measured finding* (`e15_faults`), not a bug.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ba_bench::gauntlet::gauntlet_sweeps;
use ba_bench::report::to_json_cell_line;
use ba_bench::sweep::default_threads;
use ba_bench::{Grid, Sweep};
use ba_sim::FaultPlan;

struct SoakArgs {
    duration: Duration,
    max_cells: u64,
    seeds: u64,
    threads: usize,
    grid: Grid,
    out: PathBuf,
    faults: bool,
}

/// The legal-envelope plan for a given soak pass (cycled, starting
/// fault-free so pass 0 reproduces the classic soak exactly).
fn pass_plan(pass: u64) -> FaultPlan {
    let text = match pass % 3 {
        0 => "none",
        1 => "sched=adversarial",
        _ => "dup:p=0.2,sched=adversarial",
    };
    text.parse().expect("a canonical plan string")
}

fn parse_args() -> SoakArgs {
    let mut args = SoakArgs {
        duration: Duration::from_secs(10),
        max_cells: u64::MAX,
        seeds: 2,
        threads: default_threads(),
        grid: Grid::Smoke,
        out: PathBuf::from("."),
        faults: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value =
            |flag: &str| iter.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match arg.as_str() {
            "--duration" => {
                let secs: f64 = value("--duration")
                    .parse()
                    .unwrap_or_else(|_| die("--duration: not a number of seconds"));
                args.duration = Duration::from_secs_f64(secs.max(0.0));
            }
            "--max-cells" => {
                args.max_cells = value("--max-cells")
                    .parse()
                    .unwrap_or_else(|_| die("--max-cells: not a number"));
            }
            "--seeds" => {
                args.seeds =
                    value("--seeds").parse().unwrap_or_else(|_| die("--seeds: not a number"));
            }
            "--threads" => {
                let t: usize =
                    value("--threads").parse().unwrap_or_else(|_| die("--threads: not a number"));
                args.threads = t.max(1);
            }
            "--grid" => {
                args.grid = match value("--grid").as_str() {
                    "full" => Grid::Full,
                    "smoke" => Grid::Smoke,
                    other => die(&format!("--grid: unknown grid {other:?} (full|smoke)")),
                }
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            "--faults" => args.faults = true,
            "--help" | "-h" => {
                println!(
                    "soak — long-running gauntlet sweep, streaming cells to disk\n\n\
                     USAGE: soak [--duration SECS] [--max-cells N] [--seeds N]\n\
                     \x20           [--threads N] [--grid smoke|full] [--out DIR]\n\
                     \x20           [--faults]\n\n\
                     Appends one JSON line per finished cell to SOAK_gauntlet.jsonl\n\
                     in --out (flushed per cell; see EXPERIMENTS.md).\n\
                     --faults cycles legal-envelope fault plans across passes\n\
                     (docs/FAULTS.md); passive-cell checks must still hold."
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other:?} (try --help)")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out)
        .unwrap_or_else(|e| die(&format!("creating {}: {e}", args.out.display())));
    let path = args.out.join("SOAK_gauntlet.jsonl");
    // Append, never truncate: restarting after a kill must keep the cells
    // the previous run streamed (each line is self-describing).
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| die(&format!("opening {}: {e}", path.display())));
    let mut out = std::io::BufWriter::new(file);

    // The matrix, flattened to (sweep title, scenario) work items; each
    // pass re-runs every cell under fresh seeds.
    let cells: Vec<(String, ba_bench::Scenario)> = gauntlet_sweeps(args.grid, args.seeds)
        .into_iter()
        .flat_map(|sweep| {
            let title = sweep.title.clone();
            sweep.scenarios.into_iter().map(move |sc| (title.clone(), sc))
        })
        .collect();

    let start = Instant::now();
    let (mut pass, mut cells_run, mut runs, mut violations) = (0u64, 0u64, 0usize, 0u64);
    'soak: loop {
        for (title, scenario) in &cells {
            if start.elapsed() >= args.duration || cells_run >= args.max_cells {
                break 'soak;
            }
            let mut sc = scenario.clone();
            sc.seed_offset = scenario.seed_offset + pass * args.seeds;
            if args.faults {
                sc.fault_plan = Some(pass_plan(pass));
            }
            let report = Sweep::new(title.clone(), args.seeds, vec![sc]).run(args.threads);
            let cell = &report.cells[0];
            // Long-horizon correctness: honest cells must stay clean on
            // every pass, not just the two seeds CI pins. The prefix also
            // covers the mined families' `passive_real@` rows.
            let passive = cell.scenario.label.starts_with("passive");
            if passive && (cell.count("all_ok") != cell.runs.len()) {
                violations += 1;
                // Safety (agreement/validity) and liveness (termination)
                // misses are both violations, but the distinction matters
                // when triaging a faulted soak: legal-envelope plans may
                // never move safety (docs/FAULTS.md), while a liveness
                // miss can also be the families' w.h.p. tail at soak
                // horizons.
                let runs = cell.runs.len();
                let safety = cell.count("consistent") != runs || cell.count("valid") != runs;
                let kind = if safety { "SAFETY VIOLATION" } else { "VIOLATION" };
                eprintln!("[soak] {kind}: {title}/{} failed honestly", cell.scenario.label);
            }
            if passive && cell.total("dropped_sends") != 0.0 {
                violations += 1;
                eprintln!("[soak] VIOLATION: {title}/{} dropped sends", cell.scenario.label);
            }
            writeln!(out, "{}", to_json_cell_line(title, cells_run, pass, cell))
                .and_then(|()| out.flush())
                .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
            cells_run += 1;
            runs += cell.runs.len();
        }
        pass += 1;
    }

    println!(
        "[soak] {} cell(s), {} run(s), {} full pass(es) in {:.2?}; wrote {}",
        cells_run,
        runs,
        pass,
        start.elapsed(),
        path.display(),
    );
    if violations > 0 {
        eprintln!("[soak] {violations} honest-cell violation(s) — see log above");
        std::process::exit(1);
    }
}
