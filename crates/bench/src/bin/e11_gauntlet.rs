//! E11 — the adversary gauntlet matrix: every protocol family × every
//! applicable adversary × corruption model × actual-corruption fraction
//! `f' ≤ f_max`, in one sweep grid.
//!
//! Renders one table per protocol family; rows are matrix cells. The
//! binary also *asserts* the deterministic edges of the matrix: passive
//! cells must be fully correct with `dropped_sends == 0`, eclipse cells
//! under the static model must spend no corruptions, and eraser cells
//! under the plain adaptive model must perform no removals (the legality
//! boundary the corruption models define).

use ba_bench::gauntlet::gauntlet_sweeps;
use ba_bench::{header, row, CellReport, Cli, SweepReport};

fn assert_matrix_edges(reports: &[SweepReport]) {
    for report in reports {
        for cell in &report.cells {
            let label = format!("{}/{}", report.title, cell.scenario.label);
            // Covers both `passive@` and the real-eligibility `passive_real@`
            // rows: honest executions stay clean under either backend.
            if cell.scenario.label.starts_with("passive") {
                assert_eq!(
                    cell.count("all_ok"),
                    cell.runs.len(),
                    "{label}: honest execution failed"
                );
                assert_eq!(
                    cell.total("dropped_sends"),
                    0.0,
                    "{label}: honest execution dropped a unicast"
                );
                assert_eq!(cell.total("corrupt_sends"), 0.0, "{label}: phantom corrupt sends");
            }
            if cell.scenario.label.starts_with("adaptive_eclipse@static") {
                assert_eq!(
                    cell.total("corruptions"),
                    0.0,
                    "{label}: static model must refuse mid-run corruption"
                );
            }
            if cell.scenario.label.starts_with("starve_quorum@adaptive") {
                assert_eq!(
                    cell.total("removals"),
                    0.0,
                    "{label}: adaptive model must refuse after-the-fact removal"
                );
            }
            // Composition legality: the eclipse + burst wings share one
            // budget; together they must never exceed it.
            if cell.scenario.label.starts_with("eclipse_burst@") {
                let f = cell.scenario.f as f64;
                for (seed, c) in cell.samples("corruptions").iter().enumerate() {
                    assert!(
                        *c <= f,
                        "{label}: composed adversary exceeded the budget at seed {seed} ({c} > {f})"
                    );
                }
                assert_eq!(cell.total("removals"), 0.0, "{label}: neither wing removes");
            }
        }
    }
}

fn table(cells: &[CellReport]) {
    header(&[
        "cell (adversary@model/f)",
        "ok",
        "mean rounds",
        "mean mcasts",
        "corrupt sends",
        "injected",
        "removals",
        "dropped",
    ]);
    for cell in cells {
        if let Some(err) = &cell.error {
            // A quarantined cell (distributed runs only) is surfaced as a
            // row, never silently dropped from the table.
            let mut cols = vec![cell.scenario.label.clone(), "QUARANTINED".to_string()];
            cols.resize(7, "-".to_string());
            cols.push(format!("{} failed attempt(s)", err.attempts));
            row(&cols);
            continue;
        }
        row(&[
            cell.scenario.label.clone(),
            format!("{}/{}", cell.count("all_ok"), cell.runs.len()),
            format!("{:.1}", cell.mean("rounds")),
            format!("{:.0}", cell.mean("multicasts")),
            format!("{:.0}", cell.mean("corrupt_sends")),
            format!("{:.0}", cell.mean("injected_sends")),
            format!("{:.0}", cell.mean("removals")),
            format!("{:.0}", cell.total("dropped_sends")),
        ]);
    }
}

fn main() {
    let cli = Cli::parse("e11_gauntlet");
    let seeds = cli.seeds_or(10);
    let sweeps = gauntlet_sweeps(cli.grid, seeds);
    let reports = cli.run(sweeps);

    assert_matrix_edges(&reports);

    if cli.markdown() {
        println!("# E11 — adversary gauntlet matrix ({seeds} seeds per cell)\n");
        for report in &reports {
            let sc = &report.cells[0].scenario;
            println!("## {} (n = {})\n", report.title, sc.n);
            table(&report.cells);
            println!();
        }
        println!("Reading the matrix: `ok` is the all-properties verdict rate; a defeated");
        println!("cell is only meaningful where the adversary/model pair is inside the");
        println!("paper's threat model (see docs/ADVERSARIES.md for the per-strategy");
        println!("catalog). Passive rows — including the mined families' real-VRF");
        println!("`passive_real` rows — are asserted fully correct with zero dropped");
        println!("sends; `adaptive_eclipse@static` rows are asserted corruption-free,");
        println!("`starve_quorum@adaptive` rows removal-free, and the `eclipse_burst`");
        println!("composition budget-legal (corruptions <= f) — the legality edges.");
    }
    cli.write_outputs(&reports);
}
