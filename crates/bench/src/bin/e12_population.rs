//! E12 — the sparse population engine at population scale.
//!
//! Theorem 2's protocols are committee protocols: out of `n` nodes, only
//! the `O(λ · polylog n)` mined committee members ever speak. The sparse
//! population engine (`ba_sim::population`) materializes exactly those
//! nodes — committee members, corrupt nodes, unicast targets — and
//! represents the silent majority by one eligibility probe per mining tag,
//! so an execution's live state scales with the *committee*, not with `n`.
//!
//! Three sections:
//!
//! * **`sparse_multicast_vs_n`** — subquadratic BA (`λ` fixed) at
//!   n = 10⁵ … 10⁶ under the sparse engine, charting measured multicast
//!   bits against the paper's O(n · polylog n) total-communication curve
//!   (multicast bits stay polylog; classical bits = n × that). These
//!   population sizes are *infeasible dense*: the dense engine would build
//!   10⁶ protocol instances and clone every multicast into 10⁶ inboxes.
//! * **`real_elig_100k`** — one n = 100 000 cell on the **real** VRF/DLEQ
//!   eligibility backend (untabled setup; verdicts bit-identical to the
//!   tabled path), the CI smoke cell with a wall-clock and peak-RSS budget.
//! * **before/after** — the same cells at dense-feasible n under both
//!   engines: records asserted identical, wall clock and the engine's
//!   peak-live / peak-resident gauges reported side by side.
//!
//! The binary asserts its own headline claims: sparse ≡ dense on every
//! overlap cell, and `peak_live_nodes` ≤ 64 · λ · log₂ n ≪ n on every
//! sparse probe (the memory ceiling; see also `crates/bench/tests/
//! population.rs` for the test-suite version of the bound).

use std::time::Instant;

use ba_bench::{header, row, Cli, InputPattern, ProtocolSpec, Scenario, Sweep};
use ba_sim::PopulationMode;

const LAMBDA: f64 = 32.0;

/// The peak-live ceiling asserted on every sparse probe: the committee
/// union over one run's ~dozen mining tags is O(λ) per tag, so 64 · λ ·
/// log₂ n bounds it with an order of magnitude to spare while staying
/// asymptotically o(n).
fn live_ceiling(n: usize, lambda: f64) -> u64 {
    (64.0 * lambda * (n as f64).log2()).ceil() as u64
}

fn subq_cell(label: String, n: usize, lambda: f64) -> Scenario {
    Scenario::new(label, n, ProtocolSpec::SubqHalf { lambda, max_iters: None })
        .inputs(InputPattern::Unanimous(true))
        .population(PopulationMode::Sparse)
}

/// Runs one cell in-process and returns `(record-equality payload, peak
/// live, peak resident, wall seconds)`. The gauges live on the report's
/// metrics, not in the record (they are engine facts, deliberately outside
/// the observable set the byte-identity contract covers).
fn probe(sc: &Scenario, seed: u64) -> (Vec<(std::borrow::Cow<'static, str>, f64)>, u64, u64, f64) {
    let t = Instant::now();
    let run = sc.execute(seed);
    let secs = t.elapsed().as_secs_f64();
    let m = &run.report.as_ref().expect("protocol cell").metrics;
    (run.record.values, m.peak_live_nodes, m.peak_resident_msgs, secs)
}

fn main() {
    let cli = Cli::parse("e12_population");
    let seeds = cli.seeds_or(if cli.smoke() { 1 } else { 3 });
    let ns: &[usize] =
        if cli.smoke() { &[100_000] } else { &[100_000, 200_000, 400_000, 1_000_000] };

    // -- Sweep 1: sparse-only population scale (ideal eligibility). -------
    let by_n = Sweep::new(
        "sparse_multicast_vs_n",
        seeds,
        ns.iter().map(|&n| subq_cell(format!("n={n}"), n, LAMBDA)).collect(),
    );
    // -- Sweep 2: the real-eligibility smoke cell. ------------------------
    let real = Sweep::new(
        "real_elig_100k",
        1,
        vec![subq_cell("real_n=100000".into(), 100_000, 24.0).real_elig()],
    );
    let reports = cli.run(vec![by_n, real]);

    // -- Before/after: dense-feasible overlap cells, both engines. --------
    let overlap_ns: &[usize] = if cli.smoke() { &[1_000] } else { &[1_000, 4_000] };
    let mut overlap = Vec::new();
    for &n in overlap_ns {
        let sparse_sc = subq_cell(format!("n={n}"), n, LAMBDA);
        let dense_sc = sparse_sc.clone().population(PopulationMode::Dense);
        let (sparse_rec, s_live, s_resident, s_secs) = probe(&sparse_sc, 1);
        let (dense_rec, d_live, d_resident, d_secs) = probe(&dense_sc, 1);
        // The peak_* gauges measure the engine itself and differ between
        // engines by design; every protocol observable must agree exactly.
        let strip = |rec: &[(std::borrow::Cow<'static, str>, f64)]| {
            rec.iter().filter(|(k, _)| !k.starts_with("peak_")).cloned().collect::<Vec<_>>()
        };
        assert_eq!(
            strip(&sparse_rec),
            strip(&dense_rec),
            "n={n}: sparse and dense records diverged — byte-identity broken"
        );
        assert_eq!(d_live, n as u64, "dense materializes everyone");
        overlap.push((n, d_secs, s_secs, d_live, s_live, d_resident, s_resident));
    }

    // -- Gauge probes on the big sparse cells (one seed each). ------------
    let mut gauges = Vec::new();
    for &n in ns {
        let (_, live, resident, secs) = probe(&subq_cell(format!("n={n}"), n, LAMBDA), 1);
        let ceiling = live_ceiling(n, LAMBDA);
        assert!(
            live <= ceiling,
            "n={n}: peak_live_nodes {live} exceeds the committee ceiling {ceiling}"
        );
        assert!(live as usize * 10 < n, "n={n}: peak_live_nodes {live} is not o(n)");
        gauges.push((n, live, resident, ceiling, secs));
    }

    if cli.markdown() {
        println!("# E12 — sparse population engine ({seeds} seed(s) per cell)\n");

        println!("## Multicast complexity at population scale (sparse, lambda = {LAMBDA})\n");
        header(&[
            "n",
            "ok",
            "rounds",
            "multicasts",
            "kbits",
            "kbits/log2^2(n)",
            "classical/n*log2^2(n)",
        ]);
        for (cell, &n) in reports[0].cells.iter().zip(ns) {
            let lg2 = (n as f64).log2().powi(2);
            row(&[
                format!("{n}"),
                format!("{}/{}", cell.count("all_ok"), cell.runs.len()),
                format!("{:.1}", cell.mean("rounds")),
                format!("{:.0}", cell.mean("multicasts")),
                format!("{:.1}", cell.mean("kbits")),
                format!("{:.3}", cell.mean("kbits") / lg2),
                format!("{:.3}", cell.mean("classical_msgs") / (n as f64 * lg2)),
            ]);
        }
        println!("\nTheorem 2 shape: multicast kbits stay polylog (the ratio column is");
        println!("near-flat in n), so total communication is O(n polylog n) while the");
        println!("engine only ever materializes the committee.\n");

        println!("## Real-eligibility cell (untabled VRF setup)\n");
        header(&["cell", "ok", "rounds", "multicasts"]);
        for cell in &reports[1].cells {
            row(&[
                cell.scenario.label.clone(),
                format!("{}/{}", cell.count("all_ok"), cell.runs.len()),
                format!("{:.1}", cell.mean("rounds")),
                format!("{:.0}", cell.mean("multicasts")),
            ]);
        }

        println!("\n## Dense vs sparse on the overlap (records asserted identical)\n");
        header(&[
            "n",
            "dense s",
            "sparse s",
            "speedup",
            "dense live",
            "sparse live",
            "dense inbox",
            "sparse resident",
        ]);
        for &(n, ds, ss, dl, sl, dr, sr) in &overlap {
            row(&[
                format!("{n}"),
                format!("{ds:.3}"),
                format!("{ss:.3}"),
                format!("{:.1}x", ds / ss.max(1e-9)),
                format!("{dl}"),
                format!("{sl}"),
                format!("{dr}"),
                format!("{sr}"),
            ]);
        }

        println!("\n## Memory ceiling on the sparse cells (asserted)\n");
        header(&["n", "peak live", "ceiling 64*lambda*log2(n)", "peak resident msgs", "wall s"]);
        for &(n, live, resident, ceiling, secs) in &gauges {
            row(&[
                format!("{n}"),
                format!("{live}"),
                format!("{ceiling}"),
                format!("{resident}"),
                format!("{secs:.2}"),
            ]);
        }
        println!("\nEvery sparse probe satisfied peak_live <= 64*lambda*log2(n) and");
        println!("peak_live < n/10: live state scales with the committee, not with n.");
    }
    cli.write_outputs(&reports);
}
