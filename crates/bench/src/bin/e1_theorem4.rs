//! E1 — Theorem 1/4: Ω(f²) messages are necessary under a strongly adaptive
//! adversary.
//!
//! Part A sweeps the message budget of the Dolev–Reischuk toy family and
//! shows the attack's violation rate collapsing once the protocol spends
//! more messages than the adversary can erase.
//!
//! Part B runs the quorum-starvation eraser against the paper's own
//! subquadratic protocol (defeated) and the quadratic baseline (survives) —
//! the model boundary Theorem 1 proves tight.

use std::sync::Arc;

use ba_adversary::CommitteeEraser;
use ba_bench::{header, row};
use ba_core::iter::{self, IterConfig};
use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
use ba_lowerbound::theorem4::run_cell;
use ba_sim::{Bit, CorruptionModel, SimConfig};

fn main() {
    println!("# E1 — Theorem 1/4: strongly adaptive adversaries force Omega(f^2) messages\n");

    println!("## Part A: Dolev-Reischuk pair vs. message-budget family (n=80, f=40, 30 seeds)\n");
    header(&["fanout k", "mean msgs", "(f/2)^2 ref", "isolation rate", "violation rate"]);
    let (n, f, seeds) = (80usize, 40usize, 30u64);
    for fanout in [0usize, 1, 2, 4, 8, 16, 32, 64] {
        let cell = run_cell(n, f, fanout, seeds);
        row(&[
            format!("{fanout}"),
            format!("{:.0}", cell.mean_messages),
            format!("{:.0}", (f as f64 / 2.0).powi(2)),
            format!("{:.2}", cell.isolation_rate),
            format!("{:.2}", cell.violation_rate),
        ]);
    }
    println!(
        "\nExpected shape: violations ~1.0 while messages are far below (f/2)^2, \
         collapsing to ~0 as |S(p)| outgrows the corruption budget.\n"
    );

    println!("## Part B: quorum-starvation eraser vs. the paper's protocols (10 seeds)\n");
    header(&["protocol", "n", "f", "model", "runs defeated", "mean removals"]);
    let seeds = 10u64;

    // Subquadratic protocol under the strongly adaptive eraser: defeated.
    let mut defeated = 0;
    let mut removals = 0u64;
    for seed in 0..seeds {
        let n = 400;
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 16.0)));
        let mut cfg = IterConfig::subq_half(n, elig);
        cfg.max_iters = 6;
        let sim = SimConfig::new(n, 190, CorruptionModel::StronglyAdaptive, seed);
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let adversary = CommitteeEraser::starve_quorum(cfg.quorum);
        let (report, verdict) = iter::run(&cfg, &sim, inputs, adversary);
        if !verdict.all_ok() {
            defeated += 1;
        }
        removals += report.metrics.removals;
    }
    row(&[
        "subq_half (C.2)".to_string(),
        "400".to_string(),
        "190".to_string(),
        "strongly adaptive".to_string(),
        format!("{defeated}/{seeds}"),
        format!("{:.0}", removals as f64 / seeds as f64),
    ]);

    // Quadratic protocol under the same adversary: survives.
    let mut defeated = 0;
    let mut removals = 0u64;
    for seed in 0..seeds {
        let n = 13;
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let cfg = IterConfig::quadratic_half(n, kc, seed);
        let sim = SimConfig::new(n, 6, CorruptionModel::StronglyAdaptive, seed);
        let (report, verdict) = iter::run(&cfg, &sim, vec![true; n], CommitteeEraser::new());
        if !verdict.all_ok() {
            defeated += 1;
        }
        removals += report.metrics.removals;
    }
    row(&[
        "quadratic_half (C.1)".to_string(),
        "13".to_string(),
        "6".to_string(),
        "strongly adaptive".to_string(),
        format!("{defeated}/{seeds}"),
        format!("{:.0}", removals as f64 / seeds as f64),
    ]);

    // Subquadratic protocol under the *adaptive* model (no removal): safe.
    let mut defeated = 0;
    for seed in 0..seeds {
        let n = 400;
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, 16.0)));
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, 40, CorruptionModel::Adaptive, seed);
        let adversary = CommitteeEraser::starve_quorum(cfg.quorum);
        let (_report, verdict) = iter::run(&cfg, &sim, vec![true; n], adversary);
        if !verdict.all_ok() {
            defeated += 1;
        }
    }
    row(&[
        "subq_half (C.2)".to_string(),
        "400".to_string(),
        "40".to_string(),
        "adaptive (no removal)".to_string(),
        format!("{defeated}/{seeds}"),
        "0".to_string(),
    ]);

    println!("\nExpected shape: the eraser defeats the subquadratic protocol only when");
    println!("after-the-fact removal is allowed; the quadratic protocol out-spends it.");
}
