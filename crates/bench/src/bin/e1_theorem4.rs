//! E1 — Theorem 1/4: Ω(f²) messages are necessary under a strongly adaptive
//! adversary.
//!
//! Part A sweeps the message budget of the Dolev–Reischuk toy family and
//! shows the attack's violation rate collapsing once the protocol spends
//! more messages than the adversary can erase.
//!
//! Part B runs the quorum-starvation eraser against the paper's own
//! subquadratic protocol (defeated) and the quadratic baseline (survives) —
//! the model boundary Theorem 1 proves tight.

use ba_bench::{
    header, row, AdversarySpec, CellReport, Cli, InputPattern, ProtocolSpec, Scenario, Sweep,
};
use ba_sim::CorruptionModel;

fn part_b_row(cell: &CellReport, name: &str, model: &str, seeds: u64, removals: bool) {
    row(&[
        name.to_string(),
        format!("{}", cell.scenario.n),
        format!("{}", cell.scenario.f),
        model.to_string(),
        format!("{}/{seeds}", cell.count("defeated")),
        if removals { format!("{:.0}", cell.mean("removals")) } else { "0".to_string() },
    ]);
}

fn main() {
    let cli = Cli::parse("e1_theorem4");
    let (n, f) = (80usize, 40usize);
    let part_a_seeds = cli.seeds_or(30);
    let part_b_seeds = cli.seeds_or(10);
    let fanouts: &[usize] = if cli.smoke() { &[0, 8, 64] } else { &[0, 1, 2, 4, 8, 16, 32, 64] };

    let part_a = Sweep::new(
        "dolev_reischuk_pair",
        part_a_seeds,
        fanouts
            .iter()
            .map(|&fanout| {
                Scenario::new(format!("fanout={fanout}"), n, ProtocolSpec::Theorem4 { fanout })
                    .f(f)
                    .model(CorruptionModel::StronglyAdaptive)
            })
            .collect(),
    );
    let part_b = Sweep::new(
        "quorum_starvation",
        part_b_seeds,
        vec![
            Scenario::new(
                "subq_strongly_adaptive",
                400,
                ProtocolSpec::SubqHalf { lambda: 16.0, max_iters: Some(6) },
            )
            .f(190)
            .model(CorruptionModel::StronglyAdaptive)
            .adversary(AdversarySpec::StarveQuorum),
            Scenario::new("quadratic_strongly_adaptive", 13, ProtocolSpec::QuadraticHalf)
                .f(6)
                .model(CorruptionModel::StronglyAdaptive)
                .inputs(InputPattern::Unanimous(true))
                .adversary(AdversarySpec::CommitteeEraser),
            Scenario::new(
                "subq_adaptive",
                400,
                ProtocolSpec::SubqHalf { lambda: 16.0, max_iters: None },
            )
            .f(40)
            .model(CorruptionModel::Adaptive)
            .inputs(InputPattern::Unanimous(true))
            .adversary(AdversarySpec::StarveQuorum),
        ],
    );
    let reports = cli.run(vec![part_a, part_b]);

    if cli.markdown() {
        println!("# E1 — Theorem 1/4: strongly adaptive adversaries force Omega(f^2) messages\n");

        println!(
            "## Part A: Dolev-Reischuk pair vs. message-budget family \
             (n={n}, f={f}, {part_a_seeds} seeds)\n"
        );
        header(&["fanout k", "mean msgs", "(f/2)^2 ref", "isolation rate", "violation rate"]);
        for (fanout, cell) in fanouts.iter().zip(&reports[0].cells) {
            row(&[
                format!("{fanout}"),
                format!("{:.0}", cell.mean("messages")),
                format!("{:.0}", (f as f64 / 2.0).powi(2)),
                format!("{:.2}", cell.rate("isolated")),
                format!("{:.2}", cell.rate("violated")),
            ]);
        }
        println!(
            "\nExpected shape: violations ~1.0 while messages are far below (f/2)^2, \
             collapsing to ~0 as |S(p)| outgrows the corruption budget.\n"
        );

        println!("## Part B: quorum-starvation eraser vs. the paper's protocols ({part_b_seeds} seeds)\n");
        header(&["protocol", "n", "f", "model", "runs defeated", "mean removals"]);
        let cells = &reports[1].cells;
        part_b_row(&cells[0], "subq_half (C.2)", "strongly adaptive", part_b_seeds, true);
        part_b_row(&cells[1], "quadratic_half (C.1)", "strongly adaptive", part_b_seeds, true);
        part_b_row(&cells[2], "subq_half (C.2)", "adaptive (no removal)", part_b_seeds, false);

        println!("\nExpected shape: the eraser defeats the subquadratic protocol only when");
        println!("after-the-fact removal is allowed; the quadratic protocol out-spends it.");
    }
    cli.write_outputs(&reports);
}
