//! E7 — Lemmas 10 and 11: committee concentration.
//!
//! * Lemma 11(i): fewer than `λ/2` already-corrupt nodes are eligible for
//!   any given message — failure probability `exp(−Ω(ε²λ))`.
//! * Lemma 11(ii): at least `λ/2` so-far-honest nodes are eligible —
//!   same decay.
//! * Lemma 10: if `εn/2` honest nodes have terminated, some terminated node
//!   is eligible to send `Terminate` except with probability
//!   `(1 − λ/n)^{εn/2} < exp(−ελ/2)`.
//!
//! The sweep over λ shows the exponential decay of each bad event.

use ba_bench::{header, row};
use ba_fmine::{Eligibility, IdealMine, MineParams, MineTag, MsgKind};
use ba_sim::NodeId;

fn bad_event_rates(n: usize, f: usize, lambda: f64, trials: u64) -> (f64, f64, f64) {
    let mut corrupt_quorums = 0u64; // Lemma 11(i) failure
    let mut honest_starved = 0u64; // Lemma 11(ii) failure
    let mut terminate_mute = 0u64; // Lemma 10 failure
    let quorum = (lambda / 2.0).ceil() as usize;
    let eps = 0.5 - f as f64 / n as f64;
    let terminators = ((eps * n as f64) / 2.0).ceil() as usize;
    for t in 0..trials {
        let fmine =
            IdealMine::new(t.wrapping_mul(0x9E37).wrapping_add(11), MineParams::new(n, lambda));
        let tag = MineTag::new(MsgKind::Vote, t, true);
        let corrupt_eligible =
            (n - f..n).filter(|&i| fmine.mine(NodeId(i), &tag).is_some()).count();
        let honest_eligible = (0..n - f).filter(|&i| fmine.mine(NodeId(i), &tag).is_some()).count();
        if corrupt_eligible >= quorum {
            corrupt_quorums += 1;
        }
        if honest_eligible < quorum {
            honest_starved += 1;
        }
        // Lemma 10: the first `terminators` honest nodes have terminated;
        // does any of them hold a Terminate ticket?
        let term_tag = MineTag::terminate(true);
        let any = (0..terminators.min(n - f)).any(|i| fmine.mine(NodeId(i), &term_tag).is_some());
        if !any {
            terminate_mute += 1;
        }
    }
    (
        corrupt_quorums as f64 / trials as f64,
        honest_starved as f64 / trials as f64,
        terminate_mute as f64 / trials as f64,
    )
}

fn main() {
    let trials = 3_000u64;
    println!("# E7 — Lemmas 10/11: committee concentration ({trials} trials per cell)\n");

    let n = 600;
    let f = 240; // f/n = 0.4 => eps = 0.1
    println!("n = {n}, f = {f} (eps = 0.1), quorum = lambda/2\n");
    header(&[
        "lambda",
        "P[corrupt >= quorum] (L11.i)",
        "P[honest < quorum] (L11.ii)",
        "P[no terminator ticket] (L10)",
    ]);
    for lambda in [8.0f64, 16.0, 24.0, 32.0, 48.0, 64.0] {
        let (ci, hs, tm) = bad_event_rates(n, f, lambda, trials);
        row(&[format!("{lambda:.0}"), format!("{ci:.4}"), format!("{hs:.4}"), format!("{tm:.4}")]);
    }

    println!("\n## Sensitivity to the corruption fraction (lambda = 32)\n");
    header(&["f/n", "P[corrupt >= quorum]", "P[honest < quorum]"]);
    for frac in [0.25f64, 0.35, 0.45, 0.50, 0.55] {
        let f = (n as f64 * frac) as usize;
        let (ci, hs, _) = bad_event_rates(n, f, 32.0, trials);
        row(&[format!("{frac:.2}"), format!("{ci:.4}"), format!("{hs:.4}")]);
    }

    println!("\nExpected shape: all three bad-event rates decay exponentially in lambda");
    println!("(Chernoff); the corrupt-quorum rate jumps from ~0 to ~1 as f/n crosses 1/2.");
}
