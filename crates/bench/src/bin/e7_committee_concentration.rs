//! E7 — Lemmas 10 and 11: committee concentration.
//!
//! * Lemma 11(i): fewer than `λ/2` already-corrupt nodes are eligible for
//!   any given message — failure probability `exp(−Ω(ε²λ))`.
//! * Lemma 11(ii): at least `λ/2` so-far-honest nodes are eligible —
//!   same decay.
//! * Lemma 10: if `εn/2` honest nodes have terminated, some terminated node
//!   is eligible to send `Terminate` except with probability
//!   `(1 − λ/n)^{εn/2} < exp(−ελ/2)`.
//!
//! The sweep over λ shows the exponential decay of each bad event. Each
//! trial is one sweep seed, so the sampling fans out across workers.

use ba_bench::{header, row, Cli, ProtocolSpec, Scenario, Sweep};

const N: usize = 600;

fn cell(label: String, f: usize, lambda: f64) -> Scenario {
    Scenario::new(label, N, ProtocolSpec::CommitteeTails { lambda }).f(f)
}

fn main() {
    let cli = Cli::parse("e7_committee_concentration");
    let trials = cli.seeds_or(if cli.smoke() { 100 } else { 3_000 });
    let f = 240; // f/n = 0.4 => eps = 0.1
    let lambdas: &[f64] =
        if cli.smoke() { &[8.0, 32.0] } else { &[8.0, 16.0, 24.0, 32.0, 48.0, 64.0] };
    let fracs: &[f64] = if cli.smoke() { &[0.25] } else { &[0.25, 0.35, 0.45, 0.50, 0.55] };

    let by_lambda = Sweep::new(
        "bad_events_vs_lambda",
        trials,
        lambdas.iter().map(|&lambda| cell(format!("lambda={lambda}"), f, lambda)).collect(),
    );
    let by_frac = Sweep::new(
        "bad_events_vs_corruption",
        trials,
        fracs
            .iter()
            .map(|&frac| cell(format!("f/n={frac:.2}"), (N as f64 * frac) as usize, 32.0))
            .collect(),
    );
    let reports = cli.run(vec![by_lambda, by_frac]);

    if cli.markdown() {
        println!("# E7 — Lemmas 10/11: committee concentration ({trials} trials per cell)\n");

        println!("n = {N}, f = {f} (eps = 0.1), quorum = lambda/2\n");
        header(&[
            "lambda",
            "P[corrupt >= quorum] (L11.i)",
            "P[honest < quorum] (L11.ii)",
            "P[no terminator ticket] (L10)",
        ]);
        for (cell, &lambda) in reports[0].cells.iter().zip(lambdas) {
            row(&[
                format!("{lambda:.0}"),
                format!("{:.4}", cell.rate("corrupt_quorum")),
                format!("{:.4}", cell.rate("honest_starved")),
                format!("{:.4}", cell.rate("terminate_mute")),
            ]);
        }

        println!("\n## Sensitivity to the corruption fraction (lambda = 32)\n");
        header(&["f/n", "P[corrupt >= quorum]", "P[honest < quorum]"]);
        for (cell, &frac) in reports[1].cells.iter().zip(fracs) {
            row(&[
                format!("{frac:.2}"),
                format!("{:.4}", cell.rate("corrupt_quorum")),
                format!("{:.4}", cell.rate("honest_starved")),
            ]);
        }

        println!("\nExpected shape: all three bad-event rates decay exponentially in lambda");
        println!("(Chernoff); the corrupt-quorum rate jumps from ~0 to ~1 as f/n crosses 1/2.");
    }
    cli.write_outputs(&reports);
}
