//! E5 — Theorem 3: without setup assumptions, a protocol with multicast
//! complexity `C` cannot tolerate `C` adaptive corruptions.
//!
//! Runs the `Q — 1 — Q′` merged execution across committee sizes and
//! reports: both sides' validity, node 1's forced inconsistency, and the
//! number of adaptive corruptions the honest-1 interpretation needs
//! (= distinct speakers ≤ multicast complexity).

use ba_bench::{header, row};
use ba_lowerbound::theorem3::run_experiment;

fn main() {
    println!("# E5 — Theorem 3: the Q — 1 — Q' hypothetical experiment\n");
    println!("Candidate: committee-echo broadcast without PKI (C = committee + 1 multicasts).\n");

    header(&[
        "n per side",
        "committee",
        "Q valid (out 0)",
        "Q' valid (out 1)",
        "node-1 output",
        "corruptions needed",
        "contradiction",
    ]);
    for (n, committee) in [(12usize, 2usize), (20, 4), (50, 6), (100, 8), (200, 12)] {
        let rep = run_experiment(n, committee);
        row(&[
            format!("{n}"),
            format!("{committee}"),
            format!("{}", rep.q_valid),
            format!("{}", rep.q_prime_valid),
            format!("{:?}", rep.node1_output.map(|b| b as u8)),
            format!("{}", rep.corruptions_needed),
            format!("{}", rep.contradiction_established()),
        ]);
    }

    println!("\nReading the table: each world's validity pins its outputs, so whatever");
    println!("node 1 outputs contradicts consistency in one of the two interpretations;");
    println!("the adversary implementing the honest-1 interpretation corrupts only the");
    println!("speakers — sublinear in n. Hence no setup-free BA with sublinear multicast");
    println!("complexity tolerates that many adaptive corruptions.");
}
