//! E5 — Theorem 3: without setup assumptions, a protocol with multicast
//! complexity `C` cannot tolerate `C` adaptive corruptions.
//!
//! Runs the `Q — 1 — Q′` merged execution across committee sizes and
//! reports: both sides' validity, node 1's forced inconsistency, and the
//! number of adaptive corruptions the honest-1 interpretation needs
//! (= distinct speakers ≤ multicast complexity).

use ba_bench::{header, row, Cli, ProtocolSpec, Scenario, Sweep};

fn main() {
    let cli = Cli::parse("e5_theorem3");
    let grid: &[(usize, usize)] = if cli.smoke() {
        &[(12, 2), (20, 4)]
    } else {
        &[(12, 2), (20, 4), (50, 6), (100, 8), (200, 12)]
    };

    // The merged execution is deterministic: one "seed" per cell.
    let sweep = Sweep::new(
        "merged_execution",
        1,
        grid.iter()
            .map(|&(n, committee)| {
                Scenario::new(
                    format!("n={n},committee={committee}"),
                    n,
                    ProtocolSpec::Theorem3 { committee },
                )
            })
            .collect(),
    );
    let reports = cli.run(vec![sweep]);

    if cli.markdown() {
        println!("# E5 — Theorem 3: the Q — 1 — Q' hypothetical experiment\n");
        println!(
            "Candidate: committee-echo broadcast without PKI (C = committee + 1 multicasts).\n"
        );

        header(&[
            "n per side",
            "committee",
            "Q valid (out 0)",
            "Q' valid (out 1)",
            "node-1 output",
            "corruptions needed",
            "contradiction",
        ]);
        for (cell, &(n, committee)) in reports[0].cells.iter().zip(grid) {
            let run = &cell.runs[0];
            let node1 = match run.optional_bit("node1_output") {
                Some(bit) => format!("Some({})", bit as u8),
                None => "None".to_string(),
            };
            row(&[
                format!("{n}"),
                format!("{committee}"),
                format!("{}", run.flag("q_valid")),
                format!("{}", run.flag("q_prime_valid")),
                node1,
                format!("{}", run.get("corruptions_needed").unwrap_or(0.0) as u64),
                format!("{}", run.flag("contradiction")),
            ]);
        }

        println!("\nReading the table: each world's validity pins its outputs, so whatever");
        println!("node 1 outputs contradicts consistency in one of the two interpretations;");
        println!("the adversary implementing the honest-1 interpretation corrupts only the");
        println!("speakers — sublinear in n. Hence no setup-free BA with sublinear multicast");
        println!("complexity tolerates that many adaptive corruptions.");
    }
    cli.write_outputs(&reports);
}
