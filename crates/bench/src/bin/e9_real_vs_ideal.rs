//! E9 — Appendix D/E: the real-world VRF compiler preserves the
//! `F_mine`-hybrid protocol's behaviour.
//!
//! Runs the subquadratic protocol over both eligibility backends with
//! matched parameters and compares outcome statistics: success rates,
//! rounds, honest multicasts, and committee sizes. (The two worlds use
//! independent randomness, so the comparison is distributional, exactly as
//! the Appendix E reduction argues.)

use std::sync::Arc;

use ba_bench::{header, row, Stats};
use ba_core::iter::{self, IterConfig};
use ba_fmine::{Eligibility, IdealMine, MineParams, MineTag, MsgKind, RealMine};
use ba_sim::{Bit, CorruptionModel, NodeId, Passive, SimConfig};

const SEEDS: u64 = 15;

struct WorldStats {
    success: u64,
    rounds: Stats,
    multicasts: Stats,
}

fn run_world(n: usize, lambda: f64, real: bool) -> WorldStats {
    let mut rounds = Vec::new();
    let mut multicasts = Vec::new();
    let mut success = 0;
    for seed in 0..SEEDS {
        let elig: Arc<dyn Eligibility> = if real {
            Arc::new(RealMine::from_seed(seed, MineParams::new(n, lambda)))
        } else {
            Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)))
        };
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let (report, verdict) = iter::run(&cfg, &sim, inputs, Passive);
        if verdict.all_ok() {
            success += 1;
        }
        rounds.push(report.rounds_used as f64);
        multicasts.push(report.metrics.honest_multicasts as f64);
    }
    WorldStats { success, rounds: Stats::of(&rounds), multicasts: Stats::of(&multicasts) }
}

fn committee_sizes(n: usize, lambda: f64, real: bool) -> Stats {
    let mut sizes = Vec::new();
    for seed in 100..100 + SEEDS {
        let elig: Arc<dyn Eligibility> = if real {
            Arc::new(RealMine::from_seed(seed, MineParams::new(n, lambda)))
        } else {
            Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)))
        };
        for iter_no in 0..4u64 {
            let tag = MineTag::new(MsgKind::Vote, iter_no, true);
            let size = (0..n).filter(|&i| elig.mine(NodeId(i), &tag).is_some()).count();
            sizes.push(size as f64);
        }
    }
    Stats::of(&sizes)
}

fn main() {
    let (n, lambda) = (96usize, 24.0);
    println!("# E9 — F_mine-hybrid vs real-world VRF compiler");
    println!("n = {n}, lambda = {lambda}, {SEEDS} seeds each, honest executions\n");

    let ideal = run_world(n, lambda, false);
    let real = run_world(n, lambda, true);

    header(&["world", "success", "mean rounds", "mean multicasts", "multicast stddev"]);
    row(&[
        "F_mine hybrid (Fig. 1)".to_string(),
        format!("{}/{SEEDS}", ideal.success),
        format!("{:.1}", ideal.rounds.mean),
        format!("{:.0}", ideal.multicasts.mean),
        format!("{:.0}", ideal.multicasts.stddev),
    ]);
    row(&[
        "VRF compiler (App. D)".to_string(),
        format!("{}/{SEEDS}", real.success),
        format!("{:.1}", real.rounds.mean),
        format!("{:.0}", real.multicasts.mean),
        format!("{:.0}", real.multicasts.stddev),
    ]);

    println!("\n## Committee-size distributions (vote committees)\n");
    header(&["world", "mean", "stddev", "min", "max"]);
    let ci = committee_sizes(n, lambda, false);
    let cr = committee_sizes(n, lambda, true);
    row(&[
        "F_mine hybrid".to_string(),
        format!("{:.1}", ci.mean),
        format!("{:.1}", ci.stddev),
        format!("{:.0}", ci.min),
        format!("{:.0}", ci.max),
    ]);
    row(&[
        "VRF compiler".to_string(),
        format!("{:.1}", cr.mean),
        format!("{:.1}", cr.stddev),
        format!("{:.0}", cr.min),
        format!("{:.0}", cr.max),
    ]);

    println!("\nExpected shape: statistically indistinguishable columns — same success");
    println!("rate, same round/multicast means, committee sizes concentrated around");
    println!("lambda = {lambda} in both worlds (Appendix E's reduction, measured).");
}
