//! E9 — Appendix D/E: the real-world VRF compiler preserves the
//! `F_mine`-hybrid protocol's behaviour.
//!
//! Runs the subquadratic protocol over both eligibility backends with
//! matched parameters and compares outcome statistics: success rates,
//! rounds, honest multicasts, and committee sizes. (The two worlds use
//! independent randomness, so the comparison is distributional, exactly as
//! the Appendix E reduction argues.)

use ba_bench::{header, row, CellReport, Cli, ProtocolSpec, Scenario, Sweep};

fn main() {
    let cli = Cli::parse("e9_real_vs_ideal");
    let seeds = cli.seeds_or(15);
    let (n, lambda) = (96usize, 24.0);

    let world = |label: &str, real: bool| {
        let scenario = Scenario::new(label, n, ProtocolSpec::SubqHalf { lambda, max_iters: None });
        if real {
            scenario.real_elig()
        } else {
            scenario
        }
    };
    let committee = |label: &str, real: bool| {
        let scenario =
            Scenario::new(label, n, ProtocolSpec::CommitteeSample { lambda }).seed_offset(100);
        if real {
            scenario.real_elig()
        } else {
            scenario
        }
    };
    let sweeps = vec![
        Sweep::new("worlds", seeds, vec![world("ideal", false), world("real", true)]),
        Sweep::new(
            "vote_committees",
            seeds,
            vec![committee("ideal", false), committee("real", true)],
        ),
    ];
    let reports = cli.run(sweeps);

    if cli.markdown() {
        println!("# E9 — F_mine-hybrid vs real-world VRF compiler");
        println!("n = {n}, lambda = {lambda}, {seeds} seeds each, honest executions\n");

        let world_row = |name: &str, cell: &CellReport| {
            let multicasts = cell.stats("multicasts");
            row(&[
                name.to_string(),
                format!("{}/{seeds}", cell.count("all_ok")),
                format!("{:.1}", cell.mean("rounds")),
                format!("{:.0}", multicasts.mean),
                format!("{:.0}", multicasts.stddev),
            ]);
        };
        header(&["world", "success", "mean rounds", "mean multicasts", "multicast stddev"]);
        world_row("F_mine hybrid (Fig. 1)", reports[0].cell("ideal"));
        world_row("VRF compiler (App. D)", reports[0].cell("real"));

        println!("\n## Committee-size distributions (vote committees)\n");
        header(&["world", "mean", "stddev", "min", "max"]);
        let committee_row = |name: &str, cell: &CellReport| {
            let s = cell.stats("committee_size");
            row(&[
                name.to_string(),
                format!("{:.1}", s.mean),
                format!("{:.1}", s.stddev),
                format!("{:.0}", s.min),
                format!("{:.0}", s.max),
            ]);
        };
        committee_row("F_mine hybrid", reports[1].cell("ideal"));
        committee_row("VRF compiler", reports[1].cell("real"));

        println!("\nExpected shape: statistically indistinguishable columns — same success");
        println!("rate, same round/multicast means, committee sizes concentrated around");
        println!("lambda = {lambda} in both worlds (Appendix E's reduction, measured).");
    }
    cli.write_outputs(&reports);
}
