//! E14 — certificate encodings: the vector-of-signatures quorum
//! certificate vs the aggregate multi-signature + signer-bitmap backend.
//!
//! The paper counts a quorum certificate as Θ(quorum) signatures — the
//! dominant constant in every bit bound (footnote 11 prices the vector at
//! `quorum · (32 + |sig|)` bits per certificate-bearing message). The
//! aggregate backend replaces that with **one** multi-signature plus an
//! `n`-bit signer bitmap, so the certificate share of a message drops from
//! `Θ(quorum · |sig|)` to `n + |sig|` bits while the protocol's decisions
//! are provably unchanged (the certificate attests the same quorum on the
//! same statement; see docs/CERTIFICATES.md).
//!
//! This experiment runs the signed quadratic family and the mined
//! subquadratic family under both encodings and reports:
//!
//! * `cert_bits` — the certificate share of honest traffic, whose
//!   vector/aggregate ratio at `n ≥ 256` must be ≥ 4× (the headline
//!   deliverable);
//! * the decision observables (rounds, multicasts, verdicts, decisions),
//!   asserted identical across encodings cell by cell;
//! * the mined family's silent fallback: `F_mine` tickets prove
//!   *eligibility*, not knowledge of a signing key, so there is nothing to
//!   aggregate and the aggregate-encoded run is byte-identical to vector.

use ba_bench::{header, row, CellReport, Cli, ProtocolSpec, Scenario, Sweep, SweepReport};
use ba_core::cert::CertEncoding;

fn scenarios(
    ns: &[usize],
    encoding: CertEncoding,
    make: impl Fn(usize) -> ProtocolSpec,
) -> Vec<Scenario> {
    ns.iter()
        .map(|&n| Scenario::new(format!("n={n}"), n, make(n)).cert_encoding(encoding))
        .collect()
}

/// Per-seed samples of one observable across a sweep cell.
fn samples(cell: &CellReport, obs: &str) -> Vec<f64> {
    cell.samples(obs)
}

/// Asserts that every decision observable matches seed-for-seed between the
/// vector-encoded and aggregate-encoded runs of the same grid.
fn assert_decision_identical(vector: &SweepReport, aggregate: &SweepReport) {
    const DECISION_OBSERVABLES: &[&str] = &[
        "rounds",
        "multicasts",
        "unicasts",
        "classical_msgs",
        "corrupt_sends",
        "injected_sends",
        "corruptions",
        "removals",
        "dropped_sends",
        "consistent",
        "valid",
        "terminated",
        "all_ok",
        "decision",
    ];
    for (vc, ac) in vector.cells.iter().zip(&aggregate.cells) {
        for obs in DECISION_OBSERVABLES {
            assert_eq!(
                samples(vc, obs),
                samples(ac, obs),
                "{} / {}: {obs} diverged between encodings",
                vector.title,
                vc.scenario.label
            );
        }
    }
}

fn table(vector: &SweepReport, aggregate: &SweepReport) {
    for (vc, ac) in vector.cells.iter().zip(&aggregate.cells) {
        let vbits = vc.mean("cert_bits");
        let abits = ac.mean("cert_bits");
        let ratio = if abits > 0.0 { vbits / abits } else { 1.0 };
        row(&[
            format!("{}", vc.scenario.n),
            format!("{:.1}", vbits / 1000.0),
            format!("{:.1}", abits / 1000.0),
            format!("{ratio:.1}x"),
            format!("{:.0}", vc.mean("kbits")),
            format!("{:.0}", ac.mean("kbits")),
            format!("{}/{}", ac.count("all_ok"), ac.runs.len()),
        ]);
    }
}

fn main() {
    let cli = Cli::parse("e14_certificates");
    let lambda = 24.0;
    let seeds = cli.seeds_or(20);
    let quad_ns: &[usize] = if cli.smoke() { &[16] } else { &[64, 256] };
    let subq_ns: &[usize] = if cli.smoke() { &[64] } else { &[64, 256] };

    let sweeps = vec![
        Sweep::new(
            "quadratic_half/vector",
            seeds,
            scenarios(quad_ns, CertEncoding::Vector, |_| ProtocolSpec::QuadraticHalf),
        ),
        Sweep::new(
            "quadratic_half/aggregate",
            seeds,
            scenarios(quad_ns, CertEncoding::Aggregate, |_| ProtocolSpec::QuadraticHalf),
        ),
        Sweep::new(
            "subq_half/vector",
            seeds,
            scenarios(subq_ns, CertEncoding::Vector, |_| ProtocolSpec::SubqHalf {
                lambda,
                max_iters: None,
            }),
        ),
        Sweep::new(
            "subq_half/aggregate",
            seeds,
            scenarios(subq_ns, CertEncoding::Aggregate, |_| ProtocolSpec::SubqHalf {
                lambda,
                max_iters: None,
            }),
        ),
    ];
    let reports = cli.run(sweeps);

    // A grid-wide --cert-encoding override collapses the paired sweeps onto
    // one encoding; the cross-encoding assertions only make sense without it.
    if cli.cert_encoding.is_none() {
        // Headline: identical decisions, strictly cheaper certificates.
        assert_decision_identical(&reports[0], &reports[1]);
        assert_decision_identical(&reports[2], &reports[3]);
        for (vc, ac) in reports[0].cells.iter().zip(&reports[1].cells) {
            let (vbits, abits) = (vc.mean("cert_bits"), ac.mean("cert_bits"));
            assert!(
                abits < vbits,
                "aggregate certificates must be smaller (n={}): {vbits} -> {abits}",
                vc.scenario.n
            );
            if vc.scenario.n >= 256 {
                assert!(
                    vbits >= 4.0 * abits,
                    "cert_bits must shrink >= 4x at n={}: {vbits} vs {abits}",
                    vc.scenario.n
                );
            }
        }
        // Mined regime: no signing keys behind the tickets, so the
        // aggregate request falls back to vector byte-for-byte.
        for (vc, ac) in reports[2].cells.iter().zip(&reports[3].cells) {
            assert_eq!(
                samples(vc, "cert_bits"),
                samples(ac, "cert_bits"),
                "mined-family fallback must be byte-identical (n={})",
                vc.scenario.n
            );
        }
    }

    if cli.markdown() {
        println!("# E14 — certificate encodings (lambda = {lambda}, {seeds} seeds)\n");

        println!("## quadratic_half (signed regime: real aggregation)\n");
        header(&[
            "n",
            "vector cert kbits",
            "aggregate cert kbits",
            "ratio",
            "vector kbits",
            "aggregate kbits",
            "ok",
        ]);
        table(&reports[0], &reports[1]);

        println!("\n## subq_half (mined regime: silent fallback to vector)\n");
        header(&[
            "n",
            "vector cert kbits",
            "aggregate cert kbits",
            "ratio",
            "vector kbits",
            "aggregate kbits",
            "ok",
        ]);
        table(&reports[2], &reports[3]);

        println!("\nExpected shape: the signed family's certificate bits shrink from");
        println!("Theta(quorum * |sig|) to n + |sig| per certificate (>= 4x at n >= 256)");
        println!("with every decision observable identical; the mined family cannot");
        println!("aggregate eligibility tickets and matches vector exactly.");
    }
    cli.write_outputs(&reports);
}
