//! E13 — the transport matrix: virtual lockstep vs simulated partial
//! synchrony vs real sockets.
//!
//! The paper's protocols are specified in the synchronous model: a message
//! multicast in round `r` is in every honest inbox at round `r + 1`. This
//! experiment runs the same protocol state machines — byte-for-byte the
//! same stepping code — under the three [`ba_sim::Transport`] backends and
//! reports what the delivery substrate costs:
//!
//! * **`lockstep`** — the virtual synchronous round clock. No wall-clock
//!   latency exists; the nominal commit latency column is derived as
//!   `rounds × DEFAULT_ROUND_MS` for comparison against the timed modes.
//! * **`latency`** — the simulated partial-synchrony clock: per-link
//!   delays drawn from a deterministic per-message RNG, timeout-paced
//!   rounds of `DEFAULT_ROUND_MS`. Any positive delay pushes delivery at
//!   least one round slot past lockstep — and the table shows the two
//!   families react very differently: the epoch protocol absorbs the slip
//!   (votes carry epoch tags and epochs span several slots), while the
//!   iteration protocol's tightly phase-locked machine loses liveness
//!   entirely (`ok 0/N`). The synchrony assumption the paper states
//!   up front is load-bearing, and this cell prices it.
//! * **`latency` with GST > 0** — zero per-link delay, but every message
//!   sent before the Global Stabilization Time is held back until GST
//!   (the classic partial-synchrony adversary). After GST the network is
//!   exactly synchronous, so the iteration protocol *recovers*: early
//!   iterations burn, post-GST iterations commit — liveness after GST,
//!   with the commit-latency percentiles pricing the recovery. The `late`
//!   column counts deliveries that missed their synchronous slot.
//! * **`tcp`** — real loopback sockets, one OS thread per node, genuine
//!   wall-clock percentiles. Verdicts and protocol observables are
//!   asserted identical to lockstep (the sans-I/O contract); only the
//!   `latency_*` substrate observables differ run to run, which is why CI
//!   diffs this experiment's report with `--ignore-observable
//!   'latency_*'`.
//!
//! Two protocol families cover both simulator drivers: Theorem 2's
//! iteration protocol (`subq_half`) and the §3.2 epoch protocol
//! (`subq_third`).

use ba_bench::{header, row, Cli, InputPattern, ProtocolSpec, Scenario, Sweep};
use ba_sim::{DelayDist, TransportSpec, DEFAULT_ROUND_MS};

/// The delay law for the slip cell: 1–5 ms per link, i.i.d. per message.
/// Uniform (not Exp) so the goldens are platform-exact — see
/// `DelayDist::Exp`'s determinism caveat.
const DIST: DelayDist = DelayDist::Uniform { lo_ms: 1, hi_ms: 5 };

/// GST for the post-stabilization cell: messages sent in the first five
/// round slots are held until this instant. Zero per-link delay isolates
/// the holdback — after GST the network is exactly synchronous, so the
/// cell demonstrates liveness-after-GST rather than compounding it with
/// the slip regime.
const GST_MS: u64 = 50;

fn transports() -> Vec<(&'static str, TransportSpec)> {
    vec![
        ("lockstep", TransportSpec::Lockstep),
        ("latency", TransportSpec::Latency { round_ms: DEFAULT_ROUND_MS, gst_ms: 0, dist: DIST }),
        (
            "latency_gst50",
            TransportSpec::Latency {
                round_ms: DEFAULT_ROUND_MS,
                gst_ms: GST_MS,
                dist: DelayDist::Zero,
            },
        ),
        ("tcp", TransportSpec::Tcp),
    ]
}

fn family_sweep(seeds: u64, family: &str, n: usize, spec: ProtocolSpec) -> Sweep {
    let cells = transports()
        .into_iter()
        .map(|(name, transport)| {
            Scenario::new(name.to_string(), n, spec.clone())
                .inputs(InputPattern::Unanimous(true))
                .transport(transport)
        })
        .collect();
    Sweep::new(family, seeds, cells)
}

fn main() {
    let cli = Cli::parse("e13_realclock");
    let seeds = cli.seeds_or(if cli.smoke() { 2 } else { 5 });
    let n = if cli.smoke() { 16 } else { 24 };

    let sweeps = vec![
        family_sweep(
            seeds,
            "subq_half",
            n,
            ProtocolSpec::SubqHalf { lambda: 12.0, max_iters: Some(8) },
        ),
        family_sweep(seeds, "subq_third", n, ProtocolSpec::SubqThird { lambda: 10.0, epochs: 5 }),
    ];
    let reports = cli.run(sweeps);

    if cli.markdown() {
        println!("# E13 — transport matrix ({seeds} seed(s) per cell, n = {n})\n");
        for report in &reports {
            println!("## {}\n", report.title);
            header(&[
                "transport",
                "ok",
                "rounds",
                "commit p50 ms",
                "commit p95 ms",
                "commit p99 ms",
                "delay p50 ms",
                "delay p95 ms",
                "late",
                "undelivered",
            ]);
            for cell in &report.cells {
                let ok = format!("{}/{}", cell.count("all_ok"), cell.runs.len());
                let rounds = cell.mean("rounds");
                let is_lockstep = cell.scenario.transport == TransportSpec::Lockstep;
                let (p50, p95, p99, d50, d95, late, undelivered) = if is_lockstep {
                    // The virtual clock has no latency observables; the
                    // nominal commit latency is the round count priced at
                    // the timed modes' round duration.
                    let nominal = rounds * DEFAULT_ROUND_MS as f64;
                    (nominal, nominal, nominal, 0.0, 0.0, 0.0, 0.0)
                } else {
                    (
                        cell.mean("latency_commit_p50_ms"),
                        cell.mean("latency_commit_p95_ms"),
                        cell.mean("latency_commit_p99_ms"),
                        cell.mean("latency_delay_p50_ms"),
                        cell.mean("latency_delay_p95_ms"),
                        cell.mean("latency_late_deliveries"),
                        cell.mean("latency_undelivered"),
                    )
                };
                row(&[
                    cell.scenario.label.clone(),
                    ok,
                    format!("{rounds:.1}"),
                    format!("{p50:.1}"),
                    format!("{p95:.1}"),
                    format!("{p99:.1}"),
                    format!("{d50:.1}"),
                    format!("{d95:.1}"),
                    format!("{late:.0}"),
                    format!("{undelivered:.0}"),
                ]);
            }
            println!();
        }
        println!("lockstep commit latency is nominal (rounds x {DEFAULT_ROUND_MS} ms virtual");
        println!("rounds); latency cells price delivery slip and the GST hold-back in");
        println!("simulated milliseconds; tcp cells are genuine wall-clock loopback numbers.");
    }
    cli.write_outputs(&reports);
}
