//! E6 — Lemma 12: in every iteration, with probability ≥ 1/(2e) a unique
//! so-far-honest leader emerges and no corrupt node is elected.
//!
//! Directly samples the leader-election stochastic process: `n` honest
//! propose attempts (one per node, difficulty `1/(2n)`) plus `2f` corrupt
//! attempts (both bits), and counts iterations with exactly one successful
//! honest attempt and zero corrupt successes. Each iteration is one sweep
//! seed, so the sampling fans out across worker threads.

use ba_bench::{header, row, Cli, ProtocolSpec, Scenario, Sweep};

fn main() {
    let cli = Cli::parse("e6_good_iteration");
    let iters = cli.seeds_or(if cli.smoke() { 200 } else { 20_000 });
    let grid: &[(usize, f64)] = if cli.smoke() {
        &[(100, 0.0), (100, 0.49)]
    } else {
        &[(100, 0.0), (100, 0.25), (100, 0.49), (400, 0.0), (400, 0.25), (400, 0.49), (1000, 0.49)]
    };

    let sweep = Sweep::new(
        "leader_election",
        iters,
        grid.iter()
            .map(|&(n, f_frac)| {
                let f = (n as f64 * f_frac) as usize;
                Scenario::new(
                    format!("n={n},f={f}"),
                    n,
                    ProtocolSpec::GoodIteration { lambda: 8.0, mine_seed: 7 + n as u64 },
                )
                .f(f)
            })
            .collect(),
    );
    let reports = cli.run(vec![sweep]);

    if cli.markdown() {
        let bound = 1.0 / (2.0 * std::f64::consts::E);
        println!("# E6 — Lemma 12: good-iteration frequency ({iters} iterations per cell)\n");
        println!(
            "Lemma 12 bound: every iteration is good with probability >= 1/(2e) = {bound:.3}\n"
        );

        header(&["n", "f", "P[good iteration]", "P[unique proposer]", ">= 1/(2e)?"]);
        for cell in &reports[0].cells {
            let good = cell.rate("good");
            row(&[
                format!("{}", cell.scenario.n),
                format!("{}", cell.scenario.f),
                format!("{good:.3}"),
                format!("{:.3}", cell.rate("unique")),
                format!("{}", good >= bound),
            ]);
        }

        println!("\nExpected shape: P[unique proposer] approaches 1/e = 0.368 (the lemma's");
        println!("counting step) and P[good] >= 1/(2e) = {bound:.3} through f ~ n/3. Near");
        println!("f = n/2 corrupt nodes' double-grinding dilutes the constant to ~0.12 —");
        println!("still Theta(1), so expected-constant-round survives (see EXPERIMENTS.md).");
    }
    cli.write_outputs(&reports);
}
