//! E6 — Lemma 12: in every iteration, with probability ≥ 1/(2e) a unique
//! so-far-honest leader emerges and no corrupt node is elected.
//!
//! Directly samples the leader-election stochastic process: `n` honest
//! propose attempts (one per node, difficulty `1/(2n)`) plus `2f` corrupt
//! attempts (both bits), and counts iterations with exactly one successful
//! honest attempt and zero corrupt successes.

use ba_bench::{header, row};
use ba_fmine::{Eligibility, IdealMine, MineParams, MineTag, MsgKind};
use ba_sim::NodeId;

fn good_iteration_rate(n: usize, f: usize, iters: u64, seed: u64) -> (f64, f64) {
    let fmine = IdealMine::new(seed, MineParams::new(n, 8.0));
    let mut good = 0u64;
    let mut unique_success = 0u64;
    for r in 0..iters {
        // Honest nodes attempt one bit each (their current belief — which
        // bit does not matter for the election statistics).
        let mut honest_successes = 0;
        for i in 0..n - f {
            let bit = (i + r as usize).is_multiple_of(2);
            if fmine.mine(NodeId(i), &MineTag::new(MsgKind::Propose, r, bit)).is_some() {
                honest_successes += 1;
            }
        }
        // Corrupt nodes grind both bits.
        let mut corrupt_successes = 0;
        for i in n - f..n {
            for bit in [false, true] {
                if fmine.mine(NodeId(i), &MineTag::new(MsgKind::Propose, r, bit)).is_some() {
                    corrupt_successes += 1;
                }
            }
        }
        if honest_successes == 1 && corrupt_successes == 0 {
            good += 1;
        }
        if honest_successes + corrupt_successes == 1 {
            unique_success += 1;
        }
    }
    (good as f64 / iters as f64, unique_success as f64 / iters as f64)
}

fn main() {
    let iters = 20_000u64;
    let bound = 1.0 / (2.0 * std::f64::consts::E);
    println!("# E6 — Lemma 12: good-iteration frequency ({iters} iterations per cell)\n");
    println!("Lemma 12 bound: every iteration is good with probability >= 1/(2e) = {bound:.3}\n");

    header(&["n", "f", "P[good iteration]", "P[unique proposer]", ">= 1/(2e)?"]);
    for (n, f_frac) in [
        (100usize, 0.0f64),
        (100, 0.25),
        (100, 0.49),
        (400, 0.0),
        (400, 0.25),
        (400, 0.49),
        (1000, 0.49),
    ] {
        let f = (n as f64 * f_frac) as usize;
        let (good, unique) = good_iteration_rate(n, f, iters, 7 + n as u64);
        row(&[
            format!("{n}"),
            format!("{f}"),
            format!("{good:.3}"),
            format!("{unique:.3}"),
            format!("{}", good >= bound),
        ]);
    }

    println!("\nExpected shape: P[unique proposer] approaches 1/e = 0.368 (the lemma's");
    println!("counting step) and P[good] >= 1/(2e) = {bound:.3} through f ~ n/3. Near");
    println!("f = n/2 corrupt nodes' double-grinding dilutes the constant to ~0.12 —");
    println!("still Theta(1), so expected-constant-round survives (see EXPERIMENTS.md).");
}
