//! E10 — the paper's §1 comparison, measured: which protocol achieves which
//! properties simultaneously, now head-to-head against the competitor BA
//! protocols (Momose–Ren, Cohen–Keidar–Spiegelman).
//!
//! For each protocol: resilience used, the paper's claimed word bound,
//! termination, mean rounds, honest multicasts, multicast kbits, measured
//! classical messages, and the measured/claimed ratio — under honest
//! mixed-input executions at matched `n`. Claimed bounds hide constants, so
//! the ratio column is read for *shape* (how it moves with `n`), not for
//! its absolute value; the competitor rows use the aggregate certificate
//! encoding, their papers' intended instantiation.

use ba_bench::{header, row, CellReport, Cli, InputPattern, ProtocolSpec, Scenario, Sweep};
use ba_core::cert::CertEncoding;

fn main() {
    let cli = Cli::parse("e10_comparison");
    let seeds = cli.seeds_or(15);
    let n = 128usize;
    let lambda = 24.0;

    let sweep = Sweep::new(
        "protocol_comparison",
        seeds,
        vec![
            Scenario::new("subq_half", n, ProtocolSpec::SubqHalf { lambda, max_iters: None })
                .with_claimed_bound(),
            Scenario::new("quadratic_half", n, ProtocolSpec::QuadraticHalf).with_claimed_bound(),
            Scenario::new("subq_third", n, ProtocolSpec::SubqThird { lambda, epochs: 12 })
                .with_claimed_bound(),
            Scenario::new("warmup_third", n, ProtocolSpec::WarmupThird { epochs: 12 })
                .with_claimed_bound(),
            // Competitors run their intended aggregate-signature
            // instantiation; the view/phase caps are liveness headroom only
            // (honest runs decide under the first leader).
            Scenario::new("mr_half", n, ProtocolSpec::MomoseRenHalf { views: 8 })
                .cert_encoding(CertEncoding::Aggregate)
                .with_claimed_bound(),
            Scenario::new("cks_adaptive", n, ProtocolSpec::CksAdaptive { phases: 8 })
                .cert_encoding(CertEncoding::Aggregate)
                .with_claimed_bound(),
            Scenario::new("dolev_strong", n, ProtocolSpec::DolevStrong { ds_f: n / 4 })
                .inputs(InputPattern::SenderParity)
                .with_claimed_bound(),
        ],
    );
    let reports = cli.run(vec![sweep]);

    if cli.markdown() {
        println!("# E10 — measured protocol comparison (n = {n}, {seeds} seeds, mixed inputs)\n");
        header(&[
            "protocol",
            "resilience",
            "claimed words",
            "success",
            "mean rounds",
            "mean multicasts",
            "mean kbits",
            "measured msgs",
            "meas/claim",
        ]);
        let print_row = |label: &str, name: &str, resilience: &str, claimed: &str| {
            let cell: &CellReport = reports[0].cell(label);
            let claimed_words = cell.mean("claimed_bound_words");
            let measured = cell.mean("classical_msgs");
            row(&[
                name.to_string(),
                resilience.to_string(),
                claimed.to_string(),
                format!("{}/{seeds}", cell.count("all_ok")),
                format!("{:.1}", cell.mean("rounds")),
                format!("{:.0}", cell.mean("multicasts")),
                format!("{:.0}", cell.mean("kbits")),
                format!("{measured:.0}"),
                format!("{:.2}", measured / claimed_words),
            ]);
        };
        print_row("subq_half", "subq_half (C.2, Thm 2)", "(1/2-e)n", "n polylog n");
        print_row("quadratic_half", "quadratic_half (C.1)", "n/2", "n^2");
        print_row("subq_third", "subq_third (3.2)", "(1/3-e)n", "n polylog n");
        print_row("warmup_third", "warmup_third (3.1)", "n/3", "n^2");
        print_row("mr_half", "momose_ren (2007.13175)", "(n-1)/2", "n^2");
        print_row("cks_adaptive", "cks (2202.09123)", "(n-1)/3*", "(f+1)n");
        print_row("dolev_strong", "dolev_strong (BB, f=n/4)", "n-1", "n^2");

        println!("\n*cks instantiated at t < n/3 quorums (repro simplification; the paper");
        println!("reaches t < n/2 with a VRF-elected sub-quadratic certificate layer).");
        println!("\nExpected shape: only subq_half combines near-half resilience, O(1)");
        println!("expected rounds, and n-independent multicasts — the Theorem 2 claim that");
        println!("no prior work achieves all properties simultaneously. The competitor");
        println!("rows bound the trade-off: momose_ren buys optimal resilience with n^2");
        println!("words every run; cks_adaptive's view phases cost O(n) unicasts here");
        println!("precisely because honest runs have f = 0 — its bound degrades with");
        println!("actual faults, not with n. Its large ratio is the halting tail, not the");
        println!("agreement phases: every node echoes the decide quorum once (an n^2");
        println!("message cascade, robust against leaders that crash mid-multicast) and");
        println!("the adaptive (f+1)n claim does not cover that relay.");
    }
    cli.write_outputs(&reports);
}
