//! E10 — the paper's §1 comparison, measured: which protocol achieves which
//! properties simultaneously.
//!
//! For each protocol: resilience used, termination, mean rounds, honest
//! multicasts, and multicast kbits — under honest mixed-input executions at
//! matched `n`.

use ba_bench::{header, row, CellReport, Cli, InputPattern, ProtocolSpec, Scenario, Sweep};

fn main() {
    let cli = Cli::parse("e10_comparison");
    let seeds = cli.seeds_or(15);
    let n = 128usize;
    let lambda = 24.0;

    let sweep = Sweep::new(
        "protocol_comparison",
        seeds,
        vec![
            Scenario::new("subq_half", n, ProtocolSpec::SubqHalf { lambda, max_iters: None }),
            Scenario::new("quadratic_half", n, ProtocolSpec::QuadraticHalf),
            Scenario::new("subq_third", n, ProtocolSpec::SubqThird { lambda, epochs: 12 }),
            Scenario::new("warmup_third", n, ProtocolSpec::WarmupThird { epochs: 12 }),
            Scenario::new("dolev_strong", n, ProtocolSpec::DolevStrong { ds_f: n / 4 })
                .inputs(InputPattern::SenderParity),
        ],
    );
    let reports = cli.run(vec![sweep]);

    if cli.markdown() {
        println!("# E10 — measured protocol comparison (n = {n}, {seeds} seeds, mixed inputs)\n");
        header(&[
            "protocol",
            "resilience",
            "rounds (paper)",
            "success",
            "mean rounds",
            "mean multicasts",
            "mean kbits",
        ]);
        let print_row = |label: &str, name: &str, resilience: &str, expected_rounds: &str| {
            let cell: &CellReport = reports[0].cell(label);
            row(&[
                name.to_string(),
                resilience.to_string(),
                expected_rounds.to_string(),
                format!("{}/{seeds}", cell.count("all_ok")),
                format!("{:.1}", cell.mean("rounds")),
                format!("{:.0}", cell.mean("multicasts")),
                format!("{:.0}", cell.mean("kbits")),
            ]);
        };
        print_row("subq_half", "subq_half (C.2, Thm 2)", "(1/2-e)n", "O(1)");
        print_row("quadratic_half", "quadratic_half (C.1)", "n/2", "O(1)");
        print_row("subq_third", "subq_third (3.2)", "(1/3-e)n", "fixed R");
        print_row("warmup_third", "warmup_third (3.1)", "n/3", "fixed R");
        print_row("dolev_strong", "dolev_strong (BB, f=n/4)", "n-1", "f+1 (worst)");

        println!("\nExpected shape: only subq_half combines near-half resilience, O(1)");
        println!("expected rounds, and n-independent multicasts — the Theorem 2 claim that");
        println!("no prior work achieves all properties simultaneously.");
    }
    cli.write_outputs(&reports);
}
