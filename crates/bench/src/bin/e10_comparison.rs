//! E10 — the paper's §1 comparison, measured: which protocol achieves which
//! properties simultaneously.
//!
//! For each protocol: resilience used, termination, mean rounds, honest
//! multicasts, and multicast kbits — under honest mixed-input executions at
//! matched `n`.

use std::sync::Arc;

use ba_bench::{header, row, Stats};
use ba_core::dolev_strong::{self, DsConfig};
use ba_core::epoch::{self, EpochConfig};
use ba_core::iter::{self, IterConfig};
use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
use ba_sim::{Bit, CorruptionModel, NodeId, Passive, SimConfig};

const SEEDS: u64 = 15;

struct Row {
    name: &'static str,
    resilience: &'static str,
    expected_rounds: &'static str,
    success: u64,
    rounds: Stats,
    multicasts: Stats,
    kbits: Stats,
}

fn print_row(r: &Row) {
    row(&[
        r.name.to_string(),
        r.resilience.to_string(),
        r.expected_rounds.to_string(),
        format!("{}/{SEEDS}", r.success),
        format!("{:.1}", r.rounds.mean),
        format!("{:.0}", r.multicasts.mean),
        format!("{:.0}", r.kbits.mean),
    ]);
}

fn main() {
    let n = 128usize;
    let lambda = 24.0;
    println!("# E10 — measured protocol comparison (n = {n}, {SEEDS} seeds, mixed inputs)\n");
    header(&[
        "protocol",
        "resilience",
        "rounds (paper)",
        "success",
        "mean rounds",
        "mean multicasts",
        "mean kbits",
    ]);

    // Appendix C.2 — the headline protocol.
    {
        let mut rounds = Vec::new();
        let mut mc = Vec::new();
        let mut kb = Vec::new();
        let mut success = 0;
        for seed in 0..SEEDS {
            let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
            let cfg = IterConfig::subq_half(n, elig);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
            let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
            let (report, verdict) = iter::run(&cfg, &sim, inputs, Passive);
            if verdict.all_ok() {
                success += 1;
            }
            rounds.push(report.rounds_used as f64);
            mc.push(report.metrics.honest_multicasts as f64);
            kb.push(report.metrics.honest_multicast_bits as f64 / 1000.0);
        }
        print_row(&Row {
            name: "subq_half (C.2, Thm 2)",
            resilience: "(1/2-e)n",
            expected_rounds: "O(1)",
            success,
            rounds: Stats::of(&rounds),
            multicasts: Stats::of(&mc),
            kbits: Stats::of(&kb),
        });
    }

    // Appendix C.1 — quadratic baseline.
    {
        let mut rounds = Vec::new();
        let mut mc = Vec::new();
        let mut kb = Vec::new();
        let mut success = 0;
        for seed in 0..SEEDS {
            let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
            let cfg = IterConfig::quadratic_half(n, kc, seed);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
            let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
            let (report, verdict) = iter::run(&cfg, &sim, inputs, Passive);
            if verdict.all_ok() {
                success += 1;
            }
            rounds.push(report.rounds_used as f64);
            mc.push(report.metrics.honest_multicasts as f64);
            kb.push(report.metrics.honest_multicast_bits as f64 / 1000.0);
        }
        print_row(&Row {
            name: "quadratic_half (C.1)",
            resilience: "n/2",
            expected_rounds: "O(1)",
            success,
            rounds: Stats::of(&rounds),
            multicasts: Stats::of(&mc),
            kbits: Stats::of(&kb),
        });
    }

    // §3.2 — subquadratic 1/3 epoch protocol.
    {
        let mut rounds = Vec::new();
        let mut mc = Vec::new();
        let mut kb = Vec::new();
        let mut success = 0;
        for seed in 0..SEEDS {
            let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
            let cfg = EpochConfig::subq_third(n, 12, elig);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
            let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
            let (report, verdict) = epoch::run(&cfg, &sim, inputs, Passive);
            if verdict.all_ok() {
                success += 1;
            }
            rounds.push(report.rounds_used as f64);
            mc.push(report.metrics.honest_multicasts as f64);
            kb.push(report.metrics.honest_multicast_bits as f64 / 1000.0);
        }
        print_row(&Row {
            name: "subq_third (3.2)",
            resilience: "(1/3-e)n",
            expected_rounds: "fixed R",
            success,
            rounds: Stats::of(&rounds),
            multicasts: Stats::of(&mc),
            kbits: Stats::of(&kb),
        });
    }

    // §3.1 — warmup.
    {
        let mut rounds = Vec::new();
        let mut mc = Vec::new();
        let mut kb = Vec::new();
        let mut success = 0;
        for seed in 0..SEEDS {
            let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
            let cfg = EpochConfig::warmup_third(n, 12, kc);
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
            let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
            let (report, verdict) = epoch::run(&cfg, &sim, inputs, Passive);
            if verdict.all_ok() {
                success += 1;
            }
            rounds.push(report.rounds_used as f64);
            mc.push(report.metrics.honest_multicasts as f64);
            kb.push(report.metrics.honest_multicast_bits as f64 / 1000.0);
        }
        print_row(&Row {
            name: "warmup_third (3.1)",
            resilience: "n/3",
            expected_rounds: "fixed R",
            success,
            rounds: Stats::of(&rounds),
            multicasts: Stats::of(&mc),
            kbits: Stats::of(&kb),
        });
    }

    // Dolev–Strong baseline (broadcast, so run with sender input).
    {
        let mut rounds = Vec::new();
        let mut mc = Vec::new();
        let mut kb = Vec::new();
        let mut success = 0;
        for seed in 0..SEEDS {
            let f = n / 4;
            let cfg = DsConfig {
                n,
                f,
                sender: NodeId(0),
                keychain: Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal)),
            };
            let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
            let (report, verdict) = dolev_strong::run(&cfg, &sim, seed % 2 == 0, Passive);
            if verdict.all_ok() {
                success += 1;
            }
            rounds.push(report.rounds_used as f64);
            mc.push(report.metrics.honest_multicasts as f64);
            kb.push(report.metrics.honest_multicast_bits as f64 / 1000.0);
        }
        print_row(&Row {
            name: "dolev_strong (BB, f=n/4)",
            resilience: "n-1",
            expected_rounds: "f+1 (worst)",
            success,
            rounds: Stats::of(&rounds),
            multicasts: Stats::of(&mc),
            kbits: Stats::of(&kb),
        });
    }

    println!("\nExpected shape: only subq_half combines near-half resilience, O(1)");
    println!("expected rounds, and n-independent multicasts — the Theorem 2 claim that");
    println!("no prior work achieves all properties simultaneously.");
}
