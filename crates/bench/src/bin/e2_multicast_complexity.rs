//! E2 — Theorem 2 / Lemma 15: the subquadratic protocol's multicast
//! complexity is `O(λ²·polylog)` — independent of `n` — while the quadratic
//! baselines scale linearly in `n` per round.
//!
//! Sweeps `n` with λ fixed and reports honest multicasts, multicast bits,
//! and classical (pairwise) message counts per execution.

use std::sync::Arc;

use ba_bench::{header, row, Stats};
use ba_core::epoch::{self, EpochConfig};
use ba_core::iter::{self, IterConfig};
use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
use ba_sim::{Bit, CorruptionModel, Passive, SimConfig};

const SEEDS: u64 = 20;

fn sweep_subq_half(n: usize, lambda: f64) -> (Stats, Stats, Stats) {
    let mut multicasts = Vec::new();
    let mut kbits = Vec::new();
    let mut classical = Vec::new();
    for seed in 0..SEEDS {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = IterConfig::subq_half(n, elig);
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let (report, verdict) = iter::run(&cfg, &sim, inputs, Passive);
        assert!(verdict.consistent, "n={n} seed={seed}");
        multicasts.push(report.metrics.honest_multicasts as f64);
        kbits.push(report.metrics.honest_multicast_bits as f64 / 1000.0);
        classical.push(report.metrics.classical_messages(n) as f64);
    }
    (Stats::of(&multicasts), Stats::of(&kbits), Stats::of(&classical))
}

fn sweep_quadratic(n: usize) -> (Stats, Stats, Stats) {
    let mut multicasts = Vec::new();
    let mut kbits = Vec::new();
    let mut classical = Vec::new();
    for seed in 0..SEEDS {
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let cfg = IterConfig::quadratic_half(n, kc, seed);
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let (report, verdict) = iter::run(&cfg, &sim, inputs, Passive);
        assert!(verdict.consistent, "n={n} seed={seed}");
        multicasts.push(report.metrics.honest_multicasts as f64);
        kbits.push(report.metrics.honest_multicast_bits as f64 / 1000.0);
        classical.push(report.metrics.classical_messages(n) as f64);
    }
    (Stats::of(&multicasts), Stats::of(&kbits), Stats::of(&classical))
}

fn sweep_epoch(n: usize, lambda: f64, epochs: u64) -> (Stats, Stats) {
    let mut multicasts = Vec::new();
    let mut kbits = Vec::new();
    for seed in 0..SEEDS {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = EpochConfig::subq_third(n, epochs, elig);
        let sim = SimConfig::new(n, 0, CorruptionModel::Static, seed);
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let (report, _) = epoch::run(&cfg, &sim, inputs, Passive);
        multicasts.push(report.metrics.honest_multicasts as f64);
        kbits.push(report.metrics.honest_multicast_bits as f64 / 1000.0);
    }
    (Stats::of(&multicasts), Stats::of(&kbits))
}

fn main() {
    let lambda = 24.0;
    println!("# E2 — multicast complexity vs n (lambda = {lambda}, {SEEDS} seeds)\n");

    println!("## subq_half (Appendix C.2, Theorem 2)\n");
    header(&["n", "mean multicasts", "max", "mean kbits", "classical msgs"]);
    for n in [64usize, 128, 256, 512, 1024] {
        let (m, b, c) = sweep_subq_half(n, lambda);
        row(&[
            format!("{n}"),
            format!("{:.0}", m.mean),
            format!("{:.0}", m.max),
            format!("{:.0}", b.mean),
            format!("{:.0}", c.mean),
        ]);
    }

    println!("\n## quadratic_half (Appendix C.1 baseline)\n");
    header(&["n", "mean multicasts", "max", "mean kbits", "classical msgs"]);
    for n in [16usize, 32, 64, 128] {
        let (m, b, c) = sweep_quadratic(n);
        row(&[
            format!("{n}"),
            format!("{:.0}", m.mean),
            format!("{:.0}", m.max),
            format!("{:.0}", b.mean),
            format!("{:.0}", c.mean),
        ]);
    }

    println!("\n## subq_third (Section 3.2, R = 12 epochs)\n");
    header(&["n", "mean multicasts", "max", "mean kbits"]);
    for n in [64usize, 128, 256, 512, 1024] {
        let (m, b) = sweep_epoch(n, lambda, 12);
        row(&[
            format!("{n}"),
            format!("{:.0}", m.mean),
            format!("{:.0}", m.max),
            format!("{:.0}", b.mean),
        ]);
    }

    println!("\nExpected shape: subsampled protocols flat in n (they track lambda and");
    println!("round count); the quadratic baseline grows ~linearly in n per run, and");
    println!("its classical message count grows ~quadratically.");
}
