//! E2 — Theorem 2 / Lemma 15: the subquadratic protocol's multicast
//! complexity is `O(λ²·polylog)` — independent of `n` — while the quadratic
//! baselines scale linearly in `n` per round.
//!
//! Sweeps `n` with λ fixed and reports honest multicasts, multicast bits,
//! and classical (pairwise) message counts per execution.

use ba_bench::{header, row, CellReport, Cli, ProtocolSpec, Scenario, Sweep};

fn scenarios(ns: &[usize], make: impl Fn(usize) -> ProtocolSpec) -> Vec<Scenario> {
    ns.iter().map(|&n| Scenario::new(format!("n={n}"), n, make(n))).collect()
}

fn table(cells: &[CellReport], with_classical: bool) {
    for cell in cells {
        let m = cell.stats("multicasts");
        let mut cols = vec![
            format!("{}", cell.scenario.n),
            format!("{:.0}", m.mean),
            format!("{:.0}", m.max),
            format!("{:.0}", cell.mean("kbits")),
        ];
        if with_classical {
            cols.push(format!("{:.0}", cell.mean("classical_msgs")));
        }
        row(&cols);
    }
}

fn main() {
    let cli = Cli::parse("e2_multicast_complexity");
    let lambda = 24.0;
    let seeds = cli.seeds_or(20);
    let subq_ns: &[usize] = if cli.smoke() { &[64] } else { &[64, 128, 256, 512, 1024] };
    let quad_ns: &[usize] = if cli.smoke() { &[16] } else { &[16, 32, 64, 128] };

    let sweeps = vec![
        Sweep::new(
            "subq_half",
            seeds,
            scenarios(subq_ns, |_| ProtocolSpec::SubqHalf { lambda, max_iters: None }),
        ),
        Sweep::new("quadratic_half", seeds, scenarios(quad_ns, |_| ProtocolSpec::QuadraticHalf)),
        Sweep::new(
            "subq_third",
            seeds,
            scenarios(subq_ns, |_| ProtocolSpec::SubqThird { lambda, epochs: 12 }),
        ),
    ];
    let reports = cli.run(sweeps);

    // The iteration-family sweeps must be consistent in every honest run —
    // the premise under which Theorem 2 counts multicasts.
    for report in &reports[..2] {
        for cell in &report.cells {
            assert_eq!(
                cell.count("consistent"),
                cell.runs.len(),
                "inconsistent run in {} / {}",
                report.title,
                cell.scenario.label
            );
        }
    }

    if cli.markdown() {
        println!("# E2 — multicast complexity vs n (lambda = {lambda}, {seeds} seeds)\n");

        println!("## subq_half (Appendix C.2, Theorem 2)\n");
        header(&["n", "mean multicasts", "max", "mean kbits", "classical msgs"]);
        table(&reports[0].cells, true);

        println!("\n## quadratic_half (Appendix C.1 baseline)\n");
        header(&["n", "mean multicasts", "max", "mean kbits", "classical msgs"]);
        table(&reports[1].cells, true);

        println!("\n## subq_third (Section 3.2, R = 12 epochs)\n");
        header(&["n", "mean multicasts", "max", "mean kbits"]);
        table(&reports[2].cells, false);

        println!("\nExpected shape: subsampled protocols flat in n (they track lambda and");
        println!("round count); the quadratic baseline grows ~linearly in n per run, and");
        println!("its classical message count grows ~quadratically.");
    }
    cli.write_outputs(&reports);
}
