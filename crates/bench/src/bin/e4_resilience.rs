//! E4 — Theorem 2's resilience: `f < (1/2 − ε)n`.
//!
//! Sweeps the corruption fraction against the certificate-forging adversary
//! and reports the security-failure rate. The subquadratic protocol's
//! failure onset tracks the Lemma 11 Chernoff threshold at `f/n ≈ 1/2`;
//! the quadratic baseline flips sharply at the majority boundary.

use std::sync::Arc;

use ba_adversary::CertForger;
use ba_bench::{header, row};
use ba_core::iter::{self, IterConfig};
use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
use ba_sim::{CorruptionModel, SimConfig};

const SEEDS: u64 = 30;

fn subq_failure_rate(n: usize, f: usize, lambda: f64) -> f64 {
    let mut failures = 0;
    for seed in 0..SEEDS {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = IterConfig::subq_half(n, elig);
        let adv = CertForger::new(n, f, true, cfg.quorum, cfg.auth.clone());
        let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
        let (_report, verdict) = iter::run(&cfg, &sim, vec![false; n], adv);
        if !verdict.all_ok() {
            failures += 1;
        }
    }
    failures as f64 / SEEDS as f64
}

fn quadratic_failure_rate(n: usize, f: usize) -> f64 {
    let mut failures = 0;
    for seed in 0..SEEDS {
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let cfg = IterConfig::quadratic_half(n, kc, seed);
        let adv = CertForger::new(n, f, true, cfg.quorum, cfg.auth.clone());
        let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
        let (_report, verdict) = iter::run(&cfg, &sim, vec![false; n], adv);
        if !verdict.all_ok() {
            failures += 1;
        }
    }
    failures as f64 / SEEDS as f64
}

fn main() {
    println!("# E4 — resilience threshold under the certificate forger ({SEEDS} seeds)\n");
    println!("Inputs are unanimously 0; a failure means the adversary forced some");
    println!("honest node to output 1 (validity/consistency breach).\n");

    let n = 240;
    println!("## subq_half, n = {n}\n");
    header(&["f/n", "lambda=16 fail rate", "lambda=24 fail rate", "lambda=32 fail rate"]);
    for percent in [20usize, 30, 40, 45, 50, 55, 60, 70] {
        let f = n * percent / 100;
        let rates: Vec<String> = [16.0, 24.0, 32.0]
            .iter()
            .map(|&l| format!("{:.2}", subq_failure_rate(n, f, l)))
            .collect();
        row(&[format!("0.{percent:02}"), rates[0].clone(), rates[1].clone(), rates[2].clone()]);
    }

    let n = 41;
    println!("\n## quadratic_half, n = {n} (quorum = {})\n", n / 2 + 1);
    header(&["f", "f/n", "fail rate"]);
    for f in [10usize, 15, 18, 20, 21, 25, 30] {
        row(&[
            format!("{f}"),
            format!("{:.2}", f as f64 / n as f64),
            format!("{:.2}", quadratic_failure_rate(n, f)),
        ]);
    }

    println!("\nExpected shape: subq failure rates ~0 below f/n = 1/2 - eps and rising");
    println!("past 1/2, sharper for larger lambda (Chernoff); the quadratic protocol");
    println!("is perfectly safe until f = n/2 and always broken at f >= quorum.");
}
