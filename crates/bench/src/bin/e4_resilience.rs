//! E4 — Theorem 2's resilience: `f < (1/2 − ε)n`.
//!
//! Sweeps the corruption fraction against the certificate-forging adversary
//! and reports the security-failure rate. The subquadratic protocol's
//! failure onset tracks the Lemma 11 Chernoff threshold at `f/n ≈ 1/2`;
//! the quadratic baseline flips sharply at the majority boundary.

use ba_bench::{header, row, AdversarySpec, Cli, InputPattern, ProtocolSpec, Scenario, Sweep};

const LAMBDAS: [f64; 3] = [16.0, 24.0, 32.0];

fn forged(label: String, n: usize, f: usize, protocol: ProtocolSpec) -> Scenario {
    Scenario::new(label, n, protocol)
        .f(f)
        .inputs(InputPattern::Unanimous(false))
        .adversary(AdversarySpec::CertForger { target: true })
}

fn main() {
    let cli = Cli::parse("e4_resilience");
    let seeds = cli.seeds_or(30);
    let subq_n = 240usize;
    let percents: &[usize] =
        if cli.smoke() { &[20, 55] } else { &[20, 30, 40, 45, 50, 55, 60, 70] };
    let quad_n = 41usize;
    let quad_fs: &[usize] = if cli.smoke() { &[10, 25] } else { &[10, 15, 18, 20, 21, 25, 30] };

    let subq = Sweep::new(
        "subq_half_forger",
        seeds,
        percents
            .iter()
            .flat_map(|&percent| {
                let f = subq_n * percent / 100;
                LAMBDAS.iter().map(move |&lambda| {
                    forged(
                        format!("f={percent}%,lambda={lambda}"),
                        subq_n,
                        f,
                        ProtocolSpec::SubqHalf { lambda, max_iters: None },
                    )
                })
            })
            .collect(),
    );
    let quad = Sweep::new(
        "quadratic_half_forger",
        seeds,
        quad_fs
            .iter()
            .map(|&f| forged(format!("f={f}"), quad_n, f, ProtocolSpec::QuadraticHalf))
            .collect(),
    );
    let reports = cli.run(vec![subq, quad]);

    if cli.markdown() {
        println!("# E4 — resilience threshold under the certificate forger ({seeds} seeds)\n");
        println!("Inputs are unanimously 0; a failure means the adversary forced some");
        println!("honest node to output 1 (validity/consistency breach).\n");

        println!("## subq_half, n = {subq_n}\n");
        header(&["f/n", "lambda=16 fail rate", "lambda=24 fail rate", "lambda=32 fail rate"]);
        for (chunk, &percent) in reports[0].cells.chunks(LAMBDAS.len()).zip(percents) {
            let rates: Vec<String> =
                chunk.iter().map(|cell| format!("{:.2}", cell.rate("defeated"))).collect();
            row(&[format!("0.{percent:02}"), rates[0].clone(), rates[1].clone(), rates[2].clone()]);
        }

        println!("\n## quadratic_half, n = {quad_n} (quorum = {})\n", quad_n / 2 + 1);
        header(&["f", "f/n", "fail rate"]);
        for (cell, &f) in reports[1].cells.iter().zip(quad_fs) {
            row(&[
                format!("{f}"),
                format!("{:.2}", f as f64 / quad_n as f64),
                format!("{:.2}", cell.rate("defeated")),
            ]);
        }

        println!("\nExpected shape: subq failure rates ~0 below f/n = 1/2 - eps and rising");
        println!("past 1/2, sharper for larger lambda (Chernoff); the quadratic protocol");
        println!("is perfectly safe until f = n/2 and always broken at f >= quorum.");
    }
    cli.write_outputs(&reports);
}
