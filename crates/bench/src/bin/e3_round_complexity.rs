//! E3 — Corollary 16: expected O(1) rounds.
//!
//! Measures rounds-to-termination for the quadratic (C.1) and subquadratic
//! (C.2) protocols across `n`, with honest and adversarial (crash) runs.
//! Each iteration is good with probability ≥ 1/(2e) (Lemma 12), so the mean
//! stays constant as `n` grows.

use std::sync::Arc;

use ba_adversary::CrashAt;
use ba_bench::{header, row, Stats};
use ba_core::iter::{self, IterConfig};
use ba_fmine::{IdealMine, Keychain, MineParams, SigMode};
use ba_sim::{Bit, CorruptionModel, NodeId, SimConfig};

const SEEDS: u64 = 50;

fn rounds_subq(n: usize, lambda: f64, crash_frac: f64) -> Stats {
    let mut rounds = Vec::new();
    for seed in 0..SEEDS {
        let elig = Arc::new(IdealMine::new(seed, MineParams::new(n, lambda)));
        let cfg = IterConfig::subq_half(n, elig);
        let f = (n as f64 * crash_frac) as usize;
        let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let adversary = CrashAt { nodes: (n - f..n).map(NodeId).collect(), at_round: 0 };
        let (report, verdict) = iter::run(&cfg, &sim, inputs, adversary);
        if verdict.terminated {
            rounds.push(report.rounds_used as f64);
        }
    }
    Stats::of(&rounds)
}

fn rounds_quadratic(n: usize, crash_frac: f64) -> Stats {
    let mut rounds = Vec::new();
    for seed in 0..SEEDS {
        let kc = Arc::new(Keychain::from_seed(seed, n, SigMode::Ideal));
        let cfg = IterConfig::quadratic_half(n, kc, seed);
        let f = (n as f64 * crash_frac) as usize;
        let sim = SimConfig::new(n, f, CorruptionModel::Static, seed);
        let inputs: Vec<Bit> = (0..n).map(|i| i % 2 == 0).collect();
        let adversary = CrashAt { nodes: (n - f..n).map(NodeId).collect(), at_round: 0 };
        let (report, verdict) = iter::run(&cfg, &sim, inputs, adversary);
        if verdict.terminated {
            rounds.push(report.rounds_used as f64);
        }
    }
    Stats::of(&rounds)
}

fn main() {
    println!("# E3 — expected rounds to termination ({SEEDS} seeds, mixed inputs)\n");

    println!("## subq_half (lambda = 24)\n");
    header(&["n", "crash frac", "terminated", "mean rounds", "max rounds"]);
    for n in [64usize, 128, 256, 512] {
        for crash in [0.0, 0.2] {
            let s = rounds_subq(n, 24.0, crash);
            row(&[
                format!("{n}"),
                format!("{crash:.1}"),
                format!("{}/{SEEDS}", s.count),
                format!("{:.1}", s.mean),
                format!("{:.0}", s.max),
            ]);
        }
    }

    println!("\n## quadratic_half\n");
    header(&["n", "crash frac", "terminated", "mean rounds", "max rounds"]);
    for n in [9usize, 33, 65, 129] {
        for crash in [0.0, 0.2] {
            let s = rounds_quadratic(n, crash);
            row(&[
                format!("{n}"),
                format!("{crash:.1}"),
                format!("{}/{SEEDS}", s.count),
                format!("{:.1}", s.mean),
                format!("{:.0}", s.max),
            ]);
        }
    }

    println!("\nExpected shape: mean rounds flat in n (expected O(1) iterations of 4");
    println!("rounds each; unanimity decides in iteration 1, mixed inputs typically");
    println!("within 2-4 iterations: good iterations arrive at rate >= 1/(2e)).");
}
