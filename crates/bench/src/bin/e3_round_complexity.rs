//! E3 — Corollary 16: expected O(1) rounds.
//!
//! Measures rounds-to-termination for the quadratic (C.1) and subquadratic
//! (C.2) protocols across `n`, with honest and adversarial (crash) runs.
//! Each iteration is good with probability ≥ 1/(2e) (Lemma 12), so the mean
//! stays constant as `n` grows — and the median/p95 columns confirm the
//! tail is short too (a flat mean alone could hide rare slow seeds).

use ba_bench::{header, row, AdversarySpec, Cli, ProtocolSpec, Scenario, Sweep};

const COLUMNS: [&str; 7] =
    ["n", "crash frac", "terminated", "mean rounds", "median", "p95", "max rounds"];

fn grid(ns: &[usize], crashes: &[f64], make: impl Fn() -> ProtocolSpec) -> Vec<Scenario> {
    let make = &make;
    ns.iter()
        .flat_map(|&n| {
            crashes.iter().map(move |&crash| {
                let f = (n as f64 * crash) as usize;
                let scenario = Scenario::new(format!("n={n},crash={crash:.1}"), n, make()).f(f);
                if f > 0 {
                    scenario.adversary(AdversarySpec::CrashTail { at_round: 0 })
                } else {
                    scenario
                }
            })
        })
        .collect()
}

fn table(report: &ba_bench::SweepReport, crashes: &[f64], seeds: u64) {
    header(&COLUMNS);
    for (cell, &crash) in report.cells.iter().zip(crashes.iter().cycle()) {
        let s = cell.stats("rounds_terminated");
        row(&[
            format!("{}", cell.scenario.n),
            format!("{crash:.1}"),
            format!("{}/{seeds}", s.count),
            format!("{:.1}", s.mean),
            format!("{:.1}", s.median),
            format!("{:.0}", s.p95),
            format!("{:.0}", s.max),
        ]);
    }
}

fn main() {
    let cli = Cli::parse("e3_round_complexity");
    let seeds = cli.seeds_or(50);
    let crashes: &[f64] = &[0.0, 0.2];
    let subq_ns: &[usize] = if cli.smoke() { &[64] } else { &[64, 128, 256, 512] };
    let quad_ns: &[usize] = if cli.smoke() { &[9] } else { &[9, 33, 65, 129] };

    let sweeps = vec![
        Sweep::new(
            "subq_half",
            seeds,
            grid(subq_ns, crashes, || ProtocolSpec::SubqHalf { lambda: 24.0, max_iters: None }),
        ),
        Sweep::new("quadratic_half", seeds, grid(quad_ns, crashes, || ProtocolSpec::QuadraticHalf)),
    ];
    let reports = cli.run(sweeps);

    if cli.markdown() {
        println!("# E3 — expected rounds to termination ({seeds} seeds, mixed inputs)\n");

        println!("## subq_half (lambda = 24)\n");
        table(&reports[0], crashes, seeds);

        println!("\n## quadratic_half\n");
        table(&reports[1], crashes, seeds);

        println!("\nExpected shape: mean rounds flat in n (expected O(1) iterations of 4");
        println!("rounds each; unanimity decides in iteration 1, mixed inputs typically");
        println!("within 2-4 iterations: good iterations arrive at rate >= 1/(2e)).");
    }
    cli.write_outputs(&reports);
}
