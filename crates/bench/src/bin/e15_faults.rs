//! E15 — the chaos matrix: safety under composable network faults.
//!
//! The paper's protocols assume a synchronous network; this experiment
//! measures what each family *keeps* when that assumption is attacked
//! from below the protocol — by the network itself rather than by corrupt
//! nodes. A declarative, seed-deterministic [`ba_sim::FaultPlan`] is
//! layered over each delivery backend and swept across fault kinds and
//! intensities, split by whether the plan stays inside the synchronous
//! model's **legal envelope**:
//!
//! * **Within the envelope** — faults a model-legal adversary could have
//!   produced, so the paper's safety proofs apply verbatim and the binary
//!   *enforces* safety (`consistent` and `valid` must read N/N; any
//!   violation exits nonzero):
//!   - `sched` — adversarial scheduling: every inbox reordered to the
//!     envelope's worst corner (corrupt traffic first, the latest honest
//!     sends last). Delivery order within a round is adversary-controlled
//!     in the model.
//!   - `dup20` — per-copy duplication at 20%. Tallies key by distinct
//!     sender, so a duplicate can never add quorum weight.
//! * **Beyond the envelope** — message loss and cross-round displacement,
//!   which the synchronous model forbids (`drop10`/`drop25`, `reorder20`
//!   with a 2-round budget, a hard `partition` over rounds 1..3 healing at
//!   round 3, and a `storm` composition of everything). Here the suite
//!   *measures* instead of assumes, and the two families fail in opposite
//!   directions. The certificate-gated iteration family converts faults
//!   into **liveness** cost — starved quorums force extra iterations
//!   (mean rounds climb under loss and partitions) but a decision still
//!   requires an explicit quorum certificate, so safety holds at every
//!   intensity measured here. The epoch family's schedule is fixed (its
//!   round count never moves), but its unconditional
//!   output-after-R-epochs rule (§3.1) converts starved tallies into
//!   **safety** erosion: under 10–25% loss or cross-round reordering,
//!   nodes on opposite sides of the starvation fork. That cliff is the
//!   experiment's headline: the synchrony assumption the paper states up
//!   front is load-bearing for safety, not just for liveness.
//!
//! Fault-injection decisions hash only (seed, plan, message id, receiver),
//! so the `faults_*` observables are deterministic and live in the
//! committed baseline; under the TCP backend only the `latency_*` gauges
//! vary run to run (CI diffs with `--ignore-observable 'latency_*'`), and
//! a faulted cell re-run under the same seed is byte-identical (`cmp`).
//! The latency backend here runs zero-delay with GST 0 — e13 already
//! prices delay and GST; this experiment isolates the fault layer, and a
//! lockstep-equivalent timed backend makes the three backends' decision
//! observables directly comparable.
//!
//! See docs/FAULTS.md for the fault taxonomy, the legal-envelope
//! argument, and the measured degradation table.

use ba_bench::{header, row, CellReport, Cli, InputPattern, ProtocolSpec, Scenario, Sweep};
use ba_sim::{DelayDist, FaultPlan, TransportSpec, DEFAULT_ROUND_MS};

fn backends() -> Vec<(&'static str, TransportSpec)> {
    vec![
        ("lockstep", TransportSpec::Lockstep),
        (
            "latency",
            TransportSpec::Latency { round_ms: DEFAULT_ROUND_MS, gst_ms: 0, dist: DelayDist::Zero },
        ),
        ("tcp", TransportSpec::Tcp),
    ]
}

/// One row of the fault-intensity axis.
struct PlanRow {
    name: &'static str,
    plan: FaultPlan,
    /// Within the synchronous model's legal envelope: the paper's safety
    /// proofs apply, so safety is *asserted*, not just measured.
    legal: bool,
}

/// The fault-intensity axis, legal-envelope rows first.
fn plans(n: usize) -> Vec<PlanRow> {
    let parse = |s: String| s.parse::<FaultPlan>().expect("a canonical plan string");
    let row = |name, plan: String, legal| PlanRow { name, plan: parse(plan), legal };
    vec![
        PlanRow { name: "clean", plan: FaultPlan::default(), legal: true },
        row("sched", "sched=adversarial".into(), true),
        row("dup20", "dup:p=0.2".into(), true),
        row("drop10", "drop:p=0.1".into(), false),
        row("drop25", "drop:p=0.25".into(), false),
        row("reorder20", "reorder:p=0.2:budget=2".into(), false),
        row("partition1_3", format!("partition:1..3={}", n / 2), false),
        row("storm", "drop:p=0.1,dup:p=0.1,reorder:p=0.1:budget=2,sched=adversarial".into(), false),
    ]
}

fn family_sweeps(seeds: u64, family: &str, n: usize, spec: ProtocolSpec) -> Vec<Sweep> {
    backends()
        .into_iter()
        .map(|(backend, transport)| {
            let cells = plans(n)
                .into_iter()
                .map(|r| {
                    Scenario::new(r.name, n, spec.clone())
                        .inputs(InputPattern::Unanimous(true))
                        .transport(transport)
                        .faults(r.plan)
                })
                .collect();
            Sweep::new(format!("{family}/{backend}"), seeds, cells)
        })
        .collect()
}

/// The suite's invariant: no *legal-envelope* plan may violate safety —
/// those faults are within the model adversary's power, so the paper's
/// safety proofs cover them. Beyond-envelope cells are measured, not
/// asserted (their erosion is the experiment's finding), but a
/// quarantined cell is always a violation: the transport layer must
/// survive every plan even when the protocol above it does not.
fn safety_violations(cells: &[(&str, &CellReport)], n: usize) -> Vec<String> {
    let legal: Vec<&str> = plans(n).iter().filter(|r| r.legal).map(|r| r.name).collect();
    let mut violations = Vec::new();
    for (sweep, cell) in cells {
        if let Some(error) = &cell.error {
            violations.push(format!(
                "{sweep}/{}: cell quarantined instead of executed ({})",
                cell.scenario.label, error.detail
            ));
            continue;
        }
        if !legal.contains(&cell.scenario.label.as_str()) {
            continue;
        }
        let runs = cell.runs.len();
        for (name, count) in
            [("consistent", cell.count("consistent")), ("valid", cell.count("valid"))]
        {
            if count != runs {
                violations.push(format!(
                    "{sweep}/{}: {name} {count}/{runs} — a legal-envelope fault broke safety",
                    cell.scenario.label
                ));
            }
        }
    }
    violations
}

fn main() {
    let cli = Cli::parse("e15_faults");
    let seeds = cli.seeds_or(if cli.smoke() { 2 } else { 5 });
    let n = if cli.smoke() { 16 } else { 24 };

    let mut sweeps = family_sweeps(
        seeds,
        "subq_half",
        n,
        ProtocolSpec::SubqHalf { lambda: 12.0, max_iters: Some(8) },
    );
    sweeps.extend(family_sweeps(
        seeds,
        "subq_third",
        n,
        ProtocolSpec::SubqThird { lambda: 10.0, epochs: 5 },
    ));
    let reports = cli.run(sweeps);

    if cli.markdown() {
        println!("# E15 — chaos matrix ({seeds} seed(s) per cell, n = {n})\n");
        for report in &reports {
            println!("## {}\n", report.title);
            header(&[
                "faults",
                "consistent",
                "valid",
                "terminated",
                "rounds",
                "dropped",
                "dup",
                "reordered",
                "part rounds",
                "undelivered",
            ]);
            for cell in &report.cells {
                let runs = cell.runs.len();
                row(&[
                    cell.scenario.label.clone(),
                    format!("{}/{runs}", cell.count("consistent")),
                    format!("{}/{runs}", cell.count("valid")),
                    format!("{}/{runs}", cell.count("terminated")),
                    format!("{:.1}", cell.mean("rounds")),
                    format!("{:.0}", cell.total("faults_dropped")),
                    format!("{:.0}", cell.total("faults_duplicated")),
                    format!("{:.0}", cell.total("faults_reordered")),
                    format!("{:.0}", cell.total("partition_rounds")),
                    format!("{:.0}", cell.total("faults_undelivered")),
                ]);
            }
            println!();
        }
        println!("clean/sched/dup20 stay inside the synchronous model's legal envelope:");
        println!("safety (consistent, valid) must read N/N there and the binary exits");
        println!("nonzero otherwise. drop/reorder/partition/storm exceed the envelope —");
        println!("those rows are measured, not asserted. The certificate-gated");
        println!("iteration family pays in liveness (extra rounds) and keeps safety;");
        println!("the epoch family's fixed schedule never slows but its unconditional");
        println!("termination forks under loss — the measured cost of the paper's");
        println!("synchrony assumption. Partition cells recover after the heal round.");
    }
    cli.write_outputs(&reports);

    let labelled: Vec<(&str, &CellReport)> =
        reports.iter().flat_map(|r| r.cells.iter().map(move |c| (r.title.as_str(), c))).collect();
    let violations = safety_violations(&labelled, n);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("[e15_faults] SAFETY VIOLATION: {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "[e15_faults] safety held on every legal-envelope cell ({} cells total)",
        labelled.len()
    );
}
