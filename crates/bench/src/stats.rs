//! Descriptive statistics over experiment samples.

/// Simple descriptive statistics over `f64` samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Median (mean of the two central order statistics for even counts).
    pub median: f64,
    /// 95th percentile (nearest-rank). Tail behaviour matters for the
    /// paper's expected-O(1)-rounds claim: a flat mean can hide a heavy
    /// tail of slow seeds.
    pub p95: f64,
}

impl Stats {
    /// Computes statistics over the samples (zeroed for empty input).
    pub fn of(samples: &[f64]) -> Stats {
        if samples.is_empty() {
            return Stats::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let var =
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (count.max(2) - 1) as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        // Nearest-rank: the smallest sample >= 95% of the distribution.
        let p95 = sorted[((count as f64 * 0.95).ceil() as usize).clamp(1, count) - 1];
        Stats { count, mean, min, max, stddev: var.sqrt(), median, p95 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = Stats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.p95, 3.0);
    }

    #[test]
    fn stats_empty() {
        let s = Stats::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.median, 0.0);
        assert_eq!(s.p95, 0.0);
    }

    #[test]
    fn median_even_count_averages_centre() {
        let s = Stats::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn p95_nearest_rank() {
        // 1..=100: the 95th percentile by nearest rank is the 95th order
        // statistic.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Stats::of(&samples);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.median, 50.5);
        // 20 samples: ceil(19) = 19th order statistic.
        let samples: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        assert_eq!(Stats::of(&samples).p95, 19.0);
    }

    #[test]
    fn single_sample_degenerates_cleanly() {
        let s = Stats::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.stddev, 0.0);
    }
}
