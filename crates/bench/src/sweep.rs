//! The sweep engine: a grid of [`Scenario`]s × seeds, executed by
//! `std::thread::scope` workers with deterministic per-cell seeding.
//!
//! Every (scenario, seed) pair is one independent work item. Workers claim
//! items off a shared atomic cursor and write each result into its
//! pre-assigned slot, so the assembled [`SweepReport`] is byte-identical
//! regardless of worker count or scheduling — `--threads 1` and
//! `--threads N` produce the same JSON.

use std::borrow::Cow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::scenario::{Scenario, SharedElig};
use crate::stats::Stats;

/// An observable name: a `&'static str` for records produced in-process,
/// an owned string for records decoded off the distributed wire.
pub type ObsName = Cow<'static, str>;

/// The named observables recorded by one (scenario, seed) execution.
///
/// Names may repeat (e.g. several committee-size samples per seed); cell
/// aggregation flattens repeated names into one sample list.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// The seed this record was produced under.
    pub seed: u64,
    /// Named observables, in recording order.
    pub values: Vec<(ObsName, f64)>,
}

impl RunRecord {
    /// An empty record for `seed`.
    pub fn new(seed: u64) -> RunRecord {
        RunRecord { seed, values: Vec::new() }
    }

    /// Records one observable.
    pub fn push(&mut self, name: impl Into<ObsName>, value: f64) {
        self.values.push((name.into(), value));
    }

    /// Records a boolean observable as 0.0/1.0.
    pub fn push_flag(&mut self, name: impl Into<ObsName>, value: bool) {
        self.push(name, value as u64 as f64);
    }

    /// First value recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| k.as_ref() == name).map(|(_, v)| *v)
    }

    /// True when the flag `name` was recorded as nonzero.
    pub fn flag(&self, name: &str) -> bool {
        self.get(name).is_some_and(|v| v != 0.0)
    }

    /// Decodes an optional-bit observable (recorded as −1 for "absent",
    /// 0/1 otherwise — e.g. `node1_output` of the Theorem 3 workload).
    pub fn optional_bit(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(|v| if v < 0.0 { None } else { Some(v != 0.0) })
    }
}

/// A structured record of a quarantined cell: the cell's work never
/// completed because every dispatch attempt killed the worker executing it
/// (see `crate::dist`), or because its transport failed unrecoverably
/// mid-run (a [`ba_sim::TransportError`] caught by [`catch_transport`]).
/// Quarantined cells surface in the markdown and JSON renderers instead of
/// silently vanishing.
#[derive(Clone, Debug, PartialEq)]
pub struct CellError {
    /// Worker deaths attributed to this cell before it was quarantined.
    pub attempts: u32,
    /// Human-readable description of the last observed failure.
    pub detail: String,
}

/// Runs one cell execution, converting an unrecoverable transport failure
/// (raised as a [`ba_sim::TransportError`] panic payload — e.g. a TCP peer
/// that died and could not be reconnected) into a [`CellError`] so the
/// sweep can quarantine the cell and keep going. Any other panic is a
/// harness bug and is re-raised unchanged.
pub fn catch_transport(f: impl FnOnce() -> RunRecord) -> Result<RunRecord, CellError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(record) => Ok(record),
        Err(payload) => match payload.downcast_ref::<ba_sim::TransportError>() {
            Some(error) => Err(CellError { attempts: 1, detail: error.to_string() }),
            None => std::panic::resume_unwind(payload),
        },
    }
}

/// One scenario's executed cell: the scenario plus its per-seed records
/// (in seed order).
#[derive(Clone, Debug)]
pub struct CellReport {
    /// The scenario that produced this cell.
    pub scenario: Scenario,
    /// Per-seed records, ordered by seed (empty for a quarantined cell).
    pub runs: Vec<RunRecord>,
    /// The quarantine record, when the distributed coordinator gave up on
    /// this cell (`None` for every successfully executed cell).
    pub error: Option<CellError>,
}

impl CellReport {
    /// All samples recorded under `name`, flattened across seeds in seed
    /// order.
    pub fn samples(&self, name: &str) -> Vec<f64> {
        self.runs
            .iter()
            .flat_map(|r| r.values.iter().filter(|(k, _)| k.as_ref() == name).map(|(_, v)| *v))
            .collect()
    }

    /// Statistics over [`CellReport::samples`].
    pub fn stats(&self, name: &str) -> Stats {
        Stats::of(&self.samples(name))
    }

    /// Mean of the samples under `name` (0.0 when absent).
    pub fn mean(&self, name: &str) -> f64 {
        self.stats(name).mean
    }

    /// Sum of the samples under `name`.
    pub fn total(&self, name: &str) -> f64 {
        // + 0.0 normalizes the empty sum (f64's additive identity is -0.0,
        // which would render as "-0" in tables).
        self.samples(name).iter().sum::<f64>() + 0.0
    }

    /// Fraction of runs whose flag `name` is nonzero.
    pub fn rate(&self, name: &str) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.count(name) as f64 / self.runs.len() as f64
    }

    /// Number of runs whose flag `name` is nonzero.
    pub fn count(&self, name: &str) -> usize {
        self.runs.iter().filter(|r| r.flag(name)).count()
    }
}

/// A declarative grid of scenarios × seeds.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Sweep title (section heading in reports).
    pub title: String,
    /// Default seeds per scenario (individual scenarios may override).
    pub seeds: u64,
    /// The grid.
    pub scenarios: Vec<Scenario>,
}

impl Sweep {
    /// Creates a sweep of `scenarios`, each run for `seeds` seeds unless it
    /// overrides the count.
    pub fn new(title: impl Into<String>, seeds: u64, scenarios: Vec<Scenario>) -> Sweep {
        Sweep { title: title.into(), seeds, scenarios }
    }

    /// Seeds scenario `idx` will run (its override or the sweep default).
    pub(crate) fn seeds_of(&self, idx: usize) -> u64 {
        self.scenarios[idx].seeds.unwrap_or(self.seeds)
    }

    /// Executes the grid on `threads` workers and assembles the report.
    ///
    /// Work item `(cell, s)` runs scenario `cell` under seed
    /// `scenario.seed_offset + s` — the same seed it would get under a
    /// serial loop, so parallelism never changes results, only wall-clock.
    pub fn run(&self, threads: usize) -> SweepReport {
        let tasks: Vec<(usize, u64)> = (0..self.scenarios.len())
            .flat_map(|c| (0..self.seeds_of(c)).map(move |s| (c, s)))
            .collect();
        // One lazily initialized eligibility backend per cell, shared by
        // every worker that executes one of the cell's seeds (real for
        // fixed-seed scenarios; per-run scenarios ignore it).
        let shared: Vec<SharedElig> = self.scenarios.iter().map(|_| SharedElig::new()).collect();
        let slots: Vec<OnceLock<RunRecord>> = tasks.iter().map(|_| OnceLock::new()).collect();
        let cell_errors: Vec<OnceLock<CellError>> =
            self.scenarios.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);

        let worker = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&(cell, s)) = tasks.get(i) else { break };
            if cell_errors[cell].get().is_some() {
                continue; // cell already quarantined; don't burn its other seeds
            }
            let scenario = &self.scenarios[cell];
            match catch_transport(|| scenario.run_seed(scenario.seed_offset + s, &shared[cell])) {
                Ok(record) => {
                    slots[i].set(record).expect("each slot is written exactly once");
                }
                Err(error) => {
                    let _ = cell_errors[cell].set(error); // first failure wins
                }
            }
        };
        if threads <= 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads.min(tasks.len().max(1)) {
                    // `&closure` is Copy and itself callable, so every
                    // spawned worker shares the one closure.
                    let worker: &(dyn Fn() + Sync) = &worker;
                    scope.spawn(worker);
                }
            });
        }

        let mut slot_iter = slots.into_iter();
        let mut error_iter = cell_errors.into_iter();
        let cells = (0..self.scenarios.len())
            .map(|c| {
                let error = error_iter.next().expect("one error slot per cell").into_inner();
                let cell_slots: Vec<_> = (0..self.seeds_of(c))
                    .map(|_| slot_iter.next().expect("one slot per task"))
                    .collect();
                // A quarantined cell drops any seeds that did complete:
                // which ones finished before the failure depends on worker
                // scheduling, and a partial sample set would make the
                // report thread-count-dependent.
                let runs = match error {
                    Some(_) => Vec::new(),
                    None => cell_slots
                        .into_iter()
                        .map(|s| s.into_inner().expect("worker filled the slot"))
                        .collect(),
                };
                CellReport { scenario: self.scenarios[c].clone(), runs, error }
            })
            .collect();
        SweepReport { title: self.title.clone(), seeds: self.seeds, cells }
    }

    /// [`Sweep::run`] on all available cores.
    pub fn run_auto(&self) -> SweepReport {
        self.run(default_threads())
    }
}

/// The executed form of a [`Sweep`].
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Sweep title.
    pub title: String,
    /// The sweep-level default seed count.
    pub seeds: u64,
    /// One executed cell per scenario, in grid order.
    pub cells: Vec<CellReport>,
}

impl SweepReport {
    /// The cell whose scenario is labelled `label`.
    ///
    /// # Panics
    ///
    /// Panics when no cell carries the label (a harness bug).
    pub fn cell(&self, label: &str) -> &CellReport {
        self.cells
            .iter()
            .find(|c| c.scenario.label == label)
            .unwrap_or_else(|| panic!("no cell labelled {label:?} in sweep {:?}", self.title))
    }
}

/// The default worker count: every available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::TransportError;

    #[test]
    fn catch_transport_passes_successful_records_through() {
        let mut record = RunRecord::new(7);
        record.push("rounds", 3.0);
        let got = catch_transport(|| record.clone()).expect("no failure");
        assert_eq!(got, record);
    }

    #[test]
    fn catch_transport_quarantines_structured_transport_failures() {
        let error = catch_transport(|| -> RunRecord {
            std::panic::panic_any(TransportError {
                node: Some(3),
                detail: "peer connection died".into(),
            })
        })
        .expect_err("transport failure is caught");
        assert_eq!(error.attempts, 1);
        assert!(error.detail.contains("node 3"), "detail: {}", error.detail);
        assert!(error.detail.contains("peer connection died"));
    }

    #[test]
    fn catch_transport_rethrows_unrelated_panics() {
        let outcome = std::panic::catch_unwind(|| {
            let _ = catch_transport(|| -> RunRecord { panic!("harness bug") });
        });
        assert!(outcome.is_err(), "non-transport panics must propagate");
    }
}
