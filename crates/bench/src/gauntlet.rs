//! The **adversary gauntlet matrix**: protocol family × adversary ×
//! corruption model × corruption-fraction grid.
//!
//! The paper proves its protocols secure against specific adversary/model
//! pairs; the gauntlet runs every family against every applicable attack
//! under every legal model at several actual-corruption levels `f' ≤ f_max`
//! (the axis "From Few to Many Faults" argues is under-tested: protocols
//! are usually evaluated only at the resilience bound). One matrix cell =
//! one [`Scenario`]; the whole matrix executes through the ordinary
//! [`Sweep`] engine, so `e11_gauntlet`, the `soak` binary, and the golden
//! tests all share this builder.
//!
//! Expectations encoded by the matrix (checked by `e11_gauntlet` where
//! deterministic, and pinned per-seed by `crates/bench/tests/gauntlet.rs`):
//!
//! * **passive** cells are honest executions: `all_ok` everywhere and
//!   `dropped_sends == 0` (the simulator counts undeliverable unicasts; an
//!   honest protocol must never produce one).
//! * **adaptive eclipse** defeats recurring-speaker designs but bounces off
//!   one-shot bit-specific committees — and degenerates entirely under the
//!   static model (the `static` rows double as a legality ablation).
//! * **starve-quorum eraser** needs the strongly adaptive model; under the
//!   plain adaptive model its removals are refused (`removals == 0`).
//! * **equivocation spammer / vote flipper** move only corrupt-attributed
//!   observables against bit-specific eligibility.
//! * **eclipse + burst composition** (the ROADMAP's composed-adversary
//!   extension) splits the budget between a statically silenced tail and an
//!   adaptive eclipse wing; the composition can never exceed the corruption
//!   budget (`corruptions ≤ f`, asserted per seed).
//! * **real-eligibility rows** (`passive_real@static/f=0` on the mined
//!   families) run the honest baseline through the Appendix D VRF
//!   compiler: committee draws differ, safety observables must not.
//! * **competitor rows** (`mr/half`, `cks/adaptive`) run the Momose–Ren
//!   and Cohen–Keidar–Spiegelman implementations through the shared
//!   battery: leader-based quorum protocols must hold safety everywhere
//!   (their committees are the whole population, so the committee-centric
//!   attacks degenerate to crash/silence pressure).
//! * **ablation rows** close the roadmap's open matrix: `epoch/chen_micali`
//!   is expected to hold like the other epoch rows, while
//!   `epoch/subq_shared` reuses one committee per epoch and is *insecure by
//!   design* under adaptive corruption — its passive rows must stay clean,
//!   and its defeats are recorded, not asserted away.

use crate::cli::Grid;
use crate::scenario::{AdversarySpec, InputPattern, ProtocolSpec, Scenario};
use crate::sweep::Sweep;
use ba_sim::CorruptionModel;

/// Which protocol family a gauntlet entry belongs to (decides which
/// family-specific adversaries apply).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Family {
    /// Iteration family (`ba-core::iter`) — the certificate forger applies.
    Iter,
    /// Epoch family (`ba-core::epoch`) — flipper and spammer apply.
    Epoch,
    /// Competitor BA families (`ba-core::momose_ren`, `ba-core::cks`) —
    /// only the family-agnostic attacks apply.
    Competitor,
}

/// One protocol under test: its spec, sizes, and resilience budget.
struct Entry {
    title: &'static str,
    family: Family,
    n: usize,
    f_max: usize,
    protocol: ProtocolSpec,
}

/// The per-grid protocol roster. Smoke shrinks `n` (and the iteration cap)
/// but keeps the full combination structure, so CI exercises every
/// (family × adversary × model × fraction) cell.
fn entries(grid: Grid) -> Vec<Entry> {
    let smoke = grid == Grid::Smoke;
    let (n_subq, n_quad, n_epoch, n_warm) =
        if smoke { (48, 9, 36, 12) } else { (200, 25, 150, 30) };
    let n_mr = if smoke { 16 } else { 48 };
    let (iters, epochs) = if smoke { (6, 6) } else { (12, 10) };
    vec![
        Entry {
            title: "iter/subq_half",
            family: Family::Iter,
            n: n_subq,
            // The paper's bound is f < (1/2 − ε)n; 0.4n leaves a working ε.
            f_max: n_subq * 2 / 5,
            protocol: ProtocolSpec::SubqHalf { lambda: 16.0, max_iters: Some(iters) },
        },
        Entry {
            title: "iter/quadratic_half",
            family: Family::Iter,
            n: n_quad,
            f_max: (n_quad - 1) / 2,
            protocol: ProtocolSpec::QuadraticHalf,
        },
        Entry {
            title: "epoch/subq_third",
            family: Family::Epoch,
            n: n_epoch,
            f_max: n_epoch * 3 / 10, // f < (1/3 − ε)n
            protocol: ProtocolSpec::SubqThird { lambda: 16.0, epochs },
        },
        Entry {
            title: "epoch/warmup_third",
            family: Family::Epoch,
            n: n_warm,
            f_max: (n_warm - 1) / 3,
            protocol: ProtocolSpec::WarmupThird { epochs },
        },
        // Competitor protocols, sized so the view/phase cap always reaches
        // an honest leader (`f_max + 2` round-robin rotations).
        Entry {
            title: "mr/half",
            family: Family::Competitor,
            n: n_mr,
            f_max: (n_mr - 1) / 2,
            protocol: ProtocolSpec::MomoseRenHalf { views: ((n_mr - 1) / 2 + 2) as u64 },
        },
        Entry {
            title: "cks/adaptive",
            family: Family::Competitor,
            n: n_mr,
            f_max: (n_mr - 1) / 3,
            protocol: ProtocolSpec::CksAdaptive { phases: ((n_mr - 1) / 3 + 2) as u64 },
        },
        // The remaining ablation rows from the roadmap's open matrix: the
        // Chen–Micali baseline under the full attack battery…
        Entry {
            title: "epoch/chen_micali",
            family: Family::Epoch,
            n: n_epoch,
            f_max: n_epoch * 3 / 10,
            protocol: ProtocolSpec::ChenMicali { lambda: 16.0, epochs, erasure: true },
        },
        // …and the shared-committee ablation, which is *insecure by
        // design* against adaptive corruption (one committee per epoch, so
        // eclipsing it starves the epoch): its passive rows must stay
        // clean, while adaptive attacks are licensed to defeat it — the
        // gauntlet records the defeat instead of asserting it away.
        Entry {
            title: "epoch/subq_shared",
            family: Family::Epoch,
            n: n_epoch,
            f_max: n_epoch * 3 / 10,
            protocol: ProtocolSpec::SubqShared { lambda: 16.0, epochs },
        },
    ]
}

/// The `f'/f_max` fractions swept per attack (the passive baseline always
/// runs at `f = 0` on top of these).
pub fn fractions(grid: Grid) -> &'static [f64] {
    match grid {
        Grid::Smoke => &[0.5, 1.0],
        Grid::Full => &[0.25, 0.5, 0.75, 1.0],
    }
}

/// The (adversary, corruption model) pairs applicable to `family`. Models
/// are part of the matrix on purpose: the eclipse row runs under both
/// static (neutralized) and adaptive (armed), the eraser under both
/// adaptive (removal refused) and strongly adaptive (Theorem 1's model).
fn attacks(family: Family) -> Vec<(AdversarySpec, CorruptionModel)> {
    use AdversarySpec as A;
    use CorruptionModel as M;
    let mut rows = vec![
        (A::CrashTail { at_round: 1 }, M::Static),
        (A::SilenceThenBurst { at_round: 3 }, M::Static),
        (A::AdaptiveEclipse { per_round: 0 }, M::Static),
        (A::AdaptiveEclipse { per_round: 0 }, M::Adaptive),
        // The ROADMAP's adversary *composition*: half the budget silenced
        // statically (burst at round 3), the rest spent eclipsing observed
        // speakers. Legal by construction — both wings corrupt through the
        // engine's budget — and asserted so by `e11_gauntlet`.
        (A::EclipseBurst { at_round: 3 }, M::Adaptive),
        (A::StarveQuorum, M::Adaptive),
        (A::StarveQuorum, M::StronglyAdaptive),
    ];
    match family {
        Family::Iter => rows.push((A::CertForger { target: true }, M::Static)),
        Family::Epoch => {
            rows.push((A::VoteFlipper, M::Adaptive));
            rows.push((A::EquivocationSpammer, M::Static));
        }
        // The competitor families have no mined committees to flip or
        // forge against; they face exactly the shared battery.
        Family::Competitor => {}
    }
    rows
}

/// Short display key of a corruption model (used in cell labels).
fn model_key(model: CorruptionModel) -> &'static str {
    match model {
        CorruptionModel::Static => "static",
        CorruptionModel::Adaptive => "adaptive",
        CorruptionModel::StronglyAdaptive => "strong",
    }
}

/// Builds the gauntlet: one [`Sweep`] per protocol entry, one cell per
/// (adversary × model × fraction) plus the passive baseline.
///
/// Cell labels are stable lookup keys of the form
/// `"<adversary>@<model>/f=<f>"` (e.g. `"adaptive_eclipse@adaptive/f=19"`);
/// the passive baseline is `"passive@static/f=0"`.
pub fn gauntlet_sweeps(grid: Grid, seeds: u64) -> Vec<Sweep> {
    entries(grid)
        .into_iter()
        .map(|entry| {
            let mut cells =
                vec![scenario_for(&entry, AdversarySpec::Passive, CorruptionModel::Static, 0)];
            // Mined families also run their honest baseline through the
            // Appendix D real-world VRF compiler: the committees differ
            // (different randomness source) but every safety observable
            // must stay clean — pinned by `tests/gauntlet.rs`.
            if matches!(
                entry.protocol,
                ProtocolSpec::SubqHalf { .. } | ProtocolSpec::SubqThird { .. }
            ) {
                let mut real =
                    scenario_for(&entry, AdversarySpec::Passive, CorruptionModel::Static, 0)
                        .real_elig();
                real.label = "passive_real@static/f=0".into();
                cells.push(real);
            }
            for (adversary, model) in attacks(entry.family) {
                let mut seen_f: Vec<usize> = Vec::new();
                for &frac in fractions(grid) {
                    let f = ((entry.f_max as f64) * frac).round() as usize;
                    // Zero corruptions is the baseline; a rounding collision
                    // between fractions would duplicate the cell label.
                    if f == 0 || seen_f.contains(&f) {
                        continue;
                    }
                    seen_f.push(f);
                    cells.push(scenario_for(&entry, adversary, model, f));
                }
            }
            Sweep::new(entry.title, seeds, cells)
        })
        .collect()
}

fn scenario_for(
    entry: &Entry,
    adversary: AdversarySpec,
    model: CorruptionModel,
    f: usize,
) -> Scenario {
    let label = format!("{}@{}/f={f}", adversary_key(&adversary), model_key(model));
    Scenario::new(label, entry.n, entry.protocol.clone())
        .inputs(InputPattern::Alternating)
        .adversary(adversary)
        .model(model)
        .f(f)
}

/// The adversary part of a cell label (the spec's display name minus its
/// parameter noise, so labels stay short and grep-friendly).
fn adversary_key(spec: &AdversarySpec) -> &'static str {
    match spec {
        AdversarySpec::Passive => "passive",
        AdversarySpec::CommitteeEraser => "committee_eraser",
        AdversarySpec::StarveQuorum => "starve_quorum",
        AdversarySpec::CrashTail { .. } => "crash_tail",
        AdversarySpec::CertForger { .. } => "cert_forger",
        AdversarySpec::VoteFlipper => "vote_flipper",
        AdversarySpec::EquivocationSpammer => "equivocation_spammer",
        AdversarySpec::SilenceThenBurst { .. } => "silence_burst",
        AdversarySpec::AdaptiveEclipse { .. } => "adaptive_eclipse",
        AdversarySpec::EclipseBurst { .. } => "eclipse_burst",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_every_combination() {
        let sweeps = gauntlet_sweeps(Grid::Smoke, 2);
        assert_eq!(sweeps.len(), 8, "eight protocol entries");
        for sweep in &sweeps {
            // 1 passive (+1 real-eligibility passive for mined families)
            // + per-family attacks × 2 fractions.
            let family_attacks = if sweep.title.starts_with("iter/") {
                8
            } else if sweep.title.starts_with("epoch/") {
                9
            } else {
                7 // competitor families: the shared battery only
            };
            let mined = matches!(sweep.title.as_str(), "iter/subq_half" | "epoch/subq_third");
            assert_eq!(
                sweep.scenarios.len(),
                1 + mined as usize + family_attacks * fractions(Grid::Smoke).len(),
                "{}: unexpected cell count",
                sweep.title
            );
            // Labels are unique lookup keys.
            let mut labels: Vec<&str> = sweep.scenarios.iter().map(|s| s.label.as_str()).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), sweep.scenarios.len(), "{}: duplicate label", sweep.title);
            // Every sweep carries a composed-adversary row.
            assert!(
                sweep.scenarios.iter().any(|s| s.label.starts_with("eclipse_burst@adaptive")),
                "{}: missing composition row",
                sweep.title
            );
        }
        // Exactly the mined families carry a real-eligibility honest row.
        let with_real: Vec<&str> = sweeps
            .iter()
            .filter(|s| s.scenarios.iter().any(|sc| sc.label == "passive_real@static/f=0"))
            .map(|s| s.title.as_str())
            .collect();
        assert_eq!(with_real, ["iter/subq_half", "epoch/subq_third"]);
    }

    #[test]
    fn full_grid_scales_the_fraction_axis() {
        let sweeps = gauntlet_sweeps(Grid::Full, 10);
        assert_eq!(fractions(Grid::Full).len(), 4);
        assert!(sweeps.iter().all(|s| s.scenarios.len() > sweeps.len()));
    }
}
