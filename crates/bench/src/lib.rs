//! # ba-bench
//!
//! Experiment harnesses regenerating every quantitative claim of the paper
//! (see EXPERIMENTS.md for the experiment ↔ claim index):
//!
//! | Binary | Claim |
//! |--------|-------|
//! | `e1_theorem4` | Thm 1/4 — Ω(f²) under strong adaptivity |
//! | `e2_multicast_complexity` | Thm 2 / Lemma 15 — polylog multicast complexity |
//! | `e3_round_complexity` | Cor. 16 — expected O(1) rounds |
//! | `e4_resilience` | Thm 2 — `f < (1/2 − ε)n` resilience threshold |
//! | `e5_theorem3` | Thm 3 — no setup-free sublinear multicast BA |
//! | `e6_good_iteration` | Lemma 12 — good iterations at rate ≥ 1/(2e) |
//! | `e7_committee_concentration` | Lemmas 10/11 — committee Chernoff bounds |
//! | `e8_bit_specific_ablation` | §3.3 Remark — bit-specific eligibility is necessary |
//! | `e9_real_vs_ideal` | App. D/E — the VRF compiler preserves behaviour |
//! | `e10_comparison` | §1 — the cross-protocol property table |
//!
//! Run any of them with `cargo run -p ba-bench --release --bin <name>`.
//! Criterion microbenches live under `benches/`.

use std::fmt::Display;

/// Prints a markdown-style table row.
pub fn row<D: Display>(cells: &[D]) {
    let mut line = String::from("|");
    for c in cells {
        line.push_str(&format!(" {c} |"));
    }
    println!("{line}");
}

/// Prints a markdown-style header with separator.
pub fn header(cells: &[&str]) {
    row(cells);
    let mut line = String::from("|");
    for _ in cells {
        line.push_str("---|");
    }
    println!("{line}");
}

/// Simple descriptive statistics over `f64` samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation.
    pub stddev: f64,
}

impl Stats {
    /// Computes statistics over the samples (zeroed for empty input).
    pub fn of(samples: &[f64]) -> Stats {
        if samples.is_empty() {
            return Stats::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let var =
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (count.max(2) - 1) as f64;
        Stats { count, mean, min, max, stddev: var.sqrt() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = Stats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.stddev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty() {
        let s = Stats::of(&[]);
        assert_eq!(s.count, 0);
    }
}
