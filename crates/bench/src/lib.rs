//! # ba-bench
//!
//! The experiment layer regenerating every quantitative claim of the paper
//! (see EXPERIMENTS.md for the experiment ↔ claim index):
//!
//! | Binary | Claim |
//! |--------|-------|
//! | `e1_theorem4` | Thm 1/4 — Ω(f²) under strong adaptivity |
//! | `e2_multicast_complexity` | Thm 2 / Lemma 15 — polylog multicast complexity |
//! | `e3_round_complexity` | Cor. 16 — expected O(1) rounds |
//! | `e4_resilience` | Thm 2 — `f < (1/2 − ε)n` resilience threshold |
//! | `e5_theorem3` | Thm 3 — no setup-free sublinear multicast BA |
//! | `e6_good_iteration` | Lemma 12 — good iterations at rate ≥ 1/(2e) |
//! | `e7_committee_concentration` | Lemmas 10/11 — committee Chernoff bounds |
//! | `e8_bit_specific_ablation` | §3.3 Remark — bit-specific eligibility is necessary |
//! | `e9_real_vs_ideal` | App. D/E — the VRF compiler preserves behaviour |
//! | `e10_comparison` | §1 — the cross-protocol property table |
//! | `e11_gauntlet` | the adversary gauntlet matrix (family × adversary × model × `f'`) |
//! | `e12_population` | Thm 2 at population scale — sparse engine, n = 10⁵…10⁶ |
//! | `e13_realclock` | the transport matrix — lockstep vs simulated partial synchrony vs TCP |
//! | `e14_certificates` | footnote 11 — vector vs aggregate certificate encodings, decision-identical |
//! | `e15_faults` | the chaos matrix — deterministic fault plans over every backend; safety asserted inside the legal envelope, measured beyond it |
//!
//! Two more binaries ride on the same engine: `soak` cycles the gauntlet
//! under a wall-clock/cell budget and streams per-cell JSON lines to disk,
//! and the `ba-bench` tool binary's `diff` subcommand ([`baseline`])
//! compares two `BENCH_*.json` reports cell-by-cell against tolerance
//! bands (the CI baseline-regression gate).
//!
//! Sweeps also run **distributed**: `--workers N` on any experiment binary
//! fans the grid's cells out across worker subprocesses (`ba-bench worker`,
//! or the binary itself in `--worker` mode) over the schema-versioned JSONL
//! cell-stream [`wire`] protocol, with crash recovery in the [`dist`]
//! coordinator — reports stay byte-identical to the in-process path at
//! every worker count, including across worker deaths (see
//! docs/DISTRIBUTED.md).
//!
//! Every binary is a thin renderer over the declarative [`Scenario`] /
//! [`Sweep`] API: a [`Scenario`] describes one runnable configuration
//! (protocol family, ideal-vs-real eligibility, adversary, corruption
//! model, input pattern, `n`/`f`/λ), a [`Sweep`] executes a grid of
//! scenarios × seeds on `std::thread::scope` workers with deterministic
//! per-cell seeding, and the resulting [`SweepReport`] renders to markdown
//! tables, CSV, and `BENCH_*.json` (schema in the README).
//!
//! Run any experiment with
//! `cargo run -p ba-bench --release --bin <name> -- [--seeds N] [--grid
//! full|smoke] [--threads N] [--population dense|sparse] [--format
//! md,csv,json|all] [--out DIR]`.
//! Criterion microbenches live under `benches/`.
//!
//! ## Example
//!
//! ```
//! use ba_bench::{ProtocolSpec, Scenario, Sweep};
//!
//! let sweep = Sweep::new(
//!     "subq_half",
//!     2, // seeds
//!     vec![Scenario::new("n=64", 64, ProtocolSpec::SubqHalf { lambda: 16.0, max_iters: None })],
//! );
//! let report = sweep.run(2); // 2 worker threads; results independent of thread count
//! let cell = report.cell("n=64");
//! assert_eq!(cell.runs.len(), 2);
//! assert_eq!(cell.rate("all_ok"), 1.0);
//! assert!(cell.stats("multicasts").mean > 0.0);
//! ```

pub mod baseline;
pub mod cli;
pub mod dist;
pub mod gauntlet;
pub mod report;
pub mod scenario;
pub mod stats;
pub mod sweep;
pub mod wire;

pub use baseline::{diff_reports, DiffReport, Tolerance};
pub use cli::{Cli, Grid};
pub use dist::{run_sweeps as run_sweeps_distributed, self_worker_cmd, DistConfig};
pub use gauntlet::gauntlet_sweeps;
pub use report::{
    header, quarantine_summary, row, to_csv, to_json, to_json_cell_line, CELL_STREAM_SCHEMA,
};
pub use scenario::{
    AdversarySpec, EligMode, EligSeed, InputPattern, ProtocolSpec, Scenario, ScenarioRun,
    SharedElig,
};
pub use stats::Stats;
pub use sweep::{default_threads, CellError, CellReport, RunRecord, Sweep, SweepReport};
pub use wire::{CellDescriptor, FailMode, FailPlan, WireError, WorkerReply};
